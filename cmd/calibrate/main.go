// Command calibrate runs the paper's configuring experiment (Figure 8) on
// the simulated memory hierarchy and extracts the Table III latency
// parameters from the measured curve — the procedure the paper uses to
// train its cost model on a new machine.
package main

import (
	"flag"
	"fmt"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "fewer accesses per region")
	flag.Parse()
	opt := experiments.Options{Quick: *quick}
	fmt.Println(experiments.Fig8(opt).String())
	fmt.Println(experiments.Table3(opt).String())
}
