// Command layoutopt is the layout advisor: it derives extended reasonable
// cuts from a benchmark workload, runs the BPi branch-and-bound search and
// prints the chosen partial decomposition next to the N-ary and fully
// decomposed baselines.
//
// Usage:
//
//	layoutopt -bench sapsd -table ADRC
//	layoutopt -bench cnet  -table products
//	layoutopt -bench ch    -table orderline
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench/chbench"
	"repro/internal/bench/cnet"
	"repro/internal/bench/sapsd"
	"repro/internal/costmodel"
	"repro/internal/layout"
	"repro/internal/mem"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/workload"
)

func main() {
	var (
		bench     = flag.String("bench", "sapsd", "workload: sapsd, cnet or ch")
		table     = flag.String("table", "ADRC", "table to decompose")
		threshold = flag.Float64("threshold", 0.001, "BPi improvement threshold")
	)
	flag.Parse()

	var cat *plan.Catalog
	var w *workload.Workload
	switch *bench {
	case "sapsd":
		d := sapsd.Generate(sapsd.Config{Customers: 5000, Seed: 1})
		cat = d.Catalog("row", nil)
		w = d.Workload(7)
	case "cnet":
		d := cnet.Generate(cnet.Config{Products: 20000, Attrs: 120, Categories: 30, MeanSparse: 6, Seed: 1})
		cat = d.Catalog("row", nil)
		cnet.RegisterIndexes(cat)
		w = d.Workload(3)
	case "ch":
		d := chbench.Generate(chbench.DefaultConfig())
		cat = d.Catalog("row", nil)
		w = d.Workload()
	default:
		fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", *bench)
		os.Exit(1)
	}
	if !cat.Has(*table) {
		fmt.Fprintf(os.Stderr, "benchmark %s has no table %q\n", *bench, *table)
		os.Exit(1)
	}

	est := costmodel.NewEstimator(cat, mem.TableIII())
	o := layout.NewOptimizer(est)
	o.Threshold = *threshold
	schema := cat.Table(*table).Schema
	width := schema.Width()

	fmt.Printf("table %s (%d attributes), workload %s (%d queries)\n\n", *table, width, w.Name, len(w.Queries))
	fmt.Println("extended reasonable cuts:")
	for i, c := range o.CutsFor(*table, w) {
		fmt.Printf("  %2d: {%s}\n", i+1, strings.Join(schema.AttrNames(c.Attrs), ","))
	}

	best, cost := o.Optimize(*table, w)
	fmt.Println("\nBPi solution:")
	for _, g := range best.Groups {
		fmt.Printf("  {%s}\n", strings.Join(schema.AttrNames(g), ","))
	}
	rowCost := w.Cost(est, map[string]storage.Layout{*table: storage.NSM(width)})
	colCost := w.Cost(est, map[string]storage.Layout{*table: storage.DSM(width)})
	fmt.Printf("\nestimated workload cost (cycles):\n")
	fmt.Printf("  row (NSM):    %.4g\n", rowCost)
	fmt.Printf("  column (DSM): %.4g\n", colCost)
	fmt.Printf("  BPi hybrid:   %.4g  (%.1f%% of row, %.1f%% of column)\n",
		cost, 100*cost/rowCost, 100*cost/colCost)
}
