// Command served is the network front-end of the reproduction: it loads a
// database, wraps it in the concurrent service layer (shared worker pool,
// prepared-plan cache, admission control) and serves JSON-over-HTTP.
//
//	served -addr :8080 -rows 1000000 -workers 0
//
// Endpoints:
//
//	POST /query    {"plan": <plan JSON>}   run a plan
//	POST /prepare  {"plan": <plan JSON>}   register a statement, get an id
//	POST /exec     {"id": "s1"}            run a prepared statement
//	POST /optimize {}                      run the layout optimizer (DDL path)
//	GET  /tables                           list served tables
//	GET  /stats                            service counters
//
// The demo dataset is the paper's example relation R(A..P) with A uniform
// over [0, 1e6), so the Figure 2 query
//
//	curl -s localhost:8080/query -d '{"plan": {"op": "aggregate",
//	  "child": {"op": "scan", "table": "R",
//	            "filter": {"pred": "cmp", "attr": 0, "op": "<", "val": {"int": 10000}},
//	            "cols": [1, 2, 3, 4]},
//	  "aggs": [{"agg": "sum", "arg": {"expr": "col", "attr": 0, "type": "int64"}, "name": "sum_b"}]}}'
//
// selects at selectivity 0.01.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"repro/internal/service"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		rows        = flag.Int("rows", 1_000_000, "rows of the demo relation R")
		workers     = flag.Int("workers", 0, "shared worker pool size (0 = all cores, 1 = serial execution)")
		maxInFlight = flag.Int("max-inflight", 0, "max concurrently executing queries (0 = 2x workers)")
		queueWait   = flag.Duration("queue-timeout", time.Second, "max wait for an execution slot before 429")
	)
	flag.Parse()

	log.Printf("loading demo relation R (%d rows, 16 int64 attributes)", *rows)
	db := service.NewDemoDB(*rows)
	service.DemoWorkload(db) // declared mix, so POST /optimize has something to optimize
	s := service.New(db, service.Config{
		Workers:      *workers,
		MaxInFlight:  *maxInFlight,
		QueueTimeout: *queueWait,
	})
	defer s.Close()

	st := s.Stats()
	fmt.Printf("served: listening on %s (workers=%d, max in-flight=%d)\n", *addr, st.Workers, st.MaxInFlight)
	log.Fatal(http.ListenAndServe(*addr, s.Handler()))
}
