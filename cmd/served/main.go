// Command served is the network front-end of the reproduction: it loads a
// database, wraps it in the concurrent service layer (shared worker pool,
// prepared-plan cache, admission control) and serves JSON-over-HTTP.
//
//	served -addr :8080 -rows 1000000 -workers 0
//	served -addr :8080 -data-dir ./data          # durable: snapshot + WAL
//	served -addr :8081 -replica-of http://primary:8080
//
// Endpoints:
//
//	POST /query      {"plan": <plan JSON>}   run a plan
//	POST /prepare    {"plan": <plan JSON>}   register a statement, get an id
//	POST /exec       {"id": "s1"}            run a prepared statement
//	POST /optimize   {}                      run the layout optimizer (DDL path)
//	POST /load?table=T&format=csv            bulk-ingest the request body
//	POST /checkpoint {}                      snapshot the catalog, reset the WAL
//	GET  /tables                             list served tables
//	GET  /stats                              service counters
//	GET  /repl/snapshot                      (with -data-dir) replication bootstrap
//	GET  /repl/wal?epoch=E&offset=N          (with -data-dir) WAL tail long-poll
//
// With -data-dir, the catalog (schemas, optimizer-chosen layouts,
// partition data, dictionaries, index definitions) is recovered from the
// directory's snapshot plus WAL on startup, and every insert, bulk load
// and re-layout is logged. -restore=false wipes the directory's state
// instead of recovering. A checkpoint runs automatically when the WAL
// exceeds -checkpoint-wal-mb. -wal-coalesce-ms merges consecutive insert
// records inside the window into one framed record (smaller logs and
// shipped streams, durability weakens to "within the window").
//
// With -replica-of, the process is a read-only replica: it bootstraps its
// catalog from the primary's snapshot, tails the primary's WAL (applying
// records through the recovery replay path, so its physical design stays
// bit-identical), serves /query, /prepare and /exec like a primary, and
// answers local writes with 409 naming the primary. Replicas keep no data
// directory — a restarted replica re-bootstraps from the primary.
//
// The demo dataset is the paper's example relation R(A..P) with A uniform
// over [0, 1e6), so the Figure 2 query
//
//	curl -s localhost:8080/query -d '{"plan": {"op": "aggregate",
//	  "child": {"op": "scan", "table": "R",
//	            "filter": {"pred": "cmp", "attr": 0, "op": "<", "val": {"int": 10000}},
//	            "cols": [1, 2, 3, 4]},
//	  "aggs": [{"agg": "sum", "arg": {"expr": "col", "attr": 0, "type": "int64"}, "name": "sum_b"}]}}'
//
// selects at selectivity 0.01. With -data-dir, the demo relation is
// built only when the recovered catalog is empty (and -rows > 0), and is
// checkpointed immediately so restarts recover it instead of rebuilding.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/repl"
	"repro/internal/service"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		rows        = flag.Int("rows", 1_000_000, "rows of the demo relation R (0 = no demo table)")
		workers     = flag.Int("workers", 0, "shared worker pool size (0 = all cores, 1 = serial execution)")
		maxInFlight = flag.Int("max-inflight", 0, "max concurrently executing queries (0 = 2x workers)")
		queueWait   = flag.Duration("queue-timeout", time.Second, "max wait for an execution slot before 429")
		dataDir     = flag.String("data-dir", "", "data directory for snapshot + WAL durability (empty = in-memory only)")
		restore     = flag.Bool("restore", true, "with -data-dir: recover existing snapshot + WAL (false wipes them)")
		fsync       = flag.Bool("fsync", false, "with -data-dir: fsync WAL commits and snapshots")
		ckptWALMB   = flag.Int("checkpoint-wal-mb", 64, "with -data-dir: WAL size triggering a background checkpoint (<= 0 disables)")
		coalesceMS  = flag.Int("wal-coalesce-ms", 0, "with -data-dir: coalesce consecutive insert WAL records within this window (0 = off)")
		replicaOf   = flag.String("replica-of", "", "run as a read-only replica of the primary at this URL (in-memory)")
	)
	flag.Parse()

	cfg := service.Config{
		Workers:      *workers,
		MaxInFlight:  *maxInFlight,
		QueueTimeout: *queueWait,
	}

	if *replicaOf != "" {
		if *dataDir != "" {
			log.Fatal("-replica-of replicas are in-memory (they bootstrap from the primary); drop -data-dir")
		}
		runReplica(*addr, *replicaOf, cfg)
		return
	}

	var (
		db  *core.DB
		mgr *persist.Manager
	)
	if *dataDir != "" {
		var err error
		db, mgr, err = persist.Open(persist.Options{Dir: *dataDir, Fsync: *fsync, Fresh: !*restore})
		if err != nil {
			log.Fatalf("opening data dir %s: %v", *dataDir, err)
		}
		defer mgr.Close()
		if n := len(db.Catalog().Names()); n > 0 {
			log.Printf("recovered %d table(s) from %s", n, *dataDir)
		}
		if *coalesceMS > 0 {
			if err := mgr.SetCoalesce(time.Duration(*coalesceMS)*time.Millisecond, 0); err != nil {
				log.Fatalf("enabling WAL coalescing: %v", err)
			}
		}
	} else {
		db = core.Open()
	}

	freshDemo := false
	if len(db.Catalog().Names()) == 0 && *rows > 0 {
		log.Printf("loading demo relation R (%d rows, 16 int64 attributes)", *rows)
		service.LoadDemo(db, *rows)
		freshDemo = true
	}
	if db.Catalog().Has("R") {
		service.DemoWorkload(db) // declared mix, so POST /optimize has something to optimize
	}

	s := service.New(db, cfg)
	defer s.Close()
	handler := s.Handler()
	if mgr != nil {
		threshold := int64(*ckptWALMB) << 20
		if *ckptWALMB <= 0 {
			threshold = -1
		}
		s.AttachPersist(mgr, threshold)
		if freshDemo {
			if _, err := s.Checkpoint(); err != nil {
				log.Fatalf("initial checkpoint: %v", err)
			}
		}
		// A durable primary can feed replicas: mount the shipping endpoints.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		repl.NewPrimary(s, mgr).Mount(mux)
		handler = mux
	}

	st := s.Stats()
	fmt.Printf("served: listening on %s (workers=%d, max in-flight=%d, durable=%v)\n",
		*addr, st.Workers, st.MaxInFlight, st.Persistent)
	log.Fatal(http.ListenAndServe(*addr, handler))
}

// runReplica bootstraps from the primary (retrying while it comes up),
// then serves reads while a background goroutine tails the WAL.
func runReplica(addr, primary string, cfg service.Config) {
	s := service.New(core.Open(), cfg)
	defer s.Close()
	s.SetReadOnly(primary)

	rep := repl.NewReplica(s, primary)
	var err error
	for attempt := 0; attempt < 60; attempt++ {
		if err = rep.Bootstrap(); err == nil {
			break
		}
		log.Printf("replica bootstrap from %s: %v (retrying)", primary, err)
		time.Sleep(500 * time.Millisecond)
	}
	if err != nil {
		log.Fatalf("replica bootstrap from %s: %v", primary, err)
	}
	go rep.Run(context.Background())

	st := s.Stats()
	fmt.Printf("served: replica of %s listening on %s (workers=%d, %d table(s) restored)\n",
		primary, addr, st.Workers, len(s.Tables()))
	log.Fatal(http.ListenAndServe(addr, s.Handler()))
}
