// Command served is the network front-end of the reproduction: it loads a
// database, wraps it in the concurrent service layer (shared worker pool,
// prepared-plan cache, admission control) and serves JSON-over-HTTP.
//
//	served -addr :8080 -rows 1000000 -workers 0
//	served -addr :8080 -data-dir ./data          # durable: snapshot + WAL
//
// Endpoints:
//
//	POST /query      {"plan": <plan JSON>}   run a plan
//	POST /prepare    {"plan": <plan JSON>}   register a statement, get an id
//	POST /exec       {"id": "s1"}            run a prepared statement
//	POST /optimize   {}                      run the layout optimizer (DDL path)
//	POST /load?table=T&format=csv            bulk-ingest the request body
//	POST /checkpoint {}                      snapshot the catalog, reset the WAL
//	GET  /tables                             list served tables
//	GET  /stats                              service counters
//
// With -data-dir, the catalog (schemas, optimizer-chosen layouts,
// partition data, dictionaries, index definitions) is recovered from the
// directory's snapshot plus WAL on startup, and every insert, bulk load
// and re-layout is logged. -restore=false wipes the directory's state
// instead of recovering. A checkpoint runs automatically when the WAL
// exceeds -checkpoint-wal-mb.
//
// The demo dataset is the paper's example relation R(A..P) with A uniform
// over [0, 1e6), so the Figure 2 query
//
//	curl -s localhost:8080/query -d '{"plan": {"op": "aggregate",
//	  "child": {"op": "scan", "table": "R",
//	            "filter": {"pred": "cmp", "attr": 0, "op": "<", "val": {"int": 10000}},
//	            "cols": [1, 2, 3, 4]},
//	  "aggs": [{"agg": "sum", "arg": {"expr": "col", "attr": 0, "type": "int64"}, "name": "sum_b"}]}}'
//
// selects at selectivity 0.01. With -data-dir, the demo relation is
// built only when the recovered catalog is empty (and -rows > 0), and is
// checkpointed immediately so restarts recover it instead of rebuilding.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/service"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		rows        = flag.Int("rows", 1_000_000, "rows of the demo relation R (0 = no demo table)")
		workers     = flag.Int("workers", 0, "shared worker pool size (0 = all cores, 1 = serial execution)")
		maxInFlight = flag.Int("max-inflight", 0, "max concurrently executing queries (0 = 2x workers)")
		queueWait   = flag.Duration("queue-timeout", time.Second, "max wait for an execution slot before 429")
		dataDir     = flag.String("data-dir", "", "data directory for snapshot + WAL durability (empty = in-memory only)")
		restore     = flag.Bool("restore", true, "with -data-dir: recover existing snapshot + WAL (false wipes them)")
		fsync       = flag.Bool("fsync", false, "with -data-dir: fsync WAL commits and snapshots")
		ckptWALMB   = flag.Int("checkpoint-wal-mb", 64, "with -data-dir: WAL size triggering a background checkpoint (<= 0 disables)")
	)
	flag.Parse()

	var (
		db  *core.DB
		mgr *persist.Manager
	)
	if *dataDir != "" {
		var err error
		db, mgr, err = persist.Open(persist.Options{Dir: *dataDir, Fsync: *fsync, Fresh: !*restore})
		if err != nil {
			log.Fatalf("opening data dir %s: %v", *dataDir, err)
		}
		defer mgr.Close()
		if n := len(db.Catalog().Names()); n > 0 {
			log.Printf("recovered %d table(s) from %s", n, *dataDir)
		}
	} else {
		db = core.Open()
	}

	freshDemo := false
	if len(db.Catalog().Names()) == 0 && *rows > 0 {
		log.Printf("loading demo relation R (%d rows, 16 int64 attributes)", *rows)
		service.LoadDemo(db, *rows)
		freshDemo = true
	}
	if db.Catalog().Has("R") {
		service.DemoWorkload(db) // declared mix, so POST /optimize has something to optimize
	}

	s := service.New(db, service.Config{
		Workers:      *workers,
		MaxInFlight:  *maxInFlight,
		QueueTimeout: *queueWait,
	})
	defer s.Close()
	if mgr != nil {
		threshold := int64(*ckptWALMB) << 20
		if *ckptWALMB <= 0 {
			threshold = -1
		}
		s.AttachPersist(mgr, threshold)
		if freshDemo {
			if _, err := s.Checkpoint(); err != nil {
				log.Fatalf("initial checkpoint: %v", err)
			}
		}
	}

	st := s.Stats()
	fmt.Printf("served: listening on %s (workers=%d, max in-flight=%d, durable=%v)\n",
		*addr, st.Workers, st.MaxInFlight, st.Persistent)
	log.Fatal(http.ListenAndServe(*addr, s.Handler()))
}
