// Command served is the network front-end of the reproduction: it loads a
// database, wraps it in the concurrent service layer (shared worker pool,
// prepared-plan cache, admission control) and serves JSON-over-HTTP.
//
//	served -addr :8080 -rows 1000000 -workers 0
//	served -addr :8080 -data-dir ./data          # durable: snapshot + WAL
//	served -addr :8081 -replica-of http://primary:8080
//	served -addr :8081 -replica-of http://primary:8080 -data-dir ./data2
//	                                             # replica that can be promoted
//
// Endpoints:
//
//	POST /query      {"plan": <plan JSON>}   run a plan
//	POST /prepare    {"plan": <plan JSON>}   register a statement, get an id
//	POST /exec       {"id": "s1"}            run a prepared statement
//	POST /optimize   {}                      run the layout optimizer (DDL path)
//	POST /load?table=T&format=csv            bulk-ingest the request body
//	POST /checkpoint {}                      snapshot the catalog, reset the WAL
//	GET  /tables                             list served tables
//	GET  /stats                              service counters
//	GET  /workload                           captured column heat + top plan shapes
//	GET  /advisor                            layout-drift advice (advisory-only)
//	GET  /events?since=N                     cluster event journal replay (cursor-paged)
//	GET  /history                            in-process metrics history (-history-interval samples)
//	GET  /replication                        per-follower cursors + lag (primary) / apply position (replica)
//	GET  /metrics                            Prometheus text exposition
//	GET  /healthz                            liveness + role health (ok/degraded/fenced)
//	GET  /repl/snapshot                      (primary) replication bootstrap
//	GET  /repl/wal?epoch=E&offset=N          (primary) WAL tail long-poll
//	POST /promote    {}                      flip a replica into a primary (term+1)
//	POST /demote     {"primary": U, "term": N}  fence + follow the new primary
//
// With -data-dir, the catalog (schemas, optimizer-chosen layouts,
// partition data, dictionaries, index definitions) is recovered from the
// directory's snapshot plus WAL on startup, and every insert, bulk load
// and re-layout is logged. -restore=false wipes the directory's state
// instead of recovering. A checkpoint runs automatically when the WAL
// exceeds -checkpoint-wal-mb. -wal-coalesce-ms merges consecutive insert
// records inside the window into one framed record (smaller logs and
// shipped streams, durability weakens to "within the window").
//
// With -replica-of, the process is a read-only replica: it bootstraps its
// catalog from the primary's snapshot (serving empty reads immediately and
// retrying with capped jittered backoff while the primary comes up), tails
// the primary's WAL (applying records through the recovery replay path, so
// its physical design stays bit-identical), serves /query, /prepare and
// /exec like a primary, and answers local writes with 409 naming the
// primary. A replica started without -data-dir keeps no local state — a
// restart re-bootstraps from the primary — and cannot be promoted; adding
// -data-dir gives it promotion storage: POST /promote opens the directory
// fresh, checkpoints the replicated catalog into it and starts serving
// /repl/* as the new primary at the next fencing term. Losing the primary
// never kills a replica: it keeps serving reads, reports "degraded" in
// /healthz and /stats after a few failed polls, and "promote-eligible"
// once the outage outlasts the promotion threshold.
//
// The demo dataset is the paper's example relation R(A..P) with A uniform
// over [0, 1e6), so the Figure 2 query
//
//	curl -s localhost:8080/query -d '{"plan": {"op": "aggregate",
//	  "child": {"op": "scan", "table": "R",
//	            "filter": {"pred": "cmp", "attr": 0, "op": "<", "val": {"int": 10000}},
//	            "cols": [1, 2, 3, 4]},
//	  "aggs": [{"agg": "sum", "arg": {"expr": "col", "attr": 0, "type": "int64"}, "name": "sum_b"}]}}'
//
// selects at selectivity 0.01. With -data-dir, the demo relation is
// built only when the recovered catalog is empty (and -rows > 0), and is
// checkpointed immediately so restarts recover it instead of rebuilding.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/repl"
	"repro/internal/service"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		rows        = flag.Int("rows", 1_000_000, "rows of the demo relation R (0 = no demo table)")
		workers     = flag.Int("workers", 0, "shared worker pool size (0 = all cores, 1 = serial execution)")
		maxInFlight = flag.Int("max-inflight", 0, "max concurrently executing queries (0 = 2x workers)")
		queueWait   = flag.Duration("queue-timeout", time.Second, "max wait for an execution slot before 429")
		dataDir     = flag.String("data-dir", "", "data directory for snapshot + WAL durability (for a replica: promotion storage)")
		restore     = flag.Bool("restore", true, "with -data-dir: recover existing snapshot + WAL (false wipes them)")
		fsync       = flag.Bool("fsync", false, "with -data-dir: fsync WAL commits and snapshots")
		ckptWALMB   = flag.Int("checkpoint-wal-mb", 64, "with -data-dir: WAL size triggering a background checkpoint (<= 0 disables)")
		coalesceMS  = flag.Int("wal-coalesce-ms", 0, "with -data-dir: coalesce consecutive insert WAL records within this window (0 = off)")
		replicaOf   = flag.String("replica-of", "", "run as a read-only replica of the primary at this URL")
		advisorIvl  = flag.Duration("advisor-interval", time.Minute, "period of the layout-drift advisor over the captured workload (0 = only on GET /advisor)")
		historyIvl  = flag.Duration("history-interval", 10*time.Second, "sampling period of the in-process metrics history behind GET /history (0 = off)")
		driftWarn   = flag.Float64("advisor-drift-warn", service.DefaultDriftWarnRatio, "drift ratio at or above which the advisor logs a warning (<= 0 disables)")
		drain       = flag.Duration("drain", 5*time.Second, "graceful-shutdown drain window for in-flight requests")
		slowQueryMS = flag.Int("slow-query-ms", 0, "log queries at least this slow with their operator trace (0 = off)")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this separate debug address (empty = off)")
		logJSON     = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
		verbose     = flag.Bool("v", false, "debug logging (includes one line per HTTP request)")
	)
	flag.Parse()

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	var h slog.Handler = slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})
	if *logJSON {
		h = slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level})
	}
	slog.SetDefault(slog.New(h))

	cfg := service.Config{
		Workers:      *workers,
		MaxInFlight:  *maxInFlight,
		QueueTimeout: *queueWait,
	}
	slowQuery := time.Duration(*slowQueryMS) * time.Millisecond

	threshold := int64(*ckptWALMB) << 20
	if *ckptWALMB <= 0 {
		threshold = -1
	}

	if *replicaOf != "" {
		runReplica(*addr, *replicaOf, *dataDir, *fsync, threshold, cfg, *drain, *pprofAddr, slowQuery, *advisorIvl, *driftWarn, *historyIvl)
		return
	}

	var (
		db  *core.DB
		mgr *persist.Manager
	)
	if *dataDir != "" {
		var err error
		db, mgr, err = persist.Open(persist.Options{Dir: *dataDir, Fsync: *fsync, Fresh: !*restore})
		if err != nil {
			fatal("opening data dir", err, slog.String("dir", *dataDir))
		}
		defer mgr.Close()
		if n := len(db.Catalog().Names()); n > 0 {
			slog.Info("recovered catalog", slog.Int("tables", n), slog.String("dir", *dataDir))
		}
		if *coalesceMS > 0 {
			if err := mgr.SetCoalesce(time.Duration(*coalesceMS)*time.Millisecond, 0); err != nil {
				fatal("enabling WAL coalescing", err)
			}
		}
	} else {
		db = core.Open()
	}

	freshDemo := false
	if len(db.Catalog().Names()) == 0 && *rows > 0 {
		slog.Info("loading demo relation R", slog.Int("rows", *rows), slog.Int("attrs", 16))
		service.LoadDemo(db, *rows)
		freshDemo = true
	}
	if db.Catalog().Has("R") {
		service.DemoWorkload(db) // declared mix, so POST /optimize has something to optimize
	}

	s := service.New(db, cfg)
	defer s.Close()
	s.SetSlowQueryThreshold(slowQuery)
	s.SetDriftWarnRatio(*driftWarn)
	s.StartAdvisor(*advisorIvl)
	if *historyIvl > 0 {
		s.StartHistory(*historyIvl)
	}
	handler := s.Handler()
	if mgr != nil {
		s.AttachPersist(mgr, threshold)
		if freshDemo {
			if _, err := s.Checkpoint(); err != nil {
				fatal("initial checkpoint", err)
			}
		}
		// A durable primary can feed replicas and be demoted after a
		// failover: run it as a Node. The follower id matters only after
		// a demotion, when this node starts acking the new primary.
		node := repl.NewNode(s, repl.NodeConfig{Mgr: mgr, CheckpointWAL: threshold, FollowerID: *addr})
		if err := node.Start(context.Background()); err != nil {
			fatal("starting replication node", err)
		}
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		node.Mount(mux)
		handler = mux
	}

	st := s.Stats()
	slog.Info("served: listening", slog.String("addr", *addr), slog.Int("workers", st.Workers),
		slog.Int("maxInFlight", st.MaxInFlight), slog.Bool("durable", st.Persistent))
	// On a drained shutdown a durable primary checkpoints, so the next
	// start recovers from a snapshot instead of a long WAL replay.
	err := serve(*addr, handler, *drain, *pprofAddr, func() {
		if s.Stats().Persistent {
			if _, err := s.Checkpoint(); err != nil {
				slog.Warn("final checkpoint failed", slog.Any("err", err))
			} else {
				slog.Info("final checkpoint written")
			}
		}
	})
	if err != nil {
		fatal("serving", err)
	}
}

// runReplica starts a read-only replica node: it serves immediately
// (reads return empty results until the first bootstrap lands) while the
// node's tail loop bootstraps and follows the primary with backoff, and
// it mounts /promote and /demote so an operator can fail it over.
func runReplica(addr, primary, dataDir string, fsync bool, threshold int64, cfg service.Config, drain time.Duration, pprofAddr string, slowQuery time.Duration, advisorIvl time.Duration, driftWarn float64, historyIvl time.Duration) {
	s := service.New(core.Open(), cfg)
	defer s.Close()
	s.SetSlowQueryThreshold(slowQuery)
	// A replica's layouts are the primary's (shipped through the WAL), but
	// its read mix is its own: drift advice on a replica tells an operator
	// how far the primary's physical design is from this replica's traffic.
	s.SetDriftWarnRatio(driftWarn)
	s.StartAdvisor(advisorIvl)
	if historyIvl > 0 {
		s.StartHistory(historyIvl)
	}

	// Name this follower by its listen address on the primary's side, so
	// GET /replication and the lag histograms show operator-recognizable ids.
	nodeCfg := repl.NodeConfig{PrimaryURL: primary, CheckpointWAL: threshold, FollowerID: addr}
	if dataDir != "" {
		// Promotion storage: opened fresh at promote time (the replica's
		// authoritative state is the replicated catalog in memory, not
		// whatever the directory held).
		nodeCfg.OpenStorage = func() (*persist.Manager, error) {
			db, mgr, err := persist.Open(persist.Options{Dir: dataDir, Fsync: fsync, Fresh: true})
			if err != nil {
				return nil, err
			}
			_ = db // empty: Fresh wipes the directory
			return mgr, nil
		}
	}
	node := repl.NewNode(s, nodeCfg)
	if err := node.Start(context.Background()); err != nil {
		fatal("starting replica node", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/", s.Handler())
	node.Mount(mux)

	st := s.Stats()
	slog.Info("served: replica listening", slog.String("addr", addr), slog.String("primary", primary),
		slog.Int("workers", st.Workers), slog.Bool("promotable", dataDir != ""))
	// A promoted replica is durable by shutdown time: checkpoint it like
	// a primary so its followers bootstrap from a fresh snapshot.
	err := serve(addr, mux, drain, pprofAddr, func() {
		node.Stop()
		if s.Stats().Persistent {
			if _, err := s.Checkpoint(); err != nil {
				slog.Warn("final checkpoint failed", slog.Any("err", err))
			}
		}
	})
	if err != nil {
		fatal("serving", err)
	}
}

// serve runs the HTTP server with sane timeouts: slowloris protection on
// headers, a generous body window (bulk loads stream for a while), and
// idle-connection reaping. No WriteTimeout — /repl/wal long-polls and
// large query results must not be cut off mid-response.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes, in-
// flight requests get the drain window to finish (then the server closes
// hard), and onDrained runs last — the final-checkpoint hook.
func serve(addr string, handler http.Handler, drain time.Duration, pprofAddr string, onDrained func()) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if pprofAddr != "" {
		go servePprof(pprofAddr)
	}

	srv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       10 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way
	slog.Info("shutting down", slog.Duration("drain", drain))
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		slog.Warn("drain window elapsed, closing connections", slog.Any("err", err))
		_ = srv.Close()
	}
	if onDrained != nil {
		onDrained()
	}
	return nil
}

// servePprof mounts net/http/pprof on its own listener, so profiling
// endpoints never ride on the public API address.
func servePprof(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	slog.Info("pprof debug listener", slog.String("addr", addr))
	if err := http.ListenAndServe(addr, mux); err != nil && !errors.Is(err, http.ErrServerClosed) {
		slog.Warn("pprof listener failed", slog.Any("err", err))
	}
}

// fatal logs one structured error line and exits non-zero.
func fatal(msg string, err error, args ...any) {
	slog.Error(msg, append([]any{slog.Any("err", err)}, args...)...)
	os.Exit(1)
}
