package main

import (
	"strings"
	"testing"
)

func TestUnknownExperimentListsAndFails(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-exp", "fig99"}, &stdout, &stderr)
	if code == 0 {
		t.Fatal("unknown -exp exited 0")
	}
	out := stderr.String()
	if !strings.Contains(out, `unknown experiment "fig99"`) {
		t.Fatalf("stderr does not name the bad experiment: %q", out)
	}
	// The full list must be offered, not just a hint to rerun with -list.
	for _, id := range []string{"fig3", "table4", "ablation-sparse"} {
		if !strings.Contains(out, id) {
			t.Fatalf("stderr does not list experiment %q: %q", id, out)
		}
	}
}

func TestListExperiments(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "fig3") {
		t.Fatalf("-list output missing fig3: %q", stdout.String())
	}
}

func TestHelpExitsZero(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-h"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-h exit code = %d, want 0", code)
	}
	if !strings.Contains(stderr.String(), "-exp") {
		t.Fatalf("usage not printed on -h: %q", stderr.String())
	}
}

func TestNoArgsUsage(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("no-args exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "-exp") {
		t.Fatalf("usage not printed: %q", stderr.String())
	}
}

func TestQuickExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment still builds a 100k-row relation")
	}
	var stdout, stderr strings.Builder
	if code := run([]string{"-exp", "table3", "-quick"}, &stdout, &stderr); code != 0 {
		t.Fatalf("table3 -quick exited %d (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "table3") {
		t.Fatalf("report missing from stdout: %q", stdout.String())
	}
}
