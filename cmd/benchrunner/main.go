// Command benchrunner regenerates the paper's evaluation artefacts: every
// table and figure of the evaluation section is one experiment that can be
// run individually or as a suite.
//
// Usage:
//
//	benchrunner -list
//	benchrunner -exp fig3            # one experiment, paper-scale
//	benchrunner -exp fig9 -quick     # smaller data sets
//	benchrunner -all -quick          # the whole evaluation section
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected for testing: argv without the
// program name, and the two output streams. It returns the exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchrunner", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp     = fs.String("exp", "", "experiment id to run (see -list)")
		all     = fs.Bool("all", false, "run every experiment")
		quick   = fs.Bool("quick", false, "shrink data sets for a fast pass")
		list    = fs.Bool("list", false, "list experiment ids")
		workers = fs.Int("workers", 0, "morsel-scheduler workers for the JiT engine (0 or 1 = serial, as the paper measures; -1 = all cores)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *list {
		fmt.Fprintln(stdout, "experiments:", strings.Join(experiments.IDs(), " "))
		return 0
	}
	opt := experiments.Options{Quick: *quick, Workers: *workers}
	switch {
	case *all:
		for _, rep := range experiments.All(opt) {
			fmt.Fprintln(stdout, rep.String())
		}
	case *exp != "":
		driver := experiments.ByID(*exp)
		if driver == nil {
			fmt.Fprintf(stderr, "unknown experiment %q; available experiments:\n  %s\n",
				*exp, strings.Join(experiments.IDs(), "\n  "))
			return 1
		}
		start := time.Now()
		rep := driver(opt)
		fmt.Fprintln(stdout, rep.String())
		fmt.Fprintf(stdout, "(%s regenerated in %v)\n", *exp, time.Since(start).Round(time.Millisecond))
	default:
		fs.Usage()
		return 2
	}
	return 0
}
