// Command benchrunner regenerates the paper's evaluation artefacts: every
// table and figure of the evaluation section is one experiment that can be
// run individually or as a suite.
//
// Usage:
//
//	benchrunner -list
//	benchrunner -exp fig3            # one experiment, paper-scale
//	benchrunner -exp fig9 -quick     # smaller data sets
//	benchrunner -all -quick          # the whole evaluation section
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id to run (see -list)")
		all     = flag.Bool("all", false, "run every experiment")
		quick   = flag.Bool("quick", false, "shrink data sets for a fast pass")
		list    = flag.Bool("list", false, "list experiment ids")
		workers = flag.Int("workers", 0, "morsel-scheduler workers for the JiT engine (0 or 1 = serial, as the paper measures; -1 = all cores)")
	)
	flag.Parse()

	if *list {
		fmt.Println("experiments:", strings.Join(experiments.IDs(), " "))
		return
	}
	opt := experiments.Options{Quick: *quick, Workers: *workers}
	switch {
	case *all:
		for _, rep := range experiments.All(opt) {
			fmt.Println(rep.String())
		}
	case *exp != "":
		driver := experiments.ByID(*exp)
		if driver == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *exp)
			os.Exit(1)
		}
		start := time.Now()
		rep := driver(opt)
		fmt.Println(rep.String())
		fmt.Printf("(%s regenerated in %v)\n", *exp, time.Since(start).Round(time.Millisecond))
	default:
		flag.Usage()
		os.Exit(2)
	}
}
