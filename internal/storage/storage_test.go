package storage

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeIntOrderPreserving(t *testing.T) {
	f := func(a, b int64) bool {
		return (a < b) == (EncodeInt(a) < EncodeInt(b)) && DecodeInt(EncodeInt(a)) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeFloatOrderPreserving(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if DecodeFloat(EncodeFloat(a)) != a {
			return false
		}
		if a < b && EncodeFloat(a) >= EncodeFloat(b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Spot checks across sign and zero.
	vals := []float64{math.Inf(-1), -1e300, -1.5, -0.0, 0.0, 1e-300, 2.5, 1e300, math.Inf(1)}
	for i := 1; i < len(vals); i++ {
		if vals[i-1] < vals[i] && EncodeFloat(vals[i-1]) >= EncodeFloat(vals[i]) {
			t.Errorf("order violated between %v and %v", vals[i-1], vals[i])
		}
	}
}

func TestEncodeBoolRoundTrip(t *testing.T) {
	if DecodeBool(EncodeBool(true)) != true || DecodeBool(EncodeBool(false)) != false {
		t.Fatal("bool round trip failed")
	}
}

func TestSchemaLookup(t *testing.T) {
	s := NewSchema("r", Attribute{"a", Int64}, Attribute{"b", String})
	if s.Width() != 2 || s.Col("b") != 1 || s.AttrIndex("zzz") != -1 {
		t.Fatal("schema lookup broken")
	}
	defer func() {
		if recover() == nil {
			t.Error("Col on unknown attribute must panic")
		}
	}()
	s.Col("nope")
}

func TestSchemaDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate attribute must panic")
		}
	}()
	NewSchema("r", Attribute{"a", Int64}, Attribute{"a", Int64})
}

func TestDictOrderPreserving(t *testing.T) {
	f := func(vals []string) bool {
		if len(vals) == 0 {
			return true
		}
		d := BuildDict(vals)
		for i := 0; i < len(vals); i++ {
			for j := 0; j < len(vals); j++ {
				ci, _ := d.Code(vals[i])
				cj, _ := d.Code(vals[j])
				if (vals[i] < vals[j]) != (ci < cj) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDictAppendCode(t *testing.T) {
	d := BuildDict([]string{"b", "a"})
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	c := d.AppendCode("zzz")
	if c != 2 {
		t.Errorf("fresh code = %d, want 2", c)
	}
	if d.AppendCode("zzz") != c || d.AppendCode("a") != 0 {
		t.Error("AppendCode must be idempotent and reuse existing codes")
	}
	if d.Value(c) != "zzz" {
		t.Error("Value of appended code wrong")
	}
}

func TestCodeSetLike(t *testing.T) {
	d := BuildDict([]string{"apple", "apricot", "banana", "grape"})
	cs := d.MatchCodes(func(s string) bool { return strings.HasPrefix(s, "ap") })
	if cs.Count() != 2 {
		t.Fatalf("Count = %d, want 2", cs.Count())
	}
	for _, v := range []string{"apple", "apricot"} {
		if c, _ := d.Code(v); !cs.Contains(c) {
			t.Errorf("%q should match", v)
		}
	}
	for _, v := range []string{"banana", "grape"} {
		if c, _ := d.Code(v); cs.Contains(c) {
			t.Errorf("%q should not match", v)
		}
	}
	if cs.Contains(Null) {
		t.Error("Null must never be contained")
	}
}

func TestLayoutConstructorsAndValidate(t *testing.T) {
	if err := NSM(5).Validate(5); err != nil {
		t.Error(err)
	}
	if err := DSM(5).Validate(5); err != nil {
		t.Error(err)
	}
	if NSM(3).Kind() != "row" || DSM(3).Kind() != "column" {
		t.Error("kind classification wrong")
	}
	h := PDSM([]int{0, 2}, []int{1})
	if h.Kind() != "hybrid" {
		t.Error("PDSM should classify as hybrid")
	}
	bad := []Layout{
		PDSM([]int{0}, []int{0, 1}), // duplicate
		PDSM([]int{0}),              // missing 1
		PDSM([]int{0}, []int{5}),    // out of range
		PDSM([]int{0, 1}, []int{}),  // empty group
	}
	for i, l := range bad {
		if err := l.Validate(2); err == nil {
			t.Errorf("bad layout %d validated", i)
		}
	}
}

func TestLayoutCanonicalEqual(t *testing.T) {
	a := PDSM([]int{2, 0}, []int{1})
	b := PDSM([]int{1}, []int{0, 2})
	if !a.Equal(b) {
		t.Error("layouts with same groups must be Equal")
	}
	if a.Equal(PDSM([]int{0}, []int{1, 2})) {
		t.Error("different groupings must not be Equal")
	}
	if got := a.Canonical().String(); got != "{{0,2},{1}}" {
		t.Errorf("canonical = %s", got)
	}
}

// TestLayoutValidateProperty: every random partitioning built by shuffling
// and splitting must validate; dropping one attribute must not.
func TestLayoutValidateProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%10) + 2
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(n)
		var groups [][]int
		for len(perm) > 0 {
			k := rng.Intn(len(perm)) + 1
			groups = append(groups, perm[:k])
			perm = perm[k:]
		}
		l := Layout{Groups: groups}
		if l.Validate(n) != nil {
			return false
		}
		// Remove last attribute of the last group -> must fail.
		last := groups[len(groups)-1]
		if len(last) == 1 {
			groups = groups[:len(groups)-1]
		} else {
			groups[len(groups)-1] = last[:len(last)-1]
		}
		if len(groups) == 0 {
			return true
		}
		return (Layout{Groups: groups}).Validate(n) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func buildTestRelation(t *testing.T, layout Layout) *Relation {
	t.Helper()
	schema := NewSchema("r",
		Attribute{"id", Int64},
		Attribute{"name", String},
		Attribute{"price", Float64},
		Attribute{"flag", Bool},
	)
	b := NewBuilder(schema)
	b.SetInts(0, []int64{1, 2, 3, -4})
	b.SetStrings(1, []string{"delta", "alpha", "charlie", "bravo"})
	b.SetFloats(2, []float64{1.5, -2.5, 0, 99})
	b.SetWords(3, []Word{1, 0, 1, 0})
	return b.Build(layout)
}

func TestRelationRoundTripAllLayouts(t *testing.T) {
	layouts := map[string]Layout{
		"row":    NSM(4),
		"column": DSM(4),
		"hybrid": PDSM([]int{0, 2}, []int{1, 3}),
	}
	for name, l := range layouts {
		r := buildTestRelation(t, l)
		if r.Rows() != 4 {
			t.Fatalf("%s: rows = %d", name, r.Rows())
		}
		if DecodeInt(r.Value(3, 0)) != -4 {
			t.Errorf("%s: int round trip failed", name)
		}
		if r.StringOf(1, 1) != "alpha" {
			t.Errorf("%s: string round trip failed: %q", name, r.StringOf(1, 1))
		}
		if DecodeFloat(r.Value(1, 2)) != -2.5 {
			t.Errorf("%s: float round trip failed", name)
		}
		if !DecodeBool(r.Value(2, 3)) || DecodeBool(r.Value(3, 3)) {
			t.Errorf("%s: bool round trip failed", name)
		}
	}
}

func TestRelationAccessorMatchesValue(t *testing.T) {
	r := buildTestRelation(t, PDSM([]int{1, 0}, []int{3, 2}))
	for attr := 0; attr < 4; attr++ {
		acc := r.Access(attr)
		for row := 0; row < r.Rows(); row++ {
			if acc.At(row) != r.Value(row, attr) {
				t.Fatalf("accessor mismatch at row %d attr %d", row, attr)
			}
		}
	}
}

func TestRelationWithLayoutPreservesContent(t *testing.T) {
	src := buildTestRelation(t, NSM(4))
	for _, l := range []Layout{DSM(4), PDSM([]int{0, 1}, []int{2, 3}), PDSM([]int{3}, []int{2, 1, 0})} {
		dst := src.WithLayout(l)
		if dst.Rows() != src.Rows() {
			t.Fatal("row count changed")
		}
		for row := 0; row < src.Rows(); row++ {
			for attr := 0; attr < 4; attr++ {
				if src.Value(row, attr) != dst.Value(row, attr) {
					t.Fatalf("layout %v: cell (%d,%d) differs", l, row, attr)
				}
			}
		}
		if dst.StringOf(0, 1) != src.StringOf(0, 1) {
			t.Error("dictionaries must be shared across layout siblings")
		}
	}
}

func TestRelationAppendRow(t *testing.T) {
	r := buildTestRelation(t, PDSM([]int{0, 2}, []int{1, 3}))
	nameCode := r.Dict(1).AppendCode("echo")
	row := r.AppendRow([]Word{EncodeInt(5), nameCode, EncodeFloat(7.25), 1})
	if row != 4 || r.Rows() != 5 {
		t.Fatal("append did not extend the relation")
	}
	if DecodeInt(r.Value(4, 0)) != 5 || r.StringOf(4, 1) != "echo" || DecodeFloat(r.Value(4, 2)) != 7.25 {
		t.Error("appended values wrong")
	}
}

func TestBuilderUnsetColumnIsNull(t *testing.T) {
	schema := NewSchema("r", Attribute{"a", Int64}, Attribute{"b", Int64})
	b := NewBuilder(schema)
	b.SetInts(0, []int64{1, 2})
	r := b.Build(NSM(2))
	if r.Value(0, 1) != Null || r.Value(1, 1) != Null {
		t.Error("unset column must be NULL")
	}
}

func TestBuilderStringsWithNulls(t *testing.T) {
	schema := NewSchema("r", Attribute{"s", String})
	b := NewBuilder(schema)
	b.SetStringsWithNulls(0, []string{"x", "", "y"}, []bool{false, true, false})
	r := b.Build(DSM(1))
	if r.Value(1, 0) != Null {
		t.Error("null cell must store Null word")
	}
	if r.StringOf(0, 0) != "x" || r.StringOf(2, 0) != "y" {
		t.Error("non-null strings wrong")
	}
	if r.StringOf(1, 0) != "" {
		t.Error("StringOf(null) must return empty string")
	}
	if r.Dict(0).Len() != 2 {
		t.Errorf("dict must exclude nulls, len = %d", r.Dict(0).Len())
	}
}

func TestBuilderMismatchedLengthPanics(t *testing.T) {
	schema := NewSchema("r", Attribute{"a", Int64}, Attribute{"b", Int64})
	b := NewBuilder(schema)
	b.SetInts(0, []int64{1, 2})
	defer func() {
		if recover() == nil {
			t.Error("mismatched column length must panic")
		}
	}()
	b.SetInts(1, []int64{1})
}

// TestRelationRandomizedLayoutEquivalence: for random data and random
// partitionings, every cell is identical between the NSM master and the
// repartitioned sibling.
func TestRelationRandomizedLayoutEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6) + 2
		attrs := make([]Attribute, n)
		for i := range attrs {
			attrs[i] = Attribute{Name: string(rune('a' + i)), Type: Int64}
		}
		schema := NewSchema("t", attrs...)
		b := NewBuilder(schema)
		rows := rng.Intn(200) + 1
		for a := 0; a < n; a++ {
			col := make([]int64, rows)
			for i := range col {
				col[i] = rng.Int63n(1000) - 500
			}
			b.SetInts(a, col)
		}
		master := b.Build(NSM(n))
		perm := rng.Perm(n)
		var groups [][]int
		for len(perm) > 0 {
			k := rng.Intn(len(perm)) + 1
			g := append([]int(nil), perm[:k]...)
			sort.Ints(g)
			groups = append(groups, g)
			perm = perm[k:]
		}
		sib := master.WithLayout(Layout{Groups: groups})
		for row := 0; row < rows; row++ {
			for a := 0; a < n; a++ {
				if master.Value(row, a) != sib.Value(row, a) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionGeometry(t *testing.T) {
	r := buildTestRelation(t, PDSM([]int{0, 2}, []int{1, 3}))
	p := r.PartitionOf(2)
	if p.Stride != 2 || p.WidthBytes() != 16 || p.Rows() != 4 {
		t.Errorf("partition geometry wrong: stride=%d width=%d rows=%d", p.Stride, p.WidthBytes(), p.Rows())
	}
}

func TestCodeSetCodesRoundTrip(t *testing.T) {
	// Sparse membership over a large space: Codes must enumerate exactly
	// the members, ascending, without walking every code.
	members := []Word{0, 63, 64, 1000, 65535}
	cs := NewCodeSet(members, 65536)
	got := cs.Codes()
	if len(got) != len(members) {
		t.Fatalf("Codes() = %v, want %v", got, members)
	}
	for i, c := range members {
		if got[i] != c {
			t.Fatalf("Codes()[%d] = %d, want %d", i, got[i], c)
		}
	}
	if cs.Count() != len(members) || cs.Size() != 65536 {
		t.Fatalf("Count=%d Size=%d", cs.Count(), cs.Size())
	}
	for _, c := range members {
		if !cs.Contains(c) {
			t.Fatalf("Contains(%d) = false", c)
		}
	}
	if cs.Contains(1) || cs.Contains(70000) {
		t.Fatal("Contains accepted a non-member")
	}
}
