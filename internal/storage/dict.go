package storage

import (
	"math/bits"
	"sort"
)

// Dict is an order-preserving string dictionary. Codes assigned at build
// time respect lexicographic order, so range predicates on string
// attributes reduce to unsigned comparisons on codes. Values appended
// after the build (by inserts) receive the next free code; such codes are
// usable for equality but no longer order-preserving, which matches how
// the benchmarks use inserted values.
type Dict struct {
	values []string
	code   map[string]Word
	sorted int // values[:sorted] are in lexicographic order
}

// BuildDict constructs a dictionary over the distinct values of vals,
// assigning codes in lexicographic order.
func BuildDict(vals []string) *Dict {
	uniq := make(map[string]struct{}, len(vals))
	for _, v := range vals {
		uniq[v] = struct{}{}
	}
	sorted := make([]string, 0, len(uniq))
	for v := range uniq {
		sorted = append(sorted, v)
	}
	sort.Strings(sorted)
	d := &Dict{values: sorted, code: make(map[string]Word, len(sorted)), sorted: len(sorted)}
	for i, v := range sorted {
		d.code[v] = Word(i)
	}
	return d
}

// Len returns the number of distinct values.
func (d *Dict) Len() int { return len(d.values) }

// Code returns the code of v, if present.
func (d *Dict) Code(v string) (Word, bool) {
	c, ok := d.code[v]
	return c, ok
}

// MustCode returns the code of v or panics; for benchmark parameter
// binding, where the value is known to exist.
func (d *Dict) MustCode(v string) Word {
	c, ok := d.code[v]
	if !ok {
		panic("storage: value not in dictionary: " + v)
	}
	return c
}

// AppendCode returns the code for v, assigning a fresh (non-order-
// preserving) code if v is new.
func (d *Dict) AppendCode(v string) Word {
	if c, ok := d.code[v]; ok {
		return c
	}
	c := Word(len(d.values))
	d.values = append(d.values, v)
	d.code[v] = c
	return c
}

// Value returns the string for a code.
func (d *Dict) Value(c Word) string { return d.values[c] }

// CodeSet is a bitset over dictionary codes, the compiled form of string
// predicates such as LIKE: the predicate is evaluated once per distinct
// value, and the per-tuple test becomes a single bit probe.
type CodeSet struct {
	bits []uint64
	n    int
}

// MatchCodes compiles pred into a CodeSet by evaluating it on every
// distinct value of the dictionary.
func (d *Dict) MatchCodes(pred func(string) bool) *CodeSet {
	cs := &CodeSet{bits: make([]uint64, (len(d.values)+63)/64), n: len(d.values)}
	for i, v := range d.values {
		if pred(v) {
			cs.bits[i>>6] |= 1 << (uint(i) & 63)
		}
	}
	return cs
}

// NewCodeSet builds a set holding exactly the given codes; n bounds the
// code space (codes >= n never match, mirroring MatchCodes over an n-value
// dictionary). Plan deserialization uses it to rebuild InSet predicates.
func NewCodeSet(codes []Word, n int) *CodeSet {
	if n < 0 {
		n = 0
	}
	cs := &CodeSet{bits: make([]uint64, (n+63)/64), n: n}
	for _, c := range codes {
		if c < Word(n) {
			cs.bits[c>>6] |= 1 << (c & 63)
		}
	}
	return cs
}

// Codes returns the member codes in ascending order — the serializable
// form of the set. It walks the bitset word-wise, skipping empty words,
// so sparse sets over large code spaces (the common shape of a compiled
// LIKE) cost O(space/64 + members), not O(space) — this runs on every
// ad-hoc query's cache-key computation.
func (cs *CodeSet) Codes() []Word {
	out := make([]Word, 0, cs.Count())
	for wi, w := range cs.bits {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, Word(wi*64+b))
			w &^= 1 << b
		}
	}
	return out
}

// Size returns the bound of the set's code space (the dictionary length it
// was compiled against).
func (cs *CodeSet) Size() int { return cs.n }

// Contains reports whether code c is in the set.
func (cs *CodeSet) Contains(c Word) bool {
	if c >= Word(cs.n) {
		return false
	}
	return cs.bits[c>>6]&(1<<(c&63)) != 0
}

// Count returns the number of codes in the set.
func (cs *CodeSet) Count() int {
	total := 0
	for _, w := range cs.bits {
		total += bits.OnesCount64(w)
	}
	return total
}
