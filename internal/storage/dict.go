package storage

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Dict is an order-preserving string dictionary. Codes assigned at build
// time respect lexicographic order, so range predicates on string
// attributes reduce to unsigned comparisons on codes. Values appended
// after the build (by inserts) receive the next free code; such codes are
// usable for equality but no longer order-preserving, which matches how
// the benchmarks use inserted values.
//
// The value table is published through an atomic pointer: any number of
// goroutines may decode codes (Value, Values, Len) concurrently with one
// appender (AppendCode). Appenders must be serialized externally — the
// service layer runs them under its commit mutex — while the code lookup
// side (Code, MustCode) shares the code map with the appender under an
// internal RWMutex, so lock-free snapshot readers may compile predicates
// while an insert grows the dictionary. Dictionaries are shared across
// MVCC catalog versions rather than copied: append-only codes mean a
// pinned snapshot's rows only ever reference the value-table prefix that
// existed when they were published.
type Dict struct {
	values atomic.Pointer[[]string] // value table in code order
	mu     sync.RWMutex             // guards code
	code   map[string]Word
	sorted int // values[:sorted] are in lexicographic order
}

func newDict(values []string, sorted int) *Dict {
	d := &Dict{code: make(map[string]Word, len(values)), sorted: sorted}
	d.values.Store(&values)
	for i, v := range values {
		d.code[v] = Word(i)
	}
	return d
}

// vals returns the current value table.
func (d *Dict) vals() []string { return *d.values.Load() }

// BuildDict constructs a dictionary over the distinct values of vals,
// assigning codes in lexicographic order.
func BuildDict(vals []string) *Dict {
	uniq := make(map[string]struct{}, len(vals))
	for _, v := range vals {
		uniq[v] = struct{}{}
	}
	sorted := make([]string, 0, len(uniq))
	for v := range uniq {
		sorted = append(sorted, v)
	}
	sort.Strings(sorted)
	return newDict(sorted, len(sorted))
}

// Len returns the number of distinct values.
func (d *Dict) Len() int { return len(d.vals()) }

// Code returns the code of v, if present.
func (d *Dict) Code(v string) (Word, bool) {
	d.mu.RLock()
	c, ok := d.code[v]
	d.mu.RUnlock()
	return c, ok
}

// MustCode returns the code of v or panics; for benchmark parameter
// binding, where the value is known to exist.
func (d *Dict) MustCode(v string) Word {
	c, ok := d.Code(v)
	if !ok {
		panic("storage: value not in dictionary: " + v)
	}
	return c
}

// AppendCode returns the code for v, assigning a fresh (non-order-
// preserving) code if v is new. The new value table is published
// atomically, so codes handed out earlier stay decodable by concurrent
// readers throughout.
func (d *Dict) AppendCode(v string) Word {
	d.mu.Lock()
	defer d.mu.Unlock()
	if c, ok := d.code[v]; ok {
		return c
	}
	old := d.vals()
	c := Word(len(old))
	// append either reallocates (the old array stays untouched for readers
	// holding the previous header) or writes at an index beyond every
	// previously published length; the atomic store orders that write
	// before any reader can observe the new length.
	grown := append(old, v)
	d.values.Store(&grown)
	d.code[v] = c
	return c
}

// Value returns the string for a code.
func (d *Dict) Value(c Word) string { return d.vals()[c] }

// Values returns the dictionary's value table in code order: Values()[c]
// is the string encoded as code c. The returned slice is the stable
// serializable form of the dictionary; callers must not mutate it.
func (d *Dict) Values() []string { return d.vals() }

// SortedLen returns how many leading values are in lexicographic order —
// codes below this bound are order-preserving, codes at or above it were
// appended by inserts. Serialized alongside Values so a restored
// dictionary keeps the same order-preservation guarantee.
func (d *Dict) SortedLen() int { return d.sorted }

// RestoreDict reconstructs a dictionary from its serialized form: the
// value table in code order plus the order-preserving prefix length.
// Codes assigned by the restored dictionary are identical to the
// original's (value i gets code i), which keeps persisted column words
// valid.
func RestoreDict(values []string, sorted int) *Dict {
	if sorted < 0 {
		sorted = 0
	}
	if sorted > len(values) {
		sorted = len(values)
	}
	return newDict(append([]string(nil), values...), sorted)
}

// CodeSet is a bitset over dictionary codes, the compiled form of string
// predicates such as LIKE: the predicate is evaluated once per distinct
// value, and the per-tuple test becomes a single bit probe.
type CodeSet struct {
	bits []uint64
	n    int
}

// MatchCodes compiles pred into a CodeSet by evaluating it on every
// distinct value of the dictionary.
func (d *Dict) MatchCodes(pred func(string) bool) *CodeSet {
	vals := d.vals()
	cs := &CodeSet{bits: make([]uint64, (len(vals)+63)/64), n: len(vals)}
	for i, v := range vals {
		if pred(v) {
			cs.bits[i>>6] |= 1 << (uint(i) & 63)
		}
	}
	return cs
}

// NewCodeSet builds a set holding exactly the given codes; n bounds the
// code space (codes >= n never match, mirroring MatchCodes over an n-value
// dictionary). Plan deserialization uses it to rebuild InSet predicates.
func NewCodeSet(codes []Word, n int) *CodeSet {
	if n < 0 {
		n = 0
	}
	cs := &CodeSet{bits: make([]uint64, (n+63)/64), n: n}
	for _, c := range codes {
		if c < Word(n) {
			cs.bits[c>>6] |= 1 << (c & 63)
		}
	}
	return cs
}

// Codes returns the member codes in ascending order — the serializable
// form of the set. It walks the bitset word-wise, skipping empty words,
// so sparse sets over large code spaces (the common shape of a compiled
// LIKE) cost O(space/64 + members), not O(space) — this runs on every
// ad-hoc query's cache-key computation.
func (cs *CodeSet) Codes() []Word {
	out := make([]Word, 0, cs.Count())
	for wi, w := range cs.bits {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, Word(wi*64+b))
			w &^= 1 << b
		}
	}
	return out
}

// Size returns the bound of the set's code space (the dictionary length it
// was compiled against).
func (cs *CodeSet) Size() int { return cs.n }

// Contains reports whether code c is in the set.
func (cs *CodeSet) Contains(c Word) bool {
	if c >= Word(cs.n) {
		return false
	}
	return cs.bits[c>>6]&(1<<(c&63)) != 0
}

// Count returns the number of codes in the set.
func (cs *CodeSet) Count() int {
	total := 0
	for _, w := range cs.bits {
		total += bits.OnesCount64(w)
	}
	return total
}
