// Package storage implements the memory-resident storage component of the
// reproduction: relational schemas, typed attributes encoded as fixed-width
// 64-bit words, order-preserving string dictionaries, and — central to the
// paper — vertically partitioned relations covering the whole layout
// spectrum from N-ary storage (NSM) over the Partially Decomposed Storage
// Model (PDSM) to full decomposition (DSM).
//
// Every attribute value is one Word. Numeric types use order-preserving
// bit transformations so that a single unsigned comparison implements the
// relational comparison for all types; strings are dictionary-encoded with
// codes assigned in lexicographic order at load time. Fixed-width words
// keep the memory behaviour of each layout honest: scanning one attribute
// of a w-attribute row partition really strides 8·w bytes per tuple.
package storage

import (
	"fmt"
	"math"
)

// Word is the universal value cell. Null is the reserved all-ones word.
type Word = uint64

// Null marks an absent value (the CNET catalog relation is sparse).
const Null Word = ^Word(0)

// WordBytes is the width of one value cell in bytes.
const WordBytes = 8

// Type enumerates attribute types.
type Type uint8

const (
	Int64 Type = iota
	Float64
	String
	Bool
)

func (t Type) String() string {
	switch t {
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	case String:
		return "string"
	case Bool:
		return "bool"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

const signBit = uint64(1) << 63

// EncodeInt encodes a signed integer such that unsigned order of the
// encodings equals signed order of the values.
func EncodeInt(v int64) Word { return uint64(v) ^ signBit }

// DecodeInt inverts EncodeInt.
func DecodeInt(w Word) int64 { return int64(w ^ signBit) }

// EncodeFloat encodes a float64 such that unsigned order of the encodings
// equals numeric order of the values (standard total-order bit flip).
func EncodeFloat(f float64) Word {
	bits := math.Float64bits(f)
	if bits&signBit != 0 {
		return ^bits
	}
	return bits | signBit
}

// DecodeFloat inverts EncodeFloat.
func DecodeFloat(w Word) float64 {
	if w&signBit != 0 {
		return math.Float64frombits(w &^ signBit)
	}
	return math.Float64frombits(^w)
}

// EncodeBool encodes false as 0, true as 1.
func EncodeBool(b bool) Word {
	if b {
		return 1
	}
	return 0
}

// DecodeBool inverts EncodeBool.
func DecodeBool(w Word) bool { return w != 0 }
