package storage

import "fmt"

// Partition is one vertical partition of a relation: the values of a group
// of attributes, stored row-major in a single contiguous word slice
// (stride = number of attributes in the group). A one-attribute partition
// is a plain column; the all-attribute partition is an N-ary row store.
type Partition struct {
	Attrs  []int // schema attribute indices, in storage order
	Stride int   // words per row (= len(Attrs))
	Data   []Word
}

// Rows returns the number of tuples in the partition.
func (p *Partition) Rows() int {
	if p.Stride == 0 {
		return 0
	}
	return len(p.Data) / p.Stride
}

// WidthBytes returns the per-tuple byte width of the partition — the
// R.w parameter of the partition's access patterns.
func (p *Partition) WidthBytes() int64 { return int64(p.Stride) * WordBytes }

// Accessor describes the physical location of one attribute inside a
// relation: index Data[row*Stride+Off]. The JiT engine fuses these into
// its generated loops; no method call remains on the per-tuple path.
type Accessor struct {
	Data   []Word
	Stride int
	Off    int
}

// At returns the attribute value of the given row.
func (a Accessor) At(row int) Word { return a.Data[row*a.Stride+a.Off] }

// Relation is a memory-resident table in a chosen vertical layout. The
// same logical content can be materialized under any layout via Builder or
// WithLayout; dictionaries are shared between such siblings.
type Relation struct {
	Schema *Schema
	Layout Layout
	Parts  []*Partition
	Dicts  []*Dict // indexed by attribute; nil for non-string attributes

	rows    int
	groupOf []int // attribute -> partition index
	offOf   []int // attribute -> offset within partition row
}

// NewRelation creates an empty relation with the given layout.
func NewRelation(schema *Schema, layout Layout) *Relation {
	if err := layout.Validate(schema.Width()); err != nil {
		panic(fmt.Sprintf("storage: invalid layout for %s: %v", schema.Name, err))
	}
	r := &Relation{
		Schema:  schema,
		Layout:  layout,
		Dicts:   make([]*Dict, schema.Width()),
		groupOf: make([]int, schema.Width()),
		offOf:   make([]int, schema.Width()),
	}
	for gi, g := range layout.Groups {
		p := &Partition{Attrs: append([]int(nil), g...), Stride: len(g)}
		r.Parts = append(r.Parts, p)
		for off, attr := range g {
			r.groupOf[attr] = gi
			r.offOf[attr] = off
		}
	}
	return r
}

// Rows returns the tuple count.
func (r *Relation) Rows() int { return r.rows }

// PartitionOf returns the partition holding attr.
func (r *Relation) PartitionOf(attr int) *Partition { return r.Parts[r.groupOf[attr]] }

// Access returns the physical accessor for attr.
func (r *Relation) Access(attr int) Accessor {
	p := r.Parts[r.groupOf[attr]]
	return Accessor{Data: p.Data, Stride: p.Stride, Off: r.offOf[attr]}
}

// Value returns the value of attr in the given row through a method call —
// the access path of the interpretive engines.
func (r *Relation) Value(row, attr int) Word {
	p := r.Parts[r.groupOf[attr]]
	return p.Data[row*p.Stride+r.offOf[attr]]
}

// SetValue overwrites one cell.
func (r *Relation) SetValue(row, attr int, w Word) {
	p := r.Parts[r.groupOf[attr]]
	p.Data[row*p.Stride+r.offOf[attr]] = w
}

// AppendRow appends one tuple given in schema attribute order and returns
// its row id.
func (r *Relation) AppendRow(vals []Word) int {
	if len(vals) != r.Schema.Width() {
		panic(fmt.Sprintf("storage: AppendRow got %d values for width-%d schema", len(vals), r.Schema.Width()))
	}
	for gi, p := range r.Parts {
		for _, attr := range r.Layout.Groups[gi] {
			p.Data = append(p.Data, vals[attr])
		}
	}
	r.rows++
	return r.rows - 1
}

// RowValues materializes one tuple in schema attribute order.
func (r *Relation) RowValues(row int, dst []Word) []Word {
	if dst == nil {
		dst = make([]Word, r.Schema.Width())
	}
	for attr := range r.Schema.Attrs {
		dst[attr] = r.Value(row, attr)
	}
	return dst
}

// StringOf decodes a string attribute value of the given row.
func (r *Relation) StringOf(row, attr int) string {
	w := r.Value(row, attr)
	if w == Null {
		return ""
	}
	return r.Dicts[attr].Value(w)
}

// Dict returns the dictionary of a string attribute (nil otherwise).
func (r *Relation) Dict(attr int) *Dict { return r.Dicts[attr] }

// RestoreRelation reconstructs a relation from its serialized parts: the
// schema, the layout, one word slice per layout group (row-major, stride =
// group width, in the exact storage order AppendRow/Build produce), the
// per-attribute dictionaries (nil entries for non-string attributes), and
// the row count. It is the inverse of reading Relation.Parts[i].Data
// directly: a snapshot written from those slices and restored through here
// is bit-identical — same group order, strides, offsets and dict codes.
func RestoreRelation(schema *Schema, layout Layout, partData [][]Word, dicts []*Dict, rows int) (*Relation, error) {
	if err := layout.Validate(schema.Width()); err != nil {
		return nil, err
	}
	if len(partData) != len(layout.Groups) {
		return nil, fmt.Errorf("storage: restore of %s: %d partitions for %d layout groups",
			schema.Name, len(partData), len(layout.Groups))
	}
	if rows < 0 {
		return nil, fmt.Errorf("storage: restore of %s: negative row count %d", schema.Name, rows)
	}
	for gi, g := range layout.Groups {
		// Division form: Validate guarantees len(g) >= 1, and the product
		// rows*len(g) could overflow on hostile inputs.
		if len(partData[gi])/len(g) != rows || len(partData[gi])%len(g) != 0 {
			return nil, fmt.Errorf("storage: restore of %s: partition %d holds %d words, want %d rows × stride %d",
				schema.Name, gi, len(partData[gi]), rows, len(g))
		}
	}
	if dicts != nil && len(dicts) != schema.Width() {
		return nil, fmt.Errorf("storage: restore of %s: %d dictionaries for %d attributes",
			schema.Name, len(dicts), schema.Width())
	}
	r := NewRelation(schema, layout)
	r.rows = rows
	for gi, p := range r.Parts {
		p.Data = partData[gi]
	}
	if dicts != nil {
		copy(r.Dicts, dicts)
	}
	return r, nil
}

// CloneForWrite returns a copy-on-write shell of the relation for the MVCC
// write path: fresh Relation and Partition structs whose Data slice headers
// share the original backing arrays. Appends through the clone either
// reallocate (leaving readers of the original untouched) or write beyond
// every published length — addresses no reader of an older version ever
// dereferences, because each version's slice header bounds its own row
// count. Dictionaries are shared (append-only codes), as are the immutable
// Schema, Layout and attribute maps; only the Dicts slice itself is copied
// so a clone can install a dictionary lazily without racing old readers.
func (r *Relation) CloneForWrite() *Relation {
	out := &Relation{
		Schema:  r.Schema,
		Layout:  r.Layout,
		Parts:   make([]*Partition, len(r.Parts)),
		Dicts:   append([]*Dict(nil), r.Dicts...),
		rows:    r.rows,
		groupOf: r.groupOf,
		offOf:   r.offOf,
	}
	for i, p := range r.Parts {
		out.Parts[i] = &Partition{Attrs: p.Attrs, Stride: p.Stride, Data: p.Data}
	}
	return out
}

// WithLayout materializes the relation's content under a different layout.
// Dictionaries are shared: codes remain valid across siblings.
func (r *Relation) WithLayout(layout Layout) *Relation {
	out := NewRelation(r.Schema, layout)
	out.Dicts = r.Dicts
	out.rows = r.rows
	for gi, p := range out.Parts {
		p.Data = make([]Word, r.rows*p.Stride)
		for off, attr := range out.Layout.Groups[gi] {
			src := r.Access(attr)
			for row := 0; row < r.rows; row++ {
				p.Data[row*p.Stride+off] = src.Data[row*src.Stride+src.Off]
			}
		}
	}
	return out
}

// Builder accumulates column data and materializes relations in any
// layout. String columns are collected as raw strings; Build constructs an
// order-preserving dictionary per string column.
type Builder struct {
	schema *Schema
	words  [][]Word   // per attribute; nil for pending string columns
	strs   [][]string // per attribute; non-nil only for string columns
	rows   int
	dicts  []*Dict
}

// Schema returns the builder's target schema.
func (b *Builder) Schema() *Schema { return b.schema }

// NewBuilder creates a builder for the schema.
func NewBuilder(schema *Schema) *Builder {
	return &Builder{
		schema: schema,
		words:  make([][]Word, schema.Width()),
		strs:   make([][]string, schema.Width()),
		dicts:  make([]*Dict, schema.Width()),
	}
}

// SetWords supplies the encoded words of a non-string column.
func (b *Builder) SetWords(attr int, vals []Word) *Builder {
	b.words[attr] = vals
	b.noteRows(len(vals))
	return b
}

// SetInts supplies a signed integer column.
func (b *Builder) SetInts(attr int, vals []int64) *Builder {
	w := make([]Word, len(vals))
	for i, v := range vals {
		w[i] = EncodeInt(v)
	}
	return b.SetWords(attr, w)
}

// SetFloats supplies a float column.
func (b *Builder) SetFloats(attr int, vals []float64) *Builder {
	w := make([]Word, len(vals))
	for i, v := range vals {
		w[i] = EncodeFloat(v)
	}
	return b.SetWords(attr, w)
}

// SetStrings supplies a string column.
func (b *Builder) SetStrings(attr int, vals []string) *Builder {
	b.strs[attr] = vals
	b.noteRows(len(vals))
	return b
}

// SetStringsWithNulls supplies a string column where isNull marks absent
// values; null cells are stored as the Null word and excluded from the
// dictionary.
func (b *Builder) SetStringsWithNulls(attr int, vals []string, isNull []bool) *Builder {
	present := make([]string, 0, len(vals))
	for i, v := range vals {
		if !isNull[i] {
			present = append(present, v)
		}
	}
	d := BuildDict(present)
	w := make([]Word, len(vals))
	for i, v := range vals {
		if isNull[i] {
			w[i] = Null
		} else {
			w[i] = d.MustCode(v)
		}
	}
	b.dicts[attr] = d
	b.SetWords(attr, w)
	b.strs[attr] = nil
	b.noteDict(attr, d)
	return b
}

func (b *Builder) noteDict(attr int, d *Dict) { b.dicts[attr] = d }

func (b *Builder) noteRows(n int) {
	if b.rows == 0 {
		b.rows = n
		return
	}
	if n != b.rows {
		panic(fmt.Sprintf("storage: column length %d differs from earlier columns (%d)", n, b.rows))
	}
}

// Build materializes the collected columns under the given layout.
func (b *Builder) Build(layout Layout) *Relation {
	r := NewRelation(b.schema, layout)
	cols := make([][]Word, b.schema.Width())
	for attr := range b.schema.Attrs {
		switch {
		case b.words[attr] != nil:
			cols[attr] = b.words[attr]
		case b.strs[attr] != nil:
			if b.dicts[attr] == nil {
				b.dicts[attr] = BuildDict(b.strs[attr])
			}
			d := b.dicts[attr]
			w := make([]Word, len(b.strs[attr]))
			for i, s := range b.strs[attr] {
				w[i] = d.MustCode(s)
			}
			cols[attr] = w
		default:
			// Unset column: all NULL.
			w := make([]Word, b.rows)
			for i := range w {
				w[i] = Null
			}
			cols[attr] = w
		}
		if b.dicts[attr] != nil {
			r.Dicts[attr] = b.dicts[attr]
		}
	}
	r.rows = b.rows
	for gi, p := range r.Parts {
		p.Data = make([]Word, b.rows*p.Stride)
		for off, attr := range r.Layout.Groups[gi] {
			col := cols[attr]
			for row := 0; row < b.rows; row++ {
				p.Data[row*p.Stride+off] = col[row]
			}
		}
	}
	return r
}
