package storage

import "fmt"

// Attribute is one column of a relational schema.
type Attribute struct {
	Name string
	Type Type
}

// Schema describes a relation: an ordered list of attributes.
type Schema struct {
	Name   string
	Attrs  []Attribute
	byName map[string]int
}

// NewSchema builds a schema; attribute names must be unique.
func NewSchema(name string, attrs ...Attribute) *Schema {
	s := &Schema{Name: name, Attrs: attrs, byName: make(map[string]int, len(attrs))}
	for i, a := range attrs {
		if _, dup := s.byName[a.Name]; dup {
			panic(fmt.Sprintf("storage: duplicate attribute %q in schema %q", a.Name, name))
		}
		s.byName[a.Name] = i
	}
	return s
}

// Width returns the number of attributes.
func (s *Schema) Width() int { return len(s.Attrs) }

// AttrIndex returns the index of the named attribute, or -1.
func (s *Schema) AttrIndex(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// Col is AttrIndex that panics on unknown names; it keeps query
// construction in benchmarks and examples terse and fail-fast.
func (s *Schema) Col(name string) int {
	i := s.AttrIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("storage: schema %q has no attribute %q", s.Name, name))
	}
	return i
}

// AttrNames returns the names of the given attribute indices.
func (s *Schema) AttrNames(idx []int) []string {
	out := make([]string, len(idx))
	for i, a := range idx {
		out[i] = s.Attrs[a].Name
	}
	return out
}
