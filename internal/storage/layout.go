package storage

import (
	"fmt"
	"sort"
	"strings"
)

// Layout is a vertical partitioning of a schema: every attribute index
// appears in exactly one group. One group holding all attributes is the
// N-ary Storage Model (NSM, "row"); one group per attribute is the
// Decomposed Storage Model (DSM, "column"); anything in between is the
// Partially Decomposed Storage Model (PDSM, "hybrid").
type Layout struct {
	Groups [][]int
}

// NSM returns the single-partition (row-store) layout for n attributes.
func NSM(n int) Layout {
	g := make([]int, n)
	for i := range g {
		g[i] = i
	}
	return Layout{Groups: [][]int{g}}
}

// DSM returns the fully decomposed (column-store) layout for n attributes.
func DSM(n int) Layout {
	groups := make([][]int, n)
	for i := range groups {
		groups[i] = []int{i}
	}
	return Layout{Groups: groups}
}

// PDSM builds a layout from explicit attribute groups.
func PDSM(groups ...[]int) Layout {
	return Layout{Groups: groups}
}

// Validate checks that the layout is a partitioning of n attributes:
// every index in [0,n) occurs exactly once.
func (l Layout) Validate(n int) error {
	seen := make([]bool, n)
	count := 0
	for gi, g := range l.Groups {
		if len(g) == 0 {
			return fmt.Errorf("storage: layout group %d is empty", gi)
		}
		for _, a := range g {
			if a < 0 || a >= n {
				return fmt.Errorf("storage: layout references attribute %d outside [0,%d)", a, n)
			}
			if seen[a] {
				return fmt.Errorf("storage: attribute %d appears in multiple groups", a)
			}
			seen[a] = true
			count++
		}
	}
	if count != n {
		return fmt.Errorf("storage: layout covers %d of %d attributes", count, n)
	}
	return nil
}

// Kind classifies the layout as "row", "column" or "hybrid".
func (l Layout) Kind() string {
	switch {
	case len(l.Groups) == 1:
		return "row"
	case l.isDSM():
		return "column"
	default:
		return "hybrid"
	}
}

func (l Layout) isDSM() bool {
	for _, g := range l.Groups {
		if len(g) != 1 {
			return false
		}
	}
	return true
}

// String renders the groups, e.g. "{{0,1},{2}}".
func (l Layout) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, g := range l.Groups {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteByte('{')
		for j, a := range g {
			if j > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", a)
		}
		b.WriteByte('}')
	}
	b.WriteByte('}')
	return b.String()
}

// Canonical returns an equivalent layout with each group sorted and groups
// ordered by their smallest attribute — a normal form for comparisons.
func (l Layout) Canonical() Layout {
	groups := make([][]int, len(l.Groups))
	for i, g := range l.Groups {
		cp := append([]int(nil), g...)
		sort.Ints(cp)
		groups[i] = cp
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i][0] < groups[j][0] })
	return Layout{Groups: groups}
}

// Equal reports whether two layouts describe the same partitioning.
func (l Layout) Equal(o Layout) bool {
	return l.Canonical().String() == o.Canonical().String()
}
