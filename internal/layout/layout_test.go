package layout

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/costmodel"
	"repro/internal/expr"
	"repro/internal/mem"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/workload"
)

func TestApplyRefines(t *testing.T) {
	// 6 attributes, cuts {0,1} then {1,2}: expect {{0},{1},{2},{3,4,5}}.
	l := Apply(6, []Cut{{Attrs: []int{0, 1}}, {Attrs: []int{1, 2}}})
	want := storage.PDSM([]int{0}, []int{1}, []int{2}, []int{3, 4, 5})
	if !l.Equal(want) {
		t.Errorf("Apply = %v, want %v", l, want)
	}
	if err := l.Validate(6); err != nil {
		t.Error(err)
	}
}

func TestApplyNoCutsIsNSM(t *testing.T) {
	if !Apply(4, nil).Equal(storage.NSM(4)) {
		t.Error("no cuts must yield the N-ary layout")
	}
}

// TestApplyProperty: any random cut sequence yields a valid partitioning.
func TestApplyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		width := rng.Intn(10) + 2
		var cuts []Cut
		for i := 0; i < rng.Intn(5); i++ {
			var attrs []int
			for a := 0; a < width; a++ {
				if rng.Intn(3) == 0 {
					attrs = append(attrs, a)
				}
			}
			if len(attrs) > 0 {
				cuts = append(cuts, Cut{Attrs: attrs})
			}
		}
		return Apply(width, cuts).Validate(width) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// exampleSetup builds the paper's 16-attribute example table R and the
// example query workload (Fig. 2a).
func exampleSetup(rows int) (*costmodel.Estimator, *workload.Workload) {
	attrs := make([]storage.Attribute, 16)
	for i := range attrs {
		attrs[i] = storage.Attribute{Name: string(rune('A' + i)), Type: storage.Int64}
	}
	schema := storage.NewSchema("R", attrs...)
	b := storage.NewBuilder(schema)
	rng := rand.New(rand.NewSource(7))
	for a := 0; a < 16; a++ {
		col := make([]int64, rows)
		for i := range col {
			if a == 0 {
				col[i] = int64(rng.Intn(100))
			} else {
				col[i] = rng.Int63n(1000)
			}
		}
		b.SetInts(a, col)
	}
	cat := plan.NewCatalog().Add(b.Build(storage.NSM(16)))
	est := costmodel.NewEstimator(cat, mem.TableIII())

	q := plan.Aggregate{
		Child: plan.Scan{
			Table:  "R",
			Filter: expr.Cmp{Attr: 0, Op: expr.Eq, Val: storage.EncodeInt(7)},
			Cols:   []int{1, 2, 3, 4},
		},
		Aggs: []expr.AggSpec{
			{Kind: expr.Sum, Arg: expr.IntCol(0), Name: "sb"},
			{Kind: expr.Sum, Arg: expr.IntCol(1), Name: "sc"},
			{Kind: expr.Sum, Arg: expr.IntCol(2), Name: "sd"},
			{Kind: expr.Sum, Arg: expr.IntCol(3), Name: "se"},
		},
	}
	w := (&workload.Workload{Name: "example"}).Add("q", q, 1)
	return est, w
}

// TestCutsForExampleQuery: the derived cuts must include the selection
// attribute alone and the aggregated attributes together — the paper's
// motivating {{A},{B,C,D,E},...} decomposition hint that plain reasonable
// cuts miss.
func TestCutsForExampleQuery(t *testing.T) {
	est, w := exampleSetup(20000)
	o := NewOptimizer(est)
	cuts := o.CutsFor("R", w)
	var hasA, hasBCDE, hasUnion bool
	for _, c := range cuts {
		switch fingerprint(c.Attrs) {
		case fingerprint([]int{0}):
			hasA = true
		case fingerprint([]int{1, 2, 3, 4}):
			hasBCDE = true
		case fingerprint([]int{0, 1, 2, 3, 4}):
			hasUnion = true
		}
	}
	if !hasA || !hasBCDE {
		t.Errorf("extended cuts must separate {A} and {B,C,D,E}: %v", cuts)
	}
	if !hasUnion {
		t.Errorf("classic per-query cut {A..E} missing: %v", cuts)
	}
}

// TestOptimizeExampleQuery: BPi must find a layout that isolates the
// selection column from the payload and beats both NSM and DSM under the
// model (the paper's Fig. 3 argument for PDSM).
func TestOptimizeExampleQuery(t *testing.T) {
	est, w := exampleSetup(50000)
	o := NewOptimizer(est)
	best, cost := o.Optimize("R", w)
	if err := best.Validate(16); err != nil {
		t.Fatal(err)
	}
	nsmCost := w.Cost(est, map[string]storage.Layout{"R": storage.NSM(16)})
	dsmCost := w.Cost(est, map[string]storage.Layout{"R": storage.DSM(16)})
	if cost > nsmCost {
		t.Errorf("optimized cost %v exceeds NSM cost %v", cost, nsmCost)
	}
	if cost > dsmCost {
		t.Errorf("optimized cost %v exceeds DSM cost %v", cost, dsmCost)
	}
	// The selection attribute must not share a partition with unaccessed
	// payload columns.
	for _, g := range best.Groups {
		hasA := false
		hasCold := false
		for _, a := range g {
			if a == 0 {
				hasA = true
			}
			if a >= 5 {
				hasCold = true
			}
		}
		if hasA && hasCold {
			t.Errorf("selection column A shares a partition with cold columns: %v", best)
		}
	}
}

// TestBPiNearExhaustive compares BPi against the exhaustive set-partition
// optimum on a small 6-attribute table: BPi must come within 15% (it
// searches only cut-generated layouts; the paper accepts this
// approximation for reduced search cost).
func TestBPiNearExhaustive(t *testing.T) {
	attrs := make([]storage.Attribute, 6)
	for i := range attrs {
		attrs[i] = storage.Attribute{Name: string(rune('a' + i)), Type: storage.Int64}
	}
	schema := storage.NewSchema("S", attrs...)
	b := storage.NewBuilder(schema)
	rng := rand.New(rand.NewSource(3))
	rows := 20000
	for a := 0; a < 6; a++ {
		col := make([]int64, rows)
		for i := range col {
			col[i] = int64(rng.Intn(50))
		}
		b.SetInts(a, col)
	}
	cat := plan.NewCatalog().Add(b.Build(storage.NSM(6)))
	est := costmodel.NewEstimator(cat, mem.TableIII())

	w := &workload.Workload{Name: "mix"}
	w.Add("sel01", plan.Scan{
		Table:  "S",
		Filter: expr.Cmp{Attr: 0, Op: expr.Eq, Val: storage.EncodeInt(7)},
		Cols:   []int{1},
	}, 10)
	w.Add("scan23", plan.Scan{Table: "S", Cols: []int{2, 3}}, 5)
	w.Add("point", plan.Scan{
		Table:  "S",
		Filter: expr.Cmp{Attr: 4, Op: expr.Eq, Val: storage.EncodeInt(3)},
		Cols:   []int{0, 1, 2, 3, 4, 5},
	}, 1)

	o := NewOptimizer(est)
	_, bpiCost := o.Optimize("S", w)
	_, exhCost := Exhaustive(6, func(l storage.Layout) float64 {
		return w.Cost(est, map[string]storage.Layout{"S": l})
	})
	if bpiCost < exhCost-1e-6 {
		t.Fatalf("exhaustive (%v) cannot be worse than BPi (%v): bug in Exhaustive", exhCost, bpiCost)
	}
	if bpiCost > exhCost*1.15 {
		t.Errorf("BPi cost %v more than 15%% above exhaustive optimum %v", bpiCost, exhCost)
	}
}

// TestExhaustiveSmall sanity-checks the set-partition enumeration count by
// construction: for width 3 there are 5 partitions (Bell(3)).
func TestExhaustiveSmall(t *testing.T) {
	count := 0
	Exhaustive(3, func(l storage.Layout) float64 {
		count++
		return float64(count) // first partition (NSM ordering) wins
	})
	// Exhaustive evaluates all partitions plus the initial NSM baseline.
	if count != 5+1 {
		t.Errorf("enumerated %d partitions, want 6 (Bell(3)=5 plus baseline)", count)
	}
}

// TestThresholdPruning: with an absurd threshold BPi must return the
// baseline layout (everything pruned).
func TestThresholdPruning(t *testing.T) {
	est, w := exampleSetup(10000)
	o := NewOptimizer(est)
	o.Threshold = 1000 // impossible improvement
	best, _ := o.Optimize("R", w)
	if !best.Equal(storage.NSM(16)) {
		t.Errorf("fully pruned search must keep NSM, got %v", best)
	}
}
