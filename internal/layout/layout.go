// Package layout implements the paper's workload-aware schema
// decomposition (Section V): candidate partitionings are generated from
// Extended Reasonable Cuts — attribute groups derived from the access
// patterns of the workload's queries rather than from whole queries — and
// searched with the BPi branch-and-bound algorithm of Chu & Ieong, using
// the holistic cost model as the objective function. An exhaustive
// set-partition search (OBP-style optimum) is provided for small tables
// and used by the tests to bound BPi's suboptimality.
package layout

import (
	"sort"

	"repro/internal/costmodel"
	"repro/internal/pattern"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Optimizer searches for a low-cost vertical partitioning of one table
// under a workload.
type Optimizer struct {
	Est *costmodel.Estimator
	// Threshold is BPi's relative-improvement bound: a cut whose inclusion
	// improves the current best cost by less than this fraction is not
	// branched on (pruned), trading optimality for search cost.
	Threshold float64
	// MaxCuts caps the candidate cut set (safety bound; the paper's tables
	// yield a handful of cuts).
	MaxCuts int
	// ClassicCutsOnly restricts the candidate set to the original
	// reasonable cuts of Chu & Ieong (one cut per query: all attributes
	// the query accesses), dropping the paper's pattern-derived extended
	// cuts. Ablation knob: with it set, the optimizer cannot separate
	// attributes that one query accesses under different access patterns
	// (the paper's Section V-A argument).
	ClassicCutsOnly bool
}

// NewOptimizer returns an optimizer with the paper-ish defaults.
func NewOptimizer(est *costmodel.Estimator) *Optimizer {
	return &Optimizer{Est: est, Threshold: 0.001, MaxCuts: 24}
}

// Cut is a candidate attribute group: partitioning the table "according to
// the cut" splits every current group into members and non-members of the
// cut set.
type Cut struct {
	Attrs []int
}

// CutsFor derives the Extended Reasonable Cuts of a table from the
// workload: the attribute set of every atomic access pattern touching the
// table (attributes accessed together in one atom, or in concurrent atoms
// of the same kind and selectivity — which the translator already merges
// into per-partition atoms), plus the classic per-query cut (all
// attributes the query touches). Patterns are derived under the N-ary
// layout so that co-access within a query is visible.
func (o *Optimizer) CutsFor(table string, w *workload.Workload) []Cut {
	width := o.Est.C.Table(table).Schema.Width()
	nsm := map[string]storage.Layout{table: storage.NSM(width)}
	seen := map[string]bool{}
	var cuts []Cut
	add := func(attrs []int) {
		if len(attrs) == 0 || len(attrs) >= width {
			return // empty or no-op bipartition
		}
		cp := append([]int(nil), attrs...)
		sort.Ints(cp)
		key := fingerprint(cp)
		if seen[key] {
			return
		}
		seen[key] = true
		cuts = append(cuts, Cut{Attrs: cp})
	}
	for _, q := range w.Queries {
		pat := o.Est.Translate(q.Plan, nsm)
		var queryAttrs []int
		qseen := map[int]bool{}
		for _, a := range pattern.Atoms(pat) {
			reg := regionOf(a)
			if reg.Table != table || len(reg.Attrs) == 0 {
				continue
			}
			if !o.ClassicCutsOnly {
				add(reg.Attrs)
			}
			for _, attr := range reg.Attrs {
				if !qseen[attr] {
					qseen[attr] = true
					queryAttrs = append(queryAttrs, attr)
				}
			}
		}
		add(queryAttrs)
	}
	if o.MaxCuts > 0 && len(cuts) > o.MaxCuts {
		cuts = cuts[:o.MaxCuts]
	}
	return cuts
}

func regionOf(a pattern.Pattern) pattern.Region {
	switch v := a.(type) {
	case pattern.STrav:
		return v.Region
	case pattern.RTrav:
		return v.Region
	case pattern.RRAcc:
		return v.Region
	case pattern.STravCR:
		return v.Region
	}
	return pattern.Region{}
}

// Apply refines the trivial single-group partitioning of width attributes
// by every cut in order and returns the resulting layout.
func Apply(width int, cuts []Cut) storage.Layout {
	groups := [][]int{allAttrs(width)}
	for _, cut := range cuts {
		inCut := map[int]bool{}
		for _, a := range cut.Attrs {
			inCut[a] = true
		}
		var next [][]int
		for _, g := range groups {
			var in, out []int
			for _, a := range g {
				if inCut[a] {
					in = append(in, a)
				} else {
					out = append(out, a)
				}
			}
			if len(in) > 0 {
				next = append(next, in)
			}
			if len(out) > 0 {
				next = append(next, out)
			}
		}
		groups = next
	}
	return storage.Layout{Groups: groups}.Canonical()
}

// Optimize runs BPi for the table: a branch-and-bound search over cut
// subsets. At each level the next cut is tentatively applied; if its
// inclusion improves the best cost seen on this path by at least
// Threshold, the search branches into both worlds, otherwise the cut is
// discarded (subtree pruned). Returns the best layout and its workload
// cost.
func (o *Optimizer) Optimize(table string, w *workload.Workload) (storage.Layout, float64) {
	width := o.Est.C.Table(table).Schema.Width()
	cuts := o.CutsFor(table, w)

	evalCache := map[string]float64{}
	costOf := func(included []Cut) (storage.Layout, float64) {
		l := Apply(width, included)
		key := l.String()
		if v, ok := evalCache[key]; ok {
			return l, v
		}
		v := w.Cost(o.Est, map[string]storage.Layout{table: l})
		evalCache[key] = v
		return l, v
	}

	bestLayout, bestCost := costOf(nil) // N-ary baseline
	var included []Cut
	var recurse func(idx int, curCost float64)
	recurse = func(idx int, curCost float64) {
		if idx == len(cuts) {
			return
		}
		// Tentatively include cuts[idx].
		included = append(included, cuts[idx])
		layoutWith, costWith := costOf(included)
		improvement := (curCost - costWith) / curCost
		if improvement >= o.Threshold {
			// Worth considering: record and branch into both worlds.
			if costWith < bestCost {
				bestLayout, bestCost = layoutWith, costWith
			}
			recurse(idx+1, costWith)
			included = included[:len(included)-1]
			recurse(idx+1, curCost)
			return
		}
		// Below the improvement threshold: prune the include-branch.
		included = included[:len(included)-1]
		recurse(idx+1, curCost)
	}
	recurse(0, bestCost)
	return bestLayout, bestCost
}

// Drift prices table's currently stored layout against the BPi optimum
// for the given workload and returns both costs plus the recommended
// layout. Only the queries touching the table are priced (others would
// add the same constant to both sides and dilute the ratio), and — like
// core.DB.OptimizeLayouts — the stored layout wins ties: when BPi finds
// nothing strictly cheaper, the recommendation is the stored layout
// itself and current == optimal. The ratio current/optimal is the
// layout-drift measure the advisor exposes: 1 means the physical design
// still matches the live mix, 2 means the mix pays twice the modeled
// cost of the optimal decomposition. Read-only: nothing is relaid.
func (o *Optimizer) Drift(table string, w *workload.Workload) (current, optimal float64, best storage.Layout) {
	wt := w.Touching(table)
	stored := o.Est.C.Table(table).Layout
	current = wt.Cost(o.Est, map[string]storage.Layout{table: stored})
	best, optimal = o.Optimize(table, wt)
	if optimal >= current {
		return current, current, stored
	}
	return current, optimal, best
}

// Exhaustive enumerates every set partition of width attributes (only
// feasible for small widths; Bell(10) ≈ 116k) and returns the cheapest —
// the OBP-style optimum the tests compare BPi against.
func Exhaustive(width int, cost func(storage.Layout) float64) (storage.Layout, float64) {
	best := storage.NSM(width)
	bestCost := cost(best)
	assign := make([]int, width) // attribute -> group id (restricted growth)
	var recurse func(i, maxG int)
	recurse = func(i, maxG int) {
		if i == width {
			groups := make([][]int, maxG)
			for a, g := range assign {
				groups[g] = append(groups[g], a)
			}
			l := storage.Layout{Groups: groups}
			if c := cost(l); c < bestCost {
				bestCost = c
				best = l.Canonical()
			}
			return
		}
		for g := 0; g <= maxG; g++ {
			assign[i] = g
			nm := maxG
			if g == maxG {
				nm = maxG + 1
			}
			recurse(i+1, nm)
		}
	}
	recurse(0, 0)
	return best, bestCost
}

func allAttrs(width int) []int {
	out := make([]int, width)
	for i := range out {
		out[i] = i
	}
	return out
}

func fingerprint(attrs []int) string {
	b := make([]byte, 0, len(attrs)*3)
	for _, a := range attrs {
		b = append(b, byte(a), byte(a>>8), ',')
	}
	return string(b)
}
