package persist

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecodeSnapshot asserts the snapshot decoder's contract on
// arbitrary input: it never panics, and every rejection is one of the
// named sentinel errors — corrupt headers, checksums and structures get
// diagnosable failures, not crashes.
func FuzzDecodeSnapshot(f *testing.F) {
	db := buildTestDB(f, 60)
	var buf bytes.Buffer
	if _, err := WriteSnapshot(&buf, db, 0); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add(good[:16])
	f.Add(good[:len(good)-3])
	f.Add([]byte("PDSMSNP1"))
	f.Add([]byte{})
	// A few deterministic corruptions as seeds.
	for _, off := range []int{0, 8, 12, 20, len(good) / 2, len(good) - 1} {
		mut := append([]byte(nil), good...)
		mut[off] ^= 0x55
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeSnapshot(bytes.NewReader(data))
		if err == nil {
			// Accepted input must be well-formed enough to re-encode.
			for _, tab := range snap.Tables {
				_ = encodeTable(tab)
			}
			return
		}
		for _, sentinel := range []error{ErrBadMagic, ErrBadVersion, ErrChecksum, ErrTruncated, ErrCorrupt} {
			if errors.Is(err, sentinel) {
				return
			}
		}
		t.Fatalf("decode error %v is not a named sentinel", err)
	})
}
