package persist

import (
	"strings"
	"testing"

	"repro/internal/storage"
)

func loadTestRel() *storage.Relation {
	schema := storage.NewSchema("cities",
		storage.Attribute{Name: "id", Type: storage.Int64},
		storage.Attribute{Name: "name", Type: storage.String},
		storage.Attribute{Name: "pop", Type: storage.Float64},
		storage.Attribute{Name: "capital", Type: storage.Bool},
	)
	return storage.NewRelation(schema, storage.PDSM([]int{0, 1}, []int{2, 3}))
}

func TestLoadCSV(t *testing.T) {
	rel := loadTestRel()
	csv := "1,berlin,3.6,true\n2,hamburg,1.8,false\n3,munich,,false\n"
	n, err := LoadBatches(rel, NewCSVReader(strings.NewReader(csv), 4), 2, func(rows [][]storage.Word) error {
		for _, r := range rows {
			rel.AppendRow(r)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || rel.Rows() != 3 {
		t.Fatalf("loaded %d rows, relation has %d, want 3", n, rel.Rows())
	}
	if got := rel.StringOf(1, 1); got != "hamburg" {
		t.Fatalf("row 1 name = %q", got)
	}
	if v := rel.Value(2, 2); v != storage.Null {
		t.Fatalf("empty float cell = %#x, want NULL", v)
	}
	if storage.DecodeFloat(rel.Value(0, 2)) != 3.6 {
		t.Fatal("float round trip failed")
	}
	if !storage.DecodeBool(rel.Value(0, 3)) || storage.DecodeBool(rel.Value(1, 3)) {
		t.Fatal("bool decode failed")
	}
	// Dictionary was created on the fly with append order codes.
	if rel.Dicts[1].Len() != 3 || rel.Dicts[1].SortedLen() != 0 {
		t.Fatalf("dict len=%d sorted=%d, want 3 and 0", rel.Dicts[1].Len(), rel.Dicts[1].SortedLen())
	}
}

func TestLoadNDJSON(t *testing.T) {
	rel := loadTestRel()
	nd := `[1, "berlin", 3.6, true]
[2, null, null, false]

[3, "munich", 1.5, null]
`
	n, err := LoadBatches(rel, NewNDJSONReader(strings.NewReader(nd), 4), 0, func(rows [][]storage.Word) error {
		for _, r := range rows {
			rel.AppendRow(r)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("loaded %d rows, want 3", n)
	}
	if rel.Value(1, 1) != storage.Null || rel.Value(1, 2) != storage.Null || rel.Value(2, 3) != storage.Null {
		t.Fatal("JSON null did not encode as NULL")
	}
	if got := rel.StringOf(2, 1); got != "munich" {
		t.Fatalf("row 2 name = %q", got)
	}
}

func TestLoadErrorsNameTheCell(t *testing.T) {
	rel := loadTestRel()
	_, err := LoadBatches(rel, NewCSVReader(strings.NewReader("x,berlin,1,true\n"), 4), 0,
		func([][]storage.Word) error { return nil })
	if err == nil || !strings.Contains(err.Error(), `col "id"`) {
		t.Fatalf("err = %v, want cell-naming parse error", err)
	}

	_, err = LoadBatches(rel, NewNDJSONReader(strings.NewReader(`[1, "a"]`), 4), 0,
		func([][]storage.Word) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "want 4") {
		t.Fatalf("err = %v, want arity error", err)
	}
}

func TestParseSchemaSpec(t *testing.T) {
	attrs, err := ParseSchemaSpec("id:int64, name:string,pop:float64,cap:bool")
	if err != nil {
		t.Fatal(err)
	}
	if len(attrs) != 4 || attrs[1].Name != "name" || attrs[1].Type != storage.String {
		t.Fatalf("attrs = %+v", attrs)
	}
	for _, bad := range []string{"", "id", "id:int64,id:int64", "x:blob"} {
		if _, err := ParseSchemaSpec(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}
