package persist

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/storage"
)

// buildTestDB creates a database with three tables covering the layout
// spectrum, mixed types, appended (non-order-preserving) dictionary
// codes, NULLs and indexes.
func buildTestDB(t testing.TB, rows int) *core.DB {
	t.Helper()
	db := core.Open()
	rng := rand.New(rand.NewSource(7))

	schema := storage.NewSchema("t",
		storage.Attribute{Name: "id", Type: storage.Int64},
		storage.Attribute{Name: "grp", Type: storage.Int64},
		storage.Attribute{Name: "val", Type: storage.Int64},
		storage.Attribute{Name: "price", Type: storage.Float64},
		storage.Attribute{Name: "name", Type: storage.String},
		storage.Attribute{Name: "flag", Type: storage.Bool},
	)
	words := []string{"alpha", "beta", "gamma", "delta"}
	ids := make([]int64, rows)
	grps := make([]int64, rows)
	vals := make([]int64, rows)
	prices := make([]float64, rows)
	names := make([]string, rows)
	nulls := make([]bool, rows)
	flags := make([]storage.Word, rows)
	for i := 0; i < rows; i++ {
		ids[i] = int64(i)
		grps[i] = int64(rng.Intn(5))
		vals[i] = rng.Int63n(1000) - 500
		prices[i] = float64(rng.Intn(10000)) / 100
		names[i] = words[rng.Intn(len(words))]
		nulls[i] = i%7 == 3
		flags[i] = storage.EncodeBool(i%2 == 0)
	}
	b := storage.NewBuilder(schema)
	b.SetInts(0, ids).SetInts(1, grps).SetInts(2, vals).SetFloats(3, prices)
	b.SetStringsWithNulls(4, names, nulls)
	b.SetWords(5, flags)
	rel := b.Build(storage.PDSM([]int{0, 4}, []int{1, 2, 5}, []int{3}))
	db.AddTable(rel)
	db.CreateHashIndex("t", 0)
	db.CreateTreeIndex("t", 2)
	// Appended dict values get non-order-preserving codes; the round trip
	// must keep SortedLen.
	rel.Dicts[4].AppendCode("zz-appended")
	rel.AppendRow([]storage.Word{
		storage.EncodeInt(int64(rows)), storage.EncodeInt(1), storage.EncodeInt(0),
		storage.EncodeFloat(1.5), rel.Dicts[4].MustCode("zz-appended"), storage.EncodeBool(true),
	})

	colSchema := storage.NewSchema("events",
		storage.Attribute{Name: "ts", Type: storage.Int64},
		storage.Attribute{Name: "kind", Type: storage.String},
	)
	cb := storage.NewBuilder(colSchema)
	ts := make([]int64, rows/2)
	kinds := make([]string, rows/2)
	for i := range ts {
		ts[i] = int64(i * 10)
		kinds[i] = words[i%len(words)]
	}
	cb.SetInts(0, ts).SetStrings(1, kinds)
	db.AddTable(cb.Build(storage.DSM(2)))

	empty := storage.NewRelation(storage.NewSchema("empty",
		storage.Attribute{Name: "x", Type: storage.Int64}), storage.NSM(1))
	db.AddTable(empty)
	return db
}

// assertBitIdentical requires the recovered relation to match the
// original exactly: layout group order, strides, partition word data,
// dictionary value tables and sorted prefixes.
func assertBitIdentical(t *testing.T, table string, a, b *core.DB) {
	t.Helper()
	ra, rb := a.Catalog().Table(table), b.Catalog().Table(table)
	if ra.Rows() != rb.Rows() {
		t.Fatalf("%s: rows %d != %d", table, ra.Rows(), rb.Rows())
	}
	if !reflect.DeepEqual(ra.Layout.Groups, rb.Layout.Groups) {
		t.Fatalf("%s: layout %v != %v", table, ra.Layout, rb.Layout)
	}
	if len(ra.Parts) != len(rb.Parts) {
		t.Fatalf("%s: %d parts != %d", table, len(ra.Parts), len(rb.Parts))
	}
	for i := range ra.Parts {
		pa, pb := ra.Parts[i], rb.Parts[i]
		if pa.Stride != pb.Stride || !reflect.DeepEqual(pa.Attrs, pb.Attrs) {
			t.Fatalf("%s part %d: stride/attrs (%d,%v) != (%d,%v)", table, i, pa.Stride, pa.Attrs, pb.Stride, pb.Attrs)
		}
		if !reflect.DeepEqual(pa.Data, pb.Data) {
			t.Fatalf("%s part %d: word data differs", table, i)
		}
	}
	for attr := 0; attr < ra.Schema.Width(); attr++ {
		da, db_ := ra.Dicts[attr], rb.Dicts[attr]
		if (da == nil) != (db_ == nil) {
			t.Fatalf("%s attr %d: dict presence %v != %v", table, attr, da != nil, db_ != nil)
		}
		if da == nil {
			continue
		}
		if !reflect.DeepEqual(da.Values(), db_.Values()) {
			t.Fatalf("%s attr %d: dict values differ", table, attr)
		}
		if da.SortedLen() != db_.SortedLen() {
			t.Fatalf("%s attr %d: sorted prefix %d != %d", table, attr, da.SortedLen(), db_.SortedLen())
		}
	}
	if !reflect.DeepEqual(a.Catalog().IndexDefs(table), b.Catalog().IndexDefs(table)) {
		t.Fatalf("%s: index defs %v != %v", table, a.Catalog().IndexDefs(table), b.Catalog().IndexDefs(table))
	}
}

func TestSnapshotRoundTripBitIdentical(t *testing.T) {
	db := buildTestDB(t, 500)
	var buf bytes.Buffer
	n, err := WriteSnapshot(&buf, db, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteSnapshot reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if want := db.Catalog().Names(); !reflect.DeepEqual(got.Catalog().Names(), want) {
		t.Fatalf("tables %v, want %v", got.Catalog().Names(), want)
	}
	for _, name := range db.Catalog().Names() {
		assertBitIdentical(t, name, db, got)
	}
	// A second write of the restored DB must produce identical bytes —
	// the encoding is canonical.
	var buf2 bytes.Buffer
	if _, err := WriteSnapshot(&buf2, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("re-snapshot of restored DB differs from original snapshot")
	}
}

func TestSnapshotDecodeRejectsCorruption(t *testing.T) {
	db := buildTestDB(t, 100)
	var buf bytes.Buffer
	if _, err := WriteSnapshot(&buf, db, 0); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr error
	}{
		{"empty", func(b []byte) []byte { return nil }, ErrTruncated},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, ErrBadMagic},
		{"bad version", func(b []byte) []byte { b[8] = 99; return b }, ErrBadVersion},
		{"flipped payload bit", func(b []byte) []byte { b[len(b)/2] ^= 1; return b }, ErrChecksum},
		{"truncated", func(b []byte) []byte { return b[:len(b)-10] }, ErrTruncated},
		{"header only", func(b []byte) []byte { return b[:16] }, ErrTruncated},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mut := tc.mutate(append([]byte(nil), good...))
			_, err := ReadSnapshot(bytes.NewReader(mut))
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

func TestSnapshotDecodeRejectsStructuralCorruption(t *testing.T) {
	// Corrupt the payload structurally but fix up the CRC, so the error
	// comes from the structural validation, not the checksum.
	db := buildTestDB(t, 50)
	var buf bytes.Buffer
	if _, err := WriteSnapshot(&buf, db, 0); err != nil {
		t.Fatal(err)
	}
	snap, err := DecodeSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate an attribute index across groups (of the multi-group
	// table "t").
	var bad *TableSnap
	for _, tab := range snap.Tables {
		if tab.Schema.Name == "t" {
			bad = tab
		}
	}
	bad.Layout.Groups[0][0] = bad.Layout.Groups[1][0]
	payload := encodeTable(bad)
	if _, err := decodeTable(payload); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("duplicate-attr layout: err = %v, want ErrCorrupt", err)
	}
}
