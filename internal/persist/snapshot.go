package persist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/storage"
)

// Snapshot file format (all integers little-endian unless uvarint):
//
//	magic    [8]byte  "PDSMSNP1"
//	version  uint32   currently 1
//	epoch    uint64   checkpoint epoch (pairs the snapshot with its WAL)
//	tables   uint32   number of table sections
//	tables × section:
//	  payloadLen uint64
//	  crc        uint32  IEEE CRC-32 of the payload bytes
//	  payload    — one encoded table (see encodeTable)
//
// Each table payload is independently checksummed, so corruption is
// detected per section and named in the error. The format is
// layout-aware: partition word data is stored exactly as it sits in
// memory (row-major per group, stride = group width), so a restored
// relation has bit-identical Parts, strides, offsets and dictionary
// codes — the optimizer's physical design survives the round trip.
//
// The epoch makes checkpointing crash-safe end to end: every WAL starts
// with an epoch record, and recovery only replays a WAL whose epoch
// matches the snapshot's. A crash between the snapshot rename and the
// WAL reset leaves a stale lower-epoch WAL whose records are already in
// the snapshot — recovery discards it instead of replaying duplicates.

var (
	// ErrBadMagic reports that the file does not start with the snapshot
	// magic — it is not a snapshot at all.
	ErrBadMagic = errors.New("persist: bad snapshot magic")
	// ErrBadVersion reports a snapshot written by an unknown format
	// version.
	ErrBadVersion = errors.New("persist: unsupported snapshot version")
	// ErrChecksum reports a table section whose payload does not match its
	// stored CRC.
	ErrChecksum = errors.New("persist: snapshot checksum mismatch")
	// ErrTruncated reports a snapshot that ends mid-structure.
	ErrTruncated = errors.New("persist: snapshot truncated")
	// ErrCorrupt reports a structurally invalid snapshot payload (counts
	// out of range, malformed layout, unknown type codes, ...).
	ErrCorrupt = errors.New("persist: corrupt snapshot")
)

var snapMagic = [8]byte{'P', 'D', 'S', 'M', 'S', 'N', 'P', '1'}

const snapVersion = 1

// maxSaneCount bounds decoded element counts before allocation so a
// corrupt (or fuzzed) length field cannot demand gigabytes. Word data is
// bounded separately by the section length.
const maxSaneCount = 1 << 24

// TableSnap is the serializable state of one table: everything needed to
// reconstruct the relation bit-identically plus the definitions of its
// indexes (index structures are rebuilt from data on restore).
type TableSnap struct {
	Schema  *storage.Schema
	Layout  storage.Layout
	Rows    int
	Parts   [][]storage.Word // one word slice per layout group, memory order
	Dicts   []*storage.Dict  // per attribute; nil for non-string attributes
	Indexes []plan.IndexDef
}

// SnapTable captures the serializable state of one catalog table.
func SnapTable(c *plan.Catalog, name string) *TableSnap {
	rel := c.Table(name)
	parts := make([][]storage.Word, len(rel.Parts))
	for i, p := range rel.Parts {
		parts[i] = p.Data
	}
	return &TableSnap{
		Schema:  rel.Schema,
		Layout:  rel.Layout,
		Rows:    rel.Rows(),
		Parts:   parts,
		Dicts:   rel.Dicts,
		Indexes: c.IndexDefs(name),
	}
}

// Restore materializes the snapshot into a relation and registers it and
// its indexes on db.
func (t *TableSnap) Restore(db *core.DB) error { return t.RestoreTo(db) }

// RestoreTo materializes the snapshot into a relation and registers it
// and its indexes on any replay target (a core.DB in place, or a
// core.WriteTxn building the next MVCC version).
func (t *TableSnap) RestoreTo(dst Target) error {
	rel, err := storage.RestoreRelation(t.Schema, t.Layout, t.Parts, t.Dicts, t.Rows)
	if err != nil {
		return err
	}
	dst.AddTable(rel)
	for _, def := range t.Indexes {
		switch def.Kind {
		case "hash":
			dst.CreateHashIndex(t.Schema.Name, def.Attr)
		case "rbtree":
			dst.CreateTreeIndex(t.Schema.Name, def.Attr)
		default:
			return fmt.Errorf("%w: unknown index kind %q on %s", ErrCorrupt, def.Kind, t.Schema.Name)
		}
	}
	return nil
}

// WriteSnapshot serializes every catalog table of db to w, stamped with
// the given checkpoint epoch, and returns the byte count written.
func WriteSnapshot(w io.Writer, db *core.DB, epoch uint64) (int64, error) {
	return WriteCatalogSnapshot(w, db.Catalog(), epoch)
}

// WriteCatalogSnapshot serializes every table of a catalog to w — the
// checkpoint path hands it a pinned MVCC snapshot's catalog, so the
// entire serialization runs without any lock while writers keep
// publishing new versions.
func WriteCatalogSnapshot(w io.Writer, c *plan.Catalog, epoch uint64) (int64, error) {
	names := c.Names()
	var hdr [24]byte
	copy(hdr[:8], snapMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:12], snapVersion)
	binary.LittleEndian.PutUint64(hdr[12:20], epoch)
	binary.LittleEndian.PutUint32(hdr[20:24], uint32(len(names)))
	written := int64(0)
	n, err := w.Write(hdr[:])
	written += int64(n)
	if err != nil {
		return written, err
	}
	for _, name := range names {
		payload := encodeTable(SnapTable(c, name))
		var sec [12]byte
		binary.LittleEndian.PutUint64(sec[:8], uint64(len(payload)))
		binary.LittleEndian.PutUint32(sec[8:12], crc32.ChecksumIEEE(payload))
		if n, err = w.Write(sec[:]); err != nil {
			return written + int64(n), err
		}
		written += int64(n)
		if n, err = w.Write(payload); err != nil {
			return written + int64(n), err
		}
		written += int64(n)
	}
	return written, nil
}

// Snapshot is a decoded snapshot file: the checkpoint epoch and every
// table section.
type Snapshot struct {
	Epoch  uint64
	Tables []*TableSnap
}

// ReadSnapshot decodes a snapshot and restores every table (and its
// indexes) into a fresh core.DB. Decode failures return errors wrapping
// the named sentinel errors above; the function never panics on corrupt
// input.
func ReadSnapshot(r io.Reader) (*core.DB, error) {
	db, _, err := restoreSnapshot(r)
	return db, err
}

func restoreSnapshot(r io.Reader) (*core.DB, uint64, error) {
	snap, err := DecodeSnapshot(r)
	if err != nil {
		return nil, 0, err
	}
	db := core.Open()
	for _, t := range snap.Tables {
		if err := t.Restore(db); err != nil {
			return nil, 0, err
		}
	}
	return db, snap.Epoch, nil
}

// DecodeSnapshot decodes a snapshot file without touching a database.
func DecodeSnapshot(r io.Reader) (*Snapshot, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrTruncated, err)
	}
	if [8]byte(hdr[:8]) != snapMagic {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != snapVersion {
		return nil, fmt.Errorf("%w: version %d (supported: %d)", ErrBadVersion, v, snapVersion)
	}
	epoch := binary.LittleEndian.Uint64(hdr[12:20])
	count := binary.LittleEndian.Uint32(hdr[20:24])
	if count > maxSaneCount {
		return nil, fmt.Errorf("%w: implausible table count %d", ErrCorrupt, count)
	}
	tables := make([]*TableSnap, 0, count)
	for i := 0; i < int(count); i++ {
		var sec [12]byte
		if _, err := io.ReadFull(r, sec[:]); err != nil {
			return nil, fmt.Errorf("%w: table %d section header: %v", ErrTruncated, i, err)
		}
		plen := binary.LittleEndian.Uint64(sec[:8])
		if plen > 1<<40 {
			return nil, fmt.Errorf("%w: table %d: implausible section length %d", ErrCorrupt, i, plen)
		}
		// Copy incrementally rather than trusting plen with an up-front
		// allocation: a corrupt length field then costs memory
		// proportional to the actual input, not the claimed size.
		var pbuf bytes.Buffer
		if n, err := io.CopyN(&pbuf, r, int64(plen)); err != nil {
			return nil, fmt.Errorf("%w: table %d payload: %d of %d bytes: %v", ErrTruncated, i, n, plen, err)
		}
		payload := pbuf.Bytes()
		if sum := crc32.ChecksumIEEE(payload); sum != binary.LittleEndian.Uint32(sec[8:12]) {
			return nil, fmt.Errorf("%w: table %d", ErrChecksum, i)
		}
		t, err := decodeTable(payload)
		if err != nil {
			return nil, fmt.Errorf("table %d: %w", i, err)
		}
		tables = append(tables, t)
	}
	return &Snapshot{Epoch: epoch, Tables: tables}, nil
}

// enc accumulates the binary encoding of one table payload.
type enc struct{ buf []byte }

func (e *enc) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

func (e *enc) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *enc) byte(b byte) { e.buf = append(e.buf, b) }

func (e *enc) words(ws []storage.Word) {
	e.uvarint(uint64(len(ws)))
	off := len(e.buf)
	e.buf = append(e.buf, make([]byte, 8*len(ws))...)
	for _, w := range ws {
		binary.LittleEndian.PutUint64(e.buf[off:], w)
		off += 8
	}
}

// encodeTable renders one table payload; decodeTable is its inverse.
func encodeTable(t *TableSnap) []byte {
	e := &enc{}
	e.str(t.Schema.Name)
	e.uvarint(uint64(t.Schema.Width()))
	for _, a := range t.Schema.Attrs {
		e.str(a.Name)
		e.byte(byte(a.Type))
	}
	e.uvarint(uint64(len(t.Layout.Groups)))
	for _, g := range t.Layout.Groups {
		e.uvarint(uint64(len(g)))
		for _, a := range g {
			e.uvarint(uint64(a))
		}
	}
	e.uvarint(uint64(t.Rows))
	for _, part := range t.Parts {
		e.words(part)
	}
	for attr := 0; attr < t.Schema.Width(); attr++ {
		var d *storage.Dict
		if attr < len(t.Dicts) {
			d = t.Dicts[attr]
		}
		if d == nil {
			e.byte(0)
			continue
		}
		e.byte(1)
		vals := d.Values()
		e.uvarint(uint64(d.SortedLen()))
		e.uvarint(uint64(len(vals)))
		for _, v := range vals {
			e.str(v)
		}
	}
	e.uvarint(uint64(len(t.Indexes)))
	for _, def := range t.Indexes {
		e.uvarint(uint64(def.Attr))
		e.str(def.Kind)
	}
	return e.buf
}

// dec walks one table payload with bounds checking; every failure wraps a
// named sentinel error.
type dec struct {
	buf []byte
	off int
}

func (d *dec) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad uvarint at offset %d", ErrCorrupt, d.off)
	}
	d.off += n
	return v, nil
}

// count decodes a uvarint that counts decoded elements, rejecting
// implausible values before any allocation.
func (d *dec) count(what string) (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > maxSaneCount {
		return 0, fmt.Errorf("%w: implausible %s count %d", ErrCorrupt, what, v)
	}
	return int(v), nil
}

// countSized decodes an element count whose elements occupy at least
// perElem payload bytes each, bounding it by the remaining payload. The
// bound both defeats corrupt-count allocations and — unlike a fixed
// constant — never rejects a count the writer could legitimately have
// produced.
func (d *dec) countSized(what string, perElem int) (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64((len(d.buf)-d.off)/perElem) {
		return 0, fmt.Errorf("%w: %s count %d exceeds remaining payload", ErrCorrupt, what, v)
	}
	return int(v), nil
}

func (d *dec) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if uint64(len(d.buf)-d.off) < n {
		return "", fmt.Errorf("%w: string of %d bytes at offset %d", ErrTruncated, n, d.off)
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

func (d *dec) byte() (byte, error) {
	if d.off >= len(d.buf) {
		return 0, fmt.Errorf("%w: byte at offset %d", ErrTruncated, d.off)
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

func (d *dec) words() ([]storage.Word, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	// Divide instead of multiplying so a hostile count cannot overflow.
	if n > uint64(len(d.buf)-d.off)/8 {
		return nil, fmt.Errorf("%w: %d words at offset %d", ErrTruncated, n, d.off)
	}
	if n == 0 {
		return nil, nil // matches the nil Data of an empty partition
	}
	ws := make([]storage.Word, n)
	for i := range ws {
		ws[i] = binary.LittleEndian.Uint64(d.buf[d.off:])
		d.off += 8
	}
	return ws, nil
}

func decodeTable(payload []byte) (*TableSnap, error) {
	d := &dec{buf: payload}
	name, err := d.str()
	if err != nil {
		return nil, err
	}
	width, err := d.countSized("attribute", 2) // name uvarint + type byte
	if err != nil {
		return nil, err
	}
	attrs := make([]storage.Attribute, width)
	for i := range attrs {
		if attrs[i].Name, err = d.str(); err != nil {
			return nil, err
		}
		tb, err := d.byte()
		if err != nil {
			return nil, err
		}
		if tb > byte(storage.Bool) {
			return nil, fmt.Errorf("%w: unknown attribute type %d", ErrCorrupt, tb)
		}
		attrs[i].Type = storage.Type(tb)
	}
	for i, a := range attrs {
		for j := 0; j < i; j++ {
			if attrs[j].Name == a.Name {
				return nil, fmt.Errorf("%w: duplicate attribute %q", ErrCorrupt, a.Name)
			}
		}
	}
	schema := storage.NewSchema(name, attrs...)
	groups, err := d.countSized("layout group", 2) // length + >= 1 attribute
	if err != nil {
		return nil, err
	}
	layout := storage.Layout{Groups: make([][]int, groups)}
	for gi := range layout.Groups {
		glen, err := d.countSized("group attribute", 1)
		if err != nil {
			return nil, err
		}
		g := make([]int, glen)
		for i := range g {
			a, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			g[i] = int(a)
		}
		layout.Groups[gi] = g
	}
	if err := layout.Validate(width); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	rowsU, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	// Rows drive no allocation directly (partitions carry their own
	// exact-length checks), but bound them so downstream arithmetic
	// cannot overflow.
	if rowsU > 1<<40 {
		return nil, fmt.Errorf("%w: implausible row count %d", ErrCorrupt, rowsU)
	}
	rows := int(rowsU)
	parts := make([][]storage.Word, groups)
	for gi := range parts {
		if parts[gi], err = d.words(); err != nil {
			return nil, err
		}
		// Division form: group width is >= 1 (Validate rejects empty
		// groups) and a product rows*width could overflow.
		gw := len(layout.Groups[gi])
		if len(parts[gi])/gw != rows || len(parts[gi])%gw != 0 {
			return nil, fmt.Errorf("%w: partition %d holds %d words, want %d rows of stride %d",
				ErrCorrupt, gi, len(parts[gi]), rows, gw)
		}
	}
	dicts := make([]*storage.Dict, width)
	for attr := range dicts {
		flag, err := d.byte()
		if err != nil {
			return nil, err
		}
		switch flag {
		case 0:
		case 1:
			sortedU, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			nvals, err := d.countSized("dictionary value", 1)
			if err != nil {
				return nil, err
			}
			if sortedU > uint64(nvals) {
				return nil, fmt.Errorf("%w: dictionary sorted prefix %d > %d values", ErrCorrupt, sortedU, nvals)
			}
			sorted := int(sortedU)
			vals := make([]string, nvals)
			for i := range vals {
				if vals[i], err = d.str(); err != nil {
					return nil, err
				}
			}
			dicts[attr] = storage.RestoreDict(vals, sorted)
		default:
			return nil, fmt.Errorf("%w: dictionary flag %d", ErrCorrupt, flag)
		}
	}
	nidx, err := d.countSized("index", 2) // attr uvarint + kind length
	if err != nil {
		return nil, err
	}
	idxs := make([]plan.IndexDef, nidx)
	for i := range idxs {
		a, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if a >= uint64(width) {
			return nil, fmt.Errorf("%w: index on attribute %d of width-%d schema", ErrCorrupt, a, width)
		}
		idxs[i].Attr = int(a)
		if idxs[i].Kind, err = d.str(); err != nil {
			return nil, err
		}
		if idxs[i].Kind != "hash" && idxs[i].Kind != "rbtree" {
			return nil, fmt.Errorf("%w: unknown index kind %q", ErrCorrupt, idxs[i].Kind)
		}
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.buf)-d.off)
	}
	return &TableSnap{Schema: schema, Layout: layout, Rows: rows, Parts: parts, Dicts: dicts, Indexes: idxs}, nil
}
