package persist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/storage"
)

// The WAL is an append-only log of the mutations that happened after the
// last checkpoint. Record framing:
//
//	length uint32  length of the body
//	crc    uint32  IEEE CRC-32 of the body
//	body   = type byte + payload
//
// Replay applies records in order until the file ends. A final record
// that is truncated or fails its CRC is a torn tail — the write that was
// in flight when the process died — and is discarded (the file is
// truncated back to the last good record), which is the standard WAL
// contract: a mutation is durable once its record is fully on disk.
//
// Record types:
//
//	walInsert       table, width, row words — appended tuples
//	walCreateTable  a full table payload (encodeTable) — DDL from /load
//	walRelayout     table, layout groups — an optimizer decision
//	walCreateIndex  table, attr, kind
//	walDictAppend   table, attr, new string values — dictionary growth
//	                from a bulk load; logged before the insert whose rows
//	                use the new codes, so replay assigns identical codes
//	walEpoch        checkpoint epoch — always the first record of a WAL;
//	                recovery replays the log only when it matches the
//	                snapshot's epoch (see the snapshot format comment)
const (
	walInsert      byte = 1
	walCreateTable byte = 2
	walRelayout    byte = 3
	walCreateIndex byte = 4
	walDictAppend  byte = 5
	walEpoch       byte = 6
)

// ErrWALCorrupt reports a WAL record that is corrupt in the middle of the
// file — valid records follow it, so this is damage, not a torn tail.
var ErrWALCorrupt = errors.New("persist: corrupt WAL record")

// wal is the append side of the log. Appends go through a buffered
// writer; commit flushes the buffer (and fsyncs when configured), which
// is the group-commit boundary: a batch of records — a bulk-load batch, a
// multi-row insert — costs one flush and at most one fsync.
type wal struct {
	f     *os.File
	bw    *bufio.Writer
	size  int64
	fsync bool
	// stamped reports whether the leading epoch record is on disk. It is
	// written lazily, together with the first mutation record after a
	// reset, so a failed stamp can never leave mutation records in a
	// headerless (unrecoverable) log.
	stamped bool
}

func openWAL(path string, fsync bool) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	// A non-empty WAL necessarily starts with its epoch record (replay
	// validated that before we got here); an empty one is stamped with
	// the first commit.
	return &wal{f: f, bw: bufio.NewWriterSize(f, 1<<20), size: st.Size(), fsync: fsync, stamped: st.Size() > 0}, nil
}

// append buffers one framed record; it becomes durable at the next
// commit.
func (w *wal) append(body []byte) error {
	var frame [8]byte
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(body))
	if _, err := w.bw.Write(frame[:]); err != nil {
		return err
	}
	if _, err := w.bw.Write(body); err != nil {
		return err
	}
	w.size += int64(len(frame) + len(body))
	return nil
}

// commit flushes buffered records to the file, fsyncing when the WAL was
// opened in fsync mode.
func (w *wal) commit() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if w.fsync {
		if err := faultinject.Hit("persist/wal-fsync"); err != nil {
			return err
		}
		return w.f.Sync()
	}
	return nil
}

// reset discards the log content (after a checkpoint made it redundant).
func (w *wal) reset() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	w.size = 0
	w.stamped = false
	if w.fsync {
		return w.f.Sync()
	}
	return nil
}

func (w *wal) close() error {
	err := w.bw.Flush()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// appendFrame appends one CRC-framed record to buf — the same framing
// wal.append writes, for staging a successor WAL outside the live file.
func appendFrame(buf, body []byte) []byte {
	var frame [8]byte
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(body))
	return append(append(buf, frame[:]...), body...)
}

// firstEpoch reads the leading epoch record of a WAL file. ok is false
// when the file is missing, empty, torn, or does not start with a valid
// epoch record — states where the log carries no identifiable epoch.
func firstEpoch(path string) (epoch uint64, ok bool, err error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	var hdr [8]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, false, nil
	}
	blen := binary.LittleEndian.Uint32(hdr[:4])
	if blen > 64 {
		return 0, false, nil // epoch records are a dozen bytes at most
	}
	body := make([]byte, blen)
	if _, err := io.ReadFull(f, body); err != nil {
		return 0, false, nil
	}
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return 0, false, nil
	}
	e, isEpoch := EpochRecord(body)
	return e, isEpoch, nil
}

// Record body builders.

func walInsertBody(table string, width int, rows [][]storage.Word) []byte {
	e := &enc{buf: []byte{walInsert}}
	e.str(table)
	e.uvarint(uint64(width))
	e.uvarint(uint64(len(rows)))
	for _, row := range rows {
		off := len(e.buf)
		e.buf = append(e.buf, make([]byte, 8*width)...)
		for _, w := range row {
			binary.LittleEndian.PutUint64(e.buf[off:], w)
			off += 8
		}
	}
	return e.buf
}

func walCreateTableBody(t *TableSnap) []byte {
	return append([]byte{walCreateTable}, encodeTable(t)...)
}

func walRelayoutBody(table string, l storage.Layout) []byte {
	e := &enc{buf: []byte{walRelayout}}
	e.str(table)
	e.uvarint(uint64(len(l.Groups)))
	for _, g := range l.Groups {
		e.uvarint(uint64(len(g)))
		for _, a := range g {
			e.uvarint(uint64(a))
		}
	}
	return e.buf
}

func walCreateIndexBody(table string, attr int, kind string) []byte {
	e := &enc{buf: []byte{walCreateIndex}}
	e.str(table)
	e.uvarint(uint64(attr))
	e.str(kind)
	return e.buf
}

func walDictAppendBody(table string, attr int, values []string) []byte {
	e := &enc{buf: []byte{walDictAppend}}
	e.str(table)
	e.uvarint(uint64(attr))
	e.uvarint(uint64(len(values)))
	for _, v := range values {
		e.str(v)
	}
	return e.buf
}

func walEpochBody(epoch uint64) []byte {
	e := &enc{buf: []byte{walEpoch}}
	e.uvarint(epoch)
	return e.buf
}

// replayWAL applies the log at path to db, given the epoch of the
// snapshot the database was restored from. It returns the number of
// records applied.
//
//   - A WAL whose leading epoch record matches snapEpoch is replayed; a
//     torn tail (partial final record) is truncated away.
//   - A WAL with a LOWER epoch is a leftover from a checkpoint that
//     crashed between the snapshot rename and the WAL reset: its records
//     are already inside the snapshot, so it is discarded wholesale
//     instead of replayed as duplicates.
//   - A HIGHER epoch (or corruption followed by further valid data)
//     returns ErrWALCorrupt — the log cannot be trusted.
func replayWAL(path string, db *core.DB, snapEpoch uint64) (int, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	applied := 0
	off := 0
	goodEnd := 0
	first := true
	for off < len(data) {
		if len(data)-off < 8 {
			break // torn frame header
		}
		blen := int(binary.LittleEndian.Uint32(data[off : off+4]))
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if len(data)-off-8 < blen {
			break // torn body
		}
		body := data[off+8 : off+8+blen]
		if crc32.ChecksumIEEE(body) != crc {
			// A CRC failure on the last record is a torn write; earlier it
			// means the file is damaged.
			if off+8+blen < len(data) {
				return applied, fmt.Errorf("%w: record at offset %d", ErrWALCorrupt, off)
			}
			break
		}
		if first {
			first = false
			epoch, err := decodeEpochRecord(body)
			if err != nil {
				return 0, err
			}
			switch {
			case epoch == snapEpoch:
				// This WAL continues the restored snapshot: replay it.
			case epoch < snapEpoch:
				// Stale pre-checkpoint log; its effects are in the
				// snapshot already. Discard it.
				if err := os.Truncate(path, 0); err != nil {
					return 0, fmt.Errorf("persist: discarding stale WAL: %w", err)
				}
				return 0, nil
			default:
				return 0, fmt.Errorf("%w: WAL epoch %d newer than snapshot epoch %d",
					ErrWALCorrupt, epoch, snapEpoch)
			}
		} else if err := ApplyRecord(db, body); err != nil {
			return applied, fmt.Errorf("persist: WAL record at offset %d: %w", off, err)
		} else {
			applied++
		}
		off += 8 + blen
		goodEnd = off
	}
	if goodEnd < len(data) {
		if err := os.Truncate(path, int64(goodEnd)); err != nil {
			return applied, fmt.Errorf("persist: truncating torn WAL tail: %w", err)
		}
	}
	return applied, nil
}

// decodeEpochRecord decodes the mandatory leading epoch record.
func decodeEpochRecord(body []byte) (uint64, error) {
	if len(body) == 0 || body[0] != walEpoch {
		return 0, fmt.Errorf("%w: WAL does not start with an epoch record", ErrWALCorrupt)
	}
	d := &dec{buf: body[1:]}
	return d.uvarint()
}

// ApplyRecord replays one decoded record body against db in place — the
// local recovery path, where the database is private to the opener.
func ApplyRecord(db *core.DB, body []byte) error { return ApplyRecordTo(db, body) }

// ApplyRecordTo replays one decoded record body against any replay
// target. Local recovery and replication followers share it: a replica
// applying shipped records through this path (into a core.WriteTxn, so
// its readers never see a half-applied chunk) reconstructs the primary's
// physical design — layouts, dictionary codes, index definitions —
// bit-identically.
func ApplyRecordTo(dst Target, body []byte) error {
	if len(body) == 0 {
		return fmt.Errorf("%w: empty body", ErrWALCorrupt)
	}
	typ, payload := body[0], body[1:]
	switch typ {
	case walInsert:
		d := &dec{buf: payload}
		table, err := d.str()
		if err != nil {
			return err
		}
		width, err := d.count("insert width")
		if err != nil {
			return err
		}
		n, err := d.count("insert row")
		if err != nil {
			return err
		}
		if len(d.buf)-d.off != 8*width*n {
			return fmt.Errorf("%w: insert holds %d bytes, want %d", ErrWALCorrupt, len(d.buf)-d.off, 8*width*n)
		}
		if !dst.Catalog().Has(table) {
			return fmt.Errorf("%w: insert into unknown table %q", ErrWALCorrupt, table)
		}
		if w := dst.Catalog().Table(table).Schema.Width(); w != width {
			return fmt.Errorf("%w: insert width %d into width-%d table %q", ErrWALCorrupt, width, w, table)
		}
		rows := make([][]storage.Word, n)
		for i := range rows {
			row := make([]storage.Word, width)
			for j := range row {
				row[j] = binary.LittleEndian.Uint64(d.buf[d.off:])
				d.off += 8
			}
			rows[i] = row
		}
		dst.Insert(table, rows)
		return nil
	case walCreateTable:
		t, err := decodeTable(payload)
		if err != nil {
			return err
		}
		return t.RestoreTo(dst)
	case walRelayout:
		d := &dec{buf: payload}
		table, err := d.str()
		if err != nil {
			return err
		}
		groups, err := d.count("layout group")
		if err != nil {
			return err
		}
		l := storage.Layout{Groups: make([][]int, groups)}
		for gi := range l.Groups {
			glen, err := d.count("group attribute")
			if err != nil {
				return err
			}
			g := make([]int, glen)
			for i := range g {
				a, err := d.uvarint()
				if err != nil {
					return err
				}
				g[i] = int(a)
			}
			l.Groups[gi] = g
		}
		if !dst.Catalog().Has(table) {
			return fmt.Errorf("%w: relayout of unknown table %q", ErrWALCorrupt, table)
		}
		if err := l.Validate(dst.Catalog().Table(table).Schema.Width()); err != nil {
			return fmt.Errorf("%w: %v", ErrWALCorrupt, err)
		}
		dst.ApplyLayout(table, l)
		return nil
	case walDictAppend:
		d := &dec{buf: payload}
		table, err := d.str()
		if err != nil {
			return err
		}
		attr, err := d.count("dict attribute")
		if err != nil {
			return err
		}
		n, err := d.count("dict value")
		if err != nil {
			return err
		}
		if !dst.Catalog().Has(table) {
			return fmt.Errorf("%w: dict append to unknown table %q", ErrWALCorrupt, table)
		}
		rel := dst.Catalog().Table(table)
		if attr >= rel.Schema.Width() || rel.Schema.Attrs[attr].Type != storage.String {
			return fmt.Errorf("%w: dict append to non-string attribute %d of %q", ErrWALCorrupt, attr, table)
		}
		values := make([]string, n)
		for i := range values {
			if values[i], err = d.str(); err != nil {
				return err
			}
		}
		dst.DictAppend(table, attr, values)
		return nil
	case walCreateIndex:
		d := &dec{buf: payload}
		table, err := d.str()
		if err != nil {
			return err
		}
		attr, err := d.count("index attribute")
		if err != nil {
			return err
		}
		kind, err := d.str()
		if err != nil {
			return err
		}
		if !dst.Catalog().Has(table) {
			return fmt.Errorf("%w: index on unknown table %q", ErrWALCorrupt, table)
		}
		if attr >= dst.Catalog().Table(table).Schema.Width() {
			return fmt.Errorf("%w: index on attribute %d of table %q", ErrWALCorrupt, attr, table)
		}
		switch kind {
		case "hash":
			dst.CreateHashIndex(table, attr)
		case "rbtree":
			dst.CreateTreeIndex(table, attr)
		default:
			return fmt.Errorf("%w: unknown index kind %q", ErrWALCorrupt, kind)
		}
		return nil
	case walEpoch:
		return fmt.Errorf("%w: epoch record in the middle of the log", ErrWALCorrupt)
	default:
		return fmt.Errorf("%w: unknown record type %d", ErrWALCorrupt, typ)
	}
}
