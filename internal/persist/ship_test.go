package persist

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/storage"
)

// shipDB opens a manager over a fresh directory with one empty two-column
// table, logged so replay (and shipping) recreates it.
func shipDB(t *testing.T) (*core.DB, *Manager) {
	t.Helper()
	db, m, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	rel := storage.NewRelation(storage.NewSchema("t",
		storage.Attribute{Name: "a", Type: storage.Int64},
		storage.Attribute{Name: "b", Type: storage.Int64},
	), storage.NSM(2))
	db.AddTable(rel)
	if err := m.LogCreateTable(db.Catalog(), "t"); err != nil {
		t.Fatal(err)
	}
	return db, m
}

func insertLogged(t *testing.T, db *core.DB, m *Manager, rows ...[]storage.Word) {
	t.Helper()
	exec.RunInsert(plan.Insert{Table: "t", Rows: rows}, db.Catalog())
	if err := m.LogInsert("t", 2, rows); err != nil {
		t.Fatal(err)
	}
}

// countFrames walks data and returns total and mutation (non-epoch)
// frame counts.
func countFrames(t *testing.T, data []byte) (total, mutations int) {
	t.Helper()
	for off := 0; off < len(data); {
		body, n, err := ParseFrame(data[off:])
		if err != nil {
			t.Fatalf("frame at %d: %v", off, err)
		}
		if n == 0 {
			t.Fatalf("partial frame at %d", off)
		}
		total++
		if _, isEpoch := EpochRecord(body); !isEpoch {
			mutations++
		}
		off += n
	}
	return total, mutations
}

func TestTailReadWindowsAndRotation(t *testing.T) {
	db, m := shipDB(t)
	insertLogged(t, db, m, row2(1, 10), row2(2, 20))
	insertLogged(t, db, m, row2(3, 30))

	full, err := m.TailRead(m.Epoch(), 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(full.Data)) != full.Committed || full.Committed != m.WALSize() {
		t.Fatalf("tail covers %d bytes, committed %d, wal %d", len(full.Data), full.Committed, m.WALSize())
	}
	if total, muts := countFrames(t, full.Data); total != 4 || muts != 3 {
		// epoch marker + create-table + 2 inserts
		t.Fatalf("frames = %d (%d mutations), want 4 (3)", total, muts)
	}
	if full.Records != 3 {
		t.Fatalf("Records = %d, want 3", full.Records)
	}

	// A tiny max still returns at least one whole frame, never a torn one.
	var rebuilt []byte
	for off := int64(0); off < full.Committed; {
		part, err := m.TailRead(m.Epoch(), off, 16)
		if err != nil {
			t.Fatal(err)
		}
		if len(part.Data) == 0 {
			t.Fatalf("empty chunk at offset %d before committed end %d", off, full.Committed)
		}
		countFrames(t, part.Data) // fails on any partial frame
		rebuilt = append(rebuilt, part.Data...)
		off += int64(len(part.Data))
	}
	if !bytes.Equal(rebuilt, full.Data) {
		t.Fatal("chunked tail differs from whole tail")
	}

	// Mid-stream offsets resume exactly.
	_, n, err := ParseFrame(full.Data)
	if err != nil {
		t.Fatal(err)
	}
	rest, err := m.TailRead(m.Epoch(), int64(n), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rest.Data, full.Data[n:]) {
		t.Fatal("offset tail differs from suffix")
	}

	// Caught-up tail is empty, not an error.
	tip, err := m.TailRead(m.Epoch(), full.Committed, 1<<20)
	if err != nil || len(tip.Data) != 0 {
		t.Fatalf("tip tail: %d bytes, err %v", len(tip.Data), err)
	}

	// Rotation: the old epoch (and any offset into it) is gone.
	oldEpoch := m.Epoch()
	if _, err := m.Checkpoint(db); err != nil {
		t.Fatal(err)
	}
	if _, err := m.TailRead(oldEpoch, 0, 1<<20); !errors.Is(err, ErrEpochGone) {
		t.Fatalf("stale epoch tail: err = %v, want ErrEpochGone", err)
	}
	// An offset beyond the new (empty) log is gone too — the follower
	// must resync, not wait.
	if _, err := m.TailRead(m.Epoch(), full.Committed, 1<<20); !errors.Is(err, ErrEpochGone) {
		t.Fatalf("overrun offset: err = %v, want ErrEpochGone", err)
	}
	fresh, err := m.TailRead(m.Epoch(), 0, 1<<20)
	if err != nil || fresh.Committed != 0 || fresh.Records != 0 {
		t.Fatalf("post-rotation tail: committed %d records %d err %v", fresh.Committed, fresh.Records, err)
	}
}

func TestTailReadOversizedFrame(t *testing.T) {
	db, m := shipDB(t)
	// One insert record far larger than the max chunk.
	big := make([][]storage.Word, 3000)
	for i := range big {
		big[i] = row2(int64(i), int64(i))
	}
	insertLogged(t, db, m, big...)
	tail, err := m.TailRead(m.Epoch(), 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if total, _ := countFrames(t, tail.Data); total == 0 {
		t.Fatal("oversized frame was not shipped whole")
	}
}

func TestChangedWakesOnCommitAndRotation(t *testing.T) {
	db, m := shipDB(t)
	ch := m.Changed()
	insertLogged(t, db, m, row2(1, 1))
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("commit did not wake Changed")
	}
	ch = m.Changed()
	if _, err := m.Checkpoint(db); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("rotation did not wake Changed")
	}
}

func TestParseFrameTornAndCorrupt(t *testing.T) {
	db, m := shipDB(t)
	insertLogged(t, db, m, row2(1, 1))
	tail, err := m.TailRead(m.Epoch(), 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	data := tail.Data

	if body, n, err := ParseFrame(data); err != nil || n == 0 || len(body) != n-8 {
		t.Fatalf("whole frame: body %d, n %d, err %v", len(body), n, err)
	}
	for _, cut := range []int{0, 3, 7, 8} {
		if _, n, err := ParseFrame(data[:cut]); n != 0 || err != nil {
			t.Fatalf("torn prefix of %d bytes: n %d err %v, want 0/nil", cut, n, err)
		}
	}
	bad := append([]byte(nil), data...)
	bad[9] ^= 0x01 // flip a body byte of the first frame
	if _, _, err := ParseFrame(bad); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("corrupt frame: err = %v, want ErrWALCorrupt", err)
	}
}

// TestCoalesceMergesInserts checks the record-count and ordering
// contract: consecutive same-table inserts merge into one frame, any
// other record (or Flush, or the row cap) cuts the batch first, and
// replay reproduces every row.
func TestCoalesceMergesInserts(t *testing.T) {
	dir := t.TempDir()
	db, m, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rel := storage.NewRelation(storage.NewSchema("t",
		storage.Attribute{Name: "a", Type: storage.Int64},
		storage.Attribute{Name: "b", Type: storage.Int64},
	), storage.NSM(2))
	db.AddTable(rel)
	if err := m.LogCreateTable(db.Catalog(), "t"); err != nil {
		t.Fatal(err)
	}
	if err := m.SetCoalesce(time.Hour, 100); err != nil { // window never fires in-test
		t.Fatal(err)
	}

	for i := 0; i < 10; i++ {
		insertLogged(t, db, m, row2(int64(i), int64(i*10)))
	}
	// Pending rows are not yet committed...
	before, err := m.TailRead(m.Epoch(), 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	_, mutsBefore := countFrames(t, before.Data)
	if mutsBefore != 1 { // just the create-table record
		t.Fatalf("mutation frames before flush = %d, want 1", mutsBefore)
	}
	// ...an index creation must cut the batch ahead of itself to keep
	// record order.
	db.CreateHashIndex("t", 0)
	if err := m.LogCreateIndex("t", 0, "hash"); err != nil {
		t.Fatal(err)
	}
	after, err := m.TailRead(m.Epoch(), 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	_, muts := countFrames(t, after.Data)
	if muts != 3 { // create-table + ONE coalesced insert + create-index
		t.Fatalf("mutation frames = %d, want 3 (10 inserts coalesced into 1)", muts)
	}

	// The row cap flushes automatically.
	capRows := make([][]storage.Word, 120)
	for i := range capRows {
		capRows[i] = row2(int64(1000+i), 0)
	}
	exec.RunInsert(plan.Insert{Table: "t", Rows: capRows}, db.Catalog())
	if err := m.LogInsert("t", 2, capRows); err != nil {
		t.Fatal(err)
	}
	if m.WALSize() == after.Committed {
		t.Fatal("row cap did not flush the batch")
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	recovered, m2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if got, want := recovered.Catalog().Table("t").Rows(), db.Catalog().Table("t").Rows(); got != want {
		t.Fatalf("recovered %d rows, want %d", got, want)
	}
	for _, table := range db.Catalog().Names() {
		assertBitIdentical(t, table, db, recovered)
	}
}

// TestCoalesceWindowFlushes relies on the timer path alone.
func TestCoalesceWindowFlushes(t *testing.T) {
	db, m := shipDB(t)
	if err := m.SetCoalesce(10*time.Millisecond, 1000); err != nil {
		t.Fatal(err)
	}
	insertLogged(t, db, m, row2(1, 1))
	deadline := time.Now().Add(5 * time.Second)
	for {
		tail, err := m.TailRead(m.Epoch(), 0, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		_, muts := countFrames(t, tail.Data)
		if muts >= 2 { // create-table + the window-flushed insert
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("window flush never committed the pending batch")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCoalesceCheckpointDropsPending: rows pending in the window are in
// the snapshot the checkpoint writes, so the reset must drop them —
// recovery must see them exactly once.
func TestCoalesceCheckpointDropsPending(t *testing.T) {
	dir := t.TempDir()
	db, m, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rel := storage.NewRelation(storage.NewSchema("t",
		storage.Attribute{Name: "a", Type: storage.Int64},
		storage.Attribute{Name: "b", Type: storage.Int64},
	), storage.NSM(2))
	db.AddTable(rel)
	if err := m.LogCreateTable(db.Catalog(), "t"); err != nil {
		t.Fatal(err)
	}
	if err := m.SetCoalesce(time.Hour, 1000); err != nil {
		t.Fatal(err)
	}
	insertLogged(t, db, m, row2(1, 1), row2(2, 2))
	if _, err := m.Checkpoint(db); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	recovered, m2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if got := recovered.Catalog().Table("t").Rows(); got != 2 {
		t.Fatalf("recovered %d rows, want 2 (pending batch duplicated or lost)", got)
	}
}

// TestTailCommitStamps pins the write-tracing surface: every commit
// stamps a monotonic sequence + wall-clock time (plus the tagged
// correlation id), TailRead resolves the newest stamp its bytes cover,
// and a rotation clears the ring instead of mapping stale offsets.
func TestTailCommitStamps(t *testing.T) {
	db, m := shipDB(t)
	before := time.Now().UnixNano()
	m.Tag("q-ship-1")
	insertLogged(t, db, m, row2(1, 10))

	tail, err := m.TailRead(m.Epoch(), 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Two commits so far (create-table, tagged insert): the full tail
	// resolves to the newest.
	if tail.CommitSeq != 2 {
		t.Fatalf("CommitSeq = %d, want 2", tail.CommitSeq)
	}
	if tail.QueryID != "q-ship-1" {
		t.Fatalf("QueryID = %q, want q-ship-1", tail.QueryID)
	}
	if tail.CommitNanos < before || tail.CommitNanos > time.Now().UnixNano() {
		t.Fatalf("CommitNanos %d outside test window", tail.CommitNanos)
	}
	if seq, nanos, qid := m.LastCommit(); seq != 2 || nanos != tail.CommitNanos || qid != "q-ship-1" {
		t.Fatalf("LastCommit = (%d, %d, %q)", seq, nanos, qid)
	}

	// A caught-up poll (empty Data) still reports the stamp at the held
	// offset; the tag was consumed by its commit, not left sticky.
	insertLogged(t, db, m, row2(2, 20))
	caught, err := m.TailRead(m.Epoch(), m.WALSize(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if caught.CommitSeq != 3 || caught.QueryID != "" {
		t.Fatalf("caught-up stamp = (%d, %q), want (3, \"\")", caught.CommitSeq, caught.QueryID)
	}

	// Rotation: stamps reset; a fresh tail of the new epoch has no stamp
	// until the next commit, then stamps resume with rising seqs.
	if _, err := m.Checkpoint(db); err != nil {
		t.Fatal(err)
	}
	if seq, _, _ := m.LastCommit(); seq != 0 {
		t.Fatalf("post-rotation LastCommit seq = %d, want 0", seq)
	}
	rot, err := m.TailRead(m.Epoch(), 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if rot.CommitSeq != 0 || rot.CommitNanos != 0 || rot.QueryID != "" {
		t.Fatalf("post-rotation tail stamp = (%d, %d, %q), want zeros", rot.CommitSeq, rot.CommitNanos, rot.QueryID)
	}
	insertLogged(t, db, m, row2(3, 30))
	after, err := m.TailRead(m.Epoch(), 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if after.CommitSeq != 4 {
		t.Fatalf("post-rotation CommitSeq = %d, want 4 (seq keeps rising)", after.CommitSeq)
	}
}
