package persist

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/exec/result"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/storage"
)

// suiteQueries is the cross-engine differential suite run against the
// original and the recovered database: scans with filters, string
// predicates over dictionary codes, grouped aggregation, joins and sorts.
func suiteQueries(db *core.DB) map[string]plan.Node {
	rel := db.Catalog().Table("t")
	dict := rel.Dicts[4]
	beta, _ := dict.Code("beta")
	return map[string]plan.Node{
		"full-scan": plan.Scan{Table: "t", Cols: []int{0, 1, 2, 3, 4, 5}},
		"filter": plan.Scan{
			Table:  "t",
			Filter: expr.Cmp{Attr: 2, Op: expr.Lt, Val: storage.EncodeInt(100)},
			Cols:   []int{0, 2},
		},
		"string-eq": plan.Scan{
			Table:  "t",
			Filter: expr.Cmp{Attr: 4, Op: expr.Eq, Val: beta},
			Cols:   []int{0, 4},
		},
		"indexed-point": plan.Scan{
			Table:  "t",
			Filter: expr.Cmp{Attr: 0, Op: expr.Eq, Val: storage.EncodeInt(42)},
			Cols:   []int{0, 1, 4},
		},
		"group-agg": plan.Aggregate{
			Child:   plan.Scan{Table: "t", Cols: []int{1, 2, 3}},
			GroupBy: []int{0},
			Aggs: []expr.AggSpec{
				{Kind: expr.Sum, Arg: expr.IntCol(1), Name: "sum_val"},
				{Kind: expr.Avg, Arg: expr.FloatCol(2), Name: "avg_price"},
				{Kind: expr.Count, Name: "n"},
			},
		},
		"join": plan.HashJoin{
			Left:     plan.Scan{Table: "t", Cols: []int{1, 0}},
			Right:    plan.Scan{Table: "events", Cols: []int{0, 1}},
			LeftKey:  1,
			RightKey: 0,
		},
		"sort-limit": plan.Limit{
			Child: plan.Sort{
				Child: plan.Scan{Table: "t", Cols: []int{2, 0}},
				Keys:  []plan.SortKey{{Pos: 0, Desc: true}, {Pos: 1}},
			},
			N: 25,
		},
	}
}

// TestRecoveryDifferential is the acceptance test of the durability
// layer: build → optimize layouts → checkpoint → more inserts (WAL tail)
// → reopen in a fresh DB → every suite query is row-identical on every
// engine, and the physical design round-tripped bit-identically.
func TestRecoveryDifferential(t *testing.T) {
	dir := t.TempDir()
	db := buildTestDB(t, 400)

	// Declare a workload and let the optimizer choose layouts, so the
	// snapshot contains optimizer-chosen (not just hand-picked) designs.
	db.AddWorkload("narrow", plan.Aggregate{
		Child: plan.Scan{
			Table:  "t",
			Filter: expr.Cmp{Attr: 0, Op: expr.Lt, Val: storage.EncodeInt(50)},
			Cols:   []int{1, 2},
		},
		Aggs: []expr.AggSpec{{Kind: expr.Sum, Arg: expr.IntCol(1), Name: "s"}},
	}, 0.9)
	db.AddWorkload("wide", plan.Scan{Table: "t", Cols: []int{0, 1, 2, 3, 4, 5}}, 0.1)
	db.OptimizeLayouts()

	_, m, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Checkpoint(db); err != nil {
		t.Fatal(err)
	}

	// Mutations after the checkpoint live only in the WAL: new dict value,
	// inserts into both tables.
	trel := db.Catalog().Table("t")
	code := trel.Dicts[4].AppendCode("post-snapshot")
	if err := m.LogDictAppend("t", 4, []string{"post-snapshot"}); err != nil {
		t.Fatal(err)
	}
	newRows := [][]storage.Word{
		{storage.EncodeInt(9001), storage.EncodeInt(2), storage.EncodeInt(-7),
			storage.EncodeFloat(3.25), code, storage.EncodeBool(false)},
		{storage.EncodeInt(9002), storage.EncodeInt(3), storage.EncodeInt(77),
			storage.EncodeFloat(0.5), storage.Null, storage.EncodeBool(true)},
	}
	exec.RunInsert(plan.Insert{Table: "t", Rows: newRows}, db.Catalog())
	if err := m.LogInsert("t", 6, newRows); err != nil {
		t.Fatal(err)
	}
	evRows := [][]storage.Word{{storage.EncodeInt(12345), storage.Word(0)}}
	exec.RunInsert(plan.Insert{Table: "events", Rows: evRows}, db.Catalog())
	if err := m.LogInsert("events", 2, evRows); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	recovered, m2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()

	for _, table := range db.Catalog().Names() {
		assertBitIdentical(t, table, db, recovered)
	}

	engines := []string{"jit", "volcano", "bulk", "hyrise", "vector"}
	for name, q := range suiteQueries(db) {
		for _, eng := range engines {
			want, err := db.QueryWith(eng, q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := recovered.QueryWith(eng, q)
			if err != nil {
				t.Fatal(err)
			}
			if !result.Equal(want, got) {
				t.Fatalf("query %s on engine %s: recovered result differs (%d vs %d rows)",
					name, eng, want.Len(), got.Len())
			}
		}
	}
}
