package persist

import (
	"repro/internal/core"
	"repro/internal/exec/result"
	"repro/internal/plan"
	"repro/internal/storage"
)

// Target is the destination of record replay: the small mutation surface
// that WAL records and snapshot sections drive. Two implementations
// exist — *core.DB applies in place (local recovery, where the database
// is private to the opener), and *core.WriteTxn applies copy-on-write
// into the next MVCC version (replica catch-up, where concurrent readers
// must never observe a half-applied chunk).
type Target interface {
	Catalog() *plan.Catalog
	AddTable(rel *storage.Relation)
	Insert(table string, rows [][]storage.Word) *result.Set
	ApplyLayout(table string, l storage.Layout)
	CreateHashIndex(table string, attr int)
	CreateTreeIndex(table string, attr int)
	DictAppend(table string, attr int, values []string)
}

var (
	_ Target = (*core.DB)(nil)
	_ Target = (*core.WriteTxn)(nil)
)
