package persist

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/storage"
)

// Streaming bulk ingestion: readers turn a CSV or NDJSON byte stream into
// batches of raw fields; EncodeRows turns a raw batch into word rows for
// one relation, running string values through its dictionaries. The two
// halves are split so a caller can parse outside its catalog lock and
// encode+append inside it — parsing dominates, and dictionary appends are
// the only part that touches shared state.

// Field is one raw cell of an ingested row.
type Field struct {
	Text string
	Null bool
}

// BatchReader yields batches of raw rows; io.EOF ends the stream.
type BatchReader interface {
	// ReadBatch returns up to max rows. It returns io.EOF (with zero
	// rows) when the input is exhausted.
	ReadBatch(max int) ([][]Field, error)
}

// CSVReader streams comma-separated rows of a fixed width. Empty cells
// are NULL for non-string columns (EncodeRows decides by type); there is
// no quoting convention for NULL strings.
type CSVReader struct {
	r     *csv.Reader
	width int
}

// NewCSVReader reads width-column CSV from r.
func NewCSVReader(r io.Reader, width int) *CSVReader {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = width
	cr.ReuseRecord = true
	return &CSVReader{r: cr, width: width}
}

// ReadBatch implements BatchReader.
func (c *CSVReader) ReadBatch(max int) ([][]Field, error) {
	var out [][]Field
	for len(out) < max {
		rec, err := c.r.Read()
		if errors.Is(err, io.EOF) {
			if len(out) == 0 {
				return nil, io.EOF
			}
			return out, nil
		}
		if err != nil {
			return out, fmt.Errorf("persist: csv: %w", err)
		}
		row := make([]Field, c.width)
		for i, cell := range rec {
			row[i] = Field{Text: cell}
		}
		out = append(out, row)
	}
	return out, nil
}

// NDJSONReader streams newline-delimited JSON arrays, one row per line:
// [1, "a", 2.5, null]. Numbers keep their literal text (json.Number), so
// float values round-trip exactly; null becomes the NULL word.
type NDJSONReader struct {
	sc    *bufio.Scanner
	width int
	line  int
}

// NewNDJSONReader reads width-element JSON array lines from r.
func NewNDJSONReader(r io.Reader, width int) *NDJSONReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	return &NDJSONReader{sc: sc, width: width}
}

// ReadBatch implements BatchReader.
func (n *NDJSONReader) ReadBatch(max int) ([][]Field, error) {
	var out [][]Field
	for len(out) < max {
		if !n.sc.Scan() {
			if err := n.sc.Err(); err != nil {
				return out, fmt.Errorf("persist: ndjson: %w", err)
			}
			if len(out) == 0 {
				return nil, io.EOF
			}
			return out, nil
		}
		n.line++
		line := strings.TrimSpace(n.sc.Text())
		if line == "" {
			continue
		}
		dec := json.NewDecoder(strings.NewReader(line))
		dec.UseNumber()
		var vals []any
		if err := dec.Decode(&vals); err != nil {
			return out, fmt.Errorf("persist: ndjson line %d: %w", n.line, err)
		}
		if len(vals) != n.width {
			return out, fmt.Errorf("persist: ndjson line %d: %d values, want %d", n.line, len(vals), n.width)
		}
		row := make([]Field, n.width)
		for i, v := range vals {
			switch t := v.(type) {
			case nil:
				row[i] = Field{Null: true}
			case json.Number:
				row[i] = Field{Text: t.String()}
			case string:
				row[i] = Field{Text: t}
			case bool:
				row[i] = Field{Text: strconv.FormatBool(t)}
			default:
				return out, fmt.Errorf("persist: ndjson line %d col %d: unsupported value %v", n.line, i, v)
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// EncodeRows encodes a raw batch into word rows in rel's schema attribute
// order, appending new string values to rel's dictionaries (creating a
// dictionary for a string attribute that has none yet). Because it
// mutates shared dictionaries, callers in a concurrent setting must hold
// their catalog write lock. Empty non-string cells and Null fields encode
// as the NULL word.
func EncodeRows(rel *storage.Relation, batch [][]Field) ([][]storage.Word, error) {
	attrs := rel.Schema.Attrs
	out := make([][]storage.Word, len(batch))
	for ri, raw := range batch {
		if len(raw) != len(attrs) {
			return nil, fmt.Errorf("persist: row %d has %d fields, want %d", ri, len(raw), len(attrs))
		}
		row := make([]storage.Word, len(attrs))
		for ai, f := range raw {
			if f.Null || (f.Text == "" && attrs[ai].Type != storage.String) {
				row[ai] = storage.Null
				continue
			}
			switch attrs[ai].Type {
			case storage.Int64:
				v, err := strconv.ParseInt(f.Text, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("persist: row %d col %q: %w", ri, attrs[ai].Name, err)
				}
				row[ai] = storage.EncodeInt(v)
			case storage.Float64:
				v, err := strconv.ParseFloat(f.Text, 64)
				if err != nil {
					return nil, fmt.Errorf("persist: row %d col %q: %w", ri, attrs[ai].Name, err)
				}
				row[ai] = storage.EncodeFloat(v)
			case storage.Bool:
				v, err := strconv.ParseBool(f.Text)
				if err != nil {
					return nil, fmt.Errorf("persist: row %d col %q: %w", ri, attrs[ai].Name, err)
				}
				row[ai] = storage.EncodeBool(v)
			case storage.String:
				d := rel.Dicts[ai]
				if d == nil {
					d = storage.BuildDict(nil)
					rel.Dicts[ai] = d
				}
				row[ai] = d.AppendCode(f.Text)
			}
		}
		out[ri] = row
	}
	return out, nil
}

// LoadBatches drives a full load: parse a batch, encode it against rel,
// hand the word rows to apply (which owns locking, insertion and WAL
// logging). It returns the total row count ingested.
func LoadBatches(rel *storage.Relation, br BatchReader, batchRows int, apply func([][]storage.Word) error) (int, error) {
	if batchRows <= 0 {
		batchRows = 4096
	}
	total := 0
	for {
		raw, err := br.ReadBatch(batchRows)
		if errors.Is(err, io.EOF) {
			return total, nil
		}
		if err != nil {
			return total, err
		}
		rows, err := EncodeRows(rel, raw)
		if err != nil {
			return total, err
		}
		if err := apply(rows); err != nil {
			return total, err
		}
		total += len(rows)
	}
}

// ParseSchemaSpec parses a "name:type,name:type" column specification
// (types: int64, float64, string, bool) into schema attributes — the
// create-table syntax of the bulk-load endpoint.
func ParseSchemaSpec(spec string) ([]storage.Attribute, error) {
	if spec == "" {
		return nil, errors.New("persist: empty schema spec")
	}
	parts := strings.Split(spec, ",")
	attrs := make([]storage.Attribute, 0, len(parts))
	seen := map[string]bool{}
	for _, p := range parts {
		name, typ, ok := strings.Cut(strings.TrimSpace(p), ":")
		if !ok || name == "" {
			return nil, fmt.Errorf("persist: schema spec %q: want name:type", p)
		}
		if seen[name] {
			return nil, fmt.Errorf("persist: schema spec: duplicate column %q", name)
		}
		seen[name] = true
		var t storage.Type
		switch typ {
		case "int64", "int":
			t = storage.Int64
		case "float64", "float":
			t = storage.Float64
		case "string":
			t = storage.String
		case "bool":
			t = storage.Bool
		default:
			return nil, fmt.Errorf("persist: schema spec: unknown type %q for column %q", typ, name)
		}
		attrs = append(attrs, storage.Attribute{Name: name, Type: t})
	}
	return attrs, nil
}
