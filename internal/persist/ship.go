package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"repro/internal/storage"
)

// Log shipping: the replication-facing side of the WAL. A replica
// bootstraps from the checkpoint snapshot and then tails the committed
// prefix of the primary's WAL with TailRead, shipping the raw CRC-framed
// bytes so a torn or corrupted stream is detected exactly like a torn
// local tail. A checkpoint rotates the epoch and discards the log, which
// TailRead reports as ErrEpochGone — the follower's cue to re-fetch the
// snapshot.

// ErrEpochGone reports a tail request for a WAL epoch that a checkpoint
// has rotated away (or an offset past the committed prefix, which means
// the follower's log view no longer matches the primary's). The follower
// must re-bootstrap from the current snapshot.
var ErrEpochGone = errors.New("persist: WAL epoch rotated away, resync from snapshot")

// Tail is one read of the committed WAL prefix.
type Tail struct {
	// Data holds whole CRC-framed records starting at the requested
	// offset (never a partial frame; empty when the follower is caught
	// up).
	Data []byte
	// Committed is the current committed WAL length — the offset a fully
	// caught-up follower would hold.
	Committed int64
	// Records counts the mutation records in the committed prefix (the
	// leading epoch record is excluded), for record-level lag accounting.
	Records int64
	// Epoch is the primary's current checkpoint epoch.
	Epoch uint64
	// CommitSeq, CommitNanos and QueryID describe the newest stamped
	// commit fully contained in Data (or, when Data is empty, in the
	// offset the caller already holds): its monotonic sequence number,
	// wall-clock unix-nanosecond commit time and the correlation id of
	// the triggering write. Zero/empty when no stamp covers the position
	// — after a rotation or restart, or for a follower lagging past the
	// stamp ring — in which case the follower must not derive lag.
	CommitSeq   int64
	CommitNanos int64
	QueryID     string
}

// TailRead returns committed WAL bytes from the given offset, at most max
// bytes (default 1 MB) but always ending on a frame boundary; a single
// record larger than max is returned whole, which is safe because commits
// only ever land complete frames. It returns ErrEpochGone when epoch no
// longer matches the live log.
func (m *Manager) TailRead(epoch uint64, offset int64, max int) (Tail, error) {
	if max <= 0 {
		max = 1 << 20
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	t := Tail{Committed: m.committed, Records: m.records, Epoch: m.epoch}
	if epoch != m.epoch || offset < 0 || offset > m.committed {
		return t, ErrEpochGone
	}
	avail := m.committed - offset
	if avail == 0 {
		m.stampTail(&t, offset)
		return t, nil
	}
	n := avail
	if n > int64(max) {
		n = int64(max)
	}
	buf := make([]byte, n)
	if _, err := m.reader.ReadAt(buf, offset); err != nil {
		return t, fmt.Errorf("persist: reading WAL tail at offset %d: %w", offset, err)
	}
	end := frameAlign(buf)
	if end == 0 {
		// The first frame is longer than max. The committed prefix ends
		// on a frame boundary, so the whole frame is readable — ship it
		// as one oversized chunk rather than starving the follower.
		total := int64(8 + binary.LittleEndian.Uint32(buf[:4]))
		if total > avail {
			return t, fmt.Errorf("%w: frame at offset %d overruns committed prefix", ErrWALCorrupt, offset)
		}
		buf = make([]byte, total)
		if _, err := m.reader.ReadAt(buf, offset); err != nil {
			return t, fmt.Errorf("persist: reading WAL tail at offset %d: %w", offset, err)
		}
		end = int(total)
	}
	t.Data = buf[:end]
	m.stampTail(&t, offset+int64(end))
	return t, nil
}

// stampTail resolves the newest commit stamp covered by a tail ending at
// end into the Tail's tracing fields. Caller holds m.mu.
func (m *Manager) stampTail(t *Tail, end int64) {
	if st, ok := m.stampAtOrBeforeLocked(end); ok {
		t.CommitSeq, t.CommitNanos, t.QueryID = st.seq, st.nanos, st.qid
	}
}

// Changed returns a channel that is closed at the next commit or epoch
// rotation — the long-poll parking primitive for WAL tails. Grab the
// channel before the TailRead whose emptiness you are waiting out, or a
// commit between the two is missed.
func (m *Manager) Changed() <-chan struct{} {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.notify == nil {
		m.notify = make(chan struct{})
	}
	return m.notify
}

// frameAlign returns the length of the longest prefix of buf holding only
// whole frames (length checks only — CRC validation happens at apply
// time, and the local log was CRC-verified on open).
func frameAlign(buf []byte) int {
	end := 0
	for {
		if len(buf)-end < 8 {
			return end
		}
		blen := int(binary.LittleEndian.Uint32(buf[end : end+4]))
		if len(buf)-end-8 < blen {
			return end
		}
		end += 8 + blen
	}
}

// ParseFrame splits the first complete CRC-framed record off data,
// returning its body and the frame's total length. n == 0 with a nil
// error means data holds no complete frame yet (a torn stream tail —
// request more bytes); a CRC mismatch returns ErrWALCorrupt.
func ParseFrame(data []byte) (body []byte, n int, err error) {
	if len(data) < 8 {
		return nil, 0, nil
	}
	blen := int(binary.LittleEndian.Uint32(data[:4]))
	if len(data)-8 < blen {
		return nil, 0, nil
	}
	body = data[8 : 8+blen]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(data[4:8]) {
		return nil, 0, fmt.Errorf("%w: frame CRC mismatch", ErrWALCorrupt)
	}
	return body, 8 + blen, nil
}

// EpochRecord reports whether a record body is a WAL epoch marker, and
// its epoch. Followers verify the marker against the snapshot they
// restored instead of applying it.
func EpochRecord(body []byte) (uint64, bool) {
	if len(body) == 0 || body[0] != walEpoch {
		return 0, false
	}
	d := &dec{buf: body[1:]}
	e, err := d.uvarint()
	if err != nil {
		return 0, false
	}
	return e, true
}

// Insert-record coalescing. High-frequency small inserts cost one framed
// record (and one flush) each; coalescing merges consecutive LogInsert
// calls for the same table into a single record, committed when a
// different record type or table is logged, maxRows accumulate, the
// window elapses, or Flush/Close/Checkpoint runs. The durability
// contract weakens from "durable at return" to "durable within window" —
// rows pending in the window are lost if the process dies — which is the
// explicit trade the knob buys: smaller local logs and fewer shipped
// bytes.
type coalesce struct {
	window  time.Duration
	maxRows int

	table string
	width int
	rows  [][]storage.Word
	timer *time.Timer
	err   error // sticky failure from a timer-path flush
}

// SetCoalesce enables (window > 0) or disables (window <= 0) insert
// coalescing. maxRows bounds a merged record (0 means 4096). Pending rows
// are flushed before the setting changes.
func (m *Manager) SetCoalesce(window time.Duration, maxRows int) error {
	if maxRows <= 0 {
		maxRows = 4096
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.flushPendingLocked(); err != nil {
		return err
	}
	m.co.window, m.co.maxRows = window, maxRows
	return nil
}

// Flush commits any pending coalesced insert batch.
func (m *Manager) Flush() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.flushPendingLocked()
}

// flushTimer is the window-expiry path; its failure is reported by the
// next LogInsert (the rows stay applied in memory either way).
func (m *Manager) flushTimer() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.flushPendingLocked(); err != nil {
		m.co.err = err
	}
}

func (m *Manager) flushPendingLocked() error {
	if len(m.co.rows) == 0 {
		return nil
	}
	body := walInsertBody(m.co.table, m.co.width, m.co.rows)
	m.dropPendingLocked()
	return m.commitLocked(body)
}

func (m *Manager) dropPendingLocked() {
	m.co.rows = nil
	if m.co.timer != nil {
		m.co.timer.Stop()
		m.co.timer = nil
	}
}
