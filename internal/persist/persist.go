// Package persist is the durability layer of the engine: it makes the
// optimizer-chosen physical layouts — the asset the whole system manages —
// survive process restarts.
//
// Two artifacts live in the data directory:
//
//   - snapshot.db — a layout-aware binary checkpoint of the full catalog:
//     schemas, the exact storage.Layout partitionings, partition word
//     data, dictionaries and index definitions, each table section
//     CRC-checked. A restore is bit-identical: same Parts strides and
//     offsets, same dictionary codes.
//   - wal.log — an append-only log of the mutations since the snapshot:
//     inserts, table creations (bulk loads), re-layout decisions and index
//     creations. Recovery is snapshot + WAL replay; a torn final record
//     (the write in flight at the crash) is discarded.
//
// Durability contract: WAL records are buffered and flushed at each
// commit boundary (one flush per logical batch — group commit); with
// Options.Fsync they are also fsync'd, making every committed batch
// crash-durable. Snapshots are always written to a temp file, fsync'd and
// atomically renamed, so a crash mid-checkpoint leaves the previous
// snapshot intact. Without Fsync, a kernel crash can lose the tail of the
// WAL that the OS had not written back; a plain process kill (SIGKILL)
// loses nothing that was committed.
package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/storage"
)

const (
	snapshotFile = "snapshot.db"
	walFile      = "wal.log"
	// walNewFile is the successor WAL a concurrent checkpoint stages: the
	// next epoch's header plus every mutation record committed after the
	// checkpoint pinned its snapshot. It is renamed over wal.log as the
	// final step; Open completes the rotation if a crash interrupted it.
	walNewFile = "wal.new"
)

// Options configures a Manager.
type Options struct {
	// Dir is the data directory (created if missing).
	Dir string
	// Fsync makes WAL commits and snapshots fsync before returning.
	Fsync bool
	// Fresh discards any existing snapshot and WAL instead of recovering
	// from them.
	Fresh bool
}

// Manager owns the durability state of one database: the WAL append side
// and the checkpoint procedure. Loggers serialize on the internal mutex;
// the service layer additionally serializes loggers against each other
// with its commit mutex so WAL order matches publication order. A
// checkpoint needs no exclusion at all: BeginCheckpoint notes the
// committed WAL position while the caller pins an MVCC snapshot, the
// snapshot serializes without any lock, and CheckpointFrom preserves the
// records committed in the meantime as the new WAL's suffix.
type Manager struct {
	dir   string
	fsync bool

	mu     sync.Mutex // serializes WAL file operations against rotation
	w      *wal
	reader *os.File // read side of the WAL, for replication tails

	// committed is the flushed, frame-aligned prefix of the WAL — the
	// bytes a replica may tail. records counts the mutation records in
	// that prefix (the leading epoch record is excluded). notify is
	// closed and replaced on every commit and rotation, waking parked
	// long-poll tails.
	committed int64
	records   int64
	notify    chan struct{}

	co coalesce // insert-record coalescing state (see SetCoalesce)

	epoch       uint64 // current checkpoint epoch (snapshot and WAL agree)
	checkpoints int64

	// Write tracing: every commit is stamped with a monotonic sequence
	// number, its wall-clock time and the correlation id of the write
	// that triggered it (Tag). The stamps ring maps committed WAL offsets
	// back to those stamps so TailRead can tell a follower *when* the
	// newest bytes it ships were committed — the primary half of
	// commit-to-visible lag. Rotation clears the ring (offsets restart);
	// stampSeq keeps rising for the manager's lifetime.
	stampSeq int64
	stamps   []commitStamp // ring, stampRingSize entries once full
	stampPos int           // next write index
	stampN   int           // valid entries
	tag      string        // sticky query id consumed by the next commit

	// Metric hooks, nil until SetMetrics: fsync latency per group commit
	// and total bytes appended (frames included). Kept as plain fields
	// under mu — every reader already holds it.
	fsyncHist   *obs.Histogram
	walAppended *obs.Counter
}

// commitStamp records one durable group commit: the committed WAL
// length it produced, its process-monotonic sequence number, the
// wall-clock commit time and the correlation id of the triggering write
// (empty when untagged; a coalesced flush carries the last tag set
// inside its window).
type commitStamp struct {
	end   int64 // committed WAL length after this commit
	seq   int64
	nanos int64 // unix nanoseconds at commit
	qid   string
}

// stampRingSize bounds the commit-stamp ring. Followers nearly caught
// up resolve against the newest stamps; one lagging by more than the
// ring simply gets no stamp (zero values), never a wrong one.
const stampRingSize = 512

// SetMetrics wires the durability metrics in: fsync gets one observation
// per group commit (fsync mode only), walAppended every framed byte.
// Either may be nil. The service layer calls this from AttachPersist,
// before the manager starts committing for it.
func (m *Manager) SetMetrics(fsync *obs.Histogram, walAppended *obs.Counter) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fsyncHist = fsync
	m.walAppended = walAppended
}

// Open recovers (or initializes) a database from the data directory and
// returns it together with the Manager that logs its future mutations.
func Open(opts Options) (*core.DB, *Manager, error) {
	if opts.Dir == "" {
		return nil, nil, errors.New("persist: empty data directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, err
	}
	snapPath := filepath.Join(opts.Dir, snapshotFile)
	walPath := filepath.Join(opts.Dir, walFile)
	newPath := filepath.Join(opts.Dir, walNewFile)
	if opts.Fresh {
		for _, p := range []string{snapPath, walPath, newPath} {
			if err := os.Remove(p); err != nil && !errors.Is(err, os.ErrNotExist) {
				return nil, nil, err
			}
		}
	}

	db := core.Open()
	var epoch uint64
	if f, err := os.Open(snapPath); err == nil {
		restored, snapEpoch, rerr := restoreSnapshot(f)
		f.Close()
		if rerr != nil {
			return nil, nil, fmt.Errorf("persist: reading %s: %w", snapPath, rerr)
		}
		db, epoch = restored, snapEpoch
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, nil, err
	}
	if err := completeRotation(walPath, newPath, epoch); err != nil {
		return nil, nil, err
	}
	applied, err := replayWAL(walPath, db, epoch)
	if err != nil {
		return nil, nil, err
	}
	w, err := openWAL(walPath, opts.Fsync)
	if err != nil {
		return nil, nil, err
	}
	reader, err := os.Open(walPath)
	if err != nil {
		w.close()
		return nil, nil, err
	}
	return db, &Manager{
		dir: opts.Dir, fsync: opts.Fsync, w: w, reader: reader,
		committed: w.size, records: int64(applied), epoch: epoch,
	}, nil
}

// Close flushes (including any coalesced pending batch) and closes the
// WAL.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	err := m.flushPendingLocked()
	if cerr := m.w.close(); err == nil {
		err = cerr
	}
	if cerr := m.reader.Close(); err == nil {
		err = cerr
	}
	return err
}

// WALSize returns the current WAL length in bytes (committed plus
// buffered) — the checkpoint trigger metric. A WAL holding no mutations
// is empty; the first commit writes the leading epoch record.
func (m *Manager) WALSize() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.w.size
}

// Committed returns the flushed, frame-aligned WAL prefix length and the
// mutation records inside it — the position a fully caught-up follower
// would hold (the GET /replication primary-side reference point).
func (m *Manager) Committed() (bytes, records int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.committed, m.records
}

// Epoch returns the current checkpoint epoch.
func (m *Manager) Epoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// Checkpoints returns how many checkpoints completed.
func (m *Manager) Checkpoints() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.checkpoints
}

// LogInsert records appended tuples (in schema attribute order). With
// coalescing enabled (SetCoalesce), consecutive inserts into the same
// table merge into one framed record instead of committing immediately.
func (m *Manager) LogInsert(table string, width int, rows [][]storage.Word) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.co.window <= 0 {
		return m.commitLocked(walInsertBody(table, width, rows))
	}
	if err := m.co.err; err != nil {
		m.co.err = nil
		return err
	}
	if len(m.co.rows) > 0 && (m.co.table != table || m.co.width != width) {
		if err := m.flushPendingLocked(); err != nil {
			return err
		}
	}
	if len(m.co.rows) == 0 {
		m.co.table, m.co.width = table, width
		m.co.timer = time.AfterFunc(m.co.window, m.flushTimer)
	}
	m.co.rows = append(m.co.rows, rows...)
	if len(m.co.rows) >= m.co.maxRows {
		return m.flushPendingLocked()
	}
	return nil
}

// LogCreateTable records a table creation with its current content —
// normally logged right after the table is created, while it is empty or
// holds only its initial load.
func (m *Manager) LogCreateTable(c *plan.Catalog, table string) error {
	return m.commit(walCreateTableBody(SnapTable(c, table)))
}

// LogRelayout records an optimizer re-layout decision.
func (m *Manager) LogRelayout(table string, l storage.Layout) error {
	return m.commit(walRelayoutBody(table, l))
}

// LogCreateIndex records an index creation.
func (m *Manager) LogCreateIndex(table string, attr int, kind string) error {
	return m.commit(walCreateIndexBody(table, attr, kind))
}

// LogDictAppend records dictionary growth (new string values appended by
// a bulk load, in code order). Log it before the insert whose rows carry
// the new codes.
func (m *Manager) LogDictAppend(table string, attr int, values []string) error {
	return m.commit(walDictAppendBody(table, attr, values))
}

// commit flushes any coalesced pending batch (preserving record order)
// and then appends one record durably.
func (m *Manager) commit(body []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.flushPendingLocked(); err != nil {
		return err
	}
	return m.commitLocked(body)
}

// commitLocked appends one record and makes the batch durable (group
// commit: the record plus anything buffered before it). A WAL that was
// just reset (or newly created) receives its leading epoch record in
// the same commit — lazily, so an earlier failed stamp attempt can
// never leave mutation records in a headerless log.
func (m *Manager) commitLocked(body []byte) error {
	if err := faultinject.Hit("persist/wal-commit"); err != nil {
		return err
	}
	before := m.w.size
	if !m.w.stamped {
		if err := m.w.append(walEpochBody(m.epoch)); err != nil {
			return err
		}
		m.w.stamped = true
	}
	if err := m.w.append(body); err != nil {
		return err
	}
	start := time.Now()
	if err := m.w.commit(); err != nil {
		return err
	}
	if m.fsyncHist != nil && m.fsync {
		m.fsyncHist.ObserveSince(start)
	}
	if m.walAppended != nil {
		m.walAppended.Add(m.w.size - before)
	}
	m.committed = m.w.size
	m.records++
	m.stampSeq++
	m.pushStampLocked(commitStamp{
		end:   m.committed,
		seq:   m.stampSeq,
		nanos: time.Now().UnixNano(),
		qid:   m.tag,
	})
	m.tag = ""
	m.wakeLocked()
	return nil
}

// Tag attaches a correlation id to the next commit: the service's write
// paths call it (under their commit mutex) right before the LogX call
// it describes, so the stamp — and through TailRead every follower —
// learns which request produced the bytes. With coalescing, the merged
// record carries the last tag set inside the window.
func (m *Manager) Tag(qid string) {
	if qid == "" {
		return
	}
	m.mu.Lock()
	m.tag = qid
	m.mu.Unlock()
}

// LastCommit reports the newest commit stamp: its sequence number, its
// wall-clock unix-nanosecond time and its correlation id. All zero when
// nothing has committed since open/rotation.
func (m *Manager) LastCommit() (seq, nanos int64, qid string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stampN == 0 {
		return 0, 0, ""
	}
	st := m.stamps[(m.stampPos-1+len(m.stamps))%len(m.stamps)]
	return st.seq, st.nanos, st.qid
}

func (m *Manager) pushStampLocked(st commitStamp) {
	if m.stamps == nil {
		m.stamps = make([]commitStamp, stampRingSize)
	}
	m.stamps[m.stampPos] = st
	m.stampPos = (m.stampPos + 1) % len(m.stamps)
	if m.stampN < len(m.stamps) {
		m.stampN++
	}
}

// stampAtOrBeforeLocked returns the newest stamp whose committed end is
// at or below end — the commit a follower holding exactly end bytes has
// fully applied. ok is false when the ring holds no such stamp (the
// follower is further behind than the ring remembers, or nothing has
// committed yet).
func (m *Manager) stampAtOrBeforeLocked(end int64) (commitStamp, bool) {
	for i := 0; i < m.stampN; i++ {
		st := m.stamps[(m.stampPos-1-i+len(m.stamps))%len(m.stamps)]
		if st.end <= end {
			return st, true
		}
	}
	return commitStamp{}, false
}

// wakeLocked releases every goroutine parked on Changed().
func (m *Manager) wakeLocked() {
	if m.notify != nil {
		close(m.notify)
		m.notify = nil
	}
}

// CheckpointInfo reports what a checkpoint did.
type CheckpointInfo struct {
	SnapshotBytes int64 // size of the written snapshot
	WALBytes      int64 // WAL bytes made redundant and dropped
}

// Checkpoint writes a snapshot of db's full catalog and rotates the WAL.
// It is the serial convenience form — the caller guarantees no mutations
// run concurrently. The concurrent path is BeginCheckpoint + a pinned
// core.Snapshot + CheckpointFrom, which the service layer uses so a slow
// snapshot never stalls writers.
func (m *Manager) Checkpoint(db *core.DB) (CheckpointInfo, error) {
	pos, err := m.BeginCheckpoint()
	if err != nil {
		return CheckpointInfo{}, err
	}
	return m.CheckpointFrom(db.Catalog(), pos)
}

// BeginCheckpoint flushes any coalesced pending batch and returns the
// committed WAL position the checkpoint covers. The caller must pin the
// catalog snapshot it will serialize while holding the same exclusion it
// applies to loggers (the service's commit mutex), so the returned
// position and the pinned state agree: everything at or below it is in
// the snapshot, everything after it is not.
func (m *Manager) BeginCheckpoint() (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.flushPendingLocked(); err != nil {
		return 0, err
	}
	return m.committed, nil
}

// CheckpointFrom serializes cat — a catalog pinned at WAL position pos —
// with no lock held, then rotates the WAL while preserving every record
// committed after pos as the suffix of the next epoch's log.
//
// Crash safety: the snapshot is staged to a temp file and the successor
// WAL to wal.new, both fsync'd before either rename (in fsync mode, with
// directory fsyncs after each). The snapshot rename happens first; Open
// repairs every interruption: before the snapshot rename the old
// snapshot + old WAL are intact (a stale wal.new is removed), between
// the renames the new snapshot pairs with wal.new (Open finishes the
// rotation), and after both the state is simply the result.
func (m *Manager) CheckpointFrom(cat *plan.Catalog, pos int64) (CheckpointInfo, error) {
	if err := faultinject.Hit("persist/checkpoint"); err != nil {
		return CheckpointInfo{}, err
	}
	next := m.Epoch() + 1
	tmp, err := os.CreateTemp(m.dir, snapshotFile+".tmp-*")
	if err != nil {
		return CheckpointInfo{}, err
	}
	defer os.Remove(tmp.Name()) // no-op after the rename
	n, err := WriteCatalogSnapshot(tmp, cat, next)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return CheckpointInfo{}, fmt.Errorf("persist: writing snapshot: %w", err)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	// Coalesced rows still pending were applied in memory after the pin,
	// so the snapshot does NOT contain them — flush them into the suffix.
	if err := m.flushPendingLocked(); err != nil {
		return CheckpointInfo{}, err
	}
	suffix, records, err := m.suffixRecordsLocked(pos)
	if err != nil {
		return CheckpointInfo{}, err
	}
	newPath := filepath.Join(m.dir, walNewFile)
	if err := m.stageSuccessorWAL(newPath, next, suffix); err != nil {
		return CheckpointInfo{}, err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(m.dir, snapshotFile)); err != nil {
		return CheckpointInfo{}, err
	}
	if m.fsync {
		// Persist the snapshot rename's directory entry before publishing
		// the successor WAL, or a power loss could pair the old snapshot
		// with the new (shorter) log.
		if err := syncDir(m.dir); err != nil {
			return CheckpointInfo{}, fmt.Errorf("persist: syncing data dir: %w", err)
		}
	}
	if err := os.Rename(newPath, filepath.Join(m.dir, walFile)); err != nil {
		return CheckpointInfo{}, err
	}
	if m.fsync {
		if err := syncDir(m.dir); err != nil {
			return CheckpointInfo{}, fmt.Errorf("persist: syncing data dir: %w", err)
		}
	}
	// The renames changed the wal.log inode: reopen both file handles.
	if err := m.reopenWALLocked(); err != nil {
		return CheckpointInfo{}, err
	}
	m.epoch = next
	m.checkpoints++
	m.committed = m.w.size
	m.records = records
	// Offsets restarted with the rotated log: the old stamps' ends no
	// longer describe it. Followers see zero stamps (no lag observation)
	// until the next commit — better than a wrong mapping.
	m.stampN, m.stampPos = 0, 0
	// Wake parked tails so followers of the rotated epoch learn about it
	// immediately instead of at their poll timeout.
	m.wakeLocked()
	return CheckpointInfo{SnapshotBytes: n, WALBytes: pos}, nil
}

// suffixRecordsLocked reads the committed WAL bytes after pos and returns
// the mutation-record bodies they frame (skipping the leading epoch
// record when pos is 0) plus their count.
func (m *Manager) suffixRecordsLocked(pos int64) ([][]byte, int64, error) {
	if pos < 0 || pos > m.committed {
		return nil, 0, fmt.Errorf("persist: checkpoint position %d outside committed prefix %d", pos, m.committed)
	}
	if pos == m.committed {
		return nil, 0, nil
	}
	buf := make([]byte, m.committed-pos)
	if _, err := m.reader.ReadAt(buf, pos); err != nil {
		return nil, 0, fmt.Errorf("persist: reading WAL suffix at offset %d: %w", pos, err)
	}
	var bodies [][]byte
	var count int64
	off := 0
	for off < len(buf) {
		body, fn, err := ParseFrame(buf[off:])
		if err != nil {
			return nil, 0, err
		}
		if fn == 0 {
			return nil, 0, fmt.Errorf("%w: torn frame inside committed prefix at offset %d", ErrWALCorrupt, pos+int64(off))
		}
		if _, isEpoch := EpochRecord(body); !isEpoch {
			bodies = append(bodies, body)
			count++
		}
		off += fn
	}
	return bodies, count, nil
}

// stageSuccessorWAL writes the next epoch's WAL to path: empty when there
// is no suffix (the epoch header is stamped lazily by the first commit,
// like any fresh WAL), otherwise the epoch record followed by the suffix
// bodies, re-framed.
func (m *Manager) stageSuccessorWAL(path string, epoch uint64, bodies [][]byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	var werr error
	if len(bodies) > 0 {
		buf := appendFrame(nil, walEpochBody(epoch))
		for _, body := range bodies {
			buf = appendFrame(buf, body)
		}
		_, werr = f.Write(buf)
	}
	if werr == nil && m.fsync {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(path)
		return fmt.Errorf("persist: staging successor WAL: %w", werr)
	}
	return nil
}

// reopenWALLocked reopens the append and read sides of wal.log after a
// rotation replaced the inode.
func (m *Manager) reopenWALLocked() error {
	walPath := filepath.Join(m.dir, walFile)
	if err := m.w.close(); err != nil {
		return fmt.Errorf("persist: closing rotated WAL: %w", err)
	}
	w, err := openWAL(walPath, m.fsync)
	if err != nil {
		return fmt.Errorf("persist: reopening WAL: %w", err)
	}
	reader, err := os.Open(walPath)
	if err != nil {
		w.close()
		return fmt.Errorf("persist: reopening WAL reader: %w", err)
	}
	m.reader.Close()
	m.w, m.reader = w, reader
	return nil
}

// completeRotation repairs a checkpoint that crashed between staging
// wal.new and renaming it over wal.log. If wal.log already continues the
// restored snapshot (same epoch), the sidecar is a leftover from a
// checkpoint that never published its snapshot — remove it. Otherwise,
// if the sidecar matches the snapshot epoch (or is empty, the staged
// form of a suffix-free rotation), the snapshot rename did happen and
// the sidecar is the correct log — finish the rename. Anything else is a
// stray file; remove it and let replayWAL's epoch rules decide.
func completeRotation(walPath, newPath string, snapEpoch uint64) error {
	if _, err := os.Stat(newPath); errors.Is(err, os.ErrNotExist) {
		return nil
	} else if err != nil {
		return err
	}
	logEpoch, logOK, err := firstEpoch(walPath)
	if err != nil {
		return err
	}
	if logOK && logEpoch == snapEpoch {
		return os.Remove(newPath)
	}
	newEpoch, newOK, err := firstEpoch(newPath)
	if err != nil {
		return err
	}
	if !newOK || newEpoch == snapEpoch {
		return os.Rename(newPath, walPath)
	}
	return os.Remove(newPath)
}

// SnapshotPath returns the path of the checkpoint snapshot inside the
// data directory (the file may not exist before the first checkpoint).
func (m *Manager) SnapshotPath() string {
	return filepath.Join(m.dir, snapshotFile)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
