// Package persist is the durability layer of the engine: it makes the
// optimizer-chosen physical layouts — the asset the whole system manages —
// survive process restarts.
//
// Two artifacts live in the data directory:
//
//   - snapshot.db — a layout-aware binary checkpoint of the full catalog:
//     schemas, the exact storage.Layout partitionings, partition word
//     data, dictionaries and index definitions, each table section
//     CRC-checked. A restore is bit-identical: same Parts strides and
//     offsets, same dictionary codes.
//   - wal.log — an append-only log of the mutations since the snapshot:
//     inserts, table creations (bulk loads), re-layout decisions and index
//     creations. Recovery is snapshot + WAL replay; a torn final record
//     (the write in flight at the crash) is discarded.
//
// Durability contract: WAL records are buffered and flushed at each
// commit boundary (one flush per logical batch — group commit); with
// Options.Fsync they are also fsync'd, making every committed batch
// crash-durable. Snapshots are always written to a temp file, fsync'd and
// atomically renamed, so a crash mid-checkpoint leaves the previous
// snapshot intact. Without Fsync, a kernel crash can lose the tail of the
// WAL that the OS had not written back; a plain process kill (SIGKILL)
// loses nothing that was committed.
package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/storage"
)

const (
	snapshotFile = "snapshot.db"
	walFile      = "wal.log"
)

// Options configures a Manager.
type Options struct {
	// Dir is the data directory (created if missing).
	Dir string
	// Fsync makes WAL commits and snapshots fsync before returning.
	Fsync bool
	// Fresh discards any existing snapshot and WAL instead of recovering
	// from them.
	Fresh bool
}

// Manager owns the durability state of one database: the WAL append side
// and the checkpoint procedure. The caller is responsible for mutual
// exclusion between loggers and Checkpoint — the service layer provides
// it with its catalog RWMutex (loggers run under the write lock,
// Checkpoint under the read lock, which excludes writers while queries
// keep running).
type Manager struct {
	dir   string
	fsync bool

	mu     sync.Mutex // serializes WAL file operations against rotation
	w      *wal
	reader *os.File // read side of the WAL, for replication tails

	// committed is the flushed, frame-aligned prefix of the WAL — the
	// bytes a replica may tail. records counts the mutation records in
	// that prefix (the leading epoch record is excluded). notify is
	// closed and replaced on every commit and rotation, waking parked
	// long-poll tails.
	committed int64
	records   int64
	notify    chan struct{}

	co coalesce // insert-record coalescing state (see SetCoalesce)

	epoch       uint64 // current checkpoint epoch (snapshot and WAL agree)
	checkpoints int64

	// Metric hooks, nil until SetMetrics: fsync latency per group commit
	// and total bytes appended (frames included). Kept as plain fields
	// under mu — every reader already holds it.
	fsyncHist   *obs.Histogram
	walAppended *obs.Counter
}

// SetMetrics wires the durability metrics in: fsync gets one observation
// per group commit (fsync mode only), walAppended every framed byte.
// Either may be nil. The service layer calls this from AttachPersist,
// before the manager starts committing for it.
func (m *Manager) SetMetrics(fsync *obs.Histogram, walAppended *obs.Counter) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fsyncHist = fsync
	m.walAppended = walAppended
}

// Open recovers (or initializes) a database from the data directory and
// returns it together with the Manager that logs its future mutations.
func Open(opts Options) (*core.DB, *Manager, error) {
	if opts.Dir == "" {
		return nil, nil, errors.New("persist: empty data directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, err
	}
	snapPath := filepath.Join(opts.Dir, snapshotFile)
	walPath := filepath.Join(opts.Dir, walFile)
	if opts.Fresh {
		for _, p := range []string{snapPath, walPath} {
			if err := os.Remove(p); err != nil && !errors.Is(err, os.ErrNotExist) {
				return nil, nil, err
			}
		}
	}

	db := core.Open()
	var epoch uint64
	if f, err := os.Open(snapPath); err == nil {
		restored, snapEpoch, rerr := restoreSnapshot(f)
		f.Close()
		if rerr != nil {
			return nil, nil, fmt.Errorf("persist: reading %s: %w", snapPath, rerr)
		}
		db, epoch = restored, snapEpoch
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, nil, err
	}
	applied, err := replayWAL(walPath, db, epoch)
	if err != nil {
		return nil, nil, err
	}
	w, err := openWAL(walPath, opts.Fsync)
	if err != nil {
		return nil, nil, err
	}
	reader, err := os.Open(walPath)
	if err != nil {
		w.close()
		return nil, nil, err
	}
	return db, &Manager{
		dir: opts.Dir, fsync: opts.Fsync, w: w, reader: reader,
		committed: w.size, records: int64(applied), epoch: epoch,
	}, nil
}

// Close flushes (including any coalesced pending batch) and closes the
// WAL.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	err := m.flushPendingLocked()
	if cerr := m.w.close(); err == nil {
		err = cerr
	}
	if cerr := m.reader.Close(); err == nil {
		err = cerr
	}
	return err
}

// WALSize returns the current WAL length in bytes (committed plus
// buffered) — the checkpoint trigger metric. A WAL holding no mutations
// is empty; the first commit writes the leading epoch record.
func (m *Manager) WALSize() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.w.size
}

// Epoch returns the current checkpoint epoch.
func (m *Manager) Epoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// Checkpoints returns how many checkpoints completed.
func (m *Manager) Checkpoints() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.checkpoints
}

// LogInsert records appended tuples (in schema attribute order). With
// coalescing enabled (SetCoalesce), consecutive inserts into the same
// table merge into one framed record instead of committing immediately.
func (m *Manager) LogInsert(table string, width int, rows [][]storage.Word) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.co.window <= 0 {
		return m.commitLocked(walInsertBody(table, width, rows))
	}
	if err := m.co.err; err != nil {
		m.co.err = nil
		return err
	}
	if len(m.co.rows) > 0 && (m.co.table != table || m.co.width != width) {
		if err := m.flushPendingLocked(); err != nil {
			return err
		}
	}
	if len(m.co.rows) == 0 {
		m.co.table, m.co.width = table, width
		m.co.timer = time.AfterFunc(m.co.window, m.flushTimer)
	}
	m.co.rows = append(m.co.rows, rows...)
	if len(m.co.rows) >= m.co.maxRows {
		return m.flushPendingLocked()
	}
	return nil
}

// LogCreateTable records a table creation with its current content —
// normally logged right after the table is created, while it is empty or
// holds only its initial load.
func (m *Manager) LogCreateTable(c *plan.Catalog, table string) error {
	return m.commit(walCreateTableBody(SnapTable(c, table)))
}

// LogRelayout records an optimizer re-layout decision.
func (m *Manager) LogRelayout(table string, l storage.Layout) error {
	return m.commit(walRelayoutBody(table, l))
}

// LogCreateIndex records an index creation.
func (m *Manager) LogCreateIndex(table string, attr int, kind string) error {
	return m.commit(walCreateIndexBody(table, attr, kind))
}

// LogDictAppend records dictionary growth (new string values appended by
// a bulk load, in code order). Log it before the insert whose rows carry
// the new codes.
func (m *Manager) LogDictAppend(table string, attr int, values []string) error {
	return m.commit(walDictAppendBody(table, attr, values))
}

// commit flushes any coalesced pending batch (preserving record order)
// and then appends one record durably.
func (m *Manager) commit(body []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.flushPendingLocked(); err != nil {
		return err
	}
	return m.commitLocked(body)
}

// commitLocked appends one record and makes the batch durable (group
// commit: the record plus anything buffered before it). A WAL that was
// just reset (or newly created) receives its leading epoch record in
// the same commit — lazily, so an earlier failed stamp attempt can
// never leave mutation records in a headerless log.
func (m *Manager) commitLocked(body []byte) error {
	if err := faultinject.Hit("persist/wal-commit"); err != nil {
		return err
	}
	before := m.w.size
	if !m.w.stamped {
		if err := m.w.append(walEpochBody(m.epoch)); err != nil {
			return err
		}
		m.w.stamped = true
	}
	if err := m.w.append(body); err != nil {
		return err
	}
	start := time.Now()
	if err := m.w.commit(); err != nil {
		return err
	}
	if m.fsyncHist != nil && m.fsync {
		m.fsyncHist.ObserveSince(start)
	}
	if m.walAppended != nil {
		m.walAppended.Add(m.w.size - before)
	}
	m.committed = m.w.size
	m.records++
	m.wakeLocked()
	return nil
}

// wakeLocked releases every goroutine parked on Changed().
func (m *Manager) wakeLocked() {
	if m.notify != nil {
		close(m.notify)
		m.notify = nil
	}
}

// CheckpointInfo reports what a checkpoint did.
type CheckpointInfo struct {
	SnapshotBytes int64 // size of the written snapshot
	WALBytes      int64 // WAL bytes made redundant and dropped
}

// Checkpoint writes a snapshot of db's full catalog and resets the WAL.
// The caller must hold a lock that excludes mutations (the service's
// catalog read lock suffices: queries share it, writers are excluded).
//
// Crash safety: the snapshot is written to a temp file, fsync'd and
// atomically renamed (followed by a directory fsync in fsync mode, so
// the rename itself is durable before the WAL is touched); it carries
// the next epoch, so if the process dies between the rename and the WAL
// reset, recovery sees a lower-epoch WAL and discards it instead of
// replaying records the snapshot already contains.
func (m *Manager) Checkpoint(db *core.DB) (CheckpointInfo, error) {
	if err := faultinject.Hit("persist/checkpoint"); err != nil {
		return CheckpointInfo{}, err
	}
	next := m.Epoch() + 1
	tmp, err := os.CreateTemp(m.dir, snapshotFile+".tmp-*")
	if err != nil {
		return CheckpointInfo{}, err
	}
	defer os.Remove(tmp.Name()) // no-op after the rename
	n, err := WriteSnapshot(tmp, db, next)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return CheckpointInfo{}, fmt.Errorf("persist: writing snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(m.dir, snapshotFile)); err != nil {
		return CheckpointInfo{}, err
	}
	if m.fsync {
		// Persist the rename's directory entry before dropping the WAL,
		// or a power loss could keep the truncation but lose the rename.
		if err := syncDir(m.dir); err != nil {
			return CheckpointInfo{}, fmt.Errorf("persist: syncing data dir: %w", err)
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	dropped := m.w.size
	// Coalesced rows still pending are already applied in memory, so the
	// snapshot just written contains them: drop them instead of flushing
	// a record the snapshot would duplicate.
	m.dropPendingLocked()
	if err := m.w.reset(); err != nil {
		return CheckpointInfo{}, fmt.Errorf("persist: resetting WAL: %w", err)
	}
	// The new epoch is stamped lazily by the next commit; an empty WAL
	// needs no header (recovery of snapshot + empty WAL is trivially
	// consistent).
	m.epoch = next
	m.checkpoints++
	m.committed = 0
	m.records = 0
	// Wake parked tails so followers of the discarded epoch learn about
	// the rotation immediately instead of at their poll timeout.
	m.wakeLocked()
	return CheckpointInfo{SnapshotBytes: n, WALBytes: dropped}, nil
}

// SnapshotPath returns the path of the checkpoint snapshot inside the
// data directory (the file may not exist before the first checkpoint).
func (m *Manager) SnapshotPath() string {
	return filepath.Join(m.dir, snapshotFile)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
