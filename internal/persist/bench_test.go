package persist

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/storage"
)

// BenchmarkSnapshotRoundTrip measures snapshot encode+decode throughput
// (b.SetBytes = snapshot size, so ns/op yields MB/s).
func BenchmarkSnapshotRoundTrip(b *testing.B) {
	db := buildTestDB(b, 100_000)
	var buf bytes.Buffer
	n, err := WriteSnapshot(&buf, db, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if _, err := WriteSnapshot(&buf, db, 0); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotWrite isolates the encode side.
func BenchmarkSnapshotWrite(b *testing.B) {
	db := buildTestDB(b, 100_000)
	var buf bytes.Buffer
	n, err := WriteSnapshot(&buf, db, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if _, err := WriteSnapshot(&buf, db, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCSV builds a CSV body with rows of (int, string, float).
func benchCSV(rows int) string {
	var sb strings.Builder
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&sb, "%d,name-%d,%d.%02d\n", i, i%1000, i%100, i%100)
	}
	return sb.String()
}

// BenchmarkBulkLoad measures the streaming CSV ingest path (parse +
// dictionary encode + append); rows/sec is reported as a metric and
// bytes/sec via SetBytes.
func BenchmarkBulkLoad(b *testing.B) {
	const rows = 100_000
	body := benchCSV(rows)
	schema := storage.NewSchema("bench",
		storage.Attribute{Name: "id", Type: storage.Int64},
		storage.Attribute{Name: "name", Type: storage.String},
		storage.Attribute{Name: "score", Type: storage.Float64},
	)
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rel := storage.NewRelation(schema, storage.NSM(3))
		n, err := LoadBatches(rel, NewCSVReader(strings.NewReader(body), 3), 4096,
			func(batch [][]storage.Word) error {
				for _, r := range batch {
					rel.AppendRow(r)
				}
				return nil
			})
		if err != nil {
			b.Fatal(err)
		}
		if n != rows {
			b.Fatalf("loaded %d rows", n)
		}
	}
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkWALAppendReplay measures logging and replaying insert batches.
func BenchmarkWALAppendReplay(b *testing.B) {
	const batches, perBatch = 50, 1000
	dir := b.TempDir()
	rows := make([][]storage.Word, perBatch)
	for i := range rows {
		rows[i] = row2(int64(i), int64(i*10))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, m, err := Open(Options{Dir: dir, Fresh: true})
		if err != nil {
			b.Fatal(err)
		}
		newIntTable(db, "t")
		if err := m.LogCreateTable(db.Catalog(), "t"); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < batches; j++ {
			if err := m.LogInsert("t", 2, rows); err != nil {
				b.Fatal(err)
			}
		}
		m.Close()
		_, m2, err := Open(Options{Dir: dir})
		if err != nil {
			b.Fatal(err)
		}
		m2.Close()
	}
	b.ReportMetric(float64(batches*perBatch)*float64(b.N)/b.Elapsed().Seconds(), "replayed-rows/s")
}
