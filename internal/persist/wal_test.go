package persist

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/storage"
)

func newIntTable(db *core.DB, name string, vals ...int64) {
	b := storage.NewBuilder(storage.NewSchema(name,
		storage.Attribute{Name: "a", Type: storage.Int64},
		storage.Attribute{Name: "b", Type: storage.Int64},
	))
	other := make([]int64, len(vals))
	for i := range other {
		other[i] = vals[i] * 10
	}
	b.SetInts(0, vals).SetInts(1, other)
	db.AddTable(b.Build(storage.NSM(2)))
}

func row2(a, b int64) []storage.Word {
	return []storage.Word{storage.EncodeInt(a), storage.EncodeInt(b)}
}

func TestWALReplayAppliesRecords(t *testing.T) {
	dir := t.TempDir()
	db, m, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	newIntTable(db, "t", 1, 2, 3)
	if err := m.LogCreateTable(db.Catalog(), "t"); err != nil {
		t.Fatal(err)
	}
	rows := [][]storage.Word{row2(4, 40), row2(5, 50)}
	for _, r := range rows {
		db.Catalog().Table("t").AppendRow(r)
	}
	if err := m.LogInsert("t", 2, rows); err != nil {
		t.Fatal(err)
	}
	db.ApplyLayout("t", storage.DSM(2))
	if err := m.LogRelayout("t", storage.DSM(2)); err != nil {
		t.Fatal(err)
	}
	db.CreateHashIndex("t", 0)
	if err := m.LogCreateIndex("t", 0, "hash"); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	got, m2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	assertBitIdentical(t, "t", db, got)
	if idx := got.Catalog().Index("t", 0); idx == nil || idx.Kind() != "hash" || idx.Len() != 5 {
		t.Fatalf("recovered index: %+v", idx)
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	db, m, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	newIntTable(db, "t", 1)
	if err := m.LogCreateTable(db.Catalog(), "t"); err != nil {
		t.Fatal(err)
	}
	if err := m.LogInsert("t", 2, [][]storage.Word{row2(2, 20)}); err != nil {
		t.Fatal(err)
	}
	m.Close()

	// Simulate a crash mid-write: chop bytes off the last record.
	walPath := filepath.Join(dir, walFile)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	got, m2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	// The torn insert is gone; the create-table record survived.
	if rows := got.Catalog().Table("t").Rows(); rows != 1 {
		t.Fatalf("recovered %d rows, want 1 (torn insert dropped)", rows)
	}
	// The file was truncated back to the last good record.
	st, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() >= int64(len(data)-5) {
		t.Fatalf("torn tail not truncated: %d bytes", st.Size())
	}
}

func TestWALCorruptMiddleFails(t *testing.T) {
	dir := t.TempDir()
	db, m, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	newIntTable(db, "t", 1)
	if err := m.LogCreateTable(db.Catalog(), "t"); err != nil {
		t.Fatal(err)
	}
	if err := m.LogInsert("t", 2, [][]storage.Word{row2(2, 20)}); err != nil {
		t.Fatal(err)
	}
	m.Close()

	// Flip a bit inside the FIRST record's body — damage, not a torn tail.
	walPath := filepath.Join(dir, walFile)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[10] ^= 1
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(Options{Dir: dir}); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("err = %v, want ErrWALCorrupt", err)
	}
}

func TestWALDictAppendReplay(t *testing.T) {
	dir := t.TempDir()
	db, m, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	b := storage.NewBuilder(storage.NewSchema("s",
		storage.Attribute{Name: "name", Type: storage.String}))
	b.SetStrings(0, []string{"b", "a"})
	db.AddTable(b.Build(storage.NSM(1)))
	if err := m.LogCreateTable(db.Catalog(), "s"); err != nil {
		t.Fatal(err)
	}
	rel := db.Catalog().Table("s")
	c := rel.Dicts[0].AppendCode("zz")
	if err := m.LogDictAppend("s", 0, []string{"zz"}); err != nil {
		t.Fatal(err)
	}
	rel.AppendRow([]storage.Word{c})
	if err := m.LogInsert("s", 1, [][]storage.Word{{c}}); err != nil {
		t.Fatal(err)
	}
	m.Close()

	got, m2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	grel := got.Catalog().Table("s")
	if v := grel.StringOf(2, 0); v != "zz" {
		t.Fatalf("recovered appended dict value = %q, want zz", v)
	}
	if grel.Dicts[0].SortedLen() != 2 || grel.Dicts[0].Len() != 3 {
		t.Fatalf("recovered dict sorted=%d len=%d, want 2 and 3", grel.Dicts[0].SortedLen(), grel.Dicts[0].Len())
	}
}

// TestStaleWALDiscardedAfterCheckpointCrash covers the crash window
// between the snapshot rename and the WAL reset: the snapshot already
// contains the WAL's effects, so recovery must discard the lower-epoch
// WAL instead of replaying its records twice.
func TestStaleWALDiscardedAfterCheckpointCrash(t *testing.T) {
	dir := t.TempDir()
	db, m, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	newIntTable(db, "t", 1, 2)
	if err := m.LogCreateTable(db.Catalog(), "t"); err != nil {
		t.Fatal(err)
	}
	rows := [][]storage.Word{row2(3, 30)}
	db.Catalog().Table("t").AppendRow(rows[0])
	if err := m.LogInsert("t", 2, rows); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: snapshot renamed, WAL reset never ran. Save the
	// pre-checkpoint WAL, checkpoint, then put the stale WAL back.
	walPath := filepath.Join(dir, walFile)
	stale, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Checkpoint(db); err != nil {
		t.Fatal(err)
	}
	m.Close()
	if err := os.WriteFile(walPath, stale, 0o644); err != nil {
		t.Fatal(err)
	}

	got, m2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if rowCount := got.Catalog().Table("t").Rows(); rowCount != 3 {
		t.Fatalf("recovered %d rows, want 3 (stale WAL must not replay)", rowCount)
	}
	assertBitIdentical(t, "t", db, got)
	if m2.Epoch() != 1 {
		t.Fatalf("epoch %d, want 1", m2.Epoch())
	}
}

func TestOpenFreshDiscardsState(t *testing.T) {
	dir := t.TempDir()
	db, m, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	newIntTable(db, "t", 1, 2)
	if err := m.LogCreateTable(db.Catalog(), "t"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Checkpoint(db); err != nil {
		t.Fatal(err)
	}
	m.Close()

	got, m2, err := Open(Options{Dir: dir, Fresh: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if n := len(got.Catalog().Names()); n != 0 {
		t.Fatalf("fresh open recovered %d tables, want 0", n)
	}
}

func TestCheckpointResetsWAL(t *testing.T) {
	dir := t.TempDir()
	db, m, err := Open(Options{Dir: dir, Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	newIntTable(db, "t", 1, 2)
	if err := m.LogCreateTable(db.Catalog(), "t"); err != nil {
		t.Fatal(err)
	}
	if m.WALSize() == 0 {
		t.Fatal("WAL empty after logging")
	}
	info, err := m.Checkpoint(db)
	if err != nil {
		t.Fatal(err)
	}
	if info.SnapshotBytes <= 0 || info.WALBytes <= 0 {
		t.Fatalf("checkpoint info %+v", info)
	}
	if sz := m.WALSize(); sz != 0 {
		t.Fatalf("WAL size %d after checkpoint, want 0 (epoch stamps with the next commit)", sz)
	}
	// Post-checkpoint mutations land in the (fresh) WAL and recover on
	// top of the snapshot.
	rows := [][]storage.Word{row2(3, 30)}
	db.Catalog().Table("t").AppendRow(rows[0])
	if err := m.LogInsert("t", 2, rows); err != nil {
		t.Fatal(err)
	}
	m.Close()

	got, m2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	assertBitIdentical(t, "t", db, got)
}
