package expr

import (
	"testing"
	"testing/quick"

	"repro/internal/storage"
)

func rowOf(vals ...storage.Word) func(int) storage.Word {
	return func(a int) storage.Word { return vals[a] }
}

func TestCmpOpApply(t *testing.T) {
	five, six := storage.EncodeInt(5), storage.EncodeInt(6)
	cases := []struct {
		op   CmpOp
		a, b storage.Word
		want bool
	}{
		{Eq, five, five, true},
		{Eq, five, six, false},
		{Ne, five, six, true},
		{Lt, five, six, true},
		{Lt, six, five, false},
		{Le, five, five, true},
		{Gt, six, five, true},
		{Ge, five, six, false},
	}
	for _, c := range cases {
		if got := c.op.Apply(c.a, c.b); got != c.want {
			t.Errorf("%v.Apply: got %v, want %v", c.op, got, c.want)
		}
	}
}

func TestCmpOpNegativeNumbers(t *testing.T) {
	// The encoded comparison must respect signed order.
	f := func(a, b int64) bool {
		return Lt.Apply(storage.EncodeInt(a), storage.EncodeInt(b)) == (a < b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEvalPredLogic(t *testing.T) {
	row := rowOf(storage.EncodeInt(10), storage.EncodeInt(20), storage.Null)
	p10 := Cmp{Attr: 0, Op: Eq, Val: storage.EncodeInt(10)}
	p99 := Cmp{Attr: 1, Op: Eq, Val: storage.EncodeInt(99)}
	if !EvalPred(And{Preds: []Pred{p10}}, row) {
		t.Error("and(single true) failed")
	}
	if EvalPred(And{Preds: []Pred{p10, p99}}, row) {
		t.Error("and with false conjunct passed")
	}
	if !EvalPred(Or{Preds: []Pred{p99, p10}}, row) {
		t.Error("or with true disjunct failed")
	}
	if EvalPred(Or{}, row) {
		t.Error("empty or must be false")
	}
	if !EvalPred(And{}, row) {
		t.Error("empty and must be true")
	}
	if !EvalPred(True{}, row) || !EvalPred(nil, row) {
		t.Error("true/nil must pass")
	}
	if EvalPred(NotNull{Attr: 2}, row) || !EvalPred(NotNull{Attr: 0}, row) {
		t.Error("NotNull wrong")
	}
	if !EvalPred(Between{Attr: 0, Lo: storage.EncodeInt(5), Hi: storage.EncodeInt(10)}, row) {
		t.Error("between inclusive upper bound failed")
	}
}

func TestPredAttrs(t *testing.T) {
	p := And{Preds: []Pred{
		Cmp{Attr: 3, Op: Eq, Val: 0},
		Or{Preds: []Pred{Between{Attr: 1, Lo: 0, Hi: 9}, NotNull{Attr: 3}}},
	}}
	got := PredAttrs(p)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("PredAttrs = %v, want [1 3]", got)
	}
}

func TestConj(t *testing.T) {
	a := Cmp{Attr: 0, Op: Eq, Val: 1}
	b := Cmp{Attr: 1, Op: Eq, Val: 2}
	if _, ok := Conj().(True); !ok {
		t.Error("empty Conj must be True")
	}
	if _, ok := Conj(a).(Cmp); !ok {
		t.Error("singleton Conj must unwrap")
	}
	if and, ok := Conj(a, And{Preds: []Pred{b}}, nil, True{}).(And); !ok || len(and.Preds) != 2 {
		t.Error("Conj must flatten and drop trivia")
	}
}

func TestEvalExprArithmetic(t *testing.T) {
	row := rowOf(storage.EncodeInt(37), storage.EncodeFloat(2.5))
	bucket := Arith{Op: Mul, L: Arith{Op: Div, L: IntCol(0), R: IntConst(10)}, R: IntConst(10)}
	if got := storage.DecodeInt(EvalExpr(bucket, row)); got != 30 {
		t.Errorf("(37/10)*10 = %d, want 30", got)
	}
	fsum := Arith{Op: Add, L: FloatCol(1), R: FloatConst(0.5)}
	if got := storage.DecodeFloat(EvalExpr(fsum, row)); got != 3.0 {
		t.Errorf("2.5+0.5 = %v, want 3.0", got)
	}
	if got := storage.DecodeInt(EvalExpr(Arith{Op: Div, L: IntCol(0), R: IntConst(0)}, row)); got != 0 {
		t.Errorf("div by zero = %d, want 0 (defined)", got)
	}
}

func TestEvalExprNullPropagation(t *testing.T) {
	row := rowOf(storage.Null)
	e := Arith{Op: Add, L: IntCol(0), R: IntConst(5)}
	if EvalExpr(e, row) != storage.Null {
		t.Error("null must propagate through arithmetic")
	}
}

func TestExprAttrs(t *testing.T) {
	e := Arith{Op: Add, L: IntCol(4), R: Arith{Op: Mul, L: IntCol(2), R: IntConst(3)}}
	got := ExprAttrs(e)
	if len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Errorf("ExprAttrs = %v, want [2 4]", got)
	}
}

func TestAggStates(t *testing.T) {
	sum := NewAggState(AggSpec{Kind: Sum, Arg: IntCol(0)})
	minA := NewAggState(AggSpec{Kind: Min, Arg: IntCol(0)})
	maxA := NewAggState(AggSpec{Kind: Max, Arg: IntCol(0)})
	avg := NewAggState(AggSpec{Kind: Avg, Arg: IntCol(0)})
	cnt := NewAggState(AggSpec{Kind: Count})
	for _, v := range []int64{3, -1, 10} {
		row := rowOf(storage.EncodeInt(v))
		sum.Add(row)
		minA.Add(row)
		maxA.Add(row)
		avg.Add(row)
		cnt.Add(row)
	}
	if storage.DecodeInt(sum.Result()) != 12 {
		t.Errorf("sum = %d", storage.DecodeInt(sum.Result()))
	}
	if storage.DecodeInt(minA.Result()) != -1 || storage.DecodeInt(maxA.Result()) != 10 {
		t.Error("min/max wrong")
	}
	if storage.DecodeFloat(avg.Result()) != 4.0 {
		t.Errorf("avg = %v", storage.DecodeFloat(avg.Result()))
	}
	if storage.DecodeInt(cnt.Result()) != 3 {
		t.Error("count wrong")
	}
}

func TestAggStateNullHandling(t *testing.T) {
	sum := NewAggState(AggSpec{Kind: Sum, Arg: IntCol(0)})
	sum.Add(rowOf(storage.Null))
	sum.Add(rowOf(storage.EncodeInt(5)))
	if storage.DecodeInt(sum.Result()) != 5 {
		t.Error("null must be ignored by sum")
	}
	minEmpty := NewAggState(AggSpec{Kind: Min, Arg: IntCol(0)})
	if minEmpty.Result() != storage.Null {
		t.Error("min of empty input must be NULL")
	}
	avgEmpty := NewAggState(AggSpec{Kind: Avg, Arg: IntCol(0)})
	if avgEmpty.Result() != storage.Null {
		t.Error("avg of empty input must be NULL")
	}
}

func TestAggStateFloatSum(t *testing.T) {
	sum := NewAggState(AggSpec{Kind: Sum, Arg: FloatCol(0)})
	for _, v := range []float64{1.5, 2.25, -0.75} {
		sum.Add(rowOf(storage.EncodeFloat(v)))
	}
	if got := storage.DecodeFloat(sum.Result()); got != 3.0 {
		t.Errorf("float sum = %v, want 3.0", got)
	}
}

func TestAggResultTypes(t *testing.T) {
	if (AggSpec{Kind: Count}).ResultType() != storage.Int64 {
		t.Error("count type")
	}
	if (AggSpec{Kind: Avg, Arg: IntCol(0)}).ResultType() != storage.Float64 {
		t.Error("avg type")
	}
	if (AggSpec{Kind: Sum, Arg: FloatCol(0)}).ResultType() != storage.Float64 {
		t.Error("float sum type")
	}
	if (AggSpec{Kind: Sum, Arg: IntCol(0)}).ResultType() != storage.Int64 {
		t.Error("int sum type")
	}
}

// TestAddValueMatchesAdd: the bulk engines' AddValue path must agree with
// the interpreted Add path.
func TestAddValueMatchesAdd(t *testing.T) {
	f := func(vals []int64) bool {
		a := NewAggState(AggSpec{Kind: Sum, Arg: IntCol(0)})
		b := NewAggState(AggSpec{Kind: Sum, Arg: IntCol(0)})
		for _, v := range vals {
			a.Add(rowOf(storage.EncodeInt(v)))
			b.AddValue(storage.EncodeInt(v))
		}
		return a.Result() == b.Result()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
