// Package expr defines predicates, scalar expressions and aggregate
// specifications over word-encoded tuples. The same expression trees are
// consumed in three styles, mirroring the paper's three processing models:
// interpreted per tuple through interface dispatch (Volcano), applied
// column-at-a-time as primitives (bulk/HYRISE), or inspected once at query
// compile time and lowered into fused loops (JiT).
package expr

import (
	"sort"

	"repro/internal/storage"
)

// CmpOp is a comparison operator.
type CmpOp uint8

const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

func (op CmpOp) String() string {
	return [...]string{"=", "<>", "<", "<=", ">", ">="}[op]
}

// Apply evaluates the comparison on encoded words. All type encodings are
// order-preserving, so one unsigned comparison serves every type.
func (op CmpOp) Apply(a, b storage.Word) bool {
	switch op {
	case Eq:
		return a == b
	case Ne:
		return a != b
	case Lt:
		return a < b
	case Le:
		return a <= b
	case Gt:
		return a > b
	case Ge:
		return a >= b
	}
	return false
}

// Pred is a boolean predicate over a tuple. The Attr fields reference
// attribute positions whose meaning (base-table attribute or operator
// output position) is fixed by the plan node holding the predicate.
type Pred interface{ isPred() }

// Cmp compares an attribute against a bound constant.
type Cmp struct {
	Attr int
	Op   CmpOp
	Val  storage.Word
}

// Between is an inclusive range test.
type Between struct {
	Attr   int
	Lo, Hi storage.Word
}

// InSet tests dictionary codes against a compiled code set — the executable
// form of string predicates such as LIKE, compiled once per query against
// the attribute's dictionary.
type InSet struct {
	Attr int
	Set  *storage.CodeSet
}

// NotNull passes tuples whose attribute is present.
type NotNull struct{ Attr int }

// And is the conjunction of its children (empty = true).
type And struct{ Preds []Pred }

// Or is the disjunction of its children (empty = false).
type Or struct{ Preds []Pred }

// True passes everything.
type True struct{}

func (Cmp) isPred()     {}
func (Between) isPred() {}
func (InSet) isPred()   {}
func (NotNull) isPred() {}
func (And) isPred()     {}
func (Or) isPred()      {}
func (True) isPred()    {}

// EvalPred interprets p against a tuple exposed by row. This is the
// interpretive path; the JiT engine lowers predicates instead (see
// exec/jit).
func EvalPred(p Pred, row func(int) storage.Word) bool {
	switch v := p.(type) {
	case Cmp:
		return v.Op.Apply(row(v.Attr), v.Val)
	case Between:
		w := row(v.Attr)
		return w >= v.Lo && w <= v.Hi
	case InSet:
		return v.Set.Contains(row(v.Attr))
	case NotNull:
		return row(v.Attr) != storage.Null
	case And:
		for _, c := range v.Preds {
			if !EvalPred(c, row) {
				return false
			}
		}
		return true
	case Or:
		for _, c := range v.Preds {
			if EvalPred(c, row) {
				return true
			}
		}
		return false
	case True:
		return true
	case nil:
		return true
	}
	return false
}

// PredAttrs returns the sorted distinct attribute positions p references.
func PredAttrs(p Pred) []int {
	set := map[int]struct{}{}
	var walk func(Pred)
	walk = func(p Pred) {
		switch v := p.(type) {
		case Cmp:
			set[v.Attr] = struct{}{}
		case Between:
			set[v.Attr] = struct{}{}
		case InSet:
			set[v.Attr] = struct{}{}
		case NotNull:
			set[v.Attr] = struct{}{}
		case And:
			for _, c := range v.Preds {
				walk(c)
			}
		case Or:
			for _, c := range v.Preds {
				walk(c)
			}
		}
	}
	walk(p)
	return sortedKeys(set)
}

func sortedKeys(set map[int]struct{}) []int {
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// RemapAttrs rewrites every attribute reference of p through f — used by
// engines that re-root predicates from base-table attributes onto operator
// output positions.
func RemapAttrs(p Pred, f func(int) int) Pred {
	switch v := p.(type) {
	case Cmp:
		v.Attr = f(v.Attr)
		return v
	case Between:
		v.Attr = f(v.Attr)
		return v
	case InSet:
		v.Attr = f(v.Attr)
		return v
	case NotNull:
		v.Attr = f(v.Attr)
		return v
	case And:
		out := make([]Pred, len(v.Preds))
		for i, c := range v.Preds {
			out[i] = RemapAttrs(c, f)
		}
		return And{Preds: out}
	case Or:
		out := make([]Pred, len(v.Preds))
		for i, c := range v.Preds {
			out[i] = RemapAttrs(c, f)
		}
		return Or{Preds: out}
	default:
		return p
	}
}

// Conj flattens non-nil predicates into a conjunction.
func Conj(ps ...Pred) Pred {
	var flat []Pred
	for _, p := range ps {
		switch v := p.(type) {
		case nil, True:
		case And:
			flat = append(flat, v.Preds...)
		default:
			flat = append(flat, p)
		}
	}
	switch len(flat) {
	case 0:
		return True{}
	case 1:
		return flat[0]
	default:
		return And{Preds: flat}
	}
}
