package expr

import "repro/internal/storage"

// ArithOp is an arithmetic operator on decoded values.
type ArithOp uint8

const (
	Add ArithOp = iota
	Sub
	Mul
	Div // integer division for Int64 operands, / for Float64
)

// Expr is a scalar expression producing one encoded word per tuple.
type Expr interface {
	isExpr()
	// Type returns the value type the expression produces.
	Type() storage.Type
}

// Col references an attribute position.
type Col struct {
	Attr int
	Ty   storage.Type
}

// Const is a bound constant (already encoded).
type Const struct {
	Val storage.Word
	Ty  storage.Type
}

// Arith combines two expressions. Operands must share a numeric type.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

func (Col) isExpr()   {}
func (Const) isExpr() {}
func (Arith) isExpr() {}

func (c Col) Type() storage.Type   { return c.Ty }
func (c Const) Type() storage.Type { return c.Ty }
func (a Arith) Type() storage.Type { return a.L.Type() }

// IntCol and FloatCol are constructor shorthands.
func IntCol(attr int) Col    { return Col{Attr: attr, Ty: storage.Int64} }
func FloatCol(attr int) Col  { return Col{Attr: attr, Ty: storage.Float64} }
func StrCol(attr int) Col    { return Col{Attr: attr, Ty: storage.String} }
func IntConst(v int64) Const { return Const{Val: storage.EncodeInt(v), Ty: storage.Int64} }
func FloatConst(v float64) Const {
	return Const{Val: storage.EncodeFloat(v), Ty: storage.Float64}
}

// EvalExpr interprets e against a tuple. NULL propagates through
// arithmetic.
func EvalExpr(e Expr, row func(int) storage.Word) storage.Word {
	switch v := e.(type) {
	case Col:
		return row(v.Attr)
	case Const:
		return v.Val
	case Arith:
		l := EvalExpr(v.L, row)
		r := EvalExpr(v.R, row)
		if l == storage.Null || r == storage.Null {
			return storage.Null
		}
		if v.Type() == storage.Float64 {
			return storage.EncodeFloat(applyF(v.Op, storage.DecodeFloat(l), storage.DecodeFloat(r)))
		}
		return storage.EncodeInt(applyI(v.Op, storage.DecodeInt(l), storage.DecodeInt(r)))
	}
	return storage.Null
}

func applyI(op ArithOp, a, b int64) int64 {
	switch op {
	case Add:
		return a + b
	case Sub:
		return a - b
	case Mul:
		return a * b
	case Div:
		if b == 0 {
			return 0
		}
		return a / b
	}
	return 0
}

func applyF(op ArithOp, a, b float64) float64 {
	switch op {
	case Add:
		return a + b
	case Sub:
		return a - b
	case Mul:
		return a * b
	case Div:
		if b == 0 {
			return 0
		}
		return a / b
	}
	return 0
}

// ExprAttrs returns the sorted distinct attribute positions e references.
func ExprAttrs(e Expr) []int {
	set := map[int]struct{}{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch v := e.(type) {
		case Col:
			set[v.Attr] = struct{}{}
		case Arith:
			walk(v.L)
			walk(v.R)
		}
	}
	walk(e)
	return sortedKeys(set)
}

// AggKind enumerates aggregate functions.
type AggKind uint8

const (
	Count AggKind = iota
	Sum
	Min
	Max
	Avg
)

func (k AggKind) String() string {
	return [...]string{"count", "sum", "min", "max", "avg"}[k]
}

// AggSpec is one aggregate of an Aggregate plan node. Arg is nil for
// Count(*). The result type is Float64 for Avg and for aggregates over
// float arguments, Int64 otherwise.
type AggSpec struct {
	Kind AggKind
	Arg  Expr
	Name string
}

// ResultType returns the type of the aggregate's output.
func (a AggSpec) ResultType() storage.Type {
	if a.Kind == Count {
		return storage.Int64
	}
	if a.Kind == Avg {
		return storage.Float64
	}
	return a.Arg.Type()
}

// AggState accumulates one aggregate. It handles both integer and float
// arguments according to the spec's type.
type AggState struct {
	spec  AggSpec
	count int64
	sumI  int64
	sumF  float64
	minW  storage.Word
	maxW  storage.Word
	seen  bool
}

// NewAggState initializes accumulation for spec.
func NewAggState(spec AggSpec) AggState {
	return AggState{spec: spec}
}

// Add folds one tuple into the state.
func (st *AggState) Add(row func(int) storage.Word) {
	if st.spec.Kind == Count {
		st.count++
		return
	}
	st.AddValue(EvalExpr(st.spec.Arg, row))
}

// AddValue folds one already-evaluated argument value into the state; the
// bulk engines use it to fold precomputed argument columns.
func (st *AggState) AddValue(w storage.Word) {
	if st.spec.Kind == Count {
		st.count++
		return
	}
	if w == storage.Null {
		return
	}
	st.count++
	switch st.spec.Kind {
	case Sum, Avg:
		if st.spec.Arg.Type() == storage.Float64 {
			st.sumF += storage.DecodeFloat(w)
		} else {
			st.sumI += storage.DecodeInt(w)
		}
	case Min:
		if !st.seen || w < st.minW {
			st.minW = w
		}
	case Max:
		if !st.seen || w > st.maxW {
			st.maxW = w
		}
	}
	st.seen = true
}

// Merge folds another state for the same spec into st, as if o's tuples
// had been added after st's. Counts, integer sums and min/max merge
// exactly; float sums reassociate the addition order, so engines that
// need bit-reproducible float results must not merge-parallelize float
// aggregates (see MergeExact).
func (st *AggState) Merge(o *AggState) {
	st.count += o.count
	st.sumI += o.sumI
	st.sumF += o.sumF
	if o.seen {
		if !st.seen || o.minW < st.minW {
			st.minW = o.minW
		}
		if !st.seen || o.maxW > st.maxW {
			st.maxW = o.maxW
		}
		st.seen = true
	}
}

// MergeExact reports whether partial states of every listed aggregate
// merge to bit-identical results regardless of how tuples are partitioned:
// true for count, min, max and integer sum/avg; false once a float sum is
// involved (float addition is not associative).
func MergeExact(aggs []AggSpec) bool {
	for _, a := range aggs {
		switch a.Kind {
		case Count, Min, Max:
		case Sum, Avg:
			if a.Arg.Type() == storage.Float64 {
				return false
			}
		}
	}
	return true
}

// Result returns the encoded aggregate value.
func (st *AggState) Result() storage.Word {
	switch st.spec.Kind {
	case Count:
		return storage.EncodeInt(st.count)
	case Sum:
		if st.spec.Arg.Type() == storage.Float64 {
			return storage.EncodeFloat(st.sumF)
		}
		return storage.EncodeInt(st.sumI)
	case Avg:
		if st.count == 0 {
			return storage.Null
		}
		total := st.sumF
		if st.spec.Arg.Type() != storage.Float64 {
			total = float64(st.sumI)
		}
		return storage.EncodeFloat(total / float64(st.count))
	case Min:
		if !st.seen {
			return storage.Null
		}
		return st.minW
	case Max:
		if !st.seen {
			return storage.Null
		}
		return st.maxW
	}
	return storage.Null
}
