// Package workload represents weighted query mixes: the unit of input for
// the layout optimizer and the benchmark harness. A workload is a set of
// plans with execution frequencies (the paper's CNET benchmark weights its
// queries 1/1/100/10000, Table V).
package workload

import (
	"repro/internal/costmodel"
	"repro/internal/plan"
	"repro/internal/storage"
)

// Query is one workload member.
type Query struct {
	Name      string
	Plan      plan.Node
	Frequency float64 // relative execution count
}

// Workload is a weighted query set.
type Workload struct {
	Name    string
	Queries []Query
}

// Add appends a query with the given frequency.
func (w *Workload) Add(name string, p plan.Node, freq float64) *Workload {
	w.Queries = append(w.Queries, Query{Name: name, Plan: p, Frequency: freq})
	return w
}

// Cost prices the whole workload under layout overrides using the cached
// estimator: Σ frequency · cost(query).
func (w *Workload) Cost(e *costmodel.Estimator, layouts map[string]storage.Layout) float64 {
	total := 0.0
	for _, q := range w.Queries {
		total += q.Frequency * e.CostOfPlan(q.Plan, layouts)
	}
	return total
}
