// Package workload represents weighted query mixes: the unit of input for
// the layout optimizer and the benchmark harness. A workload is a set of
// plans with execution frequencies (the paper's CNET benchmark weights its
// queries 1/1/100/10000, Table V).
package workload

import (
	"repro/internal/costmodel"
	"repro/internal/plan"
	"repro/internal/storage"
)

// Query is one workload member.
type Query struct {
	Name      string
	Plan      plan.Node
	Frequency float64 // relative execution count
}

// Workload is a weighted query set.
type Workload struct {
	Name    string
	Queries []Query
}

// Add appends a query with the given frequency.
func (w *Workload) Add(name string, p plan.Node, freq float64) *Workload {
	w.Queries = append(w.Queries, Query{Name: name, Plan: p, Frequency: freq})
	return w
}

// Cost prices the whole workload under layout overrides using the cached
// estimator: Σ frequency · cost(query).
func (w *Workload) Cost(e *costmodel.Estimator, layouts map[string]storage.Layout) float64 {
	total := 0.0
	for _, q := range w.Queries {
		total += q.Frequency * e.CostOfPlan(q.Plan, layouts)
	}
	return total
}

// Tables lists the base tables the workload's plans touch, in first-seen
// order. Scan and Insert targets both count: the optimizer partitions any
// table the mix reads or appends to.
func (w *Workload) Tables() []string {
	seen := map[string]bool{}
	var order []string
	for _, q := range w.Queries {
		for _, t := range planTables(q.Plan) {
			if !seen[t] {
				seen[t] = true
				order = append(order, t)
			}
		}
	}
	return order
}

// Touching restricts the workload to the queries whose plans reference
// table, preserving order and frequencies. Per-table drift is measured on
// this restriction so that queries over other tables do not dilute the
// ratio: they would contribute the same constant cost to both the current
// and the optimal layout.
func (w *Workload) Touching(table string) *Workload {
	out := &Workload{Name: w.Name}
	for _, q := range w.Queries {
		for _, t := range planTables(q.Plan) {
			if t == table {
				out.Queries = append(out.Queries, q)
				break
			}
		}
	}
	return out
}

// planTables collects the base tables one plan references, in first-seen
// order.
func planTables(n plan.Node) []string {
	seen := map[string]bool{}
	var order []string
	var walk func(plan.Node)
	walk = func(n plan.Node) {
		switch v := n.(type) {
		case plan.Scan:
			if !seen[v.Table] {
				seen[v.Table] = true
				order = append(order, v.Table)
			}
		case plan.Select:
			walk(v.Child)
		case plan.Project:
			walk(v.Child)
		case plan.HashJoin:
			walk(v.Left)
			walk(v.Right)
		case plan.Aggregate:
			walk(v.Child)
		case plan.Sort:
			walk(v.Child)
		case plan.Limit:
			walk(v.Child)
		case plan.Insert:
			if !seen[v.Table] {
				seen[v.Table] = true
				order = append(order, v.Table)
			}
		}
	}
	walk(n)
	return order
}
