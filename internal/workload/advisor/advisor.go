// Package advisor turns captured workload telemetry into layout-drift
// advice: for every table a live mix touches, it prices the current
// stored layout against the BPi optimum for that mix and reports the
// drift ratio plus the recommended partitioning. It is strictly advisory
// — nothing is relaid — and deterministic: the same catalog, geometry and
// mix always produce the same advice, which is what lets the tests pin
// its output against an offline optimizer run over the equivalent
// declared workload.
//
// The package sits above both workload (the capture and declaration
// forms) and layout (the BPi search); keeping it out of package workload
// avoids an import cycle, since layout already imports workload.
package advisor

import (
	"repro/internal/costmodel"
	"repro/internal/layout"
	"repro/internal/mem"
	"repro/internal/plan"
	"repro/internal/workload"
)

// TableAdvice is one table's drift verdict.
type TableAdvice struct {
	Table string `json:"table"`
	Rows  int    `json:"rows"`
	// Layout is the currently stored layout; Recommended is what BPi
	// picks for the observed mix (equal to Layout when no strictly
	// cheaper decomposition exists).
	Layout      string `json:"layout"`
	Recommended string `json:"recommended"`
	// CurrentCost and OptimalCost price the mix's queries touching this
	// table (modeled CPU cycles, frequency-weighted) under the two
	// layouts; Drift is their ratio (>= 1, and 1 means no drift).
	CurrentCost float64 `json:"currentCost"`
	OptimalCost float64 `json:"optimalCost"`
	Drift       float64 `json:"drift"`
}

// Advise runs the drift analysis for every table the workload touches
// that exists in the catalog. The caller provides a consistent view: the
// service invokes it under its catalog read lock so layouts cannot change
// mid-analysis.
func Advise(cat *plan.Catalog, g mem.Geometry, w *workload.Workload) []TableAdvice {
	est := costmodel.NewEstimator(cat, g)
	o := layout.NewOptimizer(est)
	out := []TableAdvice{}
	for _, tbl := range w.Tables() {
		if !cat.Has(tbl) {
			continue
		}
		rel := cat.Table(tbl)
		current, optimal, best := o.Drift(tbl, w)
		drift := 1.0
		if optimal > 0 {
			drift = current / optimal
		}
		out = append(out, TableAdvice{
			Table:       tbl,
			Rows:        rel.Rows(),
			Layout:      rel.Layout.String(),
			Recommended: best.String(),
			CurrentCost: current,
			OptimalCost: optimal,
			Drift:       drift,
		})
	}
	return out
}
