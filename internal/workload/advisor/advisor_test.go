package advisor

import (
	"math"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/expr"
	"repro/internal/layout"
	"repro/internal/mem"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/workload"
)

// advisorFixture builds a wide NSM table and a skewed mix that reads only
// a narrow attribute slice, so the BPi optimum differs from the stored
// layout and drift is visible.
func advisorFixture(t *testing.T) (*plan.Catalog, *workload.Workload) {
	t.Helper()
	const width, rows = 8, 2000
	attrs := make([]storage.Attribute, width)
	for i := range attrs {
		attrs[i] = storage.Attribute{Name: string(rune('a' + i)), Type: storage.Int64}
	}
	b := storage.NewBuilder(storage.NewSchema("t", attrs...))
	for a := 0; a < width; a++ {
		col := make([]int64, rows)
		for i := range col {
			col[i] = int64(i % 500)
		}
		b.SetInts(a, col)
	}
	cat := plan.NewCatalog().Add(b.Build(storage.NSM(width)))
	q := plan.Scan{
		Table:  "t",
		Filter: expr.Cmp{Attr: 0, Op: expr.Lt, Val: storage.EncodeInt(50)},
		Cols:   []int{0, 1},
	}
	w := (&workload.Workload{Name: "skewed"}).Add("narrow", q, 100)
	return cat, w
}

func TestAdviseReportsDrift(t *testing.T) {
	cat, w := advisorFixture(t)
	g := mem.TableIII()
	advice := Advise(cat, g, w)
	if len(advice) != 1 {
		t.Fatalf("advice for %d tables, want 1", len(advice))
	}
	a := advice[0]
	if a.Table != "t" || a.Rows != 2000 {
		t.Errorf("advice head = %+v", a)
	}
	if a.Drift < 1 {
		t.Errorf("drift = %v, must be >= 1", a.Drift)
	}
	if a.Drift <= 1 {
		t.Errorf("skewed mix over NSM should show drift > 1, got %v", a.Drift)
	}
	if a.Recommended == a.Layout {
		t.Errorf("recommended layout equals stored layout (%s) despite drift %v", a.Layout, a.Drift)
	}
	if a.OptimalCost <= 0 || a.CurrentCost < a.OptimalCost {
		t.Errorf("costs inconsistent: current %v, optimal %v", a.CurrentCost, a.OptimalCost)
	}
}

// TestAdviseMatchesOfflineOptimizer pins the determinism contract: the
// advisor's recommendation and cost for a mix must be exactly what an
// offline layout.Optimizer run over the same declared workload produces.
func TestAdviseMatchesOfflineOptimizer(t *testing.T) {
	cat, w := advisorFixture(t)
	g := mem.TableIII()
	advice := Advise(cat, g, w)

	est := costmodel.NewEstimator(cat, g)
	o := layout.NewOptimizer(est)
	current, optimal, best := o.Drift("t", w)

	a := advice[0]
	if a.Recommended != best.String() {
		t.Errorf("advisor recommends %s, offline optimizer picks %s", a.Recommended, best.String())
	}
	if !approxEqual(a.OptimalCost, optimal) || !approxEqual(a.CurrentCost, current) {
		t.Errorf("costs diverge: advisor (%v, %v), offline (%v, %v)",
			a.CurrentCost, a.OptimalCost, current, optimal)
	}
	// Re-running the analysis must be bit-stable.
	again := Advise(cat, g, w)
	if again[0] != a {
		t.Errorf("advice not deterministic: %+v vs %+v", a, again[0])
	}
}

func TestAdviseNoDriftAfterRelayout(t *testing.T) {
	cat, w := advisorFixture(t)
	g := mem.TableIII()
	advice := Advise(cat, g, w)

	// Materialize the recommendation; drift must collapse to 1 and the
	// recommendation must become "keep what you have".
	est := costmodel.NewEstimator(cat, g)
	best, _ := layout.NewOptimizer(est).Optimize("t", w.Touching("t"))
	cat.Add(cat.Table("t").WithLayout(best))

	after := Advise(cat, g, w)
	if after[0].Drift != 1 {
		t.Errorf("drift after relayout = %v, want exactly 1", after[0].Drift)
	}
	if after[0].Recommended != after[0].Layout {
		t.Errorf("after relayout, recommended (%s) != stored (%s)", after[0].Recommended, after[0].Layout)
	}
	if after[0].CurrentCost >= advice[0].CurrentCost {
		t.Errorf("relayout did not reduce cost: %v -> %v", advice[0].CurrentCost, after[0].CurrentCost)
	}
}

func TestAdviseSkipsUnknownTables(t *testing.T) {
	cat, w := advisorFixture(t)
	w.Add("ghost", plan.Scan{Table: "gone", Cols: []int{0}}, 5)
	advice := Advise(cat, mem.TableIII(), w)
	if len(advice) != 1 || advice[0].Table != "t" {
		t.Errorf("advice = %+v, want only table t", advice)
	}
}

func approxEqual(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}
