package workload

import (
	"encoding/hex"
	"encoding/json"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/exec"
	"repro/internal/plan"
)

// Capture is the always-on workload telemetry sink: per-table, per-column
// atomic access counters plus a bounded ring of recent plan shapes with
// execution frequencies. The design splits the cost asymmetrically —
// Resolve (called once per plan compilation, or per request on the
// uncached vector path) takes locks and allocates, while Record (called
// once per execution) is a handful of atomic adds against pointers the
// Footprint precomputed. That keeps the hot path near-free, so capture
// can stay on for every query the service runs.
type Capture struct {
	mu     sync.RWMutex
	tables map[string]*TableCounters
	order  []string

	shapes shapeRing
}

// DefaultShapeCap bounds the shape ring when NewCapture is given 0: large
// enough for any hand-written mix, small enough that a shape-churning
// client (distinct plan structures, not just distinct constants — those
// normalize together) cannot grow capture memory without bound.
const DefaultShapeCap = 256

// NewCapture returns an empty capture whose shape ring holds up to
// shapeCap distinct normalized plan shapes (0 means DefaultShapeCap).
func NewCapture(shapeCap int) *Capture {
	if shapeCap <= 0 {
		shapeCap = DefaultShapeCap
	}
	return &Capture{
		tables: map[string]*TableCounters{},
		shapes: shapeRing{cap: shapeCap, m: map[string]*ShapeEntry{}},
	}
}

// TableCounters holds one table's access tally: executions that scanned
// it, rows those scans covered, and per-attribute read counts. All fields
// are bumped atomically through Footprint.Record; readers snapshot
// without stopping writers.
type TableCounters struct {
	name  string
	names []string // attribute names at registration
	execs atomic.Int64
	rows  atomic.Int64
	cols  []atomic.Int64 // one per attribute position
}

// Name returns the table name.
func (t *TableCounters) Name() string { return t.name }

// Width returns the number of attribute positions tracked.
func (t *TableCounters) Width() int { return len(t.cols) }

// ColName returns the attribute name recorded at registration.
func (t *TableCounters) ColName(attr int) string { return t.names[attr] }

// ColReads returns the number of executions that read the attribute.
func (t *TableCounters) ColReads(attr int) int64 { return t.cols[attr].Load() }

// Execs returns the number of executions that scanned the table.
func (t *TableCounters) Execs() int64 { return t.execs.Load() }

// RowsScanned returns the total rows those executions covered.
func (t *TableCounters) RowsScanned() int64 { return t.rows.Load() }

// Footprint is the precomputed per-plan capture handle: direct pointers
// into the counters every execution bumps. Resolve builds it once at
// plan-compile time; Record is the only method on the hot path. A nil
// Footprint records nothing, so callers need no guard for plans that
// failed validation.
type Footprint struct {
	tables []footprintTable
	shape  *ShapeEntry
}

type footprintTable struct {
	t    *TableCounters
	cols []*atomic.Int64
	rows int64
}

// Record accounts one execution of the plan: one shape-frequency add, and
// per scanned table one execution add, one rows-scanned add, and one add
// per attribute read. No locks, no allocation, no map lookups — every
// target pointer was resolved at compile time.
func (f *Footprint) Record() {
	if f == nil {
		return
	}
	if f.shape != nil {
		f.shape.count.Add(1)
	}
	for i := range f.tables {
		ft := &f.tables[i]
		ft.t.execs.Add(1)
		ft.t.rows.Add(ft.rows)
		for _, c := range ft.cols {
			c.Add(1)
		}
	}
}

// Resolve turns a plan's compile-time access list into a Footprint and
// registers the plan's normalized shape in the ring. shapeKey identifies
// the shape (the service passes its cache digest); sample is a concrete
// representative plan — with constants intact, because Normalize zeroes
// them and selectivity estimation needs real values — that Mix hands to
// the optimizer; shapeJSON is the normalized encoding kept for display.
// Tables are registered on first sight with the attribute names from cat.
func (c *Capture) Resolve(cat *plan.Catalog, accs []exec.TableAccess, shapeKey string, shapeJSON []byte, sample plan.Node) *Footprint {
	fp := &Footprint{shape: c.shapes.entry(shapeKey, shapeJSON, sample)}
	for _, acc := range accs {
		if !cat.Has(acc.Table) {
			continue
		}
		tc := c.table(cat, acc.Table)
		ft := footprintTable{t: tc, rows: acc.Rows}
		for _, a := range acc.Attrs {
			if a >= 0 && a < len(tc.cols) {
				ft.cols = append(ft.cols, &tc.cols[a])
			}
		}
		fp.tables = append(fp.tables, ft)
	}
	return fp
}

// table returns the counters for name, registering them on first sight.
func (c *Capture) table(cat *plan.Catalog, name string) *TableCounters {
	c.mu.RLock()
	tc, ok := c.tables[name]
	c.mu.RUnlock()
	if ok {
		return tc
	}
	schema := cat.Table(name).Schema
	names := make([]string, schema.Width())
	for i, a := range schema.Attrs {
		names[i] = a.Name
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if tc, ok := c.tables[name]; ok {
		return tc
	}
	tc = &TableCounters{name: name, names: names, cols: make([]atomic.Int64, len(names))}
	c.tables[name] = tc
	c.order = append(c.order, name)
	return tc
}

// Table returns the registered counters for name (nil if the capture has
// never seen the table). The metrics layer holds the returned pointer in
// scrape-time closures.
func (c *Capture) Table(name string) *TableCounters {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tables[name]
}

// Tables lists the registered tables in first-seen order.
func (c *Capture) Tables() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]string(nil), c.order...)
}

// ShapeEntry is one tracked plan shape: a normalized-plan identity, a
// concrete representative plan, and an execution count.
type ShapeEntry struct {
	key    string
	sample plan.Node
	json   []byte
	count  atomic.Int64
	slot   int
}

// shapeRing retains the most recently first-seen cap shapes. Hits bump an
// atomic through the pointer cached in each Footprint; only the insertion
// of a brand-new shape takes the mutex, and past cap it overwrites the
// oldest slot (the entry keeps counting through stale Footprints, but is
// no longer reported or fed to the advisor).
type shapeRing struct {
	mu      sync.Mutex
	cap     int
	m       map[string]*ShapeEntry
	ring    []*ShapeEntry
	next    int
	evicted int64
}

func (r *shapeRing) entry(key string, shapeJSON []byte, sample plan.Node) *ShapeEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.m[key]; ok {
		return e
	}
	e := &ShapeEntry{key: key, sample: sample, json: shapeJSON}
	if len(r.ring) < r.cap {
		e.slot = len(r.ring)
		r.ring = append(r.ring, e)
	} else {
		old := r.ring[r.next]
		delete(r.m, old.key)
		r.evicted++
		e.slot = r.next
		r.ring[r.next] = e
		r.next = (r.next + 1) % r.cap
	}
	r.m[key] = e
	return e
}

// ColHeat is one attribute's read count in a snapshot.
type ColHeat struct {
	Attr  int    `json:"attr"`
	Name  string `json:"name"`
	Reads int64  `json:"reads"`
}

// TableHeat is one table's capture snapshot.
type TableHeat struct {
	Table       string    `json:"table"`
	Queries     int64     `json:"queries"`
	RowsScanned int64     `json:"rowsScanned"`
	Cols        []ColHeat `json:"cols"`
}

// ShapeInfo is one tracked plan shape in a snapshot. Shape is a short hex
// digest of the normalized-plan identity; Plan is the normalized encoding
// (constants zeroed).
type ShapeInfo struct {
	Shape string          `json:"shape"`
	Count int64           `json:"count"`
	Plan  json.RawMessage `json:"plan,omitempty"`
}

// Snapshot returns the per-table heat in first-seen order, the tracked
// shapes sorted by descending count, and the number of shapes the ring
// has evicted.
func (c *Capture) Snapshot() (tables []TableHeat, shapes []ShapeInfo, evicted int64) {
	c.mu.RLock()
	tcs := make([]*TableCounters, 0, len(c.order))
	for _, name := range c.order {
		tcs = append(tcs, c.tables[name])
	}
	c.mu.RUnlock()
	tables = make([]TableHeat, 0, len(tcs))
	for _, tc := range tcs {
		th := TableHeat{
			Table:       tc.name,
			Queries:     tc.execs.Load(),
			RowsScanned: tc.rows.Load(),
			Cols:        make([]ColHeat, len(tc.cols)),
		}
		for i := range tc.cols {
			th.Cols[i] = ColHeat{Attr: i, Name: tc.names[i], Reads: tc.cols[i].Load()}
		}
		tables = append(tables, th)
	}

	c.shapes.mu.Lock()
	entries := append([]*ShapeEntry(nil), c.shapes.ring...)
	evicted = c.shapes.evicted
	c.shapes.mu.Unlock()
	shapes = make([]ShapeInfo, 0, len(entries))
	for _, e := range entries {
		shapes = append(shapes, ShapeInfo{Shape: shortShape(e.key), Count: e.count.Load(), Plan: e.json})
	}
	sort.SliceStable(shapes, func(i, j int) bool { return shapes[i].Count > shapes[j].Count })
	return tables, shapes, evicted
}

// Mix converts the captured shape frequencies into the optimizer's
// workload-declaration form: one weighted query per tracked shape with a
// non-zero count, using the concrete representative plan (real constants,
// so selectivity estimation sees real predicates) and the observed
// execution count as the frequency. Entries come out in ring-slot order,
// which is stable across calls, so repeated Advise runs price an
// unchanged mix identically. The second result is the total executions
// behind the mix.
func (c *Capture) Mix(name string) (*Workload, int64) {
	c.shapes.mu.Lock()
	entries := append([]*ShapeEntry(nil), c.shapes.ring...)
	c.shapes.mu.Unlock()
	w := &Workload{Name: name}
	total := int64(0)
	for _, e := range entries {
		n := e.count.Load()
		if n == 0 || e.sample == nil {
			continue
		}
		w.Add(shortShape(e.key), e.sample, float64(n))
		total += n
	}
	return w, total
}

// shortShape renders a shape identity (the service's 32-byte digest) as a
// short hex handle for JSON and logs.
func shortShape(key string) string {
	h := hex.EncodeToString([]byte(key))
	if len(h) > 16 {
		h = h[:16]
	}
	return h
}
