package workload

import (
	"sync"
	"testing"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/storage"
)

func captureCatalog(t *testing.T, rows int) *plan.Catalog {
	t.Helper()
	schema := storage.NewSchema("t",
		storage.Attribute{Name: "a", Type: storage.Int64},
		storage.Attribute{Name: "b", Type: storage.Int64},
		storage.Attribute{Name: "c", Type: storage.Int64},
	)
	b := storage.NewBuilder(schema)
	col := make([]int64, rows)
	for i := range col {
		col[i] = int64(i)
	}
	b.SetInts(0, col).SetInts(1, col).SetInts(2, col)
	return plan.NewCatalog().Add(b.Build(storage.NSM(3)))
}

func TestFootprintRecord(t *testing.T) {
	cat := captureCatalog(t, 100)
	c := NewCapture(0)
	fp := c.Resolve(cat, []exec.TableAccess{{Table: "t", Attrs: []int{0, 2}, Rows: 100}},
		"shape-1", []byte(`{"op":"scan"}`), plan.Scan{Table: "t", Cols: []int{0, 2}})
	for i := 0; i < 3; i++ {
		fp.Record()
	}
	tc := c.Table("t")
	if tc == nil {
		t.Fatal("table not registered")
	}
	if got := tc.Execs(); got != 3 {
		t.Errorf("Execs = %d, want 3", got)
	}
	if got := tc.RowsScanned(); got != 300 {
		t.Errorf("RowsScanned = %d, want 300", got)
	}
	for attr, want := range []int64{3, 0, 3} {
		if got := tc.ColReads(attr); got != want {
			t.Errorf("ColReads(%d) = %d, want %d", attr, got, want)
		}
	}
	tables, shapes, evicted := c.Snapshot()
	if len(tables) != 1 || tables[0].Table != "t" || tables[0].Queries != 3 {
		t.Errorf("snapshot tables = %+v", tables)
	}
	if len(shapes) != 1 || shapes[0].Count != 3 || evicted != 0 {
		t.Errorf("snapshot shapes = %+v (evicted %d)", shapes, evicted)
	}
}

func TestNilFootprintRecords(t *testing.T) {
	var fp *Footprint
	fp.Record() // must not panic
}

func TestUnknownTableSkipped(t *testing.T) {
	cat := captureCatalog(t, 10)
	c := NewCapture(0)
	fp := c.Resolve(cat, []exec.TableAccess{{Table: "nope", Attrs: []int{0}, Rows: 10}},
		"s", nil, nil)
	fp.Record() // only the shape counts; no table registered
	if got := c.Tables(); len(got) != 0 {
		t.Errorf("Tables = %v, want none", got)
	}
}

func TestShapeRingEviction(t *testing.T) {
	cat := captureCatalog(t, 10)
	c := NewCapture(2)
	acc := []exec.TableAccess{{Table: "t", Attrs: []int{0}, Rows: 10}}
	p := plan.Scan{Table: "t", Cols: []int{0}}
	c.Resolve(cat, acc, "shape-1", nil, p).Record()
	c.Resolve(cat, acc, "shape-2", nil, p).Record()
	c.Resolve(cat, acc, "shape-3", nil, p).Record() // evicts shape-1
	_, shapes, evicted := c.Snapshot()
	if len(shapes) != 2 {
		t.Fatalf("ring holds %d shapes, want 2", len(shapes))
	}
	if evicted != 1 {
		t.Errorf("evicted = %d, want 1", evicted)
	}
	for _, sh := range shapes {
		if sh.Shape == shortShape("shape-1") {
			t.Error("evicted shape still reported")
		}
	}
	// Re-resolving an evicted shape re-inserts it with a fresh count.
	c.Resolve(cat, acc, "shape-1", nil, p).Record()
	_, shapes, _ = c.Snapshot()
	found := false
	for _, sh := range shapes {
		if sh.Shape == shortShape("shape-1") {
			found = true
			if sh.Count != 1 {
				t.Errorf("re-inserted shape count = %d, want 1", sh.Count)
			}
		}
	}
	if !found {
		t.Error("re-inserted shape missing from snapshot")
	}
}

func TestMixFromCapture(t *testing.T) {
	cat := captureCatalog(t, 50)
	c := NewCapture(0)
	acc := []exec.TableAccess{{Table: "t", Attrs: []int{0, 1}, Rows: 50}}
	p1 := plan.Scan{Table: "t", Cols: []int{0, 1}}
	p2 := plan.Scan{Table: "t", Cols: []int{2}}
	fp1 := c.Resolve(cat, acc, "shape-1", nil, p1)
	fp2 := c.Resolve(cat, []exec.TableAccess{{Table: "t", Attrs: []int{2}, Rows: 50}}, "shape-2", nil, p2)
	for i := 0; i < 7; i++ {
		fp1.Record()
	}
	for i := 0; i < 3; i++ {
		fp2.Record()
	}
	mix, total := c.Mix("live")
	if total != 10 {
		t.Errorf("total executions = %d, want 10", total)
	}
	if len(mix.Queries) != 2 {
		t.Fatalf("mix has %d queries, want 2", len(mix.Queries))
	}
	if mix.Queries[0].Frequency != 7 || mix.Queries[1].Frequency != 3 {
		t.Errorf("frequencies = %v/%v, want 7/3",
			mix.Queries[0].Frequency, mix.Queries[1].Frequency)
	}
	if got := mix.Tables(); len(got) != 1 || got[0] != "t" {
		t.Errorf("mix.Tables = %v", got)
	}
	// A second snapshot of an unchanged capture yields the identical mix
	// (order included) — the determinism the advisor tests lean on.
	mix2, _ := c.Mix("live")
	for i := range mix.Queries {
		if mix.Queries[i].Name != mix2.Queries[i].Name || mix.Queries[i].Frequency != mix2.Queries[i].Frequency {
			t.Fatalf("mix not stable across snapshots: %+v vs %+v", mix.Queries, mix2.Queries)
		}
	}
}

func TestCaptureConcurrent(t *testing.T) {
	cat := captureCatalog(t, 10)
	c := NewCapture(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := string(rune('a' + g%4))
			fp := c.Resolve(cat, []exec.TableAccess{{Table: "t", Attrs: []int{g % 3}, Rows: 10}},
				key, nil, plan.Scan{Table: "t", Cols: []int{g % 3}})
			for i := 0; i < 1000; i++ {
				fp.Record()
			}
			c.Snapshot()
			c.Mix("x")
		}()
	}
	wg.Wait()
	tc := c.Table("t")
	if got := tc.Execs(); got != 8000 {
		t.Errorf("Execs = %d, want 8000", got)
	}
}

func TestTablesAndTouching(t *testing.T) {
	scanT := plan.Scan{Table: "t", Cols: []int{0}}
	scanU := plan.Scan{Table: "u", Cols: []int{0}}
	join := plan.HashJoin{Left: scanT, Right: scanU, LeftKey: 0, RightKey: 0}
	w := (&Workload{}).Add("a", scanT, 1).Add("b", join, 2).Add("c", scanU, 3)
	if got := w.Tables(); len(got) != 2 || got[0] != "t" || got[1] != "u" {
		t.Errorf("Tables = %v, want [t u]", got)
	}
	wt := w.Touching("t")
	if len(wt.Queries) != 2 || wt.Queries[0].Name != "a" || wt.Queries[1].Name != "b" {
		t.Errorf("Touching(t) = %+v", wt.Queries)
	}
	wu := w.Touching("u")
	if len(wu.Queries) != 2 || wu.Queries[0].Name != "b" || wu.Queries[1].Name != "c" {
		t.Errorf("Touching(u) = %+v", wu.Queries)
	}
}

func BenchmarkFootprintRecord(b *testing.B) {
	schema := make([]storage.Attribute, 16)
	for i := range schema {
		schema[i] = storage.Attribute{Name: string(rune('A' + i)), Type: storage.Int64}
	}
	sb := storage.NewBuilder(storage.NewSchema("R", schema...))
	col := make([]int64, 10)
	for a := 0; a < 16; a++ {
		sb.SetInts(a, col)
	}
	cat := plan.NewCatalog().Add(sb.Build(storage.NSM(16)))
	c := NewCapture(0)
	fp := c.Resolve(cat, []exec.TableAccess{{Table: "R", Attrs: []int{0, 1, 2, 3, 4}, Rows: 1_000_000}},
		"bench-shape", nil, plan.Scan{Table: "R", Cols: []int{0, 1, 2, 3, 4}})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fp.Record()
	}
}
