package workload

import (
	"math"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/expr"
	"repro/internal/mem"
	"repro/internal/plan"
	"repro/internal/storage"
)

func testEstimator() (*costmodel.Estimator, plan.Node, plan.Node) {
	schema := storage.NewSchema("t",
		storage.Attribute{Name: "a", Type: storage.Int64},
		storage.Attribute{Name: "b", Type: storage.Int64},
	)
	b := storage.NewBuilder(schema)
	n := 10000
	as := make([]int64, n)
	bs := make([]int64, n)
	for i := range as {
		as[i] = int64(i % 100)
		bs[i] = int64(i)
	}
	b.SetInts(0, as).SetInts(1, bs)
	cat := plan.NewCatalog().Add(b.Build(storage.NSM(2)))
	scan := plan.Scan{Table: "t", Cols: []int{0, 1}}
	sel := plan.Scan{Table: "t", Filter: expr.Cmp{Attr: 0, Op: expr.Eq, Val: storage.EncodeInt(7)}, Cols: []int{1}}
	return costmodel.NewEstimator(cat, mem.TableIII()), scan, sel
}

func TestAddAndCost(t *testing.T) {
	est, scan, sel := testEstimator()
	w := (&Workload{Name: "w"}).Add("scan", scan, 2).Add("sel", sel, 3)
	if len(w.Queries) != 2 || w.Queries[0].Frequency != 2 {
		t.Fatal("Add broken")
	}
	total := w.Cost(est, nil)
	scanCost := est.CostOfPlan(scan, nil)
	selCost := est.CostOfPlan(sel, nil)
	want := 2*scanCost + 3*selCost
	if math.Abs(total-want) > 1e-6*want {
		t.Errorf("Cost = %v, want %v", total, want)
	}
}

func TestCostScalesWithFrequency(t *testing.T) {
	est, scan, _ := testEstimator()
	w1 := (&Workload{}).Add("q", scan, 1)
	w10 := (&Workload{}).Add("q", scan, 10)
	if math.Abs(w10.Cost(est, nil)-10*w1.Cost(est, nil)) > 1e-6 {
		t.Error("cost must scale linearly with frequency")
	}
}

func TestCostRespectsLayoutOverrides(t *testing.T) {
	est, _, sel := testEstimator()
	w := (&Workload{}).Add("sel", sel, 1)
	row := w.Cost(est, map[string]storage.Layout{"t": storage.NSM(2)})
	col := w.Cost(est, map[string]storage.Layout{"t": storage.DSM(2)})
	if row == col {
		t.Error("layout override had no effect on the workload cost")
	}
}
