// Package obs is the observability core of the serving stack: a
// dependency-free metrics library (atomic counters, gauges and
// fixed-bucket latency histograms with a lock-free Observe, exposed in
// Prometheus text format) plus the per-query execution trace that the
// engines fill in when a query runs under EXPLAIN ANALYZE.
//
// The package sits below every other subsystem — service, persist, repl
// and the execution engines all import it — so it imports nothing of the
// repository and nothing beyond the standard library.
package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the exposition to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down. The zero value reads 0.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefBuckets are the default latency buckets in seconds, spanning 100µs
// (a cached point query) to 10s (a full-table sort under load).
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram with a lock-free Observe: bucket
// counts are atomic adds, the running sum is a CAS loop over the float64
// bit pattern. Bucket bounds are upper bounds (Prometheus "le"
// semantics); an implicit +Inf bucket catches the rest.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// NewHistogram builds a histogram over the given ascending upper bounds
// (nil means DefBuckets). Registry.Histogram is the usual constructor.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value. Safe for concurrent use; no locks taken.
func (h *Histogram) Observe(v float64) {
	// First bound >= v is the bucket (le semantics); misses land on +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the elapsed time since start, in seconds.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// snapshot returns cumulative bucket counts aligned with bounds plus the
// +Inf total, taken bucket-by-bucket (the exposition does not need a
// consistent cut — Prometheus scrapes tolerate per-bucket skew).
func (h *Histogram) snapshot() (bounds []float64, cumulative []int64, count int64, sum float64) {
	cumulative = make([]int64, len(h.counts))
	var running int64
	for i := range h.counts {
		running += h.counts[i].Load()
		cumulative[i] = running
	}
	return h.bounds, cumulative, h.count.Load(), h.Sum()
}

// HistogramSnapshot is a point-in-time copy of a histogram's cumulative
// bucket counts — the input to quantile estimation, and (via Sub) to
// interval quantiles between two samples of the same histogram.
type HistogramSnapshot struct {
	Bounds     []float64 // ascending upper bounds (le semantics)
	Cumulative []int64   // len(Bounds)+1; last entry is the +Inf total
	Count      int64
	Sum        float64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	bounds, cumulative, count, sum := h.snapshot()
	return HistogramSnapshot{Bounds: bounds, Cumulative: cumulative, Count: count, Sum: sum}
}

// Sub returns the observations recorded after prev — the per-interval
// histogram between two snapshots of the same collector. Bounds are
// shared, not copied; a prev from a different histogram shape returns
// the receiver unchanged.
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	if len(prev.Cumulative) != len(s.Cumulative) {
		return s
	}
	d := HistogramSnapshot{
		Bounds:     s.Bounds,
		Cumulative: make([]int64, len(s.Cumulative)),
		Count:      s.Count - prev.Count,
		Sum:        s.Sum - prev.Sum,
	}
	for i := range s.Cumulative {
		d.Cumulative[i] = s.Cumulative[i] - prev.Cumulative[i]
	}
	return d
}

// Quantile estimates the q-quantile (0 <= q <= 1) with the standard
// Prometheus histogram_quantile interpolation: the target rank lands in
// one bucket and the estimate interpolates linearly between that
// bucket's bounds, assuming observations spread uniformly inside it.
// Ranks in the +Inf bucket clamp to the highest finite bound; an empty
// snapshot returns 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count <= 0 || len(s.Cumulative) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	i := 0
	for i < len(s.Cumulative) && float64(s.Cumulative[i]) < rank {
		i++
	}
	if i >= len(s.Bounds) {
		// +Inf bucket: no upper bound to interpolate toward.
		if len(s.Bounds) == 0 {
			return 0
		}
		return s.Bounds[len(s.Bounds)-1]
	}
	lower := 0.0
	prevCum := int64(0)
	if i > 0 {
		lower = s.Bounds[i-1]
		prevCum = s.Cumulative[i-1]
	}
	upper := s.Bounds[i]
	inBucket := s.Cumulative[i] - prevCum
	if inBucket <= 0 {
		return upper
	}
	return lower + (upper-lower)*(rank-float64(prevCum))/float64(inBucket)
}

// Quantile estimates the q-quantile over all observations so far; see
// HistogramSnapshot.Quantile for the interpolation rules.
func (h *Histogram) Quantile(q float64) float64 {
	return h.Snapshot().Quantile(q)
}
