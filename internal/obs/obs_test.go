package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	if g.Value() != 0 {
		t.Fatalf("zero gauge reads %v", g.Value())
	}
	g.Set(-2.5)
	if got := g.Value(); got != -2.5 {
		t.Fatalf("gauge = %v, want -2.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	for _, v := range []float64{0.001, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	bounds, cum, count, sum := h.snapshot()
	if len(bounds) != 3 {
		t.Fatalf("bounds = %v", bounds)
	}
	// le semantics: 0.01 lands in the first bucket.
	want := []int64{2, 3, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cumulative[%d] = %d, want %d (%v)", i, cum[i], w, cum)
		}
	}
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if math.Abs(sum-5.561) > 1e-9 {
		t.Fatalf("sum = %v, want 5.561", sum)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(DefBuckets)
	const workers, each = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != workers*each {
		t.Fatalf("count = %d, want %d", got, workers*each)
	}
	if got, want := h.Sum(), float64(workers*each)*0.001; math.Abs(got-want) > want*1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("db_queries_total", "queries served", Labels{"outcome": "ok"}).Add(3)
	r.Counter("db_queries_total", "queries served", Labels{"outcome": "error"}).Add(1)
	r.GaugeFunc("db_inflight_queries", "currently executing", nil, func() float64 { return 2 })
	h := r.Histogram("db_query_latency_seconds", "end-to-end latency", []float64{0.01, 0.1}, nil)
	h.Observe(0.005)
	h.Observe(0.05)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP db_queries_total queries served\n",
		"# TYPE db_queries_total counter\n",
		`db_queries_total{outcome="ok"} 3`,
		`db_queries_total{outcome="error"} 1`,
		"# TYPE db_inflight_queries gauge\n",
		"db_inflight_queries 2",
		"# TYPE db_query_latency_seconds histogram\n",
		`db_query_latency_seconds_bucket{le="0.01"} 1`,
		`db_query_latency_seconds_bucket{le="0.1"} 2`,
		`db_query_latency_seconds_bucket{le="+Inf"} 2`,
		"db_query_latency_seconds_sum 0.055",
		"db_query_latency_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	// Same (name, labels) re-registration returns the same collector.
	if c := r.Counter("db_queries_total", "", Labels{"outcome": "ok"}); c.Value() != 3 {
		t.Fatalf("re-registration returned a fresh counter")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("m", "", nil)
}

func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "", nil).Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Fatalf("body = %q", rec.Body.String())
	}
}

func TestLabelEscaping(t *testing.T) {
	if got := renderLabels(Labels{"a": `x"y\z` + "\n"}); got != `{a="x\"y\\z\n"}` {
		t.Fatalf("renderLabels = %q", got)
	}
}

func TestQueryTraceReport(t *testing.T) {
	tr := NewTrace([]OpProto{
		{Op: "group-by", Depth: 0},
		{Op: "scan", Detail: "table=R", Depth: 1},
		{Op: "join-build", Depth: 1, Static: true, RowsIn: 10, RowsOut: 10, Nanos: 123},
	}, 2)
	tr.Op(0).Add(5, 1, 1000)
	tr.Op(1).Add(100, 5, 1000)
	lane := tr.Op(1).Lane(1)
	lane.Rows, lane.Nanos, lane.Morsels, lane.Stolen = 5, 900, 2, 1

	rep := tr.Report()
	if len(rep) != 3 {
		t.Fatalf("report len = %d", len(rep))
	}
	if rep[0].Op != "group-by" || rep[0].RowsIn != 5 || rep[0].RowsOut != 1 {
		t.Fatalf("op0 = %+v", rep[0])
	}
	if rep[1].RowsIn != 100 || len(rep[1].Workers) != 1 || rep[1].Workers[0].Worker != 1 ||
		rep[1].Workers[0].Stolen != 1 {
		t.Fatalf("op1 = %+v", rep[1])
	}
	if !rep[2].Static || rep[2].Nanos != 123 {
		t.Fatalf("op2 = %+v", rep[2])
	}

	// nil-safety of the disarmed path
	var nilTrace *QueryTrace
	if nilTrace.Op(0) != nil || nilTrace.Report() != nil {
		t.Fatal("nil trace must be inert")
	}
	nilTrace.Op(0).Add(1, 1, 1) // must not panic
	if nilTrace.Op(0).Lane(0) != nil {
		t.Fatal("nil op lane must be nil")
	}
}
