package obs

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestJournalAppendSince(t *testing.T) {
	j := NewJournal(8)
	if j.Cap() != 8 {
		t.Fatalf("Cap = %d, want 8", j.Cap())
	}
	for i := 1; i <= 5; i++ {
		seq := j.Append(Event{Kind: "k", Msg: fmt.Sprintf("e%d", i)})
		if seq != uint64(i) {
			t.Fatalf("Append #%d returned seq %d", i, seq)
		}
	}
	events, next, evicted := j.Since(0, 0)
	if len(events) != 5 || next != 5 || evicted != 0 {
		t.Fatalf("Since(0) = %d events, next %d, evicted %d; want 5, 5, 0", len(events), next, evicted)
	}
	for i, e := range events {
		if e.Seq != uint64(i+1) || e.Msg != fmt.Sprintf("e%d", i+1) {
			t.Fatalf("event %d = seq %d msg %q", i, e.Seq, e.Msg)
		}
		if e.Time.IsZero() {
			t.Fatalf("event %d has no timestamp", i)
		}
	}
	// Resuming from the returned cursor yields nothing new.
	events, next, evicted = j.Since(next, 0)
	if len(events) != 0 || next != 5 || evicted != 0 {
		t.Fatalf("resumed Since = %d events, next %d, evicted %d", len(events), next, evicted)
	}
	// A mid-stream cursor yields the suffix only.
	events, _, _ = j.Since(3, 0)
	if len(events) != 2 || events[0].Seq != 4 {
		t.Fatalf("Since(3) = %+v", events)
	}
}

func TestJournalWraparoundEvictsUnread(t *testing.T) {
	j := NewJournal(8)
	for i := 1; i <= 20; i++ {
		j.Append(Event{Kind: "k", Msg: fmt.Sprintf("e%d", i)})
	}
	// The ring holds seqs 13..20; everything before was evicted unread.
	events, next, evicted := j.Since(0, 0)
	if evicted != 12 {
		t.Fatalf("evicted = %d, want 12", evicted)
	}
	if len(events) != 8 || events[0].Seq != 13 || events[7].Seq != 20 {
		t.Fatalf("post-wrap events = %d, first %d, last %d", len(events), events[0].Seq, events[len(events)-1].Seq)
	}
	if next != 20 {
		t.Fatalf("next = %d, want 20", next)
	}
	// A reader who kept up sees no eviction.
	events, next, evicted = j.Since(18, 0)
	if len(events) != 2 || evicted != 0 || next != 20 {
		t.Fatalf("Since(18) = %d events, next %d, evicted %d", len(events), next, evicted)
	}
	// A fully-evicted range reports the loss and a cursor at the ring edge.
	events, next, evicted = j.Since(2, 0)
	if evicted != 10 || len(events) != 8 {
		t.Fatalf("Since(2) = %d events, evicted %d; want 8, 10", len(events), evicted)
	}
	_ = next
}

func TestJournalSinceLimit(t *testing.T) {
	j := NewJournal(16)
	for i := 1; i <= 10; i++ {
		j.Append(Event{Kind: "k"})
	}
	events, next, _ := j.Since(0, 3)
	if len(events) != 3 || next != 3 {
		t.Fatalf("limited Since = %d events, next %d", len(events), next)
	}
	events, next, _ = j.Since(next, 3)
	if len(events) != 3 || events[0].Seq != 4 || next != 6 {
		t.Fatalf("second page = %d events, first %d, next %d", len(events), events[0].Seq, next)
	}
}

func TestJournalConcurrentAppendRead(t *testing.T) {
	j := NewJournal(64)
	var appenders sync.WaitGroup
	for w := 0; w < 4; w++ {
		appenders.Add(1)
		go func() {
			defer appenders.Done()
			for i := 0; i < 2000; i++ {
				j.Append(Event{Kind: "k", Term: 1})
			}
		}()
	}
	done := make(chan struct{})
	go func() { appenders.Wait(); close(done) }()
	// Read concurrently from the main goroutine: delivered events must be
	// strictly ordered and never torn, however hard the ring is wrapping.
	var cursor uint64
	for {
		events, next, _ := j.Since(cursor, 0)
		for i, e := range events {
			if i > 0 && e.Seq <= events[i-1].Seq {
				t.Fatalf("out-of-order delivery: %d after %d", e.Seq, events[i-1].Seq)
			}
			if e.Kind != "k" || e.Term != 1 {
				t.Fatalf("torn event: %+v", e)
			}
		}
		cursor = next
		select {
		case <-done:
			if j.Len() != 8000 {
				t.Fatalf("Len = %d, want 8000", j.Len())
			}
			return
		default:
		}
	}
}

func TestHistogramQuantilePinned(t *testing.T) {
	// Bounds 1, 2, 4 with observations 0.5, 1.5, 1.7, 3, 8:
	// cumulative = [1, 3, 4, 5] over buckets (-inf,1], (1,2], (2,4], +Inf.
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.7, 3, 8} {
		h.Observe(v)
	}
	cases := []struct {
		q    float64
		want float64
	}{
		// rank 0.5*5 = 2.5 lands in (1,2] holding cum 1..3:
		// 1 + (2-1)*(2.5-1)/2 = 1.75
		{0.5, 1.75},
		// rank 0.2*5 = 1 lands in the first bucket: 0 + 1*(1/1) = 1
		{0.2, 1},
		// rank 0.8*5 = 4 lands in (2,4]: 2 + 2*(4-3)/1 = 4
		{0.8, 4},
		// rank 1.0*5 = 5 lands in +Inf: clamp to highest finite bound
		{1.0, 4},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if got := NewHistogram([]float64{1}).Quantile(0.5); got != 0 {
		t.Errorf("empty histogram Quantile = %g, want 0", got)
	}
}

func TestHistogramSnapshotSub(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	prev := h.Snapshot()
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(1.5)
	d := h.Snapshot().Sub(prev)
	if d.Count != 3 {
		t.Fatalf("interval count = %d, want 3", d.Count)
	}
	if math.Abs(d.Sum-2.5) > 1e-9 {
		t.Fatalf("interval sum = %g, want 2.5", d.Sum)
	}
	// Interval p50: rank 1.5 in first bucket (2 obs): 0 + 1*1.5/2 = 0.75.
	if got := d.Quantile(0.5); math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("interval Quantile(0.5) = %g, want 0.75", got)
	}
}

// TestRegistryConcurrentRegisterRender races registration of new metric
// families and label instances against full expositions — run under
// -race in CI, this pins that a scrape never observes the registry
// mid-registration.
func TestRegistryConcurrentRegisterRender(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter(fmt.Sprintf("race_ctr_%d", i%17), "h", Labels{"w": fmt.Sprint(w)}).Inc()
				r.Gauge(fmt.Sprintf("race_g_%d", i%11), "h", nil).Set(float64(i))
				r.Histogram("race_hist", "h", []float64{1, 2}, Labels{"w": fmt.Sprint(w)}).Observe(1)
			}
		}()
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				var sb strings.Builder
				if err := r.WritePrometheus(&sb); err != nil {
					t.Errorf("WritePrometheus: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "race_ctr_0") || !strings.Contains(sb.String(), "race_hist_bucket") {
		t.Fatalf("final exposition missing registered families:\n%s", sb.String())
	}
}
