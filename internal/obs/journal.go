package obs

import (
	"sync/atomic"
	"time"
)

// Event is one structured system event: a role transition, an epoch
// rotation, a checkpoint boundary, a resync, an overload shed — the
// cluster-lifecycle moments an operator reconstructs an incident from.
// Seq is assigned by the journal and totally orders events within one
// process; Term and Epoch snapshot the node's replication term and MVCC
// epoch at emission time.
type Event struct {
	Seq   uint64            `json:"seq"`
	Time  time.Time         `json:"time"`
	Kind  string            `json:"kind"`
	Term  uint64            `json:"term,omitempty"`
	Epoch uint64            `json:"epoch,omitempty"`
	Msg   string            `json:"msg,omitempty"`
	Data  map[string]string `json:"data,omitempty"`
}

// Journal is a bounded ring of events with a lock-free Append: each
// append claims the next sequence number with one atomic add and
// publishes the event with one atomic pointer store, overwriting the
// slot it wraps onto. Readers (Since) never block appenders; an event
// overwritten mid-read is reported as evicted, never delivered torn.
type Journal struct {
	slots []atomic.Pointer[Event]
	next  atomic.Uint64 // last assigned seq (0 = empty; seqs start at 1)
}

// DefaultJournalSize is the ring capacity NewJournal(0) uses — roughly
// an hour of busy-cluster lifecycle events.
const DefaultJournalSize = 1024

// NewJournal builds a journal retaining the last n events (n <= 0 means
// DefaultJournalSize).
func NewJournal(n int) *Journal {
	if n <= 0 {
		n = DefaultJournalSize
	}
	return &Journal{slots: make([]atomic.Pointer[Event], n)}
}

// Cap returns the ring capacity.
func (j *Journal) Cap() int { return len(j.slots) }

// Len returns how many events were ever appended (not how many are
// still retained — the ring keeps at most Cap of them).
func (j *Journal) Len() uint64 { return j.next.Load() }

// Append records one event, stamping its sequence number (and its time,
// when unset), and returns the assigned seq. Safe for concurrent use;
// no locks taken.
func (j *Journal) Append(e Event) uint64 {
	seq := j.next.Add(1)
	e.Seq = seq
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	j.slots[(seq-1)%uint64(len(j.slots))].Store(&e)
	return seq
}

// Since returns the retained events with Seq > cursor, oldest first, at
// most limit of them (limit <= 0 means the full ring). next is the
// cursor that resumes the read (the Seq of the last event the scan got
// past); evicted counts events in the requested range that the ring had
// already overwritten — a nonzero value tells the consumer it fell
// behind and lost history. The scan stops early at a slot whose append
// has claimed its seq but not yet published (a torn in-flight write),
// so delivered events are always gap-free except for eviction.
func (j *Journal) Since(cursor uint64, limit int) (events []Event, next uint64, evicted uint64) {
	head := j.next.Load()
	n := uint64(len(j.slots))
	if limit <= 0 || uint64(limit) > n {
		limit = len(j.slots)
	}
	next = cursor
	lo := cursor + 1
	oldest := uint64(1)
	if head > n {
		oldest = head - n + 1
	}
	if lo < oldest {
		evicted += oldest - lo
		lo = oldest
		next = oldest - 1
	}
	for seq := lo; seq <= head && len(events) < limit; seq++ {
		p := j.slots[(seq-1)%n].Load()
		switch {
		case p == nil || p.Seq < seq:
			// The appender claimed seq but has not stored the event yet:
			// everything from here on is still in flight — stop cleanly.
			return events, next, evicted
		case p.Seq > seq:
			// Overwritten while we scanned: the ring wrapped past this
			// reader mid-iteration.
			evicted++
			next = seq
		default:
			events = append(events, *p)
			next = seq
		}
	}
	return events, next, evicted
}
