package obs

import "sync/atomic"

// QueryTrace is one query execution's operator-level account: the
// engines thread a trace through execution and each operator adds the
// rows it consumed, the rows it produced, and the wall time of the fused
// loop (or iterator) that evaluated it. Morsel-driven operators
// additionally fill per-worker lanes — rows, nanos, morsels claimed and
// morsels stolen per worker — which is the raw signal the adaptive
// layout optimizer needs (per-operator access frequencies) and what
// EXPLAIN ANALYZE renders.
//
// A nil *QueryTrace disarms tracing: engines check for nil once per
// execution (or per breaker) and take their untouched hot loops, so a
// disarmed trace costs nothing per row.
type QueryTrace struct {
	workers int
	ops     []*OpTrace

	// Epoch is the MVCC catalog version the query executed against —
	// the service fills it when it pins the snapshot, and EXPLAIN
	// ANALYZE surfaces it so a result can be tied to the exact version
	// that produced it.
	Epoch uint64
}

// OpProto is the compile-time descriptor of one operator: its kind, a
// short detail string and its depth in the plan tree (pre-order: a
// parent precedes its children, depth increases downward). Static protos
// carry measurements taken at prepare time — the jit engine's hash-join
// build side executes when the plan compiles, so cached-plan executions
// report its recorded cost instead of re-observing it.
type OpProto struct {
	Op     string
	Detail string
	Depth  int

	Static  bool // measured at prepare/compile time, shared by executions
	RowsIn  int64
	RowsOut int64
	Nanos   int64
}

// NewTrace instantiates a trace from compile-time op descriptors, with
// per-worker lanes sized for the given worker count.
func NewTrace(protos []OpProto, workers int) *QueryTrace {
	if workers < 1 {
		workers = 1
	}
	t := &QueryTrace{workers: workers}
	for _, p := range protos {
		t.AddOp(p)
	}
	return t
}

// AddOp appends an operator to the trace and returns its accumulator —
// the construction path of engines that discover their operator shape
// while building the execution (the vector engine's iterator tree).
func (t *QueryTrace) AddOp(p OpProto) *OpTrace {
	o := &OpTrace{proto: p, lanes: make([]Lane, t.workers)}
	if p.Static {
		o.rowsIn.Store(p.RowsIn)
		o.rowsOut.Store(p.RowsOut)
		o.nanos.Store(p.Nanos)
	}
	t.ops = append(t.ops, o)
	return o
}

// Op returns the i-th operator accumulator (nil when out of range, so
// engines can pass -1 for "not traced").
func (t *QueryTrace) Op(i int) *OpTrace {
	if t == nil || i < 0 || i >= len(t.ops) {
		return nil
	}
	return t.ops[i]
}

// Workers returns the lane count the trace was sized for.
func (t *QueryTrace) Workers() int { return t.workers }

// OpTrace accumulates one operator's execution counts. Totals are
// atomic (morsel workers flush concurrently); lanes are plain — lane w
// is only ever written by worker w, and the scheduler's completion
// barrier orders those writes before the trace is read.
type OpTrace struct {
	proto   OpProto
	rowsIn  atomic.Int64
	rowsOut atomic.Int64
	nanos   atomic.Int64
	lanes   []Lane
}

// Lane is one worker's share of a morsel-driven operator: rows emitted,
// busy nanos, morsels claimed, and how many of those were stolen
// (claimed by this worker although a static block partitioning would
// have assigned them elsewhere). The trailing padding keeps adjacent
// workers' lanes off the same cache line while the trace is armed.
type Lane struct {
	Rows    int64
	Nanos   int64
	Morsels int64
	Stolen  int64
	_       [4]int64
}

// Add accumulates totals on the operator.
func (o *OpTrace) Add(rowsIn, rowsOut, nanos int64) {
	if o == nil {
		return
	}
	o.rowsIn.Add(rowsIn)
	o.rowsOut.Add(rowsOut)
	o.nanos.Add(nanos)
}

// Lane returns worker w's lane (nil when o is nil or w out of range).
func (o *OpTrace) Lane(w int) *Lane {
	if o == nil || w < 0 || w >= len(o.lanes) {
		return nil
	}
	return &o.lanes[w]
}

// OpReport is the JSON rendering of one traced operator.
type OpReport struct {
	Op      string       `json:"op"`
	Detail  string       `json:"detail,omitempty"`
	Depth   int          `json:"depth"`
	RowsIn  int64        `json:"rowsIn"`
	RowsOut int64        `json:"rowsOut"`
	Nanos   int64        `json:"nanos"`
	Static  bool         `json:"atPrepare,omitempty"`
	Workers []LaneReport `json:"workers,omitempty"`
}

// LaneReport is one worker's lane in the rendered trace.
type LaneReport struct {
	Worker  int   `json:"worker"`
	Rows    int64 `json:"rows"`
	Nanos   int64 `json:"nanos"`
	Morsels int64 `json:"morsels"`
	Stolen  int64 `json:"stolen"`
}

// Report renders the trace in plan pre-order. Lanes that saw no work are
// omitted.
func (t *QueryTrace) Report() []OpReport {
	if t == nil {
		return nil
	}
	out := make([]OpReport, 0, len(t.ops))
	for _, o := range t.ops {
		r := OpReport{
			Op:      o.proto.Op,
			Detail:  o.proto.Detail,
			Depth:   o.proto.Depth,
			RowsIn:  o.rowsIn.Load(),
			RowsOut: o.rowsOut.Load(),
			Nanos:   o.nanos.Load(),
			Static:  o.proto.Static,
		}
		for w := range o.lanes {
			l := &o.lanes[w]
			if l.Rows == 0 && l.Nanos == 0 && l.Morsels == 0 {
				continue
			}
			r.Workers = append(r.Workers, LaneReport{
				Worker: w, Rows: l.Rows, Nanos: l.Nanos, Morsels: l.Morsels, Stolen: l.Stolen,
			})
		}
		out = append(out, r)
	}
	return out
}
