package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Labels attach dimensions to a metric instance ({outcome="ok"}).
type Labels map[string]string

// Registry groups metric families (one HELP/TYPE header per name, any
// number of label-set instances under it) and renders them in Prometheus
// text exposition format. Registration is cheap but locked; reads of the
// registered collectors are lock-free.
type Registry struct {
	mu     sync.Mutex
	order  []*family
	byName map[string]*family
}

type family struct {
	name string
	help string
	kind string // "counter", "gauge", "histogram"
	inst []*instance
}

type instance struct {
	labels string // rendered {k="v",...} or ""
	c      *Counter
	g      *Gauge
	fn     func() float64
	h      *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// Counter registers (or returns the already-registered) counter.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	in := r.register(name, help, "counter", labels, func() *instance { return &instance{c: &Counter{}} })
	return in.c
}

// Gauge registers (or returns the already-registered) gauge.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	in := r.register(name, help, "gauge", labels, func() *instance { return &instance{g: &Gauge{}} })
	return in.g
}

// CounterFunc registers a counter whose value is pulled from fn at
// scrape time — the bridge for pre-existing atomic counters that should
// not be double-counted into a second variable.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	r.register(name, help, "counter", labels, func() *instance { return &instance{fn: fn} })
}

// GaugeFunc registers a gauge whose value is pulled from fn at scrape
// time.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.register(name, help, "gauge", labels, func() *instance { return &instance{fn: fn} })
}

// Info registers a gauge that is constantly 1 and carries its payload in
// the labels — the Prometheus idiom for static metadata such as
// build/version info (foo_build_info{version="1.2",goversion="go1.x"} 1).
func (r *Registry) Info(name, help string, labels Labels) {
	r.GaugeFunc(name, help, labels, func() float64 { return 1 })
}

// Histogram registers (or returns the already-registered) histogram over
// the given upper bounds (nil = DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	in := r.register(name, help, "histogram", labels, func() *instance { return &instance{h: NewHistogram(buckets)} })
	return in.h
}

// register finds or creates the family and the label-set instance.
// Re-registering the same (name, labels) returns the existing collector;
// re-registering a name under a different kind panics — that is a
// programming error the first scrape would otherwise render as garbage.
func (r *Registry) register(name, help, kind string, labels Labels, mk func() *instance) *instance {
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.order = append(r.order, f)
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	for _, in := range f.inst {
		if in.labels == ls {
			return in
		}
	}
	in := mk()
	in.labels = ls
	f.inst = append(f.inst, in)
	return in
}

// renderLabels produces the canonical {k="v",...} form, keys sorted.
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// WritePrometheus renders every registered family in text exposition
// format (version 0.0.4): # HELP and # TYPE headers, then one line per
// sample; histograms expand to cumulative _bucket{le=...} series plus
// _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.order...)
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		r.mu.Lock()
		inst := append([]*instance(nil), f.inst...)
		r.mu.Unlock()
		for _, in := range inst {
			switch {
			case in.h != nil:
				writeHistogram(bw, f.name, in.labels, in.h)
			case in.c != nil:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, in.labels, in.c.Value())
			case in.g != nil:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, in.labels, formatFloat(in.g.Value()))
			case in.fn != nil:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, in.labels, formatFloat(in.fn()))
			}
		}
	}
	return bw.Flush()
}

func writeHistogram(w io.Writer, name, labels string, h *Histogram) {
	bounds, cumulative, count, sum := h.snapshot()
	for i, b := range bounds {
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLe(labels, formatFloat(b)), cumulative[i])
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLe(labels, "+Inf"), cumulative[len(cumulative)-1])
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, count)
}

// mergeLe splices le="bound" into an existing (possibly empty) label set.
func mergeLe(labels, bound string) string {
	if labels == "" {
		return `{le="` + bound + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + bound + `"}`
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry at GET /metrics in text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "use GET", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
