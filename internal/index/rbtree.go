package index

import "repro/internal/storage"

// RBTree is a red-black tree from key word to the row ids carrying the
// key. It supports point lookups and ordered range scans; the paper builds
// one on VBAP(VBELN), a non-unique foreign key.
type RBTree struct {
	root *rbNode
	n    int
}

type rbColor bool

const (
	rbRed   rbColor = false
	rbBlack rbColor = true
)

type rbNode struct {
	key                 storage.Word
	rows                []int32
	color               rbColor
	left, right, parent *rbNode
}

// NewRBTree creates an empty tree.
func NewRBTree() *RBTree { return &RBTree{} }

// Len returns the number of (key,row) entries.
func (t *RBTree) Len() int { return t.n }

// Kind returns "rbtree".
func (t *RBTree) Kind() string { return "rbtree" }

// Clone deep-copies the tree, including the per-key row lists (Insert
// appends to them in place, so sharing their backing arrays would leak
// writes into the original).
func (t *RBTree) Clone() Index {
	var cp func(n, parent *rbNode) *rbNode
	cp = func(n, parent *rbNode) *rbNode {
		if n == nil {
			return nil
		}
		out := &rbNode{
			key:    n.key,
			rows:   append([]int32(nil), n.rows...),
			color:  n.color,
			parent: parent,
		}
		out.left = cp(n.left, out)
		out.right = cp(n.right, out)
		return out
	}
	return &RBTree{root: cp(t.root, nil), n: t.n}
}

// Insert registers row under key.
func (t *RBTree) Insert(key storage.Word, row int32) {
	t.n++
	if t.root == nil {
		t.root = &rbNode{key: key, rows: []int32{row}, color: rbBlack}
		return
	}
	cur := t.root
	for {
		switch {
		case key == cur.key:
			cur.rows = append(cur.rows, row)
			return
		case key < cur.key:
			if cur.left == nil {
				cur.left = &rbNode{key: key, rows: []int32{row}, parent: cur}
				t.fixInsert(cur.left)
				return
			}
			cur = cur.left
		default:
			if cur.right == nil {
				cur.right = &rbNode{key: key, rows: []int32{row}, parent: cur}
				t.fixInsert(cur.right)
				return
			}
			cur = cur.right
		}
	}
}

// Lookup appends all row ids stored under key to dst.
func (t *RBTree) Lookup(key storage.Word, dst []int32) []int32 {
	cur := t.root
	for cur != nil {
		switch {
		case key == cur.key:
			return append(dst, cur.rows...)
		case key < cur.key:
			cur = cur.left
		default:
			cur = cur.right
		}
	}
	return dst
}

// Range calls fn for every (key, rows) pair with lo <= key <= hi, in
// ascending key order; fn returning false stops the scan.
func (t *RBTree) Range(lo, hi storage.Word, fn func(key storage.Word, rows []int32) bool) {
	var visit func(n *rbNode) bool
	visit = func(n *rbNode) bool {
		if n == nil {
			return true
		}
		if n.key > lo {
			if !visit(n.left) {
				return false
			}
		}
		if n.key >= lo && n.key <= hi {
			if !fn(n.key, n.rows) {
				return false
			}
		}
		if n.key < hi {
			return visit(n.right)
		}
		return true
	}
	visit(t.root)
}

func (t *RBTree) rotateLeft(x *rbNode) {
	y := x.right
	x.right = y.left
	if y.left != nil {
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
	y.left = x
	x.parent = y
}

func (t *RBTree) rotateRight(x *rbNode) {
	y := x.left
	x.left = y.right
	if y.right != nil {
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.right:
		x.parent.right = y
	default:
		x.parent.left = y
	}
	y.right = x
	x.parent = y
}

func (t *RBTree) fixInsert(z *rbNode) {
	for z.parent != nil && z.parent.color == rbRed {
		gp := z.parent.parent
		if z.parent == gp.left {
			uncle := gp.right
			if uncle != nil && uncle.color == rbRed {
				z.parent.color = rbBlack
				uncle.color = rbBlack
				gp.color = rbRed
				z = gp
				continue
			}
			if z == z.parent.right {
				z = z.parent
				t.rotateLeft(z)
			}
			z.parent.color = rbBlack
			gp.color = rbRed
			t.rotateRight(gp)
		} else {
			uncle := gp.left
			if uncle != nil && uncle.color == rbRed {
				z.parent.color = rbBlack
				uncle.color = rbBlack
				gp.color = rbRed
				z = gp
				continue
			}
			if z == z.parent.left {
				z = z.parent
				t.rotateRight(z)
			}
			z.parent.color = rbBlack
			gp.color = rbRed
			t.rotateLeft(gp)
		}
	}
	t.root.color = rbBlack
}

// checkInvariants validates the red-black properties; it returns the black
// height or -1 on violation. Exposed for tests.
func (t *RBTree) checkInvariants() int {
	if t.root == nil {
		return 0
	}
	if t.root.color != rbBlack {
		return -1
	}
	var check func(n *rbNode, min, max storage.Word, hasMin, hasMax bool) int
	check = func(n *rbNode, min, max storage.Word, hasMin, hasMax bool) int {
		if n == nil {
			return 1
		}
		if hasMin && n.key <= min {
			return -1
		}
		if hasMax && n.key >= max {
			return -1
		}
		if n.color == rbRed {
			if (n.left != nil && n.left.color == rbRed) || (n.right != nil && n.right.color == rbRed) {
				return -1
			}
		}
		lh := check(n.left, min, n.key, hasMin, true)
		rh := check(n.right, n.key, max, true, hasMax)
		if lh < 0 || rh < 0 || lh != rh {
			return -1
		}
		if n.color == rbBlack {
			return lh + 1
		}
		return lh
	}
	return check(t.root, 0, 0, false, false)
}
