package index

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/storage"
)

func sorted32(s []int32) []int32 {
	out := append([]int32(nil), s...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equal32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// referenceModel drives an index and a plain map with identical inserts and
// checks every lookup agrees.
func referenceModel(t *testing.T, mk func() Index, seed int64, ops int) {
	t.Helper()
	idx := mk()
	ref := map[storage.Word][]int32{}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < ops; i++ {
		key := storage.Word(rng.Intn(200))
		row := int32(i)
		idx.Insert(key, row)
		ref[key] = append(ref[key], row)
	}
	if idx.Len() != ops {
		t.Fatalf("%s: Len = %d, want %d", idx.Kind(), idx.Len(), ops)
	}
	for key := storage.Word(0); key < 220; key++ {
		got := sorted32(idx.Lookup(key, nil))
		want := sorted32(ref[key])
		if !equal32(got, want) {
			t.Fatalf("%s: lookup(%d) = %v, want %v", idx.Kind(), key, got, want)
		}
	}
}

func TestHashIndexAgainstModel(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		referenceModel(t, func() Index { return NewHashIndex(8) }, seed, 1000)
	}
}

func TestRBTreeAgainstModel(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		referenceModel(t, func() Index { return NewRBTree() }, seed, 1000)
	}
}

func TestHashIndexGrowth(t *testing.T) {
	h := NewHashIndex(2)
	for i := 0; i < 10000; i++ {
		h.Insert(storage.Word(i), int32(i))
	}
	for _, k := range []int{0, 1, 5000, 9999} {
		got := h.Lookup(storage.Word(k), nil)
		if len(got) != 1 || got[0] != int32(k) {
			t.Fatalf("lookup(%d) = %v after growth", k, got)
		}
	}
	if got := h.Lookup(123456, nil); len(got) != 0 {
		t.Errorf("lookup of absent key returned %v", got)
	}
}

func TestRBTreeInvariantsProperty(t *testing.T) {
	f := func(keys []uint16) bool {
		tr := NewRBTree()
		for i, k := range keys {
			tr.Insert(storage.Word(k), int32(i))
			if tr.checkInvariants() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRBTreeRange(t *testing.T) {
	tr := NewRBTree()
	for i := 0; i < 100; i++ {
		tr.Insert(storage.Word(i*2), int32(i)) // even keys 0..198
	}
	var keys []storage.Word
	tr.Range(10, 20, func(k storage.Word, rows []int32) bool {
		keys = append(keys, k)
		return true
	})
	want := []storage.Word{10, 12, 14, 16, 18, 20}
	if len(keys) != len(want) {
		t.Fatalf("range keys = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("range keys = %v, want %v (ascending)", keys, want)
		}
	}
	// Early stop.
	count := 0
	tr.Range(0, 198, func(storage.Word, []int32) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop visited %d keys, want 3", count)
	}
}

func TestRBTreeRangeProperty(t *testing.T) {
	f := func(keys []uint8, loRaw, hiRaw uint8) bool {
		lo, hi := storage.Word(loRaw), storage.Word(hiRaw)
		if lo > hi {
			lo, hi = hi, lo
		}
		tr := NewRBTree()
		inRange := map[storage.Word]bool{}
		for i, k := range keys {
			tr.Insert(storage.Word(k), int32(i))
			if storage.Word(k) >= lo && storage.Word(k) <= hi {
				inRange[storage.Word(k)] = true
			}
		}
		seen := map[storage.Word]bool{}
		prev := storage.Word(0)
		first := true
		ok := true
		tr.Range(lo, hi, func(k storage.Word, rows []int32) bool {
			if k < lo || k > hi || len(rows) == 0 {
				ok = false
			}
			if !first && k <= prev {
				ok = false
			}
			prev, first = k, false
			seen[k] = true
			return true
		})
		return ok && len(seen) == len(inRange)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildOn(t *testing.T) {
	schema := storage.NewSchema("r", storage.Attribute{Name: "k", Type: storage.Int64})
	b := storage.NewBuilder(schema)
	b.SetInts(0, []int64{5, 3, 5, 9})
	rel := b.Build(storage.NSM(1))
	idx := BuildOn(NewRBTree(), rel, 0)
	got := sorted32(idx.Lookup(storage.EncodeInt(5), nil))
	if !equal32(got, []int32{0, 2}) {
		t.Errorf("BuildOn lookup = %v, want [0 2]", got)
	}
}
