// Package index provides the two index structures the paper's Figure 10
// experiments use: an open-addressing hash index (primary-key point
// lookups) and a red-black tree (the RB-tree on VBAP.VBELN). Both map an
// encoded key word to the row ids holding it and support incremental
// maintenance on insert, which is what the paper measures on the modifying
// query Q6.
package index

import "repro/internal/storage"

// Index is the common interface of all index structures.
type Index interface {
	// Insert registers a row id under key.
	Insert(key storage.Word, row int32)
	// Lookup appends all row ids stored under key to dst and returns it.
	Lookup(key storage.Word, dst []int32) []int32
	// Len returns the number of (key,row) entries.
	Len() int
	// Kind names the structure ("hash" or "rbtree").
	Kind() string
	// Clone returns an independent copy: inserts into the clone never
	// become visible through the original. The MVCC write path clones the
	// indexes of every table it touches, so readers of a pinned catalog
	// version keep probing an immutable structure.
	Clone() Index
}

// BuildOn constructs an index over an existing relation attribute.
func BuildOn(idx Index, rel *storage.Relation, attr int) Index {
	acc := rel.Access(attr)
	for row := 0; row < rel.Rows(); row++ {
		idx.Insert(acc.At(row), int32(row))
	}
	return idx
}
