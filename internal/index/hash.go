package index

import "repro/internal/storage"

// HashIndex is an open-addressing hash table with linear probing from key
// word to row id. Duplicate keys occupy separate slots, so Lookup probes
// until the first empty slot; the structure therefore supports non-unique
// keys while keeping the unique-key fast path allocation-free.
type HashIndex struct {
	slots []hashSlot
	mask  uint64
	n     int
}

type hashSlot struct {
	key  storage.Word
	row  int32
	used bool
}

// NewHashIndex creates a hash index sized for the expected entry count.
func NewHashIndex(expected int) *HashIndex {
	capacity := 16
	for capacity < expected*2 {
		capacity <<= 1
	}
	return &HashIndex{slots: make([]hashSlot, capacity), mask: uint64(capacity - 1)}
}

// hashWord mixes the key (SplitMix64 finalizer).
func hashWord(w storage.Word) uint64 {
	w ^= w >> 30
	w *= 0xbf58476d1ce4e5b9
	w ^= w >> 27
	w *= 0x94d049bb133111eb
	w ^= w >> 31
	return w
}

// Insert registers row under key, growing at 70% load.
func (h *HashIndex) Insert(key storage.Word, row int32) {
	if h.n*10 >= len(h.slots)*7 {
		h.grow()
	}
	pos := hashWord(key) & h.mask
	for h.slots[pos].used {
		pos = (pos + 1) & h.mask
	}
	h.slots[pos] = hashSlot{key: key, row: row, used: true}
	h.n++
}

func (h *HashIndex) grow() {
	old := h.slots
	h.slots = make([]hashSlot, len(old)*2)
	h.mask = uint64(len(h.slots) - 1)
	h.n = 0
	for _, s := range old {
		if s.used {
			h.Insert(s.key, s.row)
		}
	}
}

// Lookup appends all row ids stored under key to dst.
func (h *HashIndex) Lookup(key storage.Word, dst []int32) []int32 {
	pos := hashWord(key) & h.mask
	for h.slots[pos].used {
		if h.slots[pos].key == key {
			dst = append(dst, h.slots[pos].row)
		}
		pos = (pos + 1) & h.mask
	}
	return dst
}

// Len returns the number of entries.
func (h *HashIndex) Len() int { return h.n }

// Clone copies the slot array; the copy grows and accepts inserts
// independently of the original.
func (h *HashIndex) Clone() Index {
	return &HashIndex{slots: append([]hashSlot(nil), h.slots...), mask: h.mask, n: h.n}
}

// Kind returns "hash".
func (h *HashIndex) Kind() string { return "hash" }
