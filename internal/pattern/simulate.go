package pattern

import (
	"math/rand"

	"repro/internal/mem"
)

// Simulate replays the address stream described by p against the simulated
// memory hierarchy h. Every atomic pattern is laid out in its own
// page-aligned region of a virtual address space; Seq children execute one
// after another; Par children are interleaved in lockstep by fractional
// progress, which mirrors how a single generated loop advances all regions
// it touches together.
//
// Randomness (conditional reads of s_trav_cr, the access order of r_trav,
// the item choice of rr_acc) is drawn from a deterministic source seeded
// with seed, so experiments are reproducible.
func Simulate(p Pattern, h *mem.Hierarchy, seed int64) {
	s := &sim{h: h, rng: rand.New(rand.NewSource(seed))}
	s.run(p)
}

const pageSize = 4096

type sim struct {
	h        *mem.Hierarchy
	rng      *rand.Rand
	nextBase uint64
}

// alloc reserves a fresh region of at least size bytes, padded by a guard
// page so the adjacent-line prefetcher cannot bleed across regions.
func (s *sim) alloc(size int64) uint64 {
	if size < 1 {
		size = 1
	}
	base := s.nextBase
	pages := (uint64(size) + pageSize - 1) / pageSize
	s.nextBase += (pages + 1) * pageSize
	return base
}

// stepper is one atom prepared for execution: n lockstep steps, each
// performed by fn.
type stepper struct {
	n  int64
	fn func(i int64)
}

func (s *sim) readItem(addr uint64, u int64) {
	if u < 8 {
		u = 8
	}
	for off := int64(0); off < u; off += 8 {
		s.h.Read(addr + uint64(off))
	}
}

func (s *sim) prepare(p Pattern) stepper {
	switch a := p.(type) {
	case STrav:
		base := s.alloc(a.N * a.W)
		return stepper{n: a.N, fn: func(i int64) {
			s.readItem(base+uint64(i*a.W), a.U)
		}}
	case STravCR:
		base := s.alloc(a.N * a.W)
		return stepper{n: a.N, fn: func(i int64) {
			if s.rng.Float64() < a.S {
				s.readItem(base+uint64(i*a.W), a.U)
			}
		}}
	case RTrav:
		base := s.alloc(a.N * a.W)
		perm := s.rng.Perm(int(a.N))
		return stepper{n: a.N, fn: func(i int64) {
			s.readItem(base+uint64(int64(perm[i])*a.W), a.U)
		}}
	case RRAcc:
		base := s.alloc(a.N * a.W)
		return stepper{n: a.R, fn: func(i int64) {
			item := s.rng.Int63n(a.N)
			s.readItem(base+uint64(item*a.W), a.U)
		}}
	default:
		panic("pattern: prepare called on non-atomic pattern")
	}
}

func (s *sim) run(p Pattern) {
	switch v := p.(type) {
	case nil:
		return
	case Seq:
		for _, c := range v.Ps {
			s.run(c)
		}
	case Par:
		s.runPar(v.Ps)
	default:
		st := s.prepare(p)
		for i := int64(0); i < st.n; i++ {
			st.fn(i)
		}
	}
}

// runPar interleaves the children by fractional progress: at each step the
// child that is least far through its own item sequence advances by one
// item. Children that are themselves Seq/Par are executed as a unit at
// their turn boundaries (nested concurrency beyond one level does not occur
// in plans translated by the cost model).
func (s *sim) runPar(ps []Pattern) {
	var steps []stepper
	for _, c := range ps {
		switch c.(type) {
		case Seq, Par:
			// Degenerate nesting: run sequentially before the lockstep group.
			s.run(c)
		default:
			steps = append(steps, s.prepare(c))
		}
	}
	idx := make([]int64, len(steps))
	for {
		best := -1
		var bestFrac float64
		for k, st := range steps {
			if idx[k] >= st.n {
				continue
			}
			frac := float64(idx[k]) / float64(st.n)
			if best < 0 || frac < bestFrac {
				best = k
				bestFrac = frac
			}
		}
		if best < 0 {
			return
		}
		steps[best].fn(idx[best])
		idx[best]++
	}
}
