package pattern

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestStringRendering(t *testing.T) {
	// The paper's example pattern (Table Ib):
	// s_trav(26214400,4) ⊙ rr_acc(26214400,16,262144) ⊙ rr_acc(1,16,262144)
	p := Concurrent(
		STrav{N: 26214400, W: 4, U: 4},
		RRAcc{N: 26214400, W: 16, U: 16, R: 262144},
		RRAcc{N: 1, W: 16, U: 16, R: 262144},
	)
	want := "(s_trav(26214400,4) ⊙ rr_acc(26214400,16,262144) ⊙ rr_acc(1,16,262144))"
	if got := p.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestSequenceFlattens(t *testing.T) {
	a := STrav{N: 1, W: 8, U: 8}
	b := STrav{N: 2, W: 8, U: 8}
	c := STrav{N: 3, W: 8, U: 8}
	p := Sequence(Sequence(a, b), c)
	seq, ok := p.(Seq)
	if !ok || len(seq.Ps) != 3 {
		t.Fatalf("nested Sequence should flatten to 3 children, got %v", p)
	}
	if got := len(Atoms(p)); got != 3 {
		t.Errorf("Atoms = %d, want 3", got)
	}
}

func TestConcurrentFlattensAndSingleton(t *testing.T) {
	a := STrav{N: 1, W: 8, U: 8}
	if _, ok := Concurrent(a).(STrav); !ok {
		t.Error("singleton Concurrent should unwrap to the atom")
	}
	p := Concurrent(Concurrent(a, a), a)
	par, ok := p.(Par)
	if !ok || len(par.Ps) != 3 {
		t.Fatalf("nested Concurrent should flatten to 3 children, got %v", p)
	}
	if !strings.Contains(p.String(), "⊙") {
		t.Error("Par rendering must use the concurrency operator")
	}
}

func simGeom() mem.Geometry {
	return mem.Geometry{
		Levels: []mem.Spec{
			{Name: "L1", Capacity: 1 << 10, BlockSize: 8, Assoc: 8, Latency: 1},
			{Name: "L2", Capacity: 8 << 10, BlockSize: 64, Assoc: 8, Latency: 3},
			{Name: "L3", Capacity: 128 << 10, BlockSize: 64, Assoc: 16, Latency: 8},
		},
		TLB:             mem.Spec{Name: "TLB", Capacity: 1 << 20, BlockSize: 4096, Assoc: 0, Latency: 1},
		Memory:          mem.Spec{Name: "Memory", Capacity: 1 << 40, BlockSize: 64, Latency: 12},
		RegisterLatency: 1,
	}
}

func TestSimulateSTravTouchesAllLines(t *testing.T) {
	h := mem.NewHierarchy(simGeom())
	// 64k items x 8 bytes = 512 KB = 8192 LLC lines, far beyond the 128 KB LLC.
	Simulate(STrav{N: 65536, W: 8, U: 8}, h, 1)
	llc := h.LLCStats()
	brought := llc.DemandMisses + llc.PrefetchedHits
	if brought < 8190 || brought > 8194 {
		t.Errorf("sequential traversal brought %d lines, want ~8192", brought)
	}
	if llc.PrefetchedHits < brought*9/10 {
		t.Errorf("sequential traversal should be almost fully prefetched, got %d of %d", llc.PrefetchedHits, brought)
	}
}

func TestSimulateSTravCRSelectivityZeroAndOne(t *testing.T) {
	h := mem.NewHierarchy(simGeom())
	Simulate(STravCR{N: 100000, W: 8, U: 8, S: 0}, h, 1)
	if got := h.Stats(0).Accesses; got != 0 {
		t.Errorf("s=0 traversal performed %d accesses, want 0", got)
	}
	h.Reset()
	Simulate(STravCR{N: 100000, W: 8, U: 8, S: 1}, h, 1)
	if got := h.Stats(0).Accesses; got != 100000 {
		t.Errorf("s=1 traversal performed %d accesses, want 100000", got)
	}
}

func TestSimulateSTravCRIntermediateSelectivity(t *testing.T) {
	h := mem.NewHierarchy(simGeom())
	const n = 200000
	Simulate(STravCR{N: n, W: 8, U: 8, S: 0.25}, h, 99)
	got := h.Stats(0).Accesses
	if got < n/4-n/50 || got > n/4+n/50 {
		t.Errorf("s=0.25: %d accesses, want ~%d", got, n/4)
	}
}

func TestSimulateRTravTouchesEveryItemOnce(t *testing.T) {
	h := mem.NewHierarchy(simGeom())
	const n = 50000
	Simulate(RTrav{N: n, W: 8, U: 8}, h, 3)
	if got := h.Stats(0).Accesses; got != n {
		t.Errorf("r_trav accesses = %d, want %d (each item exactly once)", got, n)
	}
	llc := h.LLCStats()
	// Random order over 400 KB (≫ LLC): mostly demand misses, few prefetched.
	if llc.PrefetchedHits > llc.Accesses/5 {
		t.Errorf("random traversal should defeat the prefetcher, got %d prefetched of %d", llc.PrefetchedHits, llc.Accesses)
	}
}

func TestSimulateRRAccCount(t *testing.T) {
	h := mem.NewHierarchy(simGeom())
	Simulate(RRAcc{N: 1000, W: 8, U: 8, R: 12345}, h, 3)
	if got := h.Stats(0).Accesses; got != 12345 {
		t.Errorf("rr_acc accesses = %d, want 12345", got)
	}
}

func TestSimulateWideItemsReadWordwise(t *testing.T) {
	h := mem.NewHierarchy(simGeom())
	Simulate(STrav{N: 100, W: 32, U: 16}, h, 1)
	// 100 items x 16 bytes read = 200 word reads.
	if got := h.Stats(0).Accesses; got != 200 {
		t.Errorf("accesses = %d, want 200 (U=16 bytes per item)", got)
	}
}

func TestSimulateParInterleaves(t *testing.T) {
	// A concurrent pair of equal-length traversals must not behave like two
	// back-to-back scans: the interleaving alternates regions, so accesses
	// from both regions are interleaved in the LLC stream. We verify the
	// total work and that both regions were fully covered.
	h := mem.NewHierarchy(simGeom())
	Simulate(Concurrent(
		STrav{N: 5000, W: 8, U: 8},
		STrav{N: 5000, W: 8, U: 8},
	), h, 1)
	if got := h.Stats(0).Accesses; got != 10000 {
		t.Errorf("par total accesses = %d, want 10000", got)
	}
}

func TestSimulateSeqRunsAllChildren(t *testing.T) {
	h := mem.NewHierarchy(simGeom())
	Simulate(Sequence(
		STrav{N: 100, W: 8, U: 8},
		RRAcc{N: 10, W: 8, U: 8, R: 50},
	), h, 1)
	if got := h.Stats(0).Accesses; got != 150 {
		t.Errorf("seq total accesses = %d, want 150", got)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	run := func() (float64, mem.Stats) {
		h := mem.NewHierarchy(simGeom())
		Simulate(Concurrent(
			STravCR{N: 30000, W: 8, U: 8, S: 0.3},
			RRAcc{N: 5000, W: 16, U: 16, R: 9000},
		), h, 77)
		return h.Cycles(), h.LLCStats()
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 || s1 != s2 {
		t.Error("simulation with identical seed must be deterministic")
	}
}

// Property: for any small atom shape, simulated accesses never exceed the
// maximum possible word reads and cycles grow with work.
func TestSimulatePropertyBounds(t *testing.T) {
	f := func(nRaw uint16, wSel, uSel uint8) bool {
		n := int64(nRaw%2000) + 1
		w := int64(8 * (int(wSel)%4 + 1)) // 8,16,24,32
		u := int64(8 * (int(uSel)%4 + 1))
		if u > w {
			u = w
		}
		h := mem.NewHierarchy(simGeom())
		Simulate(STrav{N: n, W: w, U: u}, h, 5)
		words := n * (u / 8)
		return h.Stats(0).Accesses == words && h.Cycles() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
