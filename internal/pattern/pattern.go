// Package pattern implements the memory access pattern algebra of the
// Generic Cost Model (Manegold et al., VLDB '02) together with the paper's
// extension, the Sequential Traversal with Conditional Reads (s_trav_cr).
//
// A Pattern is a formal description of the memory access behaviour of an
// algorithm. Atomic patterns describe accesses to one memory region;
// compound patterns compose atoms sequentially (⊕, one after another) or
// concurrently (⊙, interleaved within one loop). The paper treats this
// algebra as the instruction set of a "programmable" cost model: a query
// plan is translated into a pattern program whose cost is then estimated
// (package costmodel) or measured by replaying its address stream against
// the simulated memory hierarchy (package mem).
package pattern

import (
	"fmt"
	"strings"
)

// Region identifies the memory region an atomic pattern touches. Table and
// Attrs are bookkeeping for the layout optimizer (which attributes of which
// relation live in the region); they do not influence cost estimation,
// which depends only on the numeric shape of the atom.
type Region struct {
	Table string
	Attrs []int
}

// Pattern is a node of the access-pattern algebra.
type Pattern interface {
	fmt.Stringer
	isPattern()
}

// STrav is s_trav(R.n, R.w): a sequential traversal of a region of R.n
// items of width W bytes, unconditionally reading U bytes of each item.
type STrav struct {
	N      int64 // number of items
	W      int64 // item width in bytes (the stride)
	U      int64 // bytes actually read per item, U <= W
	Region Region
}

// RTrav is r_trav(R.n, R.w): a traversal that touches every item exactly
// once but in random order.
type RTrav struct {
	N      int64
	W      int64
	U      int64
	Region Region
}

// RRAcc is rr_acc(R.n, R.w, r): R repetitive accesses, each to one of N
// items chosen at random (items may be hit repeatedly or never).
type RRAcc struct {
	N      int64
	W      int64
	U      int64
	R      int64 // number of accesses
	Region Region
}

// STravCR is the paper's new atom s_trav_cr(R.n, R.w, s): a sequential
// traversal in which each item is read (U bytes) only with probability S;
// the cursor unconditionally advances W bytes per step (Figure 5).
type STravCR struct {
	N      int64
	W      int64
	U      int64
	S      float64 // selectivity, 0 <= S <= 1
	Region Region
}

// Seq is the sequential-execution operator ⊕: the child patterns run one
// after another (a pipeline breaker between them).
type Seq struct {
	Ps []Pattern
}

// Par is the concurrent-execution operator ⊙: the child patterns are
// interleaved within one pass, as when a single generated loop touches
// several regions per tuple.
type Par struct {
	Ps []Pattern
}

func (STrav) isPattern()   {}
func (RTrav) isPattern()   {}
func (RRAcc) isPattern()   {}
func (STravCR) isPattern() {}
func (Seq) isPattern()     {}
func (Par) isPattern()     {}

func (p STrav) String() string { return fmt.Sprintf("s_trav(%d,%d)", p.N, p.W) }
func (p RTrav) String() string { return fmt.Sprintf("r_trav(%d,%d)", p.N, p.W) }
func (p RRAcc) String() string { return fmt.Sprintf("rr_acc(%d,%d,%d)", p.N, p.W, p.R) }
func (p STravCR) String() string {
	return fmt.Sprintf("s_trav_cr(%d,%d,%.4g)", p.N, p.W, p.S)
}

func joinPatterns(ps []Pattern, sep string) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = p.String()
	}
	return strings.Join(parts, sep)
}

func (p Seq) String() string { return "(" + joinPatterns(p.Ps, " ⊕ ") + ")" }
func (p Par) String() string { return "(" + joinPatterns(p.Ps, " ⊙ ") + ")" }

// Sequence builds a ⊕ composition, flattening nested Seq nodes and
// dropping nils.
func Sequence(ps ...Pattern) Pattern {
	flat := flatten(ps, true)
	if len(flat) == 1 {
		return flat[0]
	}
	return Seq{Ps: flat}
}

// Concurrent builds a ⊙ composition, flattening nested Par nodes and
// dropping nils.
func Concurrent(ps ...Pattern) Pattern {
	flat := flatten(ps, false)
	if len(flat) == 1 {
		return flat[0]
	}
	return Par{Ps: flat}
}

func flatten(ps []Pattern, seq bool) []Pattern {
	var out []Pattern
	for _, p := range ps {
		switch v := p.(type) {
		case nil:
			continue
		case Seq:
			if seq {
				out = append(out, v.Ps...)
				continue
			}
			out = append(out, v)
		case Par:
			if !seq {
				out = append(out, v.Ps...)
				continue
			}
			out = append(out, v)
		default:
			out = append(out, p)
		}
	}
	return out
}

// Atoms returns the atomic patterns of p in left-to-right order.
func Atoms(p Pattern) []Pattern {
	var out []Pattern
	var walk func(Pattern)
	walk = func(p Pattern) {
		switch v := p.(type) {
		case Seq:
			for _, c := range v.Ps {
				walk(c)
			}
		case Par:
			for _, c := range v.Ps {
				walk(c)
			}
		case nil:
		default:
			out = append(out, p)
		}
	}
	walk(p)
	return out
}
