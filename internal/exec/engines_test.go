package exec_test

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/exec"
	"repro/internal/exec/bulk"
	"repro/internal/exec/hyrise"
	"repro/internal/exec/jit"
	"repro/internal/exec/par"
	"repro/internal/exec/result"
	"repro/internal/exec/vector"
	"repro/internal/exec/volcano"
	"repro/internal/expr"
	"repro/internal/index"
	"repro/internal/plan"
	"repro/internal/storage"
)

func engines() []exec.Engine {
	// The morsel-parallel engines ride along in every differential test;
	// tiny morsels force real multi-morsel merges on these small tables.
	popt := par.Options{Workers: 3, MorselRows: 128}
	return []exec.Engine{
		volcano.New(), bulk.New(), hyrise.New(), jit.New(), vector.New(),
		jit.NewParallel(popt), vector.NewParallel(popt),
	}
}

// testTable builds a small relation with mixed types under all three
// layout kinds and returns one catalog per layout.
func testCatalogs(rows int, seed int64) map[string]*plan.Catalog {
	rng := rand.New(rand.NewSource(seed))
	schema := storage.NewSchema("t",
		storage.Attribute{Name: "id", Type: storage.Int64},
		storage.Attribute{Name: "grp", Type: storage.Int64},
		storage.Attribute{Name: "val", Type: storage.Int64},
		storage.Attribute{Name: "price", Type: storage.Float64},
		storage.Attribute{Name: "name", Type: storage.String},
		storage.Attribute{Name: "qty", Type: storage.Int64},
	)
	ids := make([]int64, rows)
	grps := make([]int64, rows)
	vals := make([]int64, rows)
	prices := make([]float64, rows)
	names := make([]string, rows)
	qtys := make([]int64, rows)
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	for i := 0; i < rows; i++ {
		ids[i] = int64(i)
		grps[i] = int64(rng.Intn(5))
		vals[i] = rng.Int63n(1000) - 500
		prices[i] = float64(rng.Intn(10000)) / 100
		names[i] = words[rng.Intn(len(words))]
		qtys[i] = rng.Int63n(50)
	}
	b := storage.NewBuilder(schema)
	b.SetInts(0, ids).SetInts(1, grps).SetInts(2, vals)
	b.SetFloats(3, prices).SetStrings(4, names).SetInts(5, qtys)

	master := b.Build(storage.NSM(6))
	layouts := map[string]storage.Layout{
		"row":    storage.NSM(6),
		"column": storage.DSM(6),
		"hybrid": storage.PDSM([]int{0, 4}, []int{1, 2, 5}, []int{3}),
	}
	cats := map[string]*plan.Catalog{}
	for name, l := range layouts {
		cats[name] = plan.NewCatalog().Add(master.WithLayout(l))
	}
	return cats
}

// runAll executes the plan on every engine and every layout and asserts
// all results agree (unordered); it returns one representative result.
func runAll(t *testing.T, mk func(rel *storage.Relation) plan.Node, cats map[string]*plan.Catalog) *result.Set {
	t.Helper()
	var ref *result.Set
	var refName string
	for layoutName, cat := range cats {
		rel := cat.Table("t")
		p := mk(rel)
		for _, e := range engines() {
			got := e.Run(p, cat)
			if ref == nil {
				ref, refName = got, e.Name()+"/"+layoutName
				continue
			}
			if !result.EqualUnordered(ref, got) {
				t.Fatalf("engine %s on %s disagrees with %s:\nref rows=%d got rows=%d",
					e.Name(), layoutName, refName, ref.Len(), got.Len())
			}
		}
	}
	return ref
}

func TestEnginesAgreeFilterScan(t *testing.T) {
	cats := testCatalogs(500, 1)
	res := runAll(t, func(rel *storage.Relation) plan.Node {
		return plan.Scan{
			Table:  "t",
			Filter: expr.Cmp{Attr: 1, Op: expr.Eq, Val: storage.EncodeInt(3)},
			Cols:   []int{0, 2, 4},
		}
	}, cats)
	if res.Len() == 0 {
		t.Fatal("test premise: filter should match some rows")
	}
}

func TestEnginesAgreeComplexPredicates(t *testing.T) {
	cats := testCatalogs(400, 2)
	preds := []func(rel *storage.Relation) expr.Pred{
		func(*storage.Relation) expr.Pred {
			return expr.And{Preds: []expr.Pred{
				expr.Cmp{Attr: 2, Op: expr.Gt, Val: storage.EncodeInt(0)},
				expr.Cmp{Attr: 5, Op: expr.Le, Val: storage.EncodeInt(25)},
			}}
		},
		func(*storage.Relation) expr.Pred {
			return expr.Or{Preds: []expr.Pred{
				expr.Cmp{Attr: 1, Op: expr.Eq, Val: storage.EncodeInt(0)},
				expr.Cmp{Attr: 1, Op: expr.Eq, Val: storage.EncodeInt(4)},
			}}
		},
		func(*storage.Relation) expr.Pred {
			return expr.Between{Attr: 3, Lo: storage.EncodeFloat(10), Hi: storage.EncodeFloat(50)}
		},
		func(rel *storage.Relation) expr.Pred {
			set := rel.Dict(4).MatchCodes(func(s string) bool { return strings.HasPrefix(s, "a") || strings.HasPrefix(s, "g") })
			return expr.InSet{Attr: 4, Set: set}
		},
	}
	for i, mkPred := range preds {
		res := runAll(t, func(rel *storage.Relation) plan.Node {
			return plan.Scan{Table: "t", Filter: mkPred(rel), Cols: []int{0, 1, 2, 3, 4, 5}}
		}, cats)
		if res.Len() == 0 {
			t.Errorf("pred %d matched nothing; weak test", i)
		}
	}
}

func TestEnginesAgreeProjection(t *testing.T) {
	cats := testCatalogs(300, 3)
	runAll(t, func(rel *storage.Relation) plan.Node {
		scan := plan.Scan{Table: "t", Cols: []int{2, 5}}
		return plan.Project{
			Child: scan,
			Exprs: []expr.Expr{
				expr.Arith{Op: expr.Mul, L: expr.Arith{Op: expr.Div, L: expr.IntCol(0), R: expr.IntConst(10)}, R: expr.IntConst(10)},
				expr.Arith{Op: expr.Add, L: expr.IntCol(1), R: expr.IntConst(100)},
			},
			Names: []string{"bucket", "qty100"},
		}
	}, cats)
}

func TestEnginesAgreeUngroupedAggregate(t *testing.T) {
	cats := testCatalogs(600, 4)
	res := runAll(t, func(rel *storage.Relation) plan.Node {
		scan := plan.Scan{Table: "t", Filter: expr.Cmp{Attr: 1, Op: expr.Eq, Val: storage.EncodeInt(2)}, Cols: []int{2, 3, 5}}
		return plan.Aggregate{Child: scan, Aggs: []expr.AggSpec{
			{Kind: expr.Sum, Arg: expr.IntCol(0), Name: "sum_val"},
			{Kind: expr.Sum, Arg: expr.FloatCol(1), Name: "sum_price"},
			{Kind: expr.Min, Arg: expr.IntCol(2), Name: "min_qty"},
			{Kind: expr.Max, Arg: expr.IntCol(2), Name: "max_qty"},
			{Kind: expr.Avg, Arg: expr.IntCol(0), Name: "avg_val"},
			{Kind: expr.Count, Name: "cnt"},
		}}
	}, cats)
	if res.Len() != 1 {
		t.Fatalf("ungrouped aggregate must return one row, got %d", res.Len())
	}
}

// TestJitFastPathShape exercises the paper's Figure 2c query shape (single
// equality filter, four integer sums) which takes the fused fast path in
// the jit engine, and checks it against the other engines.
func TestJitFastPathShape(t *testing.T) {
	cats := testCatalogs(700, 5)
	res := runAll(t, func(rel *storage.Relation) plan.Node {
		scan := plan.Scan{Table: "t", Filter: expr.Cmp{Attr: 1, Op: expr.Eq, Val: storage.EncodeInt(1)}, Cols: []int{0, 2, 5, 1}}
		return plan.Aggregate{Child: scan, Aggs: []expr.AggSpec{
			{Kind: expr.Sum, Arg: expr.IntCol(0), Name: "s0"},
			{Kind: expr.Sum, Arg: expr.IntCol(1), Name: "s1"},
			{Kind: expr.Sum, Arg: expr.IntCol(2), Name: "s2"},
			{Kind: expr.Sum, Arg: expr.IntCol(3), Name: "s3"},
		}}
	}, cats)
	if res.Len() != 1 {
		t.Fatal("fast path must produce one row")
	}
}

func TestEnginesAgreeGroupBy(t *testing.T) {
	cats := testCatalogs(500, 6)
	res := runAll(t, func(rel *storage.Relation) plan.Node {
		scan := plan.Scan{Table: "t", Cols: []int{1, 4, 2}}
		return plan.Aggregate{Child: scan, GroupBy: []int{0, 1}, Aggs: []expr.AggSpec{
			{Kind: expr.Count, Name: "cnt"},
			{Kind: expr.Sum, Arg: expr.IntCol(2), Name: "sum_val"},
		}}
	}, cats)
	if res.Len() < 2 {
		t.Fatal("group-by should yield multiple groups")
	}
}

func TestEnginesAgreeJoin(t *testing.T) {
	cats := testCatalogs(200, 7)
	// Add a dimension table to every catalog.
	dim := storage.NewSchema("d",
		storage.Attribute{Name: "grp", Type: storage.Int64},
		storage.Attribute{Name: "label", Type: storage.Int64},
	)
	for _, cat := range cats {
		db := storage.NewBuilder(dim)
		db.SetInts(0, []int64{0, 1, 2, 3, 4})
		db.SetInts(1, []int64{100, 101, 102, 103, 104})
		cat.Add(db.Build(storage.NSM(2)))
	}
	res := runAll(t, func(rel *storage.Relation) plan.Node {
		left := plan.Scan{Table: "d", Cols: []int{0, 1}}
		right := plan.Scan{Table: "t", Filter: expr.Cmp{Attr: 2, Op: expr.Gt, Val: storage.EncodeInt(200)}, Cols: []int{1, 2}}
		return plan.HashJoin{Left: left, Right: right, LeftKey: 0, RightKey: 0}
	}, cats)
	if res.Len() == 0 {
		t.Fatal("join should produce rows")
	}
	if len(res.Cols) != 4 {
		t.Fatalf("join output arity = %d, want 4", len(res.Cols))
	}
}

func TestEnginesAgreeJoinAggregate(t *testing.T) {
	cats := testCatalogs(300, 8)
	dim := storage.NewSchema("d2",
		storage.Attribute{Name: "grp", Type: storage.Int64},
		storage.Attribute{Name: "weight", Type: storage.Int64},
	)
	for _, cat := range cats {
		db := storage.NewBuilder(dim)
		db.SetInts(0, []int64{0, 1, 2, 3, 4})
		db.SetInts(1, []int64{1, 2, 3, 4, 5})
		cat.Add(db.Build(storage.DSM(2)))
	}
	runAll(t, func(rel *storage.Relation) plan.Node {
		join := plan.HashJoin{
			Left:     plan.Scan{Table: "d2", Cols: []int{0, 1}},
			Right:    plan.Scan{Table: "t", Cols: []int{1, 5}},
			LeftKey:  0,
			RightKey: 0,
		}
		return plan.Aggregate{Child: join, GroupBy: []int{1}, Aggs: []expr.AggSpec{
			{Kind: expr.Sum, Arg: expr.IntCol(3), Name: "sum_qty"},
			{Kind: expr.Count, Name: "cnt"},
		}}
	}, cats)
}

func TestEnginesAgreeSortLimit(t *testing.T) {
	cats := testCatalogs(250, 9)
	var results []*result.Set
	for _, cat := range cats {
		for _, e := range engines() {
			p := plan.Limit{N: 10, Child: plan.Sort{
				Child: plan.Scan{Table: "t", Cols: []int{2, 0}},
				Keys:  []plan.SortKey{{Pos: 0, Desc: true}, {Pos: 1}},
			}}
			results = append(results, e.Run(p, cat))
		}
	}
	// Sorted output must agree in exact order.
	for i := 1; i < len(results); i++ {
		if !result.Equal(results[0], results[i]) {
			t.Fatalf("sorted results disagree between run 0 and run %d", i)
		}
	}
	if results[0].Len() != 10 {
		t.Fatalf("limit produced %d rows, want 10", results[0].Len())
	}
}

func TestEnginesAgreeEmptyMatch(t *testing.T) {
	cats := testCatalogs(100, 10)
	res := runAll(t, func(rel *storage.Relation) plan.Node {
		return plan.Scan{Table: "t", Filter: expr.Cmp{Attr: 0, Op: expr.Eq, Val: storage.EncodeInt(-99)}, Cols: []int{0}}
	}, cats)
	if res.Len() != 0 {
		t.Fatal("no rows should match")
	}
	// Ungrouped aggregate over empty input still yields one row.
	res = runAll(t, func(rel *storage.Relation) plan.Node {
		scan := plan.Scan{Table: "t", Filter: expr.Cmp{Attr: 0, Op: expr.Eq, Val: storage.EncodeInt(-99)}, Cols: []int{2}}
		return plan.Aggregate{Child: scan, Aggs: []expr.AggSpec{
			{Kind: expr.Count, Name: "cnt"},
			{Kind: expr.Sum, Arg: expr.IntCol(0), Name: "s"},
		}}
	}, cats)
	if res.Len() != 1 || storage.DecodeInt(res.Rows[0][0]) != 0 {
		t.Fatal("empty aggregate must return a single zero-count row")
	}
}

func TestEnginesIndexedScanEqualsUnindexed(t *testing.T) {
	cats := testCatalogs(400, 11)
	mk := func(rel *storage.Relation) plan.Node {
		return plan.Scan{Table: "t", Filter: expr.Cmp{Attr: 0, Op: expr.Eq, Val: storage.EncodeInt(123)}, Cols: []int{0, 2, 4}}
	}
	ref := runAll(t, mk, cats)
	// Register indexes (hash on id, rbtree on grp) and re-run.
	for _, cat := range cats {
		rel := cat.Table("t")
		cat.AddIndex("t", 0, index.BuildOn(index.NewHashIndex(rel.Rows()), rel, 0))
		cat.AddIndex("t", 1, index.BuildOn(index.NewRBTree(), rel, 1))
	}
	for layoutName, cat := range cats {
		for _, e := range engines() {
			got := e.Run(mk(cat.Table("t")), cat)
			if !result.EqualUnordered(ref, got) {
				t.Fatalf("indexed %s/%s differs from unindexed scan", e.Name(), layoutName)
			}
		}
	}
	// Conjunction containing an indexed equality must use the index and
	// apply the residue.
	mk2 := func(rel *storage.Relation) plan.Node {
		return plan.Scan{Table: "t", Filter: expr.And{Preds: []expr.Pred{
			expr.Cmp{Attr: 1, Op: expr.Eq, Val: storage.EncodeInt(2)},
			expr.Cmp{Attr: 2, Op: expr.Gt, Val: storage.EncodeInt(0)},
		}}, Cols: []int{0, 1, 2}}
	}
	ref2 := runAll(t, mk2, cats)
	if ref2.Len() == 0 {
		t.Fatal("residual test premise: should match rows")
	}
}

func TestEnginesInsertAndReadBack(t *testing.T) {
	for _, e := range engines() {
		cats := testCatalogs(50, 12)
		cat := cats["hybrid"]
		rel := cat.Table("t")
		cat.AddIndex("t", 0, index.BuildOn(index.NewHashIndex(rel.Rows()), rel, 0))
		nameCode := rel.Dict(4).AppendCode("inserted")
		row := []storage.Word{
			storage.EncodeInt(9999), storage.EncodeInt(1), storage.EncodeInt(7),
			storage.EncodeFloat(1.25), nameCode, storage.EncodeInt(3),
		}
		res := e.Run(plan.Insert{Table: "t", Rows: [][]storage.Word{row}}, cat)
		if storage.DecodeInt(res.Rows[0][0]) != 1 {
			t.Fatalf("%s: insert result = %v", e.Name(), res.Rows)
		}
		// Point query through the maintained index.
		got := e.Run(plan.Scan{Table: "t", Filter: expr.Cmp{Attr: 0, Op: expr.Eq, Val: storage.EncodeInt(9999)}, Cols: []int{0, 4, 5}}, cat)
		if got.Len() != 1 || got.Rows[0][1] != nameCode {
			t.Fatalf("%s: inserted row not found via index", e.Name())
		}
	}
}

// TestEnginesRandomizedProperty cross-checks all engines on randomly
// generated conjunctive scan/aggregate plans across random hybrid layouts.
func TestEnginesRandomizedProperty(t *testing.T) {
	ops := []expr.CmpOp{expr.Eq, expr.Ne, expr.Lt, expr.Le, expr.Gt, expr.Ge}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cats := testCatalogs(rng.Intn(300)+20, seed)
		var preds []expr.Pred
		for i := 0; i < rng.Intn(3)+1; i++ {
			attr := []int{0, 1, 2, 5}[rng.Intn(4)]
			preds = append(preds, expr.Cmp{
				Attr: attr,
				Op:   ops[rng.Intn(len(ops))],
				Val:  storage.EncodeInt(rng.Int63n(1000) - 500),
			})
		}
		var node plan.Node = plan.Scan{Table: "t", Filter: expr.Conj(preds...), Cols: []int{0, 1, 2, 5}}
		if rng.Intn(2) == 0 {
			node = plan.Aggregate{Child: node, GroupBy: []int{1}, Aggs: []expr.AggSpec{
				{Kind: expr.Sum, Arg: expr.IntCol(2), Name: "s"},
				{Kind: expr.Count, Name: "c"},
			}}
		}
		var ref *result.Set
		for _, cat := range cats {
			for _, e := range engines() {
				got := e.Run(node, cat)
				if ref == nil {
					ref = got
				} else if !result.EqualUnordered(ref, got) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
