// Package result provides the engine-independent result set all four
// execution engines produce. Differential tests compare result sets across
// engines and storage layouts for equality after canonical ordering.
package result

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/plan"
	"repro/internal/storage"
)

// arenaChunkWords sizes the arena's allocation unit: 32K words (256 KB)
// amortizes one heap allocation over thousands of rows while staying small
// enough that a mostly-empty final chunk wastes little.
const arenaChunkWords = 32 * 1024

// Arena carves row storage out of contiguous word chunks, replacing the
// one-heap-slice-per-row pattern on the engines' emit paths. Rows are
// sub-slices of a chunk; a chunk is never reallocated once rows point into
// it (a fresh chunk is started instead), so views stay valid for the life
// of the result. The zero value is ready to use. An Arena is not
// goroutine-safe: parallel engines keep one per worker.
type Arena struct {
	cur []storage.Word // current chunk, carved by reslicing up to cap
}

// NewRow returns a zeroed width-long slice backed by the arena.
func (a *Arena) NewRow(width int) []storage.Word {
	if cap(a.cur)-len(a.cur) < width {
		size := arenaChunkWords
		if width > size {
			size = width
		}
		a.cur = make([]storage.Word, 0, size)
	}
	off := len(a.cur)
	a.cur = a.cur[:off+width]
	// Chunk memory comes from make and every word is carved exactly once,
	// so the returned row is zeroed without an explicit clear. The view's
	// capacity is capped so appending to a row cannot clobber its
	// neighbour.
	return a.cur[off : off+width : off+width]
}

// Copy clones src into the arena.
func (a *Arena) Copy(src []storage.Word) []storage.Word {
	row := a.NewRow(len(src))
	copy(row, src)
	return row
}

// Set is a materialized query result: column metadata plus word-encoded
// rows. Rows appended through NewRow/AppendCopy share the set's arena;
// Rows remains a plain [][]Word of views, so consumers (differential
// tests, hash-join builds) are unaffected by where the words live.
type Set struct {
	Cols  []plan.Column
	Rows  [][]storage.Word
	arena Arena
}

// New creates a result set with the given columns.
func New(cols []plan.Column) *Set {
	return &Set{Cols: cols}
}

// Append adds one row (taking ownership of the slice).
func (s *Set) Append(row []storage.Word) {
	s.Rows = append(s.Rows, row)
}

// NewRow appends one arena-backed row of the set's arity and returns it
// for the caller to fill — the allocation-free emit path.
func (s *Set) NewRow() []storage.Word {
	row := s.arena.NewRow(len(s.Cols))
	s.Rows = append(s.Rows, row)
	return row
}

// AppendCopy copies row into the set's arena (the caller keeps ownership
// of its buffer, unlike Append).
func (s *Set) AppendCopy(row []storage.Word) {
	s.Rows = append(s.Rows, s.arena.Copy(row))
}

// Len returns the number of rows.
func (s *Set) Len() int { return len(s.Rows) }

// Sorted returns a copy whose rows are in canonical order: full-row
// lexicographic word order with shorter-prefix rows first — a total order,
// stably applied, so the canonical form is deterministic even for sets
// holding duplicate rows. Differential tests rely on this to compare
// engines that produce rows in different orders.
func (s *Set) Sorted() *Set {
	out := &Set{Cols: s.Cols, Rows: make([][]storage.Word, len(s.Rows))}
	copy(out.Rows, s.Rows)
	sort.SliceStable(out.Rows, func(i, j int) bool { return CompareRows(out.Rows[i], out.Rows[j]) < 0 })
	return out
}

// CompareRows is the total order behind canonical result comparison:
// lexicographic over the shared prefix, ties broken by length. Equal rows
// (and only equal rows) compare 0, so sorting by it leaves no
// engine-dependent freedom in the canonical order.
func CompareRows(a, b []storage.Word) int {
	for i := range a {
		if i >= len(b) {
			return 1
		}
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	if len(a) < len(b) {
		return -1
	}
	return 0
}

// Equal reports whether two result sets hold identical rows in identical
// order with the same arity.
func Equal(a, b *Set) bool {
	if len(a.Rows) != len(b.Rows) || len(a.Cols) != len(b.Cols) {
		return false
	}
	for i := range a.Rows {
		if len(a.Rows[i]) != len(b.Rows[i]) {
			return false
		}
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				return false
			}
		}
	}
	return true
}

// EqualUnordered compares two result sets ignoring row order.
func EqualUnordered(a, b *Set) bool {
	return Equal(a.Sorted(), b.Sorted())
}

// Format renders the set for human consumption, decoding values by column
// type; string columns are decoded through dicts, which maps dictionary
// codes back to values when the column came straight from a base table.
func (s *Set) Format(dicts []*storage.Dict, maxRows int) string {
	var b strings.Builder
	for i, c := range s.Cols {
		if i > 0 {
			b.WriteString(" | ")
		}
		b.WriteString(c.Name)
	}
	b.WriteByte('\n')
	n := len(s.Rows)
	if maxRows > 0 && n > maxRows {
		n = maxRows
	}
	for r := 0; r < n; r++ {
		for i, w := range s.Rows[r] {
			if i > 0 {
				b.WriteString(" | ")
			}
			b.WriteString(formatWord(w, s.Cols[i].Type, dictAt(dicts, i)))
		}
		b.WriteByte('\n')
	}
	if n < len(s.Rows) {
		fmt.Fprintf(&b, "... (%d rows total)\n", len(s.Rows))
	}
	return b.String()
}

func dictAt(dicts []*storage.Dict, i int) *storage.Dict {
	if i < len(dicts) {
		return dicts[i]
	}
	return nil
}

func formatWord(w storage.Word, t storage.Type, d *storage.Dict) string {
	if w == storage.Null {
		return "NULL"
	}
	switch t {
	case storage.Int64:
		return fmt.Sprintf("%d", storage.DecodeInt(w))
	case storage.Float64:
		return fmt.Sprintf("%.4g", storage.DecodeFloat(w))
	case storage.Bool:
		return fmt.Sprintf("%v", storage.DecodeBool(w))
	case storage.String:
		if d != nil {
			return d.Value(w)
		}
		return fmt.Sprintf("#%d", w)
	}
	return fmt.Sprintf("%d", w)
}
