// Package result provides the engine-independent result set all four
// execution engines produce. Differential tests compare result sets across
// engines and storage layouts for equality after canonical ordering.
package result

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/plan"
	"repro/internal/storage"
)

// Set is a materialized query result: column metadata plus word-encoded
// rows.
type Set struct {
	Cols []plan.Column
	Rows [][]storage.Word
}

// New creates a result set with the given columns.
func New(cols []plan.Column) *Set {
	return &Set{Cols: cols}
}

// Append adds one row (taking ownership of the slice).
func (s *Set) Append(row []storage.Word) {
	s.Rows = append(s.Rows, row)
}

// Len returns the number of rows.
func (s *Set) Len() int { return len(s.Rows) }

// Sorted returns a copy whose rows are in canonical (lexicographic word)
// order; used to compare engines that produce rows in different orders.
func (s *Set) Sorted() *Set {
	out := &Set{Cols: s.Cols, Rows: make([][]storage.Word, len(s.Rows))}
	copy(out.Rows, s.Rows)
	sort.Slice(out.Rows, func(i, j int) bool { return lessRow(out.Rows[i], out.Rows[j]) })
	return out
}

func lessRow(a, b []storage.Word) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Equal reports whether two result sets hold identical rows in identical
// order with the same arity.
func Equal(a, b *Set) bool {
	if len(a.Rows) != len(b.Rows) || len(a.Cols) != len(b.Cols) {
		return false
	}
	for i := range a.Rows {
		if len(a.Rows[i]) != len(b.Rows[i]) {
			return false
		}
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				return false
			}
		}
	}
	return true
}

// EqualUnordered compares two result sets ignoring row order.
func EqualUnordered(a, b *Set) bool {
	return Equal(a.Sorted(), b.Sorted())
}

// Format renders the set for human consumption, decoding values by column
// type; string columns are decoded through dicts, which maps dictionary
// codes back to values when the column came straight from a base table.
func (s *Set) Format(dicts []*storage.Dict, maxRows int) string {
	var b strings.Builder
	for i, c := range s.Cols {
		if i > 0 {
			b.WriteString(" | ")
		}
		b.WriteString(c.Name)
	}
	b.WriteByte('\n')
	n := len(s.Rows)
	if maxRows > 0 && n > maxRows {
		n = maxRows
	}
	for r := 0; r < n; r++ {
		for i, w := range s.Rows[r] {
			if i > 0 {
				b.WriteString(" | ")
			}
			b.WriteString(formatWord(w, s.Cols[i].Type, dictAt(dicts, i)))
		}
		b.WriteByte('\n')
	}
	if n < len(s.Rows) {
		fmt.Fprintf(&b, "... (%d rows total)\n", len(s.Rows))
	}
	return b.String()
}

func dictAt(dicts []*storage.Dict, i int) *storage.Dict {
	if i < len(dicts) {
		return dicts[i]
	}
	return nil
}

func formatWord(w storage.Word, t storage.Type, d *storage.Dict) string {
	if w == storage.Null {
		return "NULL"
	}
	switch t {
	case storage.Int64:
		return fmt.Sprintf("%d", storage.DecodeInt(w))
	case storage.Float64:
		return fmt.Sprintf("%.4g", storage.DecodeFloat(w))
	case storage.Bool:
		return fmt.Sprintf("%v", storage.DecodeBool(w))
	case storage.String:
		if d != nil {
			return d.Value(w)
		}
		return fmt.Sprintf("#%d", w)
	}
	return fmt.Sprintf("%d", w)
}
