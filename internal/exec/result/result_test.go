package result

import (
	"strings"
	"testing"

	"repro/internal/plan"
	"repro/internal/storage"
)

func mkSet(rows ...[]storage.Word) *Set {
	s := New([]plan.Column{{Name: "a", Type: storage.Int64}, {Name: "b", Type: storage.Int64}})
	for _, r := range rows {
		s.Append(r)
	}
	return s
}

func w(v int64) storage.Word { return storage.EncodeInt(v) }

func TestEqualAndUnordered(t *testing.T) {
	a := mkSet([]storage.Word{w(1), w(2)}, []storage.Word{w(3), w(4)})
	b := mkSet([]storage.Word{w(3), w(4)}, []storage.Word{w(1), w(2)})
	if Equal(a, b) {
		t.Error("different order must not be Equal")
	}
	if !EqualUnordered(a, b) {
		t.Error("same rows must be EqualUnordered")
	}
	c := mkSet([]storage.Word{w(1), w(2)})
	if EqualUnordered(a, c) {
		t.Error("different cardinality must differ")
	}
	d := mkSet([]storage.Word{w(1), w(2)}, []storage.Word{w(3), w(5)})
	if EqualUnordered(a, d) {
		t.Error("different values must differ")
	}
}

func TestSortedIsCanonical(t *testing.T) {
	a := mkSet([]storage.Word{w(3), w(0)}, []storage.Word{w(-1), w(9)}, []storage.Word{w(3), w(-2)})
	s := a.Sorted()
	if storage.DecodeInt(s.Rows[0][0]) != -1 {
		t.Error("sorted order wrong (encoded words must sort signed)")
	}
	if storage.DecodeInt(s.Rows[1][1]) != -2 || storage.DecodeInt(s.Rows[2][1]) != 0 {
		t.Error("ties must break on later columns")
	}
	if a.Rows[0][0] != w(3) {
		t.Error("Sorted must not mutate the receiver")
	}
}

// TestSortedDeterministicWithDuplicates: the canonical order is a total
// order, so sets holding many duplicate rows canonicalize to bit-identical
// forms regardless of the producing engine's row order.
func TestSortedDeterministicWithDuplicates(t *testing.T) {
	rowAt := func(i int) []storage.Word { return []storage.Word{w(int64(i % 3)), w(int64(i % 2))} }
	a, b := mkSet(), mkSet()
	const n = 60 // every distinct row appears 10 times
	for i := 0; i < n; i++ {
		a.Append(rowAt(i))
		b.Append(rowAt(n - 1 - i)) // reversed producer order
	}
	if !Equal(a.Sorted(), b.Sorted()) {
		t.Fatal("duplicate-heavy sets canonicalize differently")
	}
	if !EqualUnordered(a, b) {
		t.Fatal("duplicate-heavy sets must be EqualUnordered")
	}
}

func TestCompareRowsTotalOrder(t *testing.T) {
	short := []storage.Word{w(1)}
	long := []storage.Word{w(1), w(2)}
	if CompareRows(short, long) != -1 || CompareRows(long, short) != 1 {
		t.Error("shorter prefix must order first")
	}
	if CompareRows(long, long) != 0 {
		t.Error("equal rows must compare 0")
	}
}

// TestArenaRowsSurviveChunkGrowth: rows handed out before a chunk fills
// must stay intact after the arena moves to fresh chunks — the invariant
// that lets Set.Rows keep plain slice views.
func TestArenaRowsSurviveChunkGrowth(t *testing.T) {
	var a Arena
	const rows, width = 100_000, 3 // ~9x the chunk size in words
	out := make([][]storage.Word, rows)
	for i := 0; i < rows; i++ {
		r := a.NewRow(width)
		if len(r) != width {
			t.Fatalf("row %d has width %d", i, len(r))
		}
		for j := range r {
			if r[j] != 0 {
				t.Fatalf("row %d not zeroed", i)
			}
			r[j] = w(int64(i*width + j))
		}
		out[i] = r
	}
	for i, r := range out {
		for j := range r {
			if r[j] != w(int64(i*width+j)) {
				t.Fatalf("row %d word %d clobbered", i, j)
			}
		}
	}
}

// TestArenaOversizedRow: a row wider than the chunk gets its own chunk.
func TestArenaOversizedRow(t *testing.T) {
	var a Arena
	big := a.NewRow(arenaChunkWords + 17)
	if len(big) != arenaChunkWords+17 {
		t.Fatalf("oversized row length %d", len(big))
	}
	small := a.NewRow(2)
	small[0] = w(1)
	if big[len(big)-1] != 0 {
		t.Error("oversized row clobbered by later allocation")
	}
}

// TestArenaRowAppendIsolated: appending to a returned row must not write
// into the next row (capacity is capped per row).
func TestArenaRowAppendIsolated(t *testing.T) {
	var a Arena
	r1 := a.NewRow(2)
	r2 := a.NewRow(2)
	r2[0], r2[1] = w(5), w(6)
	_ = append(r1, w(99)) //nolint:staticcheck // the append must copy, not clobber r2
	if r2[0] != w(5) || r2[1] != w(6) {
		t.Error("append to a row view clobbered its neighbour")
	}
}

func TestSetNewRowAndAppendCopy(t *testing.T) {
	s := New([]plan.Column{{Name: "a", Type: storage.Int64}, {Name: "b", Type: storage.Int64}})
	r := s.NewRow()
	r[0], r[1] = w(1), w(2)
	buf := []storage.Word{w(3), w(4)}
	s.AppendCopy(buf)
	buf[0] = w(99) // caller keeps ownership; the set must hold the copy
	want := mkSet([]storage.Word{w(1), w(2)}, []storage.Word{w(3), w(4)})
	if !Equal(s, want) {
		t.Fatalf("arena-built set differs:\n%s", s.Format(nil, 10))
	}
}

func TestFormat(t *testing.T) {
	s := New([]plan.Column{
		{Name: "n", Type: storage.Int64},
		{Name: "f", Type: storage.Float64},
		{Name: "s", Type: storage.String},
		{Name: "x", Type: storage.Int64},
	})
	d := storage.BuildDict([]string{"hello"})
	code, _ := d.Code("hello")
	s.Append([]storage.Word{w(-7), storage.EncodeFloat(2.5), code, storage.Null})
	out := s.Format([]*storage.Dict{nil, nil, d, nil}, 10)
	for _, want := range []string{"n | f | s | x", "-7", "2.5", "hello", "NULL"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}
	// Truncation note.
	for i := 0; i < 5; i++ {
		s.Append([]storage.Word{w(int64(i)), storage.EncodeFloat(0), code, w(0)})
	}
	out = s.Format(nil, 2)
	if !strings.Contains(out, "6 rows total") {
		t.Errorf("truncated format must report total rows:\n%s", out)
	}
}
