package result

import (
	"strings"
	"testing"

	"repro/internal/plan"
	"repro/internal/storage"
)

func mkSet(rows ...[]storage.Word) *Set {
	s := New([]plan.Column{{Name: "a", Type: storage.Int64}, {Name: "b", Type: storage.Int64}})
	for _, r := range rows {
		s.Append(r)
	}
	return s
}

func w(v int64) storage.Word { return storage.EncodeInt(v) }

func TestEqualAndUnordered(t *testing.T) {
	a := mkSet([]storage.Word{w(1), w(2)}, []storage.Word{w(3), w(4)})
	b := mkSet([]storage.Word{w(3), w(4)}, []storage.Word{w(1), w(2)})
	if Equal(a, b) {
		t.Error("different order must not be Equal")
	}
	if !EqualUnordered(a, b) {
		t.Error("same rows must be EqualUnordered")
	}
	c := mkSet([]storage.Word{w(1), w(2)})
	if EqualUnordered(a, c) {
		t.Error("different cardinality must differ")
	}
	d := mkSet([]storage.Word{w(1), w(2)}, []storage.Word{w(3), w(5)})
	if EqualUnordered(a, d) {
		t.Error("different values must differ")
	}
}

func TestSortedIsCanonical(t *testing.T) {
	a := mkSet([]storage.Word{w(3), w(0)}, []storage.Word{w(-1), w(9)}, []storage.Word{w(3), w(-2)})
	s := a.Sorted()
	if storage.DecodeInt(s.Rows[0][0]) != -1 {
		t.Error("sorted order wrong (encoded words must sort signed)")
	}
	if storage.DecodeInt(s.Rows[1][1]) != -2 || storage.DecodeInt(s.Rows[2][1]) != 0 {
		t.Error("ties must break on later columns")
	}
	if a.Rows[0][0] != w(3) {
		t.Error("Sorted must not mutate the receiver")
	}
}

func TestFormat(t *testing.T) {
	s := New([]plan.Column{
		{Name: "n", Type: storage.Int64},
		{Name: "f", Type: storage.Float64},
		{Name: "s", Type: storage.String},
		{Name: "x", Type: storage.Int64},
	})
	d := storage.BuildDict([]string{"hello"})
	code, _ := d.Code("hello")
	s.Append([]storage.Word{w(-7), storage.EncodeFloat(2.5), code, storage.Null})
	out := s.Format([]*storage.Dict{nil, nil, d, nil}, 10)
	for _, want := range []string{"n | f | s | x", "-7", "2.5", "hello", "NULL"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}
	// Truncation note.
	for i := 0; i < 5; i++ {
		s.Append([]storage.Word{w(int64(i)), storage.EncodeFloat(0), code, w(0)})
	}
	out = s.Format(nil, 2)
	if !strings.Contains(out, "6 rows total") {
		t.Errorf("truncated format must report total rows:\n%s", out)
	}
}
