// Package bulk implements the MonetDB-style bulk processing engine:
// operators are precompiled primitives that process one column at a time
// in static tight loops and fully materialize every intermediate result.
// This is the CPU-efficient but materialization-heavy model of the paper's
// Figure 3: the first primitive scans the selection column and materializes
// matching positions, subsequent primitives fetch each referenced column by
// those positions into fresh buffers, and the final primitives aggregate
// the buffers. Bandwidth use grows with selectivity because of the
// materialized intermediates — the effect that makes bulk processing lose
// at high selectivities.
package bulk

import (
	"repro/internal/exec"
	"repro/internal/exec/result"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/storage"
)

// Engine is the bulk (column-at-a-time) engine.
type Engine struct{}

// New returns the engine.
func New() Engine { return Engine{} }

// Name returns "bulk".
func (Engine) Name() string { return "bulk" }

// chunk is a fully materialized intermediate: column-major storage.
type chunk struct {
	cols [][]storage.Word
	n    int
}

// Run executes the plan column-at-a-time with full materialization.
func (Engine) Run(n plan.Node, c *plan.Catalog) *result.Set {
	if ins, ok := n.(plan.Insert); ok {
		return exec.RunInsert(ins, c)
	}
	ch := eval(n, c)
	out := result.New(plan.Output(n, c))
	for row := 0; row < ch.n; row++ {
		tuple := make([]storage.Word, len(ch.cols))
		for i, col := range ch.cols {
			tuple[i] = col[row]
		}
		out.Append(tuple)
	}
	return out
}

func eval(n plan.Node, c *plan.Catalog) chunk {
	switch v := n.(type) {
	case plan.Scan:
		return evalScan(v, c)
	case plan.Select:
		child := eval(v.Child, c)
		sel := selectPositionsChunk(child, v.Pred)
		return fetchChunk(child, sel)
	case plan.Project:
		child := eval(v.Child, c)
		out := chunk{n: child.n}
		for _, e := range v.Exprs {
			out.cols = append(out.cols, evalExprColumn(e, child))
		}
		return out
	case plan.HashJoin:
		return evalJoin(v, c)
	case plan.Aggregate:
		return evalAgg(v, c)
	case plan.Sort:
		child := eval(v.Child, c)
		rows := transpose(child)
		exec.SortRows(rows, v.Keys)
		return fromRows(rows, len(child.cols))
	case plan.Limit:
		child := eval(v.Child, c)
		if child.n > v.N {
			child.n = v.N
			for i := range child.cols {
				child.cols[i] = child.cols[i][:v.N]
			}
		}
		return child
	}
	panic("bulk: unsupported plan node")
}

// evalScan materializes the matching positions column-at-a-time and then
// fetches every projected column by position.
func evalScan(v plan.Scan, c *plan.Catalog) chunk {
	rel := c.Table(v.Table)
	var sel []int32
	if acc, ok := exec.PlanIndexAccess(c, v.Table, v.Filter); ok {
		sel = c.Index(v.Table, acc.Attr).Lookup(acc.Key, nil)
		sel = refineBase(rel, sel, acc.Rest)
	} else {
		sel = selectPositionsBase(rel, v.Filter)
	}
	out := chunk{n: len(sel)}
	for _, attr := range v.Cols {
		a := rel.Access(attr)
		col := make([]storage.Word, len(sel))
		for i, row := range sel {
			col[i] = a.Data[int(row)*a.Stride+a.Off]
		}
		out.cols = append(out.cols, col)
	}
	return out
}

// selectPositionsBase evaluates the filter against a base table,
// conjunct-by-conjunct: each simple conjunct is applied as one tight loop
// over exactly one attribute (first over all rows, then refining the
// position list). Complex disjunctions fall back to row-wise
// interpretation over the surviving positions.
func selectPositionsBase(rel *storage.Relation, filter expr.Pred) []int32 {
	n := rel.Rows()
	conjs := conjuncts(filter)
	var sel []int32
	first := true
	for _, p := range conjs {
		switch v := p.(type) {
		case expr.Cmp:
			sel = applyCmp(rel.Access(v.Attr), v.Op, v.Val, sel, first, n)
		case expr.Between:
			sel = applyBetween(rel.Access(v.Attr), v.Lo, v.Hi, sel, first, n)
		case expr.InSet:
			sel = applyInSet(rel.Access(v.Attr), v.Set, sel, first, n)
		case expr.NotNull:
			sel = applyCmp(rel.Access(v.Attr), expr.Ne, storage.Null, sel, first, n)
		default:
			sel = applyGeneric(func(row int32) bool {
				return expr.EvalPred(p, func(a int) storage.Word { return rel.Value(int(row), a) })
			}, sel, first, n)
		}
		first = false
	}
	if first {
		// No filter: all positions.
		sel = make([]int32, n)
		for i := range sel {
			sel[i] = int32(i)
		}
	}
	return sel
}

func refineBase(rel *storage.Relation, sel []int32, p expr.Pred) []int32 {
	if p == nil {
		return sel
	}
	out := sel[:0]
	for _, row := range sel {
		if expr.EvalPred(p, func(a int) storage.Word { return rel.Value(int(row), a) }) {
			out = append(out, row)
		}
	}
	return out
}

func conjuncts(p expr.Pred) []expr.Pred {
	switch v := p.(type) {
	case nil:
		return nil
	case expr.True:
		return nil
	case expr.And:
		return v.Preds
	default:
		return []expr.Pred{p}
	}
}

// applyCmp is the selection primitive: one static loop over one column.
func applyCmp(a storage.Accessor, op expr.CmpOp, val storage.Word, sel []int32, first bool, n int) []int32 {
	if first {
		out := make([]int32, 0, n/4+16)
		switch op {
		case expr.Eq:
			for row := 0; row < n; row++ {
				if a.Data[row*a.Stride+a.Off] == val {
					out = append(out, int32(row))
				}
			}
		case expr.Ne:
			for row := 0; row < n; row++ {
				if a.Data[row*a.Stride+a.Off] != val {
					out = append(out, int32(row))
				}
			}
		case expr.Lt:
			for row := 0; row < n; row++ {
				if a.Data[row*a.Stride+a.Off] < val {
					out = append(out, int32(row))
				}
			}
		case expr.Le:
			for row := 0; row < n; row++ {
				if a.Data[row*a.Stride+a.Off] <= val {
					out = append(out, int32(row))
				}
			}
		case expr.Gt:
			for row := 0; row < n; row++ {
				if a.Data[row*a.Stride+a.Off] > val {
					out = append(out, int32(row))
				}
			}
		case expr.Ge:
			for row := 0; row < n; row++ {
				if a.Data[row*a.Stride+a.Off] >= val {
					out = append(out, int32(row))
				}
			}
		}
		return out
	}
	out := sel[:0]
	for _, row := range sel {
		if op.Apply(a.Data[int(row)*a.Stride+a.Off], val) {
			out = append(out, row)
		}
	}
	return out
}

func applyBetween(a storage.Accessor, lo, hi storage.Word, sel []int32, first bool, n int) []int32 {
	if first {
		out := make([]int32, 0, n/4+16)
		for row := 0; row < n; row++ {
			w := a.Data[row*a.Stride+a.Off]
			if w >= lo && w <= hi {
				out = append(out, int32(row))
			}
		}
		return out
	}
	out := sel[:0]
	for _, row := range sel {
		w := a.Data[int(row)*a.Stride+a.Off]
		if w >= lo && w <= hi {
			out = append(out, row)
		}
	}
	return out
}

func applyInSet(a storage.Accessor, set *storage.CodeSet, sel []int32, first bool, n int) []int32 {
	if first {
		out := make([]int32, 0, n/4+16)
		for row := 0; row < n; row++ {
			if set.Contains(a.Data[row*a.Stride+a.Off]) {
				out = append(out, int32(row))
			}
		}
		return out
	}
	out := sel[:0]
	for _, row := range sel {
		if set.Contains(a.Data[int(row)*a.Stride+a.Off]) {
			out = append(out, row)
		}
	}
	return out
}

func applyGeneric(pass func(int32) bool, sel []int32, first bool, n int) []int32 {
	if first {
		out := make([]int32, 0, n/4+16)
		for row := 0; row < n; row++ {
			if pass(int32(row)) {
				out = append(out, int32(row))
			}
		}
		return out
	}
	out := sel[:0]
	for _, row := range sel {
		if pass(row) {
			out = append(out, row)
		}
	}
	return out
}

// selectPositionsChunk refines positions over a materialized chunk.
func selectPositionsChunk(ch chunk, filter expr.Pred) []int32 {
	var sel []int32
	first := true
	for _, p := range conjuncts(filter) {
		switch v := p.(type) {
		case expr.Cmp:
			sel = applyCmp(storage.Accessor{Data: ch.cols[v.Attr], Stride: 1}, v.Op, v.Val, sel, first, ch.n)
		case expr.Between:
			sel = applyBetween(storage.Accessor{Data: ch.cols[v.Attr], Stride: 1}, v.Lo, v.Hi, sel, first, ch.n)
		case expr.InSet:
			sel = applyInSet(storage.Accessor{Data: ch.cols[v.Attr], Stride: 1}, v.Set, sel, first, ch.n)
		default:
			sel = applyGeneric(func(row int32) bool {
				return expr.EvalPred(p, func(a int) storage.Word { return ch.cols[a][row] })
			}, sel, first, ch.n)
		}
		first = false
	}
	if first {
		sel = make([]int32, ch.n)
		for i := range sel {
			sel[i] = int32(i)
		}
	}
	return sel
}

func fetchChunk(ch chunk, sel []int32) chunk {
	out := chunk{n: len(sel)}
	for _, col := range ch.cols {
		dst := make([]storage.Word, len(sel))
		for i, row := range sel {
			dst[i] = col[row]
		}
		out.cols = append(out.cols, dst)
	}
	return out
}

// evalExprColumn computes a scalar expression as one materialized column,
// recursing over subexpressions with one tight loop per operator.
func evalExprColumn(e expr.Expr, ch chunk) []storage.Word {
	switch v := e.(type) {
	case expr.Col:
		return ch.cols[v.Attr]
	case expr.Const:
		col := make([]storage.Word, ch.n)
		for i := range col {
			col[i] = v.Val
		}
		return col
	case expr.Arith:
		l := evalExprColumn(v.L, ch)
		r := evalExprColumn(v.R, ch)
		out := make([]storage.Word, ch.n)
		if v.Type() == storage.Float64 {
			for i := range out {
				out[i] = arithF(v.Op, l[i], r[i])
			}
		} else {
			for i := range out {
				out[i] = arithI(v.Op, l[i], r[i])
			}
		}
		return out
	}
	panic("bulk: unknown expression")
}

func arithI(op expr.ArithOp, l, r storage.Word) storage.Word {
	if l == storage.Null || r == storage.Null {
		return storage.Null
	}
	a, b := storage.DecodeInt(l), storage.DecodeInt(r)
	switch op {
	case expr.Add:
		return storage.EncodeInt(a + b)
	case expr.Sub:
		return storage.EncodeInt(a - b)
	case expr.Mul:
		return storage.EncodeInt(a * b)
	case expr.Div:
		if b == 0 {
			return storage.EncodeInt(0)
		}
		return storage.EncodeInt(a / b)
	}
	return storage.Null
}

func arithF(op expr.ArithOp, l, r storage.Word) storage.Word {
	if l == storage.Null || r == storage.Null {
		return storage.Null
	}
	a, b := storage.DecodeFloat(l), storage.DecodeFloat(r)
	switch op {
	case expr.Add:
		return storage.EncodeFloat(a + b)
	case expr.Sub:
		return storage.EncodeFloat(a - b)
	case expr.Mul:
		return storage.EncodeFloat(a * b)
	case expr.Div:
		if b == 0 {
			return storage.EncodeFloat(0)
		}
		return storage.EncodeFloat(a / b)
	}
	return storage.Null
}

func evalJoin(v plan.HashJoin, c *plan.Catalog) chunk {
	left := eval(v.Left, c)
	right := eval(v.Right, c)
	// Build on the left key column.
	table := make(map[storage.Word][]int32, left.n)
	lk := left.cols[v.LeftKey]
	for row := 0; row < left.n; row++ {
		table[lk[row]] = append(table[lk[row]], int32(row))
	}
	// Probe with the right key column, materializing the match index pair.
	var lidx, ridx []int32
	rk := right.cols[v.RightKey]
	for row := 0; row < right.n; row++ {
		for _, l := range table[rk[row]] {
			lidx = append(lidx, l)
			ridx = append(ridx, int32(row))
		}
	}
	out := chunk{n: len(lidx)}
	for _, col := range left.cols {
		dst := make([]storage.Word, len(lidx))
		for i, row := range lidx {
			dst[i] = col[row]
		}
		out.cols = append(out.cols, dst)
	}
	for _, col := range right.cols {
		dst := make([]storage.Word, len(ridx))
		for i, row := range ridx {
			dst[i] = col[row]
		}
		out.cols = append(out.cols, dst)
	}
	return out
}

func evalAgg(v plan.Aggregate, c *plan.Catalog) chunk {
	child := eval(v.Child, c)
	// Assign group ids row-wise over the key columns, then aggregate each
	// aggregate column in its own loop over the materialized input.
	ids := make([]int32, child.n)
	var keyRows [][]storage.Word
	groups := map[exec.GroupKey]int32{}
	if len(v.GroupBy) == 0 {
		keyRows = append(keyRows, nil)
	} else {
		for row := 0; row < child.n; row++ {
			var k exec.GroupKey
			for i, g := range v.GroupBy {
				k[i] = child.cols[g][row]
			}
			id, ok := groups[k]
			if !ok {
				id = int32(len(keyRows))
				groups[k] = id
				kr := make([]storage.Word, len(v.GroupBy))
				for i, g := range v.GroupBy {
					kr[i] = child.cols[g][row]
				}
				keyRows = append(keyRows, kr)
			}
			ids[row] = id
		}
	}
	// One pass per aggregate: materialize its argument column, then fold it
	// group-wise. The state's argument is normalized to position 0 so the
	// fold reads the precomputed column rather than re-evaluating the
	// expression.
	states := make([][]expr.AggState, len(v.Aggs)) // [agg][group]
	for ai, spec := range v.Aggs {
		norm := spec
		var col []storage.Word
		if spec.Arg != nil {
			col = evalExprColumn(spec.Arg, child)
			norm.Arg = expr.Col{Attr: 0, Ty: spec.Arg.Type()}
		}
		sts := make([]expr.AggState, len(keyRows))
		for g := range sts {
			sts[g] = expr.NewAggState(norm)
		}
		if col == nil { // count(*)
			for row := 0; row < child.n; row++ {
				sts[ids[row]].AddValue(0)
			}
		} else {
			for row := 0; row < child.n; row++ {
				sts[ids[row]].AddValue(col[row])
			}
		}
		states[ai] = sts
	}
	out := chunk{n: len(keyRows)}
	for i := range v.GroupBy {
		colVals := make([]storage.Word, len(keyRows))
		for g, kr := range keyRows {
			colVals[g] = kr[i]
		}
		out.cols = append(out.cols, colVals)
	}
	for ai := range v.Aggs {
		colVals := make([]storage.Word, len(keyRows))
		for g := range keyRows {
			colVals[g] = states[ai][g].Result()
		}
		out.cols = append(out.cols, colVals)
	}
	return out
}

func transpose(ch chunk) [][]storage.Word {
	rows := make([][]storage.Word, ch.n)
	for r := 0; r < ch.n; r++ {
		row := make([]storage.Word, len(ch.cols))
		for i, col := range ch.cols {
			row[i] = col[r]
		}
		rows[r] = row
	}
	return rows
}

func fromRows(rows [][]storage.Word, width int) chunk {
	out := chunk{n: len(rows)}
	for i := 0; i < width; i++ {
		col := make([]storage.Word, len(rows))
		for r, row := range rows {
			col[r] = row[i]
		}
		out.cols = append(out.cols, col)
	}
	return out
}
