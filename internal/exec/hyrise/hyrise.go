// Package hyrise implements the comparator processing model of the paper's
// Figure 9: a bulk-oriented, partition-at-a-time processor that — unlike
// the MonetDB-style bulk engine — accesses every value through per-
// attribute accessor function pointers and evaluates predicates through
// compiled predicate closures, one call per value. The paper describes
// HYRISE this way: "HYRISE uses a bulk-oriented model but still relies on
// function calls to process multiple attributes within one partition. It
// therefore suffers from the same CPU inefficiency as the Volcano model."
//
// The engine shares the bulk engine's operator structure (materialized
// positions, fetch-by-position, column-wise aggregation) so that the only
// systematic difference to package bulk is the per-value dynamic dispatch —
// the CPU-efficiency dimension the paper isolates.
package hyrise

import (
	"repro/internal/exec"
	"repro/internal/exec/result"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/storage"
)

// Engine is the HYRISE-style partition-bulk engine.
type Engine struct{}

// New returns the engine.
func New() Engine { return Engine{} }

// Name returns "hyrise".
func (Engine) Name() string { return "hyrise" }

// getter is the per-attribute accessor function pointer.
type getter func(row int32) storage.Word

// tester is a compiled predicate over one value.
type tester func(w storage.Word) bool

// chunk is a materialized intermediate with closure-based column access.
type chunk struct {
	cols [][]storage.Word
	n    int
}

func (ch chunk) getter(col int) getter {
	data := ch.cols[col]
	return func(row int32) storage.Word { return data[row] }
}

func baseGetter(rel *storage.Relation, attr int) getter {
	a := rel.Access(attr)
	return func(row int32) storage.Word { return a.Data[int(row)*a.Stride+a.Off] }
}

// Run executes the plan partition-at-a-time with function-call access.
func (Engine) Run(n plan.Node, c *plan.Catalog) *result.Set {
	if ins, ok := n.(plan.Insert); ok {
		return exec.RunInsert(ins, c)
	}
	ch := eval(n, c)
	out := result.New(plan.Output(n, c))
	for row := 0; row < ch.n; row++ {
		tuple := make([]storage.Word, len(ch.cols))
		for i := range ch.cols {
			tuple[i] = ch.cols[i][row]
		}
		out.Append(tuple)
	}
	return out
}

func eval(n plan.Node, c *plan.Catalog) chunk {
	switch v := n.(type) {
	case plan.Scan:
		return evalScan(v, c)
	case plan.Select:
		child := eval(v.Child, c)
		sel := filterPositions(child.n, nil, predTesters(v.Pred, child.getter), rowTester(v.Pred, func(a int) getter { return child.getter(a) }))
		return fetch(child, sel)
	case plan.Project:
		child := eval(v.Child, c)
		out := chunk{n: child.n}
		for _, e := range v.Exprs {
			out.cols = append(out.cols, evalExprColumn(e, child))
		}
		return out
	case plan.HashJoin:
		return evalJoin(v, c)
	case plan.Aggregate:
		return evalAgg(v, c)
	case plan.Sort:
		child := eval(v.Child, c)
		rows := make([][]storage.Word, child.n)
		for r := 0; r < child.n; r++ {
			row := make([]storage.Word, len(child.cols))
			for i := range child.cols {
				row[i] = child.cols[i][r]
			}
			rows[r] = row
		}
		exec.SortRows(rows, v.Keys)
		out := chunk{n: len(rows)}
		for i := range child.cols {
			col := make([]storage.Word, len(rows))
			for r, row := range rows {
				col[r] = row[i]
			}
			out.cols = append(out.cols, col)
		}
		return out
	case plan.Limit:
		child := eval(v.Child, c)
		if child.n > v.N {
			child.n = v.N
			for i := range child.cols {
				child.cols[i] = child.cols[i][:v.N]
			}
		}
		return child
	}
	panic("hyrise: unsupported plan node")
}

// attrTest couples an attribute getter with a value tester: evaluating one
// conjunct on one row costs two indirect calls.
type attrTest struct {
	get  getter
	test tester
}

// predTesters compiles the simple conjuncts of p into attrTests; it
// returns nil if p contains non-conjunctive structure (handled by
// rowTester instead).
func predTesters(p expr.Pred, mk func(attr int) getter) []attrTest {
	var out []attrTest
	for _, conj := range conjuncts(p) {
		switch v := conj.(type) {
		case expr.Cmp:
			op, val := v.Op, v.Val
			out = append(out, attrTest{get: mk(v.Attr), test: func(w storage.Word) bool { return op.Apply(w, val) }})
		case expr.Between:
			lo, hi := v.Lo, v.Hi
			out = append(out, attrTest{get: mk(v.Attr), test: func(w storage.Word) bool { return w >= lo && w <= hi }})
		case expr.InSet:
			set := v.Set
			out = append(out, attrTest{get: mk(v.Attr), test: set.Contains})
		case expr.NotNull:
			out = append(out, attrTest{get: mk(v.Attr), test: func(w storage.Word) bool { return w != storage.Null }})
		default:
			return nil
		}
	}
	return out
}

// rowTester is the fallback for complex predicates: full interpretation
// per row.
func rowTester(p expr.Pred, mk func(attr int) getter) func(row int32) bool {
	if p == nil {
		return nil
	}
	cache := map[int]getter{}
	get := func(a int) getter {
		g, ok := cache[a]
		if !ok {
			g = mk(a)
			cache[a] = g
		}
		return g
	}
	return func(row int32) bool {
		return expr.EvalPred(p, func(a int) storage.Word { return get(a)(row) })
	}
}

func conjuncts(p expr.Pred) []expr.Pred {
	switch v := p.(type) {
	case nil, expr.True:
		return nil
	case expr.And:
		return v.Preds
	default:
		return []expr.Pred{p}
	}
}

// filterPositions materializes the positions passing all tests. Each row
// costs one getter call plus one tester call per conjunct — the per-value
// function-call overhead that defines this engine.
func filterPositions(n int, sel []int32, tests []attrTest, fallback func(int32) bool) []int32 {
	pass := func(row int32) bool {
		if tests == nil {
			if fallback == nil {
				return true
			}
			return fallback(row)
		}
		for _, t := range tests {
			if !t.test(t.get(row)) {
				return false
			}
		}
		return true
	}
	if sel == nil {
		out := make([]int32, 0, n/4+16)
		for row := int32(0); int(row) < n; row++ {
			if pass(row) {
				out = append(out, row)
			}
		}
		return out
	}
	out := sel[:0]
	for _, row := range sel {
		if pass(row) {
			out = append(out, row)
		}
	}
	return out
}

func evalScan(v plan.Scan, c *plan.Catalog) chunk {
	rel := c.Table(v.Table)
	mk := func(attr int) getter { return baseGetter(rel, attr) }
	var sel []int32
	if acc, ok := exec.PlanIndexAccess(c, v.Table, v.Filter); ok {
		sel = c.Index(v.Table, acc.Attr).Lookup(acc.Key, nil)
		if acc.Rest != nil {
			sel = filterPositions(rel.Rows(), sel, predTesters(acc.Rest, mk), rowTester(acc.Rest, mk))
		}
	} else if v.Filter == nil {
		sel = make([]int32, rel.Rows())
		for i := range sel {
			sel[i] = int32(i)
		}
	} else {
		tests := predTesters(v.Filter, mk)
		sel = filterPositions(rel.Rows(), nil, tests, rowTester(v.Filter, mk))
	}
	out := chunk{n: len(sel)}
	for _, attr := range v.Cols {
		get := baseGetter(rel, attr)
		col := make([]storage.Word, len(sel))
		for i, row := range sel {
			col[i] = get(row)
		}
		out.cols = append(out.cols, col)
	}
	return out
}

func fetch(ch chunk, sel []int32) chunk {
	out := chunk{n: len(sel)}
	for i := range ch.cols {
		get := ch.getter(i)
		col := make([]storage.Word, len(sel))
		for j, row := range sel {
			col[j] = get(row)
		}
		out.cols = append(out.cols, col)
	}
	return out
}

// evalExprColumn materializes a scalar expression column with one closure
// call per value per operator.
func evalExprColumn(e expr.Expr, ch chunk) []storage.Word {
	val := compileExpr(e, ch)
	col := make([]storage.Word, ch.n)
	for row := int32(0); int(row) < ch.n; row++ {
		col[row] = val(row)
	}
	return col
}

// compileExpr builds a value function tree — function pointers all the way
// down, called once per value.
func compileExpr(e expr.Expr, ch chunk) getter {
	switch v := e.(type) {
	case expr.Col:
		return ch.getter(v.Attr)
	case expr.Const:
		val := v.Val
		return func(int32) storage.Word { return val }
	case expr.Arith:
		l := compileExpr(v.L, ch)
		r := compileExpr(v.R, ch)
		op := v.Op
		if v.Type() == storage.Float64 {
			return func(row int32) storage.Word { return arithF(op, l(row), r(row)) }
		}
		return func(row int32) storage.Word { return arithI(op, l(row), r(row)) }
	}
	panic("hyrise: unknown expression")
}

func arithI(op expr.ArithOp, l, r storage.Word) storage.Word {
	if l == storage.Null || r == storage.Null {
		return storage.Null
	}
	a, b := storage.DecodeInt(l), storage.DecodeInt(r)
	switch op {
	case expr.Add:
		return storage.EncodeInt(a + b)
	case expr.Sub:
		return storage.EncodeInt(a - b)
	case expr.Mul:
		return storage.EncodeInt(a * b)
	case expr.Div:
		if b == 0 {
			return storage.EncodeInt(0)
		}
		return storage.EncodeInt(a / b)
	}
	return storage.Null
}

func arithF(op expr.ArithOp, l, r storage.Word) storage.Word {
	if l == storage.Null || r == storage.Null {
		return storage.Null
	}
	a, b := storage.DecodeFloat(l), storage.DecodeFloat(r)
	switch op {
	case expr.Add:
		return storage.EncodeFloat(a + b)
	case expr.Sub:
		return storage.EncodeFloat(a - b)
	case expr.Mul:
		return storage.EncodeFloat(a * b)
	case expr.Div:
		if b == 0 {
			return storage.EncodeFloat(0)
		}
		return storage.EncodeFloat(a / b)
	}
	return storage.Null
}

func evalJoin(v plan.HashJoin, c *plan.Catalog) chunk {
	left := eval(v.Left, c)
	right := eval(v.Right, c)
	table := make(map[storage.Word][]int32, left.n)
	lk := left.getter(v.LeftKey)
	for row := int32(0); int(row) < left.n; row++ {
		table[lk(row)] = append(table[lk(row)], row)
	}
	var lidx, ridx []int32
	rk := right.getter(v.RightKey)
	for row := int32(0); int(row) < right.n; row++ {
		for _, l := range table[rk(row)] {
			lidx = append(lidx, l)
			ridx = append(ridx, row)
		}
	}
	out := chunk{n: len(lidx)}
	for i := range left.cols {
		get := left.getter(i)
		col := make([]storage.Word, len(lidx))
		for j, row := range lidx {
			col[j] = get(row)
		}
		out.cols = append(out.cols, col)
	}
	for i := range right.cols {
		get := right.getter(i)
		col := make([]storage.Word, len(ridx))
		for j, row := range ridx {
			col[j] = get(row)
		}
		out.cols = append(out.cols, col)
	}
	return out
}

func evalAgg(v plan.Aggregate, c *plan.Catalog) chunk {
	child := eval(v.Child, c)
	ids := make([]int32, child.n)
	var keyRows [][]storage.Word
	groups := map[exec.GroupKey]int32{}
	if len(v.GroupBy) == 0 {
		keyRows = append(keyRows, nil)
	} else {
		getters := make([]getter, len(v.GroupBy))
		for i, gcol := range v.GroupBy {
			getters[i] = child.getter(gcol)
		}
		for row := int32(0); int(row) < child.n; row++ {
			var k exec.GroupKey
			for i := range getters {
				k[i] = getters[i](row)
			}
			id, ok := groups[k]
			if !ok {
				id = int32(len(keyRows))
				groups[k] = id
				kr := make([]storage.Word, len(getters))
				for i := range getters {
					kr[i] = getters[i](row)
				}
				keyRows = append(keyRows, kr)
			}
			ids[row] = id
		}
	}
	states := make([][]expr.AggState, len(v.Aggs))
	for ai, spec := range v.Aggs {
		norm := spec
		var val getter
		if spec.Arg != nil {
			val = compileExpr(spec.Arg, child)
			norm.Arg = expr.Col{Attr: 0, Ty: spec.Arg.Type()}
		}
		sts := make([]expr.AggState, len(keyRows))
		for gi := range sts {
			sts[gi] = expr.NewAggState(norm)
		}
		for row := int32(0); int(row) < child.n; row++ {
			if val == nil {
				sts[ids[row]].AddValue(0)
			} else {
				sts[ids[row]].AddValue(val(row))
			}
		}
		states[ai] = sts
	}
	out := chunk{n: len(keyRows)}
	for i := range v.GroupBy {
		col := make([]storage.Word, len(keyRows))
		for gi, kr := range keyRows {
			col[gi] = kr[i]
		}
		out.cols = append(out.cols, col)
	}
	for ai := range v.Aggs {
		col := make([]storage.Word, len(keyRows))
		for gi := range keyRows {
			col[gi] = states[ai][gi].Result()
		}
		out.cols = append(out.cols, col)
	}
	return out
}
