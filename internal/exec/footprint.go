package exec

import (
	"sort"

	"repro/internal/expr"
	"repro/internal/plan"
)

// TableAccess describes one base table a read plan touches: the attribute
// positions execution reads (projected columns plus filter attributes) and
// the rows one execution scans. It is the unit of the workload-capture
// footprint — computed once at plan-compile time so the per-execution
// accounting is a handful of atomic adds against precomputed counters.
type TableAccess struct {
	Table string
	// Attrs are the attribute positions read, sorted and deduplicated.
	Attrs []int
	// Rows is the number of rows one execution scans. For a sequential
	// scan this is the table's row count at compile time (exact for the
	// service: its plan cache is invalidated on every catalog change).
	// Index-satisfied scans report 0 — the fetched-row count varies per
	// execution and is small by construction.
	Rows int64
	// Index reports that PlanIndexAccess satisfies the scan, so the
	// access is point lookups rather than a full pass.
	Index bool
}

// CollectAccesses walks a plan and returns its base-table accesses, one
// entry per distinct table in first-touch order. A table scanned at
// several points of the plan (e.g. a self join) gets the union of the
// attribute sets and the sum of the scanned rows. Insert nodes are
// skipped: the footprint accounts column reads, and writes invalidate
// the compiled form anyway. The index-vs-scan decision mirrors
// PlanIndexAccess, the shared planner helper both the jit and vector
// engines use, so the reported footprint matches what the fused loops
// and batch iterators actually touch.
func CollectAccesses(n plan.Node, c *plan.Catalog) []TableAccess {
	byTable := map[string]int{}
	var out []TableAccess
	var walk func(plan.Node)
	walk = func(n plan.Node) {
		switch v := n.(type) {
		case plan.Scan:
			attrs := append([]int(nil), v.Cols...)
			if v.Filter != nil {
				attrs = append(attrs, expr.PredAttrs(v.Filter)...)
			}
			sort.Ints(attrs)
			attrs = dedupInts(attrs)
			rows := int64(0)
			indexed := false
			if v.Filter != nil {
				_, indexed = PlanIndexAccess(c, v.Table, v.Filter)
			}
			if !indexed && c.Has(v.Table) {
				rows = int64(c.Table(v.Table).Rows())
			}
			if i, ok := byTable[v.Table]; ok {
				acc := &out[i]
				acc.Attrs = dedupInts(mergeSorted(acc.Attrs, attrs))
				acc.Rows += rows
				acc.Index = acc.Index && indexed
				return
			}
			byTable[v.Table] = len(out)
			out = append(out, TableAccess{Table: v.Table, Attrs: attrs, Rows: rows, Index: indexed})
		case plan.Select:
			walk(v.Child)
		case plan.Project:
			walk(v.Child)
		case plan.HashJoin:
			walk(v.Left)
			walk(v.Right)
		case plan.Aggregate:
			walk(v.Child)
		case plan.Sort:
			walk(v.Child)
		case plan.Limit:
			walk(v.Child)
		}
	}
	walk(n)
	return out
}

// mergeSorted merges two sorted int slices into a new sorted slice
// (duplicates preserved; pair with dedupInts).
func mergeSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	sort.Ints(out)
	return out
}

// dedupInts removes adjacent duplicates from a sorted slice, in place.
func dedupInts(s []int) []int {
	if len(s) < 2 {
		return s
	}
	j := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[j-1] {
			s[j] = s[i]
			j++
		}
	}
	return s[:j]
}
