// Package sortpar parallelizes the sort pipeline breaker on the shared
// morsel scheduler: Sort is a parallel stable merge sort whose output is
// bit-identical to sort.SliceStable over the same input order (runs are
// contiguous slices sorted stably in parallel, then merged pairwise with
// ties always taken from the earlier run), and TopN is the bounded
// operator behind ORDER BY … LIMIT k — a per-worker k-element heap whose
// candidates merge into exactly the first k rows of the full stable sort,
// so top-N queries never materialize more than k rows per worker.
//
// Ties are resolved by original emission order throughout: TopN items
// carry a (morsel, seq) ordinal — the morsel index the row was emitted
// from and its sequence number within that morsel — which is the
// lexicographic encoding of the serial emission order under the
// scheduler's determinism contract (morsels numbered in row order). The
// differential tests assert bit-identity against the serial engines for
// every layout and worker count.
package sortpar

import (
	"sort"

	"repro/internal/exec/par"
	"repro/internal/plan"
	"repro/internal/storage"
)

// minParallelRows is the input size below which Sort stays serial: the
// pairwise merge scratch and scheduling overhead only pay off once runs
// outgrow the cache.
const minParallelRows = 4 << 10

// Less orders two rows by the sort keys (encoded words are
// order-preserving for every type); ties compare equal.
func Less(a, b []storage.Word, keys []plan.SortKey) bool {
	for _, k := range keys {
		x, y := a[k.Pos], b[k.Pos]
		if x == y {
			continue
		}
		if k.Desc {
			return x > y
		}
		return x < y
	}
	return false
}

// Sort orders rows in place by the sort keys. The result is bit-identical
// to exec.SortRows (sort.SliceStable): equal-key rows keep their input
// order. With a single worker — or a small input — it is exactly
// sort.SliceStable; otherwise contiguous runs are sorted stably on the
// scheduler's workers and merged pairwise, ties taken from the
// lower-index (earlier) run.
func Sort(rows [][]storage.Word, keys []plan.SortKey, opt par.Options) {
	n := len(rows)
	if !opt.Parallel() || n < minParallelRows {
		sortRun(rows, keys)
		return
	}
	runs := opt.WorkerCount()
	if runs > n {
		runs = n
	}
	// Run boundaries: runs contiguous near-equal slices of the input.
	bounds := make([]int, runs+1)
	for i := range bounds {
		bounds[i] = i * n / runs
	}
	runOpt := par.Options{Workers: opt.Workers, MorselRows: 1, Pool: opt.Pool}
	par.Run(runs, runOpt, func(_, r, _, _ int) {
		sortRun(rows[bounds[r]:bounds[r+1]], keys)
	})

	// Pairwise merge rounds, parallel within each round. src and dst
	// ping-pong; ties take the left (earlier) run, so the merge is stable.
	src, dst := rows, make([][]storage.Word, n)
	for len(bounds) > 2 {
		pairs := (len(bounds) - 1) / 2
		newBounds := make([]int, 0, pairs+2)
		newBounds = append(newBounds, 0)
		for p := 0; p < pairs; p++ {
			newBounds = append(newBounds, bounds[2*p+2])
		}
		if (len(bounds)-1)%2 == 1 { // odd run out: carried to the next round
			newBounds = append(newBounds, bounds[len(bounds)-1])
		}
		b := bounds
		s, d := src, dst
		par.Run(pairs, runOpt, func(_, p, _, _ int) {
			mergeRuns(d, s, b[2*p], b[2*p+1], b[2*p+2], keys)
		})
		if (len(bounds)-1)%2 == 1 {
			copy(dst[bounds[len(bounds)-2]:], src[bounds[len(bounds)-2]:])
		}
		src, dst = dst, src
		bounds = newBounds
	}
	if &src[0] != &rows[0] {
		copy(rows, src)
	}
}

// sortRun stable-sorts one contiguous run.
func sortRun(rows [][]storage.Word, keys []plan.SortKey) {
	sort.SliceStable(rows, func(i, j int) bool { return Less(rows[i], rows[j], keys) })
}

// mergeRuns merges src[lo:mid] and src[mid:hi] into dst[lo:hi], taking the
// left element on ties (stability).
func mergeRuns(dst, src [][]storage.Word, lo, mid, hi int, keys []plan.SortKey) {
	i, j := lo, mid
	for k := lo; k < hi; k++ {
		switch {
		case i >= mid:
			dst[k] = src[j]
			j++
		case j >= hi:
			dst[k] = src[i]
			i++
		case Less(src[j], src[i], keys): // strictly less: ties keep the left
			dst[k] = src[j]
			j++
		default:
			dst[k] = src[i]
			i++
		}
	}
}

// item is one retained top-N candidate: the row copy plus its emission
// ordinal, the stability tie-break.
type item struct {
	row    []storage.Word
	morsel int
	seq    int
}

// TopN is a bounded top-N accumulator: it retains the k least rows (under
// the sort keys, ties by emission ordinal) of everything offered to it,
// in O(k) memory. A TopN is not goroutine-safe; parallel executions keep
// one per worker and combine them with MergeTopN.
type TopN struct {
	k     int
	keys  []plan.SortKey
	items []item // max-heap: root is the worst retained candidate
}

// NewTopN creates an accumulator retaining at most k rows.
func NewTopN(keys []plan.SortKey, k int) *TopN {
	if k < 0 {
		k = 0
	}
	return &TopN{k: k, keys: keys, items: make([]item, 0, min(k, 1024))}
}

// Len returns the number of retained candidates.
func (t *TopN) Len() int { return len(t.items) }

// less is the total strict order of candidates: sort keys first, emission
// ordinal as the tie-break — exactly the order of a stable sort over the
// serial emission sequence.
func (t *TopN) less(a, b *item) bool {
	if Less(a.row, b.row, t.keys) {
		return true
	}
	if Less(b.row, a.row, t.keys) {
		return false
	}
	if a.morsel != b.morsel {
		return a.morsel < b.morsel
	}
	return a.seq < b.seq
}

// Offer considers one emitted row. The row is copied only if it enters the
// retained set; evicted candidates donate their buffer to the newcomer, so
// a full scan costs O(k) row allocations regardless of input size.
func (t *TopN) Offer(row []storage.Word, morsel, seq int) {
	if t.k == 0 {
		return
	}
	if len(t.items) < t.k {
		t.items = append(t.items, item{row: append([]storage.Word(nil), row...), morsel: morsel, seq: seq})
		t.siftUp(len(t.items) - 1)
		return
	}
	cand := item{row: row, morsel: morsel, seq: seq}
	root := &t.items[0]
	if !t.less(&cand, root) {
		return
	}
	if len(root.row) == len(row) {
		copy(root.row, row)
	} else {
		root.row = append([]storage.Word(nil), row...)
	}
	root.morsel, root.seq = morsel, seq
	t.siftDown(0)
}

func (t *TopN) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !t.less(&t.items[p], &t.items[i]) { // parent already the worse one
			return
		}
		t.items[p], t.items[i] = t.items[i], t.items[p]
		i = p
	}
}

func (t *TopN) siftDown(i int) {
	n := len(t.items)
	for {
		worst := i
		if l := 2*i + 1; l < n && t.less(&t.items[worst], &t.items[l]) {
			worst = l
		}
		if r := 2*i + 2; r < n && t.less(&t.items[worst], &t.items[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		t.items[i], t.items[worst] = t.items[worst], t.items[i]
		i = worst
	}
}

// MergeTopN combines per-worker accumulators into the final result: the
// first k rows of the stable sort of the full input, in sorted order. The
// union of per-worker candidate sets is a superset of the global top k
// (every globally retained row is among the k best its worker saw), so
// sorting the union by (keys, ordinal) and truncating is exact.
func MergeTopN(parts []*TopN, keys []plan.SortKey, k int) [][]storage.Word {
	var all []item
	for _, p := range parts {
		if p == nil {
			continue
		}
		all = append(all, p.items...)
	}
	if len(all) == 0 || k <= 0 {
		return nil
	}
	cmp := TopN{keys: keys}
	sort.Slice(all, func(i, j int) bool { return cmp.less(&all[i], &all[j]) })
	if len(all) > k {
		all = all[:k]
	}
	out := make([][]storage.Word, len(all))
	for i := range all {
		out[i] = all[i].row
	}
	return out
}
