package sortpar

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/exec/par"
	"repro/internal/plan"
	"repro/internal/storage"
)

// genRows builds n rows of (key₀ % c₀, key₁ % c₁, id) — the id column is a
// unique witness that exposes any reordering of equal-key rows.
func genRows(n int, seed int64) [][]storage.Word {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]storage.Word, n)
	for i := range rows {
		rows[i] = []storage.Word{
			storage.EncodeInt(rng.Int63n(7)),  // heavy duplicates
			storage.EncodeInt(rng.Int63n(50)), // moderate duplicates
			storage.EncodeInt(int64(i)),       // unique id
		}
	}
	return rows
}

func cloneRows(rows [][]storage.Word) [][]storage.Word {
	out := make([][]storage.Word, len(rows))
	for i, r := range rows {
		out[i] = append([]storage.Word(nil), r...)
	}
	return out
}

func rowsEqual(a, b [][]storage.Word) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

var keySweeps = [][]plan.SortKey{
	nil, // empty keys: stable sort must preserve input order
	{{Pos: 0}},
	{{Pos: 0, Desc: true}},
	{{Pos: 0}, {Pos: 1, Desc: true}},
	{{Pos: 1, Desc: true}, {Pos: 0}},
}

// TestSortMatchesSliceStable differentially checks Sort against
// sort.SliceStable on duplicate-heavy data: the unique id column makes any
// tie reordering visible.
func TestSortMatchesSliceStable(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5, 100, minParallelRows, 50_000} {
		rows := genRows(n, int64(n)+1)
		for ki, keys := range keySweeps {
			want := cloneRows(rows)
			sort.SliceStable(want, func(i, j int) bool { return Less(want[i], want[j], keys) })
			for _, workers := range []int{1, 2, 3, 4, 8} {
				got := cloneRows(rows)
				Sort(got, keys, par.Options{Workers: workers})
				if !rowsEqual(want, got) {
					t.Fatalf("n=%d keys=%d workers=%d: parallel sort diverges from SliceStable", n, ki, workers)
				}
			}
		}
	}
}

// TestSortOnPool runs the parallel sort on a shared pool, the way the
// service executes it.
func TestSortOnPool(t *testing.T) {
	pool := par.NewPool(4)
	defer pool.Close()
	rows := genRows(30_000, 99)
	keys := []plan.SortKey{{Pos: 0}, {Pos: 1}}
	want := cloneRows(rows)
	sort.SliceStable(want, func(i, j int) bool { return Less(want[i], want[j], keys) })
	got := cloneRows(rows)
	Sort(got, keys, par.WithPool(pool))
	if !rowsEqual(want, got) {
		t.Fatal("pool-backed sort diverges from SliceStable")
	}
}

// TestTopNMatchesSortTruncate: for every k, the bounded heap must yield
// exactly the first k rows of the full stable sort — ties at the k
// boundary included.
func TestTopNMatchesSortTruncate(t *testing.T) {
	rows := genRows(5000, 7)
	for _, keys := range keySweeps {
		want := cloneRows(rows)
		sort.SliceStable(want, func(i, j int) bool { return Less(want[i], want[j], keys) })
		for _, k := range []int{0, 1, 2, 10, 100, 4999, 5000, 9000} {
			tn := NewTopN(keys, k)
			for i, r := range rows {
				tn.Offer(r, 0, i)
			}
			got := MergeTopN([]*TopN{tn}, keys, k)
			wk := want
			if len(wk) > k {
				wk = wk[:k]
			}
			if !rowsEqual(wk, got) {
				t.Fatalf("k=%d keys=%v: top-N diverges from sort+truncate (%d vs %d rows)", k, keys, len(got), len(wk))
			}
		}
	}
}

// TestTopNPartitionedMerge splits the input across simulated workers by
// morsel and checks the merged candidates equal the serial top k.
func TestTopNPartitionedMerge(t *testing.T) {
	rows := genRows(20_000, 3)
	keys := []plan.SortKey{{Pos: 0}, {Pos: 1, Desc: true}}
	const k, morselRows = 37, 512
	want := cloneRows(rows)
	sort.SliceStable(want, func(i, j int) bool { return Less(want[i], want[j], keys) })
	for _, workers := range []int{2, 3, 8} {
		parts := make([]*TopN, workers)
		for m := 0; m*morselRows < len(rows); m++ {
			w := (m * 2654435761) % workers // arbitrary morsel→worker assignment
			if parts[w] == nil {
				parts[w] = NewTopN(keys, k)
			}
			lo, hi := m*morselRows, (m+1)*morselRows
			if hi > len(rows) {
				hi = len(rows)
			}
			for i := lo; i < hi; i++ {
				parts[w].Offer(rows[i], m, i-lo)
			}
		}
		got := MergeTopN(parts, keys, k)
		if !rowsEqual(want[:k], got) {
			t.Fatalf("workers=%d: partitioned top-N diverges from serial top k", workers)
		}
	}
}

// TestTopNOfferDoesNotAliasInput: offered rows may be reused by the
// caller (register files, batch buffers); retained candidates must be
// copies.
func TestTopNOfferDoesNotAliasInput(t *testing.T) {
	keys := []plan.SortKey{{Pos: 0}}
	tn := NewTopN(keys, 2)
	buf := []storage.Word{storage.EncodeInt(5)}
	tn.Offer(buf, 0, 0)
	buf[0] = storage.EncodeInt(1)
	tn.Offer(buf, 0, 1)
	buf[0] = storage.EncodeInt(99)
	got := MergeTopN([]*TopN{tn}, keys, 2)
	if storage.DecodeInt(got[0][0]) != 1 || storage.DecodeInt(got[1][0]) != 5 {
		t.Fatalf("retained rows alias the caller's buffer: %v", got)
	}
}

func BenchmarkSort(b *testing.B) {
	rows := genRows(1_000_000, 1)
	keys := []plan.SortKey{{Pos: 0}, {Pos: 1}}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opt := par.Options{Workers: workers}
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				in := cloneRows(rows)
				b.StartTimer()
				Sort(in, keys, opt)
			}
		})
	}
}
