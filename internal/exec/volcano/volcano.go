// Package volcano implements the Volcano-style iterator engine: every
// operator exposes Open/Next, tuples flow one at a time through interface
// method calls, and operators are "configured" with predicate and
// expression trees interpreted per tuple. This is the deliberately
// CPU-inefficient processing model of the paper's Figure 3 — each tuple
// pays several dynamic dispatches, defeating branch prediction and
// instruction-cache locality exactly as the paper describes for
// function-pointer-chasing processors.
package volcano

import (
	"repro/internal/exec"
	"repro/internal/exec/result"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/storage"
)

// Engine is the Volcano iterator engine.
type Engine struct{}

// New returns the engine.
func New() Engine { return Engine{} }

// Name returns "volcano".
func (Engine) Name() string { return "volcano" }

// Run executes the plan tuple-at-a-time.
func (Engine) Run(n plan.Node, c *plan.Catalog) *result.Set {
	if ins, ok := n.(plan.Insert); ok {
		return exec.RunInsert(ins, c)
	}
	it := build(n, c)
	it.Open()
	out := result.New(plan.Output(n, c))
	for {
		row, ok := it.Next()
		if !ok {
			break
		}
		out.Append(append([]storage.Word(nil), row...))
	}
	return out
}

// iterator is the Volcano operator interface; Next returns a tuple that
// remains valid only until the next call.
type iterator interface {
	Open()
	Next() ([]storage.Word, bool)
}

func build(n plan.Node, c *plan.Catalog) iterator {
	switch v := n.(type) {
	case plan.Scan:
		if acc, ok := exec.PlanIndexAccess(c, v.Table, v.Filter); ok {
			return &indexScanIter{rel: c.Table(v.Table), idx: c, table: v.Table, access: acc, cols: v.Cols}
		}
		if v.Filter == nil {
			return &scanIter{rel: c.Table(v.Table), cols: v.Cols}
		}
		// Faithful Volcano: the scan is a dumb tuple enumerator; the
		// selection is a separate operator pulling every tuple through a
		// Next() call, and a projection narrows back to the requested
		// columns. This per-operator, per-tuple dynamic dispatch is the
		// CPU-inefficiency the paper measures.
		union := append([]int(nil), v.Cols...)
		posOf := map[int]int{}
		for i, a := range v.Cols {
			if _, ok := posOf[a]; !ok {
				posOf[a] = i
			}
		}
		for _, a := range expr.PredAttrs(v.Filter) {
			if _, ok := posOf[a]; !ok {
				posOf[a] = len(union)
				union = append(union, a)
			}
		}
		var it iterator = &scanIter{rel: c.Table(v.Table), cols: union}
		it = &selectIter{child: it, pred: expr.RemapAttrs(v.Filter, func(a int) int { return posOf[a] })}
		if len(union) != len(v.Cols) {
			exprs := make([]expr.Expr, len(v.Cols))
			for i := range v.Cols {
				exprs[i] = expr.Col{Attr: i}
			}
			it = &projectIter{child: it, exprs: exprs}
		}
		return it
	case plan.Select:
		return &selectIter{child: build(v.Child, c), pred: v.Pred}
	case plan.Project:
		return &projectIter{child: build(v.Child, c), exprs: v.Exprs}
	case plan.HashJoin:
		return &hashJoinIter{left: build(v.Left, c), right: build(v.Right, c), lkey: v.LeftKey, rkey: v.RightKey}
	case plan.Aggregate:
		return &aggIter{child: build(v.Child, c), groupBy: v.GroupBy, aggs: v.Aggs}
	case plan.Sort:
		return &sortIter{child: build(v.Child, c), keys: v.Keys}
	case plan.Limit:
		return &limitIter{child: build(v.Child, c), n: v.N}
	}
	panic("volcano: unsupported plan node")
}

// scanIter enumerates base-table rows, fetching each attribute through a
// relation method call and interpreting the filter per tuple.
type scanIter struct {
	rel    *storage.Relation
	filter expr.Pred
	cols   []int
	row    int
	buf    []storage.Word
}

func (s *scanIter) Open() {
	s.row = 0
	s.buf = make([]storage.Word, len(s.cols))
}

func (s *scanIter) Next() ([]storage.Word, bool) {
	for s.row < s.rel.Rows() {
		row := s.row
		s.row++
		if s.filter != nil && !expr.EvalPred(s.filter, func(a int) storage.Word { return s.rel.Value(row, a) }) {
			continue
		}
		for i, a := range s.cols {
			s.buf[i] = s.rel.Value(row, a)
		}
		return s.buf, true
	}
	return nil, false
}

// indexScanIter fetches candidate rows from an index, applies the residual
// predicate and projects.
type indexScanIter struct {
	rel    *storage.Relation
	idx    *plan.Catalog
	table  string
	access exec.IndexAccess
	cols   []int
	rows   []int32
	pos    int
	buf    []storage.Word
}

func (s *indexScanIter) Open() {
	s.rows = s.idx.Index(s.table, s.access.Attr).Lookup(s.access.Key, nil)
	s.pos = 0
	s.buf = make([]storage.Word, len(s.cols))
}

func (s *indexScanIter) Next() ([]storage.Word, bool) {
	for s.pos < len(s.rows) {
		row := int(s.rows[s.pos])
		s.pos++
		if s.access.Rest != nil && !expr.EvalPred(s.access.Rest, func(a int) storage.Word { return s.rel.Value(row, a) }) {
			continue
		}
		for i, a := range s.cols {
			s.buf[i] = s.rel.Value(row, a)
		}
		return s.buf, true
	}
	return nil, false
}

type selectIter struct {
	child iterator
	pred  expr.Pred
}

func (s *selectIter) Open() { s.child.Open() }

func (s *selectIter) Next() ([]storage.Word, bool) {
	for {
		row, ok := s.child.Next()
		if !ok {
			return nil, false
		}
		if expr.EvalPred(s.pred, func(a int) storage.Word { return row[a] }) {
			return row, true
		}
	}
}

type projectIter struct {
	child iterator
	exprs []expr.Expr
	buf   []storage.Word
}

func (p *projectIter) Open() {
	p.child.Open()
	p.buf = make([]storage.Word, len(p.exprs))
}

func (p *projectIter) Next() ([]storage.Word, bool) {
	row, ok := p.child.Next()
	if !ok {
		return nil, false
	}
	for i, e := range p.exprs {
		p.buf[i] = expr.EvalExpr(e, func(a int) storage.Word { return row[a] })
	}
	return p.buf, true
}

// hashJoinIter drains the left child into a hash table on Open and streams
// the right child through it on Next.
type hashJoinIter struct {
	left, right iterator
	lkey, rkey  int
	table       map[storage.Word][][]storage.Word
	pending     [][]storage.Word
	cur         []storage.Word
	buf         []storage.Word
}

func (j *hashJoinIter) Open() {
	j.left.Open()
	j.right.Open()
	j.table = make(map[storage.Word][][]storage.Word)
	for {
		row, ok := j.left.Next()
		if !ok {
			break
		}
		cp := append([]storage.Word(nil), row...)
		j.table[cp[j.lkey]] = append(j.table[cp[j.lkey]], cp)
	}
	j.pending = nil
}

func (j *hashJoinIter) Next() ([]storage.Word, bool) {
	for {
		if len(j.pending) > 0 {
			l := j.pending[0]
			j.pending = j.pending[1:]
			j.buf = j.buf[:0]
			j.buf = append(j.buf, l...)
			j.buf = append(j.buf, j.cur...)
			return j.buf, true
		}
		row, ok := j.right.Next()
		if !ok {
			return nil, false
		}
		if matches := j.table[row[j.rkey]]; len(matches) > 0 {
			j.cur = append(j.cur[:0], row...)
			j.pending = matches
		}
	}
}

// aggIter drains its child on Open, grouping tuple-at-a-time.
type aggIter struct {
	child   iterator
	groupBy []int
	aggs    []expr.AggSpec
	out     [][]storage.Word
	pos     int
}

func (a *aggIter) Open() {
	a.child.Open()
	type group struct {
		key    []storage.Word
		states []expr.AggState
	}
	order := make([]*group, 0)
	groups := make(map[exec.GroupKey]*group)
	newStates := func() []expr.AggState {
		st := make([]expr.AggState, len(a.aggs))
		for i, spec := range a.aggs {
			st[i] = expr.NewAggState(spec)
		}
		return st
	}
	for {
		row, ok := a.child.Next()
		if !ok {
			break
		}
		k := exec.MakeGroupKey(row, a.groupBy)
		g := groups[k]
		if g == nil {
			keyVals := make([]storage.Word, len(a.groupBy))
			for i, p := range a.groupBy {
				keyVals[i] = row[p]
			}
			g = &group{key: keyVals, states: newStates()}
			groups[k] = g
			order = append(order, g)
		}
		for i := range g.states {
			g.states[i].Add(func(p int) storage.Word { return row[p] })
		}
	}
	if len(a.groupBy) == 0 && len(order) == 0 {
		order = append(order, &group{states: newStates()})
	}
	a.out = a.out[:0]
	for _, g := range order {
		row := make([]storage.Word, 0, len(g.key)+len(a.aggs))
		row = append(row, g.key...)
		for i := range g.states {
			row = append(row, g.states[i].Result())
		}
		a.out = append(a.out, row)
	}
	a.pos = 0
}

func (a *aggIter) Next() ([]storage.Word, bool) {
	if a.pos >= len(a.out) {
		return nil, false
	}
	a.pos++
	return a.out[a.pos-1], true
}

type sortIter struct {
	child iterator
	keys  []plan.SortKey
	rows  [][]storage.Word
	pos   int
}

func (s *sortIter) Open() {
	s.child.Open()
	s.rows = s.rows[:0]
	for {
		row, ok := s.child.Next()
		if !ok {
			break
		}
		s.rows = append(s.rows, append([]storage.Word(nil), row...))
	}
	exec.SortRows(s.rows, s.keys)
	s.pos = 0
}

func (s *sortIter) Next() ([]storage.Word, bool) {
	if s.pos >= len(s.rows) {
		return nil, false
	}
	s.pos++
	return s.rows[s.pos-1], true
}

type limitIter struct {
	child iterator
	n     int
	done  int
}

func (l *limitIter) Open() {
	l.child.Open()
	l.done = 0
}

func (l *limitIter) Next() ([]storage.Word, bool) {
	if l.done >= l.n {
		return nil, false
	}
	row, ok := l.child.Next()
	if !ok {
		return nil, false
	}
	l.done++
	return row, true
}
