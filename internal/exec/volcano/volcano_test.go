package volcano

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/storage"
)

// The differential suite (package exec) covers semantics; these tests pin
// the engine's structural fidelity to the Volcano model: a filtered scan
// must decompose into a dumb tuple enumerator, a separate selection
// operator and a narrowing projection — per-tuple dynamic dispatch at
// every level is the processing model the paper measures.

func volcanoCatalog(rows int) *plan.Catalog {
	schema := storage.NewSchema("t",
		storage.Attribute{Name: "a", Type: storage.Int64},
		storage.Attribute{Name: "b", Type: storage.Int64},
		storage.Attribute{Name: "c", Type: storage.Int64},
	)
	b := storage.NewBuilder(schema)
	as := make([]int64, rows)
	bs := make([]int64, rows)
	cs := make([]int64, rows)
	for i := range as {
		as[i] = int64(i % 10)
		bs[i] = int64(i)
		cs[i] = int64(i * 2)
	}
	b.SetInts(0, as).SetInts(1, bs).SetInts(2, cs)
	return plan.NewCatalog().Add(b.Build(storage.NSM(3)))
}

func TestFilteredScanBecomesOperatorChain(t *testing.T) {
	c := volcanoCatalog(100)
	// Filter references an attribute outside the projected columns: the
	// chain must be project(select(scan)).
	it := build(plan.Scan{
		Table:  "t",
		Filter: expr.Cmp{Attr: 0, Op: expr.Eq, Val: storage.EncodeInt(3)},
		Cols:   []int{1, 2},
	}, c)
	proj, ok := it.(*projectIter)
	if !ok {
		t.Fatalf("top operator = %T, want projectIter", it)
	}
	sel, ok := proj.child.(*selectIter)
	if !ok {
		t.Fatalf("middle operator = %T, want selectIter", proj.child)
	}
	if _, ok := sel.child.(*scanIter); !ok {
		t.Fatalf("bottom operator = %T, want scanIter", sel.child)
	}
	// And the chain must still compute the right thing.
	proj.Open()
	n := 0
	for {
		row, ok := proj.Next()
		if !ok {
			break
		}
		if len(row) != 2 {
			t.Fatal("projection arity wrong")
		}
		n++
	}
	if n != 10 {
		t.Fatalf("chain produced %d rows, want 10", n)
	}
}

func TestFilterOnProjectedColumnSkipsProjection(t *testing.T) {
	c := volcanoCatalog(50)
	it := build(plan.Scan{
		Table:  "t",
		Filter: expr.Cmp{Attr: 1, Op: expr.Lt, Val: storage.EncodeInt(5)},
		Cols:   []int{1, 0},
	}, c)
	// Filter attr 1 is already projected: select(scan), no project needed.
	if _, ok := it.(*selectIter); !ok {
		t.Fatalf("top operator = %T, want selectIter (no narrowing projection)", it)
	}
}

func TestUnfilteredScanStaysFlat(t *testing.T) {
	c := volcanoCatalog(10)
	it := build(plan.Scan{Table: "t", Cols: []int{0}}, c)
	if _, ok := it.(*scanIter); !ok {
		t.Fatalf("unfiltered scan = %T, want bare scanIter", it)
	}
}
