package joinpar

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/exec/par"
	"repro/internal/storage"
)

// genBuild produces n rows (key, tag) with keys drawn from a small domain
// so every key has a long match list — the ordering-sensitive case.
func genBuild(n, distinct int, seed int64) [][]storage.Word {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]storage.Word, n)
	for i := range rows {
		rows[i] = []storage.Word{
			storage.EncodeInt(rng.Int63n(int64(distinct))),
			storage.EncodeInt(int64(i)), // original index witness
		}
	}
	return rows
}

// serialMatches replays the pre-partitioning flat build: per key, build row
// indices in input order.
func serialMatches(rows [][]storage.Word, key int) map[storage.Word][]int {
	out := map[storage.Word][]int{}
	for i, r := range rows {
		out[r[key]] = append(out[r[key]], i)
	}
	return out
}

// assertTableMatchesSerial checks every key's match list resolves to the
// same rows in the same order as the serial flat build.
func assertTableMatchesSerial(t *testing.T, label string, rows [][]storage.Word, tbl *Table, key, width int) {
	t.Helper()
	want := serialMatches(rows, key)
	seen := 0
	for k, wantIdx := range want {
		matches, flat := tbl.Lookup(k)
		if len(matches) != len(wantIdx) {
			t.Fatalf("%s: key %d has %d matches, want %d", label, k, len(matches), len(wantIdx))
		}
		for i, m := range matches {
			got := flat[int(m)*width : int(m+1)*width]
			exp := rows[wantIdx[i]]
			for c := range exp {
				if got[c] != exp[c] {
					t.Fatalf("%s: key %d match %d = row %v, want %v (order broken)", label, k, i, got, exp)
				}
			}
		}
		seen += len(matches)
	}
	if seen != len(rows) {
		t.Fatalf("%s: %d rows reachable, want %d", label, seen, len(rows))
	}
	if tbl.Rows() != len(rows) {
		t.Fatalf("%s: Rows() = %d, want %d", label, tbl.Rows(), len(rows))
	}
	if m, _ := tbl.Lookup(storage.EncodeInt(-12345)); m != nil {
		t.Fatalf("%s: absent key produced %d matches", label, len(m))
	}
}

// TestPartitionedBuildMatchesSerial sweeps sizes and worker counts; small
// morsels force many morsels so the scatter's morsel-order guarantee is
// exercised, not bypassed.
func TestPartitionedBuildMatchesSerial(t *testing.T) {
	for _, n := range []int{0, 1, 100, minPartitionRows, 60_000} {
		rows := genBuild(n, 97, int64(n)+5)
		for _, workers := range []int{1, 2, 4, 8} {
			opt := par.Options{Workers: workers, MorselRows: 2048}
			tbl := Build(rows, 0, 2, opt)
			label := fmt.Sprintf("n=%d workers=%d parts=%d", n, workers, tbl.Partitions())
			if workers > 1 && n >= minPartitionRows && tbl.Partitions() == 1 {
				t.Fatalf("%s: expected a partitioned build", label)
			}
			if workers == 1 && tbl.Partitions() != 1 {
				t.Fatalf("%s: serial build must stay unpartitioned", label)
			}
			assertTableMatchesSerial(t, label, rows, tbl, 0, 2)
		}
	}
}

func flatten(rows [][]storage.Word) []storage.Word {
	var flat []storage.Word
	for _, r := range rows {
		flat = append(flat, r...)
	}
	return flat
}

// TestBuildFlatMatchesSerial: the batch-producer entry point must behave
// identically to Build — including adopting the caller's buffer (no copy)
// on the serial path.
func TestBuildFlatMatchesSerial(t *testing.T) {
	for _, n := range []int{0, 100, minPartitionRows, 50_000} {
		rows := genBuild(n, 53, int64(n)+9)
		for _, workers := range []int{1, 2, 8} {
			opt := par.Options{Workers: workers, MorselRows: 2048}
			flat := flatten(rows)
			tbl := BuildFlat(flat, 0, 2, opt)
			label := fmt.Sprintf("flat n=%d workers=%d parts=%d", n, workers, tbl.Partitions())
			assertTableMatchesSerial(t, label, rows, tbl, 0, 2)
			if workers == 1 && n > 0 {
				if _, got := tbl.Lookup(rows[0][0]); &got[0] != &flat[0] {
					t.Fatalf("%s: serial BuildFlat must adopt the caller's buffer", label)
				}
			}
		}
	}
}

// TestBuildOnPool runs the three build phases on a shared pool.
func TestBuildOnPool(t *testing.T) {
	pool := par.NewPool(4)
	defer pool.Close()
	rows := genBuild(40_000, 1000, 11)
	tbl := Build(rows, 0, 2, par.Options{Pool: pool, MorselRows: 4096})
	assertTableMatchesSerial(t, "pool", rows, tbl, 0, 2)
}

// TestBuildWideRowsNonZeroKey uses a non-leading key column and wider rows.
func TestBuildWideRowsNonZeroKey(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rows := make([][]storage.Word, 20_000)
	for i := range rows {
		rows[i] = []storage.Word{
			storage.EncodeInt(int64(i)),
			storage.EncodeInt(rng.Int63n(31)),
			storage.EncodeInt(rng.Int63()),
			storage.EncodeInt(int64(i % 3)),
		}
	}
	tbl := Build(rows, 1, 4, par.Options{Workers: 4, MorselRows: 1024})
	assertTableMatchesSerial(t, "wide", rows, tbl, 1, 4)
}
