// Package joinpar parallelizes the hash-join build — the second pipeline
// breaker — on the shared morsel scheduler: build rows are radix-
// partitioned by a hash of the join key (parallel histogram over morsels,
// prefix sums, then an order-preserving parallel scatter into cache-sized
// partitions), and the per-partition hash tables are built in parallel,
// since partitions are independent. Probes route by the same radix
// function, so a lookup touches exactly one partition.
//
// Determinism contract: within a partition, rows land in original build
// order (morsel ranges are scattered at offsets ordered by morsel index,
// and a key's rows all hash to one partition), so every key's match list
// enumerates build rows in exactly the order the serial flat-buffer build
// produced — probe outputs are bit-identical to the serial engines'.
package joinpar

import (
	"repro/internal/exec/par"
	"repro/internal/storage"
)

// minPartitionRows is the build size below which partitioning is skipped:
// a small build fits in cache anyway, and the histogram+scatter passes
// would cost more than they save.
const minPartitionRows = 16 << 10

// maxPartitionBits caps the fan-out at 256 partitions; beyond that the
// scatter's per-morsel cursor working set stops fitting in L1.
const maxPartitionBits = 8

// hashMul is the Fibonacci multiplier; the top bits of k*hashMul
// distribute well even for sequential keys.
const hashMul storage.Word = 0x9E3779B97F4A7C15

// Table is a (possibly radix-partitioned) hash-join build side. A Table is
// immutable after Build and safe for concurrent probes.
type Table struct {
	width int
	shift uint // 64 - partition bits; 64 selects partition 0 for every key
	parts []part
}

// part holds one partition's build rows (flat, row-major, stride width)
// and its key → local row index table.
type part struct {
	build []storage.Word
	table map[storage.Word][]int32
}

// source abstracts how build rows are addressed, so the slice-of-rows
// (jit) and flat-buffer (vector) producers share one partitioning
// pipeline. buildFrom instantiates per concrete type, keeping the hot
// loops devirtualized.
type source interface {
	keyAt(i int) storage.Word
	rowAt(i int) []storage.Word
}

type sliceSrc struct {
	rows [][]storage.Word
	key  int
}

func (s sliceSrc) keyAt(i int) storage.Word   { return s.rows[i][s.key] }
func (s sliceSrc) rowAt(i int) []storage.Word { return s.rows[i] }

type flatSrc struct {
	flat       []storage.Word
	key, width int
}

func (s flatSrc) keyAt(i int) storage.Word   { return s.flat[i*s.width+s.key] }
func (s flatSrc) rowAt(i int) []storage.Word { return s.flat[i*s.width : (i+1)*s.width] }

// Build constructs the join table over materialized build rows. key is
// the join-key column, width the row arity. Serial options (or a small
// build) produce a single flat partition — exactly the layout the engines
// built inline before partitioning existed.
func Build(rows [][]storage.Word, key, width int, opt par.Options) *Table {
	return buildFrom(sliceSrc{rows: rows, key: key}, len(rows), key, width, opt)
}

// BuildFlat constructs the join table from an already-flat row-major
// buffer (stride width), the form batch-at-a-time producers assemble
// directly. Serial options adopt the buffer as the single partition
// without copying; parallel options radix-partition out of it.
func BuildFlat(flat []storage.Word, key, width int, opt par.Options) *Table {
	n := 0
	if width > 0 {
		n = len(flat) / width
	}
	if pickBits(n, opt) == 0 {
		t := &Table{width: width, shift: 64, parts: make([]part, 1)}
		p := &t.parts[0]
		p.build = flat
		p.table = make(map[storage.Word][]int32, n)
		for i := 0; i < n; i++ {
			k := flat[i*width+key]
			p.table[k] = append(p.table[k], int32(i))
		}
		return t
	}
	return buildFrom(flatSrc{flat: flat, key: key, width: width}, n, key, width, opt)
}

// buildFrom is the shared pipeline: serial fallback, or histogram →
// prefix sums → order-preserving scatter → per-partition tables.
func buildFrom[S source](src S, n, key, width int, opt par.Options) *Table {
	bits := pickBits(n, opt)
	if bits == 0 {
		t := &Table{width: width, shift: 64, parts: make([]part, 1)}
		p := &t.parts[0]
		p.build = make([]storage.Word, 0, n*width)
		p.table = make(map[storage.Word][]int32, n)
		for i := 0; i < n; i++ {
			p.build = append(p.build, src.rowAt(i)...)
			k := src.keyAt(i)
			p.table[k] = append(p.table[k], int32(i))
		}
		return t
	}

	P := 1 << bits
	shift := uint(64 - bits)
	t := &Table{width: width, shift: shift, parts: make([]part, P)}
	morsels := opt.Morsels(n)

	// Phase 1: per-morsel histograms (workers own disjoint count ranges).
	counts := make([]int32, morsels*P)
	par.Run(n, opt, func(_, m, lo, hi int) {
		c := counts[m*P : (m+1)*P]
		for i := lo; i < hi; i++ {
			c[(src.keyAt(i)*hashMul)>>shift]++
		}
	})

	// Prefix sums: offsets[m*P+p] is morsel m's first slot in partition p.
	// Ordering offsets by morsel index is what preserves original row
	// order inside each partition.
	offsets := make([]int32, morsels*P)
	for p := 0; p < P; p++ {
		var acc int32
		for m := 0; m < morsels; m++ {
			offsets[m*P+p] = acc
			acc += counts[m*P+p]
		}
		t.parts[p].build = make([]storage.Word, int(acc)*width)
	}

	// Phase 2: scatter. Each morsel advances its own offset cursors, so
	// workers write disjoint slots of the shared partition buffers.
	par.Run(n, opt, func(_, m, lo, hi int) {
		cur := offsets[m*P : (m+1)*P]
		for i := lo; i < hi; i++ {
			row := src.rowAt(i)
			p := (row[key] * hashMul) >> shift
			copy(t.parts[p].build[int(cur[p])*width:], row)
			cur[p]++
		}
	})

	// Phase 3: per-partition tables, one partition per scheduler unit
	// (partitions are independent).
	par.Run(P, par.Options{Workers: opt.Workers, MorselRows: 1, Pool: opt.Pool}, func(_, p, _, _ int) {
		pt := &t.parts[p]
		rowsIn := len(pt.build) / width
		tbl := make(map[storage.Word][]int32, rowsIn)
		for i := 0; i < rowsIn; i++ {
			k := pt.build[i*width+key]
			tbl[k] = append(tbl[k], int32(i))
		}
		pt.table = tbl
	})
	return t
}

// pickBits sizes the radix fan-out: zero (one flat partition) for serial
// execution or small builds, otherwise roughly 4 partitions per worker so
// the per-partition table builds load-balance, capped at 2^8.
func pickBits(n int, opt par.Options) int {
	if !opt.Parallel() || n < minPartitionRows {
		return 0
	}
	target := 4 * opt.WorkerCount()
	bits := 3
	for 1<<bits < target && bits < maxPartitionBits {
		bits++
	}
	return bits
}

// Lookup returns the match list for a key and the flat build buffer the
// matches index into (stride = the build arity). The compiler keeps this
// small enough to inline into the engines' probe loops.
func (t *Table) Lookup(k storage.Word) ([]int32, []storage.Word) {
	p := &t.parts[(k*hashMul)>>t.shift]
	return p.table[k], p.build
}

// Width returns the build-row arity.
func (t *Table) Width() int { return t.width }

// Partitions returns the radix fan-out (1 = unpartitioned).
func (t *Table) Partitions() int { return len(t.parts) }

// Rows returns the total number of build rows across partitions.
func (t *Table) Rows() int {
	if t.width == 0 {
		return 0
	}
	n := 0
	for i := range t.parts {
		n += len(t.parts[i].build)
	}
	return n / t.width
}
