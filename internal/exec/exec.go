// Package exec holds the execution-engine interface and the helpers shared
// by all engines: insert execution with index maintenance, index-access
// planning for scans, sorting, and group-key encoding. The four engines in
// the subpackages differ deliberately in their per-tuple control flow —
// that difference is the paper's subject — but share these
// semantics-defining pieces so differential tests compare like with like.
package exec

import (
	"sort"

	"repro/internal/exec/result"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/storage"
)

// Engine executes logical plans against a catalog.
type Engine interface {
	Name() string
	Run(n plan.Node, c *plan.Catalog) *result.Set
}

// RunInsert appends the tuples of v to the table and maintains every
// registered index; all engines share this path (the paper's Q6
// measurements differ only in the scan-side processing model).
func RunInsert(v plan.Insert, c *plan.Catalog) *result.Set {
	rel := c.Table(v.Table)
	for _, row := range v.Rows {
		id := rel.AppendRow(row)
		for attr := 0; attr < rel.Schema.Width(); attr++ {
			if idx := c.Index(v.Table, attr); idx != nil {
				idx.Insert(row[attr], int32(id))
			}
		}
	}
	out := result.New(plan.Output(v, c))
	out.Append([]storage.Word{storage.EncodeInt(int64(len(v.Rows)))})
	return out
}

// IndexAccess describes an index-satisfiable scan: the equality key on an
// indexed attribute and the residual predicate to apply to fetched rows.
type IndexAccess struct {
	Attr int
	Key  storage.Word
	Rest expr.Pred
}

// PlanIndexAccess inspects a scan filter and returns an index access path
// if the filter is an equality (or a conjunction containing one) on an
// attribute with a registered index. This is the whole "planner": the
// paper's index experiments toggle index use by registering or omitting
// indexes in the catalog.
func PlanIndexAccess(c *plan.Catalog, table string, filter expr.Pred) (IndexAccess, bool) {
	switch v := filter.(type) {
	case expr.Cmp:
		if v.Op == expr.Eq && c.Index(table, v.Attr) != nil {
			return IndexAccess{Attr: v.Attr, Key: v.Val, Rest: nil}, true
		}
	case expr.And:
		for i, child := range v.Preds {
			cmp, ok := child.(expr.Cmp)
			if !ok || cmp.Op != expr.Eq || c.Index(table, cmp.Attr) == nil {
				continue
			}
			rest := make([]expr.Pred, 0, len(v.Preds)-1)
			rest = append(rest, v.Preds[:i]...)
			rest = append(rest, v.Preds[i+1:]...)
			return IndexAccess{Attr: cmp.Attr, Key: cmp.Val, Rest: expr.Conj(rest...)}, true
		}
	}
	return IndexAccess{}, false
}

// SortRows orders rows in place by the sort keys (encoded words are
// order-preserving for every type). The serial baseline engines (volcano,
// bulk, hyrise) sort through it; jit and vector use sortpar.Sort, whose
// output is bit-identical — equal-key order included — for any worker
// count.
func SortRows(rows [][]storage.Word, keys []plan.SortKey) {
	sort.SliceStable(rows, func(i, j int) bool {
		for _, k := range keys {
			a, b := rows[i][k.Pos], rows[j][k.Pos]
			if a == b {
				continue
			}
			if k.Desc {
				return a > b
			}
			return a < b
		}
		return false
	})
}

// MaxGroupCols bounds the group-by arity of the fixed-size group key.
// It aliases plan.MaxGroupCols, which plan.Check enforces, so validated
// plans can never overrun the key array.
const MaxGroupCols = plan.MaxGroupCols

// GroupKey is a fixed-size composite key for hash aggregation.
type GroupKey [MaxGroupCols]storage.Word

// MakeGroupKey builds the composite key from the group columns of a row.
func MakeGroupKey(row []storage.Word, groupBy []int) GroupKey {
	var k GroupKey
	for i, g := range groupBy {
		k[i] = row[g]
	}
	return k
}
