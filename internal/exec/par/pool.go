package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Pool is a process-wide morsel scheduler shared by concurrent queries.
// Where the per-query path of Run spins up workers for one scan and tears
// them down again, a Pool keeps a fixed set of worker goroutines alive and
// multiplexes every submitted job (one job = one parallel scan) across
// them: workers claim morsels from the active jobs in round-robin order,
// so two queries submitted together each make progress instead of the
// first monopolizing the machine until it finishes.
//
// The determinism contract of Run is unchanged under a Pool: morsels are
// still numbered in row order and callers still merge per-morsel output
// buffers in morsel order, so which worker runs which morsel — and how
// jobs interleave — never shows up in results.
//
// A Pool is safe for concurrent use. Jobs must not submit nested jobs to
// the same pool from inside a morsel body (the submitting worker would
// block waiting for capacity it itself provides); the engines never do —
// build sides execute on the caller's goroutine at compile time.
type Pool struct {
	workers int

	mu   sync.Mutex
	cond *sync.Cond
	jobs []*job // jobs with unclaimed morsels, in submission order
	rr   int    // round-robin cursor over jobs

	// busy accumulates per-worker nanoseconds spent inside morsel bodies
	// — the utilization signal /metrics exposes. Padded so neighboring
	// workers' counters never share a cache line.
	busy []paddedNanos

	closed bool
	wg     sync.WaitGroup
}

type paddedNanos struct {
	v atomic.Int64
	_ [7]int64
}

// job is one Run call executing on a pool: a morsel range plus completion
// tracking. next and pending are guarded by the pool mutex; claiming a
// morsel under the lock costs nanoseconds against the tens of microseconds
// a 64K-row morsel takes to scan.
type job struct {
	n          int
	morselRows int
	morsels    int
	next       int // next unclaimed morsel
	pending    int // claimed-but-unfinished + unclaimed morsels
	body       func(worker, morsel, lo, hi int)
	done       chan struct{}
	panicOnce  sync.Once
	panicked   any
}

// NewPool starts a pool of n worker goroutines (n <= 0 means GOMAXPROCS).
// The pool runs until Close.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: n, busy: make([]paddedNanos, n)}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(n)
	for w := 0; w < n; w++ {
		go p.work(w)
	}
	return p
}

// Workers returns the pool's worker count. Worker ids passed to job bodies
// are in [0, Workers()).
func (p *Pool) Workers() int { return p.workers }

// BusyNanos snapshots the per-worker busy time: nanoseconds each worker
// has spent executing morsel bodies since the pool started. Combined
// with wall time, the deltas give pool utilization.
func (p *Pool) BusyNanos() []int64 {
	out := make([]int64, len(p.busy))
	for i := range p.busy {
		out[i] = p.busy[i].v.Load()
	}
	return out
}

// Close drains the remaining jobs and stops the workers. Run calls racing
// with (or after) Close fall back to inline serial execution, so shutdown
// is safe while queries are still arriving.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}

// work is one worker's loop: pick the round-robin next job, claim its next
// morsel, run it. A job leaves the active list when its last morsel is
// claimed; it completes when the last claimed morsel finishes.
func (p *Pool) work(id int) {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.jobs) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.jobs) == 0 {
			p.mu.Unlock()
			return
		}
		if p.rr >= len(p.jobs) {
			p.rr = 0
		}
		j := p.jobs[p.rr]
		m := j.next
		j.next++
		if j.next >= j.morsels {
			p.jobs = append(p.jobs[:p.rr], p.jobs[p.rr+1:]...)
		} else {
			p.rr++
		}
		p.mu.Unlock()
		p.runMorsel(j, id, m)
	}
}

// runMorsel executes one claimed morsel and settles the job's completion
// accounting, capturing the first panic for re-raising on the submitter.
func (p *Pool) runMorsel(j *job, worker, m int) {
	start := time.Now()
	defer func() {
		p.busy[worker].v.Add(time.Since(start).Nanoseconds())
		if r := recover(); r != nil {
			j.panicOnce.Do(func() { j.panicked = r })
		}
		p.mu.Lock()
		j.pending--
		last := j.pending == 0
		p.mu.Unlock()
		if last {
			close(j.done)
		}
	}()
	lo := m * j.morselRows
	hi := lo + j.morselRows
	if hi > j.n {
		hi = j.n
	}
	j.body(worker, m, lo, hi)
}

// submit runs body over [0, n) on the pool and blocks until every morsel
// has finished. A panic in body is re-raised here, on the submitter.
func (p *Pool) submit(n, morselRows, morsels int, body func(worker, morsel, lo, hi int)) {
	j := &job{
		n: n, morselRows: morselRows, morsels: morsels,
		pending: morsels, body: body, done: make(chan struct{}),
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		runSerial(n, morselRows, morsels, body)
		return
	}
	p.jobs = append(p.jobs, j)
	p.mu.Unlock()
	p.cond.Broadcast()
	<-j.done
	if j.panicked != nil {
		panic(j.panicked)
	}
}
