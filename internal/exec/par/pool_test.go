package par

import (
	"sync"
	"testing"
	"time"
)

// TestPoolRunCoversAllMorsels checks that pool-backed Run visits every row
// exactly once with in-range worker ids.
func TestPoolRunCoversAllMorsels(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	opt := Options{Pool: pool, MorselRows: 128}

	const n = 10_000
	var mu sync.Mutex
	seen := make([]int, n)
	Run(n, opt, func(worker, morsel, lo, hi int) {
		if worker < 0 || worker >= pool.Workers() {
			t.Errorf("worker id %d out of range [0,%d)", worker, pool.Workers())
		}
		mu.Lock()
		for r := lo; r < hi; r++ {
			seen[r]++
		}
		mu.Unlock()
	})
	for r, c := range seen {
		if c != 1 {
			t.Fatalf("row %d visited %d times", r, c)
		}
	}
}

// TestPoolConcurrentJobs submits many jobs from concurrent goroutines —
// the service's steady state — and checks each job's coverage is exact.
func TestPoolConcurrentJobs(t *testing.T) {
	pool := NewPool(3)
	defer pool.Close()

	const jobs, n = 16, 4_096
	var wg sync.WaitGroup
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var mu sync.Mutex
			sum := 0
			Run(n, Options{Pool: pool, MorselRows: 64}, func(_, _, lo, hi int) {
				s := 0
				for r := lo; r < hi; r++ {
					s += r
				}
				mu.Lock()
				sum += s
				mu.Unlock()
			})
			if want := n * (n - 1) / 2; sum != want {
				t.Errorf("job sum = %d, want %d", sum, want)
			}
		}()
	}
	wg.Wait()
}

// TestPoolRoundRobinFairness pins the scheduling order with a single
// worker: while job A is mid-flight, job B arrives, and the worker must
// alternate between the two instead of draining A first. It drives the
// pool's scheduler directly through submit — Run would (correctly)
// collapse a one-worker pool onto the inline serial path.
func TestPoolRoundRobinFairness(t *testing.T) {
	pool := NewPool(1)
	defer pool.Close()

	var mu sync.Mutex
	var order []string
	record := func(tag string) {
		mu.Lock()
		order = append(order, tag)
		mu.Unlock()
	}

	inFirst := make(chan struct{}) // A's first morsel has started
	gate := make(chan struct{})    // holds A's first morsel open
	aDone := make(chan struct{})
	bDone := make(chan struct{})

	go func() {
		defer close(aDone)
		first := true
		pool.submit(4, 1, 4, func(_, _, _, _ int) {
			if first {
				first = false
				close(inFirst)
				<-gate
			}
			record("A")
		})
	}()
	<-inFirst
	go func() {
		defer close(bDone)
		pool.submit(2, 1, 2, func(_, _, _, _ int) {
			record("B")
		})
	}()
	// Wait until B is actually on the active list (A is still there too:
	// three of its morsels are unclaimed) before letting the worker out of
	// A's first morsel; from then on it must alternate between the jobs.
	for {
		pool.mu.Lock()
		queued := len(pool.jobs)
		pool.mu.Unlock()
		if queued == 2 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	<-aDone
	<-bDone

	// Round-robin order with one worker: A0 B0 A1 B1 A2 A3 — both B
	// morsels must complete before A's last one.
	lastB := -1
	lastA := -1
	for i, tag := range order {
		if tag == "B" {
			lastB = i
		} else {
			lastA = i
		}
	}
	if lastB == -1 || lastA == -1 || lastB > lastA {
		t.Fatalf("no round-robin interleaving: order = %v", order)
	}
}

// TestPoolPanicPropagates checks a panicking body re-raises on the
// submitting goroutine, not a pool worker, and the pool stays usable.
func TestPoolPanicPropagates(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	opt := Options{Pool: pool, MorselRows: 8}

	func() {
		defer func() {
			if r := recover(); r != "boom" {
				t.Fatalf("recovered %v, want boom", r)
			}
		}()
		Run(64, opt, func(_, m, _, _ int) {
			if m == 3 {
				panic("boom")
			}
		})
		t.Fatal("Run returned without panicking")
	}()

	// Pool survives: a fresh job still runs to completion.
	count := 0
	var mu sync.Mutex
	Run(64, opt, func(_, _, lo, hi int) {
		mu.Lock()
		count += hi - lo
		mu.Unlock()
	})
	if count != 64 {
		t.Fatalf("post-panic job covered %d rows, want 64", count)
	}
}

// TestPoolClosedFallsBackInline checks Run on a closed pool degrades to
// the serial inline path instead of hanging.
func TestPoolClosedFallsBackInline(t *testing.T) {
	pool := NewPool(2)
	pool.Close()

	count := 0
	Run(1_000, Options{Pool: pool, MorselRows: 100}, func(worker, _, lo, hi int) {
		if worker != 0 {
			t.Errorf("inline fallback used worker %d", worker)
		}
		count += hi - lo // no mutex: must be single-goroutine
	})
	if count != 1_000 {
		t.Fatalf("covered %d rows, want 1000", count)
	}
}

// TestPoolSingleMorselRunsInline checks that a job too small to split
// never pays the pool round-trip.
func TestPoolSingleMorselRunsInline(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()

	calls := 0
	Run(10, Options{Pool: pool, MorselRows: 64}, func(worker, morsel, lo, hi int) {
		calls++ // unsynchronized on purpose: must run on this goroutine
		if worker != 0 || morsel != 0 || lo != 0 || hi != 10 {
			t.Errorf("got worker=%d morsel=%d range=[%d,%d)", worker, morsel, lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("body ran %d times, want 1", calls)
	}
}
