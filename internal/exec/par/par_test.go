package par

import (
	"runtime"
	"sync"
	"testing"
)

// TestRunCoversAllRowsExactlyOnce: the morsel ranges partition [0, n) for
// awkward sizes (not multiples of the morsel, smaller than one morsel,
// empty).
func TestRunCoversAllRowsExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 4096, 4097, 100_000} {
		for _, workers := range []int{1, 2, 3, 8} {
			opt := Options{Workers: workers, MorselRows: 4096}
			var mu sync.Mutex
			seen := make([]int, n)
			morsels := map[int]bool{}
			Run(n, opt, func(worker, morsel, lo, hi int) {
				if worker < 0 || worker >= opt.WorkerCount() {
					t.Errorf("worker id %d out of range", worker)
				}
				mu.Lock()
				if morsels[morsel] {
					t.Errorf("morsel %d claimed twice", morsel)
				}
				morsels[morsel] = true
				for r := lo; r < hi; r++ {
					seen[r]++
				}
				mu.Unlock()
			})
			for r, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d workers=%d: row %d processed %d times", n, workers, r, c)
				}
			}
			if len(morsels) != opt.Morsels(n) {
				t.Fatalf("n=%d workers=%d: %d morsels ran, want %d", n, workers, len(morsels), opt.Morsels(n))
			}
		}
	}
}

// TestMorselIndexMatchesRange: morsel i must always be the range starting
// at i*MorselRows — the invariant the deterministic output merge rests on.
func TestMorselIndexMatchesRange(t *testing.T) {
	opt := Options{Workers: 4, MorselRows: 1000}
	Run(10_500, opt, func(_, morsel, lo, hi int) {
		if lo != morsel*1000 {
			t.Errorf("morsel %d starts at %d, want %d", morsel, lo, morsel*1000)
		}
		if hi != lo+1000 && hi != 10_500 {
			t.Errorf("morsel %d ends at %d", morsel, hi)
		}
	})
}

func TestWorkerCountDefaults(t *testing.T) {
	if got := (Options{}).WorkerCount(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("zero options workers = %d, want GOMAXPROCS", got)
	}
	if got := Serial().WorkerCount(); got != 1 {
		t.Errorf("Serial workers = %d, want 1", got)
	}
	if Serial().Parallel() {
		t.Error("Serial must not report parallel")
	}
	if !(Options{Workers: 2}).Parallel() {
		t.Error("two workers must report parallel")
	}
}

func TestMorselsOf(t *testing.T) {
	opt := Options{MorselRows: 100}
	cases := map[int]int{0: 0, 1: 1, 99: 1, 100: 1, 101: 2, 1000: 10}
	for n, want := range cases {
		if got := opt.Morsels(n); got != want {
			t.Errorf("Morsels(%d) = %d, want %d", n, got, want)
		}
	}
}

// TestPanicPropagates: a panic inside a worker must surface on the caller,
// not crash the process from a goroutine.
func TestPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("worker panic did not propagate")
		}
	}()
	Run(10_000, Options{Workers: 4, MorselRows: 100}, func(_, morsel, _, _ int) {
		if morsel == 7 {
			panic("boom")
		}
	})
}
