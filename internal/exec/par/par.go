// Package par is the morsel-driven parallel scan scheduler shared by the
// execution engines (Leis et al., SIGMOD '14, adapted NUMA-agnostically):
// a scan over n rows is split into fixed-size row-range morsels, and a
// pool of workers claims morsels through a shared atomic cursor. The
// cursor is the work-stealing mechanism — a worker that finishes its
// morsel early simply claims the next one, so skew in per-morsel
// selectivity or emit volume balances itself without per-worker queues.
//
// Determinism contract: morsels are numbered in row order, and every
// engine that emits rows buffers each morsel's output separately and
// concatenates the buffers in morsel order. Parallel execution therefore
// produces row-for-row the same result as the serial loop, which the
// differential tests assert for every engine and layout.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultMorselRows is the scheduler's morsel granularity: large enough
// that claiming a morsel (one atomic add) is negligible against scanning
// it, small enough that work-stealing balances selective scans.
const DefaultMorselRows = 64 * 1024

// Options configures parallel execution. The zero value means "use every
// core": engines treat Workers <= 0 as GOMAXPROCS. Workers == 1 selects
// the serial path, which all engines retain unchanged.
//
// When Pool is set, Run dispatches morsels to that shared pool instead of
// spawning per-call goroutines, and the pool's size overrides Workers —
// worker ids seen by bodies are pool-wide, so per-worker state sized by
// WorkerCount stays correct.
type Options struct {
	Workers    int   // worker goroutines; 0 = GOMAXPROCS, 1 = serial
	MorselRows int   // rows per morsel; 0 = DefaultMorselRows
	Pool       *Pool // shared worker pool; nil = per-call goroutines
}

// Serial returns the options of single-threaded execution.
func Serial() Options { return Options{Workers: 1} }

// WithPool returns options that execute on a shared pool.
func WithPool(p *Pool) Options { return Options{Pool: p} }

// WorkerCount resolves the worker knob against the machine.
func (o Options) WorkerCount() int {
	if o.Pool != nil {
		return o.Pool.Workers()
	}
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Parallel reports whether the options select the parallel path.
func (o Options) Parallel() bool { return o.WorkerCount() > 1 }

func (o Options) morselRows() int {
	if o.MorselRows > 0 {
		return o.MorselRows
	}
	return DefaultMorselRows
}

// Morsels returns the number of morsels covering n rows — the slot count
// for per-morsel output buffers merged in morsel order.
func (o Options) Morsels(n int) int {
	if n <= 0 {
		return 0
	}
	m := o.morselRows()
	return (n + m - 1) / m
}

// ExpectedWorker returns the worker a static block partitioning of
// morsels across workers would assign morsel m to — the reference
// assignment the tracing layer compares claims against: a morsel claimed
// by a different worker than its static owner counts as stolen. The
// scheduler itself never consults this; stealing is implicit in the
// shared cursor.
func ExpectedWorker(morsel, morsels, workers int) int {
	if workers <= 1 || morsels <= 0 {
		return 0
	}
	per := (morsels + workers - 1) / workers
	w := morsel / per
	if w >= workers {
		w = workers - 1
	}
	return w
}

// Run partitions [0, n) into morsels and processes them with a worker
// pool. body is called once per morsel with the claiming worker's id
// (0 <= worker < WorkerCount), the morsel's index in row order, and the
// morsel's row range [lo, hi). When a single worker (or a single morsel)
// makes goroutines pointless, body runs on the calling goroutine. A panic
// in body is re-raised on the caller.
func Run(n int, opt Options, body func(worker, morsel, lo, hi int)) {
	if n <= 0 {
		return
	}
	m := opt.morselRows()
	morsels := opt.Morsels(n)
	workers := opt.WorkerCount()
	if workers > morsels {
		workers = morsels
	}
	if workers <= 1 {
		runSerial(n, m, morsels, body)
		return
	}
	if opt.Pool != nil {
		opt.Pool.submit(n, m, morsels, body)
		return
	}

	var cursor atomic.Int64
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicked any
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= morsels {
					return
				}
				lo := i * m
				hi := lo + m
				if hi > n {
					hi = n
				}
				body(worker, i, lo, hi)
			}
		}(w)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// runSerial is the inline fallback shared by the single-worker path and a
// closed pool: every morsel runs on the calling goroutine as worker 0.
func runSerial(n, morselRows, morsels int, body func(worker, morsel, lo, hi int)) {
	for i := 0; i < morsels; i++ {
		lo := i * morselRows
		hi := lo + morselRows
		if hi > n {
			hi = n
		}
		body(0, i, lo, hi)
	}
}
