package vector

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/storage"
)

// The cross-engine differential suite (package exec) covers semantics;
// these tests pin batch-boundary behaviour: exact BatchSize multiples,
// limits that cut inside a batch, and selection vectors that empty whole
// batches.

func vecCatalog(rows int) *plan.Catalog {
	schema := storage.NewSchema("v",
		storage.Attribute{Name: "id", Type: storage.Int64},
		storage.Attribute{Name: "val", Type: storage.Int64},
	)
	b := storage.NewBuilder(schema)
	ids := make([]int64, rows)
	vals := make([]int64, rows)
	for i := range ids {
		ids[i] = int64(i)
		vals[i] = int64(i % 7)
	}
	b.SetInts(0, ids).SetInts(1, vals)
	return plan.NewCatalog().Add(b.Build(storage.DSM(2)))
}

func TestBatchBoundaryExactMultiple(t *testing.T) {
	for _, rows := range []int{BatchSize, 2 * BatchSize, 2*BatchSize + 1, BatchSize - 1, 1} {
		cat := vecCatalog(rows)
		res := New().Run(plan.Scan{Table: "v", Cols: []int{0}}, cat)
		if res.Len() != rows {
			t.Errorf("rows=%d: scan returned %d", rows, res.Len())
		}
	}
}

func TestLimitCutsInsideBatch(t *testing.T) {
	cat := vecCatalog(3 * BatchSize)
	res := New().Run(plan.Limit{N: BatchSize + 17, Child: plan.Scan{Table: "v", Cols: []int{0}}}, cat)
	if res.Len() != BatchSize+17 {
		t.Fatalf("limit returned %d rows, want %d", res.Len(), BatchSize+17)
	}
}

func TestEmptyBatchesAreSkipped(t *testing.T) {
	// Only the very last tuple matches: every earlier batch's selection
	// vector is empty and must not surface as a zero-length batch.
	rows := 2*BatchSize + 5
	cat := vecCatalog(rows)
	res := New().Run(plan.Scan{
		Table:  "v",
		Filter: expr.Cmp{Attr: 0, Op: expr.Eq, Val: storage.EncodeInt(int64(rows - 1))},
		Cols:   []int{0, 1},
	}, cat)
	if res.Len() != 1 {
		t.Fatalf("got %d rows, want 1", res.Len())
	}
	if storage.DecodeInt(res.Rows[0][0]) != int64(rows-1) {
		t.Fatal("wrong tuple survived")
	}
}

func TestBatchReuseDoesNotCorruptConsumers(t *testing.T) {
	// Sort materializes everything; since scan batches reuse buffers, the
	// materialization must copy. Descending sort of ids exposes stale
	// buffers immediately.
	rows := 2 * BatchSize
	cat := vecCatalog(rows)
	res := New().Run(plan.Sort{
		Child: plan.Scan{Table: "v", Cols: []int{0}},
		Keys:  []plan.SortKey{{Pos: 0, Desc: true}},
	}, cat)
	for i := 0; i < 5; i++ {
		want := int64(rows - 1 - i)
		if got := storage.DecodeInt(res.Rows[i][0]); got != want {
			t.Fatalf("row %d = %d, want %d (buffer aliasing?)", i, got, want)
		}
	}
}

func TestGroupCountsSumToInput(t *testing.T) {
	rows := 3*BatchSize + 123
	cat := vecCatalog(rows)
	res := New().Run(plan.Aggregate{
		Child:   plan.Scan{Table: "v", Cols: []int{1}},
		GroupBy: []int{0},
		Aggs:    []expr.AggSpec{{Kind: expr.Count, Name: "n"}},
	}, cat)
	if res.Len() != 7 {
		t.Fatalf("groups = %d, want 7", res.Len())
	}
	var total int64
	for _, row := range res.Rows {
		total += storage.DecodeInt(row[1])
	}
	if total != int64(rows) {
		t.Fatalf("counts sum to %d, want %d", total, rows)
	}
}
