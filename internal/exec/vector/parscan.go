package vector

import (
	"time"

	"repro/internal/exec/par"
	"repro/internal/exec/result"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/storage"
)

// parScanIt is the morsel-parallel base-table scan: the morsel scheduler
// materializes every morsel's surviving batches up front (selection and
// gather run exactly as in the serial scanIt, per worker), and next()
// serves the batches in morsel order. Because morsels are numbered in row
// order, the emitted row order is identical to the serial scan's; only
// batch boundaries may differ, which no consumer observes. The cost of
// parallelism is that the scan output is materialized instead of
// streamed — batch columns are carved from per-worker arenas to keep that
// materialization to one allocation per arena chunk.
type parScanIt struct {
	slots  [][]batch
	mi, bi int
}

// scanWorker is one worker's scratch state: a reused selection vector and
// the arena backing the batches it materializes.
type scanWorker struct {
	sel   []int32
	arena result.Arena
}

func newParScan(rel *storage.Relation, filter expr.Pred, cols []int, opt par.Options) *parScanIt {
	return newParScanTraced(rel, filter, cols, opt, nil)
}

// newParScanTraced is newParScan with an optional armed trace op: each
// morsel's wall time, surviving rows and steal classification land in the
// claiming worker's lane. A nil op adds one branch per morsel, nothing
// per row.
func newParScanTraced(rel *storage.Relation, filter expr.Pred, cols []int, opt par.Options, op *obs.OpTrace) *parScanIt {
	n := rel.Rows()
	conjs := conjuncts(filter)
	slots := make([][]batch, opt.Morsels(n))
	pool := make([]*scanWorker, opt.WorkerCount())
	morsels, workers := opt.Morsels(n), opt.WorkerCount()
	par.Run(n, opt, func(w, m, lo, hi int) {
		var start time.Time
		if op != nil {
			start = time.Now()
		}
		ws := pool[w]
		if ws == nil {
			ws = &scanWorker{sel: make([]int32, 0, BatchSize)}
			pool[w] = ws
		}
		var out []batch
		for pos := lo; pos < hi; {
			bhi := pos + BatchSize
			if bhi > hi {
				bhi = hi
			}
			ws.sel = ws.sel[:0]
			if len(conjs) == 0 {
				for r := pos; r < bhi; r++ {
					ws.sel = append(ws.sel, int32(r))
				}
			} else {
				first := true
				for _, conj := range conjs {
					ws.sel = applyConj(rel, conj, ws.sel, first, pos, bhi)
					first = false
				}
			}
			pos = bhi
			if len(ws.sel) == 0 {
				continue
			}
			b := batch{cols: make([][]storage.Word, len(cols)), n: len(ws.sel)}
			for i, attr := range cols {
				a := rel.Access(attr)
				dst := ws.arena.NewRow(len(ws.sel))
				for j, r := range ws.sel {
					dst[j] = a.Data[int(r)*a.Stride+a.Off]
				}
				b.cols[i] = dst
			}
			out = append(out, b)
		}
		slots[m] = out
		if op != nil {
			var emitted int64
			for _, b := range out {
				emitted += int64(b.n)
			}
			if l := op.Lane(w); l != nil {
				l.Rows += emitted
				l.Nanos += time.Since(start).Nanoseconds()
				l.Morsels++
				if par.ExpectedWorker(m, morsels, workers) != w {
					l.Stolen++
				}
			}
		}
	})
	return &parScanIt{slots: slots}
}

func (s *parScanIt) next() (batch, bool) {
	for s.mi < len(s.slots) {
		if s.bi < len(s.slots[s.mi]) {
			b := s.slots[s.mi][s.bi]
			s.bi++
			return b, true
		}
		s.mi++
		s.bi = 0
	}
	return batch{}, false
}
