package vector

import (
	"fmt"
	"time"

	"repro/internal/exec"
	"repro/internal/exec/par"
	"repro/internal/exec/result"
	"repro/internal/exec/sortpar"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/storage"
)

// The vector engine's trace is a decorator tree: RunTraced builds the same
// iterators as Run and interposes a tracedIt per streaming operator, so the
// disarmed Run path constructs exactly what it constructed before. Iterator
// time is inclusive — a decorator measures its child's next() inside its
// own — mirroring how the jit trace attributes a fused loop's time to every
// operator in it. Eager breakers (join build, group-by, sort, top-N) do all
// their work in the constructor; their op records that construction drain,
// and only a rows-in feed wraps the materialized stream they serve from.

// RunTraced executes the plan like Run while accounting every operator in
// the returned trace.
func (e Engine) RunTraced(n plan.Node, c *plan.Catalog) (*result.Set, *obs.QueryTrace) {
	tr := obs.NewTrace(nil, e.opt.WorkerCount())
	if ins, ok := n.(plan.Insert); ok {
		op := tr.AddOp(obs.OpProto{Op: "insert", Detail: "table=" + ins.Table})
		start := time.Now()
		res := exec.RunInsert(ins, c)
		op.Add(int64(len(ins.Rows)), int64(res.Len()), time.Since(start).Nanoseconds())
		return res, tr
	}
	out := result.New(plan.Output(n, c))
	it := buildTraced(n, c, e.opt, tr, nil, 0)
	for {
		b, ok := it.next()
		if !ok {
			break
		}
		for r := 0; r < b.n; r++ {
			row := out.NewRow()
			for i, col := range b.cols {
				row[i] = col[r]
			}
		}
	}
	return out, tr
}

// tracedIt decorates one streaming iterator: op accumulates the decorated
// operator's output rows and inclusive next() time, parent (the consuming
// operator) its input rows. Either may be nil.
type tracedIt struct {
	child  biter
	op     *obs.OpTrace
	parent *obs.OpTrace
}

func (t *tracedIt) next() (batch, bool) {
	start := time.Now()
	b, ok := t.child.next()
	t.op.Add(0, int64(b.n), time.Since(start).Nanoseconds())
	if ok {
		t.parent.Add(int64(b.n), 0, 0)
	}
	return b, ok
}

// buildTraced mirrors build, registering ops in plan pre-order. parent is
// the consuming operator's accumulator (nil at the root).
func buildTraced(n plan.Node, c *plan.Catalog, opt par.Options, tr *obs.QueryTrace, parent *obs.OpTrace, depth int) biter {
	switch v := n.(type) {
	case plan.Scan:
		if acc, ok := exec.PlanIndexAccess(c, v.Table, v.Filter); ok {
			op := tr.AddOp(obs.OpProto{Op: "scan", Detail: "table=" + v.Table + " index", Depth: depth})
			rel := c.Table(v.Table)
			rows := c.Index(v.Table, acc.Attr).Lookup(acc.Key, nil)
			op.Add(int64(len(rows)), 0, 0)
			it := &indexScan{rel: rel, rows: rows, rest: acc.Rest, cols: v.Cols}
			return &tracedIt{child: it, op: op, parent: parent}
		}
		op := tr.AddOp(obs.OpProto{Op: "scan", Detail: "table=" + v.Table, Depth: depth})
		rel := c.Table(v.Table)
		op.Add(int64(rel.Rows()), 0, 0)
		if opt.Parallel() {
			// The parallel scan materializes in its constructor; its per-
			// worker lanes are filled there and the serve loop is charged
			// through the decorator like any other iterator.
			start := time.Now()
			it := newParScanTraced(rel, v.Filter, v.Cols, opt, op)
			op.Add(0, 0, time.Since(start).Nanoseconds())
			return &tracedIt{child: it, op: op, parent: parent}
		}
		return &tracedIt{child: newScan(rel, v.Filter, v.Cols), op: op, parent: parent}

	case plan.Select:
		op := tr.AddOp(obs.OpProto{Op: "select", Depth: depth})
		child := buildTraced(v.Child, c, opt, tr, op, depth+1)
		return &tracedIt{child: &selectIt{child: child, pred: v.Pred}, op: op, parent: parent}

	case plan.Project:
		op := tr.AddOp(obs.OpProto{Op: "project", Detail: fmt.Sprintf("exprs=%d", len(v.Exprs)), Depth: depth})
		child := buildTraced(v.Child, c, opt, tr, op, depth+1)
		return &tracedIt{child: &projectIt{child: child, exprs: v.Exprs}, op: op, parent: parent}

	case plan.HashJoin:
		probeOp := tr.AddOp(obs.OpProto{Op: "join-probe", Depth: depth})
		buildOp := tr.AddOp(obs.OpProto{Op: "join-build", Depth: depth + 1})
		left := buildTraced(v.Left, c, opt, tr, buildOp, depth+2)
		leftWidth := len(plan.Output(v.Left, c))
		start := time.Now()
		jt, _ := buildSide(left, leftWidth, v.LeftKey, opt)
		var built int64
		if leftWidth > 0 {
			built = int64(jt.Rows())
		}
		buildOp.Add(0, built, time.Since(start).Nanoseconds())
		right := buildTraced(v.Right, c, opt, tr, probeOp, depth+1)
		j := &joinIt{
			right:      right,
			jt:         jt,
			rkey:       v.RightKey,
			leftWidth:  leftWidth,
			rightWidth: len(plan.Output(v.Right, c)),
		}
		return &tracedIt{child: j, op: probeOp, parent: parent}

	case plan.Aggregate:
		op := tr.AddOp(obs.OpProto{
			Op:     "group-by",
			Detail: fmt.Sprintf("groupBy=%d aggs=%d", len(v.GroupBy), len(v.Aggs)),
			Depth:  depth,
		})
		child := buildTraced(v.Child, c, opt, tr, op, depth+1)
		start := time.Now()
		it := newAggFrom(child, v)
		op.Add(0, int64(len(it.rows)), time.Since(start).Nanoseconds())
		return &tracedIt{child: it, parent: parent}

	case plan.Sort:
		op := tr.AddOp(obs.OpProto{Op: "sort", Detail: fmt.Sprintf("keys=%d", len(v.Keys)), Depth: depth})
		child := buildTraced(v.Child, c, opt, tr, op, depth+1)
		start := time.Now()
		it := newMaterialized(child, func(rows [][]storage.Word) [][]storage.Word {
			sortpar.Sort(rows, v.Keys, opt)
			return rows
		})
		op.Add(0, int64(len(it.rows)), time.Since(start).Nanoseconds())
		return &tracedIt{child: it, parent: parent}

	case plan.Limit:
		if srt, ok := v.Child.(plan.Sort); ok {
			op := tr.AddOp(obs.OpProto{
				Op:     "top-n",
				Detail: fmt.Sprintf("k=%d keys=%d", v.N, len(srt.Keys)),
				Depth:  depth,
			})
			child := buildTraced(srt.Child, c, opt, tr, op, depth+1)
			start := time.Now()
			it := newTopN(child, srt.Keys, v.N)
			op.Add(0, int64(len(it.rows)), time.Since(start).Nanoseconds())
			return &tracedIt{child: it, parent: parent}
		}
		op := tr.AddOp(obs.OpProto{Op: "limit", Detail: fmt.Sprintf("n=%d", v.N), Depth: depth})
		child := buildTraced(v.Child, c, opt, tr, op, depth+1)
		return &tracedIt{child: &limitIt{child: child, n: v.N}, op: op, parent: parent}
	}
	panic("vector: unsupported plan node")
}
