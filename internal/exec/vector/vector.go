// Package vector implements the vectorized processing model
// (MonetDB/X100, Zukowski et al. [35]; compared against compilation by
// Sompolski et al. [32], which the paper cites for the
// selectivity-dependent behaviour in Figure 3): operators process
// cache-resident batches of tuples instead of whole columns, so
// intermediate results stay in the CPU cache rather than being fully
// materialized, while the per-batch primitive loops amortize the
// interpretation overhead over ~1k tuples.
//
// This engine is not one of the paper's three measured models — the paper
// discusses it as related work — and is provided for the ablation
// benchmarks (vectorization vs. compilation) and as a fifth differential
// witness for the correctness suite.
package vector

import (
	"repro/internal/exec"
	"repro/internal/exec/joinpar"
	"repro/internal/exec/par"
	"repro/internal/exec/result"
	"repro/internal/exec/sortpar"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/storage"
)

// BatchSize is the vector length: small enough that a handful of vectors
// fit in L1/L2, large enough to amortize per-batch dispatch.
const BatchSize = 1024

// Engine is the vectorized engine. The zero value scans on every core;
// use New for the serial engine or NewParallel to pick a worker count.
type Engine struct {
	opt par.Options
}

// New returns the serial engine (workers = 1).
func New() Engine { return Engine{opt: par.Serial()} }

// NewParallel returns an engine whose base-table scans run under the
// morsel scheduler (Workers == 0 means GOMAXPROCS). Operators above the
// scan stay batch-serial; results are identical to the serial engine's.
func NewParallel(opt par.Options) Engine { return Engine{opt: opt} }

// Name returns "vector".
func (Engine) Name() string { return "vector" }

// Accesses reports the base-table footprint of executing n on this
// engine: the tables and attribute positions the batch iterators read and
// the rows they scan. The vector path builds its iterator tree per
// request (nothing is cached), so the service's workload capture calls
// this at request time; the index-vs-scan decision inside build mirrors
// exec.PlanIndexAccess, which is exactly what CollectAccesses consults,
// so the reported footprint matches what next() loops touch.
func Accesses(n plan.Node, c *plan.Catalog) []exec.TableAccess {
	return exec.CollectAccesses(n, c)
}

// batch is one vector of tuples, column-major. Columns are reused across
// next() calls; consumers must copy what they keep.
type batch struct {
	cols [][]storage.Word
	n    int
}

// biter produces batches.
type biter interface {
	next() (batch, bool)
}

// Run executes the plan batch-at-a-time. Result rows are materialized
// through the set's arena — one allocation per arena chunk, not per row.
func (e Engine) Run(n plan.Node, c *plan.Catalog) *result.Set {
	if ins, ok := n.(plan.Insert); ok {
		return exec.RunInsert(ins, c)
	}
	out := result.New(plan.Output(n, c))
	it := build(n, c, e.opt)
	for {
		b, ok := it.next()
		if !ok {
			break
		}
		for r := 0; r < b.n; r++ {
			row := out.NewRow()
			for i, col := range b.cols {
				row[i] = col[r]
			}
		}
	}
	return out
}

func build(n plan.Node, c *plan.Catalog, opt par.Options) biter {
	switch v := n.(type) {
	case plan.Scan:
		if acc, ok := exec.PlanIndexAccess(c, v.Table, v.Filter); ok {
			rel := c.Table(v.Table)
			rows := c.Index(v.Table, acc.Attr).Lookup(acc.Key, nil)
			return &indexScan{rel: rel, rows: rows, rest: acc.Rest, cols: v.Cols}
		}
		if opt.Parallel() {
			return newParScan(c.Table(v.Table), v.Filter, v.Cols, opt)
		}
		return newScan(c.Table(v.Table), v.Filter, v.Cols)
	case plan.Select:
		return &selectIt{child: build(v.Child, c, opt), pred: v.Pred, out: batch{}}
	case plan.Project:
		return &projectIt{child: build(v.Child, c, opt), exprs: v.Exprs}
	case plan.HashJoin:
		return newJoin(v, c, opt)
	case plan.Aggregate:
		return newAgg(v, c, opt)
	case plan.Sort:
		return newMaterialized(build(v.Child, c, opt), func(rows [][]storage.Word) [][]storage.Word {
			sortpar.Sort(rows, v.Keys, opt)
			return rows
		})
	case plan.Limit:
		// ORDER BY … LIMIT k fuses into a bounded top-N heap: the sort
		// retains at most k rows instead of materializing the child.
		if srt, ok := v.Child.(plan.Sort); ok {
			return newTopN(build(srt.Child, c, opt), srt.Keys, v.N)
		}
		return &limitIt{child: build(v.Child, c, opt), n: v.N}
	}
	panic("vector: unsupported plan node")
}

// scanIt produces batches from a base table, applying the filter with one
// primitive loop per conjunct per batch (selection vectors stay in
// cache). The filter is pre-split into conjuncts; an empty conjunct list
// (nil or trivially-true filter) passes every row, matching the other
// engines and the parallel scan.
type scanIt struct {
	rel   *storage.Relation
	conjs []expr.Pred
	cols  []int
	pos   int
	sel   []int32
	out   batch
}

func newScan(rel *storage.Relation, filter expr.Pred, cols []int) *scanIt {
	s := &scanIt{rel: rel, conjs: conjuncts(filter), cols: cols}
	s.sel = make([]int32, 0, BatchSize)
	s.out.cols = make([][]storage.Word, len(cols))
	for i := range s.out.cols {
		s.out.cols[i] = make([]storage.Word, BatchSize)
	}
	return s
}

func (s *scanIt) next() (batch, bool) {
	for s.pos < s.rel.Rows() {
		lo := s.pos
		hi := lo + BatchSize
		if hi > s.rel.Rows() {
			hi = s.rel.Rows()
		}
		s.pos = hi

		// Selection vector over [lo,hi): one tight loop per conjunct.
		s.sel = s.sel[:0]
		if len(s.conjs) == 0 {
			for r := lo; r < hi; r++ {
				s.sel = append(s.sel, int32(r))
			}
		} else {
			first := true
			for _, conj := range s.conjs {
				s.sel = applyConj(s.rel, conj, s.sel, first, lo, hi)
				first = false
			}
		}
		if len(s.sel) == 0 {
			continue
		}
		// Gather the projected columns for the surviving positions.
		for i, attr := range s.cols {
			a := s.rel.Access(attr)
			dst := s.out.cols[i]
			for j, r := range s.sel {
				dst[j] = a.Data[int(r)*a.Stride+a.Off]
			}
		}
		s.out.n = len(s.sel)
		return s.out, true
	}
	return batch{}, false
}

func conjuncts(p expr.Pred) []expr.Pred {
	switch v := p.(type) {
	case nil, expr.True:
		return nil
	case expr.And:
		return v.Preds
	default:
		return []expr.Pred{p}
	}
}

func applyConj(rel *storage.Relation, p expr.Pred, sel []int32, first bool, lo, hi int) []int32 {
	test := func(r int32) bool {
		switch v := p.(type) {
		case expr.Cmp:
			a := rel.Access(v.Attr)
			return v.Op.Apply(a.Data[int(r)*a.Stride+a.Off], v.Val)
		case expr.Between:
			a := rel.Access(v.Attr)
			w := a.Data[int(r)*a.Stride+a.Off]
			return w >= v.Lo && w <= v.Hi
		case expr.InSet:
			a := rel.Access(v.Attr)
			return v.Set.Contains(a.Data[int(r)*a.Stride+a.Off])
		default:
			return expr.EvalPred(p, func(attr int) storage.Word { return rel.Value(int(r), attr) })
		}
	}
	if first {
		out := sel[:0]
		// Specialized primitive: hoist the accessor out of the loop for
		// the common comparison case.
		if cmp, ok := p.(expr.Cmp); ok {
			a := rel.Access(cmp.Attr)
			for r := lo; r < hi; r++ {
				if cmp.Op.Apply(a.Data[r*a.Stride+a.Off], cmp.Val) {
					out = append(out, int32(r))
				}
			}
			return out
		}
		for r := lo; r < hi; r++ {
			if test(int32(r)) {
				out = append(out, int32(r))
			}
		}
		return out
	}
	out := sel[:0]
	for _, r := range sel {
		if test(r) {
			out = append(out, r)
		}
	}
	return out
}

// indexScan emits the (small) index result as one batch stream.
type indexScan struct {
	rel  *storage.Relation
	rows []int32
	rest expr.Pred
	cols []int
	done bool
}

func (s *indexScan) next() (batch, bool) {
	if s.done {
		return batch{}, false
	}
	s.done = true
	var b batch
	b.cols = make([][]storage.Word, len(s.cols))
	for i := range b.cols {
		b.cols[i] = make([]storage.Word, 0, len(s.rows))
	}
	for _, r := range s.rows {
		if s.rest != nil && !expr.EvalPred(s.rest, func(a int) storage.Word { return s.rel.Value(int(r), a) }) {
			continue
		}
		b.n++
		for i, attr := range s.cols {
			b.cols[i] = append(b.cols[i], s.rel.Value(int(r), attr))
		}
	}
	return b, true
}

// selectIt filters batches by position.
type selectIt struct {
	child biter
	pred  expr.Pred
	out   batch
}

func (s *selectIt) next() (batch, bool) {
	for {
		in, ok := s.child.next()
		if !ok {
			return batch{}, false
		}
		if s.out.cols == nil {
			s.out.cols = make([][]storage.Word, len(in.cols))
			for i := range s.out.cols {
				s.out.cols[i] = make([]storage.Word, BatchSize)
			}
		}
		n := 0
		for r := 0; r < in.n; r++ {
			if expr.EvalPred(s.pred, func(a int) storage.Word { return in.cols[a][r] }) {
				for i := range in.cols {
					s.out.cols[i][n] = in.cols[i][r]
				}
				n++
			}
		}
		if n > 0 {
			s.out.n = n
			return s.out, true
		}
	}
}

// projectIt evaluates expressions batch-at-a-time, one loop per output.
type projectIt struct {
	child biter
	exprs []expr.Expr
	out   batch
}

func (p *projectIt) next() (batch, bool) {
	in, ok := p.child.next()
	if !ok {
		return batch{}, false
	}
	if p.out.cols == nil {
		p.out.cols = make([][]storage.Word, len(p.exprs))
		for i := range p.out.cols {
			p.out.cols[i] = make([]storage.Word, BatchSize)
		}
	}
	for i, e := range p.exprs {
		dst := p.out.cols[i]
		if col, okc := e.(expr.Col); okc {
			copy(dst[:in.n], in.cols[col.Attr][:in.n])
			continue
		}
		for r := 0; r < in.n; r++ {
			dst[r] = expr.EvalExpr(e, func(a int) storage.Word { return in.cols[a][r] })
		}
	}
	p.out.n = in.n
	return p.out, true
}

// joinIt builds the left side eagerly — through joinpar.Build, which
// radix-partitions the rows under parallel options and mirrors the jit
// engine's flat probe table when serial — and probes right batches.
type joinIt struct {
	right      biter
	jt         *joinpar.Table
	rkey       int
	leftWidth  int
	rightWidth int
	out        batch
}

func newJoin(v plan.HashJoin, c *plan.Catalog, opt par.Options) *joinIt {
	jt, leftWidth := buildSide(build(v.Left, c, opt), len(plan.Output(v.Left, c)), v.LeftKey, opt)
	return &joinIt{
		right:      build(v.Right, c, opt),
		jt:         jt,
		rkey:       v.RightKey,
		leftWidth:  leftWidth,
		rightWidth: len(plan.Output(v.Right, c)),
	}
}

// buildSide drains the build child into the flat row-major form BuildFlat
// consumes (serial builds adopt the buffer without another copy) and
// returns the probe table plus the number of build rows.
func buildSide(leftIt biter, leftWidth, leftKey int, opt par.Options) (*joinpar.Table, int) {
	var flat []storage.Word
	for {
		b, ok := leftIt.next()
		if !ok {
			break
		}
		for r := 0; r < b.n; r++ {
			for i := 0; i < leftWidth; i++ {
				flat = append(flat, b.cols[i][r])
			}
		}
	}
	return joinpar.BuildFlat(flat, leftKey, leftWidth, opt), leftWidth
}

func (j *joinIt) next() (batch, bool) {
	for {
		in, ok := j.right.next()
		if !ok {
			return batch{}, false
		}
		if j.out.cols == nil {
			j.out.cols = make([][]storage.Word, j.leftWidth+j.rightWidth)
		}
		for i := range j.out.cols {
			j.out.cols[i] = j.out.cols[i][:0]
		}
		n := 0
		for r := 0; r < in.n; r++ {
			matches, flat := j.jt.Lookup(in.cols[j.rkey][r])
			for _, m := range matches {
				l := flat[int(m)*j.leftWidth:]
				for i := 0; i < j.leftWidth; i++ {
					j.out.cols[i] = append(j.out.cols[i], l[i])
				}
				for i := 0; i < j.rightWidth; i++ {
					j.out.cols[j.leftWidth+i] = append(j.out.cols[j.leftWidth+i], in.cols[i][r])
				}
				n++
			}
		}
		if n > 0 {
			j.out.n = n
			return j.out, true
		}
	}
}

// aggIt drains the child, grouping batch-at-a-time.
type aggIt struct {
	rows [][]storage.Word
	pos  int
}

func newAgg(v plan.Aggregate, c *plan.Catalog, opt par.Options) *aggIt {
	return newAggFrom(build(v.Child, c, opt), v)
}

func newAggFrom(child biter, v plan.Aggregate) *aggIt {
	type group struct {
		key    []storage.Word
		states []expr.AggState
	}
	groups := map[exec.GroupKey]*group{}
	var order []*group
	newStates := func() []expr.AggState {
		st := make([]expr.AggState, len(v.Aggs))
		for i, spec := range v.Aggs {
			st[i] = expr.NewAggState(spec)
		}
		return st
	}
	for {
		b, ok := child.next()
		if !ok {
			break
		}
		for r := 0; r < b.n; r++ {
			var k exec.GroupKey
			for i, g := range v.GroupBy {
				k[i] = b.cols[g][r]
			}
			g := groups[k]
			if g == nil {
				key := make([]storage.Word, len(v.GroupBy))
				for i, p := range v.GroupBy {
					key[i] = b.cols[p][r]
				}
				g = &group{key: key, states: newStates()}
				groups[k] = g
				order = append(order, g)
			}
			row := r
			for i := range g.states {
				g.states[i].Add(func(a int) storage.Word { return b.cols[a][row] })
			}
		}
	}
	if len(v.GroupBy) == 0 && len(order) == 0 {
		order = append(order, &group{states: newStates()})
	}
	out := &aggIt{}
	for _, g := range order {
		row := make([]storage.Word, 0, len(g.key)+len(v.Aggs))
		row = append(row, g.key...)
		for i := range g.states {
			row = append(row, g.states[i].Result())
		}
		out.rows = append(out.rows, row)
	}
	return out
}

func (a *aggIt) next() (batch, bool) {
	if a.pos >= len(a.rows) {
		return batch{}, false
	}
	hi := a.pos + BatchSize
	if hi > len(a.rows) {
		hi = len(a.rows)
	}
	width := len(a.rows[a.pos])
	b := batch{cols: make([][]storage.Word, width), n: hi - a.pos}
	for i := 0; i < width; i++ {
		col := make([]storage.Word, b.n)
		for r := 0; r < b.n; r++ {
			col[r] = a.rows[a.pos+r][i]
		}
		b.cols[i] = col
	}
	a.pos = hi
	return b, true
}

// materializedIt drains a child, transforms rows, and re-emits batches.
type materializedIt struct {
	rows [][]storage.Word
	pos  int
}

func newMaterialized(it biter, transform func([][]storage.Word) [][]storage.Word) *materializedIt {
	var rows [][]storage.Word
	var arena result.Arena
	for {
		b, ok := it.next()
		if !ok {
			break
		}
		for r := 0; r < b.n; r++ {
			row := arena.NewRow(len(b.cols))
			for i := range b.cols {
				row[i] = b.cols[i][r]
			}
			rows = append(rows, row)
		}
	}
	return &materializedIt{rows: transform(rows)}
}

func (m *materializedIt) next() (batch, bool) {
	if m.pos >= len(m.rows) {
		return batch{}, false
	}
	hi := m.pos + BatchSize
	if hi > len(m.rows) {
		hi = len(m.rows)
	}
	width := len(m.rows[m.pos])
	b := batch{cols: make([][]storage.Word, width), n: hi - m.pos}
	for i := 0; i < width; i++ {
		col := make([]storage.Word, b.n)
		for r := 0; r < b.n; r++ {
			col[r] = m.rows[m.pos+r][i]
		}
		b.cols[i] = col
	}
	m.pos = hi
	return b, true
}

// newTopN is the fused Sort+Limit breaker: it drains the sort child's
// batches through a bounded k-element heap (rows are copied only when they
// enter the retained set), so a top-N query materializes O(k) sorted rows
// instead of the child's full output. The emitted rows are bit-identical
// to stable-sort-then-truncate: ties break by stream position.
func newTopN(it biter, keys []plan.SortKey, k int) *materializedIt {
	t := sortpar.NewTopN(keys, k)
	var row []storage.Word
	seq := 0
	for {
		b, ok := it.next()
		if !ok {
			break
		}
		for r := 0; r < b.n; r++ {
			row = row[:0]
			for i := range b.cols {
				row = append(row, b.cols[i][r])
			}
			t.Offer(row, 0, seq)
			seq++
		}
	}
	return &materializedIt{rows: sortpar.MergeTopN([]*sortpar.TopN{t}, keys, k)}
}

// limitIt truncates the stream.
type limitIt struct {
	child biter
	n     int
	done  int
}

func (l *limitIt) next() (batch, bool) {
	if l.done >= l.n {
		return batch{}, false
	}
	b, ok := l.child.next()
	if !ok {
		return batch{}, false
	}
	if l.done+b.n > l.n {
		b.n = l.n - l.done
	}
	l.done += b.n
	return b, true
}
