package jit

import (
	"time"

	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/storage"
)

// Tracing in the jit engine is a compiled specialization, not an
// instrumented hot loop: the fused loops in run.go stay untouched, and an
// armed trace (tr != nil) routes execution through the counting variants
// below instead. The disarmed path therefore executes exactly the
// instructions it executed before tracing existed — one nil check per
// pipeline or breaker, never per row — which is what keeps the disarmed
// overhead on the serving benchmark under the 2% budget.
//
// Counts layout for one pipe: cn[0] = rows scanned (source input),
// cn[1] = rows surviving the fused source filter, cn[2+i] = rows leaving
// stage i. An operator's input is its predecessor's output, so the chain
// reconstructs per-operator rows in/out exactly. Wall time is measured
// per morsel around the fused loop and attributed to every operator fused
// into it (the paper's point is precisely that these operators share one
// loop; their time is not separable and the trace does not pretend it is).

// traceBuild collects operator descriptors during compilation, in plan
// pre-order (parents before children).
type traceBuild struct {
	protos []obs.OpProto
}

func (tb *traceBuild) add(op, detail string, depth int) int {
	tb.protos = append(tb.protos, obs.OpProto{Op: op, Detail: detail, Depth: depth})
	return len(tb.protos) - 1
}

// setStatic records prepare-time measurements (the hash-join build side
// executes at compile time) on an already-added descriptor.
func (tb *traceBuild) setStatic(i int, rowsIn, rowsOut, nanos int64) {
	p := &tb.protos[i]
	p.Static, p.RowsIn, p.RowsOut, p.Nanos = true, rowsIn, rowsOut, nanos
}

// emittedOf returns the pipe's emitted-row count from a counts slice.
func emittedOf(cn []int64, stages int) int64 {
	if stages == 0 {
		return cn[1]
	}
	return cn[2+stages-1]
}

// flushCounts folds one morsel's (or one serial run's) counts into the
// trace: totals via atomics, the claiming worker's lane directly (lane w
// is only ever written by worker w).
func (p *pipe) flushCounts(tr *obs.QueryTrace, worker int, cn []int64, nanos, morsels, stolen int64) {
	src := tr.Op(p.srcOp)
	src.Add(cn[0], cn[1], nanos)
	if l := src.Lane(worker); l != nil {
		l.Rows += cn[1]
		l.Nanos += nanos
		l.Morsels += morsels
		l.Stolen += stolen
	}
	in := cn[1]
	for i := range p.stages {
		op := tr.Op(p.stages[i].opIdx)
		op.Add(in, cn[2+i], nanos)
		if l := op.Lane(worker); l != nil {
			l.Rows += cn[2+i]
			l.Nanos += nanos
			l.Morsels += morsels
			l.Stolen += stolen
		}
		in = cn[2+i]
	}
}

// runTraced drives the pipe serially through the counting loops and
// flushes the counts as worker 0. It returns the emitted-row count.
func (p *pipe) runTraced(tr *obs.QueryTrace, emit func([]storage.Word)) int64 {
	cn := make([]int64, 2+len(p.stages))
	start := time.Now()
	if p.useIndex {
		p.runIndexCount(cn, emit)
	} else {
		p.runRangeCount(0, p.rel.Rows(), make([]storage.Word, p.srcWidth), cn, emit)
	}
	p.flushCounts(tr, 0, cn, time.Since(start).Nanoseconds(), 1, 0)
	return emittedOf(cn, len(p.stages))
}

// runRangeCount is runRange with per-operator counting.
func (p *pipe) runRangeCount(lo, hi int, regs []storage.Word, cn []int64, emit func([]storage.Word)) {
	cn[0] += int64(hi - lo)
	var complexRow int
	complexFn := func(a int) storage.Word { return p.rel.Value(complexRow, a) }
rows:
	for row := lo; row < hi; row++ {
		for i := range p.baseTests {
			t := &p.baseTests[i]
			if !passTest(t, t.data[row*t.stride+t.off]) {
				continue rows
			}
		}
		if p.complex != nil {
			complexRow = row
			if !expr.EvalPred(p.complex, complexFn) {
				continue rows
			}
		}
		for i := range p.loads {
			l := &p.loads[i]
			regs[l.reg] = l.data[row*l.stride+l.off]
		}
		cn[1]++
		p.pushStagesCount(0, regs, cn, emit)
	}
}

// runIndexCount is the index-backed source loop of run with counting.
func (p *pipe) runIndexCount(cn []int64, emit func([]storage.Word)) {
	regs := make([]storage.Word, p.srcWidth)
	var complexRow int
	complexFn := func(a int) storage.Word { return p.rel.Value(complexRow, a) }
	p.indexRows = p.idx.Lookup(p.key, p.indexRows[:0])
	cn[0] += int64(len(p.indexRows))
rows:
	for _, r := range p.indexRows {
		row := int(r)
		for i := range p.baseTests {
			t := &p.baseTests[i]
			if !passTest(t, t.data[row*t.stride+t.off]) {
				continue rows
			}
		}
		if p.complex != nil {
			complexRow = row
			if !expr.EvalPred(p.complex, complexFn) {
				continue rows
			}
		}
		for i := range p.loads {
			l := &p.loads[i]
			regs[l.reg] = l.data[row*l.stride+l.off]
		}
		cn[1]++
		p.pushStagesCount(0, regs, cn, emit)
	}
}

// pushStagesCount is pushStages with per-stage survivor counting.
func (p *pipe) pushStagesCount(si int, regs []storage.Word, cn []int64, emit func([]storage.Word)) {
	for ; si < len(p.stages); si++ {
		st := &p.stages[si]
		switch st.kind {
		case stFilter:
			for i := range st.tests {
				t := &st.tests[i]
				if !passTest(t, regs[t.pos]) {
					return
				}
			}
			if st.complex != nil {
				if !expr.EvalPred(st.complex, func(a int) storage.Word { return regs[a] }) {
					return
				}
			}
			cn[2+si]++
		case stMap:
			buf := st.buf
			for i := range st.maps {
				m := &st.maps[i]
				if m.isMove {
					buf[i] = regs[m.srcReg]
				} else {
					buf[i] = expr.EvalExpr(m.e, func(a int) storage.Word { return regs[a] })
				}
			}
			regs = buf
			cn[2+si]++
		case stProbe:
			matches, build := st.jt.Lookup(regs[st.keyReg])
			if len(matches) == 0 {
				return
			}
			w := st.addWidth
			buf := st.buf
			copy(buf[w:], regs)
			if len(matches) == 1 {
				copy(buf[:w], build[int(matches[0])*w:])
				regs = buf
				cn[2+si]++
				continue
			}
			for _, m := range matches {
				copy(buf[:w], build[int(m)*w:])
				cn[2+si]++
				p.pushStagesCount(si+1, buf, cn, emit)
			}
			return
		}
	}
	emit(regs)
}
