package jit

import (
	"time"

	"repro/internal/exec/par"
	"repro/internal/exec/result"
	"repro/internal/obs"
	"repro/internal/storage"
)

// parallelizable reports whether the pipe can run under the morsel
// scheduler: index-backed pipes fetch a (small) row-id list and stay
// serial.
func (p *pipe) parallelizable(opt par.Options) bool {
	return opt.Parallel() && !p.useIndex
}

// cloneForWorker gives one worker — or one concurrent execution — its own
// executable view of the pipe. Stage output buffers and the index-lookup
// scratch are the only state the fused loop mutates besides the register
// file, so the clone shares the compiled tests, loads and probe tables
// with the original and replaces just those.
func (p *pipe) cloneForWorker() *pipe {
	q := *p
	q.indexRows = nil
	q.stages = append([]stage(nil), p.stages...)
	for i := range q.stages {
		if q.stages[i].buf != nil {
			q.stages[i].buf = make([]storage.Word, len(q.stages[i].buf))
		}
	}
	return &q
}

// pipeWorker is the per-worker execution state of a parallel run: a pipe
// clone, a private register file and a private arena for emitted rows.
// Workers are created lazily by the first morsel each one claims.
type pipeWorker struct {
	pipe  *pipe
	regs  []storage.Word
	arena result.Arena
}

func (p *pipe) worker(pool []*pipeWorker, w int) *pipeWorker {
	if pool[w] == nil {
		pool[w] = &pipeWorker{
			pipe: p.cloneForWorker(),
			regs: make([]storage.Word, p.srcWidth),
		}
	}
	return pool[w]
}

// runParallelRows drives the pipe with the morsel scheduler and returns
// the emitted rows. Every morsel buffers its emits separately (backed by
// the claiming worker's arena); the buffers are concatenated in morsel
// order, so the output is row-for-row identical to the serial loop.
func (p *pipe) runParallelRows(opt par.Options, tr *obs.QueryTrace) [][]storage.Word {
	n := p.rel.Rows()
	slots := make([][][]storage.Word, opt.Morsels(n))
	pool := make([]*pipeWorker, opt.WorkerCount())
	if tr == nil {
		par.Run(n, opt, func(w, m, lo, hi int) {
			ws := p.worker(pool, w)
			var rows [][]storage.Word
			ws.pipe.runRange(lo, hi, ws.regs, func(regs []storage.Word) {
				rows = append(rows, ws.arena.Copy(regs))
			})
			slots[m] = rows
		})
	} else {
		morsels, workers := opt.Morsels(n), opt.WorkerCount()
		par.Run(n, opt, func(w, m, lo, hi int) {
			ws := p.worker(pool, w)
			var rows [][]storage.Word
			cn := make([]int64, 2+len(p.stages))
			start := time.Now()
			ws.pipe.runRangeCount(lo, hi, ws.regs, cn, func(regs []storage.Word) {
				rows = append(rows, ws.arena.Copy(regs))
			})
			nanos := time.Since(start).Nanoseconds()
			slots[m] = rows
			var stolen int64
			if par.ExpectedWorker(m, morsels, workers) != w {
				stolen = 1
			}
			p.flushCounts(tr, w, cn, nanos, 1, stolen)
		})
	}
	total := 0
	for _, s := range slots {
		total += len(s)
	}
	out := make([][]storage.Word, 0, total)
	for _, s := range slots {
		out = append(out, s...)
	}
	return out
}
