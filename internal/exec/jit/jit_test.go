package jit

import (
	"math/rand"
	"testing"

	"repro/internal/exec/par"
	"repro/internal/exec/result"
	"repro/internal/expr"
	"repro/internal/index"
	"repro/internal/plan"
	"repro/internal/storage"
)

// The cross-engine differential suite in package exec covers semantics;
// these tests pin down the compiler's internal decisions: which plans take
// the fused fast path, how pipelines decompose, and multi-match probe
// behaviour.

func buildIdx(rel *storage.Relation) index.Index {
	return index.BuildOn(index.NewHashIndex(rel.Rows()), rel, 0)
}

func jitCatalog(rows int) *plan.Catalog {
	schema := storage.NewSchema("r",
		storage.Attribute{Name: "a", Type: storage.Int64},
		storage.Attribute{Name: "b", Type: storage.Int64},
		storage.Attribute{Name: "c", Type: storage.Int64},
		storage.Attribute{Name: "d", Type: storage.Int64},
		storage.Attribute{Name: "e", Type: storage.Int64},
	)
	b := storage.NewBuilder(schema)
	rng := rand.New(rand.NewSource(2))
	for attr := 0; attr < 5; attr++ {
		col := make([]int64, rows)
		for i := range col {
			col[i] = rng.Int63n(100)
		}
		b.SetInts(attr, col)
	}
	return plan.NewCatalog().Add(b.Build(storage.PDSM([]int{0}, []int{1, 2, 3, 4})))
}

func fig2cPlan() plan.Aggregate {
	return plan.Aggregate{
		Child: plan.Scan{
			Table:  "r",
			Filter: expr.Cmp{Attr: 0, Op: expr.Eq, Val: storage.EncodeInt(7)},
			Cols:   []int{1, 2, 3, 4},
		},
		Aggs: []expr.AggSpec{
			{Kind: expr.Sum, Arg: expr.IntCol(0), Name: "sb"},
			{Kind: expr.Sum, Arg: expr.IntCol(1), Name: "sc"},
			{Kind: expr.Sum, Arg: expr.IntCol(2), Name: "sd"},
			{Kind: expr.Sum, Arg: expr.IntCol(3), Name: "se"},
		},
	}
}

// TestFastPathTaken: the Figure 2c shape must be eligible for the fused
// fast path and agree with the generic sink.
func TestFastPathTaken(t *testing.T) {
	c := jitCatalog(5000)
	v := fig2cPlan()
	p := compilePipe(v.Child, c, par.Serial(), &traceBuild{}, 0)
	fast, ok := fastScanAggregate(p, v, par.Serial(), nil, -1)
	if !ok {
		t.Fatal("Figure 2c shape must take the fused fast path")
	}
	slow := genericAggregate(compilePipe(v.Child, c, par.Serial(), &traceBuild{}, 0), v, par.Serial(), nil, -1)
	if len(fast) != 1 || len(slow) != 1 {
		t.Fatal("both paths must emit one row")
	}
	for i := range fast[0] {
		if fast[0][i] != slow[0][i] {
			t.Fatalf("fast path column %d = %d, generic = %d",
				i, storage.DecodeInt(fast[0][i]), storage.DecodeInt(slow[0][i]))
		}
	}
}

// TestFastPathRejections: shapes outside the contract fall back.
func TestFastPathRejections(t *testing.T) {
	c := jitCatalog(100)
	base := fig2cPlan()

	grouped := base
	grouped.GroupBy = []int{0}
	if _, ok := fastScanAggregate(compilePipe(grouped.Child, c, par.Serial(), &traceBuild{}, 0), grouped, par.Serial(), nil, -1); ok {
		t.Error("grouped aggregation must not take the fast path")
	}

	avg := base
	avg.Aggs = []expr.AggSpec{{Kind: expr.Avg, Arg: expr.IntCol(0), Name: "x"}}
	if _, ok := fastScanAggregate(compilePipe(avg.Child, c, par.Serial(), &traceBuild{}, 0), avg, par.Serial(), nil, -1); ok {
		t.Error("avg must not take the fast path")
	}

	arith := base
	arith.Aggs = []expr.AggSpec{{Kind: expr.Sum, Arg: expr.Arith{Op: expr.Add, L: expr.IntCol(0), R: expr.IntConst(1)}, Name: "x"}}
	if _, ok := fastScanAggregate(compilePipe(arith.Child, c, par.Serial(), &traceBuild{}, 0), arith, par.Serial(), nil, -1); ok {
		t.Error("computed aggregate arguments must not take the fast path")
	}
}

// TestPipelineDecomposition: a join plan compiles into a probe stage over
// the streaming side with the build side materialized.
func TestPipelineDecomposition(t *testing.T) {
	c := jitCatalog(200)
	dim := storage.NewSchema("dim",
		storage.Attribute{Name: "k", Type: storage.Int64},
		storage.Attribute{Name: "v", Type: storage.Int64})
	db := storage.NewBuilder(dim)
	db.SetInts(0, []int64{1, 2, 3}).SetInts(1, []int64{10, 20, 30})
	c.Add(db.Build(storage.NSM(2)))

	join := plan.HashJoin{
		Left:     plan.Scan{Table: "dim", Cols: []int{0, 1}},
		Right:    plan.Scan{Table: "r", Cols: []int{0, 1}},
		LeftKey:  0,
		RightKey: 0,
	}
	p := compilePipe(join, c, par.Serial(), &traceBuild{}, 0)
	if p.rel.Schema.Name != "r" {
		t.Error("probe side must stream the right child")
	}
	if len(p.stages) != 1 || p.stages[0].kind != stProbe {
		t.Fatalf("expected one probe stage, got %d stages", len(p.stages))
	}
	if p.outWidth != 4 {
		t.Errorf("join pipeline width = %d, want 4", p.outWidth)
	}
}

// TestProbeMultiMatch: a build side with duplicate keys multiplies rows.
func TestProbeMultiMatch(t *testing.T) {
	dup := storage.NewSchema("dup",
		storage.Attribute{Name: "k", Type: storage.Int64},
		storage.Attribute{Name: "tag", Type: storage.Int64})
	db := storage.NewBuilder(dup)
	db.SetInts(0, []int64{1, 1, 2})
	db.SetInts(1, []int64{100, 200, 300})
	probe := storage.NewSchema("p",
		storage.Attribute{Name: "k", Type: storage.Int64})
	pb := storage.NewBuilder(probe)
	pb.SetInts(0, []int64{1, 2, 9})
	c := plan.NewCatalog().
		Add(db.Build(storage.NSM(2))).
		Add(pb.Build(storage.NSM(1)))

	join := plan.HashJoin{
		Left:     plan.Scan{Table: "dup", Cols: []int{0, 1}},
		Right:    plan.Scan{Table: "p", Cols: []int{0}},
		LeftKey:  0,
		RightKey: 0,
	}
	res := New().Run(join, c)
	if res.Len() != 3 { // key 1 matches twice, key 2 once, key 9 never
		t.Fatalf("multi-match join rows = %d, want 3", res.Len())
	}
}

// TestIndexPipelinesSkipScan: with an index the pipeline iterates only the
// lookup result.
func TestIndexPipelinesSkipScan(t *testing.T) {
	c := jitCatalog(1000)
	relR := c.Table("r")
	// Build an index on attribute a.
	idxPlan := plan.Scan{Table: "r", Filter: expr.Cmp{Attr: 0, Op: expr.Eq, Val: storage.EncodeInt(7)}, Cols: []int{0, 1}}
	noIdx := New().Run(idxPlan, c)
	c.AddIndex("r", 0, buildIdx(relR))
	p := compilePipe(idxPlan, c, par.Serial(), &traceBuild{}, 0)
	if !p.useIndex {
		t.Fatal("indexed equality scan must use the index")
	}
	withIdx := New().Run(idxPlan, c)
	if !result.EqualUnordered(noIdx, withIdx) {
		t.Fatal("index path changed results")
	}
}

// TestMapStageWidthChange: projections mid-pipeline re-shape the registers.
func TestMapStageWidthChange(t *testing.T) {
	c := jitCatalog(500)
	q := plan.Aggregate{
		Child: plan.Project{
			Child: plan.Scan{Table: "r", Cols: []int{1, 2}},
			Exprs: []expr.Expr{
				expr.Arith{Op: expr.Div, L: expr.IntCol(0), R: expr.IntConst(10)},
			},
			Names: []string{"bucket"},
		},
		GroupBy: []int{0},
		Aggs:    []expr.AggSpec{{Kind: expr.Count, Name: "n"}},
	}
	res := New().Run(q, c)
	if res.Len() == 0 || len(res.Rows[0]) != 2 {
		t.Fatalf("map-stage pipeline broken: %d rows, arity %d", res.Len(), len(res.Rows[0]))
	}
	var total int64
	for _, row := range res.Rows {
		total += storage.DecodeInt(row[1])
	}
	if total != 500 {
		t.Errorf("group counts sum to %d, want 500", total)
	}
}
