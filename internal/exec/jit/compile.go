// Package jit implements the reproduction's analogue of HyPer's JiT query
// compilation (Neumann, VLDB '11): a logical plan is compiled once into a
// flat pipeline program — direct slice accessors, data-driven predicate
// tests, probe tables and a sink — that executes as fused tight loops with
// no per-tuple interface calls or closure dispatch. Operators are merged
// into a single loop per pipeline; values enter the "registers" (a reused
// word buffer) once and stay there until no longer needed, mirroring the
// generated code of the paper's Figure 2c. Pipeline breakers (hash build,
// aggregation, sort) materialize, exactly as in the produce/consume
// compilation model.
//
// Where Go differs from LLVM codegen: instead of emitting machine code we
// specialize at plan-compile time into monomorphic loop bodies; the hot
// shapes of the paper's experiments (conjunctive scans, scan-aggregate,
// index point lookups) additionally take fully inlined fast paths.
package jit

import (
	"fmt"
	"time"

	"repro/internal/exec"
	"repro/internal/exec/joinpar"
	"repro/internal/exec/par"
	"repro/internal/expr"
	"repro/internal/index"
	"repro/internal/plan"
	"repro/internal/storage"
)

type testKind uint8

const (
	tCmp testKind = iota
	tBetween
	tInSet
	tNotNull
)

// test is one compiled conjunct. For base-table tests, data/stride/off
// address the partition slice directly; for register tests data is nil and
// pos indexes the pipeline registers.
type test struct {
	kind   testKind
	data   []storage.Word
	stride int
	off    int
	pos    int
	op     expr.CmpOp
	val    storage.Word
	lo, hi storage.Word
	set    *storage.CodeSet
}

// load copies one base attribute into a register slot.
type load struct {
	data   []storage.Word
	stride int
	off    int
	reg    int
}

type stageKind uint8

const (
	stFilter stageKind = iota
	stProbe
	stMap
)

// stage is one compiled post-source pipeline step.
type stage struct {
	kind stageKind

	// stFilter
	tests   []test
	complex expr.Pred

	// stProbe: regs become buildRow ++ oldRegs. The build side is a
	// (radix-partitioned when built in parallel) joinpar.Table: flat
	// row-major partition buffers of stride addWidth, with per-partition
	// tables mapping join keys to local row indices, so building costs one
	// slice per key instead of one per key plus one per row.
	jt       *joinpar.Table
	keyReg   int
	addWidth int

	// stMap: regs become the evaluated expressions.
	maps     []mapSlot
	outWidth int

	buf []storage.Word // output registers of width-changing stages

	opIdx int // trace-op index of the operator this stage implements
}

// mapSlot computes one output register; column references compile to plain
// register moves.
type mapSlot struct {
	isMove bool
	srcReg int
	e      expr.Expr
}

// pipe is one compiled pipeline: a base-table source with fused filter and
// register loads, followed by stages. Index-backed pipes store the index
// and key and perform the lookup at execution time, so a compiled pipe
// stays valid across executions (prepared-query reuse).
type pipe struct {
	rel       *storage.Relation
	useIndex  bool
	idx       index.Index
	key       storage.Word
	indexRows []int32 // lookup buffer, refreshed per execution
	baseTests []test
	complex   expr.Pred // interpreted fallback over base attributes
	loads     []load
	srcWidth  int
	stages    []stage
	outWidth  int
	srcOp     int // trace-op index of the source scan
}

// compilePipe lowers a plan subtree into a pipeline. The caller must not
// pass pipeline breakers (Aggregate, Sort, Limit, Insert). opt governs the
// execution of nested pipeline breakers (hash-join build sides). Every
// operator registers a trace descriptor in tb before its children, keeping
// the trace in plan pre-order even though stages compile child-first.
func compilePipe(n plan.Node, c *plan.Catalog, opt par.Options, tb *traceBuild, depth int) *pipe {
	switch v := n.(type) {
	case plan.Scan:
		return compileScan(v, c, tb, depth)

	case plan.Select:
		idx := tb.add("select", "", depth)
		p := compilePipe(v.Child, c, opt, tb, depth+1)
		tests, complexPred := compileRegPred(v.Pred)
		p.stages = append(p.stages, stage{kind: stFilter, tests: tests, complex: complexPred, opIdx: idx})
		return p

	case plan.Project:
		idx := tb.add("project", fmt.Sprintf("exprs=%d", len(v.Exprs)), depth)
		p := compilePipe(v.Child, c, opt, tb, depth+1)
		maps := make([]mapSlot, len(v.Exprs))
		for i, e := range v.Exprs {
			if col, ok := e.(expr.Col); ok {
				maps[i] = mapSlot{isMove: true, srcReg: col.Attr}
			} else {
				maps[i] = mapSlot{e: e}
			}
		}
		p.stages = append(p.stages, stage{
			kind:     stMap,
			maps:     maps,
			outWidth: len(maps),
			buf:      make([]storage.Word, len(maps)),
			opIdx:    idx,
		})
		p.outWidth = len(maps)
		return p

	case plan.HashJoin:
		// Build side: materialize (pipeline breaker) and radix-partition
		// the rows into per-partition flat buffers + hash tables; under
		// serial options this degenerates to the single flat buffer.
		//
		// The build executes here, at compile time, so its trace entry is
		// Static: measured once and replayed by every cached execution. The
		// left subtree's own operators are compiled against a throwaway
		// traceBuild — they never run again, so they have no per-execution
		// accumulators.
		probeIdx := tb.add("join-probe", "", depth)
		buildIdx := tb.add("join-build", "", depth+1)
		start := time.Now()
		leftRows := prepareNode(v.Left, c, opt, &traceBuild{}, 0)(nil)
		leftWidth := nodeWidth(v.Left, c)
		jt := joinpar.Build(leftRows, v.LeftKey, leftWidth, opt)
		tb.setStatic(buildIdx, int64(len(leftRows)), int64(len(leftRows)), time.Since(start).Nanoseconds())
		// Probe side: continue the pipeline.
		p := compilePipe(v.Right, c, opt, tb, depth+1)
		p.stages = append(p.stages, stage{
			kind:     stProbe,
			jt:       jt,
			keyReg:   v.RightKey,
			addWidth: leftWidth,
			buf:      make([]storage.Word, leftWidth+p.outWidth),
			opIdx:    probeIdx,
		})
		p.outWidth = leftWidth + p.outWidth
		return p
	}
	panic(fmt.Sprintf("jit: node %T is not pipelineable", n))
}

func compileScan(v plan.Scan, c *plan.Catalog, tb *traceBuild, depth int) *pipe {
	rel := c.Table(v.Table)
	p := &pipe{rel: rel, srcWidth: len(v.Cols), outWidth: len(v.Cols)}
	filter := v.Filter
	if acc, ok := exec.PlanIndexAccess(c, v.Table, v.Filter); ok {
		p.useIndex = true
		p.idx = c.Index(v.Table, acc.Attr)
		p.key = acc.Key
		filter = acc.Rest
	}
	detail := "table=" + v.Table
	if p.useIndex {
		detail += " index"
	}
	p.srcOp = tb.add("scan", detail, depth)
	p.baseTests, p.complex = compileBasePred(filter, rel)
	p.loads = make([]load, 0, len(v.Cols))
	for i, attr := range v.Cols {
		a := rel.Access(attr)
		p.loads = append(p.loads, load{data: a.Data, stride: a.Stride, off: a.Off, reg: i})
	}
	return p
}

// compileBasePred lowers a predicate over base attributes into direct-
// access tests; non-conjunctive structure stays interpreted.
func compileBasePred(p expr.Pred, rel *storage.Relation) ([]test, expr.Pred) {
	var tests []test
	var rest []expr.Pred
	for _, conj := range conjuncts(p) {
		t, ok := lowerTest(conj)
		if !ok {
			rest = append(rest, conj)
			continue
		}
		a := rel.Access(attrOf(conj))
		t.data, t.stride, t.off = a.Data, a.Stride, a.Off
		tests = append(tests, t)
	}
	if len(rest) == 0 {
		return tests, nil
	}
	return tests, expr.Conj(rest...)
}

// compileRegPred lowers a predicate over register positions.
func compileRegPred(p expr.Pred) ([]test, expr.Pred) {
	var tests []test
	var rest []expr.Pred
	for _, conj := range conjuncts(p) {
		t, ok := lowerTest(conj)
		if !ok {
			rest = append(rest, conj)
			continue
		}
		t.pos = attrOf(conj)
		tests = append(tests, t)
	}
	if len(rest) == 0 {
		return tests, nil
	}
	return tests, expr.Conj(rest...)
}

func lowerTest(p expr.Pred) (test, bool) {
	switch v := p.(type) {
	case expr.Cmp:
		return test{kind: tCmp, op: v.Op, val: v.Val}, true
	case expr.Between:
		return test{kind: tBetween, lo: v.Lo, hi: v.Hi}, true
	case expr.InSet:
		return test{kind: tInSet, set: v.Set}, true
	case expr.NotNull:
		return test{kind: tNotNull}, true
	}
	return test{}, false
}

func attrOf(p expr.Pred) int {
	switch v := p.(type) {
	case expr.Cmp:
		return v.Attr
	case expr.Between:
		return v.Attr
	case expr.InSet:
		return v.Attr
	case expr.NotNull:
		return v.Attr
	}
	panic("jit: predicate has no attribute")
}

func conjuncts(p expr.Pred) []expr.Pred {
	switch v := p.(type) {
	case nil:
		return nil
	case expr.True:
		return nil
	case expr.And:
		return v.Preds
	default:
		return []expr.Pred{p}
	}
}

func nodeWidth(n plan.Node, c *plan.Catalog) int {
	return len(plan.Output(n, c))
}
