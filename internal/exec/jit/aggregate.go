package jit

import (
	"sync/atomic"
	"time"

	"repro/internal/exec"
	"repro/internal/exec/par"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/storage"
)

// fastScanAggregate handles: pipeline without stages, index or interpreted
// residue; no grouping; aggregates restricted to count(*) and sum/count
// over integer columns. It compiles to the paper's single fused loop: scan,
// compare, accumulate — all operators merged, values never leaving the
// "registers". Under the morsel scheduler the loop runs once per morsel
// into per-morsel partial accumulators; integer addition is exact, so the
// morsel-order reduction is bit-identical to the serial loop.
//
// When the trace is armed, the same kernel runs with its morsels timed
// from the outside: the fused scan-aggregate loop is one operator pair in
// the trace — the scan op takes the per-morsel lanes, the group-by op the
// reduction totals — without touching the loop body itself.
func fastScanAggregate(p *pipe, v plan.Aggregate, opt par.Options, tr *obs.QueryTrace, aggIdx int) ([][]storage.Word, bool) {
	if len(p.stages) != 0 || p.complex != nil || p.useIndex || len(v.GroupBy) != 0 {
		return nil, false
	}
	type sumSlot struct {
		data   []storage.Word
		stride int
		off    int
	}
	var sums []sumSlot
	var sumIdx []int // aggregate position of each sum
	countPos := -1
	for i, spec := range v.Aggs {
		switch spec.Kind {
		case expr.Count:
			if countPos >= 0 {
				return nil, false
			}
			countPos = i
		case expr.Sum:
			col, ok := spec.Arg.(expr.Col)
			if !ok || col.Ty != storage.Int64 {
				return nil, false
			}
			if col.Attr >= len(p.loads) {
				return nil, false
			}
			l := p.loads[col.Attr]
			sums = append(sums, sumSlot{data: l.data, stride: l.stride, off: l.off})
			sumIdx = append(sumIdx, i)
		default:
			return nil, false
		}
	}

	// The generated-loop analogue, parameterized by row range so the same
	// kernel serves the serial loop and every morsel: specializations by
	// test count with the accumulation inlined. The four-sum case is the
	// paper's example query.
	accumulate := func(lo, hi int) ([]int64, int64) {
		accs := make([]int64, len(sums))
		var count int64
		switch {
		case len(p.baseTests) == 1 && len(sums) == 4:
			t := p.baseTests[0]
			s0, s1, s2, s3 := sums[0], sums[1], sums[2], sums[3]
			var a0, a1, a2, a3 int64
			for row := lo; row < hi; row++ {
				if passTest(&t, t.data[row*t.stride+t.off]) {
					count++
					if w := s0.data[row*s0.stride+s0.off]; w != storage.Null {
						a0 += storage.DecodeInt(w)
					}
					if w := s1.data[row*s1.stride+s1.off]; w != storage.Null {
						a1 += storage.DecodeInt(w)
					}
					if w := s2.data[row*s2.stride+s2.off]; w != storage.Null {
						a2 += storage.DecodeInt(w)
					}
					if w := s3.data[row*s3.stride+s3.off]; w != storage.Null {
						a3 += storage.DecodeInt(w)
					}
				}
			}
			accs[0], accs[1], accs[2], accs[3] = a0, a1, a2, a3
		default:
			for row := lo; row < hi; row++ {
				pass := true
				for i := range p.baseTests {
					t := &p.baseTests[i]
					if !passTest(t, t.data[row*t.stride+t.off]) {
						pass = false
						break
					}
				}
				if !pass {
					continue
				}
				count++
				for i := range sums {
					s := &sums[i]
					if w := s.data[row*s.stride+s.off]; w != storage.Null {
						accs[i] += storage.DecodeInt(w)
					}
				}
			}
		}
		return accs, count
	}

	n := p.rel.Rows()
	var accs []int64
	var count int64
	aggStart := time.Now()
	if opt.Parallel() {
		type partial struct {
			accs  []int64
			count int64
		}
		parts := make([]partial, opt.Morsels(n))
		if tr == nil {
			par.Run(n, opt, func(_, m, lo, hi int) {
				a, cnt := accumulate(lo, hi)
				parts[m] = partial{accs: a, count: cnt}
			})
		} else {
			morsels, workers := opt.Morsels(n), opt.WorkerCount()
			scanOp := tr.Op(p.srcOp)
			par.Run(n, opt, func(w, m, lo, hi int) {
				start := time.Now()
				a, cnt := accumulate(lo, hi)
				nanos := time.Since(start).Nanoseconds()
				parts[m] = partial{accs: a, count: cnt}
				scanOp.Add(int64(hi-lo), cnt, nanos)
				if l := scanOp.Lane(w); l != nil {
					l.Rows += cnt
					l.Nanos += nanos
					l.Morsels++
					if par.ExpectedWorker(m, morsels, workers) != w {
						l.Stolen++
					}
				}
			})
		}
		accs = make([]int64, len(sums))
		for _, pt := range parts {
			count += pt.count
			for i := range accs {
				accs[i] += pt.accs[i]
			}
		}
	} else {
		accs, count = accumulate(0, n)
		if tr != nil {
			nanos := time.Since(aggStart).Nanoseconds()
			scanOp := tr.Op(p.srcOp)
			scanOp.Add(int64(n), count, nanos)
			if l := scanOp.Lane(0); l != nil {
				l.Rows += count
				l.Nanos += nanos
				l.Morsels++
			}
		}
	}
	if tr != nil {
		tr.Op(aggIdx).Add(count, 1, time.Since(aggStart).Nanoseconds())
	}

	row := make([]storage.Word, len(v.Aggs))
	for i, pos := range sumIdx {
		row[pos] = storage.EncodeInt(accs[i])
	}
	if countPos >= 0 {
		row[countPos] = storage.EncodeInt(count)
	}
	return [][]storage.Word{row}, true
}

// argComp is one compiled aggregate argument: column references become
// register moves, computed expressions stay interpreted.
type argComp struct {
	isCol  bool
	srcReg int
	e      expr.Expr
}

// groupSink accumulates grouped aggregation state fed by a pipeline's emit
// stream. Sinks merge: the parallel path runs one sink per morsel and
// folds them together in morsel order, which reproduces the serial sink's
// group discovery order (a group's first morsel is its first row).
type groupSink struct {
	v     plan.Aggregate
	specs []expr.AggSpec
	args  []argComp

	keys   [][]storage.Word  // group id -> group key values
	states [][]expr.AggState // group id -> per-aggregate state
	ids1   map[storage.Word]int32
	idsN   map[exec.GroupKey]int32
}

func newGroupSink(v plan.Aggregate, specs []expr.AggSpec, args []argComp) *groupSink {
	s := &groupSink{v: v, specs: specs, args: args}
	switch len(v.GroupBy) {
	case 0:
	case 1:
		// Single-column grouping: a word-keyed map is several times
		// cheaper per tuple than the generic composite key.
		s.ids1 = map[storage.Word]int32{}
	default:
		s.idsN = map[exec.GroupKey]int32{}
	}
	return s
}

func (s *groupSink) newStates() []expr.AggState {
	st := make([]expr.AggState, len(s.specs))
	for i := range s.specs {
		st[i] = expr.NewAggState(s.specs[i])
	}
	return st
}

func (s *groupSink) addGroup(key []storage.Word) int32 {
	id := int32(len(s.states))
	s.keys = append(s.keys, key)
	s.states = append(s.states, s.newStates())
	return id
}

// groupOf locates (or creates) the tuple's group.
func (s *groupSink) groupOf(regs []storage.Word) int32 {
	switch len(s.v.GroupBy) {
	case 0:
		if len(s.states) == 0 {
			return s.addGroup(nil)
		}
		return 0
	case 1:
		k := regs[s.v.GroupBy[0]]
		id, ok := s.ids1[k]
		if !ok {
			id = s.addGroup([]storage.Word{k})
			s.ids1[k] = id
		}
		return id
	default:
		k := exec.MakeGroupKey(regs, s.v.GroupBy)
		id, ok := s.idsN[k]
		if !ok {
			key := make([]storage.Word, len(s.v.GroupBy))
			for i, pos := range s.v.GroupBy {
				key[i] = regs[pos]
			}
			id = s.addGroup(key)
			s.idsN[k] = id
		}
		return id
	}
}

// fold is the per-tuple path: one AddValue per aggregate with no
// expression walking for the common Sum(col)/Min(col)/Max(col) case.
func (s *groupSink) fold(regs []storage.Word) {
	st := s.states[s.groupOf(regs)]
	for i := range st {
		a := &s.args[i]
		switch {
		case s.v.Aggs[i].Arg == nil: // count(*)
			st[i].AddValue(0)
		case a.isCol:
			st[i].AddValue(regs[a.srcReg])
		default:
			st[i].AddValue(expr.EvalExpr(a.e, func(p int) storage.Word { return regs[p] }))
		}
	}
}

// lookupKey finds the receiver's group id for another sink's key, creating
// the group if new.
func (s *groupSink) lookupKey(key []storage.Word) int32 {
	switch len(s.v.GroupBy) {
	case 0:
		if len(s.states) == 0 {
			return s.addGroup(nil)
		}
		return 0
	case 1:
		k := key[0]
		id, ok := s.ids1[k]
		if !ok {
			id = s.addGroup(key)
			s.ids1[k] = id
		}
		return id
	default:
		var k exec.GroupKey
		copy(k[:], key)
		id, ok := s.idsN[k]
		if !ok {
			id = s.addGroup(key)
			s.idsN[k] = id
		}
		return id
	}
}

// merge folds o's groups into s in o's discovery order.
func (s *groupSink) merge(o *groupSink) {
	for g := range o.states {
		st := s.states[s.lookupKey(o.keys[g])]
		for i := range st {
			st[i].Merge(&o.states[g][i])
		}
	}
}

// rows materializes the groups in discovery order. An ungrouped aggregate
// over empty input still yields one row.
func (s *groupSink) rows() [][]storage.Word {
	if len(s.v.GroupBy) == 0 && len(s.states) == 0 {
		s.addGroup(nil)
	}
	rows := make([][]storage.Word, 0, len(s.states))
	for g := range s.states {
		row := make([]storage.Word, 0, len(s.keys[g])+len(s.v.Aggs))
		row = append(row, s.keys[g]...)
		for i := range s.states[g] {
			row = append(row, s.states[g][i].Result())
		}
		rows = append(rows, row)
	}
	return rows
}

// genericAggregate runs the pipeline into a grouped aggregation sink. The
// aggregate arguments are compiled once; under the morsel scheduler each
// morsel feeds its own sink and the sinks merge in morsel order, which is
// exact (and therefore enabled) only while no float sums are involved.
func genericAggregate(p *pipe, v plan.Aggregate, opt par.Options, tr *obs.QueryTrace, aggIdx int) [][]storage.Word {
	args := make([]argComp, len(v.Aggs))
	specs := make([]expr.AggSpec, len(v.Aggs))
	for i, spec := range v.Aggs {
		specs[i] = spec
		if spec.Arg == nil {
			continue
		}
		if col, ok := spec.Arg.(expr.Col); ok {
			args[i] = argComp{isCol: true, srcReg: col.Attr}
		} else {
			args[i] = argComp{e: spec.Arg}
			// Normalize the state's argument: the value arrives
			// pre-evaluated through AddValue.
			specs[i].Arg = expr.Col{Attr: 0, Ty: spec.Arg.Type()}
		}
	}

	if p.parallelizable(opt) && expr.MergeExact(v.Aggs) {
		n := p.rel.Rows()
		sinks := make([]*groupSink, opt.Morsels(n))
		pool := make([]*pipeWorker, opt.WorkerCount())
		if tr == nil {
			par.Run(n, opt, func(w, m, lo, hi int) {
				ws := p.worker(pool, w)
				ms := newGroupSink(v, specs, args)
				ws.pipe.runRange(lo, hi, ws.regs, ms.fold)
				sinks[m] = ms
			})
			total := newGroupSink(v, specs, args)
			for _, ms := range sinks {
				total.merge(ms)
			}
			return total.rows()
		}
		morsels, workers := opt.Morsels(n), opt.WorkerCount()
		var folded atomic.Int64
		aggStart := time.Now()
		par.Run(n, opt, func(w, m, lo, hi int) {
			ws := p.worker(pool, w)
			ms := newGroupSink(v, specs, args)
			cn := make([]int64, 2+len(p.stages))
			start := time.Now()
			ws.pipe.runRangeCount(lo, hi, ws.regs, cn, ms.fold)
			nanos := time.Since(start).Nanoseconds()
			sinks[m] = ms
			var stolen int64
			if par.ExpectedWorker(m, morsels, workers) != w {
				stolen = 1
			}
			p.flushCounts(tr, w, cn, nanos, 1, stolen)
			folded.Add(emittedOf(cn, len(p.stages)))
		})
		total := newGroupSink(v, specs, args)
		for _, ms := range sinks {
			total.merge(ms)
		}
		rows := total.rows()
		tr.Op(aggIdx).Add(folded.Load(), int64(len(rows)), time.Since(aggStart).Nanoseconds())
		return rows
	}

	// Clone for the same reason as the serial row path: stage buffers and
	// the index-lookup scratch are per-execution state under concurrency.
	sink := newGroupSink(v, specs, args)
	q := p.cloneForWorker()
	if tr == nil {
		q.run(sink.fold)
		return sink.rows()
	}
	start := time.Now()
	folded := q.runTraced(tr, sink.fold)
	rows := sink.rows()
	tr.Op(aggIdx).Add(folded, int64(len(rows)), time.Since(start).Nanoseconds())
	return rows
}
