package jit

import (
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/storage"
)

// fastScanAggregate handles: pipeline without stages, index or interpreted
// residue; no grouping; aggregates restricted to count(*) and sum/count
// over integer columns. It compiles to the paper's single fused loop: scan,
// compare, accumulate — all operators merged, values never leaving the
// "registers".
func fastScanAggregate(p *pipe, v plan.Aggregate) ([][]storage.Word, bool) {
	if len(p.stages) != 0 || p.complex != nil || p.useIndex || len(v.GroupBy) != 0 {
		return nil, false
	}
	type sumSlot struct {
		data   []storage.Word
		stride int
		off    int
	}
	var sums []sumSlot
	var sumIdx []int // aggregate position of each sum
	countPos := -1
	for i, spec := range v.Aggs {
		switch spec.Kind {
		case expr.Count:
			if countPos >= 0 {
				return nil, false
			}
			countPos = i
		case expr.Sum:
			col, ok := spec.Arg.(expr.Col)
			if !ok || col.Ty != storage.Int64 {
				return nil, false
			}
			if col.Attr >= len(p.loads) {
				return nil, false
			}
			l := p.loads[col.Attr]
			sums = append(sums, sumSlot{data: l.data, stride: l.stride, off: l.off})
			sumIdx = append(sumIdx, i)
		default:
			return nil, false
		}
	}

	accs := make([]int64, len(sums))
	var count int64
	n := p.rel.Rows()

	// The generated-loop analogue: specializations by test count with the
	// accumulation inlined. The four-sum case is the paper's example query.
	switch {
	case len(p.baseTests) == 1 && len(sums) == 4:
		t := p.baseTests[0]
		s0, s1, s2, s3 := sums[0], sums[1], sums[2], sums[3]
		var a0, a1, a2, a3 int64
		for row := 0; row < n; row++ {
			if passTest(&t, t.data[row*t.stride+t.off]) {
				count++
				if w := s0.data[row*s0.stride+s0.off]; w != storage.Null {
					a0 += storage.DecodeInt(w)
				}
				if w := s1.data[row*s1.stride+s1.off]; w != storage.Null {
					a1 += storage.DecodeInt(w)
				}
				if w := s2.data[row*s2.stride+s2.off]; w != storage.Null {
					a2 += storage.DecodeInt(w)
				}
				if w := s3.data[row*s3.stride+s3.off]; w != storage.Null {
					a3 += storage.DecodeInt(w)
				}
			}
		}
		accs[0], accs[1], accs[2], accs[3] = a0, a1, a2, a3
	default:
		for row := 0; row < n; row++ {
			pass := true
			for i := range p.baseTests {
				t := &p.baseTests[i]
				if !passTest(t, t.data[row*t.stride+t.off]) {
					pass = false
					break
				}
			}
			if !pass {
				continue
			}
			count++
			for i := range sums {
				s := &sums[i]
				if w := s.data[row*s.stride+s.off]; w != storage.Null {
					accs[i] += storage.DecodeInt(w)
				}
			}
		}
	}

	row := make([]storage.Word, len(v.Aggs))
	for i, pos := range sumIdx {
		row[pos] = storage.EncodeInt(accs[i])
	}
	if countPos >= 0 {
		row[countPos] = storage.EncodeInt(count)
	}
	return [][]storage.Word{row}, true
}

// genericAggregate runs the pipeline into a grouped aggregation sink. The
// aggregate arguments are compiled once: column references become register
// moves, computed expressions stay interpreted — so the per-tuple path is
// one AddValue per aggregate with no expression walking for the common
// Sum(col)/Min(col)/Max(col) case.
func genericAggregate(p *pipe, v plan.Aggregate) [][]storage.Word {
	type argComp struct {
		isCol  bool
		srcReg int
		e      expr.Expr
	}
	args := make([]argComp, len(v.Aggs))
	specs := make([]expr.AggSpec, len(v.Aggs))
	for i, spec := range v.Aggs {
		specs[i] = spec
		if spec.Arg == nil {
			continue
		}
		if col, ok := spec.Arg.(expr.Col); ok {
			args[i] = argComp{isCol: true, srcReg: col.Attr}
		} else {
			args[i] = argComp{e: spec.Arg}
			// Normalize the state's argument: the value arrives
			// pre-evaluated through AddValue.
			specs[i].Arg = expr.Col{Attr: 0, Ty: spec.Arg.Type()}
		}
	}

	var keys [][]storage.Word    // group id -> group key values
	var states [][]expr.AggState // group id -> per-aggregate state
	newStates := func() []expr.AggState {
		st := make([]expr.AggState, len(v.Aggs))
		for i := range specs {
			st[i] = expr.NewAggState(specs[i])
		}
		return st
	}

	fold := func(st []expr.AggState, regs []storage.Word) {
		for i := range st {
			a := &args[i]
			switch {
			case v.Aggs[i].Arg == nil: // count(*)
				st[i].AddValue(0)
			case a.isCol:
				st[i].AddValue(regs[a.srcReg])
			default:
				st[i].AddValue(expr.EvalExpr(a.e, func(p int) storage.Word { return regs[p] }))
			}
		}
	}

	switch len(v.GroupBy) {
	case 0:
		st := newStates()
		states = append(states, st)
		keys = append(keys, nil)
		p.run(func(regs []storage.Word) { fold(st, regs) })

	case 1:
		// Single-column grouping: a word-keyed map is several times
		// cheaper per tuple than the generic composite key.
		pos := v.GroupBy[0]
		ids := map[storage.Word]int32{}
		p.run(func(regs []storage.Word) {
			k := regs[pos]
			id, ok := ids[k]
			if !ok {
				id = int32(len(states))
				ids[k] = id
				keys = append(keys, []storage.Word{k})
				states = append(states, newStates())
			}
			fold(states[id], regs)
		})

	default:
		ids := map[exec.GroupKey]int32{}
		p.run(func(regs []storage.Word) {
			k := exec.MakeGroupKey(regs, v.GroupBy)
			id, ok := ids[k]
			if !ok {
				id = int32(len(states))
				ids[k] = id
				key := make([]storage.Word, len(v.GroupBy))
				for i, pos := range v.GroupBy {
					key[i] = regs[pos]
				}
				keys = append(keys, key)
				states = append(states, newStates())
			}
			fold(states[id], regs)
		})
	}

	rows := make([][]storage.Word, 0, len(states))
	for g := range states {
		row := make([]storage.Word, 0, len(keys[g])+len(v.Aggs))
		row = append(row, keys[g]...)
		for i := range states[g] {
			row = append(row, states[g][i].Result())
		}
		rows = append(rows, row)
	}
	return rows
}
