package jit

import (
	"repro/internal/exec"
	"repro/internal/exec/result"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/storage"
)

// Engine is the JiT-compilation engine.
type Engine struct{}

// New returns the engine.
func New() Engine { return Engine{} }

// Name returns "jit".
func (Engine) Name() string { return "jit" }

// Run compiles the plan into pipeline programs and executes them once.
// Repeated executions of the same plan should use Prepare, which separates
// compilation from execution the way HyPer's query compiler does.
func (Engine) Run(n plan.Node, c *plan.Catalog) *result.Set {
	if ins, ok := n.(plan.Insert); ok {
		return exec.RunInsert(ins, c)
	}
	return Prepare(n, c).Exec()
}

// Prepared is a compiled query: the pipeline programs, probe tables and
// output schema are built once; Exec re-runs the compiled form (index
// lookups are re-evaluated per execution). Like any prepared statement
// over materialized build sides, a Prepared must be re-prepared after the
// underlying tables change.
type Prepared struct {
	cols []plan.Column
	exec func() [][]storage.Word
}

// Prepare compiles the plan against the catalog.
func Prepare(n plan.Node, c *plan.Catalog) *Prepared {
	if ins, ok := n.(plan.Insert); ok {
		return &Prepared{
			cols: plan.Output(n, c),
			exec: func() [][]storage.Word { return exec.RunInsert(ins, c).Rows },
		}
	}
	return &Prepared{cols: plan.Output(n, c), exec: prepareNode(n, c)}
}

// Exec runs the compiled query.
func (p *Prepared) Exec() *result.Set {
	out := result.New(p.cols)
	out.Rows = p.exec()
	return out
}

// runNode executes a plan subtree to materialized rows (compile + run).
func runNode(n plan.Node, c *plan.Catalog) [][]storage.Word {
	return prepareNode(n, c)()
}

// prepareNode compiles a plan subtree into an executable closure. Pipeline
// breakers (aggregate, sort, limit) sit between compiled pipelines.
func prepareNode(n plan.Node, c *plan.Catalog) func() [][]storage.Word {
	switch v := n.(type) {
	case plan.Sort:
		child := prepareNode(v.Child, c)
		return func() [][]storage.Word {
			rows := child()
			exec.SortRows(rows, v.Keys)
			return rows
		}
	case plan.Limit:
		child := prepareNode(v.Child, c)
		return func() [][]storage.Word {
			rows := child()
			if len(rows) > v.N {
				rows = rows[:v.N]
			}
			return rows
		}
	case plan.Aggregate:
		p := compilePipe(v.Child, c)
		return func() [][]storage.Word {
			if rows, ok := fastScanAggregate(p, v); ok {
				return rows
			}
			return genericAggregate(p, v)
		}
	default:
		p := compilePipe(n, c)
		return func() [][]storage.Word {
			r := &runner{p: p}
			p.run(r.emitRow)
			return r.rows
		}
	}
}

type runner struct {
	p    *pipe
	rows [][]storage.Word
}

func (r *runner) emitRow(regs []storage.Word) {
	r.rows = append(r.rows, append([]storage.Word(nil), regs...))
}

// run drives the pipeline: one fused loop over the source rows, applying
// compiled tests by direct slice access, loading registers, executing the
// stages and calling emit for every surviving register image. The emit
// indirection is the only per-row call left; the paper's hot shapes avoid
// even that through the fast paths in aggregate.go.
func (p *pipe) run(emit func([]storage.Word)) {
	regs := make([]storage.Word, p.srcWidth)
	n := p.rel.Rows()
	var complexRow int
	complexFn := func(a int) storage.Word { return p.rel.Value(complexRow, a) }

	process := func(row int) {
		for i := range p.baseTests {
			t := &p.baseTests[i]
			w := t.data[row*t.stride+t.off]
			if !passTest(t, w) {
				return
			}
		}
		if p.complex != nil {
			complexRow = row
			if !expr.EvalPred(p.complex, complexFn) {
				return
			}
		}
		for i := range p.loads {
			l := &p.loads[i]
			regs[l.reg] = l.data[row*l.stride+l.off]
		}
		p.pushStages(0, regs, emit)
	}

	if p.useIndex {
		p.indexRows = p.idx.Lookup(p.key, p.indexRows[:0])
		for _, row := range p.indexRows {
			process(int(row))
		}
		return
	}
	for row := 0; row < n; row++ {
		process(row)
	}
}

// passTest evaluates one compiled test on a value.
func passTest(t *test, w storage.Word) bool {
	switch t.kind {
	case tCmp:
		switch t.op {
		case expr.Eq:
			return w == t.val
		case expr.Ne:
			return w != t.val
		case expr.Lt:
			return w < t.val
		case expr.Le:
			return w <= t.val
		case expr.Gt:
			return w > t.val
		default:
			return w >= t.val
		}
	case tBetween:
		return w >= t.lo && w <= t.hi
	case tInSet:
		return t.set.Contains(w)
	default: // tNotNull
		return w != storage.Null
	}
}

// pushStages advances a register image through the stages starting at si.
// Only multi-match probes recurse; the single-match path stays in the flat
// loop.
func (p *pipe) pushStages(si int, regs []storage.Word, emit func([]storage.Word)) {
	for ; si < len(p.stages); si++ {
		st := &p.stages[si]
		switch st.kind {
		case stFilter:
			for i := range st.tests {
				t := &st.tests[i]
				if !passTest(t, regs[t.pos]) {
					return
				}
			}
			if st.complex != nil {
				if !expr.EvalPred(st.complex, func(a int) storage.Word { return regs[a] }) {
					return
				}
			}
		case stMap:
			buf := st.buf
			for i := range st.maps {
				m := &st.maps[i]
				if m.isMove {
					buf[i] = regs[m.srcReg]
				} else {
					buf[i] = expr.EvalExpr(m.e, func(a int) storage.Word { return regs[a] })
				}
			}
			regs = buf
		case stProbe:
			matches := st.table[regs[st.keyReg]]
			if len(matches) == 0 {
				return
			}
			buf := st.buf
			copy(buf[st.addWidth:], regs)
			if len(matches) == 1 {
				copy(buf[:st.addWidth], matches[0])
				regs = buf
				continue
			}
			for _, m := range matches {
				copy(buf[:st.addWidth], m)
				p.pushStages(si+1, buf, emit)
			}
			return
		}
	}
	emit(regs)
}
