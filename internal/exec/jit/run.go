package jit

import (
	"fmt"
	"time"

	"repro/internal/exec"
	"repro/internal/exec/par"
	"repro/internal/exec/result"
	"repro/internal/exec/sortpar"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/storage"
)

// Engine is the JiT-compilation engine. The zero value runs scans on every
// core; use New for the serial engine or NewParallel to pick a worker
// count.
type Engine struct {
	opt par.Options
}

// New returns the serial engine (workers = 1), the configuration of the
// paper's single-core measurements.
func New() Engine { return Engine{opt: par.Serial()} }

// NewParallel returns an engine whose table scans run under the morsel
// scheduler with the given options (Workers == 0 means GOMAXPROCS).
// Results are identical to the serial engine's, row order included.
func NewParallel(opt par.Options) Engine { return Engine{opt: opt} }

// Name returns "jit".
func (Engine) Name() string { return "jit" }

// Run compiles the plan into pipeline programs and executes them once.
// Repeated executions of the same plan should use Prepare, which separates
// compilation from execution the way HyPer's query compiler does.
func (e Engine) Run(n plan.Node, c *plan.Catalog) *result.Set {
	if ins, ok := n.(plan.Insert); ok {
		return exec.RunInsert(ins, c)
	}
	return PrepareOpt(n, c, e.opt).Exec()
}

// Prepared is a compiled query: the pipeline programs, probe tables and
// output schema are built once; Exec re-runs the compiled form (index
// lookups are re-evaluated per execution). Like any prepared statement
// over materialized build sides, a Prepared must be re-prepared after the
// underlying tables change.
//
// Exec is safe for concurrent use by multiple goroutines (except for
// Insert plans, which mutate the table): the compiled form is read-only
// and every execution works on private register files, stage buffers and
// sinks. The service layer relies on this to run one cached Prepared for
// many simultaneous requests.
type Prepared struct {
	cols     []plan.Column
	exec     func(tr *obs.QueryTrace) [][]storage.Word
	protos   []obs.OpProto
	workers  int
	accesses []exec.TableAccess
}

// Prepare compiles the plan against the catalog for serial execution.
func Prepare(n plan.Node, c *plan.Catalog) *Prepared {
	return PrepareOpt(n, c, par.Serial())
}

// PrepareOpt compiles the plan with the given parallelism options baked
// into the executable form.
func PrepareOpt(n plan.Node, c *plan.Catalog, opt par.Options) *Prepared {
	workers := opt.WorkerCount()
	tb := &traceBuild{}
	if ins, ok := n.(plan.Insert); ok {
		idx := tb.add("insert", "table="+ins.Table, 0)
		return &Prepared{
			cols:    plan.Output(n, c),
			protos:  tb.protos,
			workers: workers,
			exec: func(tr *obs.QueryTrace) [][]storage.Word {
				if tr == nil {
					return exec.RunInsert(ins, c).Rows
				}
				start := time.Now()
				rows := exec.RunInsert(ins, c).Rows
				tr.Op(idx).Add(int64(len(ins.Rows)), int64(len(rows)), time.Since(start).Nanoseconds())
				return rows
			},
		}
	}
	ex := prepareNode(n, c, opt, tb, 0)
	return &Prepared{
		cols:     plan.Output(n, c),
		exec:     ex,
		protos:   tb.protos,
		workers:  workers,
		accesses: exec.CollectAccesses(n, c),
	}
}

// Accesses returns the compiled plan's base-table footprint — which
// tables and attribute positions each execution reads, and how many rows
// it scans — computed once at compile time. The service's workload
// capture resolves it into atomic counters so the per-execution cost of
// always-on telemetry is a handful of atomic adds.
func (p *Prepared) Accesses() []exec.TableAccess { return p.accesses }

// Exec runs the compiled query with tracing disarmed.
func (p *Prepared) Exec() *result.Set { return p.ExecTraced(nil) }

// ExecTraced runs the compiled query, threading tr (from NewTrace) through
// every operator. A nil trace takes the untouched hot loops.
func (p *Prepared) ExecTraced(tr *obs.QueryTrace) *result.Set {
	out := result.New(p.cols)
	out.Rows = p.exec(tr)
	return out
}

// NewTrace instantiates a trace shaped for this compiled plan: one
// accumulator per operator in plan pre-order, lanes sized for the compiled
// worker count. Each trace accounts one ExecTraced call; traces are not
// reusable across executions.
func (p *Prepared) NewTrace() *obs.QueryTrace {
	return obs.NewTrace(p.protos, p.workers)
}

// prepareNode compiles a plan subtree into an executable closure. Pipeline
// breakers (aggregate, sort, limit) sit between compiled pipelines. tb
// collects operator descriptors in plan pre-order; depth is the subtree's
// depth in the rendered trace.
func prepareNode(n plan.Node, c *plan.Catalog, opt par.Options, tb *traceBuild, depth int) func(*obs.QueryTrace) [][]storage.Word {
	switch v := n.(type) {
	case plan.Sort:
		idx := tb.add("sort", fmt.Sprintf("keys=%d", len(v.Keys)), depth)
		child := prepareNode(v.Child, c, opt, tb, depth+1)
		return func(tr *obs.QueryTrace) [][]storage.Word {
			rows := child(tr)
			if tr == nil {
				sortpar.Sort(rows, v.Keys, opt)
				return rows
			}
			start := time.Now()
			sortpar.Sort(rows, v.Keys, opt)
			tr.Op(idx).Add(int64(len(rows)), int64(len(rows)), time.Since(start).Nanoseconds())
			return rows
		}
	case plan.Limit:
		// ORDER BY … LIMIT k fuses into a bounded top-N: no execution ever
		// materializes more than k sorted rows per worker before the merge.
		if srt, ok := v.Child.(plan.Sort); ok {
			return prepareTopN(srt, v.N, c, opt, tb, depth)
		}
		idx := tb.add("limit", fmt.Sprintf("n=%d", v.N), depth)
		child := prepareNode(v.Child, c, opt, tb, depth+1)
		return func(tr *obs.QueryTrace) [][]storage.Word {
			rows := child(tr)
			in := int64(len(rows))
			if len(rows) > v.N {
				rows = rows[:v.N]
			}
			tr.Op(idx).Add(in, int64(len(rows)), 0)
			return rows
		}
	case plan.Aggregate:
		idx := tb.add("group-by", fmt.Sprintf("groupBy=%d aggs=%d", len(v.GroupBy), len(v.Aggs)), depth)
		p := compilePipe(v.Child, c, opt, tb, depth+1)
		return func(tr *obs.QueryTrace) [][]storage.Word {
			if rows, ok := fastScanAggregate(p, v, opt, tr, idx); ok {
				return rows
			}
			return genericAggregate(p, v, opt, tr, idx)
		}
	default:
		p := compilePipe(n, c, opt, tb, depth)
		return func(tr *obs.QueryTrace) [][]storage.Word {
			if p.parallelizable(opt) {
				return p.runParallelRows(opt, tr)
			}
			// Serial execution mutates stage buffers and the index-lookup
			// scratch, so concurrent Execs each run a private clone.
			r := &runner{}
			q := p.cloneForWorker()
			if tr == nil {
				q.run(r.emitRow)
			} else {
				q.runTraced(tr, r.emitRow)
			}
			return r.rows
		}
	}
}

// runner materializes emitted register images through an arena, so a full
// scan costs one allocation per arena chunk instead of one per row.
type runner struct {
	arena result.Arena
	rows  [][]storage.Word
}

func (r *runner) emitRow(regs []storage.Word) {
	r.rows = append(r.rows, r.arena.Copy(regs))
}

// run drives the pipeline serially: index lookups take the fetch loop
// below, table scans take the fused range loop in runRange. The emit
// indirection is the only per-row call left; the paper's hot shapes avoid
// even that through the fast paths in aggregate.go.
func (p *pipe) run(emit func([]storage.Word)) {
	if !p.useIndex {
		p.runRange(0, p.rel.Rows(), make([]storage.Word, p.srcWidth), emit)
		return
	}
	regs := make([]storage.Word, p.srcWidth)
	var complexRow int
	complexFn := func(a int) storage.Word { return p.rel.Value(complexRow, a) }
	p.indexRows = p.idx.Lookup(p.key, p.indexRows[:0])
rows:
	for _, r := range p.indexRows {
		row := int(r)
		for i := range p.baseTests {
			t := &p.baseTests[i]
			if !passTest(t, t.data[row*t.stride+t.off]) {
				continue rows
			}
		}
		if p.complex != nil {
			complexRow = row
			if !expr.EvalPred(p.complex, complexFn) {
				continue rows
			}
		}
		for i := range p.loads {
			l := &p.loads[i]
			regs[l.reg] = l.data[row*l.stride+l.off]
		}
		p.pushStages(0, regs, emit)
	}
}

// runRange is the fused scan loop over the row range [lo, hi): compiled
// tests by direct slice access, register loads, then the stages. It is the
// unit the morsel scheduler drives — each worker runs it on its claimed
// morsel with worker-private regs and a worker-private pipe clone.
func (p *pipe) runRange(lo, hi int, regs []storage.Word, emit func([]storage.Word)) {
	var complexRow int
	complexFn := func(a int) storage.Word { return p.rel.Value(complexRow, a) }
rows:
	for row := lo; row < hi; row++ {
		for i := range p.baseTests {
			t := &p.baseTests[i]
			if !passTest(t, t.data[row*t.stride+t.off]) {
				continue rows
			}
		}
		if p.complex != nil {
			complexRow = row
			if !expr.EvalPred(p.complex, complexFn) {
				continue rows
			}
		}
		for i := range p.loads {
			l := &p.loads[i]
			regs[l.reg] = l.data[row*l.stride+l.off]
		}
		p.pushStages(0, regs, emit)
	}
}

// passTest evaluates one compiled test on a value.
func passTest(t *test, w storage.Word) bool {
	switch t.kind {
	case tCmp:
		switch t.op {
		case expr.Eq:
			return w == t.val
		case expr.Ne:
			return w != t.val
		case expr.Lt:
			return w < t.val
		case expr.Le:
			return w <= t.val
		case expr.Gt:
			return w > t.val
		default:
			return w >= t.val
		}
	case tBetween:
		return w >= t.lo && w <= t.hi
	case tInSet:
		return t.set.Contains(w)
	default: // tNotNull
		return w != storage.Null
	}
}

// pushStages advances a register image through the stages starting at si.
// Only multi-match probes recurse; the single-match path stays in the flat
// loop.
func (p *pipe) pushStages(si int, regs []storage.Word, emit func([]storage.Word)) {
	for ; si < len(p.stages); si++ {
		st := &p.stages[si]
		switch st.kind {
		case stFilter:
			for i := range st.tests {
				t := &st.tests[i]
				if !passTest(t, regs[t.pos]) {
					return
				}
			}
			if st.complex != nil {
				if !expr.EvalPred(st.complex, func(a int) storage.Word { return regs[a] }) {
					return
				}
			}
		case stMap:
			buf := st.buf
			for i := range st.maps {
				m := &st.maps[i]
				if m.isMove {
					buf[i] = regs[m.srcReg]
				} else {
					buf[i] = expr.EvalExpr(m.e, func(a int) storage.Word { return regs[a] })
				}
			}
			regs = buf
		case stProbe:
			matches, build := st.jt.Lookup(regs[st.keyReg])
			if len(matches) == 0 {
				return
			}
			w := st.addWidth
			buf := st.buf
			copy(buf[w:], regs)
			if len(matches) == 1 {
				copy(buf[:w], build[int(matches[0])*w:])
				regs = buf
				continue
			}
			for _, m := range matches {
				copy(buf[:w], build[int(m)*w:])
				p.pushStages(si+1, buf, emit)
			}
			return
		}
	}
	emit(regs)
}
