package jit

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/exec/par"
	"repro/internal/exec/sortpar"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/storage"
)

// prepareTopN compiles the fused ORDER BY … LIMIT k form: instead of
// materializing and fully sorting the sort child's output and then
// truncating, emitted rows feed bounded top-N heaps, so an execution
// allocates O(k) rows per worker instead of O(n) — the asymptotic fix for
// top-N queries. The merged result is bit-identical to stable-sort-then-
// truncate: heaps break key ties by emission ordinal (morsel, seq), the
// serial emission order under the scheduler's determinism contract.
func prepareTopN(srt plan.Sort, k int, c *plan.Catalog, opt par.Options, tb *traceBuild, depth int) func(*obs.QueryTrace) [][]storage.Word {
	idx := tb.add("top-n", fmt.Sprintf("k=%d keys=%d", k, len(srt.Keys)), depth)
	switch srt.Child.(type) {
	case plan.Aggregate, plan.Sort, plan.Limit, plan.Insert:
		// The sort child is itself a breaker: its output is already
		// materialized, so the heap only bounds the sorted copy.
		child := prepareNode(srt.Child, c, opt, tb, depth+1)
		return func(tr *obs.QueryTrace) [][]storage.Word {
			rows := child(tr)
			if tr == nil {
				return topNRows(rows, srt.Keys, k)
			}
			start := time.Now()
			out := topNRows(rows, srt.Keys, k)
			tr.Op(idx).Add(int64(len(rows)), int64(len(out)), time.Since(start).Nanoseconds())
			return out
		}
	}
	p := compilePipe(srt.Child, c, opt, tb, depth+1)
	return func(tr *obs.QueryTrace) [][]storage.Word {
		if p.parallelizable(opt) {
			return p.runParallelTopN(srt.Keys, k, opt, tr, idx)
		}
		t := sortpar.NewTopN(srt.Keys, k)
		seq := 0
		offer := func(regs []storage.Word) {
			t.Offer(regs, 0, seq)
			seq++
		}
		// Serial execution mutates stage buffers and the index-lookup
		// scratch, so concurrent Execs each run a private clone.
		q := p.cloneForWorker()
		if tr == nil {
			q.run(offer)
			return sortpar.MergeTopN([]*sortpar.TopN{t}, srt.Keys, k)
		}
		start := time.Now()
		q.runTraced(tr, offer)
		out := sortpar.MergeTopN([]*sortpar.TopN{t}, srt.Keys, k)
		tr.Op(idx).Add(int64(seq), int64(len(out)), time.Since(start).Nanoseconds())
		return out
	}
}

// runParallelTopN drives the pipe with the morsel scheduler, each worker
// feeding a private bounded heap; candidates merge into the exact first k
// rows of the serial stable sort.
func (p *pipe) runParallelTopN(keys []plan.SortKey, k int, opt par.Options, tr *obs.QueryTrace, topIdx int) [][]storage.Word {
	n := p.rel.Rows()
	pool := make([]*pipeWorker, opt.WorkerCount())
	tops := make([]*sortpar.TopN, opt.WorkerCount())
	if tr == nil {
		par.Run(n, opt, func(w, m, lo, hi int) {
			ws := p.worker(pool, w)
			if tops[w] == nil {
				tops[w] = sortpar.NewTopN(keys, k)
			}
			t := tops[w]
			seq := 0
			ws.pipe.runRange(lo, hi, ws.regs, func(regs []storage.Word) {
				t.Offer(regs, m, seq)
				seq++
			})
		})
		return sortpar.MergeTopN(tops, keys, k)
	}
	morsels, workers := opt.Morsels(n), opt.WorkerCount()
	var offered atomic.Int64
	allStart := time.Now()
	par.Run(n, opt, func(w, m, lo, hi int) {
		ws := p.worker(pool, w)
		if tops[w] == nil {
			tops[w] = sortpar.NewTopN(keys, k)
		}
		t := tops[w]
		seq := 0
		cn := make([]int64, 2+len(p.stages))
		start := time.Now()
		ws.pipe.runRangeCount(lo, hi, ws.regs, cn, func(regs []storage.Word) {
			t.Offer(regs, m, seq)
			seq++
		})
		nanos := time.Since(start).Nanoseconds()
		var stolen int64
		if par.ExpectedWorker(m, morsels, workers) != w {
			stolen = 1
		}
		p.flushCounts(tr, w, cn, nanos, 1, stolen)
		offered.Add(int64(seq))
	})
	out := sortpar.MergeTopN(tops, keys, k)
	tr.Op(topIdx).Add(offered.Load(), int64(len(out)), time.Since(allStart).Nanoseconds())
	return out
}

// topNRows bounds already-materialized rows through a single heap.
func topNRows(rows [][]storage.Word, keys []plan.SortKey, k int) [][]storage.Word {
	t := sortpar.NewTopN(keys, k)
	for i, r := range rows {
		t.Offer(r, 0, i)
	}
	return sortpar.MergeTopN([]*sortpar.TopN{t}, keys, k)
}
