package jit

import (
	"repro/internal/exec/par"
	"repro/internal/exec/sortpar"
	"repro/internal/plan"
	"repro/internal/storage"
)

// prepareTopN compiles the fused ORDER BY … LIMIT k form: instead of
// materializing and fully sorting the sort child's output and then
// truncating, emitted rows feed bounded top-N heaps, so an execution
// allocates O(k) rows per worker instead of O(n) — the asymptotic fix for
// top-N queries. The merged result is bit-identical to stable-sort-then-
// truncate: heaps break key ties by emission ordinal (morsel, seq), the
// serial emission order under the scheduler's determinism contract.
func prepareTopN(srt plan.Sort, k int, c *plan.Catalog, opt par.Options) func() [][]storage.Word {
	switch srt.Child.(type) {
	case plan.Aggregate, plan.Sort, plan.Limit, plan.Insert:
		// The sort child is itself a breaker: its output is already
		// materialized, so the heap only bounds the sorted copy.
		child := prepareNode(srt.Child, c, opt)
		return func() [][]storage.Word {
			return topNRows(child(), srt.Keys, k)
		}
	}
	p := compilePipe(srt.Child, c, opt)
	return func() [][]storage.Word {
		if p.parallelizable(opt) {
			return p.runParallelTopN(srt.Keys, k, opt)
		}
		t := sortpar.NewTopN(srt.Keys, k)
		seq := 0
		// Serial execution mutates stage buffers and the index-lookup
		// scratch, so concurrent Execs each run a private clone.
		p.cloneForWorker().run(func(regs []storage.Word) {
			t.Offer(regs, 0, seq)
			seq++
		})
		return sortpar.MergeTopN([]*sortpar.TopN{t}, srt.Keys, k)
	}
}

// runParallelTopN drives the pipe with the morsel scheduler, each worker
// feeding a private bounded heap; candidates merge into the exact first k
// rows of the serial stable sort.
func (p *pipe) runParallelTopN(keys []plan.SortKey, k int, opt par.Options) [][]storage.Word {
	n := p.rel.Rows()
	pool := make([]*pipeWorker, opt.WorkerCount())
	tops := make([]*sortpar.TopN, opt.WorkerCount())
	par.Run(n, opt, func(w, m, lo, hi int) {
		ws := p.worker(pool, w)
		if tops[w] == nil {
			tops[w] = sortpar.NewTopN(keys, k)
		}
		t := tops[w]
		seq := 0
		ws.pipe.runRange(lo, hi, ws.regs, func(regs []storage.Word) {
			t.Offer(regs, m, seq)
			seq++
		})
	})
	return sortpar.MergeTopN(tops, keys, k)
}

// topNRows bounds already-materialized rows through a single heap.
func topNRows(rows [][]storage.Word, keys []plan.SortKey, k int) [][]storage.Word {
	t := sortpar.NewTopN(keys, k)
	for i, r := range rows {
		t.Offer(r, 0, i)
	}
	return sortpar.MergeTopN([]*sortpar.TopN{t}, keys, k)
}
