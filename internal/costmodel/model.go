// Package costmodel implements the paper's "programmable" holistic cost
// model: the Generic Cost Model of Manegold et al. (VLDB '02) extended with
//
//   - the s_trav_cr atom for selective projections (Equations 1–4),
//   - a prefetching-aware cost function that hides sequential LLC miss
//     latency behind processing (Equations 5–6), and
//   - Cardenas' formula for distinct-block estimation of repetitive random
//     accesses (Equation 7), replacing the binomial-coefficient form of the
//     original model.
//
// The model consumes access patterns (package pattern) and a memory
// geometry (package mem) and produces per-level miss counts and a total
// cost in CPU cycles. Treating the pattern algebra as an instruction set,
// package costmodel also "compiles" relational query plans into pattern
// programs (see translate.go), which is how the paper estimates the cost of
// JiT-compiled queries holistically rather than operator-by-operator.
package costmodel

import (
	"fmt"
	"math"

	"repro/internal/mem"
	"repro/internal/pattern"
)

// LevelMisses counts estimated misses of one cache level, split into
// sequential (prefetched — the prefetcher loaded the line before the demand
// access) and random (demand-fetched) misses, the distinction Equations
// 2–4 are built on.
type LevelMisses struct {
	Seq  float64 // M^s_i
	Rand float64 // M^r_i
}

// Total returns all misses of the level.
func (m LevelMisses) Total() float64 { return m.Seq + m.Rand }

// Misses aggregates the model's intermediate metrics for a pattern: the
// register-level work M0 (values loaded and processed) and per-level miss
// counts, plus TLB misses.
type Misses struct {
	Work   float64       // M0: data words entering the registers
	Levels []LevelMisses // one per cache level, fastest first
	TLB    float64
}

func (m Misses) add(o Misses) Misses {
	if m.Levels == nil {
		m.Levels = make([]LevelMisses, len(o.Levels))
	}
	for i := range o.Levels {
		m.Levels[i].Seq += o.Levels[i].Seq
		m.Levels[i].Rand += o.Levels[i].Rand
	}
	m.Work += o.Work
	m.TLB += o.TLB
	return m
}

// Cardenas estimates the number of distinct items hit when drawing r times
// uniformly from n items (Equation 7):
//
//	I(r, n) = n · (1 − (1 − 1/n)^r)
//
// It replaces the original model's binomial-coefficient formulation, which
// is numerically intractable for large relations.
func Cardenas(r, n float64) float64 {
	if n <= 0 || r <= 0 {
		return 0
	}
	if n == 1 {
		return 1
	}
	return n * (1 - math.Pow(1-1/n, r))
}

// MissesOf estimates the misses the pattern p induces on the hierarchy g.
// Misses are additive over both sequential (⊕) and concurrent (⊙)
// composition; interference between concurrent patterns (mutual cache
// pollution) is not modeled, matching the paper's usage.
func MissesOf(p pattern.Pattern, g mem.Geometry) Misses {
	total := Misses{Levels: make([]LevelMisses, len(g.Levels))}
	for _, a := range pattern.Atoms(p) {
		total = total.add(atomMisses(a, g))
	}
	return total
}

func atomMisses(a pattern.Pattern, g mem.Geometry) Misses {
	m := Misses{Levels: make([]LevelMisses, len(g.Levels))}
	for i, spec := range g.Levels {
		m.Levels[i] = atomLevelMisses(a, spec)
	}
	tlb := atomLevelMisses(a, g.TLB)
	m.TLB = tlb.Total()
	m.Work = atomWork(a)
	return m
}

// words returns the register words processed per accessed item.
func words(u int64) float64 {
	if u < 8 {
		return 1
	}
	return math.Ceil(float64(u) / 8)
}

// atomWork computes M0, the number of values entering the CPU registers.
func atomWork(a pattern.Pattern) float64 {
	switch v := a.(type) {
	case pattern.STrav:
		return float64(v.N) * words(v.U)
	case pattern.RTrav:
		return float64(v.N) * words(v.U)
	case pattern.RRAcc:
		return float64(v.R) * words(v.U)
	case pattern.STravCR:
		return v.S * float64(v.N) * words(v.U)
	default:
		panic(fmt.Sprintf("costmodel: non-atomic pattern %T", a))
	}
}

// uniqueBlocks returns the number of distinct cache blocks of size b that a
// full traversal of the region (n items of width w, u accessed bytes each)
// touches.
func uniqueBlocks(n, w, u, b int64) float64 {
	if n <= 0 {
		return 0
	}
	if w <= b {
		// Multiple items per block: every block of the region holds at
		// least one accessed item, so all region blocks are touched.
		return math.Ceil(float64(n*w) / float64(b))
	}
	// Items wider than a block: each item touches its own ceil(u/b) blocks.
	return float64(n) * math.Ceil(float64(max64(u, 1))/float64(b))
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// atomLevelMisses evaluates the per-level miss equations for one atom.
func atomLevelMisses(a pattern.Pattern, spec mem.Spec) LevelMisses {
	b := spec.BlockSize
	switch v := a.(type) {
	case pattern.STrav:
		// A pure sequential traversal is fully covered by the adjacent-line
		// prefetcher: all block fetches are sequential misses.
		return LevelMisses{Seq: uniqueBlocks(v.N, v.W, v.U, b)}

	case pattern.RTrav:
		// Every block is fetched, but the random order defeats the
		// prefetcher: all misses are random.
		return LevelMisses{Rand: uniqueBlocks(v.N, v.W, v.U, b)}

	case pattern.RRAcc:
		// Original-model semantics: the expected number of distinct items
		// hit by the R draws comes from Cardenas (Eq. 7); their footprint
		// in bytes, divided by the block size, gives the cold misses. This
		// dense-packing conversion is exactly the behaviour Figure 6
		// exposes as underestimating selective projections — we keep it so
		// the rr_acc-vs-s_trav_cr comparison reproduces. If the region
		// exceeds the cache capacity, re-accesses beyond the distinct set
		// miss again with probability 1 − C/|region|.
		if v.R <= 0 {
			return LevelMisses{}
		}
		distinct := Cardenas(float64(v.R), float64(v.N))
		misses := distinct * float64(v.W) / float64(b)
		if misses < 1 {
			misses = 1
		}
		region := float64(v.N * v.W)
		if region > float64(spec.Capacity) {
			reMissP := 1 - float64(spec.Capacity)/region
			misses += (float64(v.R) - distinct) * reMissP
		}
		return LevelMisses{Rand: misses}

	case pattern.STravCR:
		return stravCRMisses(v, spec)

	default:
		panic(fmt.Sprintf("costmodel: non-atomic pattern %T", a))
	}
}

// stravCRMisses implements Equations 1–4 for the Sequential Traversal with
// Conditional Reads.
//
// With g = B_i / R.w items per block (the paper's Eq. 1 writes the exponent
// as B_i, implicitly measured in items), the probability that a block is
// accessed at all is
//
//	P_i   = 1 − (1−s)^g                       (Eq. 1)
//	P^s_i = P_i²                              (Eq. 2: block and predecessor accessed)
//	P^r_i = P_i − P^s_i                       (Eq. 3)
//	M^x_i = P^x_i · (R.w·R.n)/B_i             (Eq. 4)
//
// When items are wider than a block the equations degenerate to per-item
// block runs: an item is read with probability s and its blocks are
// sequential when the previous item was also read (probability s²).
func stravCRMisses(v pattern.STravCR, spec mem.Spec) LevelMisses {
	s := clamp01(v.S)
	b := spec.BlockSize
	if v.N <= 0 || s == 0 {
		return LevelMisses{}
	}
	if v.W > b {
		perItem := math.Ceil(float64(max64(v.U, 1)) / float64(b))
		total := float64(v.N) * perItem
		return LevelMisses{
			Seq:  s * s * total,
			Rand: (s - s*s) * total,
		}
	}
	g := float64(b) / float64(v.W)
	pi := 1 - math.Pow(1-s, g)
	ps := pi * pi
	pr := pi - ps
	blocks := float64(v.N*v.W) / float64(b)
	return LevelMisses{Seq: ps * blocks, Rand: pr * blocks}
}

func clamp01(s float64) float64 {
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// Cost evaluates the prefetching-aware cost function (Equations 5–6) for
// the pattern p on geometry g, returning estimated CPU cycles.
//
// With levels numbered 0 = registers (M0, latency l1), 1 = L1, 2 = L2,
// 3 = LLC and l4 the memory access latency:
//
//	T^s_3  = max(0, M^s_3·l4 − Σ_{i=0..2} M_i·l_{i+1})   (Eq. 5)
//	T_Mem  = Σ_{i=0..2} M_i·l_{i+1} + T^s_3 + M^r_3·l4
//	         + M_TLB·l_Mem                                (Eq. 6)
//
// Sequential (prefetched) LLC misses cost nothing when the processing work
// of the faster layers exceeds the time to stream the lines from memory —
// the query is then CPU-bound, the situation Figure 1 calls CPU efficiency.
// The paper's Eq. 5 prints the hidden term as M^s_3·l_3; we charge the
// latency actually being hidden (the memory fetch, l4), which only scales
// the hidden term and preserves the max(0, ·) crossover behaviour.
func Cost(p pattern.Pattern, g mem.Geometry) float64 {
	return CostOfMisses(MissesOf(p, g), g)
}

// CostNaive evaluates the pre-extension cost function of the original
// Generic Cost Model: every miss is charged at the latency of the level
// below it, with no prefetch hiding — sequential and random LLC misses
// cost the same. Kept as the ablation baseline for the paper's
// prefetching-aware Equation 5/6 (Section IV-C.2).
func CostNaive(p pattern.Pattern, g mem.Geometry) float64 {
	m := MissesOf(p, g)
	total := m.Work * g.RegisterLatency
	for i := 0; i < len(g.Levels)-1; i++ {
		total += m.Levels[i].Total() * g.Levels[i+1].Latency
	}
	total += m.Levels[len(g.Levels)-1].Total() * g.Memory.Latency
	total += m.TLB * g.Memory.Latency
	return total
}

// CostOfMisses applies Equations 5–6 to precomputed miss counts.
func CostOfMisses(m Misses, g mem.Geometry) float64 {
	if len(m.Levels) != len(g.Levels) {
		panic("costmodel: miss vector does not match geometry")
	}
	last := len(g.Levels) - 1

	// Σ_{i=0..2} M_i·l_{i+1}: register work at l1 plus misses of every
	// cache level above the LLC, each charged at the latency of the level
	// below it.
	faster := m.Work * g.RegisterLatency
	for i := 0; i < last; i++ {
		faster += m.Levels[i].Total() * g.Levels[i+1].Latency
	}

	memLat := g.Memory.Latency
	llc := m.Levels[last]
	ts := llc.Seq*memLat - faster
	if ts < 0 {
		ts = 0
	}
	return faster + ts + llc.Rand*memLat + m.TLB*memLat
}
