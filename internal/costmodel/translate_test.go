package costmodel

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/index"
	"repro/internal/mem"
	"repro/internal/pattern"
	"repro/internal/plan"
	"repro/internal/storage"
)

func buildHashIndex(rel *storage.Relation, attr int) index.Index {
	return index.BuildOn(index.NewHashIndex(rel.Rows()), rel, attr)
}

// exampleCatalog reproduces the paper's example table R(A..P): 16 integer
// attributes, with attribute A carrying values so a parameterized equality
// hits a controllable fraction of tuples.
func exampleCatalog(rows int, layout storage.Layout) *plan.Catalog {
	attrs := make([]storage.Attribute, 16)
	for i := range attrs {
		attrs[i] = storage.Attribute{Name: string(rune('A' + i)), Type: storage.Int64}
	}
	schema := storage.NewSchema("R", attrs...)
	b := storage.NewBuilder(schema)
	rng := rand.New(rand.NewSource(42))
	for a := 0; a < 16; a++ {
		col := make([]int64, rows)
		for i := range col {
			if a == 0 {
				col[i] = int64(i % 100) // A = tuple id mod 100: sel(A=k) = 1%
			} else {
				col[i] = rng.Int63n(1000)
			}
		}
		b.SetInts(a, col)
	}
	return plan.NewCatalog().Add(b.Build(layout))
}

// exampleQuery is select sum(B),sum(C),sum(D),sum(E) from R where A=$1.
func exampleQuery() plan.Node {
	return plan.Aggregate{
		Child: plan.Scan{
			Table:  "R",
			Filter: expr.Cmp{Attr: 0, Op: expr.Eq, Val: storage.EncodeInt(7)},
			Cols:   []int{1, 2, 3, 4},
		},
		Aggs: []expr.AggSpec{
			{Kind: expr.Sum, Arg: expr.IntCol(0), Name: "sum_b"},
			{Kind: expr.Sum, Arg: expr.IntCol(1), Name: "sum_c"},
			{Kind: expr.Sum, Arg: expr.IntCol(2), Name: "sum_d"},
			{Kind: expr.Sum, Arg: expr.IntCol(3), Name: "sum_e"},
		},
	}
}

// pdsmExample is the paper's hand-optimized layout: {A}, {B,C,D,E}, {F..P}.
func pdsmExample() storage.Layout {
	rest := make([]int, 0, 11)
	for a := 5; a < 16; a++ {
		rest = append(rest, a)
	}
	return storage.PDSM([]int{0}, []int{1, 2, 3, 4}, rest)
}

// TestTranslateExampleQueryShape checks the emitted pattern against the
// paper's Table Ib structure: a sequential traversal of the selection
// partition, a conditional read of the aggregate partition, and an rr_acc
// for the aggregation state.
func TestTranslateExampleQueryShape(t *testing.T) {
	c := exampleCatalog(10000, pdsmExample())
	p := Translate(exampleQuery(), c, nil)
	atoms := pattern.Atoms(p)
	var nSTrav, nSTravCR, nRRAcc int
	for _, a := range atoms {
		switch v := a.(type) {
		case pattern.STrav:
			nSTrav++
			if v.W != 8 {
				t.Errorf("selection s_trav width = %d, want 8 (single-attr partition)", v.W)
			}
		case pattern.STravCR:
			nSTravCR++
			if v.W != 32 || v.U != 32 {
				t.Errorf("aggregate s_trav_cr w/u = %d/%d, want 32/32", v.W, v.U)
			}
			if v.S < 0.005 || v.S > 0.02 {
				t.Errorf("selectivity = %v, want ~0.01", v.S)
			}
		case pattern.RRAcc:
			nRRAcc++
		}
	}
	if nSTrav != 1 || nSTravCR != 1 || nRRAcc != 1 {
		t.Errorf("atom counts strav/stravcr/rracc = %d/%d/%d, want 1/1/1 (pattern: %v)", nSTrav, nSTravCR, nRRAcc, p)
	}
}

// TestTranslateLayoutSensitivity: the model must price the example query
// cheaper on the hand-optimized PDSM layout than on NSM, and the NSM scan
// must reflect the full 16-attribute tuple width.
func TestTranslateLayoutSensitivity(t *testing.T) {
	c := exampleCatalog(100000, storage.NSM(16))
	g := mem.TableIII()
	q := exampleQuery()

	costNSM := CostOfPlan(q, c, nil, g)
	costPDSM := CostOfPlan(q, c, map[string]storage.Layout{"R": pdsmExample()}, g)
	costDSM := CostOfPlan(q, c, map[string]storage.Layout{"R": storage.DSM(16)}, g)

	if !(costPDSM < costNSM) {
		t.Errorf("PDSM (%v) should be cheaper than NSM (%v) for the example query", costPDSM, costNSM)
	}
	if !(costDSM < costNSM) {
		t.Errorf("DSM (%v) should be cheaper than NSM (%v)", costDSM, costNSM)
	}
}

// TestTranslateShortCircuitConjuncts: with two conjuncts, the second
// conjunct's attribute must be read conditionally (s_trav_cr with the
// first conjunct's selectivity), reproducing the ADRC NAME1/NAME2
// discussion of Table IV.
func TestTranslateShortCircuitConjuncts(t *testing.T) {
	c := exampleCatalog(10000, storage.DSM(16))
	q := plan.Scan{
		Table: "R",
		Filter: expr.And{Preds: []expr.Pred{
			expr.Cmp{Attr: 0, Op: expr.Eq, Val: storage.EncodeInt(7)}, // sel 1%
			expr.Cmp{Attr: 1, Op: expr.Gt, Val: storage.EncodeInt(500)},
		}},
		Cols: []int{0, 1, 2},
	}
	atoms := pattern.Atoms(Translate(q, c, nil))
	var crs []pattern.STravCR
	for _, a := range atoms {
		if cr, ok := a.(pattern.STravCR); ok {
			crs = append(crs, cr)
		}
	}
	if len(crs) != 2 { // conjunct 2 and projection of attr 2
		t.Fatalf("expected 2 conditional reads, got %d (%v)", len(crs), atoms)
	}
	if crs[0].S < 0.005 || crs[0].S > 0.02 {
		t.Errorf("second conjunct selectivity = %v, want ~0.01", crs[0].S)
	}
	if crs[1].S > crs[0].S {
		t.Errorf("projection selectivity (%v) must not exceed prior cumulative (%v)", crs[1].S, crs[0].S)
	}
}

// TestTranslateRegionsCarryAttrs: optimizer introspection requires every
// base-table atom to be tagged with table and attributes.
func TestTranslateRegionsCarryAttrs(t *testing.T) {
	c := exampleCatalog(1000, storage.NSM(16))
	atoms := pattern.Atoms(Translate(exampleQuery(), c, nil))
	tagged := 0
	for _, a := range atoms {
		switch v := a.(type) {
		case pattern.STrav:
			if v.Region.Table == "R" {
				tagged++
			}
		case pattern.STravCR:
			if v.Region.Table == "R" {
				tagged++
			}
		}
	}
	if tagged < 2 {
		t.Errorf("only %d atoms tagged with base-table regions", tagged)
	}
}

// TestTranslateJoinEmitsBuildAndProbe: hash joins must emit the build
// r_trav, a pipeline break, and the probe rr_acc (Table II).
func TestTranslateJoinEmitsBuildAndProbe(t *testing.T) {
	c := exampleCatalog(1000, storage.NSM(16))
	// Second table.
	schema := storage.NewSchema("S",
		storage.Attribute{Name: "k", Type: storage.Int64},
		storage.Attribute{Name: "v", Type: storage.Int64})
	b := storage.NewBuilder(schema)
	b.SetInts(0, []int64{1, 2, 3}).SetInts(1, []int64{10, 20, 30})
	c.Add(b.Build(storage.NSM(2)))

	q := plan.HashJoin{
		Left:     plan.Scan{Table: "S", Cols: []int{0, 1}},
		Right:    plan.Scan{Table: "R", Cols: []int{0, 1}},
		LeftKey:  0,
		RightKey: 0,
	}
	p := Translate(q, c, nil)
	seq, ok := p.(pattern.Seq)
	if !ok {
		t.Fatalf("join pattern must be a sequence (pipeline break), got %T", p)
	}
	if len(seq.Ps) != 2 {
		t.Fatalf("join pattern has %d phases, want 2", len(seq.Ps))
	}
	hasRTrav, hasRRAcc := false, false
	for _, a := range pattern.Atoms(seq.Ps[0]) {
		if _, ok := a.(pattern.RTrav); ok {
			hasRTrav = true
		}
	}
	for _, a := range pattern.Atoms(seq.Ps[1]) {
		if _, ok := a.(pattern.RRAcc); ok {
			hasRRAcc = true
		}
	}
	if !hasRTrav || !hasRRAcc {
		t.Errorf("build must contain r_trav (got %v) and probe rr_acc (got %v): %v", hasRTrav, hasRRAcc, p)
	}
}

// TestTranslateIndexScanUsesRandomAccess: with an index registered, a
// point query must be priced as random accesses, not a traversal.
func TestTranslateIndexScanUsesRandomAccess(t *testing.T) {
	c := exampleCatalog(10000, storage.NSM(16))
	q := plan.Scan{Table: "R", Filter: expr.Cmp{Attr: 0, Op: expr.Eq, Val: storage.EncodeInt(7)}, Cols: []int{0, 1, 2}}
	costScan := CostOfPlan(q, c, nil, mem.TableIII())

	rel := c.Table("R")
	c.AddIndex("R", 0, buildHashIndex(rel, 0))
	costIdx := CostOfPlan(q, c, nil, mem.TableIII())
	if !(costIdx < costScan/2) {
		t.Errorf("indexed point query (%v) should be far cheaper than scan (%v)", costIdx, costScan)
	}
	for _, a := range pattern.Atoms(Translate(q, c, nil)) {
		if _, ok := a.(pattern.STrav); ok {
			t.Errorf("index scan should not emit sequential traversals: %v", a)
		}
	}
}

// TestTranslateInsertTouchesEveryPartition: inserts append to all
// partitions; more partitions, more regions touched.
func TestTranslateInsertTouchesEveryPartition(t *testing.T) {
	c := exampleCatalog(100, storage.PDSM([]int{0, 1}, []int{2, 3}, rangeInts(4, 16)))
	rows := [][]storage.Word{make([]storage.Word, 16)}
	p := Translate(plan.Insert{Table: "R", Rows: rows}, c, nil)
	if got := len(pattern.Atoms(p)); got != 3 {
		t.Errorf("insert pattern touches %d regions, want 3 (one per partition)", got)
	}
}

// TestTranslateString ensures the rendered pattern resembles the paper's
// notation for the example query.
func TestTranslateString(t *testing.T) {
	c := exampleCatalog(10000, pdsmExample())
	s := Translate(exampleQuery(), c, nil).String()
	if !strings.Contains(s, "s_trav(") || !strings.Contains(s, "s_trav_cr(") || !strings.Contains(s, "rr_acc(") {
		t.Errorf("pattern rendering missing atoms: %s", s)
	}
}

func rangeInts(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}
