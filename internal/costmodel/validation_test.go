package costmodel

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/pattern"
	"repro/internal/storage"
)

// TestModelRankingMatchesSimulation closes the loop the optimizer relies
// on: for the example query, the cost model's layout ranking (estimated
// cycles) must agree with the simulator's cycle counts when the translated
// access patterns are actually replayed against the modeled hierarchy. If
// the model mis-ranked layouts here, BPi's decisions would be meaningless.
func TestModelRankingMatchesSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("replays multi-million-access streams")
	}
	geo := mem.TableIII()
	c := exampleCatalog(200000, storage.NSM(16))
	q := exampleQuery()

	layouts := map[string]storage.Layout{
		"row":    storage.NSM(16),
		"hybrid": pdsmExample(),
		"column": storage.DSM(16),
	}
	modelCost := map[string]float64{}
	simCost := map[string]float64{}
	for name, l := range layouts {
		over := map[string]storage.Layout{"R": l}
		p := Translate(q, c, over)
		modelCost[name] = Cost(p, geo)
		h := mem.NewHierarchy(geo)
		pattern.Simulate(p, h, 3)
		simCost[name] = h.Cycles()
	}

	type rel struct{ cheap, costly string }
	for _, r := range []rel{{"hybrid", "row"}, {"column", "row"}} {
		if !(modelCost[r.cheap] < modelCost[r.costly]) {
			t.Errorf("model: %s (%g) should be cheaper than %s (%g)",
				r.cheap, modelCost[r.cheap], r.costly, modelCost[r.costly])
		}
		if !(simCost[r.cheap] < simCost[r.costly]) {
			t.Errorf("simulator: %s (%g) should be cheaper than %s (%g)",
				r.cheap, simCost[r.cheap], r.costly, simCost[r.costly])
		}
	}
	// Beyond ranking, the model should land within a small factor of the
	// simulated cycles for every layout (the simulator uses the same
	// geometry and prefetch assumptions).
	for name := range layouts {
		ratio := modelCost[name] / simCost[name]
		if ratio < 0.25 || ratio > 4 {
			t.Errorf("%s: model/simulated = %.2f, want within [0.25, 4]", name, ratio)
		}
	}
}
