package costmodel

import (
	"fmt"
	"math"

	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/mem"
	"repro/internal/pattern"
	"repro/internal/plan"
	"repro/internal/storage"
)

// Translate lowers a query plan into an access-pattern program, treating
// the pattern algebra as the instruction set of the cost model (paper
// Section IV-D, Table II). The plan is walked exactly like the JiT code
// generator walks it: patterns are emitted when data flows out of an
// operator, hash joins emit twice (build and probe), and the pipeline
// breaker between the two is the sequence operator ⊕.
//
// The translation is layout-aware: every base-table access is attributed
// to the vertical partition holding the attribute, with the partition's
// tuple width as R.w and the accessed bytes as u. Passing a non-nil
// layouts map overrides the stored layout per table, which is how the
// layout optimizer prices hypothetical decompositions without
// materializing them.
func Translate(n plan.Node, c *plan.Catalog, layouts map[string]storage.Layout) pattern.Pattern {
	t := &translator{c: c, layouts: layouts, sampleCap: 2000}
	res := t.node(n)
	return res.pat
}

// Estimator wraps Translate/Cost with memoized selectivity and group-count
// estimation. The layout optimizer prices thousands of candidate layouts
// against the same workload; selectivities and group counts are
// layout-independent, so caching them makes the search cheap.
type Estimator struct {
	C   *plan.Catalog
	G   mem.Geometry
	sel map[string]float64
	grp map[string]float64
}

// NewEstimator creates a caching estimator over a catalog and geometry.
func NewEstimator(c *plan.Catalog, g mem.Geometry) *Estimator {
	return &Estimator{C: c, G: g, sel: map[string]float64{}, grp: map[string]float64{}}
}

// Translate lowers the plan using cached statistics.
func (e *Estimator) Translate(n plan.Node, layouts map[string]storage.Layout) pattern.Pattern {
	t := &translator{c: e.C, layouts: layouts, sampleCap: 2000, est: e}
	return t.node(n).pat
}

// CostOfPlan prices the plan under the layout overrides.
func (e *Estimator) CostOfPlan(n plan.Node, layouts map[string]storage.Layout) float64 {
	return Cost(e.Translate(n, layouts), e.G)
}

// CostOfPlan translates the plan under the given layout overrides and
// evaluates the prefetch-aware cost function — the holistic per-query
// estimate the layout optimizer minimizes.
func CostOfPlan(n plan.Node, c *plan.Catalog, layouts map[string]storage.Layout, g mem.Geometry) float64 {
	return Cost(Translate(n, c, layouts), g)
}

type translator struct {
	c         *plan.Catalog
	layouts   map[string]storage.Layout
	sampleCap int
	est       *Estimator // optional statistic cache
}

// selectivity estimates (and caches, when attached to an Estimator) the
// selectivity of a predicate on a base table.
func (t *translator) selectivity(table string, p expr.Pred) float64 {
	if t.est == nil {
		return plan.EstimateSelectivity(t.c, table, p, t.sampleCap)
	}
	key := fmt.Sprintf("%s|%v", table, p)
	if v, ok := t.est.sel[key]; ok {
		return v
	}
	v := plan.EstimateSelectivity(t.c, table, p, t.sampleCap)
	t.est.sel[key] = v
	return v
}

type tnode struct {
	pat  pattern.Pattern
	rows float64
	cols int // output arity in words
}

func (t *translator) layoutOf(table string) storage.Layout {
	if t.layouts != nil {
		if l, ok := t.layouts[table]; ok {
			return l
		}
	}
	return t.c.Table(table).Layout
}

func (t *translator) node(n plan.Node) tnode {
	switch v := n.(type) {
	case plan.Scan:
		return t.scan(v)
	case plan.Select:
		child := t.node(v.Child)
		sel := 0.5 // conservative default for post-pipeline filters
		child.rows *= sel
		return child
	case plan.Project:
		child := t.node(v.Child)
		out := pattern.STrav{N: int64(child.rows) + 1, W: int64(len(v.Exprs)) * storage.WordBytes, U: int64(len(v.Exprs)) * storage.WordBytes}
		return tnode{pat: pattern.Concurrent(child.pat, out), rows: child.rows, cols: len(v.Exprs)}

	case plan.HashJoin:
		left := t.node(v.Left)
		right := t.node(v.Right)
		htW := int64(left.cols+1) * storage.WordBytes
		htN := int64(left.rows) + 1
		// Build phase: left pipeline ⊙ r_trav of the hash table, then a
		// pipeline break; probe phase: right pipeline ⊙ rr_acc of the table.
		build := pattern.Concurrent(left.pat, pattern.RTrav{N: htN, W: htW, U: htW})
		probe := pattern.Concurrent(right.pat, pattern.RRAcc{N: htN, W: htW, U: htW, R: int64(right.rows) + 1})
		// Join selectivity: assume foreign-key join (each probe row finds
		// one build match) capped by the cross product.
		rows := math.Min(right.rows, left.rows*right.rows)
		return tnode{pat: pattern.Sequence(build, probe), rows: rows, cols: left.cols + right.cols}

	case plan.Aggregate:
		child := t.node(v.Child)
		groups := t.groupEstimate(v, child)
		gw := int64(len(v.GroupBy)+len(v.Aggs)) * storage.WordBytes
		agg := pattern.RRAcc{N: int64(groups) + 1, W: gw, U: gw, R: int64(child.rows) + 1}
		return tnode{pat: pattern.Concurrent(child.pat, agg), rows: groups, cols: len(v.GroupBy) + len(v.Aggs)}

	case plan.Sort:
		child := t.node(v.Child)
		n := int64(child.rows) + 1
		w := int64(child.cols) * storage.WordBytes
		logN := int64(math.Max(1, math.Log2(float64(n))))
		sorted := pattern.Sequence(
			child.pat,
			pattern.STrav{N: n, W: w, U: w},
			pattern.RRAcc{N: n, W: w, U: w, R: n * logN},
		)
		return tnode{pat: sorted, rows: child.rows, cols: child.cols}

	case plan.Limit:
		child := t.node(v.Child)
		if float64(v.N) < child.rows {
			child.rows = float64(v.N)
		}
		return child

	case plan.Insert:
		rel := t.c.Table(v.Table)
		layout := t.layoutOf(v.Table)
		var pats []pattern.Pattern
		for _, g := range layout.Groups {
			w := int64(len(g)) * storage.WordBytes
			pats = append(pats, pattern.STrav{
				N: int64(len(v.Rows)), W: w, U: w,
				Region: pattern.Region{Table: v.Table, Attrs: g},
			})
		}
		_ = rel
		return tnode{pat: pattern.Concurrent(pats...), rows: float64(len(v.Rows)), cols: 1}
	}
	panic("costmodel: unsupported plan node")
}

// scan emits the access pattern of a (possibly filtered, possibly
// index-supported) base-table scan under the effective layout.
//
// Conjuncts are evaluated with short-circuiting: the first conjunct's
// attributes are traversed unconditionally (s_trav); each later conjunct
// is only evaluated on tuples surviving the earlier ones, yielding
// s_trav_cr with the cumulative selectivity — this is what makes
// {{NAME1},{NAME2}} of the paper's Table IV a useful cut. Projected
// attributes outside the filter are read with the filter's total
// selectivity.
func (t *translator) scan(v plan.Scan) tnode {
	rel := t.c.Table(v.Table)
	layout := t.layoutOf(v.Table)
	n := int64(rel.Rows())
	if n == 0 {
		n = 1
	}

	if acc, ok := exec.PlanIndexAccess(t.c, v.Table, v.Filter); ok {
		return t.indexScan(v, acc, rel, layout, n)
	}

	groupOf := attrToGroup(layout)
	conjs := conjunctsOf(v.Filter)
	var pats []pattern.Pattern
	inFilter := map[int]bool{}
	cum := 1.0
	for _, conj := range conjs {
		attrs := expr.PredAttrs(conj)
		for _, a := range attrs {
			inFilter[a] = true
		}
		for g, as := range groupAttrs(groupOf, attrs) {
			w := int64(len(layout.Groups[g])) * storage.WordBytes
			u := int64(len(as)) * storage.WordBytes
			reg := pattern.Region{Table: v.Table, Attrs: as}
			if cum >= 1 {
				pats = append(pats, pattern.STrav{N: n, W: w, U: u, Region: reg})
			} else {
				pats = append(pats, pattern.STravCR{N: n, W: w, U: u, S: cum, Region: reg})
			}
		}
		cum *= t.selectivity(v.Table, conj)
	}

	var proj []int
	for _, a := range v.Cols {
		if !inFilter[a] {
			proj = append(proj, a)
		}
	}
	for g, as := range groupAttrs(groupOf, proj) {
		w := int64(len(layout.Groups[g])) * storage.WordBytes
		u := int64(len(as)) * storage.WordBytes
		reg := pattern.Region{Table: v.Table, Attrs: as}
		if cum >= 1 {
			pats = append(pats, pattern.STrav{N: n, W: w, U: u, Region: reg})
		} else {
			pats = append(pats, pattern.STravCR{N: n, W: w, U: u, S: cum, Region: reg})
		}
	}
	return tnode{pat: pattern.Concurrent(pats...), rows: float64(n) * cum, cols: len(v.Cols)}
}

// indexScan prices an index-supported point access: the index probe plus
// one random access per matching tuple into every partition holding
// requested attributes.
func (t *translator) indexScan(v plan.Scan, acc exec.IndexAccess, rel *storage.Relation, layout storage.Layout, n int64) tnode {
	sel := t.selectivity(v.Table, expr.Cmp{Attr: acc.Attr, Op: expr.Eq, Val: acc.Key})
	matches := int64(math.Max(1, sel*float64(n)))
	groupOf := attrToGroup(layout)
	// Index descent: ~log2(n) random touches in an index region.
	logN := int64(math.Max(1, math.Log2(float64(n))))
	pats := []pattern.Pattern{
		pattern.RRAcc{N: n, W: 2 * storage.WordBytes, U: 2 * storage.WordBytes, R: logN + matches},
	}
	need := append([]int(nil), v.Cols...)
	if acc.Rest != nil {
		need = append(need, expr.PredAttrs(acc.Rest)...)
	}
	for g, as := range groupAttrs(groupOf, need) {
		w := int64(len(layout.Groups[g])) * storage.WordBytes
		u := int64(len(as)) * storage.WordBytes
		pats = append(pats, pattern.RRAcc{
			N: n, W: w, U: u, R: matches,
			Region: pattern.Region{Table: v.Table, Attrs: as},
		})
	}
	return tnode{pat: pattern.Concurrent(pats...), rows: float64(matches), cols: len(v.Cols)}
}

// groupEstimate guesses the number of output groups by counting distinct
// group keys over a sample of the child pipeline's base table when the
// child is a simple scan, falling back to a square-root heuristic.
func (t *translator) groupEstimate(v plan.Aggregate, child tnode) float64 {
	if len(v.GroupBy) == 0 {
		return 1
	}
	if scan, ok := v.Child.(plan.Scan); ok {
		rel := t.c.Table(scan.Table)
		nrows := rel.Rows()
		if nrows > 0 {
			step := 1
			if nrows > t.sampleCap {
				step = nrows / t.sampleCap
			}
			distinct := map[exec.GroupKey]struct{}{}
			row := make([]storage.Word, len(scan.Cols))
			for r := 0; r < nrows; r += step {
				for i, a := range scan.Cols {
					row[i] = rel.Value(r, a)
				}
				distinct[exec.MakeGroupKey(row, v.GroupBy)] = struct{}{}
			}
			return math.Max(1, float64(len(distinct)))
		}
	}
	return math.Max(1, math.Sqrt(child.rows))
}

func conjunctsOf(p expr.Pred) []expr.Pred {
	switch v := p.(type) {
	case nil:
		return nil
	case expr.True:
		return nil
	case expr.And:
		return v.Preds
	default:
		return []expr.Pred{p}
	}
}

func attrToGroup(l storage.Layout) map[int]int {
	m := map[int]int{}
	for g, attrs := range l.Groups {
		for _, a := range attrs {
			m[a] = g
		}
	}
	return m
}

// groupAttrs buckets attributes by their partition group.
func groupAttrs(groupOf map[int]int, attrs []int) map[int][]int {
	out := map[int][]int{}
	seen := map[int]bool{}
	for _, a := range attrs {
		if seen[a] {
			continue
		}
		seen[a] = true
		out[groupOf[a]] = append(out[groupOf[a]], a)
	}
	return out
}
