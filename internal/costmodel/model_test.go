package costmodel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/pattern"
)

func g() mem.Geometry { return mem.TableIII() }

func TestCardenas(t *testing.T) {
	cases := []struct {
		r, n, want float64
		tol        float64
	}{
		{0, 100, 0, 0},
		{1, 100, 1, 1e-9},
		{1e9, 100, 100, 1e-6}, // saturation at n
		{100, 1, 1, 0},        // single block
		{50, 1e12, 50, 0.01},  // sparse: virtually all distinct
	}
	for _, c := range cases {
		got := Cardenas(c.r, c.n)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("Cardenas(%v,%v) = %v, want %v", c.r, c.n, got, c.want)
		}
	}
}

func TestCardenasProperties(t *testing.T) {
	f := func(rRaw, nRaw uint32) bool {
		r := float64(rRaw%100000) + 1
		n := float64(nRaw%100000) + 1
		i := Cardenas(r, n)
		return i > 0 && i <= math.Min(r, n)+1e-9 &&
			Cardenas(r+1, n) >= i-1e-12 // monotone in r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSTravMisses(t *testing.T) {
	// 1M items x 8 bytes on Table III: LLC blocks = 8MB/64 region...
	// region = 8 MB, LLC lines touched = 8MB/64B = 131072, all sequential.
	p := pattern.STrav{N: 1 << 20, W: 8, U: 8}
	m := MissesOf(p, g())
	llc := m.Levels[2]
	if llc.Rand != 0 {
		t.Errorf("s_trav random misses = %v, want 0", llc.Rand)
	}
	if want := float64(1<<23) / 64; llc.Seq != want {
		t.Errorf("s_trav LLC seq misses = %v, want %v", llc.Seq, want)
	}
	// L1 (8-byte blocks): every word is its own block.
	if want := float64(1 << 20); m.Levels[0].Seq != want {
		t.Errorf("s_trav L1 misses = %v, want %v", m.Levels[0].Seq, want)
	}
	if m.Work != float64(1<<20) {
		t.Errorf("work = %v, want %v", m.Work, float64(1<<20))
	}
}

func TestRTravAllRandom(t *testing.T) {
	p := pattern.RTrav{N: 1000, W: 64, U: 64}
	m := MissesOf(p, g())
	llc := m.Levels[2]
	if llc.Seq != 0 || llc.Rand != 1000 {
		t.Errorf("r_trav misses = %+v, want 1000 random", llc)
	}
}

// TestSTravCREquations verifies Equations 1-4 against hand-computed values.
func TestSTravCREquations(t *testing.T) {
	// 16-byte items, 64-byte lines: g = 4 items/line.
	// s = 0.1: P = 1-0.9^4 = 0.3439; Ps = P^2 = 0.11826721;
	// Pr = P - P^2 = 0.22563279. N = 4096 items -> 1024 blocks.
	p := pattern.STravCR{N: 4096, W: 16, U: 16, S: 0.1}
	m := MissesOf(p, g())
	llc := m.Levels[2]
	P := 1 - math.Pow(0.9, 4)
	wantSeq := P * P * 1024
	wantRand := (P - P*P) * 1024
	if math.Abs(llc.Seq-wantSeq) > 1e-9 {
		t.Errorf("seq misses = %v, want %v", llc.Seq, wantSeq)
	}
	if math.Abs(llc.Rand-wantRand) > 1e-9 {
		t.Errorf("rand misses = %v, want %v", llc.Rand, wantRand)
	}
}

func TestSTravCRLimits(t *testing.T) {
	// s=1 must coincide with s_trav; s=0 must cost nothing.
	n, w := int64(100000), int64(16)
	full := MissesOf(pattern.STrav{N: n, W: w, U: w}, g())
	cr1 := MissesOf(pattern.STravCR{N: n, W: w, U: w, S: 1}, g())
	for i := range full.Levels {
		if math.Abs(full.Levels[i].Total()-cr1.Levels[i].Total()) > 1e-6 {
			t.Errorf("level %d: s=1 misses %v != s_trav misses %v", i, cr1.Levels[i].Total(), full.Levels[i].Total())
		}
		if cr1.Levels[i].Rand != 0 {
			t.Errorf("level %d: s=1 should have no random misses, got %v", i, cr1.Levels[i].Rand)
		}
	}
	cr0 := MissesOf(pattern.STravCR{N: n, W: w, U: w, S: 0}, g())
	if cr0.Work != 0 || cr0.Levels[2].Total() != 0 {
		t.Error("s=0 traversal must induce no work and no misses")
	}
}

// TestSTravCRShape reproduces the qualitative shape of Figure 6: both miss
// kinds rise steeply for s in (0, 0.05); past the peak, random misses
// decline in favour of sequential ones; at s=1 all misses are sequential.
func TestSTravCRShape(t *testing.T) {
	miss := func(s float64) LevelMisses {
		m := MissesOf(pattern.STravCR{N: 1 << 22, W: 16, U: 16, S: s}, g())
		return m.Levels[2]
	}
	low := miss(0.01)
	mid := miss(0.05)
	high := miss(0.75)
	one := miss(1.0)
	if !(mid.Rand > low.Rand) {
		t.Error("random misses should still be rising at s=0.05")
	}
	if !(high.Rand < mid.Rand) {
		t.Error("random misses should decline for high selectivities")
	}
	if !(high.Seq > mid.Seq) {
		t.Error("sequential misses should keep rising with selectivity")
	}
	if one.Rand != 0 {
		t.Errorf("at s=1 all misses are sequential, got %v random", one.Rand)
	}
}

// TestSTravCRBeatsRRAccModel reproduces the paper's point that modeling a
// selective projection as rr_acc badly underestimates total misses at low
// selectivity (Fig. 6 discussion).
func TestSTravCRBeatsRRAccModel(t *testing.T) {
	n := int64(1 << 22)
	s := 0.02
	r := int64(s * float64(n))
	cr := MissesOf(pattern.STravCR{N: n, W: 16, U: 16, S: s}, g()).Levels[2]
	rr := MissesOf(pattern.RRAcc{N: n, W: 16, U: 16, R: r}, g()).Levels[2]
	if !(cr.Total() > 1.5*rr.Total()) {
		t.Errorf("s_trav_cr misses (%v) should far exceed rr_acc estimate (%v) at s=%v", cr.Total(), rr.Total(), s)
	}
}

func TestRRAccCacheResidentRegion(t *testing.T) {
	// A one-item output region (16 B) hit 262144 times: one cold miss.
	p := pattern.RRAcc{N: 1, W: 16, U: 16, R: 262144}
	m := MissesOf(p, g())
	if got := m.Levels[2].Rand; got != 1 {
		t.Errorf("resident region misses = %v, want 1 (cold only)", got)
	}
}

func TestRRAccHugeRegionReMisses(t *testing.T) {
	// Line-sized items over a 1 GB region >> 8 MB LLC: nearly every one of
	// the r accesses must miss.
	p := pattern.RRAcc{N: 1 << 24, W: 64, U: 64, R: 1 << 20}
	m := MissesOf(p, g())
	if got := m.Levels[2].Rand; got < float64(1<<20)*0.9 {
		t.Errorf("rr_acc on huge region: %v misses for %d accesses, want ~all", got, 1<<20)
	}
}

func TestMissesAdditiveOverComposition(t *testing.T) {
	a := pattern.STrav{N: 1000, W: 8, U: 8}
	b := pattern.RRAcc{N: 100, W: 8, U: 8, R: 500}
	seq := MissesOf(pattern.Sequence(a, b), g())
	par := MissesOf(pattern.Concurrent(a, b), g())
	ma := MissesOf(a, g())
	mb := MissesOf(b, g())
	wantWork := ma.Work + mb.Work
	if seq.Work != wantWork || par.Work != wantWork {
		t.Error("work must be additive over ⊕ and ⊙")
	}
	for i := range seq.Levels {
		want := ma.Levels[i].Total() + mb.Levels[i].Total()
		if seq.Levels[i].Total() != want || par.Levels[i].Total() != want {
			t.Errorf("level %d misses not additive", i)
		}
	}
}

// TestCostCPUBoundScan: for a narrow sequential scan, processing dominates
// and the prefetched LLC misses must be fully hidden (T_s3 = 0), so cost
// equals the faster-layer term exactly.
func TestCostCPUBoundScan(t *testing.T) {
	p := pattern.STrav{N: 1 << 20, W: 8, U: 8}
	m := MissesOf(p, g())
	geo := g()
	faster := m.Work*geo.RegisterLatency +
		m.Levels[0].Total()*geo.Levels[1].Latency +
		m.Levels[1].Total()*geo.Levels[2].Latency
	hidden := m.Levels[2].Seq * geo.Memory.Latency
	if hidden >= faster {
		t.Fatalf("test premise broken: hidden %v !< faster %v", hidden, faster)
	}
	want := faster + m.TLB*geo.Memory.Latency
	if got := Cost(p, geo); math.Abs(got-want) > 1e-6 {
		t.Errorf("cost = %v, want %v (fully hidden LLC misses)", got, want)
	}
}

// TestCostMemoryBoundRandom: random access costs must include the full
// memory latency per miss — far more than the same number of sequential
// accesses.
func TestCostMemoryBoundRandom(t *testing.T) {
	n := int64(1 << 21)
	seqCost := Cost(pattern.STrav{N: n, W: 64, U: 8}, g())
	rndCost := Cost(pattern.RTrav{N: n, W: 64, U: 8}, g())
	if !(rndCost > 1.5*seqCost) {
		t.Errorf("random traversal (%v) should cost much more than sequential (%v)", rndCost, seqCost)
	}
}

func TestCostMonotoneInN(t *testing.T) {
	f := func(nRaw uint32) bool {
		n := int64(nRaw%1000000) + 1
		c1 := Cost(pattern.STravCR{N: n, W: 16, U: 16, S: 0.3}, g())
		c2 := Cost(pattern.STravCR{N: n + 1000, W: 16, U: 16, S: 0.3}, g())
		return c2 >= c1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCostMonotoneInSelectivity(t *testing.T) {
	f := func(sRaw uint16) bool {
		s := float64(sRaw%1000) / 1000
		c1 := Cost(pattern.STravCR{N: 1 << 20, W: 16, U: 16, S: s}, g())
		c2 := Cost(pattern.STravCR{N: 1 << 20, W: 16, U: 16, S: math.Min(1, s+0.05)}, g())
		return c2 >= c1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestProbabilityIdentities: Eq. 1-3 identities hold for all s.
func TestProbabilityIdentities(t *testing.T) {
	f := func(sRaw uint16, wSel uint8) bool {
		s := float64(sRaw%1001) / 1000
		w := int64(8 * (int(wSel)%8 + 1))
		lm := stravCRMisses(pattern.STravCR{N: 10000, W: w, U: w, S: s}, g().Levels[2])
		blocks := uniqueBlocks(10000, w, w, 64)
		p := (lm.Seq + lm.Rand) / blocks
		return p >= -1e-9 && p <= 1+1e-9 && lm.Seq >= 0 && lm.Rand >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestModelVsSimulator cross-validates the s_trav_cr equations against the
// simulated hierarchy on a mid-size region: predicted LLC miss split vs.
// measured, within a generous band (the paper's Fig. 6 reports the same
// qualitative agreement, not exactness).
func TestModelVsSimulator(t *testing.T) {
	geo := g()
	for _, s := range []float64{0.02, 0.1, 0.5, 0.9} {
		p := pattern.STravCR{N: 1 << 20, W: 16, U: 16, S: s}
		pred := MissesOf(p, geo).Levels[2]
		h := mem.NewHierarchy(geo)
		pattern.Simulate(p, h, 11)
		meas := h.LLCStats()
		measTotal := float64(meas.DemandMisses + meas.PrefetchedHits)
		if pred.Total() == 0 && measTotal == 0 {
			continue
		}
		ratio := pred.Total() / measTotal
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("s=%v: predicted total misses %v vs simulated %v (ratio %.2f)", s, pred.Total(), measTotal, ratio)
		}
	}
}
