package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bench/cnet"
	"repro/internal/storage"
)

func sparseRelation(rows, attrs int, density float64, seed int64) *storage.Relation {
	names := make([]storage.Attribute, attrs)
	for i := range names {
		names[i] = storage.Attribute{Name: string(rune('a'+i%26)) + string(rune('0'+i/26)), Type: storage.Int64}
	}
	schema := storage.NewSchema("s", names...)
	b := storage.NewBuilder(schema)
	rng := rand.New(rand.NewSource(seed))
	for a := 0; a < attrs; a++ {
		col := make([]storage.Word, rows)
		for r := range col {
			if rng.Float64() < density {
				col[r] = storage.EncodeInt(rng.Int63n(1000))
			} else {
				col[r] = storage.Null
			}
		}
		b.SetWords(a, col)
	}
	return b.Build(storage.NSM(attrs))
}

func TestRoundTripAgainstRelation(t *testing.T) {
	rel := sparseRelation(500, 20, 0.15, 1)
	s := FromRelation(rel)
	for row := 0; row < rel.Rows(); row++ {
		for attr := 0; attr < 20; attr++ {
			want := rel.Value(row, attr)
			got, present := s.Value(row, attr)
			if (want == storage.Null) == present {
				t.Fatalf("presence mismatch at (%d,%d)", row, attr)
			}
			if present && got != want {
				t.Fatalf("value mismatch at (%d,%d)", row, attr)
			}
		}
		dense := s.MaterializeRow(row, nil)
		for attr := 0; attr < 20; attr++ {
			if dense[attr] != rel.Value(row, attr) {
				t.Fatalf("materialized row differs at (%d,%d)", row, attr)
			}
		}
	}
}

func TestScanAndSumMatchDense(t *testing.T) {
	rel := sparseRelation(1000, 10, 0.2, 2)
	s := FromRelation(rel)
	for attr := 0; attr < 10; attr++ {
		var wantSum, wantCount int64
		a := rel.Access(attr)
		for row := 0; row < rel.Rows(); row++ {
			if v := a.At(row); v != storage.Null {
				wantSum += storage.DecodeInt(v)
				wantCount++
			}
		}
		gotSum, gotCount := s.SumAttr(attr)
		if gotSum != wantSum || gotCount != wantCount {
			t.Fatalf("attr %d: sum/count = %d/%d, want %d/%d", attr, gotSum, gotCount, wantSum, wantCount)
		}
		// ScanAttr visits cells in ascending row order.
		prev := int32(-1)
		s.ScanAttr(attr, func(row int32, v storage.Word) {
			if row <= prev {
				t.Fatal("scan not in row order")
			}
			prev = row
		})
	}
}

func TestCellAccounting(t *testing.T) {
	rel := sparseRelation(300, 15, 0.1, 3)
	s := FromRelation(rel)
	var want int
	for row := 0; row < rel.Rows(); row++ {
		for attr := 0; attr < 15; attr++ {
			if rel.Value(row, attr) != storage.Null {
				want++
			}
		}
	}
	if s.Cells() != want {
		t.Fatalf("Cells = %d, want %d", s.Cells(), want)
	}
	var viaRows int
	for row := 0; row < s.Rows(); row++ {
		viaRows += len(s.RowCells(row))
	}
	if viaRows != want {
		t.Fatalf("adjacency cells = %d, want %d", viaRows, want)
	}
}

// TestFootprintBeatsDenseOnSparseData: the paper's premise — for CNET-like
// sparsity the KV lists are far smaller than any dense layout.
func TestFootprintBeatsDenseOnSparseData(t *testing.T) {
	d := cnet.Generate(cnet.Config{Products: 2000, Attrs: 120, Categories: 20, MeanSparse: 6, Seed: 4})
	s := FromRelation(d.Products)
	denseBytes := int64(d.Products.Rows()) * int64(d.Products.Schema.Width()) * 8
	if s.Bytes() > denseBytes/3 {
		t.Errorf("sparse store (%d B) should be far below dense storage (%d B)", s.Bytes(), denseBytes)
	}
}

// TestPropertyRandomDensity: round trip holds across densities including
// the all-null and all-present extremes.
func TestPropertyRandomDensity(t *testing.T) {
	f := func(seed int64, densRaw uint8) bool {
		density := float64(densRaw%101) / 100
		rel := sparseRelation(100, 8, density, seed)
		s := FromRelation(rel)
		for row := 0; row < 100; row++ {
			for attr := 0; attr < 8; attr++ {
				want := rel.Value(row, attr)
				got, present := s.Value(row, attr)
				if present != (want != storage.Null) {
					return false
				}
				if present && got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
