// Package sparse implements the storage extension the paper's conclusion
// proposes for sparse data: "the storage as dense key-value lists is an
// option that may save storage space and processing effort". A Store keeps
// only the non-null cells of a wide, sparsely populated relation (the CNET
// catalog shape) in two redundant dense representations:
//
//   - column-major: per attribute, parallel (row id, value) arrays sorted
//     by row id — scans and aggregations over one attribute touch exactly
//     the attribute's populated cells;
//   - row-major: per tuple, the adjacency list of its populated
//     (attribute, value) pairs — a "select *" detail lookup reads one
//     contiguous run.
//
// The ablation benchmarks compare this representation against NSM/DSM/PDSM
// on the CNET workload for footprint, scan and point-lookup cost.
package sparse

import (
	"sort"

	"repro/internal/storage"
)

// Cell is one populated (attribute, value) pair of a tuple.
type Cell struct {
	Attr  int32
	Value storage.Word
}

// Store is a dense key-value representation of a sparse relation.
type Store struct {
	Schema *Schema
	rows   int

	// Column-major lists.
	colRows [][]int32
	colVals [][]storage.Word

	// Row-major adjacency.
	rowOff   []int32 // len rows+1
	rowCells []Cell
}

// Schema mirrors the source relation's schema.
type Schema = storage.Schema

// FromRelation extracts the non-null cells of rel.
func FromRelation(rel *storage.Relation) *Store {
	n := rel.Rows()
	w := rel.Schema.Width()
	s := &Store{
		Schema:  rel.Schema,
		rows:    n,
		colRows: make([][]int32, w),
		colVals: make([][]storage.Word, w),
		rowOff:  make([]int32, n+1),
	}
	// First pass: count per row for the adjacency offsets.
	counts := make([]int32, n)
	for attr := 0; attr < w; attr++ {
		a := rel.Access(attr)
		for row := 0; row < n; row++ {
			if a.Data[row*a.Stride+a.Off] != storage.Null {
				counts[row]++
			}
		}
	}
	total := int32(0)
	for row := 0; row < n; row++ {
		s.rowOff[row] = total
		total += counts[row]
	}
	s.rowOff[n] = total
	s.rowCells = make([]Cell, total)
	fill := make([]int32, n)
	copy(fill, s.rowOff[:n])

	for attr := 0; attr < w; attr++ {
		a := rel.Access(attr)
		var rows []int32
		var vals []storage.Word
		for row := 0; row < n; row++ {
			v := a.Data[row*a.Stride+a.Off]
			if v == storage.Null {
				continue
			}
			rows = append(rows, int32(row))
			vals = append(vals, v)
			s.rowCells[fill[row]] = Cell{Attr: int32(attr), Value: v}
			fill[row]++
		}
		s.colRows[attr] = rows
		s.colVals[attr] = vals
	}
	return s
}

// Rows returns the tuple count.
func (s *Store) Rows() int { return s.rows }

// Cells returns the total number of populated cells.
func (s *Store) Cells() int { return len(s.rowCells) }

// Bytes returns the approximate heap footprint of the store's data arrays.
func (s *Store) Bytes() int64 {
	var b int64
	for attr := range s.colRows {
		b += int64(len(s.colRows[attr]))*4 + int64(len(s.colVals[attr]))*8
	}
	b += int64(len(s.rowOff))*4 + int64(len(s.rowCells))*12
	return b
}

// Value returns the cell (row, attr), reporting presence.
func (s *Store) Value(row, attr int) (storage.Word, bool) {
	rows := s.colRows[attr]
	i := sort.Search(len(rows), func(i int) bool { return rows[i] >= int32(row) })
	if i < len(rows) && rows[i] == int32(row) {
		return s.colVals[attr][i], true
	}
	return storage.Null, false
}

// ScanAttr iterates the populated cells of one attribute in row order —
// the dense scan that motivates the representation.
func (s *Store) ScanAttr(attr int, fn func(row int32, v storage.Word)) {
	rows := s.colRows[attr]
	vals := s.colVals[attr]
	for i := range rows {
		fn(rows[i], vals[i])
	}
}

// SumAttr is the fused aggregate over one attribute's populated cells.
func (s *Store) SumAttr(attr int) (sum int64, count int64) {
	vals := s.colVals[attr]
	for _, v := range vals {
		sum += storage.DecodeInt(v)
		count++
	}
	return sum, count
}

// RowCells returns the populated cells of one tuple (the "select *" path).
func (s *Store) RowCells(row int) []Cell {
	return s.rowCells[s.rowOff[row]:s.rowOff[row+1]]
}

// MaterializeRow expands a tuple back to the dense width (Null-padded).
func (s *Store) MaterializeRow(row int, dst []storage.Word) []storage.Word {
	w := s.Schema.Width()
	if cap(dst) < w {
		dst = make([]storage.Word, w)
	}
	dst = dst[:w]
	for i := range dst {
		dst[i] = storage.Null
	}
	for _, c := range s.RowCells(row) {
		dst[c.Attr] = c.Value
	}
	return dst
}
