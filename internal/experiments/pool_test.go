package experiments

import (
	"sync"
	"testing"

	"repro/internal/exec"
	"repro/internal/exec/jit"
	"repro/internal/exec/par"
	"repro/internal/exec/result"
	"repro/internal/exec/vector"
)

// TestSharedPoolMatchesSerial runs the Figure 3 sweep for both parallel-
// capable engines on ONE shared worker pool, with every (engine, layout,
// selectivity) query issued concurrently — the serving configuration.
// Morsels from different queries interleave on the same workers; results
// must stay row-for-row identical to the serial engines.
func TestSharedPoolMatchesSerial(t *testing.T) {
	setup := NewFig3Setup(30_000)
	pool := par.NewPool(4)
	defer pool.Close()
	// Small morsels force many morsels per query so concurrent jobs
	// actually interleave instead of running one-morsel-inline.
	opt := par.Options{Pool: pool, MorselRows: 2048}

	pairs := []struct {
		serial   exec.Engine
		parallel exec.Engine
	}{
		{serial: jit.New(), parallel: jit.NewParallel(opt)},
		{serial: vector.New(), parallel: vector.NewParallel(opt)},
	}

	var wg sync.WaitGroup
	for _, pair := range pairs {
		for layout := range setup.Catalogs {
			for _, sel := range Fig3Selectivities {
				wg.Add(1)
				go func() {
					defer wg.Done()
					q := setup.Query(sel)
					cat := setup.Catalogs[layout]
					want := pair.serial.Run(q, cat)
					got := pair.parallel.Run(q, cat)
					if !result.Equal(want, got) {
						t.Errorf("%s/%s sel=%g: shared-pool result diverges from serial (%d vs %d rows)",
							pair.parallel.Name(), layout, sel, got.Len(), want.Len())
					}
				}()
			}
		}
	}
	wg.Wait()
}
