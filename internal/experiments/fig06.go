package experiments

import (
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/mem"
	"repro/internal/pattern"
)

// Fig6Selectivities sweeps the conditional-read probability.
var Fig6Selectivities = []float64{0.005, 0.01, 0.02, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0}

// Fig6Point is one sweep point: predicted vs. simulated LLC misses.
type Fig6Point struct {
	S                 float64
	PredSeq, PredRand float64
	MeasSeq, MeasRand float64
	RRAccPred         float64
}

// Fig6Sweep computes the Figure 6 series for a region of n items of 16
// bytes: the s_trav_cr predictions (Equations 1-4), the "measured" counts
// from replaying the address stream against the simulated hierarchy (the
// reproduction's stand-in for the Nehalem performance counters), and the
// misses the original model would predict when the operation is
// (mis)modeled as rr_acc.
func Fig6Sweep(n int64, geo mem.Geometry) []Fig6Point {
	var out []Fig6Point
	for _, s := range Fig6Selectivities {
		atom := pattern.STravCR{N: n, W: 16, U: 16, S: s}
		pred := costmodel.MissesOf(atom, geo)
		llc := len(geo.Levels) - 1

		h := mem.NewHierarchy(geo)
		pattern.Simulate(atom, h, 42)
		meas := h.LLCStats()

		rr := pattern.RRAcc{N: n, W: 16, U: 16, R: int64(s * float64(n))}
		rrPred := costmodel.MissesOf(rr, geo)

		out = append(out, Fig6Point{
			S:         s,
			PredSeq:   pred.Levels[llc].Seq,
			PredRand:  pred.Levels[llc].Rand,
			MeasSeq:   float64(meas.PrefetchedHits),
			MeasRand:  float64(meas.DemandMisses),
			RRAccPred: rrPred.Levels[llc].Total(),
		})
	}
	return out
}

// Fig6 regenerates Figure 6: prediction accuracy of s_trav_cr vs. rr_acc.
func Fig6(opt Options) *Report {
	n := int64(1 << 21) // 2M items x 16B = 32 MB region >> 8 MB LLC
	if opt.Quick {
		n = 1 << 18
	}
	geo := mem.TableIII()
	rep := &Report{
		ID:     "fig6",
		Title:  fmt.Sprintf("s_trav_cr prediction accuracy (%d x 16B items, LLC misses)", n),
		Header: []string{"s", "pred seq", "meas seq", "pred rand", "meas rand", "rr_acc pred (total)"},
		Notes: []string{
			"paper: both miss kinds rise steeply for s<0.05, then random declines in favour of sequential;",
			"rr_acc badly underestimates total misses and cannot split random from sequential",
		},
	}
	for _, p := range Fig6Sweep(n, geo) {
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%.3f", p.S),
			fmtF(p.PredSeq), fmtF(p.MeasSeq),
			fmtF(p.PredRand), fmtF(p.MeasRand),
			fmtF(p.RRAccPred),
		})
	}
	return rep
}
