package experiments

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/exec"
	"repro/internal/exec/jit"
	"repro/internal/exec/par"
	"repro/internal/exec/result"
	"repro/internal/exec/vector"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/storage"
)

// breakerWorkerCounts is the ISSUE-mandated sweep for the pipeline-breaker
// differential suites.
var breakerWorkerCounts = []int{1, 2, 4, 8}

// assertOrderedMatchesSerial compares the parallel engines' output to their
// serial forms row-for-row — Equal, not Sorted — because the parallel
// sort, top-N and partitioned join-build all promise bit-identical row
// order, tie resolution included.
func assertOrderedMatchesSerial(t *testing.T, label string, p plan.Node, cat *plan.Catalog) {
	t.Helper()
	for _, workers := range breakerWorkerCounts {
		// Small morsels force multi-morsel schedules on test-sized data.
		opt := par.Options{Workers: workers, MorselRows: 4096}
		for _, pair := range []struct {
			serial   exec.Engine
			parallel exec.Engine
		}{
			{serial: jit.New(), parallel: jit.NewParallel(opt)},
			{serial: vector.New(), parallel: vector.NewParallel(opt)},
		} {
			want := pair.serial.Run(p, cat)
			got := pair.parallel.Run(p, cat)
			if !result.Equal(want, got) {
				t.Fatalf("%s: %s with %d workers diverges from serial in ordered compare (serial %d rows, parallel %d rows)",
					label, pair.serial.Name(), workers, want.Len(), got.Len())
			}
		}
	}
}

// sortPlan orders the duplicate-heavy Figure 3 attributes (B..E are
// uniform over 1000 values, so every key repeats ~rows/1000 times): a
// stability stress for the parallel merge.
func sortPlan(desc bool) plan.Node {
	return plan.Sort{
		Child: plan.Scan{
			Table:  "R",
			Filter: expr.Cmp{Attr: 0, Op: expr.Lt, Val: storage.EncodeInt(800_000)},
			Cols:   []int{1, 2, 0},
		},
		Keys: []plan.SortKey{{Pos: 0, Desc: desc}, {Pos: 1}},
	}
}

// TestParallelSortMatchesSerial: the parallel merge sort must be
// bit-identical to the serial sort.SliceStable on every layout.
func TestParallelSortMatchesSerial(t *testing.T) {
	setup := NewFig3Setup(60_000)
	for _, layoutName := range []string{"row", "column", "hybrid"} {
		cat := setup.Catalogs[layoutName]
		for _, desc := range []bool{false, true} {
			assertOrderedMatchesSerial(t, fmt.Sprintf("sort %s desc=%v", layoutName, desc), sortPlan(desc), cat)
		}
	}
}

// TestTopNMatchesSerial: the fused Sort+Limit operator must reproduce
// stable-sort-then-truncate exactly — including ties at the k boundary,
// which the duplicate-heavy keys guarantee exist — for k from 1 to
// beyond the input size, pipelined and breaker children both.
func TestTopNMatchesSerial(t *testing.T) {
	setup := NewFig3Setup(60_000)
	for _, layoutName := range []string{"row", "column", "hybrid"} {
		cat := setup.Catalogs[layoutName]
		for _, k := range []int{0, 1, 10, 1000, 1 << 20} {
			p := plan.Limit{N: k, Child: sortPlan(true).(plan.Sort)}
			assertOrderedMatchesSerial(t, fmt.Sprintf("topn %s k=%d", layoutName, k), p, cat)
		}
	}
	// Sort child is itself a breaker (grouped aggregate), the SAP-SD Q10
	// shape: top groups by descending count.
	agg := plan.Aggregate{
		Child:   plan.Scan{Table: "R", Cols: []int{1, 2}},
		GroupBy: []int{0},
		Aggs:    []expr.AggSpec{{Kind: expr.Count, Name: "n"}, {Kind: expr.Sum, Arg: expr.IntCol(1), Name: "s"}},
	}
	p := plan.Limit{N: 25, Child: plan.Sort{Child: agg, Keys: []plan.SortKey{{Pos: 1, Desc: true}}}}
	assertOrderedMatchesSerial(t, "topn-over-aggregate", p, setup.Catalogs["column"])
}

// TestPartitionedJoinMatchesSerial: the radix-partitioned build must
// preserve per-key match order, which the ordered compare of a
// multi-match join (60 build rows per key) observes directly. The 60K-row
// build side exceeds the partitioning threshold, so parallel runs
// exercise the histogram+scatter path, not the serial fallback.
func TestPartitionedJoinMatchesSerial(t *testing.T) {
	setup := NewFig3Setup(60_000)
	join := plan.HashJoin{
		Left: plan.Scan{Table: "R", Cols: []int{1, 0}},
		Right: plan.Scan{
			Table:  "R",
			Filter: expr.Cmp{Attr: 0, Op: expr.Lt, Val: storage.EncodeInt(30_000)},
			Cols:   []int{1, 2},
		},
		LeftKey:  0,
		RightKey: 0,
	}
	for _, layoutName := range []string{"row", "column", "hybrid"} {
		assertOrderedMatchesSerial(t, "join "+layoutName, join, setup.Catalogs[layoutName])
	}
}

// TestTopNAllocationBounded is the Sort-under-Limit regression test: an
// ORDER BY … LIMIT k execution must allocate O(k), not O(n) — before the
// fused operator, both jit and vector materialized and fully sorted all n
// rows before Limit dropped them. 400K emitted rows would cost ≳19 MB to
// materialize (24 data bytes + slice header per row); the fused top-N must
// stay under 4 MB per run. The vector engine is measured serial: its
// parallel scan materializes scan output by design (pre-existing,
// arena-backed), which is the scan's cost, not the sort's.
func TestTopNAllocationBounded(t *testing.T) {
	const rows, k = 400_000, 16
	schema := storage.NewSchema("t",
		storage.Attribute{Name: "a", Type: storage.Int64},
		storage.Attribute{Name: "b", Type: storage.Int64},
		storage.Attribute{Name: "c", Type: storage.Int64},
	)
	b := storage.NewBuilder(schema)
	a0 := make([]int64, rows)
	a1 := make([]int64, rows)
	a2 := make([]int64, rows)
	for i := range a0 {
		a0[i] = int64(i % 1000) // duplicate-heavy sort key
		a1[i] = int64((i * 7919) % rows)
		a2[i] = int64(i)
	}
	b.SetInts(0, a0).SetInts(1, a1).SetInts(2, a2)
	cat := plan.NewCatalog().Add(b.Build(storage.DSM(3)))
	topn := plan.Limit{N: k, Child: plan.Sort{
		Child: plan.Scan{Table: "t", Cols: []int{0, 1, 2}},
		Keys:  []plan.SortKey{{Pos: 0}, {Pos: 1, Desc: true}},
	}}

	want := jit.New().Run(topn.Child, cat) // full sort as the row oracle
	want.Rows = want.Rows[:k]

	engines := []exec.Engine{
		jit.New(),
		vector.New(),
		jit.NewParallel(par.Options{Workers: 4, MorselRows: 16 * 1024}),
	}
	for _, e := range engines {
		name := e.Name()
		e.Run(topn, cat) // warm up: compile paths, lazy setup
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		got := e.Run(topn, cat)
		runtime.ReadMemStats(&after)
		if !result.Equal(want, got) {
			t.Fatalf("%s: fused top-N rows differ from sort+truncate", name)
		}
		if allocated := after.TotalAlloc - before.TotalAlloc; allocated > 4<<20 {
			t.Errorf("%s: top-N run allocated %d bytes, want O(k) (< 4 MB for k=%d over %d rows)",
				name, allocated, k, rows)
		}
	}
}
