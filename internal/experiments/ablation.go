package experiments

import (
	"fmt"

	"repro/internal/bench/cnet"
	"repro/internal/bench/sapsd"
	"repro/internal/costmodel"
	"repro/internal/layout"
	"repro/internal/mem"
	"repro/internal/pattern"
	"repro/internal/sparse"
	"repro/internal/storage"
	"repro/internal/workload"
)

// AblationCostFunction compares the paper's prefetching-aware cost
// function (Equations 5–6) against the original flat-weighted sum on
// patterns where prefetch hiding matters: the flat function overcharges
// CPU-bound sequential scans (their LLC misses are fully hidden) while
// both agree on random access, so the aware function reproduces the
// scan/random cost asymmetry the simulator measures.
func AblationCostFunction(opt Options) *Report {
	geo := mem.TableIII()
	n := int64(1 << 21)
	if opt.Quick {
		n = 1 << 18
	}
	cases := []struct {
		name string
		p    pattern.Pattern
	}{
		{"sequential scan (s_trav)", pattern.STrav{N: n, W: 8, U: 8}},
		{"selective read s=0.05", pattern.STravCR{N: n, W: 16, U: 16, S: 0.05}},
		{"selective read s=0.5", pattern.STravCR{N: n, W: 16, U: 16, S: 0.5}},
		{"random traversal (r_trav)", pattern.RTrav{N: n / 4, W: 64, U: 8}},
	}
	rep := &Report{
		ID:     "ablation-costfn",
		Title:  "Prefetch-aware cost function (Eq. 5-6) vs. flat-weighted original",
		Header: []string{"pattern", "aware cost", "flat cost", "simulated cycles"},
		Notes: []string{
			"the aware function hides sequential LLC misses behind processing (max(0,...) in Eq. 5);",
			"the flat function overprices bandwidth-friendly scans relative to the simulator",
		},
	}
	for _, c := range cases {
		aware := costmodel.Cost(c.p, geo)
		flat := costmodel.CostNaive(c.p, geo)
		h := mem.NewHierarchy(geo)
		pattern.Simulate(c.p, h, 5)
		rep.Rows = append(rep.Rows, []string{c.name, fmtF(aware), fmtF(flat), fmtF(h.Cycles())})
	}
	return rep
}

// AblationCuts compares the paper's Extended Reasonable Cuts against the
// classic per-query cuts of Chu & Ieong on the ADRC table (Table IV),
// where Q1 accesses NAME1 unconditionally but NAME2 only conditionally and
// projects yet other attributes — co-accessed within one query under
// *different* access patterns, exactly the separation classic cuts cannot
// express (Section V-A's motivating argument).
func AblationCuts(opt Options) *Report {
	customers := 20000
	if opt.Quick {
		customers = 3000
	}
	d := sapsd.Generate(sapsd.Config{Customers: customers, Seed: 1})
	cat := d.Catalog("row", nil)
	est := costmodel.NewEstimator(cat, mem.TableIII())
	qs := d.Queries(7)
	w := (&workload.Workload{Name: "adrc"}).
		Add("Q1", qs.Plans[0], 1).
		Add("Q3", qs.Plans[2], 1)

	extended := layout.NewOptimizer(est)
	classic := layout.NewOptimizer(est)
	classic.ClassicCutsOnly = true

	extLayout, extCost := extended.Optimize("ADRC", w)
	clLayout, clCost := classic.Optimize("ADRC", w)
	width := d.ADRC.Schema.Width()
	nsmCost := w.Cost(est, map[string]storage.Layout{"ADRC": storage.NSM(width)})

	rep := &Report{
		ID:     "ablation-cuts",
		Title:  "Extended reasonable cuts vs. classic per-query cuts (ADRC, Table IV workload)",
		Header: []string{"candidate generation", "cuts", "partitions", "workload cost", "% of NSM"},
		Notes: []string{
			"extended cuts come from atomic access patterns (Section V-A); classic cuts from whole queries;",
			"classic cuts cannot split NAME1 from NAME2 (both touched by Q1), losing the conditional-read saving",
		},
	}
	rep.Rows = append(rep.Rows,
		[]string{"extended (paper)", fmt.Sprint(len(extended.CutsFor("ADRC", w))), fmt.Sprint(len(extLayout.Groups)), fmtF(extCost), fmt.Sprintf("%.1f%%", 100*extCost/nsmCost)},
		[]string{"classic (Chu & Ieong)", fmt.Sprint(len(classic.CutsFor("ADRC", w))), fmt.Sprint(len(clLayout.Groups)), fmtF(clCost), fmt.Sprintf("%.1f%%", 100*clCost/nsmCost)},
	)
	return rep
}

// AblationSparse compares the paper's proposed dense key-value storage
// (conclusion, "beyond schema decomposition") against the dense layouts on
// the CNET catalog: footprint, a single-attribute aggregation, and the
// detail-page tuple reconstruction.
func AblationSparse(opt Options) *Report {
	cfg := cnet.Config{Products: 50000, Attrs: 200, Categories: 40, MeanSparse: 6, Seed: 2}
	if opt.Quick {
		cfg.Products = 8000
		cfg.Attrs = 80
	}
	d := cnet.Generate(cfg)
	rel := d.Products
	store := sparse.FromRelation(rel)
	attr := cfg.Attrs / 2 // a representative sparse attribute
	denseBytes := int64(rel.Rows()) * int64(rel.Schema.Width()) * 8

	scanDense := medianTime(3, func() {
		a := rel.Access(attr)
		var sum int64
		for row := 0; row < rel.Rows(); row++ {
			if v := a.Data[row*a.Stride+a.Off]; v != storage.Null {
				sum += storage.DecodeInt(v)
			}
		}
		_ = sum
	})
	scanSparse := medianTime(3, func() { store.SumAttr(attr) })
	fetchDense := medianTime(3, func() {
		buf := make([]storage.Word, rel.Schema.Width())
		for i := 0; i < 100; i++ {
			rel.RowValues((i*37)%rel.Rows(), buf)
		}
	})
	fetchSparse := medianTime(3, func() {
		var buf []storage.Word
		for i := 0; i < 100; i++ {
			buf = store.MaterializeRow((i*37)%rel.Rows(), buf)
		}
	})

	rep := &Report{
		ID:     "ablation-sparse",
		Title:  fmt.Sprintf("Dense key-value lists vs. dense storage (CNET, %d x %d, ~%d non-null/row)", cfg.Products, cfg.Attrs, cfg.MeanSparse+5),
		Header: []string{"metric", "dense (NSM)", "sparse KV"},
	}
	rep.Rows = append(rep.Rows,
		[]string{"footprint", fmtBytes(denseBytes), fmtBytes(store.Bytes())},
		[]string{"sum over one sparse attribute", fmtDur(scanDense), fmtDur(scanSparse)},
		[]string{"100 full-tuple reconstructions", fmtDur(fetchDense), fmtDur(fetchSparse)},
	)
	return rep
}
