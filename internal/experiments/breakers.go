package experiments

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/exec/jit"
	"repro/internal/exec/joinpar"
	"repro/internal/exec/par"
	"repro/internal/exec/vector"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/storage"
)

// breakersWorkerSweep is the fixed worker sweep of the report: the table
// shape stays stable across machines; cells beyond the core count simply
// plateau.
var breakersWorkerSweep = []int{1, 2, 4, 8}

// Breakers measures the parallelized pipeline breakers (not a paper
// figure — the paper is single-core; this experiment prices scaling the
// breakers the way Fig3's workers cells price scaling the scan): full
// sort, fused top-N, and hash-join build+probe on the Figure 3 relation,
// for the jit and vector engines across a worker sweep, plus the isolated
// radix-partitioned build.
func Breakers(opt Options) *Report {
	rows := 1_000_000
	repeats := 3
	if opt.Quick {
		rows = 150_000
		repeats = 1
	}
	setup := NewFig3Setup(rows)
	cat := setup.Catalogs["column"]

	sortPlan := plan.Sort{
		Child: plan.Scan{
			Table:  "R",
			Filter: expr.Cmp{Attr: 0, Op: expr.Lt, Val: storage.EncodeInt(800_000)},
			Cols:   []int{1, 2, 0},
		},
		Keys: []plan.SortKey{{Pos: 0}, {Pos: 1, Desc: true}},
	}
	topnPlan := plan.Limit{N: 100, Child: sortPlan}
	joinPlan := plan.HashJoin{
		Left: plan.Scan{Table: "R", Cols: []int{0, 1}},
		Right: plan.Scan{
			Table:  "R",
			Filter: expr.Cmp{Attr: 0, Op: expr.Lt, Val: storage.EncodeInt(100_000)},
			Cols:   []int{0, 2},
		},
		LeftKey:  0,
		RightKey: 0,
	}

	rep := &Report{
		ID:     "breakers",
		Title:  fmt.Sprintf("parallel pipeline breakers: sort / top-N / join build (%d tuples, column layout)", rows),
		Header: append([]string{"operation"}, sweepLabels()...),
		Notes: []string{
			"sort = ORDER BY two duplicate-heavy keys over a 80%-selective scan (full materialization)",
			"topn = the same ORDER BY with LIMIT 100 fused into the bounded top-N operator",
			"join = build full-table side + probe 10%-selective side (build radix-partitions when parallel)",
			"build-only = joinpar.Build over the materialized build rows (histogram, scatter, tables)",
			"results are bit-identical across the sweep; see TestParallelSortMatchesSerial etc.",
		},
	}

	for _, spec := range []struct {
		name string
		p    plan.Node
	}{{"sort", sortPlan}, {"topn", topnPlan}, {"join", joinPlan}} {
		for _, engineName := range []string{"jit", "vector"} {
			row := []string{spec.name + "/" + engineName}
			for _, w := range breakersWorkerSweep {
				e := breakersEngine(engineName, w)
				row = append(row, fmtDur(medianTime(repeats, func() { e.Run(spec.p, cat) })))
			}
			rep.Rows = append(rep.Rows, row)
		}
	}

	// Isolated build: materialize the build rows once, time Build alone.
	buildRows := jit.New().Run(joinPlan.Left, cat).Rows
	row := []string{"build-only"}
	for _, w := range breakersWorkerSweep {
		o := par.Options{Workers: w}
		row = append(row, fmtDur(medianTime(repeats, func() { joinpar.Build(buildRows, 0, 2, o) })))
	}
	rep.Rows = append(rep.Rows, row)
	return rep
}

func breakersEngine(name string, workers int) exec.Engine {
	opt := par.Options{Workers: workers}
	if name == "vector" {
		if workers == 1 {
			return vector.New()
		}
		return vector.NewParallel(opt)
	}
	if workers == 1 {
		return jit.New()
	}
	return jit.NewParallel(opt)
}

func sweepLabels() []string {
	out := make([]string, len(breakersWorkerSweep))
	for i, w := range breakersWorkerSweep {
		out[i] = fmt.Sprintf("w=%d", w)
	}
	return out
}
