package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/bench/cnet"
	"repro/internal/costmodel"
	"repro/internal/exec/jit"
	"repro/internal/layout"
	"repro/internal/mem"
	"repro/internal/plan"
	"repro/internal/storage"
)

// Fig12Setup prepares the CNET comparison: the sparse catalog under row,
// column and BPi-chosen hybrid layouts, all with the primary-key index,
// plus the Table V queries.
type Fig12Setup struct {
	Data     *cnet.Data
	Catalogs map[string]*plan.Catalog
	Queries  map[int]plan.Node
	Hybrid   storage.Layout
}

// NewFig12Setup builds the fixture.
func NewFig12Setup(cfg cnet.Config) *Fig12Setup {
	d := cnet.Generate(cfg)
	rowCat := d.Catalog("row", nil)
	cnet.RegisterIndexes(rowCat)
	est := costmodel.NewEstimator(rowCat, mem.TableIII())
	o := layout.NewOptimizer(est)
	best, _ := o.Optimize("products", d.Workload(3))

	cats := map[string]*plan.Catalog{
		"row":    rowCat,
		"column": d.Catalog("column", nil),
		"hybrid": d.Catalog("", &best),
	}
	cnet.RegisterIndexes(cats["column"])
	cnet.RegisterIndexes(cats["hybrid"])
	return &Fig12Setup{Data: d, Catalogs: cats, Queries: d.Queries(3), Hybrid: best}
}

// Fig12 regenerates Figure 12: the CNET product-catalog queries weighted
// by their Table V frequencies, on row, column and hybrid layouts. The
// paper's headline: hybrid beats N-ary by more than an order of magnitude
// and full decomposition by ~4x on the weighted sum.
func Fig12(opt Options) *Report {
	cfg := cnet.Config{Products: 100_000, Attrs: 300, Categories: 50, MeanSparse: 6, Seed: 1}
	repeats := 3
	if opt.Quick {
		cfg = cnet.Config{Products: 10_000, Attrs: 100, Categories: 20, MeanSparse: 6, Seed: 1}
		repeats = 1
	}
	setup := NewFig12Setup(cfg)
	layouts := []string{"row", "column", "hybrid"}

	rep := &Report{
		ID:     "fig12",
		Title:  fmt.Sprintf("CNET catalog, weighted query times (%d products x %d attrs)", cfg.Products, cfg.Attrs),
		Header: append([]string{"query (freq)"}, layouts...),
		Notes: []string{
			"weighted time = median single-execution time x Table V frequency;",
			"paper: analytics best on DSM; Q3 slightly better on hybrid (id,name collocated); Q4 best on",
			"row with slight hybrid degradation; weighted sum: hybrid >10x over row, ~4x over column",
			fmt.Sprintf("BPi hybrid layout: %v", setup.Hybrid),
		},
	}
	totals := map[string]time.Duration{}
	for qi := 1; qi <= 4; qi++ {
		freq := cnet.Frequencies[qi]
		row := []string{fmt.Sprintf("Q%d (%gx)", qi, freq)}
		for _, l := range layouts {
			// The web application prepares its statements once and executes
			// them many times (Q4: 10000x), so the compiled form is reused —
			// exactly HyPer's compile-once-execute-parameterized model. Q4 is
			// executed over distinct product ids: sequential identical
			// lookups would measure a hot cache line instead of tuple
			// reconstruction.
			var d time.Duration
			if qi == 4 {
				variants := 1000
				if opt.Quick {
					variants = 200
				}
				rng := rand.New(rand.NewSource(9))
				prepared := make([]*jit.Prepared, variants)
				for i := range prepared {
					prepared[i] = jit.PrepareOpt(setup.Data.Q4For(int64(rng.Intn(setup.Data.Products.Rows()))), setup.Catalogs[l], opt.parOptions())
				}
				d = medianTime(repeats, func() {
					for _, pq := range prepared {
						pq.Exec()
					}
				}) / time.Duration(variants)
			} else {
				pq := jit.PrepareOpt(setup.Queries[qi], setup.Catalogs[l], opt.parOptions())
				d = medianTime(repeats, func() { pq.Exec() })
			}
			weighted := time.Duration(float64(d) * freq)
			totals[l] += weighted
			row = append(row, fmtDur(weighted))
		}
		rep.Rows = append(rep.Rows, row)
	}
	sum := []string{"Sum"}
	for _, l := range layouts {
		sum = append(sum, fmtDur(totals[l]))
	}
	rep.Rows = append(rep.Rows, sum)
	return rep
}

// Table5 prints the CNET workload definition (paper Table V).
func Table5(Options) *Report {
	return &Report{
		ID:     "table5",
		Title:  "The queries on the CNET product catalog",
		Header: []string{"query", "frequency", "description"},
		Rows: [][]string{
			{"select category, count(*) from products group by category", "1", "overview of all categories with product counts"},
			{"select (price_from/10)*10 as price, count(*) from products where category = $1 group by price order by price", "1", "drill down to a category and show price ranges"},
			{"select id, name from products where category=$1 and (price_from/10)*10 = $2", "100", "listing of all products in a category for the selected price range"},
			{"select * from products where id=$1", "10000", "show available details of a selected product"},
		},
	}
}
