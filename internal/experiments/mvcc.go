package experiments

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/plan"
	"repro/internal/service"
	"repro/internal/storage"
)

// MVCC measures what snapshot isolation costs and buys (not a paper
// figure — the paper's engines are single-user; this prices the
// concurrency layer around them): the snapshot pin/release a reader
// pays per query, the copy-on-write commit a writer pays per batch,
// and the headline comparison — closed-loop reader throughput with no
// writer vs with a background writer publishing versions the whole
// time. Lock-free reads should keep the two within noise; the old
// catalog RWMutex would have stalled every reader behind each commit.
func MVCC(opt Options) *Report {
	rows := 200_000
	requests := 2000
	repeats := 200
	if opt.Quick {
		rows = 50_000
		requests = 300
		repeats = 50
	}

	rep := &Report{
		ID:     "mvcc",
		Title:  "MVCC snapshots: pin cost, commit cost, reads vs concurrent writer",
		Header: []string{"stage", "value", "note"},
	}

	db := service.NewDemoDB(rows)
	svc := service.New(db, service.Config{Workers: opt.Workers, MaxInFlight: 32})
	defer svc.Close()
	if _, err := svc.Load(service.LoadSpec{Table: "w", Format: "csv", CreateSpec: "v:int64"},
		strings.NewReader("")); err != nil {
		panic(err)
	}
	queries := []plan.Node{
		service.DemoQuery(0.0001),
		service.DemoQuery(0.01),
		service.DemoQuery(0.1),
	}

	// The per-query MVCC admission price: pin the current version,
	// release it. This replaced RLock/RUnlock on the catalog mutex.
	pin := medianTime(repeats, func() {
		for i := 0; i < 1000; i++ {
			db.Snapshot().Release()
		}
	}) / 1000
	rep.Rows = append(rep.Rows,
		[]string{"snapshot/pin+release", fmtDur(pin), "per read admission (atomic load + pin CAS)"})

	// The writer's price: one 64-row batch through the service write
	// path — copy-on-write of the touched relation, atomic publish,
	// reclaim of the superseded version.
	batch := make([][]storage.Word, 64)
	for i := range batch {
		batch[i] = []storage.Word{storage.EncodeInt(int64(i))}
	}
	commit := medianTime(repeats, func() {
		if _, err := svc.Query(plan.Insert{Table: "w", Rows: batch}); err != nil {
			panic(err)
		}
	})
	rep.Rows = append(rep.Rows,
		[]string{"txn/commit-publish", fmtDur(commit), "64-row insert: COW clone + atomic swap"})

	// Headline: reader throughput alone, then with a paced background
	// writer committing versions throughout the run.
	g := service.LoadGen{Clients: 4, Requests: requests, Queries: queries}
	quiet := g.Run(svc)
	if quiet.Errors > 0 {
		panic(fmt.Sprintf("mvcc experiment: %d/%d quiet reads failed", quiet.Errors, quiet.Requests))
	}

	stop := make(chan struct{})
	var commits atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := svc.Query(plan.Insert{Table: "w", Rows: batch}); err != nil {
				panic(err)
			}
			commits.Add(1)
			time.Sleep(100 * time.Microsecond)
		}
	}()
	contended := g.Run(svc)
	close(stop)
	wg.Wait()
	if contended.Errors > 0 {
		panic(fmt.Sprintf("mvcc experiment: %d/%d contended reads failed", contended.Errors, contended.Requests))
	}
	ratio := quiet.QPS / contended.QPS
	rep.Rows = append(rep.Rows,
		[]string{"read/no-writer", fmt.Sprintf("%.0f qps", quiet.QPS),
			fmt.Sprintf("%d reads, 4 clients", quiet.Requests)},
		[]string{"read/with-writer", fmt.Sprintf("%.0f qps", contended.QPS),
			fmt.Sprintf("%.0f commits/s concurrent, no-writer/with-writer = %.2fx", float64(commits.Load())/contended.Elapsed.Seconds(), ratio)},
	)

	st := svc.Stats()
	rep.Rows = append(rep.Rows,
		[]string{"versions/after-drain", fmt.Sprintf("%d live", st.LiveVersions),
			fmt.Sprintf("epoch %d, %d superseded versions reclaimed", st.Epoch, st.VersionsReclaimed)})

	rep.Notes = append(rep.Notes,
		fmt.Sprintf("demo table R with %d rows; writer commits 64-row batches into a side table at ~100us pace", rows),
		"readers run lock-free against pinned immutable versions; writers serialize on one commit mutex",
		"acceptance: with-writer reader qps within 2x of no-writer (ratio above)",
	)
	if st.LiveVersions != 1 {
		rep.Notes = append(rep.Notes, fmt.Sprintf("WARNING: %d versions still live after drain", st.LiveVersions))
	}
	if n := workersNote(opt); n != "" {
		rep.Notes = append(rep.Notes, n)
	}
	return rep
}
