package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/mem"
)

// Fig8Point is one calibration measurement.
type Fig8Point struct {
	RegionBytes     int64
	CyclesPerAccess float64
}

// Fig8Chase measures cycles per access for uniformly random word reads
// inside a region of the given size — the paper's configuring experiment
// ("calculate the sum of a constant number of values varying the size of
// the memory region they are read from"). Latency cliffs appear where the
// region outgrows a cache level.
func Fig8Chase(regionBytes int64, accesses int, geo mem.Geometry, seed int64) float64 {
	h := mem.NewHierarchy(geo)
	rng := rand.New(rand.NewSource(seed))
	words := regionBytes / 8
	if words < 1 {
		words = 1
	}
	for i := 0; i < accesses; i++ {
		h.Read(uint64(rng.Int63n(words)) * 8)
	}
	return h.Cycles() / float64(accesses)
}

// Fig8Regions is the region-size sweep (1 KB to 256 MB, log scale) —
// the paper sweeps 1K to 100000K values.
func Fig8Regions(quick bool) []int64 {
	max := int64(256 << 20)
	if quick {
		max = 32 << 20
	}
	var out []int64
	for r := int64(1 << 10); r <= max; r *= 4 {
		out = append(out, r)
	}
	return out
}

// Fig8Sweep runs the calibration experiment across the sweep.
func Fig8Sweep(quick bool, geo mem.Geometry) []Fig8Point {
	accesses := 400_000
	if quick {
		accesses = 100_000
	}
	var out []Fig8Point
	for _, r := range Fig8Regions(quick) {
		out = append(out, Fig8Point{RegionBytes: r, CyclesPerAccess: Fig8Chase(r, accesses, geo, 7)})
	}
	return out
}

// Fig8 regenerates Figure 8: cycles per access as a function of the
// accessed region size on the simulated hierarchy.
func Fig8(opt Options) *Report {
	geo := mem.TableIII()
	rep := &Report{
		ID:     "fig8",
		Title:  "Calibration experiment: cycles/access vs. region size",
		Header: []string{"region", "cycles/access"},
		Notes: []string{
			"paper: plateaus separated by cliffs where the region exceeds L1 (32kB), L2 (256kB), L3 (8MB)",
		},
	}
	for _, p := range Fig8Sweep(opt.Quick, geo) {
		rep.Rows = append(rep.Rows, []string{fmtBytes(p.RegionBytes), fmt.Sprintf("%.2f", p.CyclesPerAccess)})
	}
	return rep
}

// plateau measures the cycles/access deep inside a level (region at half
// the level capacity) — the basis of the latency extraction.
func plateau(capacity int64, geo mem.Geometry, accesses int) float64 {
	return Fig8Chase(capacity/2, accesses, geo, 11)
}

// Table3 regenerates Table III: the configured hierarchy parameters next
// to the latencies recovered from the Figure 8 curve (plateau deltas),
// demonstrating the paper's calibration procedure on the simulated
// machine.
func Table3(opt Options) *Report {
	geo := mem.TableIII()
	accesses := 300_000
	if opt.Quick {
		accesses = 80_000
	}
	pL1 := plateau(geo.Levels[0].Capacity, geo, accesses)
	pL2 := plateau(geo.Levels[1].Capacity, geo, accesses)
	pL3 := plateau(geo.Levels[2].Capacity, geo, accesses)
	pMem := Fig8Chase(128<<20, accesses, geo, 11)

	rep := &Report{
		ID:     "table3",
		Title:  "Model parameters: configured vs. recovered from calibration",
		Header: []string{"level", "capacity", "blocksize", "configured latency", "recovered latency"},
		Notes: []string{
			"recovered latency = plateau delta of the Fig. 8 curve;",
			"the memory row includes TLB page-walk costs (regions beyond the 8MB TLB coverage), as on real hardware",
		},
	}
	rows := []struct {
		spec      mem.Spec
		recovered float64
	}{
		{geo.Levels[0], pL1 - geo.TLB.Latency - geo.RegisterLatency},
		{geo.Levels[1], pL2 - pL1},
		{geo.Levels[2], pL3 - pL2},
		{geo.Memory, pMem - pL3},
	}
	for _, r := range rows {
		rep.Rows = append(rep.Rows, []string{
			r.spec.Name, fmtBytes(r.spec.Capacity), fmtBytes(r.spec.BlockSize),
			fmt.Sprintf("%.0f cyc", r.spec.Latency), fmt.Sprintf("%.1f cyc", r.recovered),
		})
	}
	rep.Rows = append(rep.Rows, []string{
		geo.TLB.Name, fmtBytes(geo.TLB.Capacity), fmtBytes(geo.TLB.BlockSize),
		fmt.Sprintf("%.0f cyc", geo.TLB.Latency), "(charged per access)",
	})
	return rep
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%dGB", b>>30)
	case b >= 1<<20:
		return fmt.Sprintf("%dMB", b>>20)
	case b >= 1<<10:
		return fmt.Sprintf("%dkB", b>>10)
	default:
		return fmt.Sprintf("%dB", b)
	}
}
