package experiments

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/storage"
)

// Ingest measures the durability subsystem (not a paper figure — the
// paper's layouts live in RAM; this experiment prices keeping them):
// streaming CSV bulk-load throughput into row and column layouts,
// snapshot write/read bandwidth for the resulting catalog, and WAL
// append+replay rates.
func Ingest(opt Options) *Report {
	rows := 1_000_000
	if opt.Quick {
		rows = 100_000
	}

	rep := &Report{
		ID:     "ingest",
		Title:  "durable storage: bulk load, snapshot and WAL throughput",
		Header: []string{"stage", "rows", "bytes", "time", "throughput"},
	}

	// CSV corpus: int key, low-cardinality string, float.
	var sb strings.Builder
	sb.Grow(rows * 24)
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&sb, "%d,name-%d,%d.%02d\n", i, i%1000, i%100, i%100)
	}
	body := sb.String()
	schema := func() *storage.Schema {
		return storage.NewSchema("ingest",
			storage.Attribute{Name: "id", Type: storage.Int64},
			storage.Attribute{Name: "name", Type: storage.String},
			storage.Attribute{Name: "score", Type: storage.Float64},
		)
	}

	var loaded *storage.Relation
	for _, layout := range []struct {
		name string
		l    storage.Layout
	}{{"row", storage.NSM(3)}, {"column", storage.DSM(3)}} {
		rel := storage.NewRelation(schema(), layout.l)
		start := time.Now()
		n, err := persist.LoadBatches(rel, persist.NewCSVReader(strings.NewReader(body), 3), 4096,
			func(batch [][]storage.Word) error {
				for _, r := range batch {
					rel.AppendRow(r)
				}
				return nil
			})
		if err != nil {
			panic(err)
		}
		took := time.Since(start)
		rep.Rows = append(rep.Rows, []string{
			"csv-load/" + layout.name, fmt.Sprintf("%d", n), fmt.Sprintf("%d", len(body)),
			fmtDur(took), fmt.Sprintf("%.2f Mrows/s", float64(n)/took.Seconds()/1e6),
		})
		loaded = rel
	}

	db := core.Open()
	db.AddTable(loaded)
	db.CreateHashIndex("ingest", 0)

	var buf bytes.Buffer
	start := time.Now()
	n, err := persist.WriteSnapshot(&buf, db, 0)
	if err != nil {
		panic(err)
	}
	wTook := time.Since(start)
	rep.Rows = append(rep.Rows, []string{
		"snapshot-write", fmt.Sprintf("%d", rows), fmt.Sprintf("%d", n),
		fmtDur(wTook), fmt.Sprintf("%.1f MB/s", float64(n)/wTook.Seconds()/1e6),
	})

	start = time.Now()
	if _, err := persist.ReadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		panic(err)
	}
	rTook := time.Since(start)
	rep.Rows = append(rep.Rows, []string{
		"snapshot-read", fmt.Sprintf("%d", rows), fmt.Sprintf("%d", n),
		fmtDur(rTook), fmt.Sprintf("%.1f MB/s", float64(n)/rTook.Seconds()/1e6),
	})

	if dir, err := os.MkdirTemp("", "ingest-wal-*"); err == nil {
		defer os.RemoveAll(dir)
		wdb, mgr, err := persist.Open(persist.Options{Dir: dir})
		if err != nil {
			panic(err)
		}
		wdb.AddTable(storage.NewRelation(schema(), storage.NSM(3)))
		if err := mgr.LogCreateTable(wdb.Catalog(), "ingest"); err != nil {
			panic(err)
		}
		const perBatch = 4096
		batch := make([][]storage.Word, perBatch)
		for i := range batch {
			batch[i] = []storage.Word{
				storage.EncodeInt(int64(i)), storage.Null, storage.EncodeFloat(float64(i)),
			}
		}
		walRows := 0
		start = time.Now()
		for walRows+perBatch <= rows/4 {
			for _, r := range batch {
				wdb.Catalog().Table("ingest").AppendRow(r)
			}
			if err := mgr.LogInsert("ingest", 3, batch); err != nil {
				panic(err)
			}
			walRows += perBatch
		}
		aTook := time.Since(start)
		walBytes := mgr.WALSize()
		mgr.Close()
		rep.Rows = append(rep.Rows, []string{
			"wal-append", fmt.Sprintf("%d", walRows), fmt.Sprintf("%d", walBytes),
			fmtDur(aTook), fmt.Sprintf("%.2f Mrows/s", float64(walRows)/aTook.Seconds()/1e6),
		})
		start = time.Now()
		_, mgr2, err := persist.Open(persist.Options{Dir: dir})
		if err != nil {
			panic(err)
		}
		pTook := time.Since(start)
		mgr2.Close()
		rep.Rows = append(rep.Rows, []string{
			"wal-replay", fmt.Sprintf("%d", walRows), fmt.Sprintf("%d", walBytes),
			fmtDur(pTook), fmt.Sprintf("%.2f Mrows/s", float64(walRows)/pTook.Seconds()/1e6),
		})
	}

	rep.Notes = append(rep.Notes,
		"csv-load = parse + dictionary encode + append, single-threaded, batch 4096",
		"snapshot includes the hash index definition; index structures rebuild on read",
		"wal-append commits one batch of 4096 rows per record (group commit, no fsync)")
	return rep
}
