// Package experiments contains one driver per table and figure of the
// paper's evaluation section. Each driver regenerates the corresponding
// rows/series (workload generation, parameter sweep, baselines, and the
// measurement itself) and returns a printable Report. The cmd/benchrunner
// binary and the repository-level benchmarks in bench_test.go both call
// into this package, so the numbers in EXPERIMENTS.md are regenerable from
// either entry point.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/exec"
	"repro/internal/exec/jit"
	"repro/internal/exec/par"
)

// Options sizes the experiments. Quick shrinks the data sets for CI;
// Full approaches the paper's cardinalities. Workers selects the morsel
// scheduler's worker count for the parallel-capable engines: 0 or 1
// reproduce the paper's single-core configuration, > 1 runs scans
// morsel-parallel, < 0 means GOMAXPROCS.
type Options struct {
	Quick   bool
	Workers int
}

// parOptions translates the experiment-level workers knob into scheduler
// options.
func (o Options) parOptions() par.Options {
	switch {
	case o.Workers < 0:
		return par.Options{} // GOMAXPROCS
	case o.Workers == 0:
		return par.Serial()
	default:
		return par.Options{Workers: o.Workers}
	}
}

// jitEngine returns the JiT engine configured by the workers knob; every
// figure driver that measures the JiT processor goes through it.
func jitEngine(opt Options) exec.Engine {
	p := opt.parOptions()
	if !p.Parallel() {
		return jit.New()
	}
	return jit.NewParallel(p)
}

// workersNote renders the knob for report footnotes, or "" when serial.
func workersNote(opt Options) string {
	p := opt.parOptions()
	if !p.Parallel() {
		return ""
	}
	return fmt.Sprintf("jit engine ran morsel-parallel with %d workers", p.WorkerCount())
}

// Report is a regenerated table or figure.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// All runs every experiment in paper order.
func All(opt Options) []*Report {
	return []*Report{
		Fig3(opt),
		Fig6(opt),
		Fig8(opt),
		Table3(opt),
		Table4(opt),
		Fig9(opt),
		Fig10(opt),
		Fig11(opt),
		Fig12(opt),
		Table5(opt),
		AblationCostFunction(opt),
		AblationCuts(opt),
		AblationSparse(opt),
	}
}

// ByID returns the named experiment's driver, or nil.
func ByID(id string) func(Options) *Report {
	m := map[string]func(Options) *Report{
		"fig3":            Fig3,
		"fig6":            Fig6,
		"fig8":            Fig8,
		"table3":          Table3,
		"table4":          Table4,
		"fig9":            Fig9,
		"fig10":           Fig10,
		"fig11":           Fig11,
		"fig12":           Fig12,
		"table5":          Table5,
		"ablation-costfn": AblationCostFunction,
		"ablation-cuts":   AblationCuts,
		"ablation-sparse": AblationSparse,
		"ingest":          Ingest,
		"breakers":        Breakers,
		"repl":            Repl,
		"obs":             Obs,
		"workload":        WorkloadExp,
		"mvcc":            MVCC,
	}
	return m[id]
}

// IDs lists the available experiments.
func IDs() []string {
	ids := []string{
		"fig3", "fig6", "fig8", "table3", "table4", "fig9", "fig10", "fig11", "fig12", "table5",
		"ablation-costfn", "ablation-cuts", "ablation-sparse", "ingest", "breakers", "repl", "obs",
		"workload", "mvcc",
	}
	sort.Strings(ids)
	return ids
}

// medianTime runs f repeats times and returns the median duration.
func medianTime(repeats int, f func()) time.Duration {
	if repeats < 1 {
		repeats = 1
	}
	times := make([]time.Duration, repeats)
	for i := range times {
		start := time.Now()
		f()
		times[i] = time.Since(start)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2]
}

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

func fmtF(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1e6 || v < 1e-2:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
