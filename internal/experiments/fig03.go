package experiments

import (
	"fmt"
	"math/rand"
	"runtime"

	"repro/internal/exec"
	"repro/internal/exec/bulk"
	"repro/internal/exec/volcano"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/storage"
)

// Fig3Selectivities is the selectivity sweep of the example query.
var Fig3Selectivities = []float64{0.0001, 0.001, 0.01, 0.1, 0.5, 1.0}

// Fig3Setup holds the example-query fixture shared by the report driver
// and bench_test.go: the 16-attribute relation R under the three layouts
// of Section III-A, and the plan factory.
type Fig3Setup struct {
	Rows     int
	Catalogs map[string]*plan.Catalog // row, column, hybrid
}

// NewFig3Setup generates R(A..P) with A uniform over [0, 1e6), so that the
// predicate A < s*1e6 has selectivity s.
func NewFig3Setup(rows int) *Fig3Setup {
	attrs := make([]storage.Attribute, 16)
	for i := range attrs {
		attrs[i] = storage.Attribute{Name: string(rune('A' + i)), Type: storage.Int64}
	}
	schema := storage.NewSchema("R", attrs...)
	b := storage.NewBuilder(schema)
	rng := rand.New(rand.NewSource(1))
	for a := 0; a < 16; a++ {
		col := make([]int64, rows)
		for i := range col {
			if a == 0 {
				col[i] = rng.Int63n(1_000_000)
			} else {
				col[i] = rng.Int63n(1000)
			}
		}
		b.SetInts(a, col)
	}
	master := b.Build(storage.NSM(16))
	rest := make([]int, 0, 11)
	for a := 5; a < 16; a++ {
		rest = append(rest, a)
	}
	layouts := map[string]storage.Layout{
		"row":    storage.NSM(16),
		"column": storage.DSM(16),
		"hybrid": storage.PDSM([]int{0}, []int{1, 2, 3, 4}, rest), // the paper's hand-optimized PDSM
	}
	s := &Fig3Setup{Rows: rows, Catalogs: map[string]*plan.Catalog{}}
	for name, l := range layouts {
		s.Catalogs[name] = plan.NewCatalog().Add(master.WithLayout(l))
	}
	return s
}

// Query builds `select sum(B),sum(C),sum(D),sum(E) from R where A < s*1e6`
// — the Figure 2a query with the parameter expressed as a selectivity.
func (s *Fig3Setup) Query(selectivity float64) plan.Node {
	threshold := int64(selectivity * 1_000_000)
	return plan.Aggregate{
		Child: plan.Scan{
			Table:  "R",
			Filter: expr.Cmp{Attr: 0, Op: expr.Lt, Val: storage.EncodeInt(threshold)},
			Cols:   []int{1, 2, 3, 4},
		},
		Aggs: []expr.AggSpec{
			{Kind: expr.Sum, Arg: expr.IntCol(0), Name: "sum_b"},
			{Kind: expr.Sum, Arg: expr.IntCol(1), Name: "sum_c"},
			{Kind: expr.Sum, Arg: expr.IntCol(2), Name: "sum_d"},
			{Kind: expr.Sum, Arg: expr.IntCol(3), Name: "sum_e"},
		},
	}
}

// Fig3Engines are the processing models compared (the paper's Volcano,
// bulk and JiT implementations of the same query), in the paper's serial
// configuration.
func Fig3Engines() []exec.Engine { return Fig3EnginesOpt(Options{}) }

// Fig3EnginesOpt is Fig3Engines with the workers knob applied to the JiT
// engine — the single source of the figure's engine list.
func Fig3EnginesOpt(opt Options) []exec.Engine {
	return []exec.Engine{volcano.New(), bulk.New(), jitEngine(opt)}
}

// Fig3 regenerates Figure 3: evaluation time of the example query under
// every processing model × storage layout combination across the
// selectivity sweep. The paper's claims: Volcano is 1-2 orders of
// magnitude slower regardless of layout; bulk is competitive at low
// selectivity and degrades with materialization volume; JiT on the
// hand-optimized PDSM wins across the sweep.
func Fig3(opt Options) *Report {
	rows := 1_000_000
	repeats := 5
	if opt.Quick {
		rows = 100_000
		repeats = 1
	}
	setup := NewFig3Setup(rows)
	layoutOrder := []string{"row", "column", "hybrid"}

	rep := &Report{
		ID:     "fig3",
		Title:  fmt.Sprintf("Example query cost vs. selectivity (%d tuples)", rows),
		Header: append([]string{"processor/layout"}, selLabels()...),
		Notes: []string{
			"paper: Volcano slowest by 1-2 orders of magnitude (storage-model independent);",
			"bulk degrades with selectivity (materialization); JiT+PDSM best across the sweep",
		},
	}
	if n := workersNote(opt); n != "" {
		rep.Notes = append(rep.Notes, n)
	}
	for _, e := range Fig3EnginesOpt(opt) {
		for _, ln := range layoutOrder {
			cat := setup.Catalogs[ln]
			row := []string{e.Name() + "/" + ln}
			for _, s := range Fig3Selectivities {
				q := setup.Query(s)
				// The bulk engine's materialization churns the heap; collect
				// between cells so one engine's garbage is not charged to the
				// next measurement.
				runtime.GC()
				d := medianTime(repeats, func() { e.Run(q, cat) })
				row = append(row, fmtDur(d))
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep
}

func selLabels() []string {
	out := make([]string, len(Fig3Selectivities))
	for i, s := range Fig3Selectivities {
		out[i] = fmt.Sprintf("s=%g", s)
	}
	return out
}
