package experiments

import (
	"fmt"

	"repro/internal/bench/sapsd"
	"repro/internal/costmodel"
	"repro/internal/exec"
	"repro/internal/exec/hyrise"
	"repro/internal/layout"
	"repro/internal/mem"
	"repro/internal/plan"
	"repro/internal/storage"
)

// Fig9Setup prepares the SAP-SD comparison: the generated database under
// row, column and optimizer-chosen hybrid layouts, plus the query set.
type Fig9Setup struct {
	Data     *sapsd.Data
	Catalogs map[string]*plan.Catalog // row, column, hybrid
	Queries  sapsd.QuerySet
}

// NewFig9Setup generates the data and runs BPi over the query-relevant
// tables to obtain the hybrid layout (the paper derives its hybrid the
// same way).
func NewFig9Setup(customers int) *Fig9Setup {
	d := sapsd.Generate(sapsd.Config{Customers: customers, Seed: 1})
	rowCat := d.Catalog("row", nil)
	est := costmodel.NewEstimator(rowCat, mem.TableIII())
	w := d.Workload(7)
	o := layout.NewOptimizer(est)
	overrides := map[string]storage.Layout{}
	for _, tbl := range []string{"ADRC", "KNA1", "VBAK", "VBAP", "MARA"} {
		best, _ := o.Optimize(tbl, w)
		overrides[tbl] = best
	}
	return &Fig9Setup{
		Data: d,
		Catalogs: map[string]*plan.Catalog{
			"row":    rowCat,
			"column": d.Catalog("column", nil),
			"hybrid": d.Catalog("row", overrides),
		},
		Queries: d.Queries(7),
	}
}

// Fig9Processors returns the two processing models of Figure 9: HyPer
// (JiT compilation) and the HYRISE-style bulk processor with per-value
// function calls, in the paper's serial configuration.
func Fig9Processors() []exec.Engine { return Fig9ProcessorsOpt(Options{}) }

// Fig9ProcessorsOpt is Fig9Processors with the workers knob applied to
// the JiT engine — the single source of the figure's processor list.
func Fig9ProcessorsOpt(opt Options) []exec.Engine {
	return []exec.Engine{jitEngine(opt), hyrise.New()}
}

// Fig9 regenerates Figure 9: SAP-SD queries Q1-Q12 under {HyPer-style
// JiT, HYRISE-style bulk-with-calls} × {row, column, hybrid}.
func Fig9(opt Options) *Report {
	customers := 20000
	repeats := 3
	if opt.Quick {
		customers = 2000
		repeats = 1
	}
	setup := NewFig9Setup(customers)
	layouts := []string{"row", "column", "hybrid"}
	procs := Fig9ProcessorsOpt(opt)
	procName := map[string]string{"jit": "HyPer", "hyrise": "HYRISE"}

	rep := &Report{
		ID:     "fig9",
		Title:  fmt.Sprintf("SAP-SD Q1..Q12 (%d customers): JiT vs bulk-with-function-calls", customers),
		Header: []string{"query"},
		Notes: []string{
			"paper: JiT outperforms the HYRISE-style processor by up to >1 order of magnitude on scan-heavy",
			"queries; relative layout ranking is similar across processors; the insert Q6 is cheap under JiT",
		},
	}
	if n := workersNote(opt); n != "" {
		rep.Notes = append(rep.Notes, n)
	}
	for _, e := range procs {
		for _, l := range layouts {
			rep.Header = append(rep.Header, procName[e.Name()]+" "+l)
		}
	}
	insertSeq := 0
	for qi := 0; qi < 12; qi++ {
		row := []string{fmt.Sprintf("Q%d", qi+1)}
		for _, e := range procs {
			for _, l := range layouts {
				cat := setup.Catalogs[l]
				var p plan.Node
				if qi == 5 { // Q6: fresh insert per execution
					p = setup.Data.InsertPlan(insertSeq)
					insertSeq++
				} else {
					p = setup.Queries.Plans[qi]
				}
				d := medianTime(repeats, func() { e.Run(p, cat) })
				row = append(row, fmtDur(d))
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep
}
