package experiments

import (
	"fmt"

	"repro/internal/bench/chbench"
	"repro/internal/costmodel"
	"repro/internal/layout"
	"repro/internal/mem"
	"repro/internal/plan"
	"repro/internal/storage"
)

// Fig11Setup prepares the CH-benchmark comparison: generated data (with a
// burst of transactions applied first, for the mixed-workload character),
// the analytical queries, and row/column/hybrid catalogs with the hybrid
// chosen by BPi.
type Fig11Setup struct {
	Data     *chbench.Data
	Catalogs map[string]*plan.Catalog
	Queries  map[int]plan.Node
}

// NewFig11Setup builds the fixture.
func NewFig11Setup(cfg chbench.Config, txns int) *Fig11Setup {
	d := chbench.Generate(cfg)
	rowCat := d.Catalog("row", nil)
	if txns > 0 {
		tx := chbench.NewTx(d, rowCat, 3)
		if err := tx.Mix(txns); err != nil {
			panic(err)
		}
		// The transactional writes went to the row catalog's relations;
		// re-derive the master so all layout siblings see the same state.
		d.Orders = rowCat.Table("orders")
		d.Orderline = rowCat.Table("orderline")
		d.Customer = rowCat.Table("customer")
		d.District = rowCat.Table("district")
		d.Stock = rowCat.Table("stock")
	}
	est := costmodel.NewEstimator(rowCat, mem.TableIII())
	w := d.Workload()
	o := layout.NewOptimizer(est)
	overrides := map[string]storage.Layout{}
	for _, tbl := range []string{"orderline", "orders", "customer", "item", "stock", "supplier"} {
		best, _ := o.Optimize(tbl, w)
		overrides[tbl] = best
	}
	return &Fig11Setup{
		Data: d,
		Catalogs: map[string]*plan.Catalog{
			"row":    d.Catalog("row", nil),
			"column": d.Catalog("column", nil),
			"hybrid": d.Catalog("row", overrides),
		},
		Queries: d.Queries(),
	}
}

// Fig11 regenerates Figure 11: CH-benchmark analytical queries 1, 2, 3,
// 4, 5, 6, 8, 10 on row, column and hybrid layouts under the JiT
// processor. The paper's (negative-ish) finding: because JiT row scans
// are already tight loops, full decomposition only buys ~30% on the
// analytical queries, and the hybrid tracks the column store closely.
func Fig11(opt Options) *Report {
	cfg := chbench.Config{Warehouses: 4, DistrictsPerW: 10, CustomersPerD: 300, OrdersPerD: 300, Items: 2000, Suppliers: 200, Seed: 1}
	txns := 2000
	repeats := 3
	if opt.Quick {
		cfg = chbench.Config{Warehouses: 2, DistrictsPerW: 4, CustomersPerD: 50, OrdersPerD: 60, Items: 500, Suppliers: 50, Seed: 1}
		txns = 200
		repeats = 1
	}
	setup := NewFig11Setup(cfg, txns)
	engine := jitEngine(opt)
	layouts := []string{"row", "column", "hybrid"}

	rep := &Report{
		ID:     "fig11",
		Title:  fmt.Sprintf("CH-benchmark analytical queries (W=%d, after %d transactions, JiT)", cfg.Warehouses, txns),
		Header: append([]string{"CH query"}, layouts...),
		Notes: []string{
			"paper: decomposition buys only ~30% over N-ary storage here — JiT-compiled row scans",
			"are already tight loops, so there is little left for the layout to win on this workload",
		},
	}
	for _, qi := range chbench.QueryOrder {
		row := []string{fmt.Sprintf("%d", qi)}
		for _, l := range layouts {
			cat := setup.Catalogs[l]
			q := setup.Queries[qi]
			d := medianTime(repeats, func() { engine.Run(q, cat) })
			row = append(row, fmtDur(d))
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep
}
