package experiments

import (
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/service"
	"repro/internal/storage"
)

// Repl measures the log-shipping replication subsystem (not a paper
// figure — the paper is single-node; replication is how the reproduction
// scales its reads): WAL ship bandwidth for single-row insert streams
// with and without record coalescing, and replica apply throughput
// through the replicated-apply path (the recovery replay under the
// service's write lock).
func Repl(opt Options) *Report {
	rows := 400_000
	if opt.Quick {
		rows = 50_000
	}

	rep := &Report{
		ID:     "repl",
		Title:  "WAL-shipping replication: ship bandwidth and apply throughput",
		Header: []string{"stage", "rows", "bytes", "time", "throughput"},
	}

	// Ship bandwidth: a stream of single-row inserts — the worst framing
	// overhead — raw vs coalesced.
	var chunk []byte
	var epoch uint64
	for _, mode := range []struct {
		name     string
		coalesce bool
		rows     int
	}{
		{"ship/single-row", false, rows / 4},
		{"ship/coalesced", true, rows / 4},
		// The apply corpus: batched records, like a bulk load would ship.
		{"ship/batch-4096", false, rows},
	} {
		data, e, took := buildShipWAL(mode.rows, mode.coalesce, mode.name == "ship/batch-4096")
		rep.Rows = append(rep.Rows, []string{
			mode.name, fmt.Sprintf("%d", mode.rows), fmt.Sprintf("%d", len(data)),
			fmtDur(took), fmt.Sprintf("%.2f bytes/row", float64(len(data))/float64(mode.rows)),
		})
		if mode.name == "ship/batch-4096" {
			chunk, epoch = data, e
		}
	}

	// Apply throughput: a fresh replica service consumes the shipped
	// stream in 1 MB frame-aligned chunks, exactly as the tail loop does.
	svc := service.New(core.Open(), service.Config{Workers: 1})
	defer svc.Close()
	applied := 0
	start := time.Now()
	for off := 0; off < len(chunk); {
		end := off + 1<<20
		if end > len(chunk) {
			end = len(chunk)
		}
		consumed, n, err := svc.ApplyReplicated(chunk[off:end], epoch)
		if err != nil {
			panic(err)
		}
		if consumed == 0 {
			end = len(chunk) // a frame larger than the window: take the rest
			consumed, n, err = svc.ApplyReplicated(chunk[off:end], epoch)
			if err != nil {
				panic(err)
			}
		}
		off += consumed
		applied += n
	}
	took := time.Since(start)
	rep.Rows = append(rep.Rows, []string{
		"apply", fmt.Sprintf("%d", rows), fmt.Sprintf("%d", len(chunk)),
		fmtDur(took), fmt.Sprintf("%.2f Mrows/s", float64(rows)/took.Seconds()/1e6),
	})
	if got := svc.Unwrap().Catalog().Table("t").Rows(); got != rows {
		panic(fmt.Sprintf("replica applied %d rows, want %d", got, rows))
	}

	rep.Notes = append(rep.Notes,
		"ship/* = committed WAL bytes for an insert stream (3 int64 columns)",
		"coalesced = SetCoalesce merging consecutive single-row records (cap 4096 rows)",
		fmt.Sprintf("apply = ApplyReplicated of %d records in 1 MB chunks on a fresh replica", applied),
	)
	return rep
}

// buildShipWAL logs an insert stream into a throwaway data directory and
// returns the committed WAL (the shipped stream), its epoch and the
// logging wall time.
func buildShipWAL(rows int, coalesce, batched bool) ([]byte, uint64, time.Duration) {
	dir, err := os.MkdirTemp("", "repl-ship-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	db, mgr, err := persist.Open(persist.Options{Dir: dir})
	if err != nil {
		panic(err)
	}
	defer mgr.Close()
	rel := storage.NewRelation(storage.NewSchema("t",
		storage.Attribute{Name: "id", Type: storage.Int64},
		storage.Attribute{Name: "grp", Type: storage.Int64},
		storage.Attribute{Name: "val", Type: storage.Int64},
	), storage.NSM(3))
	db.AddTable(rel)
	if err := mgr.LogCreateTable(db.Catalog(), "t"); err != nil {
		panic(err)
	}
	if coalesce {
		if err := mgr.SetCoalesce(time.Hour, 4096); err != nil {
			panic(err)
		}
	}
	per := 1
	if batched {
		per = 4096
	}
	start := time.Now()
	batch := make([][]storage.Word, 0, per)
	for i := 0; i < rows; i++ {
		batch = append(batch, []storage.Word{
			storage.EncodeInt(int64(i)), storage.EncodeInt(int64(i % 7)), storage.EncodeInt(int64(i % 100)),
		})
		if len(batch) == per {
			if err := mgr.LogInsert("t", 3, batch); err != nil {
				panic(err)
			}
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		if err := mgr.LogInsert("t", 3, batch); err != nil {
			panic(err)
		}
	}
	if err := mgr.Flush(); err != nil {
		panic(err)
	}
	took := time.Since(start)
	tail, err := mgr.TailRead(mgr.Epoch(), 0, 1<<31-1)
	if err != nil {
		panic(err)
	}
	return tail.Data, tail.Epoch, took
}
