package experiments

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/exec"
	"repro/internal/exec/jit"
	"repro/internal/exec/par"
	"repro/internal/exec/result"
	"repro/internal/exec/vector"
	"repro/internal/plan"
)

// parallelWorkerCounts is the sweep of the differential suite: fixed
// counts plus whatever this machine has.
func parallelWorkerCounts() []int {
	counts := []int{2, 4}
	if n := runtime.NumCPU(); n != 2 && n != 4 {
		counts = append(counts, n)
	}
	return counts
}

// parallelEngines pairs each parallel-capable engine's serial form with a
// factory for its parallel form.
func parallelEngines(workers int) []struct {
	serial   exec.Engine
	parallel exec.Engine
} {
	// Small morsels force many morsels even on test-sized tables, so the
	// morsel-order merge is exercised rather than degenerating to one slot.
	opt := par.Options{Workers: workers, MorselRows: 4096}
	return []struct {
		serial   exec.Engine
		parallel exec.Engine
	}{
		{serial: jit.New(), parallel: jit.NewParallel(opt)},
		{serial: vector.New(), parallel: vector.NewParallel(opt)},
	}
}

func assertParallelMatches(t *testing.T, label string, p plan.Node, cat *plan.Catalog) {
	t.Helper()
	for _, workers := range parallelWorkerCounts() {
		for _, pair := range parallelEngines(workers) {
			want := pair.serial.Run(p, cat).Sorted()
			got := pair.parallel.Run(p, cat).Sorted()
			if !result.Equal(want, got) {
				t.Fatalf("%s: %s with %d workers diverges from serial (serial %d rows, parallel %d rows)",
					label, pair.serial.Name(), workers, want.Len(), got.Len())
			}
		}
	}
}

// TestParallelMatchesSerialFig3 asserts the morsel-parallel engines
// reproduce the serial results for the Figure 3 example query on every
// layout across the selectivity sweep.
func TestParallelMatchesSerialFig3(t *testing.T) {
	setup := NewFig3Setup(60_000)
	for _, layoutName := range []string{"row", "column", "hybrid"} {
		cat := setup.Catalogs[layoutName]
		for _, s := range []float64{0.0001, 0.01, 0.5, 1.0} {
			assertParallelMatches(t, fmt.Sprintf("fig3 %s sel=%g", layoutName, s), setup.Query(s), cat)
		}
	}
}

// TestParallelMatchesSerialFig3Scan covers the row-emitting (non-
// aggregate) pipeline: the filtered scan underneath the Figure 3 query,
// whose parallel form must match the serial row set. The full-selectivity
// sweep (large emit volume) runs on one layout to keep the -race run
// affordable; the selective sweep runs on all three.
func TestParallelMatchesSerialFig3Scan(t *testing.T) {
	setup := NewFig3Setup(20_000)
	for _, layoutName := range []string{"row", "column", "hybrid"} {
		agg := setup.Query(0.01).(plan.Aggregate)
		assertParallelMatches(t, fmt.Sprintf("fig3-scan %s sel=0.01", layoutName), agg.Child, setup.Catalogs[layoutName])
	}
	full := setup.Query(1.0).(plan.Aggregate)
	assertParallelMatches(t, "fig3-scan column sel=1", full.Child, setup.Catalogs["column"])
}

// TestParallelMatchesSerialFig9 asserts the same over the SAP-SD query
// set (scans, joins, grouped aggregates, sort/limit) on every layout. The
// insert Q6 mutates and is excluded; parallel insert is meaningless.
func TestParallelMatchesSerialFig9(t *testing.T) {
	if testing.Short() {
		t.Skip("fig9 setup is expensive")
	}
	setup := NewFig9Setup(1500)
	for _, layoutName := range []string{"row", "column", "hybrid"} {
		cat := setup.Catalogs[layoutName]
		for qi, p := range setup.Queries.Plans {
			if qi == 5 {
				continue
			}
			assertParallelMatches(t, fmt.Sprintf("fig9 %s Q%d", layoutName, qi+1), p, cat)
		}
	}
}
