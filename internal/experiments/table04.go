package experiments

import (
	"fmt"
	"strings"

	"repro/internal/bench/sapsd"
	"repro/internal/costmodel"
	"repro/internal/layout"
	"repro/internal/mem"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Table4 regenerates Table IV: the extended reasonable cuts derived from
// SAP-SD queries Q1 and Q3 on the ADRC table, and the BPi solution. The
// paper's solution is {{NAME1},{NAME2},{KUNNR},{ADDRNUMBER,NAME_CO},{*}}.
func Table4(opt Options) *Report {
	customers := 5000
	if opt.Quick {
		customers = 1500
	}
	d := sapsd.Generate(sapsd.Config{Customers: customers, Seed: 1})
	cat := d.Catalog("row", nil)
	est := costmodel.NewEstimator(cat, mem.TableIII())
	qs := d.Queries(7)
	w := (&workload.Workload{Name: "adrc"}).
		Add("Q1", qs.Plans[0], 1).
		Add("Q3", qs.Plans[2], 1)

	o := layout.NewOptimizer(est)
	cuts := o.CutsFor("ADRC", w)
	best, cost := o.Optimize("ADRC", w)
	nsmCost := w.Cost(est, map[string]storage.Layout{"ADRC": storage.NSM(10)})
	dsmCost := w.Cost(est, map[string]storage.Layout{"ADRC": storage.DSM(10)})

	schema := d.ADRC.Schema
	rep := &Report{
		ID:     "table4",
		Title:  "Decomposition of the ADRC table (queries Q1, Q3)",
		Header: []string{"artefact", "value"},
		Notes: []string{
			"paper solution: {{NAME1},{NAME2},{KUNNR},{ADDRNUMBER,NAME_CO},{*}}",
		},
	}
	for i, c := range cuts {
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("extended reasonable cut %d", i+1),
			"{" + strings.Join(schema.AttrNames(c.Attrs), ",") + "}",
		})
	}
	var groups []string
	for _, g := range best.Groups {
		groups = append(groups, "{"+strings.Join(schema.AttrNames(g), ",")+"}")
	}
	rep.Rows = append(rep.Rows,
		[]string{"BPi solution", strings.Join(groups, " ")},
		[]string{"cost (solution)", fmtF(cost)},
		[]string{"cost (row/NSM)", fmtF(nsmCost)},
		[]string{"cost (column/DSM)", fmtF(dsmCost)},
	)
	return rep
}
