package experiments

import (
	"fmt"
	"strings"

	"repro/internal/obs"
	"repro/internal/service"
)

// Obs measures the observability layer wrapped around the engines (not a
// paper figure — the paper reports raw engine numbers; this bounds what
// watching them costs): a cached query through the service with tracing
// disarmed versus armed (EXPLAIN ANALYZE), the metric primitives that sit
// on the per-query path, and rendering the Prometheus exposition.
func Obs(opt Options) *Report {
	rows := 400_000
	repeats := 30
	if opt.Quick {
		rows = 50_000
		repeats = 10
	}

	rep := &Report{
		ID:     "obs",
		Title:  "observability overhead: tracing, metric primitives, exposition",
		Header: []string{"stage", "time", "vs disarmed"},
	}

	svc := service.New(service.NewDemoDB(rows), service.Config{Workers: opt.Workers})
	defer svc.Close()
	q := service.DemoQuery(0.1)
	if _, err := svc.Query(q); err != nil { // warm: compile + cache the plan
		panic(err)
	}

	disarmed := medianTime(repeats, func() {
		if _, err := svc.Query(q); err != nil {
			panic(err)
		}
	})
	armed := medianTime(repeats, func() {
		if _, _, err := svc.QueryEx(q, service.QueryOpts{Explain: true}); err != nil {
			panic(err)
		}
	})
	rep.Rows = append(rep.Rows,
		[]string{"query/disarmed", fmtDur(disarmed), "1.00x"},
		[]string{"query/explain", fmtDur(armed), fmt.Sprintf("%.2fx", float64(armed)/float64(disarmed))},
	)

	// The primitives a query touches even when nobody is watching: one
	// histogram observation (latency) and one counter bump (outcome).
	const primOps = 1_000_000
	hist := obs.NewHistogram([]float64{.001, .005, .025, .1, .5, 2.5})
	perObserve := medianTime(repeats, func() {
		for i := 0; i < primOps; i++ {
			hist.Observe(0.003)
		}
	}) / primOps
	ctr := obs.NewRegistry().Counter("obs_exp_ops_total", "experiment counter", nil)
	perInc := medianTime(repeats, func() {
		for i := 0; i < primOps; i++ {
			ctr.Inc()
		}
	}) / primOps
	rep.Rows = append(rep.Rows,
		[]string{"histogram/observe", fmtDur(perObserve), "per op"},
		[]string{"counter/inc", fmtDur(perInc), "per op"},
	)

	// The event journal's lock-free append (what a system event costs at
	// the emit site) and one metrics-history sample (the sampler's whole
	// per-interval cost — the query path itself pays nothing for history).
	j := obs.NewJournal(obs.DefaultJournalSize)
	perAppend := medianTime(repeats, func() {
		for i := 0; i < primOps; i++ {
			j.Append(obs.Event{Kind: "bench", Msg: "journal append cost"})
		}
	}) / primOps
	sample := medianTime(repeats, func() {
		svc.SampleHistory()
	})
	rep.Rows = append(rep.Rows,
		[]string{"journal/append", fmtDur(perAppend), "per op"},
		[]string{"history/sample", fmtDur(sample), "per interval"},
	)

	// Rendering the full service registry — what one scrape costs.
	var sb strings.Builder
	render := medianTime(repeats, func() {
		sb.Reset()
		if err := svc.Metrics().WritePrometheus(&sb); err != nil {
			panic(err)
		}
	})
	rep.Rows = append(rep.Rows,
		[]string{"metrics/render", fmtDur(render), fmt.Sprintf("%d bytes", sb.Len())},
	)

	rep.Notes = append(rep.Notes,
		fmt.Sprintf("query/* = median of %d runs of a cached %d-row scan+group-by through the service", repeats, rows),
		"query/explain arms a per-operator trace (rows in/out, wall time per worker lane)",
		"histogram/observe and counter/inc are the lock-free primitives on the disarmed per-query path",
		"journal/append = one structured event into the bounded ring; history/sample = one full gauge sweep of the in-process history",
		"metrics/render = one full Prometheus text exposition of the service registry",
	)
	if n := workersNote(opt); n != "" {
		rep.Notes = append(rep.Notes, n)
	}
	return rep
}
