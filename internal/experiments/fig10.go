package experiments

import (
	"fmt"

	"repro/internal/bench/sapsd"
	"repro/internal/plan"
)

// Fig10 regenerates Figure 10: the SAP-SD queries touched by indexing —
// the modifying Q6 (index maintenance cost) and the identity selects Q7
// and Q8 — with and without indexes, across row, column and hybrid
// layouts, executed by the JiT engine.
func Fig10(opt Options) *Report {
	customers := 20000
	repeats := 3
	if opt.Quick {
		customers = 2000
		repeats = 1
	}
	setup := NewFig9Setup(customers)
	// A second set of catalogs with the Figure 10 indexes registered
	// (hash on primary keys, RB-tree on VBAP.VBELN).
	indexed := map[string]*plan.Catalog{
		"row":    setup.Data.Catalog("row", nil),
		"column": setup.Data.Catalog("column", nil),
		"hybrid": nil,
	}
	// Rebuild the hybrid with the same optimizer-chosen layouts by copying
	// the unindexed hybrid's relations into a fresh catalog.
	hybridCat := plan.NewCatalog()
	for _, rel := range setup.Data.Tables() {
		hybridCat.Add(setup.Catalogs["hybrid"].Table(rel.Schema.Name).WithLayout(
			setup.Catalogs["hybrid"].Table(rel.Schema.Name).Layout))
	}
	indexed["hybrid"] = hybridCat
	for _, cat := range indexed {
		sapsd.RegisterIndexes(cat)
	}

	engine := jitEngine(opt)
	layouts := []string{"row", "column", "hybrid"}
	rep := &Report{
		ID:     "fig10",
		Title:  fmt.Sprintf("SAP-SD with and without indexes (%d customers, JiT processor)", customers),
		Header: []string{"query", "variant"},
		Notes: []string{
			"paper: Q7/Q8 gain >1000x (column) and >10000x (row) from indexes; indexed row beats indexed",
			"column ~10x (tuple reconstruction); index maintenance cost on the insert Q6 is negligible",
		},
	}
	for _, l := range layouts {
		rep.Header = append(rep.Header, l)
	}

	insertSeq := 100000
	for _, spec := range []struct {
		label   string
		queryIx int
	}{{"Q6", 5}, {"Q7", 6}, {"Q8", 7}} {
		for _, variant := range []string{"unindexed", "indexed"} {
			cats := setup.Catalogs
			if variant == "indexed" {
				cats = indexed
			}
			row := []string{spec.label, variant}
			for _, l := range layouts {
				var p plan.Node
				if spec.queryIx == 5 {
					p = setup.Data.InsertPlan(insertSeq)
					insertSeq++
				} else {
					p = setup.Queries.Plans[spec.queryIx]
				}
				d := medianTime(repeats, func() { engine.Run(p, cats[l]) })
				row = append(row, fmtDur(d))
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep
}
