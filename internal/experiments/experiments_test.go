package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/exec/result"
	"repro/internal/mem"
)

// TestFig3SetupCorrectness: the example query returns the same sums on all
// three layouts and all engines (fixture sanity for the headline figure).
func TestFig3SetupCorrectness(t *testing.T) {
	setup := NewFig3Setup(20000)
	q := setup.Query(0.01)
	var ref *result.Set
	for name, cat := range setup.Catalogs {
		for _, e := range Fig3Engines() {
			got := e.Run(q, cat)
			if got.Len() != 1 {
				t.Fatalf("%s/%s: %d rows", e.Name(), name, got.Len())
			}
			if ref == nil {
				ref = got
			} else if !result.EqualUnordered(ref, got) {
				t.Fatalf("%s/%s: result mismatch", e.Name(), name)
			}
		}
	}
}

// TestFig3Shape asserts the headline result on a mid-size instance:
// the JiT engine beats Volcano by at least 5x on every layout at 1%
// selectivity (the paper reports 2 orders of magnitude on 25M tuples;
// the gap grows with data size, so the small-instance bound is loose).
func TestFig3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	setup := NewFig3Setup(300_000)
	q := setup.Query(0.01)
	engines := Fig3Engines()
	times := map[string]time.Duration{}
	for _, e := range engines {
		times[e.Name()] = medianTime(3, func() { e.Run(q, setup.Catalogs["hybrid"]) })
	}
	if times["jit"]*5 > times["volcano"] {
		t.Errorf("jit (%v) should be at least 5x faster than volcano (%v) on PDSM", times["jit"], times["volcano"])
	}
	if times["bulk"] > times["volcano"] {
		t.Errorf("bulk (%v) should not be slower than volcano (%v)", times["bulk"], times["volcano"])
	}
}

// TestFig6Shape: the model-vs-simulator sweep reproduces the paper's
// qualitative curves.
func TestFig6Shape(t *testing.T) {
	pts := Fig6Sweep(1<<19, mem.TableIII())
	last := pts[len(pts)-1]
	if last.S != 1.0 {
		t.Fatal("sweep must end at s=1")
	}
	if last.PredRand != 0 {
		t.Errorf("at s=1 predicted random misses must be 0, got %v", last.PredRand)
	}
	if last.MeasRand > last.MeasSeq/10 {
		t.Errorf("at s=1 measured misses should be almost all sequential (%v rand vs %v seq)", last.MeasRand, last.MeasSeq)
	}
	// rr_acc underestimates total misses at low selectivity.
	low := pts[1] // s=0.01
	if low.RRAccPred > (low.PredSeq+low.PredRand)*0.75 {
		t.Errorf("rr_acc (%v) should underestimate s_trav_cr total (%v) at s=%v",
			low.RRAccPred, low.PredSeq+low.PredRand, low.S)
	}
	// Predicted and measured totals within 2x across the sweep.
	for _, p := range pts {
		pred := p.PredSeq + p.PredRand
		meas := p.MeasSeq + p.MeasRand
		if pred == 0 || meas == 0 {
			continue
		}
		if r := pred / meas; r < 0.5 || r > 2 {
			t.Errorf("s=%v: predicted/measured = %.2f, want within [0.5,2]", p.S, r)
		}
	}
}

// TestFig8Cliffs: the calibration curve must step up at every capacity
// boundary.
func TestFig8Cliffs(t *testing.T) {
	geo := mem.TableIII()
	inL1 := Fig8Chase(16<<10, 100_000, geo, 1)
	inL2 := Fig8Chase(128<<10, 100_000, geo, 1)
	inL3 := Fig8Chase(4<<20, 100_000, geo, 1)
	inMem := Fig8Chase(64<<20, 100_000, geo, 1)
	if !(inL1 < inL2 && inL2 < inL3 && inL3 < inMem) {
		t.Errorf("calibration curve not monotone across capacities: %v %v %v %v", inL1, inL2, inL3, inMem)
	}
	// The L2 cliff should be roughly the configured L2 latency.
	if d := inL2 - inL1; d < 1 || d > 6 {
		t.Errorf("L1->L2 cliff = %.2f cycles, want ~3", d)
	}
	if d := inL3 - inL2; d < 4 || d > 14 {
		t.Errorf("L2->L3 cliff = %.2f cycles, want ~8", d)
	}
}

// TestReportsRender: every experiment runs in quick mode and renders a
// non-empty table (full end-to-end coverage of the harness).
func TestReportsRender(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full experiment suite")
	}
	for _, rep := range All(Options{Quick: true}) {
		if len(rep.Rows) == 0 {
			t.Errorf("%s: empty report", rep.ID)
		}
		s := rep.String()
		if !strings.Contains(s, rep.ID) {
			t.Errorf("%s: rendering broken", rep.ID)
		}
	}
}

func TestByIDAndIDs(t *testing.T) {
	for _, id := range IDs() {
		if ByID(id) == nil {
			t.Errorf("ByID(%q) = nil", id)
		}
	}
	if ByID("nope") != nil {
		t.Error("unknown id must return nil")
	}
}
