package experiments

import (
	"fmt"
	"math"

	"repro/internal/service"
)

// WorkloadExp measures the always-on workload telemetry layer (not a
// paper figure — the paper declares workloads up front; this bounds what
// inferring them from live traffic costs): the cached query path with
// capture recording on every execution, the per-request resolution price
// the uncached vector engine pays, snapshotting the captured heat, and a
// full advisor pass (captured mix -> BPi optimizer per touched table).
func WorkloadExp(opt Options) *Report {
	rows := 400_000
	repeats := 30
	if opt.Quick {
		rows = 50_000
		repeats = 10
	}

	rep := &Report{
		ID:     "workload",
		Title:  "workload telemetry: capture overhead, snapshot, drift advisor",
		Header: []string{"stage", "time", "note"},
	}

	svc := service.New(service.NewDemoDB(rows), service.Config{Workers: opt.Workers})
	defer svc.Close()
	// The timing loop calls Advise repeatedly; silence the drift warning
	// it would otherwise log on every iteration.
	svc.SetDriftWarnRatio(math.Inf(1))
	hot, cool := service.DemoQuery(0.01), service.DemoQuery(0.5)
	if _, err := svc.Query(hot); err != nil { // warm: compile + cache + resolve footprint
		panic(err)
	}
	if _, err := svc.Query(cool); err != nil {
		panic(err)
	}

	// The cached jit path: capture cost here is one shape-counter bump
	// plus the precomputed per-column atomic adds.
	cached := medianTime(repeats, func() {
		if _, err := svc.Query(hot); err != nil {
			panic(err)
		}
	})
	// The uncached vector path re-resolves its footprint every request
	// (shape digest + access walk + counter lookup) — the worst case.
	uncached := medianTime(repeats, func() {
		if _, _, err := svc.QueryEx(hot, service.QueryOpts{Engine: "vector"}); err != nil {
			panic(err)
		}
	})
	rep.Rows = append(rep.Rows,
		[]string{"query/jit-cached", fmtDur(cached), "capture = Record only"},
		[]string{"query/vector-uncached", fmtDur(uncached), "capture = Resolve + Record"},
	)

	// Skew the mix so the advisor has something to find, then price the
	// read-side operations.
	for i := 0; i < 20; i++ {
		if _, err := svc.Query(hot); err != nil {
			panic(err)
		}
	}
	snapshot := medianTime(repeats, func() {
		svc.WorkloadSnapshot()
	})
	var drift float64
	advise := medianTime(repeats, func() {
		r := svc.Advise()
		for _, a := range r.Advice {
			drift = a.Drift
		}
	})
	rep.Rows = append(rep.Rows,
		[]string{"workload/snapshot", fmtDur(snapshot), "heat + shape ring copy"},
		[]string{"advisor/advise", fmtDur(advise), fmt.Sprintf("drift %.2f on R", drift)},
	)

	rep.Notes = append(rep.Notes,
		fmt.Sprintf("query/* = median of %d runs of the %d-row demo scan+group-by through the service", repeats, rows),
		"capture is always on: jit pays atomic Record per exec, vector also pays footprint Resolve per request",
		"advisor/advise = captured mix -> workload declaration -> BPi optimize per touched table (advisory only)",
		fmt.Sprintf("drift = stored-layout cost / optimal cost for the captured mix (skewed %d:1 toward the selective query)", 21),
	)
	if n := workersNote(opt); n != "" {
		rep.Notes = append(rep.Notes, n)
	}
	return rep
}
