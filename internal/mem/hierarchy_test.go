package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// smallGeometry is a scaled-down hierarchy so tests exercise capacity
// effects without large address streams.
func smallGeometry() Geometry {
	return Geometry{
		Levels: []Spec{
			{Name: "L1", Capacity: 512, BlockSize: 8, Assoc: 8, Latency: 1},
			{Name: "L2", Capacity: 4 << 10, BlockSize: 64, Assoc: 8, Latency: 3},
			{Name: "L3", Capacity: 64 << 10, BlockSize: 64, Assoc: 16, Latency: 8},
		},
		TLB:             Spec{Name: "TLB", Capacity: 32 << 10, BlockSize: 4 << 10, Assoc: 0, Latency: 1},
		Memory:          Spec{Name: "Memory", Capacity: 1 << 30, BlockSize: 64, Latency: 12},
		RegisterLatency: 1,
	}
}

func TestHierarchySequentialScanPrefetches(t *testing.T) {
	h := NewHierarchy(smallGeometry())
	// Scan 1 MB sequentially: far larger than the LLC, so every line must be
	// fetched — but the adjacent-line prefetcher should convert nearly all
	// LLC misses into prefetched hits.
	const bytes = 1 << 20
	h.ReadRange(0, bytes)
	llc := h.LLCStats()
	lines := int64(bytes / 64)
	brought := llc.DemandMisses + llc.PrefetchedHits
	if brought < lines-1 || brought > lines+1 {
		t.Fatalf("lines brought = %d, want ~%d", brought, lines)
	}
	if llc.PrefetchedHits < lines*9/10 {
		t.Errorf("sequential scan: prefetched hits = %d of %d lines; prefetcher ineffective", llc.PrefetchedHits, lines)
	}
	if llc.DemandMisses > lines/10 {
		t.Errorf("sequential scan: demand (random) misses = %d of %d lines; expected almost none", llc.DemandMisses, lines)
	}
}

func TestHierarchyRandomAccessDoesNotPrefetchUsefully(t *testing.T) {
	h := NewHierarchy(smallGeometry())
	rng := rand.New(rand.NewSource(42))
	const region = 8 << 20 // 8 MB >> 64 KB LLC
	const n = 20000
	for i := 0; i < n; i++ {
		h.Read(uint64(rng.Intn(region/8)) * 8)
	}
	llc := h.LLCStats()
	if llc.PrefetchedHits > llc.Accesses/20 {
		t.Errorf("random access: %d of %d LLC accesses were prefetched hits; expected <5%%", llc.PrefetchedHits, llc.Accesses)
	}
	if llc.DemandMisses < llc.Accesses*8/10 {
		t.Errorf("random access far beyond LLC capacity should mostly miss: %d misses of %d accesses", llc.DemandMisses, llc.Accesses)
	}
}

func TestHierarchyStridedScanDetected(t *testing.T) {
	h := NewHierarchy(smallGeometry())
	// Stride of 3 lines (192 B): the adjacent-line prefetch is useless, but
	// the stride detector should kick in after two strides.
	const n = 4000
	for i := 0; i < n; i++ {
		h.Read(uint64(i) * 192)
	}
	llc := h.LLCStats()
	if llc.PrefetchedHits < int64(n)*8/10 {
		t.Errorf("strided scan: prefetched hits = %d of %d accesses; stride detector ineffective", llc.PrefetchedHits, n)
	}
}

func TestHierarchyRepeatedWorkingSetHitsInL1(t *testing.T) {
	h := NewHierarchy(smallGeometry())
	// 256 B working set fits L1 (512 B).
	for pass := 0; pass < 10; pass++ {
		for addr := uint64(0); addr < 256; addr += 8 {
			h.Read(addr)
		}
	}
	l1 := h.Stats(0)
	if l1.DemandMisses != 32 { // one cold miss per 8-byte L1 block
		t.Errorf("L1 demand misses = %d, want 32 cold misses only", l1.DemandMisses)
	}
	if l1.Hits != 10*32-32 {
		t.Errorf("L1 hits = %d, want %d", l1.Hits, 10*32-32)
	}
}

func TestHierarchyCyclesMonotoneAndReset(t *testing.T) {
	h := NewHierarchy(smallGeometry())
	h.Read(0)
	c1 := h.Cycles()
	if c1 <= 0 {
		t.Fatal("cycles must advance on access")
	}
	h.Read(1 << 20)
	if h.Cycles() <= c1 {
		t.Fatal("cycles must be monotone")
	}
	h.Reset()
	if h.Cycles() != 0 || h.LLCStats() != (Stats{}) || h.TLBStats() != (Stats{}) {
		t.Fatal("reset must clear cycles and stats")
	}
}

// TestHierarchyLatencyOrdering: an L1-resident access must cost less than
// an LLC-resident access, which must cost less than a memory access.
func TestHierarchyLatencyOrdering(t *testing.T) {
	g := smallGeometry()
	perAccess := func(prep func(h *Hierarchy), addr uint64) float64 {
		h := NewHierarchy(g)
		prep(h)
		before := h.Cycles()
		h.Read(addr)
		return h.Cycles() - before
	}
	l1Hit := perAccess(func(h *Hierarchy) { h.Read(64) }, 64)
	memMiss := perAccess(func(h *Hierarchy) { h.Read(64) }, 1<<25)
	if !(l1Hit < memMiss) {
		t.Fatalf("l1 hit (%v cycles) must be cheaper than memory miss (%v cycles)", l1Hit, memMiss)
	}
}

// TestHierarchyConservation: per-level counter identities hold on random
// streams mixing sequential runs and random jumps.
func TestHierarchyConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHierarchy(smallGeometry())
		addr := uint64(0)
		for i := 0; i < 3000; i++ {
			switch rng.Intn(3) {
			case 0:
				addr += 8
			case 1:
				addr = uint64(rng.Intn(1 << 22))
			case 2:
				addr += 64
			}
			h.Read(addr)
		}
		for i := range h.caches {
			st := h.Stats(i)
			if st.Accesses != st.Hits+st.DemandMisses {
				return false
			}
			if st.PrefetchedHits > st.Hits {
				return false
			}
		}
		tlb := h.TLBStats()
		return tlb.Accesses == tlb.Hits+tlb.DemandMisses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestHierarchyInclusionBackfill: after a hit at L3, the line must be
// resident at L1/L2 again.
func TestHierarchyInclusionBackfill(t *testing.T) {
	h := NewHierarchy(smallGeometry())
	h.Read(0)
	// Evict line 0 from L1 (capacity 512 B = 64 words) but not from L3.
	for a := uint64(4096); a < 4096+1024; a += 8 {
		h.Read(a)
	}
	if h.caches[0].contains(0) {
		t.Fatal("test setup: line 0 should have been evicted from L1")
	}
	if !h.caches[2].contains(0) {
		t.Fatal("test setup: line 0 should still be in L3")
	}
	h.Read(0)
	if !h.caches[0].contains(0) || !h.caches[1].contains(0) {
		t.Error("hit at L3 must backfill L1 and L2")
	}
}

func TestTableIIIGeometry(t *testing.T) {
	g := TableIII()
	if got := g.LLC().Capacity; got != 8<<20 {
		t.Errorf("LLC capacity = %d, want 8 MB", got)
	}
	if g.Levels[0].BlockSize != 8 || g.Levels[1].BlockSize != 64 {
		t.Error("Table III block sizes not reproduced")
	}
	wantLat := []float64{1, 3, 8}
	for i, l := range g.Levels {
		if l.Latency != wantLat[i] {
			t.Errorf("level %d latency = %v, want %v", i, l.Latency, wantLat[i])
		}
	}
	if g.Memory.Latency != 12 || g.TLB.Latency != 1 {
		t.Error("memory/TLB latency mismatch with Table III")
	}
	// Documented deviation: the TLB covers 8 MB (2048 pages) instead of the
	// printed 32 kB so page walks do not mask the cache cliffs of Fig. 8.
	if g.TLB.Blocks() != 2048 {
		t.Errorf("TLB entries = %d, want 2048 (8MB coverage / 4kB pages)", g.TLB.Blocks())
	}
}
