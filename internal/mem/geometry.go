// Package mem provides a software model of a hierarchical memory system:
// set-associative caches, a TLB, and an adjacent cache-line prefetcher with
// stride detection at the last-level cache (LLC).
//
// The package serves two roles in the reproduction:
//
//  1. It is the measurement substrate that replaces the paper's hardware
//     performance counters. The simulator executes an address stream and
//     reports, per level, demand ("random") misses and prefetched
//     ("sequential") misses — the two quantities the paper reads from the
//     Nehalem counters in Figure 6.
//  2. Its Geometry type is the parameter block of the Generic Cost Model
//     (capacity, block size and access latency per level — the paper's
//     Table III).
package mem

// Spec describes one level of the memory hierarchy.
//
// Latency is the block access latency l_i of the Generic Cost Model: the
// number of CPU cycles charged for an access that is served by this level
// (equivalently, the penalty of a miss at the next-faster level).
type Spec struct {
	Name      string
	Capacity  int64 // total bytes (for the TLB: total address coverage)
	BlockSize int64 // bytes per cache line (for the TLB: the page size)
	Assoc     int   // set associativity; <=0 means fully associative
	Latency   float64
}

// Blocks returns the number of blocks the level holds.
func (s Spec) Blocks() int64 {
	if s.BlockSize <= 0 {
		return 0
	}
	return s.Capacity / s.BlockSize
}

// Geometry is a full description of the modeled memory system. The zero
// value is not useful; start from TableIII or NewGeometry.
type Geometry struct {
	// Levels holds the cache levels ordered fastest to slowest
	// (L1, L2, L3/LLC). The last entry is always treated as the LLC for
	// prefetching purposes.
	Levels []Spec
	TLB    Spec
	Memory Spec // Capacity/Assoc ignored; BlockSize is the transfer unit

	// RegisterLatency is l_1 of the cost model's register level: the cycles
	// needed to load and process one value that is already cached in L1.
	RegisterLatency float64
}

// LLC returns the last-level cache specification.
func (g Geometry) LLC() Spec { return g.Levels[len(g.Levels)-1] }

// TableIII returns the hierarchy parameters the paper reports for its
// Intel Xeon X5650 (Nehalem) evaluation machine (paper Table III).
//
//	Level      Capacity  Blocksize  Access Time
//	L1 Cache   32 kB     8 B        1 Cyc
//	L2 Cache   256 kB    64 B       3 Cyc
//	TLB        32 kB     4 kB       1 Cyc
//	L3 Cache   8 MB      64 B       8 Cyc
//	Memory     48 GB     64 B       12 Cyc
//
// The 8-byte L1 block reflects the model's register-word granularity: the
// paper treats CPU registers as "just another layer of memory" and models
// L1 accesses per 8-byte data word.
//
// One deliberate deviation: the paper prints the TLB capacity as 32 kB
// (8 pages of coverage). A Nehalem's two-level TLB covers megabytes, and
// with only 32 kB of coverage page walks would dominate every region
// larger than L1, masking the L2/L3 cliffs that the paper's Figure 8
// curve clearly shows. We therefore configure 8 MB of coverage (2048
// entries), which makes the TLB cliff coincide with the LLC cliff, as on
// the real machine; the per-access latency stays at the printed 1 cycle.
func TableIII() Geometry {
	return Geometry{
		Levels: []Spec{
			{Name: "L1", Capacity: 32 << 10, BlockSize: 8, Assoc: 8, Latency: 1},
			{Name: "L2", Capacity: 256 << 10, BlockSize: 64, Assoc: 8, Latency: 3},
			{Name: "L3", Capacity: 8 << 20, BlockSize: 64, Assoc: 16, Latency: 8},
		},
		TLB:             Spec{Name: "TLB", Capacity: 8 << 20, BlockSize: 4 << 10, Assoc: 0, Latency: 1},
		Memory:          Spec{Name: "Memory", Capacity: 48 << 30, BlockSize: 64, Latency: 12},
		RegisterLatency: 1,
	}
}
