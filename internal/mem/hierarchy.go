package mem

// Hierarchy simulates a full memory system: an ordered list of
// set-associative cache levels, a TLB consulted in parallel with L1, and an
// adjacent cache-line prefetcher with stride detection that operates on the
// last-level cache, as assumed by the paper's cost model (Section IV-A.1,
// the Intel Core microarchitecture strategy).
//
// The simulator is driven by an address stream (Read/Write calls) and
// accounts cycles with the same l_i weights the cost model uses, so that
// model predictions and "measured" simulator counts are directly
// comparable — this is the reproduction's stand-in for the paper's CPU
// performance counters.
type Hierarchy struct {
	geom   Geometry
	caches []*cache
	tlb    *cache

	cycles float64

	// Prefetcher state: the stride detector tracks the last demand-accessed
	// LLC line and the last observed stride (in lines). When two successive
	// demand accesses exhibit the same non-zero stride, the next line in
	// that direction is prefetched into the LLC.
	pfLastLine   uint64
	pfLastStride int64
	pfPrimed     bool // pfLastLine is valid
	pfConfident  bool // pfLastStride is valid
}

// NewHierarchy builds a simulator for the given geometry.
func NewHierarchy(g Geometry) *Hierarchy {
	h := &Hierarchy{geom: g}
	for _, spec := range g.Levels {
		h.caches = append(h.caches, newCache(spec))
	}
	h.tlb = newCache(g.TLB)
	return h
}

// Geometry returns the hierarchy's parameter block.
func (h *Hierarchy) Geometry() Geometry { return h.geom }

// Cycles returns the total simulated cycle count so far.
func (h *Hierarchy) Cycles() float64 { return h.cycles }

// Stats returns the counters of cache level i (0 = L1).
func (h *Hierarchy) Stats(i int) Stats { return h.caches[i].stats }

// LLCStats returns the counters of the last-level cache.
func (h *Hierarchy) LLCStats() Stats { return h.caches[len(h.caches)-1].stats }

// TLBStats returns the TLB counters.
func (h *Hierarchy) TLBStats() Stats { return h.tlb.stats }

// Reset clears all cache contents, counters, cycles and prefetcher state.
func (h *Hierarchy) Reset() {
	for _, c := range h.caches {
		c.reset()
	}
	h.tlb.reset()
	h.cycles = 0
	h.pfPrimed = false
	h.pfConfident = false
}

// Read performs one demand load of the word at addr. Accesses are modeled
// at word granularity; an 8-byte aligned word never spans two 64-byte
// lines, so a single probe per level suffices.
func (h *Hierarchy) Read(addr uint64) {
	h.access(addr)
}

// Write performs one demand store at addr. The simulator models
// write-allocate caches, so stores behave like loads for miss accounting.
func (h *Hierarchy) Write(addr uint64) {
	h.access(addr)
}

// ReadRange touches every word of the n bytes starting at addr, in
// ascending order.
func (h *Hierarchy) ReadRange(addr uint64, n int64) {
	for off := int64(0); off < n; off += 8 {
		h.access(addr + uint64(off))
	}
}

func (h *Hierarchy) access(addr uint64) {
	// Address translation: the TLB is consulted for every access. A TLB
	// miss costs a page-walk, charged at memory latency.
	if hit, _ := h.tlb.access(addr); hit {
		h.cycles += h.geom.TLB.Latency
	} else {
		h.cycles += h.geom.TLB.Latency + h.geom.Memory.Latency
	}

	// Register/processing cost: loading and handling the value itself.
	h.cycles += h.geom.RegisterLatency

	llc := len(h.caches) - 1
	for i, c := range h.caches {
		hit, _ := c.access(addr)
		h.cycles += c.spec.Latency
		if i == llc {
			h.prefetchStep(c, addr, hit)
		}
		if hit {
			// Backfill faster levels so the inclusive hierarchy stays
			// consistent (the line is now resident above as well).
			for j := 0; j < i; j++ {
				h.caches[j].fill(h.caches[j].blockOf(addr), false)
			}
			return
		}
	}
	// Missed everywhere: fetch from memory.
	h.cycles += h.geom.Memory.Latency
}

// prefetchStep implements the Adjacent Cache Line Prefetcher with Stride
// Detection the paper's model assumes (Section IV-A.1): every demand access
// to LLC line k triggers a prefetch of line k+1 (so a line is resident as a
// prefetched line exactly when its predecessor was accessed — the premise
// of Equation 2), and a detector that observes two successive accesses with
// the same non-unit stride prefetches the next line in that stride.
//
// Prefetch fills are charged no cycles: the model's premise is that a
// correct prefetch hides memory latency behind processing (Eq. 5);
// mispredicted prefetches waste bandwidth but the simulator, like the
// paper's model, does not charge a cycle penalty for them.
func (h *Hierarchy) prefetchStep(llc *cache, addr uint64, hit bool) {
	lineNo := llc.blockOf(addr)
	// Adjacent-line component: unconditionally stage the successor line.
	llc.prefetch((lineNo + 1) << llc.shift)
	if h.pfPrimed {
		stride := int64(lineNo) - int64(h.pfLastLine)
		if stride != 0 {
			if h.pfConfident && stride == h.pfLastStride && stride != 1 {
				next := int64(lineNo) + stride
				if next >= 0 {
					llc.prefetch(uint64(next) << llc.shift)
				}
			}
			h.pfLastStride = stride
			h.pfConfident = true
			h.pfLastLine = lineNo
		}
		// stride == 0: same line again; keep detector state unchanged.
	} else {
		h.pfLastLine = lineNo
		h.pfPrimed = true
	}
	_ = hit
}
