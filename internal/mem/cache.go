package mem

// Stats aggregates the per-level counters the experiments read out.
//
// The paper's terminology (Section IV-C.1) maps onto these counters as
// follows: on the LLC, "random misses" are DemandMisses (lines that had to
// be demand-fetched from memory) and "sequential misses" are PrefetchedHits
// (lines that were brought in by the prefetcher before the demand access
// arrived — the Nehalem counters report these as L3 accesses but not as L3
// misses, which is exactly how the paper separates the two).
type Stats struct {
	Accesses       int64 // demand accesses that reached this level
	Hits           int64 // demand accesses served by a resident line
	DemandMisses   int64 // demand accesses that had to fetch from below
	PrefetchedHits int64 // demand hits on lines installed by the prefetcher
	PrefetchFills  int64 // lines installed by prefetch requests
	Evictions      int64 // resident lines displaced (demand or prefetch)
}

// Misses returns all demand misses (ignores prefetch fills).
func (s Stats) Misses() int64 { return s.DemandMisses }

type line struct {
	tag        uint64
	valid      bool
	prefetched bool // installed by the prefetcher and not yet demand-hit
	lastUse    int64
}

// cache is one set-associative LRU cache level.
type cache struct {
	spec  Spec
	shift uint  // log2(blockSize)
	sets  int64 // number of sets
	assoc int
	lines []line // sets*assoc, set-major
	clock int64
	stats Stats
}

func newCache(spec Spec) *cache {
	blocks := spec.Blocks()
	if blocks <= 0 {
		blocks = 1
	}
	assoc := spec.Assoc
	if assoc <= 0 || int64(assoc) > blocks {
		assoc = int(blocks) // fully associative
	}
	sets := blocks / int64(assoc)
	if sets < 1 {
		sets = 1
	}
	return &cache{
		spec:  spec,
		shift: log2(uint64(spec.BlockSize)),
		sets:  sets,
		assoc: assoc,
		lines: make([]line, sets*int64(assoc)),
	}
}

func log2(v uint64) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

func (c *cache) blockOf(addr uint64) uint64 { return addr >> c.shift }

// lookup probes the cache for addr without filling. It returns the slot
// index if resident, or -1.
func (c *cache) lookup(block uint64) int {
	set := int64(block) % c.sets
	base := set * int64(c.assoc)
	for i := int64(0); i < int64(c.assoc); i++ {
		l := &c.lines[base+i]
		if l.valid && l.tag == block {
			return int(base + i)
		}
	}
	return -1
}

// access performs a demand access for the block containing addr.
// It returns (hit, wasPrefetched): hit is true if the line was resident;
// wasPrefetched is true if the resident line had been installed by the
// prefetcher and this is its first demand touch.
func (c *cache) access(addr uint64) (hit, wasPrefetched bool) {
	c.clock++
	c.stats.Accesses++
	block := c.blockOf(addr)
	if idx := c.lookup(block); idx >= 0 {
		l := &c.lines[idx]
		l.lastUse = c.clock
		if l.prefetched {
			l.prefetched = false
			c.stats.PrefetchedHits++
			c.stats.Hits++
			return true, true
		}
		c.stats.Hits++
		return true, false
	}
	c.stats.DemandMisses++
	c.fill(block, false)
	return false, false
}

// prefetch installs the block containing addr if absent. It never counts
// as a demand access.
func (c *cache) prefetch(addr uint64) {
	block := c.blockOf(addr)
	if c.lookup(block) >= 0 {
		return
	}
	c.stats.PrefetchFills++
	c.fill(block, true)
}

// contains reports whether the block holding addr is resident.
func (c *cache) contains(addr uint64) bool { return c.lookup(c.blockOf(addr)) >= 0 }

func (c *cache) fill(block uint64, prefetched bool) {
	c.clock++
	set := int64(block) % c.sets
	base := set * int64(c.assoc)
	victim := base
	for i := int64(0); i < int64(c.assoc); i++ {
		l := &c.lines[base+i]
		if !l.valid {
			victim = base + i
			goto place
		}
		if l.lastUse < c.lines[victim].lastUse {
			victim = base + i
		}
	}
	c.stats.Evictions++
place:
	c.lines[victim] = line{tag: block, valid: true, prefetched: prefetched, lastUse: c.clock}
}

func (c *cache) reset() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
	c.clock = 0
	c.stats = Stats{}
}
