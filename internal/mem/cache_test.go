package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testSpec(capacity, block int64, assoc int) Spec {
	return Spec{Name: "T", Capacity: capacity, BlockSize: block, Assoc: assoc, Latency: 1}
}

func TestCacheColdMissThenHit(t *testing.T) {
	c := newCache(testSpec(1024, 64, 2))
	if hit, _ := c.access(0); hit {
		t.Fatal("cold access must miss")
	}
	if hit, _ := c.access(8); !hit {
		t.Fatal("same-line access must hit")
	}
	if hit, _ := c.access(64); hit {
		t.Fatal("next-line access must miss")
	}
	st := c.stats
	if st.Accesses != 3 || st.Hits != 1 || st.DemandMisses != 2 {
		t.Fatalf("stats = %+v, want 3 accesses, 1 hit, 2 misses", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2 sets x 2 ways of 64B lines = 256B capacity.
	c := newCache(testSpec(256, 64, 2))
	// Three blocks mapping to set 0: block numbers 0, 2, 4.
	c.access(0 * 64)
	c.access(2 * 64)
	c.access(0 * 64) // touch block 0: block 2 becomes LRU
	c.access(4 * 64) // evicts block 2
	if hit, _ := c.access(0 * 64); !hit {
		t.Error("block 0 should have survived (MRU)")
	}
	if hit, _ := c.access(2 * 64); hit {
		t.Error("block 2 should have been evicted (LRU)")
	}
}

func TestCacheFullyAssociative(t *testing.T) {
	c := newCache(testSpec(4*64, 64, 0)) // 4 lines, fully associative
	if c.sets != 1 || c.assoc != 4 {
		t.Fatalf("got sets=%d assoc=%d, want 1 set x 4 ways", c.sets, c.assoc)
	}
	for i := uint64(0); i < 4; i++ {
		c.access(i * 64)
	}
	for i := uint64(0); i < 4; i++ {
		if hit, _ := c.access(i * 64); !hit {
			t.Errorf("line %d should be resident in fully-assoc cache", i)
		}
	}
}

func TestCachePrefetchedHitAccounting(t *testing.T) {
	c := newCache(testSpec(1024, 64, 2))
	c.prefetch(128)
	if c.stats.PrefetchFills != 1 {
		t.Fatalf("PrefetchFills = %d, want 1", c.stats.PrefetchFills)
	}
	hit, wasPF := c.access(128)
	if !hit || !wasPF {
		t.Fatalf("access after prefetch: hit=%v prefetched=%v, want true/true", hit, wasPF)
	}
	// Second touch of the same line is an ordinary hit.
	hit, wasPF = c.access(136)
	if !hit || wasPF {
		t.Fatalf("second access: hit=%v prefetched=%v, want true/false", hit, wasPF)
	}
	if c.stats.PrefetchedHits != 1 {
		t.Fatalf("PrefetchedHits = %d, want 1", c.stats.PrefetchedHits)
	}
}

func TestCachePrefetchExistingLineIsNoop(t *testing.T) {
	c := newCache(testSpec(1024, 64, 2))
	c.access(0)
	c.prefetch(0)
	if c.stats.PrefetchFills != 0 {
		t.Fatalf("prefetch of resident line must not fill, got %d fills", c.stats.PrefetchFills)
	}
	if hit, wasPF := c.access(0); !hit || wasPF {
		t.Fatalf("line must stay a demand line, hit=%v prefetched=%v", hit, wasPF)
	}
}

// TestCacheConservation checks the fundamental counter identity on random
// address streams: accesses = hits + demand misses, and evictions never
// exceed fills.
func TestCacheConservation(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		c := newCache(testSpec(2048, 64, 4))
		for i := 0; i < int(n); i++ {
			addr := uint64(rng.Intn(1 << 16))
			if rng.Intn(8) == 0 {
				c.prefetch(addr)
			} else {
				c.access(addr)
			}
		}
		st := c.stats
		fills := st.DemandMisses + st.PrefetchFills
		return st.Accesses == st.Hits+st.DemandMisses &&
			st.PrefetchedHits <= st.Hits &&
			st.Evictions <= fills
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestCacheCapacityBound: a working set that fits must produce no misses
// after the cold pass, for any access order.
func TestCacheCapacityBound(t *testing.T) {
	c := newCache(testSpec(4096, 64, 0)) // fully associative: no conflict misses
	rng := rand.New(rand.NewSource(7))
	addrs := make([]uint64, 0, 64)
	for i := 0; i < 64; i++ { // exactly 64 lines = capacity
		addrs = append(addrs, uint64(i*64))
	}
	for _, a := range addrs {
		c.access(a)
	}
	cold := c.stats.DemandMisses
	if cold != 64 {
		t.Fatalf("cold misses = %d, want 64", cold)
	}
	for i := 0; i < 1000; i++ {
		c.access(addrs[rng.Intn(len(addrs))])
	}
	if c.stats.DemandMisses != cold {
		t.Fatalf("resident working set produced %d extra misses", c.stats.DemandMisses-cold)
	}
}
