package core

import (
	"sync/atomic"

	"repro/internal/costmodel"
	"repro/internal/exec"
	"repro/internal/exec/result"
	"repro/internal/index"
	"repro/internal/layout"
	"repro/internal/plan"
	"repro/internal/storage"
)

// MVCC snapshot isolation. The catalog is published as an immutable
// version: readers pin the current version (Snapshot) and run lock-free
// against it for the whole query, while a single writer at a time builds
// the next version copy-on-write (BeginWrite) and publishes it with one
// atomic pointer swap (Commit). Append-only word storage makes the copy
// cheap: a write transaction clones only the Relation/Partition structs
// (slice headers) of the tables it touches, never the data arrays —
// appends either reallocate or write beyond every published length, at
// addresses no pinned reader dereferences. Superseded versions are
// reclaimed once their last pin drops (epoch-based reclamation); until
// then they keep their catalog maps and cloned index structures alive so
// in-flight readers never observe a torn catalog.
//
// Writers do not serialize here — Commit fail-fasts (panics) if two
// transactions race to publish. The service layer owns the single-writer
// discipline via its commit mutex; this keeps the hot read path free of
// any locking while making misuse loud instead of silently lost.

// version is one immutable published state of the database: an epoch
// number and the catalog frozen at that epoch.
type version struct {
	epoch uint64
	cat   *plan.Catalog
	pins  atomic.Int64
	done  atomic.Bool // set once superseded by a newer version
}

// Snapshot is a pinned, immutable view of the database at one epoch.
// It stays valid — and row-identical to the moment it was pinned — until
// Release, no matter how many writes publish in the meantime.
type Snapshot struct {
	db       *DB
	v        *version
	released atomic.Bool
}

// Snapshot pins the current version. The pin-validate-retry loop closes
// the race with a concurrent publisher: if the version changed between
// the load and the pin, the pin may have landed on an already-superseded
// version whose reclaim scan has passed — unpin and retry on the fresh
// pointer. Publication is rare relative to reads, so the loop almost
// always exits on the first iteration.
func (db *DB) Snapshot() *Snapshot {
	for {
		v := db.cur.Load()
		v.pins.Add(1)
		if db.cur.Load() == v {
			db.pinned.Add(1)
			return &Snapshot{db: db, v: v}
		}
		if v.pins.Add(-1) == 0 && v.done.Load() {
			db.reclaim()
		}
	}
}

// Catalog returns the snapshot's immutable catalog.
func (s *Snapshot) Catalog() *plan.Catalog { return s.v.cat }

// Epoch returns the snapshot's version number.
func (s *Snapshot) Epoch() uint64 { return s.v.epoch }

// Release unpins the snapshot. Idempotent. Dropping the last pin of a
// superseded version triggers reclamation.
func (s *Snapshot) Release() {
	if s.released.Swap(true) {
		return
	}
	s.db.pinned.Add(-1)
	if s.v.pins.Add(-1) == 0 && s.v.done.Load() {
		s.db.reclaim()
	}
}

// reclaim drops retired versions that no reader pins any more. A version
// that gathers a doomed pin from the Snapshot retry loop mid-scan is kept
// for now; the retry loop's unpin triggers another scan, so the backlog
// always converges to zero once readers drain.
func (db *DB) reclaim() {
	db.verMu.Lock()
	defer db.verMu.Unlock()
	kept := db.retired[:0]
	for _, v := range db.retired {
		if v.pins.Load() == 0 {
			db.dropped.Add(1)
			continue
		}
		kept = append(kept, v)
	}
	for i := len(kept); i < len(db.retired); i++ {
		db.retired[i] = nil
	}
	db.retired = kept
}

// ID returns a process-unique identifier for this DB instance, letting
// callers (the service plan cache) distinguish epoch e of one core from
// epoch e of a core swapped in later.
func (db *DB) ID() uint64 { return db.id }

// Epoch returns the currently published version number.
func (db *DB) Epoch() uint64 { return db.cur.Load().epoch }

// ActiveSnapshots returns the number of snapshots currently pinned.
func (db *DB) ActiveSnapshots() int64 { return db.pinned.Load() }

// LiveVersions returns the published version plus the superseded versions
// still awaiting reader drain — the reclaim backlog is LiveVersions()-1.
func (db *DB) LiveVersions() int {
	db.verMu.Lock()
	defer db.verMu.Unlock()
	return 1 + len(db.retired)
}

// VersionsReclaimed returns how many superseded versions have been
// reclaimed since Open.
func (db *DB) VersionsReclaimed() int64 { return db.dropped.Load() }

// WriteTxn builds the next catalog version copy-on-write. All mutators
// are invisible to concurrent readers until Commit publishes the version
// atomically; an abandoned transaction (no Commit) leaves the database
// untouched. At most one WriteTxn may be open at a time — callers
// serialize writers (the service layer's commit mutex).
type WriteTxn struct {
	db    *DB
	base  *version
	cat   *plan.Catalog
	cowed map[string]bool // tables whose relation+indexes are already private
}

// BeginWrite opens a write transaction against the current version.
func (db *DB) BeginWrite() *WriteTxn {
	base := db.cur.Load()
	return &WriteTxn{db: db, base: base, cat: base.cat.Clone(), cowed: map[string]bool{}}
}

// Catalog returns the transaction's private catalog view: base state plus
// this transaction's own mutations.
func (tx *WriteTxn) Catalog() *plan.Catalog { return tx.cat }

// Epoch returns the epoch Commit will publish.
func (tx *WriteTxn) Epoch() uint64 { return tx.base.epoch + 1 }

// rel returns a transaction-private copy of the table, cloning the
// relation shell and its registered indexes on first touch.
func (tx *WriteTxn) rel(table string) *storage.Relation {
	cur := tx.cat.Table(table)
	if tx.cowed[table] {
		return cur
	}
	clone := cur.CloneForWrite()
	tx.cat.Add(clone)
	for attr := 0; attr < clone.Schema.Width(); attr++ {
		if idx := tx.cat.Index(table, attr); idx != nil {
			tx.cat.AddIndex(table, attr, idx.Clone())
		}
	}
	tx.cowed[table] = true
	return clone
}

// AddTable registers a relation under its schema name. The relation is
// treated as transaction-private (no further cloning on later touches).
func (tx *WriteTxn) AddTable(rel *storage.Relation) {
	tx.cat.Add(rel)
	tx.cowed[rel.Schema.Name] = true
}

// Insert appends rows and maintains the table's (cloned) indexes,
// returning the usual one-row count result.
func (tx *WriteTxn) Insert(table string, rows [][]storage.Word) *result.Set {
	tx.rel(table)
	return exec.RunInsert(plan.Insert{Table: table, Rows: rows}, tx.cat)
}

// ApplyLayout materializes table under the given layout (no cost
// comparison) and rebuilds its registered indexes, all within the
// transaction's private version.
func (tx *WriteTxn) ApplyLayout(table string, l storage.Layout) {
	rel := tx.cat.Table(table)
	if rel.Layout.Equal(l) {
		return
	}
	relaid := rel.WithLayout(l)
	tx.cat.Add(relaid)
	rebuildIndexes(tx.cat, table, relaid)
	tx.cowed[table] = true
}

// OptimizeLayouts runs BPi over every table referenced by the declared
// workload against the transaction's version, materializing improvements
// privately; readers keep scanning the old layouts until Commit.
func (tx *WriteTxn) OptimizeLayouts() []LayoutChange {
	est := costmodel.NewEstimator(tx.cat, tx.db.geometry)
	o := layout.NewOptimizer(est)
	var changes []LayoutChange
	for _, tbl := range tx.db.mix.Tables() {
		rel := tx.cat.Table(tbl)
		oldLayout := rel.Layout
		oldCost := tx.db.mix.Cost(est, map[string]storage.Layout{tbl: oldLayout})
		best, newCost := o.Optimize(tbl, tx.db.mix)
		if !best.Equal(oldLayout) && newCost < oldCost {
			reindexed := rel.WithLayout(best)
			tx.cat.Add(reindexed)
			rebuildIndexes(tx.cat, tbl, reindexed)
			tx.cowed[tbl] = true
			changes = append(changes, LayoutChange{
				Table: tbl, Old: oldLayout, New: best, OldCost: oldCost, NewCost: newCost,
			})
		}
	}
	return changes
}

// CreateHashIndex builds and registers a hash index on table.attr in the
// transaction's version.
func (tx *WriteTxn) CreateHashIndex(table string, attr int) {
	rel := tx.cat.Table(table)
	tx.cat.AddIndex(table, attr, index.BuildOn(index.NewHashIndex(rel.Rows()), rel, attr))
}

// CreateTreeIndex builds and registers a red-black tree index on
// table.attr in the transaction's version.
func (tx *WriteTxn) CreateTreeIndex(table string, attr int) {
	rel := tx.cat.Table(table)
	tx.cat.AddIndex(table, attr, index.BuildOn(index.NewRBTree(), rel, attr))
}

// DictAppend appends values to the dictionary of a string attribute,
// creating the dictionary if the column has none yet. Dictionaries are
// shared across versions (append-only codes are harmless to old readers),
// so only the nil→dict installation needs copy-on-write.
func (tx *WriteTxn) DictAppend(table string, attr int, values []string) {
	rel := tx.cat.Table(table)
	if rel.Dicts[attr] == nil {
		rel = tx.rel(table)
		rel.Dicts[attr] = storage.BuildDict(nil)
	}
	d := rel.Dicts[attr]
	for _, v := range values {
		d.AppendCode(v)
	}
}

// Commit publishes the transaction's version with one atomic pointer
// swap and retires the base version for reclamation. It returns the
// published epoch. Commit panics if another publisher won the race —
// writers must be serialized by the caller.
func (tx *WriteTxn) Commit() uint64 {
	db := tx.db
	next := &version{epoch: tx.base.epoch + 1, cat: tx.cat}
	if !db.cur.CompareAndSwap(tx.base, next) {
		panic("core: WriteTxn.Commit raced with another publisher; writers must serialize")
	}
	tx.base.done.Store(true)
	db.verMu.Lock()
	db.retired = append(db.retired, tx.base)
	db.verMu.Unlock()
	db.reclaim()
	return next.epoch
}

// Insert is the in-place (non-MVCC) insert used by recovery replay and
// single-writer embedders: rows are appended directly into the published
// version. See the DB doc comment for the single-writer caveat.
func (db *DB) Insert(table string, rows [][]storage.Word) *result.Set {
	return exec.RunInsert(plan.Insert{Table: table, Rows: rows}, db.Catalog())
}

// DictAppend is the in-place (non-MVCC) dictionary append used by
// recovery replay, mirroring WriteTxn.DictAppend.
func (db *DB) DictAppend(table string, attr int, values []string) {
	rel := db.Catalog().Table(table)
	if rel.Dicts[attr] == nil {
		rel.Dicts[attr] = storage.BuildDict(nil)
	}
	d := rel.Dicts[attr]
	for _, v := range values {
		d.AppendCode(v)
	}
}
