package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/exec/result"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/storage"
)

func buildDB(rows int) (*DB, *storage.Schema) {
	schema := storage.NewSchema("events",
		storage.Attribute{Name: "id", Type: storage.Int64},
		storage.Attribute{Name: "kind", Type: storage.String},
		storage.Attribute{Name: "value", Type: storage.Int64},
		storage.Attribute{Name: "payload", Type: storage.Int64},
		storage.Attribute{Name: "extra", Type: storage.Int64},
	)
	rng := rand.New(rand.NewSource(4))
	ids := make([]int64, rows)
	kinds := make([]string, rows)
	vals := make([]int64, rows)
	pay := make([]int64, rows)
	extra := make([]int64, rows)
	for i := range ids {
		ids[i] = int64(i)
		kinds[i] = []string{"click", "view", "buy"}[rng.Intn(3)]
		vals[i] = rng.Int63n(100)
		pay[i] = rng.Int63n(1 << 30)
		extra[i] = rng.Int63n(1 << 30)
	}
	b := storage.NewBuilder(schema)
	b.SetInts(0, ids).SetStrings(1, kinds).SetInts(2, vals).SetInts(3, pay).SetInts(4, extra)
	db := Open()
	db.CreateTable(b)
	return db, schema
}

func buyQuery(db *DB, schema *storage.Schema) plan.Node {
	buy := db.Table("events").Dict(1).MustCode("buy")
	return plan.Aggregate{
		Child: plan.Scan{
			Table:  "events",
			Filter: expr.Cmp{Attr: 1, Op: expr.Eq, Val: buy},
			Cols:   []int{2},
		},
		Aggs: []expr.AggSpec{
			{Kind: expr.Sum, Arg: expr.IntCol(0), Name: "total"},
			{Kind: expr.Count, Name: "n"},
		},
	}
}

func TestQueryAndQueryWithAgree(t *testing.T) {
	db, schema := buildDB(2000)
	q := buyQuery(db, schema)
	ref := db.Query(q)
	for name := range Engines() {
		got, err := db.QueryWith(name, q)
		if err != nil {
			t.Fatal(err)
		}
		if !result.EqualUnordered(ref, got) {
			t.Errorf("engine %s disagrees with jit", name)
		}
	}
	if _, err := db.QueryWith("nope", q); err == nil {
		t.Error("unknown engine must error")
	}
}

func TestOptimizeLayoutsImprovesAndPreservesResults(t *testing.T) {
	db, schema := buildDB(30000)
	q := buyQuery(db, schema)
	before := db.Query(q)
	costBefore := db.EstimateCost(q)
	db.AddWorkload("buys", q, 100)
	changes := db.OptimizeLayouts()
	if len(changes) == 0 {
		t.Fatal("expected a layout change for the skewed workload")
	}
	if db.Table("events").Layout.Kind() == "row" {
		t.Error("layout should have moved away from pure NSM")
	}
	after := db.Query(q)
	if !result.EqualUnordered(before, after) {
		t.Fatal("re-layout changed query results")
	}
	if db.EstimateCost(q) >= costBefore {
		t.Error("estimated cost did not improve after optimization")
	}
	for _, ch := range changes {
		if ch.NewCost >= ch.OldCost {
			t.Errorf("%s: reported costs not improving: %v -> %v", ch.Table, ch.OldCost, ch.NewCost)
		}
	}
}

func TestIndexesSurviveRelayout(t *testing.T) {
	db, schema := buildDB(5000)
	db.CreateHashIndex("events", 0)
	point := plan.Scan{
		Table:  "events",
		Filter: expr.Cmp{Attr: 0, Op: expr.Eq, Val: storage.EncodeInt(123)},
		Cols:   plan.AllCols(schema),
	}
	db.AddWorkload("point", point, 1000)
	db.AddWorkload("scan", buyQuery(db, schema), 1)
	db.OptimizeLayouts()
	res := db.Query(point)
	if res.Len() != 1 || storage.DecodeInt(res.Rows[0][0]) != 123 {
		t.Fatal("index lookup broken after re-layout")
	}
}

func TestAccessPatternExplain(t *testing.T) {
	db, schema := buildDB(1000)
	s := db.AccessPattern(buyQuery(db, schema))
	if !strings.Contains(s, "s_trav") || !strings.Contains(s, "rr_acc") {
		t.Errorf("pattern explain missing atoms: %s", s)
	}
}

func TestCreateTreeIndexUsable(t *testing.T) {
	db, schema := buildDB(1000)
	db.CreateTreeIndex("events", 2)
	res := db.Query(plan.Scan{
		Table:  "events",
		Filter: expr.Cmp{Attr: 2, Op: expr.Eq, Val: storage.EncodeInt(42)},
		Cols:   []int{0, 2},
	})
	for _, row := range res.Rows {
		if storage.DecodeInt(row[1]) != 42 {
			t.Fatal("tree index returned wrong rows")
		}
	}
	_ = schema
}
