package core

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/workload"
)

// Adaptive reorganization implements the paper's future-work proposal of
// "online/adaptive reorganization of the decomposition strategy": the
// database observes the queries it executes, maintains frequency counts,
// and periodically re-runs the layout optimizer against the observed mix —
// so the physical design follows workload drift without a DBA declaring a
// workload up front.

// AdaptiveStats reports the observation state.
type AdaptiveStats struct {
	Observed        int // queries seen since EnableAdaptive
	Distinct        int // distinct query shapes
	Reorganizations int // optimizer runs that changed at least one table
	LastChanges     []LayoutChange
}

type adaptiveState struct {
	every    int
	observed int
	counts   map[string]*workload.Query
	order    []string
	stats    AdaptiveStats
}

// EnableAdaptive turns on workload observation; after every
// reorganizeEvery executed queries the layout optimizer runs against the
// observed frequencies and re-layouts tables when it finds an improvement.
func (db *DB) EnableAdaptive(reorganizeEvery int) {
	if reorganizeEvery < 1 {
		reorganizeEvery = 1
	}
	db.adaptive = &adaptiveState{every: reorganizeEvery, counts: map[string]*workload.Query{}}
}

// AdaptiveStats returns the current observation state (zero value when
// adaptive mode is off).
func (db *DB) AdaptiveStats() AdaptiveStats {
	if db.adaptive == nil {
		return AdaptiveStats{}
	}
	st := db.adaptive.stats
	st.Observed = db.adaptive.observed
	st.Distinct = len(db.adaptive.counts)
	return st
}

// observe records one executed query and triggers reorganization on the
// configured period. Inserts are observed too: they make the optimizer
// see the write path's append cost.
func (db *DB) observe(p plan.Node) {
	a := db.adaptive
	if a == nil {
		return
	}
	a.observed++
	key := fingerprint(p)
	if q := a.counts[key]; q != nil {
		q.Frequency++
	} else {
		a.counts[key] = &workload.Query{Name: key, Plan: p, Frequency: 1}
		a.order = append(a.order, key)
	}
	if a.observed%a.every == 0 {
		db.reorganize()
	}
}

// reorganize swaps the declared workload for the observed one and runs the
// optimizer.
func (db *DB) reorganize() {
	a := db.adaptive
	w := &workload.Workload{Name: "observed"}
	for _, key := range a.order {
		q := a.counts[key]
		w.Queries = append(w.Queries, *q)
	}
	saved := db.mix
	db.mix = w
	changes := db.OptimizeLayouts()
	db.mix = saved
	if len(changes) > 0 {
		a.stats.Reorganizations++
		a.stats.LastChanges = changes
	}
}

// fingerprint produces a structural key for a plan: parameters are
// positional (attribute indices, operators) so re-executions of the same
// prepared query with different constants still collapse when the caller
// reuses the plan value; distinct shapes never collide on table/attribute
// structure.
func fingerprint(p plan.Node) string {
	switch v := p.(type) {
	case plan.Scan:
		return fmt.Sprintf("scan(%s,f=%s,c=%v)", v.Table, predShape(v.Filter), v.Cols)
	case plan.Select:
		return fmt.Sprintf("sel(%s,%s)", fingerprint(v.Child), predShape(v.Pred))
	case plan.Project:
		return fmt.Sprintf("proj(%s,%d)", fingerprint(v.Child), len(v.Exprs))
	case plan.HashJoin:
		return fmt.Sprintf("join(%s,%s,%d,%d)", fingerprint(v.Left), fingerprint(v.Right), v.LeftKey, v.RightKey)
	case plan.Aggregate:
		return fmt.Sprintf("agg(%s,g=%v,n=%d)", fingerprint(v.Child), v.GroupBy, len(v.Aggs))
	case plan.Sort:
		return fmt.Sprintf("sort(%s,%v)", fingerprint(v.Child), v.Keys)
	case plan.Limit:
		return fmt.Sprintf("limit(%s,%d)", fingerprint(v.Child), v.N)
	case plan.Insert:
		return fmt.Sprintf("insert(%s)", v.Table)
	}
	return fmt.Sprintf("%T", p)
}

// predShape renders a predicate's structure (attributes and operators,
// not bound constants), so parameterized re-executions collapse onto one
// workload entry.
func predShape(p expr.Pred) string {
	switch v := p.(type) {
	case nil:
		return "-"
	case expr.True:
		return "T"
	case expr.Cmp:
		return fmt.Sprintf("cmp(%d,%v)", v.Attr, v.Op)
	case expr.Between:
		return fmt.Sprintf("btw(%d)", v.Attr)
	case expr.InSet:
		return fmt.Sprintf("in(%d)", v.Attr)
	case expr.NotNull:
		return fmt.Sprintf("nn(%d)", v.Attr)
	case expr.And:
		parts := make([]string, len(v.Preds))
		for i, c := range v.Preds {
			parts[i] = predShape(c)
		}
		return "and(" + strings.Join(parts, ",") + ")"
	case expr.Or:
		parts := make([]string, len(v.Preds))
		for i, c := range v.Preds {
			parts[i] = predShape(c)
		}
		return "or(" + strings.Join(parts, ",") + ")"
	}
	return fmt.Sprintf("%T", p)
}
