package core

import (
	"testing"

	"repro/internal/exec/result"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/storage"
)

func TestAdaptiveReorganizesUnderDriftingWorkload(t *testing.T) {
	db, schema := buildDB(30000)
	_ = schema
	db.EnableAdaptive(50)
	q := buyQuery(db, &storage.Schema{})

	before := db.Table("events").Layout.Kind()
	if before != "row" {
		t.Fatal("test premise: table starts N-ary")
	}
	var ref *result.Set
	for i := 0; i < 120; i++ {
		res := db.Query(q)
		if ref == nil {
			ref = res
		} else if !result.EqualUnordered(ref, res) {
			t.Fatal("adaptive re-layout changed query results")
		}
	}
	st := db.AdaptiveStats()
	if st.Observed != 120 || st.Distinct != 1 {
		t.Fatalf("stats = %+v, want 120 observed / 1 distinct", st)
	}
	if st.Reorganizations == 0 {
		t.Fatal("expected at least one reorganization")
	}
	if db.Table("events").Layout.Kind() == "row" {
		t.Error("layout should have adapted away from pure NSM for the scan-heavy mix")
	}
}

func TestAdaptiveFingerprintCollapsesParameters(t *testing.T) {
	db, _ := buildDB(1000)
	db.EnableAdaptive(1000) // never reorganize during this test
	for v := int64(0); v < 20; v++ {
		db.Query(plan.Scan{
			Table:  "events",
			Filter: expr.Cmp{Attr: 2, Op: expr.Eq, Val: storage.EncodeInt(v)},
			Cols:   []int{0, 2},
		})
	}
	db.Query(plan.Scan{Table: "events", Cols: []int{0}})
	st := db.AdaptiveStats()
	if st.Distinct != 2 {
		t.Fatalf("distinct shapes = %d, want 2 (parameterized scans must collapse)", st.Distinct)
	}
	if st.Observed != 21 {
		t.Fatalf("observed = %d, want 21", st.Observed)
	}
}

func TestAdaptiveOffIsNoop(t *testing.T) {
	db, _ := buildDB(100)
	for i := 0; i < 10; i++ {
		db.Query(plan.Scan{Table: "events", Cols: []int{0}})
	}
	if st := db.AdaptiveStats(); st.Observed != 0 || st.Reorganizations != 0 {
		t.Fatalf("adaptive-off stats = %+v, want zeros", st)
	}
}

func TestFingerprintDistinguishesShapes(t *testing.T) {
	scan := plan.Scan{Table: "t", Cols: []int{0, 1}}
	cases := []plan.Node{
		scan,
		plan.Scan{Table: "t", Cols: []int{0}},
		plan.Scan{Table: "u", Cols: []int{0, 1}},
		plan.Select{Child: scan, Pred: expr.Cmp{Attr: 0, Op: expr.Lt, Val: 5}},
		plan.Aggregate{Child: scan, GroupBy: []int{0}, Aggs: []expr.AggSpec{{Kind: expr.Count}}},
		plan.Sort{Child: scan, Keys: []plan.SortKey{{Pos: 1}}},
		plan.Limit{Child: scan, N: 3},
		plan.HashJoin{Left: scan, Right: scan, LeftKey: 0, RightKey: 1},
		plan.Insert{Table: "t"},
	}
	seen := map[string]bool{}
	for _, c := range cases {
		fp := fingerprint(c)
		if seen[fp] {
			t.Fatalf("fingerprint collision: %s", fp)
		}
		seen[fp] = true
	}
	// Same shape, different constant: identical fingerprint.
	a := fingerprint(plan.Select{Child: scan, Pred: expr.Cmp{Attr: 0, Op: expr.Lt, Val: 5}})
	b := fingerprint(plan.Select{Child: scan, Pred: expr.Cmp{Attr: 0, Op: expr.Lt, Val: 99}})
	if a != b {
		t.Error("bound constants must not affect the fingerprint")
	}
}
