// Package core is the library facade: a memory-resident relational
// database that combines the paper's three contributions — partially
// decomposed storage (PDSM), JiT-style compiled query execution, and
// cost-model-driven layout optimization — behind one small API.
//
// Typical use:
//
//	db := core.Open()
//	db.CreateTable(schema, cols...)          // loads under NSM
//	res := db.Query(plan)                    // compiled execution
//	db.AddWorkload(w)                        // declare the query mix
//	report := db.OptimizeLayouts()           // BPi over every table
//	res = db.Query(plan)                     // now runs on PDSM
//
// Alternative processors (Volcano, bulk, HYRISE-style) are available via
// QueryWith for experiments that compare processing models, and the cost
// model is exposed via EstimateCost/AccessPattern for explain-style
// inspection.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/costmodel"
	"repro/internal/exec"
	"repro/internal/exec/bulk"
	"repro/internal/exec/hyrise"
	"repro/internal/exec/jit"
	"repro/internal/exec/par"
	"repro/internal/exec/result"
	"repro/internal/exec/vector"
	"repro/internal/exec/volcano"
	"repro/internal/index"
	"repro/internal/layout"
	"repro/internal/mem"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/workload"
)

// DB is a memory-resident database instance. The catalog is versioned:
// the current version is published through an atomic pointer (see
// mvcc.go), readers pin it with Snapshot, and the MVCC write path
// (BeginWrite) builds the next version copy-on-write and publishes it
// with one pointer swap. The in-place mutators below (CreateTable,
// AddTable, Query over Insert, ApplyLayout, OptimizeLayouts, index
// creation) edit the current version's catalog directly; they are for
// single-writer use — experiment wiring, recovery replay, and the serial
// paper baselines — and must not run concurrently with anything.
type DB struct {
	id       uint64                  // process-unique, distinguishes epochs across SwapCore
	cur      atomic.Pointer[version] // published catalog version
	verMu    sync.Mutex              // guards retired
	retired  []*version              // superseded versions awaiting reader drain
	dropped  atomic.Int64            // versions reclaimed after their last unpin
	pinned   atomic.Int64            // currently held snapshots
	geometry mem.Geometry
	engine   exec.Engine
	mix      *workload.Workload
	adaptive *adaptiveState
}

var nextDBID atomic.Uint64

// Open creates an empty database using the paper's Table III hardware
// model and the JiT engine.
func Open() *DB {
	db := &DB{
		id:       nextDBID.Add(1),
		geometry: mem.TableIII(),
		engine:   jit.New(),
		mix:      &workload.Workload{Name: "default"},
	}
	db.cur.Store(&version{epoch: 1, cat: plan.NewCatalog()})
	return db
}

// SetWorkers configures the morsel-scheduler worker count of the
// database's compiled engine, with the same convention as the benchrunner
// -workers flag and experiments.Options.Workers: 0 or 1 selects the
// serial engine (the paper's single-core configuration), n > 1 a fixed
// pool, n < 0 GOMAXPROCS. Scans, sorts, fused ORDER BY … LIMIT top-N and
// hash-join builds all parallelize under the knob; results are
// unaffected — parallel execution produces identical rows in identical
// order.
func (db *DB) SetWorkers(n int) *DB {
	switch {
	case n == 0 || n == 1:
		db.engine = jit.New()
	case n < 0:
		db.engine = jit.NewParallel(par.Options{})
	default:
		db.engine = jit.NewParallel(par.Options{Workers: n})
	}
	return db
}

// SetParOptions installs the compiled engine with explicit morsel-
// scheduler options — the way to share one process-wide par.Pool across
// databases or with the service layer. Options that resolve to a single
// worker select the serial engine, exactly like SetWorkers.
func (db *DB) SetParOptions(opt par.Options) *DB {
	if !opt.Parallel() {
		db.engine = jit.New()
	} else {
		db.engine = jit.NewParallel(opt)
	}
	return db
}

// Catalog exposes the current version's catalog (advanced use). Callers
// that need a stable view across multiple operations should pin a
// Snapshot instead.
func (db *DB) Catalog() *plan.Catalog { return db.cur.Load().cat }

// Geometry returns the hardware model used for cost estimation.
func (db *DB) Geometry() mem.Geometry { return db.geometry }

// CreateTable loads a relation built with storage.Builder into the
// database under the N-ary layout and returns it.
func (db *DB) CreateTable(b *storage.Builder) *storage.Relation {
	rel := b.Build(storage.NSM(b.Schema().Width()))
	db.Catalog().Add(rel)
	return rel
}

// AddTable registers an existing relation.
func (db *DB) AddTable(rel *storage.Relation) { db.Catalog().Add(rel) }

// Table returns a registered relation.
func (db *DB) Table(name string) *storage.Relation { return db.Catalog().Table(name) }

// CreateHashIndex builds and registers a hash index on table.attr.
func (db *DB) CreateHashIndex(table string, attr int) {
	rel := db.Catalog().Table(table)
	db.Catalog().AddIndex(table, attr, index.BuildOn(index.NewHashIndex(rel.Rows()), rel, attr))
}

// CreateTreeIndex builds and registers a red-black tree index.
func (db *DB) CreateTreeIndex(table string, attr int) {
	rel := db.Catalog().Table(table)
	db.Catalog().AddIndex(table, attr, index.BuildOn(index.NewRBTree(), rel, attr))
}

// Query executes a plan with the compiled (JiT-style) engine. In adaptive
// mode (EnableAdaptive) the query is added to the observed workload and
// may trigger a background re-layout.
func (db *DB) Query(p plan.Node) *result.Set {
	res := db.engine.Run(p, db.Catalog())
	db.observe(p)
	return res
}

// Engines lists the available processing models by name.
func Engines() map[string]exec.Engine {
	return map[string]exec.Engine{
		"jit":     jit.New(),
		"volcano": volcano.New(),
		"bulk":    bulk.New(),
		"hyrise":  hyrise.New(),
		"vector":  vector.New(),
	}
}

// QueryWith executes a plan under a named processing model ("jit",
// "volcano", "bulk", "hyrise").
func (db *DB) QueryWith(engineName string, p plan.Node) (*result.Set, error) {
	e, ok := Engines()[engineName]
	if !ok {
		return nil, fmt.Errorf("core: unknown engine %q", engineName)
	}
	return e.Run(p, db.Catalog()), nil
}

// AddWorkload declares the query mix used by OptimizeLayouts.
func (db *DB) AddWorkload(name string, p plan.Node, frequency float64) {
	db.mix.Add(name, p, frequency)
}

// AccessPattern returns the cost model's pattern program for a plan — the
// paper's "programmable cost model" view of the query.
func (db *DB) AccessPattern(p plan.Node) string {
	return costmodel.Translate(p, db.Catalog(), nil).String()
}

// EstimateCost prices a plan (in modeled CPU cycles) under the current
// layouts.
func (db *DB) EstimateCost(p plan.Node) float64 {
	return costmodel.CostOfPlan(p, db.Catalog(), nil, db.geometry)
}

// LayoutChange records one table's re-layout decision.
type LayoutChange struct {
	Table   string
	Old     storage.Layout
	New     storage.Layout
	OldCost float64
	NewCost float64
}

// OptimizeLayouts runs BPi over every table referenced by the declared
// workload and materializes the chosen layouts, returning the per-table
// decisions. Registered indexes are rebuilt on the re-laid-out relations.
func (db *DB) OptimizeLayouts() []LayoutChange {
	est := costmodel.NewEstimator(db.Catalog(), db.geometry)
	o := layout.NewOptimizer(est)
	var changes []LayoutChange
	for _, tbl := range db.mix.Tables() {
		rel := db.Catalog().Table(tbl)
		oldLayout := rel.Layout
		oldCost := db.mix.Cost(est, map[string]storage.Layout{tbl: oldLayout})
		best, newCost := o.Optimize(tbl, db.mix)
		if !best.Equal(oldLayout) && newCost < oldCost {
			reindexed := rel.WithLayout(best)
			db.Catalog().Add(reindexed)
			rebuildIndexes(db.Catalog(), tbl, reindexed)
			changes = append(changes, LayoutChange{
				Table: tbl, Old: oldLayout, New: best, OldCost: oldCost, NewCost: newCost,
			})
		}
	}
	return changes
}

// ApplyLayout materializes table under the given layout unconditionally —
// no cost comparison — and rebuilds its registered indexes. It is the
// replay path of the persistence layer: a logged re-layout decision is
// re-applied verbatim on recovery, so the restored physical design matches
// what the optimizer picked, not what a replayed optimization over a
// different intermediate state would pick.
func (db *DB) ApplyLayout(table string, l storage.Layout) {
	rel := db.Catalog().Table(table)
	if rel.Layout.Equal(l) {
		return
	}
	relaid := rel.WithLayout(l)
	db.Catalog().Add(relaid)
	rebuildIndexes(db.Catalog(), table, relaid)
}

func rebuildIndexes(c *plan.Catalog, table string, rel *storage.Relation) {
	for attr := 0; attr < rel.Schema.Width(); attr++ {
		if idx := c.Index(table, attr); idx != nil {
			switch idx.Kind() {
			case "hash":
				c.AddIndex(table, attr, index.BuildOn(index.NewHashIndex(rel.Rows()), rel, attr))
			case "rbtree":
				c.AddIndex(table, attr, index.BuildOn(index.NewRBTree(), rel, attr))
			}
		}
	}
}
