package core

import (
	"sync"
	"testing"

	"repro/internal/exec/jit"
	"repro/internal/exec/result"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/storage"
)

// countAll sums and counts the "value" column against an explicit
// catalog — the snapshot-scoped analogue of db.Query.
func countAll(t *testing.T, cat *plan.Catalog) (cnt, sum int64) {
	t.Helper()
	res := jit.New().Run(plan.Aggregate{
		Child: plan.Scan{Table: "events", Cols: []int{2}},
		Aggs: []expr.AggSpec{
			{Kind: expr.Count, Name: "n"},
			{Kind: expr.Sum, Arg: expr.IntCol(0), Name: "total"},
		},
	}, cat)
	return storage.DecodeInt(res.Rows[0][0]), storage.DecodeInt(res.Rows[0][1])
}

// TestSnapshotIsolation pins a snapshot, publishes a write transaction,
// and asserts the pinned view is bit-stable while the published catalog
// moved on.
func TestSnapshotIsolation(t *testing.T) {
	db, _ := buildDB(500)
	snap := db.Snapshot()
	defer snap.Release()
	cnt0, sum0 := countAll(t, snap.Catalog())
	if cnt0 != 500 {
		t.Fatalf("snapshot sees %d rows, want 500", cnt0)
	}
	epoch0 := snap.Epoch()

	tx := db.BeginWrite()
	tx.Insert("events", [][]storage.Word{{
		storage.EncodeInt(500), tx.Catalog().Table("events").Dicts[1].AppendCode("buy"),
		storage.EncodeInt(7), storage.EncodeInt(0), storage.EncodeInt(0),
	}})
	if c, _ := countAll(t, snap.Catalog()); c != 500 {
		t.Fatalf("uncommitted write visible to snapshot: %d rows", c)
	}
	if tx.Commit() != epoch0+1 {
		t.Fatal("commit did not advance the epoch by one")
	}

	// The pinned snapshot still answers from its version ...
	if c, s := countAll(t, snap.Catalog()); c != cnt0 || s != sum0 {
		t.Fatalf("pinned snapshot drifted after commit: count %d->%d sum %d->%d", cnt0, c, sum0, s)
	}
	if snap.Epoch() != epoch0 {
		t.Fatalf("pinned snapshot epoch changed: %d -> %d", epoch0, snap.Epoch())
	}
	// ... while the published catalog has the new row.
	if c, s := countAll(t, db.Catalog()); c != 501 || s != sum0+7 {
		t.Fatalf("published catalog: count %d sum %d, want %d/%d", c, s, 501, sum0+7)
	}
	if db.Epoch() != epoch0+1 {
		t.Fatalf("published epoch %d, want %d", db.Epoch(), epoch0+1)
	}
}

// TestAbandonedWriteTxn asserts a transaction that never commits leaves
// no trace in the published catalog.
func TestAbandonedWriteTxn(t *testing.T) {
	db, _ := buildDB(100)
	tx := db.BeginWrite()
	tx.Insert("events", [][]storage.Word{{
		storage.EncodeInt(100), tx.Catalog().Table("events").Dicts[1].AppendCode("view"),
		storage.EncodeInt(1), storage.EncodeInt(0), storage.EncodeInt(0),
	}})
	tx = nil // abandoned: no Commit
	if c, _ := countAll(t, db.Catalog()); c != 100 {
		t.Fatalf("abandoned transaction leaked into published catalog: %d rows", c)
	}
	if db.Epoch() != 1 {
		t.Fatalf("abandoned transaction advanced the epoch to %d", db.Epoch())
	}
}

// TestSnapshotStableAcrossRelayout pins a snapshot, re-lays-out the
// table through a write transaction, and asserts the pinned results are
// row-identical before and after the publish — the relation the snapshot
// references was cloned, not mutated.
func TestSnapshotStableAcrossRelayout(t *testing.T) {
	db, schema := buildDB(2000)
	q := buyQuery(db, schema)
	snap := db.Snapshot()
	defer snap.Release()
	before := jit.New().Run(q, snap.Catalog())

	tx := db.BeginWrite()
	tx.ApplyLayout("events", storage.DSM(schema.Width()))
	tx.Commit()

	after := jit.New().Run(q, snap.Catalog())
	if !result.Equal(before, after) {
		t.Fatal("pinned snapshot result changed across a committed relayout")
	}
	// The published catalog answers identically under the new layout.
	pub := jit.New().Run(q, db.Catalog())
	if !result.Equal(before, pub) {
		t.Fatal("relayout changed query results")
	}
}

// TestVersionReclamation drives commits with and without pinned readers
// and asserts superseded versions are reclaimed exactly when their last
// pin drops — the live-version count stays bounded.
func TestVersionReclamation(t *testing.T) {
	db, _ := buildDB(50)
	row := func(tx *WriteTxn, id int64) [][]storage.Word {
		return [][]storage.Word{{
			storage.EncodeInt(id), tx.Catalog().Table("events").Dicts[1].AppendCode("click"),
			storage.EncodeInt(1), storage.EncodeInt(0), storage.EncodeInt(0),
		}}
	}

	// No readers: every commit reclaims its predecessor immediately.
	for i := 0; i < 5; i++ {
		tx := db.BeginWrite()
		tx.Insert("events", row(tx, int64(100+i)))
		tx.Commit()
		if lv := db.LiveVersions(); lv != 1 {
			t.Fatalf("commit %d with no readers: %d live versions, want 1", i, lv)
		}
	}
	if db.VersionsReclaimed() != 5 {
		t.Fatalf("reclaimed %d versions, want 5", db.VersionsReclaimed())
	}

	// A pinned reader holds exactly its own version alive across commits.
	snap := db.Snapshot()
	for i := 0; i < 3; i++ {
		tx := db.BeginWrite()
		tx.Insert("events", row(tx, int64(200+i)))
		tx.Commit()
	}
	if lv := db.LiveVersions(); lv != 2 {
		t.Fatalf("one pinned reader across 3 commits: %d live versions, want 2 (published + pinned)", lv)
	}
	if got := db.ActiveSnapshots(); got != 1 {
		t.Fatalf("ActiveSnapshots = %d, want 1", got)
	}
	snap.Release()
	if lv := db.LiveVersions(); lv != 1 {
		t.Fatalf("after release: %d live versions, want 1", lv)
	}
	if got := db.ActiveSnapshots(); got != 0 {
		t.Fatalf("ActiveSnapshots after release = %d, want 0", got)
	}
	snap.Release() // idempotent
	if got := db.ActiveSnapshots(); got != 0 {
		t.Fatalf("double release corrupted the pin count: %d", got)
	}
}

// TestSnapshotRaceWithCommits hammers Snapshot/Release against a
// committing writer under -race: every pinned view must satisfy the
// prefix invariant (values 0..cnt-1 inserted in order, so sum ==
// cnt*(cnt-1)/2), and all retired versions must drain once readers stop.
func TestSnapshotRaceWithCommits(t *testing.T) {
	db := Open()
	b := storage.NewBuilder(storage.NewSchema("events",
		storage.Attribute{Name: "id", Type: storage.Int64},
		storage.Attribute{Name: "pad", Type: storage.Int64},
		storage.Attribute{Name: "value", Type: storage.Int64},
	))
	b.SetInts(0, nil).SetInts(1, nil).SetInts(2, nil)
	db.CreateTable(b)

	const commits = 200
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < commits; i++ {
			tx := db.BeginWrite()
			tx.Insert("events", [][]storage.Word{{
				storage.EncodeInt(int64(i)), storage.EncodeInt(0), storage.EncodeInt(int64(i)),
			}})
			tx.Commit()
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				snap := db.Snapshot()
				cnt, sum := countAll(t, snap.Catalog())
				if want := cnt * (cnt - 1) / 2; sum != want {
					t.Errorf("torn snapshot: %d rows sum %d, want %d", cnt, sum, want)
				}
				snap.Release()
			}
		}()
	}
	wg.Wait()
	if c, _ := countAll(t, db.Catalog()); c != commits {
		t.Fatalf("final count %d, want %d", c, commits)
	}
	if lv := db.LiveVersions(); lv != 1 {
		t.Fatalf("readers drained but %d versions live, want 1", lv)
	}
}
