package faultinject

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestFailpointLifecycle(t *testing.T) {
	defer Reset()
	if err := Hit("x"); err != nil {
		t.Fatalf("disarmed failpoint fired: %v", err)
	}
	boom := errors.New("boom")
	EnableError("x", boom)
	if err := Hit("x"); !errors.Is(err, boom) {
		t.Fatalf("armed failpoint returned %v, want boom", err)
	}
	if err := Hit("y"); err != nil {
		t.Fatalf("unrelated failpoint fired: %v", err)
	}
	Disable("x")
	if err := Hit("x"); err != nil {
		t.Fatalf("disabled failpoint fired: %v", err)
	}
	// Disabling twice and resetting are no-ops.
	Disable("x")
	EnableError("a", boom)
	EnableError("b", boom)
	Reset()
	if err := Hit("a"); err != nil {
		t.Fatalf("failpoint survived Reset: %v", err)
	}
	if armed.Load() != 0 {
		t.Fatalf("armed count = %d after reset, want 0", armed.Load())
	}
}

func TestFailN(t *testing.T) {
	defer Reset()
	boom := errors.New("transient")
	Enable("n", FailN(boom, 2))
	for i := 0; i < 2; i++ {
		if err := Hit("n"); !errors.Is(err, boom) {
			t.Fatalf("hit %d: %v, want transient", i, err)
		}
	}
	if err := Hit("n"); err != nil {
		t.Fatalf("FailN kept failing past its budget: %v", err)
	}
}

func TestTransportRules(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("hello-world"))
	}))
	defer srv.Close()

	ft := &Transport{}
	drop := ft.Add(&Rule{Path: "/gone", Drop: true, Count: 1})
	status := ft.Add(&Rule{Path: "/teapot", Status: http.StatusTeapot})
	trunc := ft.Add(&Rule{Path: "/cut", Count: 2, Mutate: func(b []byte) []byte { return b[:5] }})
	hc := &http.Client{Transport: ft}

	// Drop fires once, then the request goes through.
	if _, err := hc.Get(srv.URL + "/gone"); err == nil {
		t.Fatal("dropped request succeeded")
	}
	resp, err := hc.Get(srv.URL + "/gone")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("after count exhausted: %v %v", err, resp)
	}
	resp.Body.Close()

	// Status short-circuits without touching the server.
	resp, err = hc.Get(srv.URL + "/teapot")
	if err != nil || resp.StatusCode != http.StatusTeapot {
		t.Fatalf("status rule: %v %v", err, resp.StatusCode)
	}
	resp.Body.Close()

	// Mutate rewrites the body.
	resp, err = hc.Get(srv.URL + "/cut")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "hello" {
		t.Fatalf("mutated body = %q, want %q", body, "hello")
	}

	// Unmatched paths pass through untouched.
	resp, err = hc.Get(srv.URL + "/other")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "hello-world" {
		t.Fatalf("clean body = %q", body)
	}

	if drop.Hits() != 1 || status.Hits() == 0 || trunc.Hits() != 1 {
		t.Fatalf("hit counts: drop=%d status=%d trunc=%d", drop.Hits(), status.Hits(), trunc.Hits())
	}
}
