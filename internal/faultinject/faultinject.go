// Package faultinject is the deterministic fault-injection harness for
// the replication and durability paths: named failpoints compiled into
// production seams (the WAL commit, the checkpoint write) and an
// injectable http.RoundTripper that drops, delays, truncates or rewrites
// responses on the wire.
//
// Failpoints are free when disarmed — Hit is one atomic load — so the
// seams stay in release builds and tests exercise the exact code paths
// production runs: a failed fsync, a torn stream, a primary that stops
// answering. Tests arm a point with Enable (or EnableError/FailN for the
// common cases) and must Disable it (or call Reset) when done; the
// registry is process-global, so fault tests cannot run in parallel with
// each other.
package faultinject

import (
	"sync"
	"sync/atomic"
)

var (
	// armed counts enabled failpoints; Hit's fast path is a single load
	// of it, so a disarmed seam costs nothing measurable.
	armed  atomic.Int32
	mu     sync.Mutex
	points = map[string]func() error{}
)

// Enable arms the named failpoint: every Hit(name) calls f and returns
// its result until Disable. Re-enabling replaces the hook.
func Enable(name string, f func() error) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; !ok {
		armed.Add(1)
	}
	points[name] = f
}

// EnableError arms the failpoint to always return err.
func EnableError(name string, err error) {
	Enable(name, func() error { return err })
}

// FailN returns a hook that fails with err for the first n hits and
// succeeds afterwards — the transient-fault shape retry logic must
// survive.
func FailN(err error, n int) func() error {
	var hits atomic.Int32
	return func() error {
		if hits.Add(1) <= int32(n) {
			return err
		}
		return nil
	}
}

// Disable disarms the named failpoint. Disabling an unarmed point is a
// no-op.
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; ok {
		delete(points, name)
		armed.Add(-1)
	}
}

// Reset disarms every failpoint (test cleanup).
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed.Add(-int32(len(points)))
	clear(points)
}

// Hit fires the named failpoint: nil when disarmed (the fast path —
// one atomic load), otherwise whatever the armed hook returns.
func Hit(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	f := points[name]
	mu.Unlock()
	if f == nil {
		return nil
	}
	return f()
}
