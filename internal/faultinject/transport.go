package faultinject

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Transport is an http.RoundTripper that injects faults into matching
// requests: drop them on the floor, delay them, replace the response
// status, or rewrite the response body (truncate it mid-frame, flip a
// byte). Install it as a replica's transport to exercise torn streams,
// unreachable primaries and epoch races deterministically instead of
// hoping a proxy or the scheduler tears the right byte.
type Transport struct {
	// Base performs the real round trips (http.DefaultTransport when nil).
	Base http.RoundTripper

	mu    sync.Mutex
	rules []*Rule
}

// Rule is one fault: the first rule whose Path matches a request (and
// whose Count is not exhausted) fires. Zero-value fields do not apply.
type Rule struct {
	// Path is a substring match on the request URL path ("" matches all).
	Path string
	// Count bounds how many requests the rule fires on (0 = unlimited).
	Count int
	// Drop fails the round trip with an error before it reaches the wire
	// — an unreachable or crashed peer.
	Drop bool
	// Delay sleeps before the request proceeds.
	Delay time.Duration
	// Status, when non-zero, skips the real request and answers with this
	// status and an empty body.
	Status int
	// Mutate rewrites the response body (truncation, bit flips). It runs
	// on the fully read body; Content-Length is fixed up.
	Mutate func([]byte) []byte

	hits atomic.Int32
}

// Hits reports how many requests the rule fired on — assert it is
// non-zero so a test cannot silently exercise nothing.
func (r *Rule) Hits() int { return int(r.hits.Load()) }

// Add appends a rule and returns it (for Hits assertions).
func (t *Transport) Add(r *Rule) *Rule {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rules = append(t.rules, r)
	return r
}

// RoundTrip applies the first matching live rule, then (unless the rule
// short-circuits) forwards to the base transport.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	rule := t.match(req)
	if rule == nil {
		return t.base().RoundTrip(req)
	}
	if rule.Delay > 0 {
		time.Sleep(rule.Delay)
	}
	if rule.Drop {
		return nil, fmt.Errorf("faultinject: dropped %s %s", req.Method, req.URL.Path)
	}
	if rule.Status != 0 {
		return &http.Response{
			StatusCode: rule.Status,
			Status:     http.StatusText(rule.Status),
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  http.Header{},
			Body:    io.NopCloser(bytes.NewReader(nil)),
			Request: req,
		}, nil
	}
	resp, err := t.base().RoundTrip(req)
	if err != nil || rule.Mutate == nil {
		return resp, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	body = rule.Mutate(body)
	resp.Body = io.NopCloser(bytes.NewReader(body))
	resp.ContentLength = int64(len(body))
	resp.Header.Set("Content-Length", fmt.Sprint(len(body)))
	return resp, nil
}

// match finds the first rule applying to req and consumes one firing.
func (t *Transport) match(req *http.Request) *Rule {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range t.rules {
		if r.Path != "" && !strings.Contains(req.URL.Path, r.Path) {
			continue
		}
		if r.Count > 0 && int(r.hits.Load()) >= r.Count {
			continue
		}
		r.hits.Add(1)
		return r
	}
	return nil
}

func (t *Transport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}
