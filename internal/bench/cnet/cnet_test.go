package cnet

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/exec"
	"repro/internal/exec/bulk"
	"repro/internal/exec/hyrise"
	"repro/internal/exec/jit"
	"repro/internal/exec/result"
	"repro/internal/exec/volcano"
	"repro/internal/layout"
	"repro/internal/mem"
	"repro/internal/plan"
	"repro/internal/storage"
)

func smallCNET() *Data {
	return Generate(Config{Products: 3000, Attrs: 60, Categories: 12, MeanSparse: 6, Seed: 1})
}

func TestGenerateShape(t *testing.T) {
	d := smallCNET()
	rel := d.Products
	if rel.Rows() != 3000 || rel.Schema.Width() != 60 {
		t.Fatal("catalog shape wrong")
	}
	// Dense attributes never null; ids unique.
	seen := map[storage.Word]bool{}
	for r := 0; r < rel.Rows(); r++ {
		for _, a := range []int{ColID, ColName, ColCategory, ColPriceFrom, ColManufacturer} {
			if rel.Value(r, a) == storage.Null {
				t.Fatal("dense attribute is null")
			}
		}
		id := rel.Value(r, ColID)
		if seen[id] {
			t.Fatal("duplicate id")
		}
		seen[id] = true
	}
	// Sparsity: mean non-null sparse attrs per product near MeanSparse.
	var nonNull int
	for r := 0; r < rel.Rows(); r++ {
		for a := denseCols; a < rel.Schema.Width(); a++ {
			if rel.Value(r, a) != storage.Null {
				nonNull++
			}
		}
	}
	mean := float64(nonNull) / float64(rel.Rows())
	if mean < 2 || mean > 10 {
		t.Errorf("mean non-null sparse attrs = %.2f, want near %d", mean, d.Config.MeanSparse)
	}
}

func TestQueriesAgreeAcrossEnginesAndLayouts(t *testing.T) {
	d := smallCNET()
	engines := []exec.Engine{volcano.New(), bulk.New(), hyrise.New(), jit.New()}
	hybrid := d.HandHybrid()
	cats := map[string]*plan.Catalog{
		"row":    d.Catalog("row", nil),
		"column": d.Catalog("column", nil),
		"hybrid": d.Catalog("", &hybrid),
	}
	qs := d.Queries(3)
	for qi, p := range qs {
		var ref *result.Set
		var refDesc string
		for name, cat := range cats {
			for _, e := range engines {
				got := e.Run(p, cat)
				if ref == nil {
					ref, refDesc = got, e.Name()+"/"+name
					continue
				}
				if !result.EqualUnordered(ref, got) {
					t.Fatalf("CNET Q%d: %s/%s != %s", qi, e.Name(), name, refDesc)
				}
			}
		}
		if qi != 3 && ref.Len() == 0 { // Q3's bucket may be empty for some seeds
			t.Errorf("CNET Q%d returned no rows", qi)
		}
	}
}

// TestQ4ReturnsOneFullTuple: the detail page returns exactly the product
// with all attributes (mostly NULL).
func TestQ4ReturnsOneFullTuple(t *testing.T) {
	d := smallCNET()
	cat := d.Catalog("row", nil)
	res := jit.New().Run(d.Queries(3)[4], cat)
	if res.Len() != 1 {
		t.Fatalf("Q4 rows = %d, want 1", res.Len())
	}
	if len(res.Rows[0]) != d.Products.Schema.Width() {
		t.Fatalf("Q4 arity = %d, want %d", len(res.Rows[0]), d.Products.Schema.Width())
	}
}

// TestOptimizerPrefersNarrowPartitionsForBrowsing: under the Table V
// weighting, the cost model must rank the hand-built hybrid above both
// pure layouts — the paper's Figure 12 headline (hybrid >10x better than
// row, ~4x better than column overall).
func TestOptimizerPrefersNarrowPartitionsForBrowsing(t *testing.T) {
	d := Generate(Config{Products: 8000, Attrs: 80, Categories: 20, MeanSparse: 6, Seed: 2})
	cat := d.Catalog("row", nil)
	RegisterIndexes(cat)
	est := costmodel.NewEstimator(cat, mem.TableIII())
	w := d.Workload(3)
	width := d.Products.Schema.Width()

	costRow := w.Cost(est, map[string]storage.Layout{"products": storage.NSM(width)})
	costCol := w.Cost(est, map[string]storage.Layout{"products": storage.DSM(width)})
	hybrid := d.HandHybrid()
	costHyb := w.Cost(est, map[string]storage.Layout{"products": hybrid})
	if !(costHyb < costRow) {
		t.Errorf("hybrid (%g) should beat row (%g)", costHyb, costRow)
	}
	if !(costHyb < costCol) {
		t.Errorf("hybrid (%g) should beat column (%g)", costHyb, costCol)
	}

	// BPi should find something at least as good as the pure layouts too.
	o := layout.NewOptimizer(est)
	best, costBest := o.Optimize("products", w)
	if err := best.Validate(width); err != nil {
		t.Fatal(err)
	}
	if costBest > costRow || costBest > costCol {
		t.Errorf("BPi result (%g) worse than a pure layout (row %g, col %g)", costBest, costRow, costCol)
	}
}
