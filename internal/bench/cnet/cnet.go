// Package cnet implements the paper's third benchmark: a synthetic CNET
// product catalog (Beckham, 2005). The data set's published properties —
// a very wide, sparsely populated relation (the real catalog has almost
// 3000 attributes with on average 11 non-null values per tuple, a shape
// typical for ORM class-hierarchy-to-single-table mappings) and a handful
// of always-set attributes (id, name, category, price, manufacturer) — are
// reproduced by a deterministic generator, like the authors' own
// (http://www.cwi.nl/~holger/generators/cnet). The four queries and their
// 1/1/100/10000 frequencies are the paper's Table V.
package cnet

import (
	"fmt"
	"math/rand"

	"repro/internal/expr"
	"repro/internal/index"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Config sizes the catalog.
type Config struct {
	Products   int
	Attrs      int // total attributes including the 5 dense ones (paper: ~3000)
	Categories int
	MeanSparse int // mean non-null sparse attributes per product (paper: ~6 + 5 dense = 11)
	Seed       int64
}

// DefaultConfig keeps CI runtimes sane; experiments scale Attrs up.
func DefaultConfig() Config {
	return Config{Products: 20000, Attrs: 300, Categories: 50, MeanSparse: 6, Seed: 1}
}

// Dense attribute positions.
const (
	ColID = iota
	ColName
	ColCategory
	ColPriceFrom
	ColManufacturer
	denseCols
)

// Data is the generated catalog (N-ary master relation).
type Data struct {
	Config   Config
	Products *storage.Relation
}

// Generate builds the catalog. Sparse attributes cluster by category:
// products of one category populate the same attribute neighbourhood, as a
// class hierarchy mapped onto a single table would.
func Generate(cfg Config) *Data {
	if cfg.Products <= 0 {
		cfg = DefaultConfig()
	}
	if cfg.Attrs < denseCols+1 {
		cfg.Attrs = denseCols + 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	attrs := make([]storage.Attribute, cfg.Attrs)
	attrs[ColID] = storage.Attribute{Name: "id", Type: storage.Int64}
	attrs[ColName] = storage.Attribute{Name: "name", Type: storage.String}
	attrs[ColCategory] = storage.Attribute{Name: "category", Type: storage.String}
	attrs[ColPriceFrom] = storage.Attribute{Name: "price_from", Type: storage.Int64}
	attrs[ColManufacturer] = storage.Attribute{Name: "manufacturer", Type: storage.String}
	for i := denseCols; i < cfg.Attrs; i++ {
		attrs[i] = storage.Attribute{Name: fmt.Sprintf("prop_%04d", i), Type: storage.Int64}
	}
	schema := storage.NewSchema("products", attrs...)

	n := cfg.Products
	ids := make([]int64, n)
	names := make([]string, n)
	cats := make([]string, n)
	prices := make([]int64, n)
	manus := make([]string, n)
	catPool := make([]string, cfg.Categories)
	for i := range catPool {
		catPool[i] = fmt.Sprintf("CATEGORY_%03d", i)
	}
	manuPool := make([]string, 80)
	for i := range manuPool {
		manuPool[i] = fmt.Sprintf("MANUFACTURER_%03d", i)
	}

	sparseCount := cfg.Attrs - denseCols
	sparse := make([][]storage.Word, sparseCount)
	for i := range sparse {
		col := make([]storage.Word, n)
		for j := range col {
			col[j] = storage.Null
		}
		sparse[i] = col
	}

	for p := 0; p < n; p++ {
		ids[p] = int64(p)
		names[p] = fmt.Sprintf("PRODUCT_%07d", p)
		cat := rng.Intn(cfg.Categories)
		cats[p] = catPool[cat]
		prices[p] = rng.Int63n(2000)
		manus[p] = manuPool[rng.Intn(len(manuPool))]
		// Category-clustered sparse population.
		if sparseCount > 0 {
			base := (cat * 13) % sparseCount
			k := rng.Intn(cfg.MeanSparse*2 + 1) // 0..2*mean, mean on average
			for j := 0; j < k; j++ {
				at := (base + rng.Intn(cfg.MeanSparse*4+1)) % sparseCount
				sparse[at][p] = storage.EncodeInt(rng.Int63n(10000))
			}
		}
	}

	b := storage.NewBuilder(schema)
	b.SetInts(ColID, ids).SetStrings(ColName, names).SetStrings(ColCategory, cats)
	b.SetInts(ColPriceFrom, prices).SetStrings(ColManufacturer, manus)
	for i := 0; i < sparseCount; i++ {
		b.SetWords(denseCols+i, sparse[i])
	}
	return &Data{Config: cfg, Products: b.Build(storage.NSM(cfg.Attrs))}
}

// Catalog materializes the products table under a layout kind with an
// optional explicit layout.
func (d *Data) Catalog(kind string, override *storage.Layout) *plan.Catalog {
	w := d.Products.Schema.Width()
	l := d.Products.Layout
	switch kind {
	case "row":
		l = storage.NSM(w)
	case "column":
		l = storage.DSM(w)
	}
	if override != nil {
		l = *override
	}
	return plan.NewCatalog().Add(d.Products.WithLayout(l))
}

// RegisterIndexes installs the hash primary-key index on products.id. The
// detail-page query Q4 runs 10000x per workload round (Table V); a catalog
// web application serves it by key, and with the index the per-layout
// difference becomes tuple-reconstruction cost — best on N-ary storage,
// slightly degraded on PDSM, worst on DSM, the paper's Figure 12 shape.
func RegisterIndexes(c *plan.Catalog) {
	rel := c.Table("products")
	c.AddIndex("products", ColID, index.BuildOn(index.NewHashIndex(rel.Rows()), rel, ColID))
}

// HandHybrid is the intuition-guided partial decomposition for Table V's
// workload: the browsing keys get narrow partitions, id+name are
// collocated for the listing query Q3, and the sparse remainder stays
// N-ary for the point query Q4.
func (d *Data) HandHybrid() storage.Layout {
	w := d.Products.Schema.Width()
	rest := make([]int, 0, w-denseCols)
	for i := denseCols; i < w; i++ {
		rest = append(rest, i)
	}
	return storage.PDSM(
		[]int{ColID, ColName},
		[]int{ColCategory},
		[]int{ColPriceFrom},
		[]int{ColManufacturer},
		rest,
	)
}

// Queries builds the Table V query set. The price-bucket equality of Q3,
// (price_from/10)*10 = $2, executes as the equivalent inclusive range
// [bucket, bucket+9].
func (d *Data) Queries(seed int64) map[int]plan.Node {
	rng := rand.New(rand.NewSource(seed))
	s := d.Products.Schema
	catParam := d.Products.Value(rng.Intn(d.Products.Rows()), ColCategory)
	priceBucket := (rng.Int63n(2000) / 10) * 10
	idParam := int64(rng.Intn(d.Products.Rows()))

	qs := map[int]plan.Node{}

	// Q1: category overview with product counts (freq 1).
	qs[1] = plan.Sort{
		Child: plan.Aggregate{
			Child:   plan.Scan{Table: "products", Cols: []int{ColCategory}},
			GroupBy: []int{0},
			Aggs:    []expr.AggSpec{{Kind: expr.Count, Name: "count"}},
		},
		Keys: []plan.SortKey{{Pos: 0}},
	}
	// Q2: price-range drilldown within a category (freq 1).
	qs[2] = plan.Sort{
		Child: plan.Aggregate{
			Child: plan.Project{
				Child: plan.Scan{
					Table:  "products",
					Filter: expr.Cmp{Attr: ColCategory, Op: expr.Eq, Val: catParam},
					Cols:   []int{ColPriceFrom},
				},
				Exprs: []expr.Expr{expr.Arith{Op: expr.Mul, L: expr.Arith{Op: expr.Div, L: expr.IntCol(0), R: expr.IntConst(10)}, R: expr.IntConst(10)}},
				Names: []string{"price"},
			},
			GroupBy: []int{0},
			Aggs:    []expr.AggSpec{{Kind: expr.Count, Name: "count"}},
		},
		Keys: []plan.SortKey{{Pos: 0}},
	}
	// Q3: product listing for a category and price bucket (freq 100).
	qs[3] = plan.Scan{
		Table: "products",
		Filter: expr.And{Preds: []expr.Pred{
			expr.Cmp{Attr: ColCategory, Op: expr.Eq, Val: catParam},
			expr.Between{Attr: ColPriceFrom, Lo: storage.EncodeInt(priceBucket), Hi: storage.EncodeInt(priceBucket + 9)},
		}},
		Cols: []int{ColID, ColName},
	}
	// Q4: product details page — select * by primary key (freq 10000).
	qs[4] = plan.Scan{
		Table:  "products",
		Filter: expr.Cmp{Attr: ColID, Op: expr.Eq, Val: storage.EncodeInt(idParam)},
		Cols:   plan.AllCols(s),
	}
	return qs
}

// Q4For builds the detail-page query for one product id — the harness
// executes Q4 with varying parameters, as the live site would, so point
// lookups are not artificially served from a hot cache line.
func (d *Data) Q4For(id int64) plan.Node {
	return plan.Scan{
		Table:  "products",
		Filter: expr.Cmp{Attr: ColID, Op: expr.Eq, Val: storage.EncodeInt(id)},
		Cols:   plan.AllCols(d.Products.Schema),
	}
}

// Frequencies is Table V's weighting.
var Frequencies = map[int]float64{1: 1, 2: 1, 3: 100, 4: 10000}

// Workload returns the Table V workload (queries weighted by frequency).
func (d *Data) Workload(seed int64) *workload.Workload {
	w := &workload.Workload{Name: "cnet"}
	for qi, p := range d.Queries(seed) {
		w.Add(fmt.Sprintf("Q%d", qi), p, Frequencies[qi])
	}
	return w
}
