// Package sapsd reconstructs the SAP Sales & Distribution benchmark the
// paper takes from the HYRISE evaluation (Grund et al., VLDB '10): five SAP
// master/transaction tables on public schema information, filled with
// deterministic random data observing uniqueness constraints — exactly the
// authors' own setup ("we filled the database with randomly generated
// data"). The twelve queries are reconstructed from the paper (Q1, Q3, Q6,
// Q7, Q8 are described explicitly; the remainder follow the benchmark's
// documented character: customer/document point lookups, scans-with-LIKE,
// grouped analytics and one modifying query). The reconstruction is
// recorded in DESIGN.md.
package sapsd

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/expr"
	"repro/internal/index"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Config sizes the generated database.
type Config struct {
	Customers int // ADRC/KNA1 rows; VBAK = 4x, VBAP = 16x, MARA = x/2
	Seed      int64
}

// DefaultConfig is a laptop-scale instance.
func DefaultConfig() Config { return Config{Customers: 2000, Seed: 1} }

// Data holds the master (N-ary) relations; layout siblings are derived
// per experiment with Catalog.
type Data struct {
	Config Config
	ADRC   *storage.Relation
	KNA1   *storage.Relation
	VBAK   *storage.Relation
	VBAP   *storage.Relation
	MARA   *storage.Relation
}

// Table names and attribute orders (subset of the public SAP layouts).
var (
	adrcSchema = storage.NewSchema("ADRC",
		storage.Attribute{Name: "ADDRNUMBER", Type: storage.Int64}, // 0, PK
		storage.Attribute{Name: "NAME_CO", Type: storage.String},   // 1
		storage.Attribute{Name: "NAME1", Type: storage.String},     // 2
		storage.Attribute{Name: "NAME2", Type: storage.String},     // 3
		storage.Attribute{Name: "KUNNR", Type: storage.Int64},      // 4
		storage.Attribute{Name: "CITY1", Type: storage.String},     // 5
		storage.Attribute{Name: "POST_CODE1", Type: storage.Int64}, // 6
		storage.Attribute{Name: "STREET", Type: storage.String},    // 7
		storage.Attribute{Name: "COUNTRY", Type: storage.String},   // 8
		storage.Attribute{Name: "REGION", Type: storage.String},    // 9
	)
	kna1Schema = storage.NewSchema("KNA1",
		storage.Attribute{Name: "KUNNR", Type: storage.Int64}, // 0, PK
		storage.Attribute{Name: "LAND1", Type: storage.String},
		storage.Attribute{Name: "NAME1", Type: storage.String},
		storage.Attribute{Name: "NAME2", Type: storage.String},
		storage.Attribute{Name: "ORT01", Type: storage.String},
		storage.Attribute{Name: "PSTLZ", Type: storage.Int64},
		storage.Attribute{Name: "REGIO", Type: storage.String},
		storage.Attribute{Name: "STRAS", Type: storage.String},
		storage.Attribute{Name: "TELF1", Type: storage.Int64},
		storage.Attribute{Name: "ADRNR", Type: storage.Int64},
	)
	vbakSchema = storage.NewSchema("VBAK",
		storage.Attribute{Name: "VBELN", Type: storage.Int64}, // 0, PK
		storage.Attribute{Name: "ERDAT", Type: storage.Int64}, // creation date
		storage.Attribute{Name: "ERZET", Type: storage.Int64}, // creation time
		storage.Attribute{Name: "ERNAM", Type: storage.String},
		storage.Attribute{Name: "AUDAT", Type: storage.Int64}, // document date
		storage.Attribute{Name: "VBTYP", Type: storage.String},
		storage.Attribute{Name: "AUART", Type: storage.String},
		storage.Attribute{Name: "NETWR", Type: storage.Int64}, // net value (cents)
		storage.Attribute{Name: "WAERK", Type: storage.String},
		storage.Attribute{Name: "KUNNR", Type: storage.Int64}, // customer FK
	)
	vbapSchema = storage.NewSchema("VBAP",
		storage.Attribute{Name: "VBELN", Type: storage.Int64}, // 0, FK -> VBAK (RB-tree)
		storage.Attribute{Name: "POSNR", Type: storage.Int64}, // 1, item number
		storage.Attribute{Name: "MATNR", Type: storage.Int64}, // 2, material FK
		storage.Attribute{Name: "ARKTX", Type: storage.String},
		storage.Attribute{Name: "PSTYV", Type: storage.String},
		storage.Attribute{Name: "NETWR", Type: storage.Int64},
		storage.Attribute{Name: "WAERK", Type: storage.String},
		storage.Attribute{Name: "KWMENG", Type: storage.Int64}, // quantity
		storage.Attribute{Name: "MEINS", Type: storage.String},
		storage.Attribute{Name: "WERKS", Type: storage.String},
	)
	maraSchema = storage.NewSchema("MARA",
		storage.Attribute{Name: "MATNR", Type: storage.Int64}, // 0, PK
		storage.Attribute{Name: "ERSDA", Type: storage.Int64},
		storage.Attribute{Name: "ERNAM", Type: storage.String},
		storage.Attribute{Name: "MTART", Type: storage.String},
		storage.Attribute{Name: "MATKL", Type: storage.String},
		storage.Attribute{Name: "MEINS", Type: storage.String},
		storage.Attribute{Name: "BRGEW", Type: storage.Int64},
		storage.Attribute{Name: "NTGEW", Type: storage.Int64},
		storage.Attribute{Name: "GEWEI", Type: storage.String},
		storage.Attribute{Name: "VOLUM", Type: storage.Int64},
	)
)

// Generate builds the database.
func Generate(cfg Config) *Data {
	if cfg.Customers <= 0 {
		cfg = DefaultConfig()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &Data{Config: cfg}

	nCust := cfg.Customers
	nOrders := 4 * nCust
	nItems := 16 * nCust
	nMat := nCust/2 + 10

	names := namePool(rng, nCust/20+10, "COMPANY")
	names2 := namePool(rng, nCust/25+8, "DIVISION")
	cities := namePool(rng, 40, "CITY")
	streets := namePool(rng, 200, "STREET")
	countries := []string{"DE", "US", "NL", "FR", "JP", "BR", "IN", "CN"}
	regions := namePool(rng, 16, "REG")

	// ADRC: one address per customer, ADDRNUMBER unique, KUNNR unique link.
	{
		b := storage.NewBuilder(adrcSchema)
		addr := make([]int64, nCust)
		nameCo := make([]string, nCust)
		name1 := make([]string, nCust)
		name2 := make([]string, nCust)
		kunnr := make([]int64, nCust)
		city := make([]string, nCust)
		post := make([]int64, nCust)
		street := make([]string, nCust)
		country := make([]string, nCust)
		region := make([]string, nCust)
		for i := 0; i < nCust; i++ {
			addr[i] = int64(100000 + i)
			nameCo[i] = pick(rng, names) + " CO"
			name1[i] = pick(rng, names)
			name2[i] = pick(rng, names2)
			kunnr[i] = int64(i)
			city[i] = pick(rng, cities)
			post[i] = int64(rng.Intn(90000) + 10000)
			street[i] = pick(rng, streets)
			country[i] = pick(rng, countries)
			region[i] = pick(rng, regions)
		}
		b.SetInts(0, addr).SetStrings(1, nameCo).SetStrings(2, name1).SetStrings(3, name2)
		b.SetInts(4, kunnr).SetStrings(5, city).SetInts(6, post).SetStrings(7, street)
		b.SetStrings(8, country).SetStrings(9, region)
		d.ADRC = b.Build(storage.NSM(adrcSchema.Width()))
	}

	// KNA1: customer master, KUNNR unique.
	{
		b := storage.NewBuilder(kna1Schema)
		kunnr := make([]int64, nCust)
		land := make([]string, nCust)
		name1 := make([]string, nCust)
		name2 := make([]string, nCust)
		ort := make([]string, nCust)
		pstlz := make([]int64, nCust)
		regio := make([]string, nCust)
		stras := make([]string, nCust)
		telf := make([]int64, nCust)
		adrnr := make([]int64, nCust)
		for i := 0; i < nCust; i++ {
			kunnr[i] = int64(i)
			land[i] = pick(rng, countries)
			name1[i] = pick(rng, names)
			name2[i] = pick(rng, names2)
			ort[i] = pick(rng, cities)
			pstlz[i] = int64(rng.Intn(90000) + 10000)
			regio[i] = pick(rng, regions)
			stras[i] = pick(rng, streets)
			telf[i] = rng.Int63n(1e9)
			adrnr[i] = int64(100000 + i)
		}
		b.SetInts(0, kunnr).SetStrings(1, land).SetStrings(2, name1).SetStrings(3, name2)
		b.SetStrings(4, ort).SetInts(5, pstlz).SetStrings(6, regio).SetStrings(7, stras)
		b.SetInts(8, telf).SetInts(9, adrnr)
		d.KNA1 = b.Build(storage.NSM(kna1Schema.Width()))
	}

	// VBAK: orders, VBELN unique, dates over ~2 years.
	docTypes := []string{"TA", "OR", "RE", "CR"}
	users := namePool(rng, 30, "USER")
	{
		b := storage.NewBuilder(vbakSchema)
		vbeln := make([]int64, nOrders)
		erdat := make([]int64, nOrders)
		erzet := make([]int64, nOrders)
		ernam := make([]string, nOrders)
		audat := make([]int64, nOrders)
		vbtyp := make([]string, nOrders)
		auart := make([]string, nOrders)
		netwr := make([]int64, nOrders)
		waerk := make([]string, nOrders)
		kunnr := make([]int64, nOrders)
		for i := 0; i < nOrders; i++ {
			vbeln[i] = int64(1000000 + i)
			day := int64(20120000 + rng.Intn(730))
			erdat[i] = day
			erzet[i] = int64(rng.Intn(86400))
			ernam[i] = pick(rng, users)
			audat[i] = day
			vbtyp[i] = "C"
			auart[i] = pick(rng, docTypes)
			netwr[i] = rng.Int63n(5_000_00) + 100
			waerk[i] = "EUR"
			kunnr[i] = int64(rng.Intn(nCust))
		}
		b.SetInts(0, vbeln).SetInts(1, erdat).SetInts(2, erzet).SetStrings(3, ernam)
		b.SetInts(4, audat).SetStrings(5, vbtyp).SetStrings(6, auart).SetInts(7, netwr)
		b.SetStrings(8, waerk).SetInts(9, kunnr)
		d.VBAK = b.Build(storage.NSM(vbakSchema.Width()))
	}

	// VBAP: order items, VBELN references VBAK (about 4 items per order).
	texts := namePool(rng, 300, "ITEMTEXT")
	units := []string{"ST", "KG", "L", "M"}
	plants := namePool(rng, 12, "PLANT")
	{
		b := storage.NewBuilder(vbapSchema)
		vbeln := make([]int64, nItems)
		posnr := make([]int64, nItems)
		matnr := make([]int64, nItems)
		arktx := make([]string, nItems)
		pstyv := make([]string, nItems)
		netwr := make([]int64, nItems)
		waerk := make([]string, nItems)
		kwmeng := make([]int64, nItems)
		meins := make([]string, nItems)
		werks := make([]string, nItems)
		for i := 0; i < nItems; i++ {
			order := i / 4
			vbeln[i] = int64(1000000 + order%nOrders)
			posnr[i] = int64(i%4)*10 + 10
			matnr[i] = int64(rng.Intn(nMat))
			arktx[i] = pick(rng, texts)
			pstyv[i] = "TAN"
			netwr[i] = rng.Int63n(1_000_00) + 10
			waerk[i] = "EUR"
			kwmeng[i] = rng.Int63n(100) + 1
			meins[i] = pick(rng, units)
			werks[i] = pick(rng, plants)
		}
		b.SetInts(0, vbeln).SetInts(1, posnr).SetInts(2, matnr).SetStrings(3, arktx)
		b.SetStrings(4, pstyv).SetInts(5, netwr).SetStrings(6, waerk).SetInts(7, kwmeng)
		b.SetStrings(8, meins).SetStrings(9, werks)
		d.VBAP = b.Build(storage.NSM(vbapSchema.Width()))
	}

	// MARA: materials, MATNR unique.
	matTypes := []string{"FERT", "ROH", "HALB", "HAWA", "DIEN"}
	{
		b := storage.NewBuilder(maraSchema)
		matnr := make([]int64, nMat)
		ersda := make([]int64, nMat)
		ernam := make([]string, nMat)
		mtart := make([]string, nMat)
		matkl := make([]string, nMat)
		meins := make([]string, nMat)
		brgew := make([]int64, nMat)
		ntgew := make([]int64, nMat)
		gewei := make([]string, nMat)
		volum := make([]int64, nMat)
		for i := 0; i < nMat; i++ {
			matnr[i] = int64(i)
			ersda[i] = int64(20100000 + rng.Intn(1460))
			ernam[i] = pick(rng, users)
			mtart[i] = pick(rng, matTypes)
			matkl[i] = pick(rng, regions)
			meins[i] = pick(rng, units)
			brgew[i] = rng.Int63n(10000)
			ntgew[i] = rng.Int63n(9000)
			gewei[i] = "KG"
			volum[i] = rng.Int63n(1000)
		}
		b.SetInts(0, matnr).SetInts(1, ersda).SetStrings(2, ernam).SetStrings(3, mtart)
		b.SetStrings(4, matkl).SetStrings(5, meins).SetInts(6, brgew).SetInts(7, ntgew)
		b.SetStrings(8, gewei).SetInts(9, volum)
		d.MARA = b.Build(storage.NSM(maraSchema.Width()))
	}
	return d
}

func namePool(rng *rand.Rand, n int, prefix string) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s_%04d", prefix, i)
	}
	// Shuffle so dictionary codes are not correlated with generation order.
	rng.Shuffle(n, func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func pick(rng *rand.Rand, pool []string) string { return pool[rng.Intn(len(pool))] }

// Tables lists the relations of the database.
func (d *Data) Tables() []*storage.Relation {
	return []*storage.Relation{d.ADRC, d.KNA1, d.VBAK, d.VBAP, d.MARA}
}

// Catalog materializes the database under per-table layouts ("row" and
// "column" shorthands apply to all tables; explicit overrides win).
func (d *Data) Catalog(kind string, overrides map[string]storage.Layout) *plan.Catalog {
	c := plan.NewCatalog()
	for _, rel := range d.Tables() {
		l := rel.Layout // NSM master
		switch kind {
		case "row":
			l = storage.NSM(rel.Schema.Width())
		case "column":
			l = storage.DSM(rel.Schema.Width())
		}
		if o, ok := overrides[rel.Schema.Name]; ok {
			l = o
		}
		c.Add(rel.WithLayout(l))
	}
	return c
}

// RegisterIndexes installs the paper's Figure 10 indexes: hash indexes on
// every primary key and one RB-tree on VBAP(VBELN).
func RegisterIndexes(c *plan.Catalog) {
	for _, tbl := range []string{"ADRC", "KNA1", "VBAK", "MARA"} {
		rel := c.Table(tbl)
		c.AddIndex(tbl, 0, index.BuildOn(index.NewHashIndex(rel.Rows()), rel, 0))
	}
	vbap := c.Table("VBAP")
	c.AddIndex("VBAP", 0, index.BuildOn(index.NewRBTree(), vbap, 0))
}

// QuerySet holds the twelve benchmark plans with bound parameters chosen
// to hit existing data. Plans are layout-independent: they reference
// tables by name and dictionary codes shared across layout siblings.
type QuerySet struct {
	Plans [12]plan.Node
}

// Queries builds the twelve queries against the database. The seed varies
// the bound parameters.
func (d *Data) Queries(seed int64) QuerySet {
	rng := rand.New(rand.NewSource(seed))
	nCust := d.Config.Customers

	adrc := d.ADRC.Schema
	kna1 := d.KNA1.Schema
	vbak := d.VBAK.Schema
	vbap := d.VBAP.Schema
	mara := d.MARA.Schema

	// Prefixes of length 10/11 keep the LIKE conjuncts selective (a few
	// percent each): "COMPANY_00%" rather than the match-all "COMPANY_%".
	name1Pfx := d.ADRC.StringOf(rng.Intn(d.ADRC.Rows()), adrc.Col("NAME1"))[:10]
	name2Pfx := d.ADRC.StringOf(rng.Intn(d.ADRC.Rows()), adrc.Col("NAME2"))[:11]
	likeName1 := d.ADRC.Dict(adrc.Col("NAME1")).MatchCodes(func(s string) bool { return strings.HasPrefix(s, name1Pfx) })
	likeName2 := d.ADRC.Dict(adrc.Col("NAME2")).MatchCodes(func(s string) bool { return strings.HasPrefix(s, name2Pfx) })
	custName := d.KNA1.Value(rng.Intn(d.KNA1.Rows()), kna1.Col("NAME1"))

	someKunnr := storage.EncodeInt(int64(rng.Intn(nCust)))
	someVbeln := storage.EncodeInt(int64(1000000 + rng.Intn(4*nCust)))
	sinceDate := storage.EncodeInt(20120000 + 365)

	var qs QuerySet

	// Q1 (paper Table IVa): scan-and-project with two LIKE conjuncts.
	qs.Plans[0] = plan.Scan{
		Table: "ADRC",
		Filter: expr.And{Preds: []expr.Pred{
			expr.InSet{Attr: adrc.Col("NAME1"), Set: likeName1},
			expr.InSet{Attr: adrc.Col("NAME2"), Set: likeName2},
		}},
		Cols: []int{adrc.Col("ADDRNUMBER"), adrc.Col("NAME_CO"), adrc.Col("NAME1"), adrc.Col("NAME2"), adrc.Col("KUNNR")},
	}
	// Q2: customer search by exact name (unindexed scan).
	qs.Plans[1] = plan.Scan{
		Table:  "KNA1",
		Filter: expr.Cmp{Attr: kna1.Col("NAME1"), Op: expr.Eq, Val: custName},
		Cols:   plan.AllCols(kna1),
	}
	// Q3 (paper Table IVa): select * from ADRC where KUNNR = $1.
	qs.Plans[2] = plan.Scan{
		Table:  "ADRC",
		Filter: expr.Cmp{Attr: adrc.Col("KUNNR"), Op: expr.Eq, Val: someKunnr},
		Cols:   plan.AllCols(adrc),
	}
	// Q4: open orders of a customer.
	qs.Plans[3] = plan.Scan{
		Table:  "VBAK",
		Filter: expr.Cmp{Attr: vbak.Col("KUNNR"), Op: expr.Eq, Val: someKunnr},
		Cols:   []int{vbak.Col("VBELN"), vbak.Col("AUDAT"), vbak.Col("NETWR")},
	}
	// Q5: revenue since a date (scan-heavy aggregation).
	qs.Plans[4] = plan.Aggregate{
		Child: plan.Scan{
			Table:  "VBAK",
			Filter: expr.Cmp{Attr: vbak.Col("AUDAT"), Op: expr.Ge, Val: sinceDate},
			Cols:   []int{vbak.Col("NETWR")},
		},
		Aggs: []expr.AggSpec{
			{Kind: expr.Sum, Arg: expr.IntCol(0), Name: "revenue"},
			{Kind: expr.Count, Name: "orders"},
		},
	}
	// Q6: the modifying query — insert one order item (plan is rebuilt per
	// execution via InsertPlan; this instance inserts item 0).
	qs.Plans[5] = d.InsertPlan(0)
	// Q7: identity select on VBAK by primary key.
	qs.Plans[6] = plan.Scan{
		Table:  "VBAK",
		Filter: expr.Cmp{Attr: vbak.Col("VBELN"), Op: expr.Eq, Val: someVbeln},
		Cols:   plan.AllCols(vbak),
	}
	// Q8: identity select on VBAP by VBELN (RB-tree candidate).
	qs.Plans[7] = plan.Scan{
		Table:  "VBAP",
		Filter: expr.Cmp{Attr: vbap.Col("VBELN"), Op: expr.Eq, Val: someVbeln},
		Cols:   plan.AllCols(vbap),
	}
	// Q9: material demand: group order items by material.
	qs.Plans[8] = plan.Aggregate{
		Child:   plan.Scan{Table: "VBAP", Cols: []int{vbap.Col("MATNR"), vbap.Col("KWMENG")}},
		GroupBy: []int{0},
		Aggs: []expr.AggSpec{
			{Kind: expr.Count, Name: "items"},
			{Kind: expr.Sum, Arg: expr.IntCol(1), Name: "qty"},
		},
	}
	// Q10: top customers by order count.
	qs.Plans[9] = plan.Limit{N: 10, Child: plan.Sort{
		Child: plan.Aggregate{
			Child:   plan.Scan{Table: "VBAK", Cols: []int{vbak.Col("KUNNR"), vbak.Col("NETWR")}},
			GroupBy: []int{0},
			Aggs: []expr.AggSpec{
				{Kind: expr.Count, Name: "orders"},
				{Kind: expr.Sum, Arg: expr.IntCol(1), Name: "value"},
			},
		},
		Keys: []plan.SortKey{{Pos: 1, Desc: true}},
	}}
	// Q11: revenue per customer name (join VBAK ⋈ KNA1).
	qs.Plans[10] = plan.Aggregate{
		Child: plan.HashJoin{
			Left:     plan.Scan{Table: "KNA1", Cols: []int{kna1.Col("KUNNR"), kna1.Col("NAME1")}},
			Right:    plan.Scan{Table: "VBAK", Cols: []int{vbak.Col("KUNNR"), vbak.Col("NETWR")}},
			LeftKey:  0,
			RightKey: 0,
		},
		GroupBy: []int{1},
		Aggs:    []expr.AggSpec{{Kind: expr.Sum, Arg: expr.IntCol(3), Name: "revenue"}},
	}
	// Q12: material-type statistics.
	qs.Plans[11] = plan.Aggregate{
		Child:   plan.Scan{Table: "MARA", Cols: []int{mara.Col("MTART"), mara.Col("BRGEW")}},
		GroupBy: []int{0},
		Aggs: []expr.AggSpec{
			{Kind: expr.Count, Name: "materials"},
			{Kind: expr.Avg, Arg: expr.IntCol(1), Name: "avg_weight"},
		},
	}
	return qs
}

// InsertPlan builds the Q6 insert for the i-th synthetic new order item.
// String attributes reuse existing dictionary codes so the plan is valid on
// every layout sibling.
func (d *Data) InsertPlan(i int) plan.Node {
	s := d.VBAP.Schema
	row := make([]storage.Word, s.Width())
	row[s.Col("VBELN")] = storage.EncodeInt(int64(9000000 + i))
	row[s.Col("POSNR")] = storage.EncodeInt(10)
	row[s.Col("MATNR")] = storage.EncodeInt(int64(i % 100))
	row[s.Col("ARKTX")] = d.VBAP.Value(i%d.VBAP.Rows(), s.Col("ARKTX"))
	row[s.Col("PSTYV")] = d.VBAP.Value(0, s.Col("PSTYV"))
	row[s.Col("NETWR")] = storage.EncodeInt(4999)
	row[s.Col("WAERK")] = d.VBAP.Value(0, s.Col("WAERK"))
	row[s.Col("KWMENG")] = storage.EncodeInt(int64(i%50 + 1))
	row[s.Col("MEINS")] = d.VBAP.Value(0, s.Col("MEINS"))
	row[s.Col("WERKS")] = d.VBAP.Value(0, s.Col("WERKS"))
	return plan.Insert{Table: "VBAP", Rows: [][]storage.Word{row}}
}

// Workload returns the twelve queries with uniform frequency — the input
// to the layout optimizer for the Figure 9 "hybrid" bars.
func (d *Data) Workload(seed int64) *workload.Workload {
	qs := d.Queries(seed)
	w := &workload.Workload{Name: "sap-sd"}
	for i, p := range qs.Plans {
		w.Add(fmt.Sprintf("Q%d", i+1), p, 1)
	}
	return w
}
