package sapsd

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/exec"
	"repro/internal/exec/bulk"
	"repro/internal/exec/hyrise"
	"repro/internal/exec/jit"
	"repro/internal/exec/result"
	"repro/internal/exec/volcano"
	"repro/internal/expr"
	"repro/internal/layout"
	"repro/internal/mem"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/workload"
)

func small() *Data { return Generate(Config{Customers: 300, Seed: 1}) }

func TestGenerateSizesAndUniqueness(t *testing.T) {
	d := small()
	if d.ADRC.Rows() != 300 || d.KNA1.Rows() != 300 {
		t.Fatal("customer table sizes wrong")
	}
	if d.VBAK.Rows() != 1200 || d.VBAP.Rows() != 4800 {
		t.Fatal("order table sizes wrong")
	}
	// Primary keys unique.
	for _, tc := range []struct {
		rel  *storage.Relation
		attr int
	}{{d.ADRC, 0}, {d.KNA1, 0}, {d.VBAK, 0}, {d.MARA, 0}} {
		seen := map[storage.Word]bool{}
		for row := 0; row < tc.rel.Rows(); row++ {
			w := tc.rel.Value(row, tc.attr)
			if seen[w] {
				t.Fatalf("%s: duplicate primary key", tc.rel.Schema.Name)
			}
			seen[w] = true
		}
	}
	// Referential integrity: VBAP.VBELN ⊆ VBAK.VBELN.
	orders := map[storage.Word]bool{}
	for row := 0; row < d.VBAK.Rows(); row++ {
		orders[d.VBAK.Value(row, 0)] = true
	}
	for row := 0; row < d.VBAP.Rows(); row++ {
		if !orders[d.VBAP.Value(row, 0)] {
			t.Fatal("VBAP references unknown order")
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, b := Generate(Config{Customers: 100, Seed: 9}), Generate(Config{Customers: 100, Seed: 9})
	for row := 0; row < a.VBAK.Rows(); row++ {
		for attr := 0; attr < a.VBAK.Schema.Width(); attr++ {
			if a.VBAK.Value(row, attr) != b.VBAK.Value(row, attr) {
				t.Fatal("generation not deterministic")
			}
		}
	}
}

// TestQueriesRunOnAllEnginesAndLayouts is the SAP-SD integration test: all
// twelve queries produce identical results on every engine and layout,
// with and without indexes.
func TestQueriesRunOnAllEnginesAndLayouts(t *testing.T) {
	d := small()
	engines := []exec.Engine{volcano.New(), bulk.New(), hyrise.New(), jit.New()}
	hybrid := map[string]storage.Layout{
		"ADRC": storage.PDSM([]int{2}, []int{3}, []int{4}, []int{0, 1}, []int{5, 6, 7, 8, 9}),
	}
	cats := map[string]*plan.Catalog{
		"row":     d.Catalog("row", nil),
		"column":  d.Catalog("column", nil),
		"hybrid":  d.Catalog("row", hybrid),
		"indexed": d.Catalog("row", nil),
	}
	RegisterIndexes(cats["indexed"])
	qs := d.Queries(7)
	for qi, p := range qs.Plans {
		if _, isInsert := p.(plan.Insert); isInsert {
			continue // mutating; covered by TestInsertMaintainsIndexes
		}
		var ref *result.Set
		var refDesc string
		for name, cat := range cats {
			for _, e := range engines {
				got := e.Run(p, cat)
				if ref == nil {
					ref, refDesc = got, e.Name()+"/"+name
					continue
				}
				if !result.EqualUnordered(ref, got) {
					t.Fatalf("Q%d: %s/%s (%d rows) != %s (%d rows)", qi+1, e.Name(), name, got.Len(), refDesc, ref.Len())
				}
			}
		}
		if qi == 0 && ref.Len() == 0 {
			t.Error("Q1 LIKE predicate matched nothing; weak parameters")
		}
	}
}

func TestInsertMaintainsIndexes(t *testing.T) {
	d := small()
	cat := d.Catalog("row", nil)
	RegisterIndexes(cat)
	e := jit.New()
	e.Run(d.InsertPlan(42), cat)
	s := d.VBAP.Schema
	res := e.Run(plan.Scan{
		Table:  "VBAP",
		Filter: exprEq(s.Col("VBELN"), 9000042),
		Cols:   plan.AllCols(s),
	}, cat)
	if res.Len() != 1 {
		t.Fatalf("inserted item not found via RB-tree, got %d rows", res.Len())
	}
}

// TestTableIVDecomposition reproduces the paper's Table IV: deriving the
// extended reasonable cuts of the ADRC table from queries Q1 and Q3 and
// optimizing. The expected solution separates NAME1, NAME2 and KUNNR into
// their own partitions (they are scanned under different conditions),
// keeps Q1's projection attributes ADDRNUMBER and NAME_CO together, and
// leaves the untouched remainder as the final partition.
func TestTableIVDecomposition(t *testing.T) {
	d := Generate(Config{Customers: 2000, Seed: 1})
	cat := d.Catalog("row", nil)
	est := costmodel.NewEstimator(cat, mem.TableIII())
	qs := d.Queries(7)
	w := (&workload.Workload{Name: "adrc"}).Add("Q1", qs.Plans[0], 1).Add("Q3", qs.Plans[2], 1)

	o := layout.NewOptimizer(est)
	best, cost := o.Optimize("ADRC", w)
	if err := best.Validate(d.ADRC.Schema.Width()); err != nil {
		t.Fatal(err)
	}
	nsmCost := w.Cost(est, map[string]storage.Layout{"ADRC": storage.NSM(10)})
	if cost > nsmCost {
		t.Errorf("optimized cost %v exceeds NSM cost %v", cost, nsmCost)
	}

	s := d.ADRC.Schema
	groupOf := map[int]int{}
	for g, attrs := range best.Groups {
		for _, a := range attrs {
			groupOf[a] = g
		}
	}
	name1, name2 := s.Col("NAME1"), s.Col("NAME2")
	kunnr := s.Col("KUNNR")
	cold := s.Col("CITY1")
	// The scanned attributes must be isolated from the cold remainder.
	for _, hot := range []int{name1, name2, kunnr} {
		if groupOf[hot] == groupOf[cold] {
			t.Errorf("Table IV: attribute %s must not share a partition with cold columns: %v",
				s.Attrs[hot].Name, best)
		}
	}
	// NAME1 and NAME2 are accessed under different conditions (the second
	// LIKE is evaluated conditionally) — the paper separates them.
	if groupOf[name1] == groupOf[name2] {
		t.Errorf("Table IV: NAME1 and NAME2 should be decomposed: %v", best)
	}
}

func exprEq(attr int, v int64) expr.Cmp {
	return expr.Cmp{Attr: attr, Op: expr.Eq, Val: storage.EncodeInt(v)}
}
