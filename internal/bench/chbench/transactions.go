package chbench

import (
	"fmt"
	"math/rand"

	"repro/internal/index"
	"repro/internal/plan"
	"repro/internal/storage"
)

// Tx executes the CH-benchmark's transactional side against one catalog.
// HyPer runs OLTP statements as precompiled code, not through the query
// compiler; accordingly the transactions here are plain Go functions over
// the storage API with index-assisted point access. They give the
// benchmark its "mixed workload" character: NewOrder appends orders and
// order lines (growing exactly the tables the analytical queries scan) and
// Payment performs indexed read-modify-write on customer balances.
type Tx struct {
	data *Data
	cat  *plan.Catalog
	rng  *rand.Rand

	customer  *storage.Relation
	district  *storage.Relation
	orders    *storage.Relation
	orderline *storage.Relation
	stock     *storage.Relation

	custIdx  index.Index // c_key -> row
	distIdx  index.Index // d_key -> row
	stockIdx index.Index // s_key -> row

	nextOID []int // per district-row counter
}

// NewTx prepares transaction state (indexes on the point-access paths).
func NewTx(d *Data, cat *plan.Catalog, seed int64) *Tx {
	t := &Tx{
		data:      d,
		cat:       cat,
		rng:       rand.New(rand.NewSource(seed)),
		customer:  cat.Table("customer"),
		district:  cat.Table("district"),
		orders:    cat.Table("orders"),
		orderline: cat.Table("orderline"),
		stock:     cat.Table("stock"),
	}
	t.custIdx = index.BuildOn(index.NewHashIndex(t.customer.Rows()), t.customer, customerSchema.Col("c_key"))
	t.distIdx = index.BuildOn(index.NewHashIndex(t.district.Rows()), t.district, districtSchema.Col("d_key"))
	t.stockIdx = index.BuildOn(index.NewHashIndex(t.stock.Rows()), t.stock, stockSchema.Col("s_key"))
	t.nextOID = make([]int, t.district.Rows())
	for i := range t.nextOID {
		t.nextOID[i] = d.Config.OrdersPerD
	}
	return t
}

// NewOrder runs one TPC-C-style NewOrder: reads district/customer/stock,
// decrements stock quantities, appends one order and its lines.
func (t *Tx) NewOrder() error {
	cfg := t.data.Config
	w := t.rng.Intn(cfg.Warehouses)
	di := t.rng.Intn(cfg.DistrictsPerW)
	c := t.rng.Intn(cfg.CustomersPerD)

	dRows := t.distIdx.Lookup(storage.EncodeInt(dKey(w, di)), nil)
	if len(dRows) != 1 {
		return fmt.Errorf("chbench: district (%d,%d) not found", w, di)
	}
	dRow := int(dRows[0])
	oid := t.nextOID[dRow]
	t.nextOID[dRow]++
	t.district.SetValue(dRow, districtSchema.Col("d_next_o_id"), storage.EncodeInt(int64(oid+1)))

	lines := t.rng.Intn(11) + 5
	entry := int64(20140000 + t.rng.Intn(365))
	orderRow := make([]storage.Word, ordersSchema.Width())
	orderRow[ordersSchema.Col("o_key")] = storage.EncodeInt(oKey(w, di, oid))
	orderRow[ordersSchema.Col("o_id")] = storage.EncodeInt(int64(oid))
	orderRow[ordersSchema.Col("o_d_id")] = storage.EncodeInt(int64(di))
	orderRow[ordersSchema.Col("o_w_id")] = storage.EncodeInt(int64(w))
	orderRow[ordersSchema.Col("o_c_key")] = storage.EncodeInt(cKey(w, di, c))
	orderRow[ordersSchema.Col("o_entry_d")] = storage.EncodeInt(entry)
	orderRow[ordersSchema.Col("o_carrier_id")] = storage.EncodeInt(0)
	orderRow[ordersSchema.Col("o_ol_cnt")] = storage.EncodeInt(int64(lines))
	orderRow[ordersSchema.Col("o_all_local")] = storage.EncodeInt(1)
	t.orders.AppendRow(orderRow)

	distInfo := t.orderline.Value(0, orderlineSchema.Col("ol_dist_info"))
	for l := 0; l < lines; l++ {
		item := t.rng.Intn(cfg.Items)
		qty := int64(t.rng.Intn(10) + 1)
		// Stock read-modify-write through the index.
		sRows := t.stockIdx.Lookup(storage.EncodeInt(sKey(w, item)), nil)
		if len(sRows) == 1 {
			sRow := int(sRows[0])
			col := stockSchema.Col("s_quantity")
			cur := storage.DecodeInt(t.stock.Value(sRow, col))
			next := cur - qty
			if next < 10 {
				next += 91
			}
			t.stock.SetValue(sRow, col, storage.EncodeInt(next))
		}
		lineRow := make([]storage.Word, orderlineSchema.Width())
		lineRow[orderlineSchema.Col("ol_o_key")] = storage.EncodeInt(oKey(w, di, oid))
		lineRow[orderlineSchema.Col("ol_number")] = storage.EncodeInt(int64(l + 1))
		lineRow[orderlineSchema.Col("ol_i_id")] = storage.EncodeInt(int64(item))
		lineRow[orderlineSchema.Col("ol_supply_w_id")] = storage.EncodeInt(int64(w))
		lineRow[orderlineSchema.Col("ol_delivery_d")] = storage.EncodeInt(entry + int64(t.rng.Intn(30)))
		lineRow[orderlineSchema.Col("ol_quantity")] = storage.EncodeInt(qty)
		lineRow[orderlineSchema.Col("ol_amount")] = storage.EncodeInt(t.rng.Int63n(100000) + 100)
		lineRow[orderlineSchema.Col("ol_dist_info")] = distInfo
		t.orderline.AppendRow(lineRow)
	}
	return nil
}

// Payment runs one TPC-C-style Payment: indexed customer lookup and
// balance/ytd/counter updates.
func (t *Tx) Payment() error {
	cfg := t.data.Config
	w := t.rng.Intn(cfg.Warehouses)
	di := t.rng.Intn(cfg.DistrictsPerW)
	c := t.rng.Intn(cfg.CustomersPerD)
	amount := t.rng.Int63n(500000) + 100

	rows := t.custIdx.Lookup(storage.EncodeInt(cKey(w, di, c)), nil)
	if len(rows) != 1 {
		return fmt.Errorf("chbench: customer (%d,%d,%d) not found", w, di, c)
	}
	row := int(rows[0])
	balCol := customerSchema.Col("c_balance")
	ytdCol := customerSchema.Col("c_ytd_payment")
	cntCol := customerSchema.Col("c_payment_cnt")
	t.customer.SetValue(row, balCol, storage.EncodeInt(storage.DecodeInt(t.customer.Value(row, balCol))-amount))
	t.customer.SetValue(row, ytdCol, storage.EncodeInt(storage.DecodeInt(t.customer.Value(row, ytdCol))+amount))
	t.customer.SetValue(row, cntCol, storage.EncodeInt(storage.DecodeInt(t.customer.Value(row, cntCol))+1))
	return nil
}

// Mix runs n transactions with the TPC-C-ish ratio (roughly one Payment
// per NewOrder).
func (t *Tx) Mix(n int) error {
	for i := 0; i < n; i++ {
		var err error
		if i%2 == 0 {
			err = t.NewOrder()
		} else {
			err = t.Payment()
		}
		if err != nil {
			return err
		}
	}
	return nil
}
