package chbench

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/exec/bulk"
	"repro/internal/exec/hyrise"
	"repro/internal/exec/jit"
	"repro/internal/exec/result"
	"repro/internal/exec/volcano"
	"repro/internal/plan"
	"repro/internal/storage"
)

func smallCH() *Data {
	return Generate(Config{Warehouses: 2, DistrictsPerW: 3, CustomersPerD: 30, OrdersPerD: 40, Items: 200, Suppliers: 20, Seed: 1})
}

func TestGenerateCardinalities(t *testing.T) {
	d := smallCH()
	if d.Warehouse.Rows() != 2 || d.District.Rows() != 6 {
		t.Fatal("warehouse/district sizes wrong")
	}
	if d.Customer.Rows() != 2*3*30 || d.Orders.Rows() != 2*3*40 {
		t.Fatal("customer/order sizes wrong")
	}
	if d.Stock.Rows() != 2*200 || d.Item.Rows() != 200 || d.Supplier.Rows() != 20 {
		t.Fatal("stock/item/supplier sizes wrong")
	}
	// Orderline count = sum of o_ol_cnt.
	var want int64
	col := ordersSchema.Col("o_ol_cnt")
	for r := 0; r < d.Orders.Rows(); r++ {
		want += storage.DecodeInt(d.Orders.Value(r, col))
	}
	if int64(d.Orderline.Rows()) != want {
		t.Fatalf("orderline rows %d != sum of o_ol_cnt %d", d.Orderline.Rows(), want)
	}
}

func TestSurrogateKeysConsistent(t *testing.T) {
	d := smallCH()
	// Every orderline's ol_o_key exists in orders.o_key.
	orders := map[storage.Word]bool{}
	for r := 0; r < d.Orders.Rows(); r++ {
		orders[d.Orders.Value(r, 0)] = true
	}
	for r := 0; r < d.Orderline.Rows(); r++ {
		if !orders[d.Orderline.Value(r, 0)] {
			t.Fatal("dangling orderline")
		}
	}
	// Every order's customer exists.
	custs := map[storage.Word]bool{}
	for r := 0; r < d.Customer.Rows(); r++ {
		custs[d.Customer.Value(r, 0)] = true
	}
	ock := ordersSchema.Col("o_c_key")
	for r := 0; r < d.Orders.Rows(); r++ {
		if !custs[d.Orders.Value(r, ock)] {
			t.Fatal("order references unknown customer")
		}
	}
}

// TestQueriesAgreeAcrossEnginesAndLayouts: all eight CH queries give
// identical results on all four engines and all three layout kinds.
func TestQueriesAgreeAcrossEnginesAndLayouts(t *testing.T) {
	d := smallCH()
	engines := []exec.Engine{volcano.New(), bulk.New(), hyrise.New(), jit.New()}
	hybrid := map[string]storage.Layout{
		"orderline": storage.PDSM(
			[]int{0, 4}, // ol_o_key, ol_delivery_d (scan keys)
			[]int{1, 2, 3, 5, 6},
			[]int{7},
		),
	}
	cats := map[string]*plan.Catalog{
		"row":    d.Catalog("row", nil),
		"column": d.Catalog("column", nil),
		"hybrid": d.Catalog("column", hybrid),
	}
	qs := d.Queries()
	for _, qi := range QueryOrder {
		var ref *result.Set
		var refDesc string
		for name, cat := range cats {
			for _, e := range engines {
				got := e.Run(qs[qi], cat)
				if ref == nil {
					ref, refDesc = got, e.Name()+"/"+name
					continue
				}
				if !result.EqualUnordered(ref, got) {
					t.Fatalf("CH Q%d: %s/%s (%d rows) != %s (%d rows)",
						qi, e.Name(), name, got.Len(), refDesc, ref.Len())
				}
			}
		}
		if ref.Len() == 0 {
			t.Errorf("CH Q%d returned no rows; weak parameters", qi)
		}
	}
}

// TestQ1GroupsAreLineNumbers: Q1 groups by ol_number, which is in [1,15].
func TestQ1GroupsAreLineNumbers(t *testing.T) {
	d := smallCH()
	cat := d.Catalog("column", nil)
	res := jit.New().Run(d.Queries()[1], cat)
	if res.Len() < 5 || res.Len() > 15 {
		t.Fatalf("Q1 groups = %d, want 5..15", res.Len())
	}
	prev := int64(0)
	for _, row := range res.Rows {
		n := storage.DecodeInt(row[0])
		if n <= prev {
			t.Fatal("Q1 output must be sorted by ol_number")
		}
		prev = n
	}
}

func TestTransactionsGrowAndUpdate(t *testing.T) {
	d := smallCH()
	cat := d.Catalog("row", nil)
	tx := NewTx(d, cat, 5)
	ordersBefore := cat.Table("orders").Rows()
	linesBefore := cat.Table("orderline").Rows()
	if err := tx.Mix(100); err != nil {
		t.Fatal(err)
	}
	if cat.Table("orders").Rows() != ordersBefore+50 {
		t.Errorf("NewOrder x50 grew orders by %d", cat.Table("orders").Rows()-ordersBefore)
	}
	grown := cat.Table("orderline").Rows() - linesBefore
	if grown < 50*5 || grown > 50*15 {
		t.Errorf("orderline grew by %d, want 250..750", grown)
	}
	// Payments must have decreased some customer balance below the initial
	// -1000.
	cust := cat.Table("customer")
	balCol := customerSchema.Col("c_balance")
	touched := false
	for r := 0; r < cust.Rows(); r++ {
		if storage.DecodeInt(cust.Value(r, balCol)) < -1000 {
			touched = true
			break
		}
	}
	if !touched {
		t.Error("Payment did not update any balance")
	}
}

// TestAnalyticsSeeTransactionalInserts: the mixed-workload property — a
// freshly inserted order is visible to the analytical scan.
func TestAnalyticsSeeTransactionalInserts(t *testing.T) {
	d := smallCH()
	cat := d.Catalog("row", nil)
	q6 := d.Queries()[6]
	before := jit.New().Run(q6, cat)
	tx := NewTx(d, cat, 9)
	for i := 0; i < 200; i++ {
		if err := tx.NewOrder(); err != nil {
			t.Fatal(err)
		}
	}
	after := jit.New().Run(q6, cat)
	b := storage.DecodeInt(before.Rows[0][0])
	a := storage.DecodeInt(after.Rows[0][0])
	if a <= b {
		t.Errorf("Q6 revenue did not grow after inserts: %d -> %d", b, a)
	}
}
