package chbench

import (
	"fmt"
	"math/rand"

	"repro/internal/plan"
	"repro/internal/storage"
)

// Config sizes the generated CH database (TPC-C cardinalities scaled for
// laptop runs; the per-warehouse ratios follow the spec).
type Config struct {
	Warehouses    int
	DistrictsPerW int
	CustomersPerD int
	OrdersPerD    int
	Items         int
	Suppliers     int
	Seed          int64
}

// DefaultConfig is a small but structurally faithful instance.
func DefaultConfig() Config {
	return Config{Warehouses: 2, DistrictsPerW: 10, CustomersPerD: 100, OrdersPerD: 150, Items: 1000, Suppliers: 100, Seed: 1}
}

// Data holds the N-ary master relations of the CH database.
type Data struct {
	Config    Config
	Warehouse *storage.Relation
	District  *storage.Relation
	Customer  *storage.Relation
	Orders    *storage.Relation
	Orderline *storage.Relation
	Item      *storage.Relation
	Stock     *storage.Relation
	Supplier  *storage.Relation
}

// Surrogate key encodings for the composite TPC-C keys.
func dKey(w, d int) int64    { return int64(w*100 + d) }
func cKey(w, d, c int) int64 { return dKey(w, d)*100000 + int64(c) }
func oKey(w, d, o int) int64 { return dKey(w, d)*10000000 + int64(o) }
func sKey(w, i int) int64    { return int64(w)*10000000 + int64(i) }

// Generate builds the database deterministically.
func Generate(cfg Config) *Data {
	if cfg.Warehouses <= 0 {
		cfg = DefaultConfig()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &Data{Config: cfg}
	states := []string{"AA", "AB", "BA", "BC", "CA", "CD", "DE", "EF", "FG", "GH"}
	lastNames := []string{"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING"}

	// warehouse
	{
		b := storage.NewBuilder(warehouseSchema)
		n := cfg.Warehouses
		ids := make([]int64, n)
		names := make([]string, n)
		streets := make([]string, n)
		cities := make([]string, n)
		sts := make([]string, n)
		zips := make([]int64, n)
		taxes := make([]int64, n)
		ytds := make([]int64, n)
		for i := 0; i < n; i++ {
			ids[i] = int64(i)
			names[i] = fmt.Sprintf("WH%03d", i)
			streets[i] = fmt.Sprintf("STREET%04d", rng.Intn(1000))
			cities[i] = fmt.Sprintf("CITY%03d", rng.Intn(100))
			sts[i] = states[rng.Intn(len(states))]
			zips[i] = int64(rng.Intn(90000) + 10000)
			taxes[i] = int64(rng.Intn(2000))
			ytds[i] = 30000000
		}
		b.SetInts(0, ids).SetStrings(1, names).SetStrings(2, streets).SetStrings(3, cities)
		b.SetStrings(4, sts).SetInts(5, zips).SetInts(6, taxes).SetInts(7, ytds)
		d.Warehouse = b.Build(storage.NSM(warehouseSchema.Width()))
	}

	// district
	{
		n := cfg.Warehouses * cfg.DistrictsPerW
		b := storage.NewBuilder(districtSchema)
		cols := newIntCols(4)
		var names, streets, cities, sts []string
		var zips, taxes, ytds, nexts []int64
		for w := 0; w < cfg.Warehouses; w++ {
			for di := 0; di < cfg.DistrictsPerW; di++ {
				cols[0] = append(cols[0], dKey(w, di))
				cols[1] = append(cols[1], int64(di))
				cols[2] = append(cols[2], int64(w))
				names = append(names, fmt.Sprintf("DIST%02d", di))
				streets = append(streets, fmt.Sprintf("STREET%04d", rng.Intn(1000)))
				cities = append(cities, fmt.Sprintf("CITY%03d", rng.Intn(100)))
				sts = append(sts, states[rng.Intn(len(states))])
				zips = append(zips, int64(rng.Intn(90000)+10000))
				taxes = append(taxes, int64(rng.Intn(2000)))
				ytds = append(ytds, 3000000)
				nexts = append(nexts, int64(cfg.OrdersPerD))
			}
		}
		_ = n
		b.SetInts(0, cols[0]).SetInts(1, cols[1]).SetInts(2, cols[2]).SetStrings(3, names)
		b.SetStrings(4, streets).SetStrings(5, cities).SetStrings(6, sts).SetInts(7, zips)
		b.SetInts(8, taxes).SetInts(9, ytds).SetInts(10, nexts)
		d.District = b.Build(storage.NSM(districtSchema.Width()))
	}

	// customer
	{
		b := storage.NewBuilder(customerSchema)
		var key, id, dd, ww, zip, phone, since, lim, disc, bal, ytd, pcnt []int64
		var first, middle, last, street, city, st, credit, data []string
		for w := 0; w < cfg.Warehouses; w++ {
			for di := 0; di < cfg.DistrictsPerW; di++ {
				for c := 0; c < cfg.CustomersPerD; c++ {
					key = append(key, cKey(w, di, c))
					id = append(id, int64(c))
					dd = append(dd, int64(di))
					ww = append(ww, int64(w))
					first = append(first, fmt.Sprintf("FIRST%04d", rng.Intn(1000)))
					middle = append(middle, "OE")
					last = append(last, lastNames[rng.Intn(10)]+lastNames[rng.Intn(10)]+lastNames[rng.Intn(10)])
					street = append(street, fmt.Sprintf("STREET%04d", rng.Intn(1000)))
					city = append(city, fmt.Sprintf("CITY%03d", rng.Intn(100)))
					st = append(st, states[rng.Intn(len(states))])
					zip = append(zip, int64(rng.Intn(90000)+10000))
					phone = append(phone, rng.Int63n(1e10))
					since = append(since, int64(20100000+rng.Intn(1000)))
					if rng.Intn(10) == 0 {
						credit = append(credit, "BC")
					} else {
						credit = append(credit, "GC")
					}
					lim = append(lim, 5000000)
					disc = append(disc, int64(rng.Intn(5000)))
					bal = append(bal, -1000)
					ytd = append(ytd, 1000)
					pcnt = append(pcnt, 1)
					data = append(data, fmt.Sprintf("DATA%06d", rng.Intn(100000)))
				}
			}
		}
		b.SetInts(0, key).SetInts(1, id).SetInts(2, dd).SetInts(3, ww)
		b.SetStrings(4, first).SetStrings(5, middle).SetStrings(6, last).SetStrings(7, street)
		b.SetStrings(8, city).SetStrings(9, st).SetInts(10, zip).SetInts(11, phone)
		b.SetInts(12, since).SetStrings(13, credit).SetInts(14, lim).SetInts(15, disc)
		b.SetInts(16, bal).SetInts(17, ytd).SetInts(18, pcnt).SetStrings(19, data)
		d.Customer = b.Build(storage.NSM(customerSchema.Width()))
	}

	// orders + orderline
	{
		ob := storage.NewBuilder(ordersSchema)
		lb := storage.NewBuilder(orderlineSchema)
		var okeyC, oid, odid, owid, ockey, oentry, ocarrier, oolcnt, oalllocal []int64
		var lokey, lnum, liid, lsw, ldel, lqty, lamt []int64
		var ldist []string
		for w := 0; w < cfg.Warehouses; w++ {
			for di := 0; di < cfg.DistrictsPerW; di++ {
				for o := 0; o < cfg.OrdersPerD; o++ {
					okeyC = append(okeyC, oKey(w, di, o))
					oid = append(oid, int64(o))
					odid = append(odid, int64(di))
					owid = append(owid, int64(w))
					ockey = append(ockey, cKey(w, di, rng.Intn(cfg.CustomersPerD)))
					entry := int64(20120000 + rng.Intn(730))
					oentry = append(oentry, entry)
					ocarrier = append(ocarrier, int64(rng.Intn(10)))
					cnt := rng.Intn(11) + 5 // 5..15 lines per order (TPC-C)
					oolcnt = append(oolcnt, int64(cnt))
					oalllocal = append(oalllocal, 1)
					for l := 0; l < cnt; l++ {
						lokey = append(lokey, oKey(w, di, o))
						lnum = append(lnum, int64(l+1))
						liid = append(liid, int64(rng.Intn(cfg.Items)))
						lsw = append(lsw, int64(w))
						ldel = append(ldel, entry+int64(rng.Intn(30)))
						lqty = append(lqty, int64(rng.Intn(10)+1))
						lamt = append(lamt, rng.Int63n(100000)+100)
						ldist = append(ldist, fmt.Sprintf("DIST%02d", di))
					}
				}
			}
		}
		ob.SetInts(0, okeyC).SetInts(1, oid).SetInts(2, odid).SetInts(3, owid)
		ob.SetInts(4, ockey).SetInts(5, oentry).SetInts(6, ocarrier).SetInts(7, oolcnt)
		ob.SetInts(8, oalllocal)
		d.Orders = ob.Build(storage.NSM(ordersSchema.Width()))

		lb.SetInts(0, lokey).SetInts(1, lnum).SetInts(2, liid).SetInts(3, lsw)
		lb.SetInts(4, ldel).SetInts(5, lqty).SetInts(6, lamt).SetStrings(7, ldist)
		d.Orderline = lb.Build(storage.NSM(orderlineSchema.Width()))
	}

	// item
	{
		b := storage.NewBuilder(itemSchema)
		n := cfg.Items
		ids := make([]int64, n)
		ims := make([]int64, n)
		names := make([]string, n)
		prices := make([]int64, n)
		datas := make([]string, n)
		for i := 0; i < n; i++ {
			ids[i] = int64(i)
			ims[i] = int64(rng.Intn(10000))
			names[i] = fmt.Sprintf("ITEM%06d", i)
			prices[i] = rng.Int63n(10000) + 100
			if rng.Intn(10) == 0 {
				datas[i] = fmt.Sprintf("ORIGINAL%05d", rng.Intn(10000))
			} else {
				datas[i] = fmt.Sprintf("DATA%08d", rng.Intn(10000000))
			}
		}
		b.SetInts(0, ids).SetInts(1, ims).SetStrings(2, names).SetInts(3, prices).SetStrings(4, datas)
		d.Item = b.Build(storage.NSM(itemSchema.Width()))
	}

	// stock
	{
		b := storage.NewBuilder(stockSchema)
		var key, iid, wid, qty, ytd, cnt, supp []int64
		var data []string
		for w := 0; w < cfg.Warehouses; w++ {
			for i := 0; i < cfg.Items; i++ {
				key = append(key, sKey(w, i))
				iid = append(iid, int64(i))
				wid = append(wid, int64(w))
				qty = append(qty, int64(rng.Intn(91)+10))
				ytd = append(ytd, 0)
				cnt = append(cnt, 0)
				supp = append(supp, int64((w*i)%cfg.Suppliers)) // CH's supplier linkage mod rule
				data = append(data, fmt.Sprintf("SDATA%07d", rng.Intn(1000000)))
			}
		}
		b.SetInts(0, key).SetInts(1, iid).SetInts(2, wid).SetInts(3, qty)
		b.SetInts(4, ytd).SetInts(5, cnt).SetInts(6, supp).SetStrings(7, data)
		d.Stock = b.Build(storage.NSM(stockSchema.Width()))
	}

	// supplier
	{
		b := storage.NewBuilder(supplierSchema)
		n := cfg.Suppliers
		keys := make([]int64, n)
		names := make([]string, n)
		nations := make([]int64, n)
		accts := make([]int64, n)
		for i := 0; i < n; i++ {
			keys[i] = int64(i)
			names[i] = fmt.Sprintf("SUPPLIER%04d", i)
			nations[i] = int64(rng.Intn(25))
			accts[i] = rng.Int63n(1000000)
		}
		b.SetInts(0, keys).SetStrings(1, names).SetInts(2, nations).SetInts(3, accts)
		d.Supplier = b.Build(storage.NSM(supplierSchema.Width()))
	}
	return d
}

func newIntCols(n int) [][]int64 { return make([][]int64, n) }

// Tables lists the relations.
func (d *Data) Tables() []*storage.Relation {
	return []*storage.Relation{
		d.Warehouse, d.District, d.Customer, d.Orders, d.Orderline, d.Item, d.Stock, d.Supplier,
	}
}

// Catalog materializes the database under a layout kind ("row"/"column")
// with optional per-table overrides (the "hybrid" instance).
func (d *Data) Catalog(kind string, overrides map[string]storage.Layout) *plan.Catalog {
	c := plan.NewCatalog()
	for _, rel := range d.Tables() {
		l := rel.Layout
		switch kind {
		case "row":
			l = storage.NSM(rel.Schema.Width())
		case "column":
			l = storage.DSM(rel.Schema.Width())
		}
		if o, ok := overrides[rel.Schema.Name]; ok {
			l = o
		}
		c.Add(rel.WithLayout(l))
	}
	return c
}
