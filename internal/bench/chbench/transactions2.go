package chbench

import (
	"fmt"

	"repro/internal/storage"
)

// Delivery runs one TPC-C-style Delivery: for a random warehouse, the
// oldest undelivered order of each district gets a carrier assigned and
// its order lines a delivery date; the customer balance receives the order
// total. (Without a NEW_ORDER table the "oldest undelivered" order is the
// lowest o_id whose carrier is still 0.)
func (t *Tx) Delivery() error {
	cfg := t.data.Config
	w := t.rng.Intn(cfg.Warehouses)
	carrier := storage.EncodeInt(int64(t.rng.Intn(10) + 1))
	day := storage.EncodeInt(int64(20140000 + t.rng.Intn(365)))

	oKeyCol := ordersSchema.Col("o_key")
	carrierCol := ordersSchema.Col("o_carrier_id")
	custCol := ordersSchema.Col("o_c_key")
	widCol := ordersSchema.Col("o_w_id")

	// One pass over orders per call: pick the first pending order per
	// district of the warehouse (index-free delivery queue drain, matching
	// the append-ordered storage).
	pending := map[storage.Word]int{} // d_key-ish: o_key -> row
	for row := 0; row < t.orders.Rows(); row++ {
		if storage.DecodeInt(t.orders.Value(row, widCol)) != int64(w) {
			continue
		}
		if t.orders.Value(row, carrierCol) != storage.EncodeInt(0) {
			continue
		}
		key := t.orders.Value(row, oKeyCol)
		district := storage.DecodeInt(key) / 10000000
		dk := storage.Word(district)
		if _, ok := pending[dk]; !ok {
			pending[dk] = row
		}
	}
	olKeyCol := orderlineSchema.Col("ol_o_key")
	olDelCol := orderlineSchema.Col("ol_delivery_d")
	olAmtCol := orderlineSchema.Col("ol_amount")
	balCol := customerSchema.Col("c_balance")
	for _, row := range pending {
		t.orders.SetValue(row, carrierCol, carrier)
		oKey := t.orders.Value(row, oKeyCol)
		var total int64
		for lr := 0; lr < t.orderline.Rows(); lr++ {
			if t.orderline.Value(lr, olKeyCol) != oKey {
				continue
			}
			t.orderline.SetValue(lr, olDelCol, day)
			total += storage.DecodeInt(t.orderline.Value(lr, olAmtCol))
		}
		cRows := t.custIdx.Lookup(t.orders.Value(row, custCol), nil)
		if len(cRows) == 1 {
			cr := int(cRows[0])
			t.customer.SetValue(cr, balCol,
				storage.EncodeInt(storage.DecodeInt(t.customer.Value(cr, balCol))+total))
		}
	}
	return nil
}

// OrderStatus runs one TPC-C-style Order-Status: read a customer's most
// recent order and its lines (read-only point access through indexes plus
// short scans).
func (t *Tx) OrderStatus() (lines int, err error) {
	cfg := t.data.Config
	w := t.rng.Intn(cfg.Warehouses)
	di := t.rng.Intn(cfg.DistrictsPerW)
	c := t.rng.Intn(cfg.CustomersPerD)
	want := storage.EncodeInt(cKey(w, di, c))

	custCol := ordersSchema.Col("o_c_key")
	oKeyCol := ordersSchema.Col("o_key")
	var lastRow = -1
	for row := 0; row < t.orders.Rows(); row++ {
		if t.orders.Value(row, custCol) == want {
			lastRow = row
		}
	}
	if lastRow < 0 {
		return 0, nil // customer without orders
	}
	oKey := t.orders.Value(lastRow, oKeyCol)
	olKeyCol := orderlineSchema.Col("ol_o_key")
	for lr := 0; lr < t.orderline.Rows(); lr++ {
		if t.orderline.Value(lr, olKeyCol) == oKey {
			lines++
		}
	}
	if lines == 0 {
		return 0, fmt.Errorf("chbench: order %d has no lines", storage.DecodeInt(oKey))
	}
	return lines, nil
}

// StockLevel runs one TPC-C-style Stock-Level: count the distinct items of
// a district's recent orders whose stock is below a threshold.
func (t *Tx) StockLevel(threshold int64) (low int, err error) {
	cfg := t.data.Config
	w := t.rng.Intn(cfg.Warehouses)
	di := t.rng.Intn(cfg.DistrictsPerW)

	// Recent orders of the district: the 20 highest o_ids.
	base := oKey(w, di, 0)
	limit := oKey(w, di, 1<<30)
	oKeyCol := orderlineSchema.Col("ol_o_key")
	itemCol := orderlineSchema.Col("ol_i_id")
	var maxO int64 = -1
	for lr := 0; lr < t.orderline.Rows(); lr++ {
		k := storage.DecodeInt(t.orderline.Value(lr, oKeyCol))
		if k >= base && k < limit && k > maxO {
			maxO = k
		}
	}
	if maxO < 0 {
		return 0, nil
	}
	cutoff := maxO - 20
	items := map[int64]bool{}
	for lr := 0; lr < t.orderline.Rows(); lr++ {
		k := storage.DecodeInt(t.orderline.Value(lr, oKeyCol))
		if k >= base && k < limit && k > cutoff {
			items[storage.DecodeInt(t.orderline.Value(lr, itemCol))] = true
		}
	}
	qtyCol := stockSchema.Col("s_quantity")
	for item := range items {
		sRows := t.stockIdx.Lookup(storage.EncodeInt(sKey(w, int(item))), nil)
		if len(sRows) == 1 && storage.DecodeInt(t.stock.Value(int(sRows[0]), qtyCol)) < threshold {
			low++
		}
	}
	return low, nil
}

// FullMix runs n transactions with a TPC-C-like ratio: 45% NewOrder, 43%
// Payment, 4% each of Delivery, OrderStatus and StockLevel.
func (t *Tx) FullMix(n int) error {
	for i := 0; i < n; i++ {
		var err error
		switch pct := i % 100; {
		case pct < 45:
			err = t.NewOrder()
		case pct < 88:
			err = t.Payment()
		case pct < 92:
			err = t.Delivery()
		case pct < 96:
			_, err = t.OrderStatus()
		default:
			_, err = t.StockLevel(50)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
