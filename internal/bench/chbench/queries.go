package chbench

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Queries builds the Figure 11 analytical query set: CH queries 1, 2, 3,
// 4, 5, 6, 8 and 10, adapted to the repository's operator set (see the
// package comment for the adaptations).
func (d *Data) Queries() map[int]plan.Node {
	ol := orderlineSchema
	o := ordersSchema
	cu := customerSchema
	it := itemSchema
	st := stockSchema
	su := supplierSchema

	cutoff := storage.EncodeInt(20120000 + 365) // mid-horizon date parameter

	qs := map[int]plan.Node{}

	// Q1: pricing summary per ol_number over recently delivered lines.
	qs[1] = plan.Sort{
		Child: plan.Aggregate{
			Child: plan.Scan{
				Table:  "orderline",
				Filter: expr.Cmp{Attr: ol.Col("ol_delivery_d"), Op: expr.Gt, Val: cutoff},
				Cols:   []int{ol.Col("ol_number"), ol.Col("ol_quantity"), ol.Col("ol_amount")},
			},
			GroupBy: []int{0},
			Aggs: []expr.AggSpec{
				{Kind: expr.Sum, Arg: expr.IntCol(1), Name: "sum_qty"},
				{Kind: expr.Sum, Arg: expr.IntCol(2), Name: "sum_amount"},
				{Kind: expr.Avg, Arg: expr.IntCol(1), Name: "avg_qty"},
				{Kind: expr.Avg, Arg: expr.IntCol(2), Name: "avg_amount"},
				{Kind: expr.Count, Name: "count_order"},
			},
		},
		Keys: []plan.SortKey{{Pos: 0}},
	}

	// Q2: supplier/item stock report over "original" items:
	// item(filtered) ⋈ stock ⋈ supplier, grouped by supplier nation.
	origSet := d.Item.Dict(it.Col("i_data")).MatchCodes(func(s string) bool {
		return strings.HasPrefix(s, "ORIGINAL")
	})
	qs[2] = plan.Aggregate{
		Child: plan.HashJoin{
			Left: plan.Scan{Table: "supplier", Cols: []int{su.Col("su_suppkey"), su.Col("su_nationkey")}},
			Right: plan.HashJoin{
				Left: plan.Scan{
					Table:  "item",
					Filter: expr.InSet{Attr: it.Col("i_data"), Set: origSet},
					Cols:   []int{it.Col("i_id"), it.Col("i_price")},
				},
				Right:    plan.Scan{Table: "stock", Cols: []int{st.Col("s_i_id"), st.Col("s_quantity"), st.Col("s_su_suppkey")}},
				LeftKey:  0,
				RightKey: 0,
			},
			LeftKey:  0,
			RightKey: 4, // s_su_suppkey within (item ++ stock) output
		},
		GroupBy: []int{1}, // su_nationkey
		Aggs: []expr.AggSpec{
			{Kind: expr.Count, Name: "stocked"},
			{Kind: expr.Sum, Arg: expr.IntCol(5), Name: "quantity"}, // s_quantity
		},
	}

	// Q3: unshipped-order value: orders(filtered) ⋈ orderline grouped by order.
	qs[3] = plan.Limit{N: 100, Child: plan.Sort{
		Child: plan.Aggregate{
			Child: plan.HashJoin{
				Left: plan.Scan{
					Table:  "orders",
					Filter: expr.Cmp{Attr: o.Col("o_entry_d"), Op: expr.Gt, Val: cutoff},
					Cols:   []int{o.Col("o_key"), o.Col("o_entry_d")},
				},
				Right:    plan.Scan{Table: "orderline", Cols: []int{ol.Col("ol_o_key"), ol.Col("ol_amount")}},
				LeftKey:  0,
				RightKey: 0,
			},
			GroupBy: []int{0, 1}, // o_key, o_entry_d
			Aggs:    []expr.AggSpec{{Kind: expr.Sum, Arg: expr.IntCol(3), Name: "revenue"}},
		},
		Keys: []plan.SortKey{{Pos: 2, Desc: true}},
	}}

	// Q4: order-priority count by line count class.
	qs[4] = plan.Sort{
		Child: plan.Aggregate{
			Child: plan.Scan{
				Table:  "orders",
				Filter: expr.Cmp{Attr: o.Col("o_entry_d"), Op: expr.Ge, Val: cutoff},
				Cols:   []int{o.Col("o_ol_cnt")},
			},
			GroupBy: []int{0},
			Aggs:    []expr.AggSpec{{Kind: expr.Count, Name: "order_count"}},
		},
		Keys: []plan.SortKey{{Pos: 0}},
	}

	// Q5: revenue by customer state: customer ⋈ orders ⋈ orderline.
	qs[5] = plan.Aggregate{
		Child: plan.HashJoin{
			Left: plan.HashJoin{
				Left:     plan.Scan{Table: "customer", Cols: []int{cu.Col("c_key"), cu.Col("c_state")}},
				Right:    plan.Scan{Table: "orders", Cols: []int{o.Col("o_c_key"), o.Col("o_key")}},
				LeftKey:  0,
				RightKey: 0,
			},
			Right:    plan.Scan{Table: "orderline", Cols: []int{ol.Col("ol_o_key"), ol.Col("ol_amount")}},
			LeftKey:  3, // o_key within (customer ++ orders)
			RightKey: 0,
		},
		GroupBy: []int{1}, // c_state
		Aggs:    []expr.AggSpec{{Kind: expr.Sum, Arg: expr.IntCol(5), Name: "revenue"}},
	}

	// Q6: forecast revenue change: one tight scan with range conjuncts.
	qs[6] = plan.Aggregate{
		Child: plan.Scan{
			Table: "orderline",
			Filter: expr.And{Preds: []expr.Pred{
				expr.Cmp{Attr: ol.Col("ol_delivery_d"), Op: expr.Ge, Val: cutoff},
				expr.Between{Attr: ol.Col("ol_quantity"), Lo: storage.EncodeInt(2), Hi: storage.EncodeInt(8)},
			}},
			Cols: []int{ol.Col("ol_amount")},
		},
		Aggs: []expr.AggSpec{{Kind: expr.Sum, Arg: expr.IntCol(0), Name: "revenue"}},
	}

	// Q8: "market share": delivery-year revenue over lines of ORIGINAL
	// items — item(filtered) ⋈ orderline, grouped by delivery year.
	qs[8] = plan.Sort{
		Child: plan.Aggregate{
			Child: plan.Project{
				Child: plan.HashJoin{
					Left: plan.Scan{
						Table:  "item",
						Filter: expr.InSet{Attr: it.Col("i_data"), Set: origSet},
						Cols:   []int{it.Col("i_id")},
					},
					Right:    plan.Scan{Table: "orderline", Cols: []int{ol.Col("ol_i_id"), ol.Col("ol_delivery_d"), ol.Col("ol_amount")}},
					LeftKey:  0,
					RightKey: 0,
				},
				Exprs: []expr.Expr{
					expr.Arith{Op: expr.Div, L: expr.IntCol(2), R: expr.IntConst(10000)}, // year
					expr.IntCol(3), // amount
				},
				Names: []string{"year", "amount"},
			},
			GroupBy: []int{0},
			Aggs:    []expr.AggSpec{{Kind: expr.Sum, Arg: expr.IntCol(1), Name: "mkt_share"}},
		},
		Keys: []plan.SortKey{{Pos: 0}},
	}

	// Q10: returned-item reporting: top customers by recent revenue.
	qs[10] = plan.Limit{N: 20, Child: plan.Sort{
		Child: plan.Aggregate{
			Child: plan.HashJoin{
				Left: plan.HashJoin{
					Left: plan.Scan{Table: "customer", Cols: []int{cu.Col("c_key"), cu.Col("c_last"), cu.Col("c_city")}},
					Right: plan.Scan{
						Table:  "orders",
						Filter: expr.Cmp{Attr: o.Col("o_entry_d"), Op: expr.Ge, Val: cutoff},
						Cols:   []int{o.Col("o_c_key"), o.Col("o_key")},
					},
					LeftKey:  0,
					RightKey: 0,
				},
				Right:    plan.Scan{Table: "orderline", Cols: []int{ol.Col("ol_o_key"), ol.Col("ol_amount")}},
				LeftKey:  4, // o_key within (customer ++ orders)
				RightKey: 0,
			},
			GroupBy: []int{0, 1, 2}, // c_key, c_last, c_city
			Aggs:    []expr.AggSpec{{Kind: expr.Sum, Arg: expr.IntCol(6), Name: "revenue"}},
		},
		Keys: []plan.SortKey{{Pos: 3, Desc: true}},
	}}

	return qs
}

// QueryOrder lists the Figure 11 x-axis.
var QueryOrder = []int{1, 2, 3, 4, 5, 6, 8, 10}

// Workload returns the analytical queries with uniform weight plus the
// transactional tables' insert path, for layout optimization.
func (d *Data) Workload() *workload.Workload {
	w := &workload.Workload{Name: "ch"}
	qs := d.Queries()
	for _, qi := range QueryOrder {
		w.Add(fmt.Sprintf("Q%d", qi), qs[qi], 1)
	}
	return w
}
