// Package chbench implements the CH-benchmark substrate (Cole et al.,
// DBTest '11): the TPC-C schema extended with suppliers, a deterministic
// data generator, compiled OLTP transactions (NewOrder, Payment — HyPer
// executes transactions as precompiled code, which is what plain Go
// functions over the storage API model), and the analytical queries the
// paper plots in Figure 11 (CH queries 1, 2, 3, 4, 5, 6, 8 and 10),
// adapted to this repository's operator set.
//
// Composite TPC-C keys are materialized as surrogate key attributes
// (o_key = (w,d,o) etc.) because the join operator is single-key; the
// access pattern — one hash probe per tuple — is unchanged. The CH
// queries' correlated subqueries (Q2's min-supplycost) are simplified to
// the join/filter/aggregate skeleton that determines their storage-layout
// behaviour; DESIGN.md records these adaptations.
package chbench

import "repro/internal/storage"

var (
	warehouseSchema = storage.NewSchema("warehouse",
		storage.Attribute{Name: "w_id", Type: storage.Int64},
		storage.Attribute{Name: "w_name", Type: storage.String},
		storage.Attribute{Name: "w_street", Type: storage.String},
		storage.Attribute{Name: "w_city", Type: storage.String},
		storage.Attribute{Name: "w_state", Type: storage.String},
		storage.Attribute{Name: "w_zip", Type: storage.Int64},
		storage.Attribute{Name: "w_tax", Type: storage.Int64},
		storage.Attribute{Name: "w_ytd", Type: storage.Int64},
	)
	districtSchema = storage.NewSchema("district",
		storage.Attribute{Name: "d_key", Type: storage.Int64}, // w*100+d
		storage.Attribute{Name: "d_id", Type: storage.Int64},
		storage.Attribute{Name: "d_w_id", Type: storage.Int64},
		storage.Attribute{Name: "d_name", Type: storage.String},
		storage.Attribute{Name: "d_street", Type: storage.String},
		storage.Attribute{Name: "d_city", Type: storage.String},
		storage.Attribute{Name: "d_state", Type: storage.String},
		storage.Attribute{Name: "d_zip", Type: storage.Int64},
		storage.Attribute{Name: "d_tax", Type: storage.Int64},
		storage.Attribute{Name: "d_ytd", Type: storage.Int64},
		storage.Attribute{Name: "d_next_o_id", Type: storage.Int64},
	)
	customerSchema = storage.NewSchema("customer",
		storage.Attribute{Name: "c_key", Type: storage.Int64}, // surrogate (w,d,c)
		storage.Attribute{Name: "c_id", Type: storage.Int64},
		storage.Attribute{Name: "c_d_id", Type: storage.Int64},
		storage.Attribute{Name: "c_w_id", Type: storage.Int64},
		storage.Attribute{Name: "c_first", Type: storage.String},
		storage.Attribute{Name: "c_middle", Type: storage.String},
		storage.Attribute{Name: "c_last", Type: storage.String},
		storage.Attribute{Name: "c_street", Type: storage.String},
		storage.Attribute{Name: "c_city", Type: storage.String},
		storage.Attribute{Name: "c_state", Type: storage.String},
		storage.Attribute{Name: "c_zip", Type: storage.Int64},
		storage.Attribute{Name: "c_phone", Type: storage.Int64},
		storage.Attribute{Name: "c_since", Type: storage.Int64},
		storage.Attribute{Name: "c_credit", Type: storage.String},
		storage.Attribute{Name: "c_credit_lim", Type: storage.Int64},
		storage.Attribute{Name: "c_discount", Type: storage.Int64},
		storage.Attribute{Name: "c_balance", Type: storage.Int64},
		storage.Attribute{Name: "c_ytd_payment", Type: storage.Int64},
		storage.Attribute{Name: "c_payment_cnt", Type: storage.Int64},
		storage.Attribute{Name: "c_data", Type: storage.String},
	)
	ordersSchema = storage.NewSchema("orders",
		storage.Attribute{Name: "o_key", Type: storage.Int64}, // surrogate (w,d,o)
		storage.Attribute{Name: "o_id", Type: storage.Int64},
		storage.Attribute{Name: "o_d_id", Type: storage.Int64},
		storage.Attribute{Name: "o_w_id", Type: storage.Int64},
		storage.Attribute{Name: "o_c_key", Type: storage.Int64},
		storage.Attribute{Name: "o_entry_d", Type: storage.Int64},
		storage.Attribute{Name: "o_carrier_id", Type: storage.Int64},
		storage.Attribute{Name: "o_ol_cnt", Type: storage.Int64},
		storage.Attribute{Name: "o_all_local", Type: storage.Int64},
	)
	orderlineSchema = storage.NewSchema("orderline",
		storage.Attribute{Name: "ol_o_key", Type: storage.Int64},
		storage.Attribute{Name: "ol_number", Type: storage.Int64},
		storage.Attribute{Name: "ol_i_id", Type: storage.Int64},
		storage.Attribute{Name: "ol_supply_w_id", Type: storage.Int64},
		storage.Attribute{Name: "ol_delivery_d", Type: storage.Int64},
		storage.Attribute{Name: "ol_quantity", Type: storage.Int64},
		storage.Attribute{Name: "ol_amount", Type: storage.Int64}, // cents
		storage.Attribute{Name: "ol_dist_info", Type: storage.String},
	)
	itemSchema = storage.NewSchema("item",
		storage.Attribute{Name: "i_id", Type: storage.Int64},
		storage.Attribute{Name: "i_im_id", Type: storage.Int64},
		storage.Attribute{Name: "i_name", Type: storage.String},
		storage.Attribute{Name: "i_price", Type: storage.Int64},
		storage.Attribute{Name: "i_data", Type: storage.String},
	)
	stockSchema = storage.NewSchema("stock",
		storage.Attribute{Name: "s_key", Type: storage.Int64}, // surrogate (w,i)
		storage.Attribute{Name: "s_i_id", Type: storage.Int64},
		storage.Attribute{Name: "s_w_id", Type: storage.Int64},
		storage.Attribute{Name: "s_quantity", Type: storage.Int64},
		storage.Attribute{Name: "s_ytd", Type: storage.Int64},
		storage.Attribute{Name: "s_order_cnt", Type: storage.Int64},
		storage.Attribute{Name: "s_su_suppkey", Type: storage.Int64},
		storage.Attribute{Name: "s_data", Type: storage.String},
	)
	supplierSchema = storage.NewSchema("supplier",
		storage.Attribute{Name: "su_suppkey", Type: storage.Int64},
		storage.Attribute{Name: "su_name", Type: storage.String},
		storage.Attribute{Name: "su_nationkey", Type: storage.Int64},
		storage.Attribute{Name: "su_acctbal", Type: storage.Int64},
	)
)
