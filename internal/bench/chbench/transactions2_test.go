package chbench

import (
	"testing"

	"repro/internal/storage"
)

func TestDeliveryAssignsCarriersAndPaysCustomers(t *testing.T) {
	d := smallCH()
	cat := d.Catalog("row", nil)
	tx := NewTx(d, cat, 11)

	carrierCol := ordersSchema.Col("o_carrier_id")
	zeroBefore := 0
	for r := 0; r < cat.Table("orders").Rows(); r++ {
		if cat.Table("orders").Value(r, carrierCol) == storage.EncodeInt(0) {
			zeroBefore++
		}
	}
	// Create some known-undelivered orders, then deliver.
	for i := 0; i < 10; i++ {
		if err := tx.NewOrder(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := tx.Delivery(); err != nil {
			t.Fatal(err)
		}
	}
	zeroAfter := 0
	for r := 0; r < cat.Table("orders").Rows(); r++ {
		if cat.Table("orders").Value(r, carrierCol) == storage.EncodeInt(0) {
			zeroAfter++
		}
	}
	if zeroAfter >= zeroBefore+10 {
		t.Errorf("delivery did not drain pending orders: %d before+10 inserted, %d after", zeroBefore, zeroAfter)
	}
}

func TestOrderStatusFindsLines(t *testing.T) {
	d := smallCH()
	cat := d.Catalog("row", nil)
	tx := NewTx(d, cat, 12)
	found := false
	for i := 0; i < 20; i++ {
		lines, err := tx.OrderStatus()
		if err != nil {
			t.Fatal(err)
		}
		if lines >= 5 && lines <= 15 {
			found = true
		}
	}
	if !found {
		t.Error("no order-status call returned a plausible line count")
	}
}

func TestStockLevelCountsLowStock(t *testing.T) {
	d := smallCH()
	cat := d.Catalog("row", nil)
	tx := NewTx(d, cat, 13)
	// With threshold above the generator's max quantity (100), every
	// distinct recent item counts as low.
	low, err := tx.StockLevel(101)
	if err != nil {
		t.Fatal(err)
	}
	if low == 0 {
		t.Error("threshold above max quantity must flag items")
	}
	none, err := tx.StockLevel(0)
	if err != nil {
		t.Fatal(err)
	}
	if none != 0 {
		t.Errorf("threshold 0 must flag nothing, got %d", none)
	}
}

func TestFullMixRuns(t *testing.T) {
	d := smallCH()
	cat := d.Catalog("row", nil)
	tx := NewTx(d, cat, 14)
	ordersBefore := cat.Table("orders").Rows()
	if err := tx.FullMix(200); err != nil {
		t.Fatal(err)
	}
	if cat.Table("orders").Rows() <= ordersBefore {
		t.Error("full mix should have inserted orders")
	}
}
