package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"repro/internal/exec/result"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/storage"
)

// HTTP front-end: a plain JSON-over-HTTP surface for the service.
//
//	POST /query      {"plan": <plan JSON>}          -> result
//	POST /prepare    {"plan": <plan JSON>}          -> {"id": "s1", "cols": [...]}
//	POST /exec       {"id": "s1"}                   -> result
//	POST /optimize   {}                             -> layout changes
//	POST /load?table=T&format=csv[&create=...]      -> bulk-ingest the body
//	POST /checkpoint {}                             -> snapshot + WAL reset
//	GET  /tables                                    -> catalog listing
//	GET  /stats                                     -> service counters
//	GET  /workload                                  -> captured column heat + plan shapes
//	GET  /advisor                                   -> layout-drift advice (advisory-only)
//	GET  /events?since=N                            -> cluster event journal replay
//	GET  /history                                   -> in-process metrics history ring
//	GET  /replication                               -> per-follower cursors and lag / apply position
//
// Results decode words by column type: int64/float64/bool become JSON
// numbers/booleans; string columns whose provenance is a base table
// decode through that table's dictionary to real strings, computed
// string expressions without a dictionary stay codes. NULL is JSON null.
// Malformed plans get a 400 whose error names the offending field;
// admission rejections get a 429.
//
// /load streams the request body (CSV rows or NDJSON arrays) into a
// table, batch-wise, so the body is not size-limited like plan requests.
// Query parameters: table (required), format=csv|ndjson (default csv),
// create=name:type,... (create the table first), layout=row|column (for
// create, default row).

const maxRequestBytes = 8 << 20 // plans and insert batches, not bulk loads

// Handler returns the HTTP API for the service.
func (s *DB) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/prepare", s.handlePrepare)
	mux.HandleFunc("/exec", s.handleExec)
	mux.HandleFunc("/optimize", s.handleOptimize)
	mux.HandleFunc("/load", s.handleLoad)
	mux.HandleFunc("/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("/tables", s.handleTables)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/workload", s.handleWorkload)
	mux.HandleFunc("/advisor", s.handleAdvisor)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/history", s.handleHistory)
	mux.HandleFunc("/replication", s.handleReplication)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.Handle("/metrics", s.Metrics().Handler())
	return s.withQueryID(mux)
}

// maxQueryIDLen caps accepted client-supplied correlation ids.
const maxQueryIDLen = 64

// ValidQueryID reports whether a client-supplied X-Query-Id is
// acceptable: non-empty, at most maxQueryIDLen bytes, printable ASCII
// with no spaces (it travels in headers and log lines verbatim).
func ValidQueryID(id string) bool {
	if id == "" || len(id) > maxQueryIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		if id[i] < '!' || id[i] > '~' {
			return false
		}
	}
	return true
}

// qidKey carries the request's correlation id through its context.
type qidKey struct{}

// WithQueryID returns a context carrying the correlation id.
func WithQueryID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, qidKey{}, id)
}

// QueryIDFrom returns the context's correlation id ("" when unset).
func QueryIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(qidKey{}).(string)
	return id
}

// withQueryID assigns every request a correlation id — a client-supplied
// X-Query-Id when it validates, a process-unique generated one otherwise
// — echoed back as X-Query-Id, attached to the request context (write
// paths stamp it onto the WAL commit) and to the request-scoped debug
// log line: the handle for following one request across the primary's
// and every replica's logs.
func (s *DB) withQueryID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Query-Id")
		if !ValidQueryID(id) {
			id = fmt.Sprintf("q%d", s.queryIDs.Add(1))
		}
		w.Header().Set("X-Query-Id", id)
		r = r.WithContext(WithQueryID(r.Context(), id))
		start := time.Now()
		next.ServeHTTP(w, r)
		s.logger().Debug("request",
			slog.String("id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int64("micros", time.Since(start).Microseconds()),
		)
	})
}

type planRequest struct {
	Plan json.RawMessage `json:"plan"`
	// Explain runs the plan with per-operator tracing and embeds the
	// report as "trace" in the response (EXPLAIN ANALYZE).
	Explain bool `json:"explain,omitempty"`
	// Engine selects "jit" (default) or "vector" for read plans.
	Engine string `json:"engine,omitempty"`
}

type execRequest struct {
	ID string `json:"id"`
}

type colJSON struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

type resultJSON struct {
	Cols     []colJSON      `json:"cols"`
	Rows     [][]any        `json:"rows"`
	RowCount int            `json:"rowCount"`
	Micros   int64          `json:"micros"`
	Trace    []obs.OpReport `json:"trace,omitempty"`
	// Epoch is the MVCC catalog version the query executed against
	// (EXPLAIN ANALYZE only — set alongside Trace).
	Epoch uint64 `json:"epoch,omitempty"`
}

type errorJSON struct {
	Error string `json:"error"`
	Field string `json:"field,omitempty"`
}

func (s *DB) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req planRequest
	if !readJSON(w, r, &req) {
		return
	}
	if len(req.Plan) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("request body needs a \"plan\" field"))
		return
	}
	p, err := plan.UnmarshalNode(req.Plan)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	start := time.Now()
	res, tr, err := s.QueryEx(p, QueryOpts{
		Explain: req.Explain,
		Engine:  req.Engine,
		QueryID: QueryIDFrom(r.Context()),
	})
	if err != nil {
		writeQueryError(w, err)
		return
	}
	out := encodeResult(res, time.Since(start))
	if tr != nil {
		out.Trace = tr.Report()
		out.Epoch = tr.Epoch
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *DB) handlePrepare(w http.ResponseWriter, r *http.Request) {
	var req planRequest
	if !readJSON(w, r, &req) {
		return
	}
	if len(req.Plan) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("request body needs a \"plan\" field"))
		return
	}
	p, err := plan.UnmarshalNode(req.Plan)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	st, err := s.Prepare(p)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	cols := make([]colJSON, len(st.Cols))
	for i, c := range st.Cols {
		cols[i] = colJSON{Name: c.Name, Type: c.Type.String()}
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": st.ID, "cols": cols})
}

func (s *DB) handleExec(w http.ResponseWriter, r *http.Request) {
	var req execRequest
	if !readJSON(w, r, &req) {
		return
	}
	start := time.Now()
	res, err := s.Exec(req.ID)
	if err != nil {
		if errors.Is(err, ErrOverloaded) {
			writeError(w, http.StatusTooManyRequests, err)
		} else {
			writeError(w, http.StatusNotFound, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, encodeResult(res, time.Since(start)))
}

func (s *DB) handleOptimize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	type changeJSON struct {
		Table   string  `json:"table"`
		Old     string  `json:"old"`
		New     string  `json:"new"`
		OldCost float64 `json:"oldCost"`
		NewCost float64 `json:"newCost"`
	}
	changes, err := s.OptimizeLayouts()
	if err != nil {
		writeQueryError(w, err)
		return
	}
	out := make([]changeJSON, len(changes))
	for i, ch := range changes {
		out[i] = changeJSON{
			Table: ch.Table, Old: ch.Old.String(), New: ch.New.String(),
			OldCost: ch.OldCost, NewCost: ch.NewCost,
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"changes": out})
}

func (s *DB) handleLoad(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	q := r.URL.Query()
	spec := LoadSpec{
		Table:      q.Get("table"),
		Format:     q.Get("format"),
		CreateSpec: q.Get("create"),
		Layout:     q.Get("layout"),
		QueryID:    QueryIDFrom(r.Context()),
	}
	if spec.Format == "" {
		spec.Format = "csv"
	}
	start := time.Now()
	res, err := s.Load(spec, r.Body)
	if err != nil {
		// Client mistakes (bad spec, unparsable rows) are 400s; a WAL
		// failure after rows were applied is a server fault — retrying
		// the load would duplicate them. Either way the response names
		// how many rows were already durably applied, so callers can
		// resume the stream instead of re-sending it.
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, ErrDurability):
			status = http.StatusInternalServerError
		case errors.Is(err, ErrReadOnly), errors.Is(err, ErrFenced):
			status = http.StatusConflict
		}
		writeJSON(w, status, map[string]any{
			"error": err.Error(), "table": res.Table, "rowsApplied": res.Rows,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"table": res.Table, "rows": res.Rows, "created": res.Created,
		"micros": time.Since(start).Microseconds(),
	})
}

func (s *DB) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	start := time.Now()
	info, err := s.Checkpoint()
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrNoPersistence) || errors.Is(err, ErrReadOnly) || errors.Is(err, ErrFenced) {
			status = http.StatusConflict
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"snapshotBytes": info.SnapshotBytes, "walBytesDropped": info.WALBytes,
		"micros": time.Since(start).Microseconds(),
	})
}

func (s *DB) handleTables(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"tables": s.Tables()})
}

func (s *DB) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleWorkload serves the live capture snapshot: per-table column heat
// and the top tracked plan shapes.
func (s *DB) handleWorkload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	writeJSON(w, http.StatusOK, s.WorkloadSnapshot())
}

// handleAdvisor runs a fresh drift analysis of the captured mix and
// serves the per-table advice. Advisory-only: no relayout happens here —
// POST /optimize is the acting path (and it optimizes for the *declared*
// workload; the advice tells an operator when the live mix has drifted
// from it).
func (s *DB) handleAdvisor(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	start := time.Now()
	rep := s.Advise()
	writeJSON(w, http.StatusOK, map[string]any{
		"advice":  rep.Advice,
		"queries": rep.Queries,
		"shapes":  rep.Shapes,
		"micros":  time.Since(start).Microseconds(),
	})
}

// handleEvents replays the cluster event journal: ?since=N resumes from
// a cursor (0 = oldest retained), ?limit=N caps one page (default 256,
// max 1024). The response carries the next cursor and how many events
// the ring evicted before the reader got to them.
func (s *DB) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	q := r.URL.Query()
	var since uint64
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad since %q", v))
			return
		}
		since = n
	}
	limit := 256
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", v))
			return
		}
		limit = min(n, 1024)
	}
	events, next, evicted := s.Events(since, limit)
	writeJSON(w, http.StatusOK, map[string]any{
		"events": events, "next": next, "evicted": evicted,
	})
}

// handleHistory serves the in-process metrics history ring in
// chronological order.
func (s *DB) handleHistory(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	samples, interval := s.History()
	writeJSON(w, http.StatusOK, map[string]any{
		"intervalSeconds": interval.Seconds(),
		"samples":         samples,
	})
}

// handleReplication serves the node's replication view: per-follower
// cursors and lag on a primary, apply position and lag on a replica.
func (s *DB) handleReplication(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	writeJSON(w, http.StatusOK, s.Replication())
}

// handleHealthz is the liveness/role probe. It always answers 200 as
// long as the process serves — a degraded replica (primary unreachable)
// and a fenced primary still answer reads, and that is what the status
// field reports:
//
//	ok        — the node is doing its job (primary accepting writes,
//	            replica streaming or bootstrapping)
//	degraded  — replica serving reads while the primary is unreachable
//	            (promoteEligible says whether the stall has lasted long
//	            enough for an operator to POST /promote)
//	fenced    — superseded primary: reads serve, writes are rejected
func (s *DB) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	st := s.Stats()
	status := "ok"
	switch {
	case st.Fenced:
		status = "fenced"
	case st.Degraded:
		status = "degraded"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":          status,
		"role":            st.Role,
		"term":            st.Term,
		"fenced":          st.Fenced,
		"replState":       st.ReplState,
		"promoteEligible": st.PromoteEligible,
		"lagBytes":        st.ReplicationLagBytes,
	})
}

// readJSON decodes a POST body into dst, writing the error response on
// failure.
func readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return false
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %v", err))
		return false
	}
	if len(body) > maxRequestBytes {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("request over %d bytes", maxRequestBytes))
		return false
	}
	if err := json.Unmarshal(body, dst); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed JSON body: %v", err))
		return false
	}
	return true
}

// writeQueryError maps service errors onto status codes: overload to
// 429, writes on a read-only replica or a fenced (superseded) primary to
// 409 (the error names the primary that should take them), durability
// failures (mutation applied, WAL write failed) to 500, everything else
// (decode/validation) to 400.
func writeQueryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrOverloaded):
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrReadOnly), errors.Is(err, ErrFenced):
		writeError(w, http.StatusConflict, err)
	case errors.Is(err, ErrDurability):
		writeError(w, http.StatusInternalServerError, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	resp := errorJSON{Error: err.Error()}
	var fe *plan.FieldError
	if errors.As(err, &fe) {
		resp.Field = fe.Field
	}
	writeJSON(w, status, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// encodeResult renders a result set with words decoded by column type.
// String columns carrying a dictionary (those descending untransformed
// from a base table — plan.Output threads the reference) decode to real
// strings; a dictionary value table published before the decode covers
// every code in the result, so this is safe after the catalog lock is
// released even while loads append new values.
func encodeResult(res *result.Set, took time.Duration) resultJSON {
	cols := make([]colJSON, len(res.Cols))
	dicts := make([][]string, len(res.Cols))
	for i, c := range res.Cols {
		cols[i] = colJSON{Name: c.Name, Type: c.Type.String()}
		if c.Type == storage.String && c.Dict != nil {
			dicts[i] = c.Dict.Values()
		}
	}
	rows := make([][]any, len(res.Rows))
	for i, r := range res.Rows {
		row := make([]any, len(r))
		for j, word := range r {
			row[j] = decodeWord(word, colType(res.Cols, j), dictValues(dicts, j))
		}
		rows[i] = row
	}
	return resultJSON{Cols: cols, Rows: rows, RowCount: len(rows), Micros: took.Microseconds()}
}

func colType(cols []plan.Column, j int) storage.Type {
	if j < len(cols) {
		return cols[j].Type
	}
	return storage.Int64
}

func dictValues(dicts [][]string, j int) []string {
	if j < len(dicts) {
		return dicts[j]
	}
	return nil
}

func decodeWord(w storage.Word, t storage.Type, dict []string) any {
	if w == storage.Null {
		return nil
	}
	switch t {
	case storage.Int64:
		return storage.DecodeInt(w)
	case storage.Float64:
		return storage.DecodeFloat(w)
	case storage.Bool:
		return storage.DecodeBool(w)
	default: // String
		if int(w) < len(dict) {
			return dict[w]
		}
		return w // computed expression without provenance: raw code
	}
}
