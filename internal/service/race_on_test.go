//go:build race

package service

// raceEnabled reports whether the race detector instruments this build;
// timing guards skip under it.
const raceEnabled = true
