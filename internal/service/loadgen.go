package service

import (
	"sync"
	"time"

	"repro/internal/plan"
)

// LoadGen drives a service with concurrent closed-loop clients — the
// throughput harness behind BenchmarkServiceThroughput and the CI smoke.
// Each client issues its share of Requests, round-robining over Queries.
type LoadGen struct {
	Clients  int         // concurrent clients; <= 0 means 1
	Requests int         // total requests across all clients
	Queries  []plan.Node // the mix; clients rotate through it
}

// LoadReport summarizes one LoadGen run.
type LoadReport struct {
	Requests int           // attempted requests
	Errors   int           // failed requests (incl. admission rejections)
	Rows     int64         // total result rows
	Elapsed  time.Duration // wall time of the whole run
	QPS      float64       // successful queries per wall-clock second
}

// Run executes the load against s and reports throughput. An empty query
// mix yields an empty report.
func (g LoadGen) Run(s *DB) LoadReport {
	if len(g.Queries) == 0 {
		return LoadReport{}
	}
	clients := g.Clients
	if clients <= 0 {
		clients = 1
	}
	total := g.Requests
	if total <= 0 {
		total = clients
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	rep := LoadReport{Requests: total}
	start := time.Now()
	for c := 0; c < clients; c++ {
		share := total / clients
		if c < total%clients {
			share++
		}
		if share == 0 {
			continue
		}
		wg.Add(1)
		go func(c, share int) {
			defer wg.Done()
			errs, rows := 0, int64(0)
			for i := 0; i < share; i++ {
				q := g.Queries[(c+i)%len(g.Queries)]
				res, err := s.Query(q)
				if err != nil {
					errs++
					continue
				}
				rows += int64(res.Len())
			}
			mu.Lock()
			rep.Errors += errs
			rep.Rows += rows
			mu.Unlock()
		}(c, share)
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)
	if rep.Elapsed > 0 {
		rep.QPS = float64(total-rep.Errors) / rep.Elapsed.Seconds()
	}
	return rep
}
