package service

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// In-process metrics history: a fixed ring of periodic samples of the
// key serving gauges, kept entirely in memory and served at GET
// /history. /metrics answers "what is the rate now" to a scraper that
// keeps its own history; this ring answers "what did the last hour look
// like" on a node with no scraper attached — the first question of any
// incident triage. Rates and quantiles are per-interval (snapshot
// deltas of the cumulative histograms), not since-start averages.

// HistorySample is one periodic observation of the serving state.
type HistorySample struct {
	Time time.Time `json:"time"`
	// QPS is successful queries per second over the sample interval;
	// P50Ms/P99Ms are end-to-end latency quantiles of the interval's
	// successful queries (0 when none ran).
	QPS            float64 `json:"qps"`
	P50Ms          float64 `json:"p50Ms"`
	P99Ms          float64 `json:"p99Ms"`
	QueueWaitP99Ms float64 `json:"queueWaitP99Ms"`
	InFlight       int64   `json:"inFlight"`
	// Replication: connected followers (primary), apply lag in bytes and
	// commit-to-visible lag (replica; 0 when unknown).
	Followers    int64   `json:"followers"`
	ReplLagBytes int64   `json:"replLagBytes"`
	VisibleLagMs float64 `json:"visibleLagMs"`
	LiveVersions int     `json:"liveVersions"`
	WALBytes     int64   `json:"walBytes"`
}

// history is the sampler state: the ring plus the previous cumulative
// snapshots the per-interval deltas are computed against.
type history struct {
	mu      sync.Mutex
	samples []HistorySample
	pos     int
	n       int

	interval    time.Duration
	prevLat     obs.HistogramSnapshot
	prevQueue   obs.HistogramSnapshot
	prevQueries int64
	prevTime    time.Time

	stop chan struct{}
}

// historyCapacity sizes the ring for ~1h of retention at the given
// interval, clamped to [60, 4096] samples.
func historyCapacity(interval time.Duration) int {
	n := int(time.Hour / interval)
	if n < 60 {
		n = 60
	}
	if n > 4096 {
		n = 4096
	}
	return n
}

// StartHistory begins periodic sampling every interval (<=0 means 10s).
// Restarting replaces the previous loop; StopHistory (also run by Close)
// ends it.
func (s *DB) StartHistory(interval time.Duration) {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	s.StopHistory()
	s.history.mu.Lock()
	s.history.interval = interval
	s.history.samples = make([]HistorySample, historyCapacity(interval))
	s.history.pos, s.history.n = 0, 0
	s.history.prevLat = s.metrics.latOK.Snapshot()
	s.history.prevQueue = s.metrics.queueWait.Snapshot()
	s.history.prevQueries = s.stats.queries.Load()
	s.history.prevTime = time.Now()
	stop := make(chan struct{})
	s.history.stop = stop
	s.history.mu.Unlock()
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				s.SampleHistory()
			}
		}
	}()
}

// StopHistory ends the sampling loop (the recorded ring stays readable).
func (s *DB) StopHistory() {
	s.history.mu.Lock()
	defer s.history.mu.Unlock()
	if s.history.stop != nil {
		close(s.history.stop)
		s.history.stop = nil
	}
}

// SampleHistory takes one sample now and appends it to the ring — the
// ticker's body, exported for tests and benchmarks. It is a pull:
// nothing on the query path ever pays for history.
func (s *DB) SampleHistory() HistorySample {
	lat := s.metrics.latOK.Snapshot()
	queue := s.metrics.queueWait.Snapshot()
	queries := s.stats.queries.Load()
	now := time.Now()

	s.history.mu.Lock()
	defer s.history.mu.Unlock()
	if s.history.samples == nil {
		// Never started: sample against zero-value prevs into a default
		// ring so callers (benchmarks) need no StartHistory first.
		s.history.interval = 10 * time.Second
		s.history.samples = make([]HistorySample, historyCapacity(s.history.interval))
		s.history.prevTime = s.start
	}
	dLat := lat.Sub(s.history.prevLat)
	dQueue := queue.Sub(s.history.prevQueue)
	elapsed := now.Sub(s.history.prevTime).Seconds()
	sample := HistorySample{
		Time:         now,
		InFlight:     s.stats.inFlight.Load(),
		Followers:    s.repl.followers.Load(),
		ReplLagBytes: s.repl.lagBytes.Load(),
		VisibleLagMs: float64(s.repl.visibleLagNanos.Load()) / 1e6,
		LiveVersions: s.core().LiveVersions(),
	}
	if elapsed > 0 {
		sample.QPS = float64(queries-s.history.prevQueries) / elapsed
	}
	if dLat.Count > 0 {
		sample.P50Ms = dLat.Quantile(0.5) * 1000
		sample.P99Ms = dLat.Quantile(0.99) * 1000
	}
	if dQueue.Count > 0 {
		sample.QueueWaitP99Ms = dQueue.Quantile(0.99) * 1000
	}
	if m := s.mgr(); m != nil {
		sample.WALBytes = m.WALSize()
	}
	s.history.samples[s.history.pos] = sample
	s.history.pos = (s.history.pos + 1) % len(s.history.samples)
	if s.history.n < len(s.history.samples) {
		s.history.n++
	}
	s.history.prevLat, s.history.prevQueue = lat, queue
	s.history.prevQueries, s.history.prevTime = queries, now
	return sample
}

// History returns the retained samples in chronological order and the
// sampling interval.
func (s *DB) History() ([]HistorySample, time.Duration) {
	s.history.mu.Lock()
	defer s.history.mu.Unlock()
	out := make([]HistorySample, 0, s.history.n)
	start := s.history.pos - s.history.n
	for i := 0; i < s.history.n; i++ {
		out = append(out, s.history.samples[(start+i+len(s.history.samples))%len(s.history.samples)])
	}
	return out, s.history.interval
}
