package service

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/faultinject"
)

// TestWALCommitFailpoint fails the WAL commit under a load: the service
// must surface ErrDurability (the batch is applied in memory but not
// logged — the operator's signal to fail the node over rather than trust
// it), count the persist error, and recover once the fault clears.
func TestWALCommitFailpoint(t *testing.T) {
	s, mgr := openPersistent(t, t.TempDir(), Config{Workers: 1})
	t.Cleanup(func() {
		s.Close()
		mgr.Close()
		faultinject.Reset()
	})
	if _, err := s.Load(LoadSpec{Table: "ev", Format: "csv", CreateSpec: "id:int64,name:string"},
		strings.NewReader("1,a\n2,b\n")); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("injected: disk is gone")
	faultinject.EnableError("persist/wal-commit", boom)
	_, err := s.Load(LoadSpec{Table: "ev", Format: "csv"}, strings.NewReader("3,c\n"))
	if !errors.Is(err, ErrDurability) {
		t.Fatalf("load with failing WAL commit: %v, want ErrDurability", err)
	}
	if !strings.Contains(err.Error(), boom.Error()) {
		t.Fatalf("injected cause lost from the message: %v", err)
	}
	if got := s.Stats().PersistErrors; got == 0 {
		t.Fatal("persist error not counted")
	}

	faultinject.Disable("persist/wal-commit")
	if _, err := s.Load(LoadSpec{Table: "ev", Format: "csv"}, strings.NewReader("4,d\n")); err != nil {
		t.Fatalf("load after fault cleared: %v", err)
	}
}

// TestWALCommitFailsN exercises the transient flavor: the first N
// commits fail, then service resumes without operator action.
func TestWALCommitFailsN(t *testing.T) {
	s, mgr := openPersistent(t, t.TempDir(), Config{Workers: 1})
	t.Cleanup(func() {
		s.Close()
		mgr.Close()
		faultinject.Reset()
	})
	if _, err := s.Load(LoadSpec{Table: "ev", Format: "csv", CreateSpec: "id:int64,name:string"},
		strings.NewReader("1,a\n")); err != nil {
		t.Fatal(err)
	}

	faultinject.Enable("persist/wal-commit", faultinject.FailN(errors.New("injected: transient"), 2))
	for i := 0; i < 2; i++ {
		if _, err := s.Load(LoadSpec{Table: "ev", Format: "csv"}, strings.NewReader("9,z\n")); !errors.Is(err, ErrDurability) {
			t.Fatalf("attempt %d: %v, want ErrDurability", i, err)
		}
	}
	if _, err := s.Load(LoadSpec{Table: "ev", Format: "csv"}, strings.NewReader("5,e\n")); err != nil {
		t.Fatalf("load after FailN exhausted: %v", err)
	}
}

// TestCheckpointFailpoint fails the snapshot write: Checkpoint must
// return the injected error, leave the WAL intact (nothing was made
// redundant), and succeed after the fault clears.
func TestCheckpointFailpoint(t *testing.T) {
	s, mgr := openPersistent(t, t.TempDir(), Config{Workers: 1})
	t.Cleanup(func() {
		s.Close()
		mgr.Close()
		faultinject.Reset()
	})
	if _, err := s.Load(LoadSpec{Table: "ev", Format: "csv", CreateSpec: "id:int64,name:string"},
		strings.NewReader("1,a\n2,b\n")); err != nil {
		t.Fatal(err)
	}
	walBefore := mgr.WALSize()
	if walBefore == 0 {
		t.Fatal("load produced no WAL")
	}

	boom := errors.New("injected: snapshot device full")
	faultinject.EnableError("persist/checkpoint", boom)
	if _, err := s.Checkpoint(); !errors.Is(err, boom) {
		t.Fatalf("checkpoint with failpoint: %v, want injected error", err)
	}
	if got := mgr.WALSize(); got != walBefore {
		t.Fatalf("failed checkpoint changed the WAL: %d -> %d bytes", walBefore, got)
	}

	faultinject.Disable("persist/checkpoint")
	info, err := s.Checkpoint()
	if err != nil {
		t.Fatalf("checkpoint after fault cleared: %v", err)
	}
	if info.SnapshotBytes == 0 {
		t.Fatalf("checkpoint info %+v", info)
	}
	if got := mgr.WALSize(); got != 0 {
		t.Fatalf("WAL not reset after successful checkpoint: %d bytes", got)
	}
}
