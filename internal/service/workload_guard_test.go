package service

import (
	"testing"
	"time"

	"repro/internal/exec/result"
	"repro/internal/exec/vector"
	"repro/internal/plan"
)

// TestCaptureOverheadGuard bounds what always-on workload capture costs
// the worst-placed query: the uncached vector engine, which cannot
// amortize footprint resolution at compile time and instead resolves it
// on every request (shape digest, access-list walk, counter lookup)
// before the atomic Record. The baseline below replicates the vector
// request path from the same primitives minus every capture addition;
// the service side runs the real path with capture always on. Same
// interleaved min-of-N discipline as TestDisarmedTraceOverheadGuard:
// a timing assertion with retries, not a proof, but it catches the
// capture layer growing a per-row or allocation-heavy cost.
func TestCaptureOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing guard skipped under -race (instrumented timings are not representative)")
	}
	const rows = 100_000
	q := DemoQuery(0.1)
	s := New(NewDemoDB(rows), Config{Workers: 0, MaxInFlight: 8})
	defer s.Close()
	// Warm once so lazily-registered metrics and the shape ring entry
	// exist on both sides of the comparison.
	if _, _, err := s.QueryEx(q, QueryOpts{Engine: "vector"}); err != nil {
		t.Fatal(err)
	}

	const iters = 20
	timeOnce := func(f func()) time.Duration {
		start := time.Now()
		for i := 0; i < iters; i++ {
			f()
		}
		return time.Since(start)
	}
	// baseline is the pre-capture vector request path verbatim: hash the
	// plan, admit, check + run the iterator tree under the read lock,
	// bump stats and the latency histogram. Shape digesting, access
	// collection, footprint resolution and Record are deliberately
	// absent — they are exactly what this guard prices.
	baseline := func() {
		e2e := time.Now()
		bkey, err := planKey(q)
		if err != nil {
			t.Fatal(err)
		}
		release, err := s.admit()
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		res, err := func() (*result.Set, error) {
			snap := s.core().Snapshot()
			defer snap.Release()
			if err := plan.Check(q, snap.Catalog()); err != nil {
				return nil, err
			}
			return vector.NewParallel(s.opt).Run(q, snap.Catalog()), nil
		}()
		if err != nil {
			t.Fatal(err)
		}
		s.stats.queries.Add(1)
		s.stats.rows.Add(int64(res.Len()))
		s.stats.execNanos.Add(time.Since(start).Nanoseconds())
		s.metrics.latOK.ObserveSince(e2e)
		release()
		_ = bkey
	}
	viaService := func() {
		if _, _, err := s.QueryEx(q, QueryOpts{Engine: "vector"}); err != nil {
			t.Fatal(err)
		}
	}
	const (
		rounds   = 7
		attempts = 5
		budget   = 1.02
	)
	for a := 1; ; a++ {
		best := [2]time.Duration{1 << 62, 1 << 62}
		for r := 0; r < rounds; r++ {
			if d := timeOnce(baseline); d < best[0] {
				best[0] = d
			}
			if d := timeOnce(viaService); d < best[1] {
				best[1] = d
			}
		}
		ratio := float64(best[1]) / float64(best[0])
		if ratio <= budget {
			t.Logf("attempt %d: capture/baseline = %.4f (baseline %v, with capture %v per %d queries)",
				a, ratio, best[0], best[1], iters)
			return
		}
		if a == attempts {
			t.Fatalf("vector path with capture is %.2f%% over the capture-free baseline (budget 2%%): baseline %v, with capture %v per %d queries",
				(ratio-1)*100, best[0], best[1], iters)
		}
	}
}

// BenchmarkCaptureOverhead isolates the capture layer's two costs on
// their respective paths: per-request footprint resolution (what the
// uncached vector path pays) and per-execution Record (what every
// cached jit execution pays).
func BenchmarkCaptureOverhead(b *testing.B) {
	q := DemoQuery(0.1)
	s := New(NewDemoDB(10_000), Config{Workers: 0})
	defer s.Close()
	if _, err := s.Query(q); err != nil {
		b.Fatal(err)
	}
	key, err := planKey(q)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("resolve", func(b *testing.B) {
		b.ReportAllocs()
		snap := s.core().Snapshot()
		defer snap.Release()
		cat := snap.Catalog()
		for i := 0; i < b.N; i++ {
			shape, shapeJSON := shapeOf(q, key)
			accs := vector.Accesses(q, cat)
			s.capture.Resolve(cat, accs, shape, shapeJSON, q)
		}
	})
	b.Run("record", func(b *testing.B) {
		b.ReportAllocs()
		db := s.core()
		snap := db.Snapshot()
		entry := s.lookup(q, cacheKey(db, snap.Epoch(), key))
		snap.Release()
		for i := 0; i < b.N; i++ {
			entry.fp.Record()
		}
	})
}
