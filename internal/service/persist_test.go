package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/exec/result"
	"repro/internal/expr"
	"repro/internal/persist"
	"repro/internal/plan"
	"repro/internal/storage"
)

// openPersistent builds a service over a persistence-backed DB.
func openPersistent(t *testing.T, dir string, cfg Config) (*DB, *persist.Manager) {
	t.Helper()
	db, mgr, err := persist.Open(persist.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s := New(db, cfg)
	s.AttachPersist(mgr, -1) // no automatic trigger: tests checkpoint explicitly
	return s, mgr
}

func TestServiceLoadCheckpointRecover(t *testing.T) {
	dir := t.TempDir()
	s, mgr := openPersistent(t, dir, Config{Workers: 1})

	// Create + load a table over the service API, as /load does.
	csv := "1,alpha,1.5\n2,beta,2.5\n3,alpha,3.5\n"
	res, err := s.Load(LoadSpec{
		Table: "ev", Format: "csv",
		CreateSpec: "id:int64,kind:string,score:float64",
		Layout:     "column",
	}, strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 3 || !res.Created {
		t.Fatalf("load result %+v", res)
	}
	// Second load appends without create.
	if _, err := s.Load(LoadSpec{Table: "ev", Format: "ndjson"},
		strings.NewReader(`[4, "gamma", null]`)); err != nil {
		t.Fatal(err)
	}

	q := plan.Scan{Table: "ev", Cols: []int{0, 1, 2}}
	want, err := s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if want.Len() != 4 {
		t.Fatalf("query returned %d rows, want 4", want.Len())
	}
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint insert rides the WAL.
	if _, err := s.Query(plan.Insert{Table: "ev", Rows: [][]storage.Word{
		{storage.EncodeInt(5), storage.Null, storage.EncodeFloat(9.9)},
	}}); err != nil {
		t.Fatal(err)
	}
	want, err = s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: rows, dict codes and query results must survive.
	s2, mgr2 := openPersistent(t, dir, Config{Workers: 1})
	defer s2.Close()
	defer mgr2.Close()
	got, err := s2.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !result.Equal(want, got) {
		t.Fatalf("recovered query differs: %d vs %d rows", want.Len(), got.Len())
	}
	rel := s2.Unwrap().Table("ev")
	if rel.StringOf(3, 1) != "gamma" || rel.StringOf(0, 1) != "alpha" {
		t.Fatal("recovered dictionary decodes wrong strings")
	}
	if rel.Layout.Kind() != "column" {
		t.Fatalf("recovered layout kind %q, want column", rel.Layout.Kind())
	}
}

func TestHTTPLoadQueryStringsAndCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, mgr := openPersistent(t, dir, Config{Workers: 1})
	defer s.Close()
	defer mgr.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	post := func(path, contentType, body string) (int, map[string]any) {
		t.Helper()
		resp, err := srv.Client().Post(srv.URL+path, contentType, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, m
	}

	code, m := post("/load?table=ev&format=csv&create=id:int64,kind:string", "text/csv",
		"1,alpha\n2,beta\n")
	if code != 200 || m["rows"].(float64) != 2 || m["created"] != true {
		t.Fatalf("load: %d %v", code, m)
	}

	// String columns come back as real strings now.
	code, m = post("/query", "application/json",
		`{"plan": {"op": "scan", "table": "ev", "cols": [0, 1]}}`)
	if code != 200 {
		t.Fatalf("query status %d: %v", code, m)
	}
	rows := m["rows"].([]any)
	if len(rows) != 2 {
		t.Fatalf("rows: %v", rows)
	}
	first := rows[0].([]any)
	if first[1] != "alpha" {
		t.Fatalf("string column decoded to %v (%T), want \"alpha\"", first[1], first[1])
	}

	code, m = post("/checkpoint", "application/json", "{}")
	if code != 200 || m["snapshotBytes"].(float64) <= 0 {
		t.Fatalf("checkpoint: %d %v", code, m)
	}

	// Bad loads are 400s with an explanation.
	code, m = post("/load?table=nope", "text/csv", "1\n")
	if code != 400 || !strings.Contains(m["error"].(string), "unknown table") {
		t.Fatalf("load into unknown table: %d %v", code, m)
	}
	code, _ = post("/load?table=ev&format=xml", "text/xml", "")
	if code != 400 {
		t.Fatalf("bad format accepted: %d", code)
	}
}

// TestFailedBatchDictGrowthSurvivesRecovery pins the dictionary-delta
// contract: string values appended by a batch that later fails to
// encode are in the in-memory dictionary, so they must reach the WAL —
// otherwise the next successful load's delta skips them and every later
// code shifts on replay.
func TestFailedBatchDictGrowthSurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	s, mgr := openPersistent(t, dir, Config{Workers: 1})

	if _, err := s.Load(LoadSpec{Table: "ev", Format: "csv", CreateSpec: "id:int64,kind:string"},
		strings.NewReader("1,alpha\n")); err != nil {
		t.Fatal(err)
	}
	// Row 1 appends "leaked" to the dictionary, row 2 fails to parse.
	if _, err := s.Load(LoadSpec{Table: "ev", Format: "csv"},
		strings.NewReader("2,leaked\nnot-an-int,beta\n")); err == nil {
		t.Fatal("malformed batch accepted")
	}
	// A later successful load adds another fresh value.
	if _, err := s.Load(LoadSpec{Table: "ev", Format: "csv"},
		strings.NewReader("3,after\n")); err != nil {
		t.Fatal(err)
	}
	want := append([]string(nil), s.Unwrap().Table("ev").Dicts[1].Values()...)
	s.Close()
	mgr.Close()

	s2, mgr2 := openPersistent(t, dir, Config{Workers: 1})
	defer s2.Close()
	defer mgr2.Close()
	rel := s2.Unwrap().Table("ev")
	got := rel.Dicts[1].Values()
	if len(got) != len(want) {
		t.Fatalf("recovered dict %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recovered dict %v, want %v (codes shifted)", got, want)
		}
	}
	// Row with code for "after" decodes correctly (rows: 1,alpha / 3,after).
	if rel.Rows() != 2 || rel.StringOf(1, 1) != "after" {
		t.Fatalf("rows=%d last kind=%q, want 2 and \"after\"", rel.Rows(), rel.StringOf(rel.Rows()-1, 1))
	}
}

func TestHTTPCheckpointWithoutPersistence(t *testing.T) {
	s := New(NewDemoDB(100), Config{Workers: 1})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := srv.Client().Post(srv.URL+"/checkpoint", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 409 {
		t.Fatalf("status %d, want 409", resp.StatusCode)
	}
}

// TestConcurrentQueriesDuringLoadAndCheckpoint exercises the lock
// coordination: queries (read lock) run while a bulk load (write lock,
// batch-wise) and checkpoints (read lock) proceed. Run under -race this
// also proves the dictionary's publish-on-append safety for the HTTP
// decode path.
func TestConcurrentQueriesDuringLoadAndCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, mgr := openPersistent(t, dir, Config{Workers: 2, MaxInFlight: 8})
	defer s.Close()
	defer mgr.Close()

	if _, err := s.Load(LoadSpec{Table: "ev", Format: "csv", CreateSpec: "id:int64,kind:string"},
		strings.NewReader("0,seed\n")); err != nil {
		t.Fatal(err)
	}

	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	writers.Add(1)
	go func() { // ingest stream with fresh dictionary values
		defer writers.Done()
		for i := 1; i < 40; i++ {
			var b bytes.Buffer
			for j := 0; j < 50; j++ {
				fmt.Fprintf(&b, "%d,kind-%d\n", i*100+j, i)
			}
			if _, err := s.Load(LoadSpec{Table: "ev", Format: "csv"}, &b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	writers.Add(1)
	go func() { // checkpoints overlap queries and loads
		defer writers.Done()
		for i := 0; i < 10; i++ {
			if _, err := s.Checkpoint(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			q := plan.Scan{
				Table:  "ev",
				Filter: expr.Cmp{Attr: 0, Op: expr.Ge, Val: storage.EncodeInt(0)},
				Cols:   []int{0, 1},
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := s.Query(q)
				if err != nil {
					t.Error(err)
					return
				}
				// Decode every string through the threaded dictionary,
				// as the HTTP layer does, concurrent with appends.
				for i, c := range res.Cols {
					if c.Type != storage.String || c.Dict == nil {
						continue
					}
					vals := c.Dict.Values()
					for _, row := range res.Rows {
						if row[i] != storage.Null && int(row[i]) >= len(vals) {
							t.Errorf("code %d outside published dictionary (%d values)", row[i], len(vals))
							return
						}
					}
				}
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	st := s.Stats()
	if st.LoadedRows != 1+39*50 {
		t.Fatalf("loaded %d rows, want %d", st.LoadedRows, 1+39*50)
	}
}
