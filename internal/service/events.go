package service

import (
	"log/slog"
	"strconv"
	"time"

	"repro/internal/obs"
)

// Cluster event journal: a bounded in-process ring of structured system
// events — role transitions, term changes, checkpoints, relayouts,
// replica resyncs, overload shedding, advisor warnings. The journal is
// the "what happened around the incident" complement to /metrics (which
// aggregates) and the logs (which scroll away): GET /events?since=N
// replays the recent sequence with term/epoch stamps, cheap enough to
// poll from a coordinator. Every append also mirrors to slog and bumps
// db_events_total{kind}.

// Event kinds recorded in the journal. The set is closed on purpose:
// bounded db_events_total{kind} cardinality, and consumers can switch on
// kinds without scraping message text.
const (
	EventPromote         = "promote"          // replica became primary
	EventDemote          = "demote"           // node re-pointed at a (new) primary
	EventFence           = "fence"            // primary superseded by a higher term
	EventTermAdopt       = "term-adopt"       // replica adopted a higher term from its primary
	EventCheckpointBegin = "checkpoint-begin" // snapshot write started
	EventCheckpointEnd   = "checkpoint-end"   // snapshot written, WAL rotated to a new epoch
	EventRelayout        = "relayout"         // OptimizeLayouts changed physical layouts
	EventResync          = "resync"           // replica (re-)bootstrapped from a snapshot
	EventOverload        = "overload"         // admission control shed load (rate-limited)
	EventDriftWarning    = "drift-warning"    // advisor priced layout drift over threshold
)

// Event appends a structured system event to the journal, stamped with
// the node's current term and the published catalog epoch, mirrors it to
// the structured log and counts it in db_events_total{kind}. Callers
// must not hold roleMu (the stamp reads the term through it).
func (s *DB) Event(kind, msg string, data map[string]string) {
	e := obs.Event{
		Kind:  kind,
		Term:  s.Term(),
		Epoch: s.core().Epoch(),
		Msg:   msg,
		Data:  data,
	}
	seq := s.journal.Append(e)
	s.metrics.reg.Counter("db_events_total",
		"System events appended to the journal, by kind.",
		obs.Labels{"kind": kind}).Inc()
	args := []any{
		slog.Uint64("seq", seq),
		slog.Uint64("term", e.Term),
		slog.Uint64("epoch", e.Epoch),
	}
	for k, v := range data {
		args = append(args, slog.String(k, v))
	}
	s.logger().Info("event: "+kind+": "+msg, args...)
}

// Events replays journal entries after the cursor (0 = from the oldest
// retained); see obs.Journal.Since for the cursor and eviction contract.
func (s *DB) Events(since uint64, limit int) (events []obs.Event, next uint64, evicted uint64) {
	return s.journal.Since(since, limit)
}

// Journal exposes the event ring (benchmarks and tests).
func (s *DB) Journal() *obs.Journal { return s.journal }

// noteOverload journals an overload event at most once per second —
// admission rejections come in bursts exactly when the node is least
// able to afford per-rejection work, so the journal records the episode,
// not every victim (db_queries_total{outcome="rejected"} has the count).
func (s *DB) noteOverload() {
	now := time.Now().UnixNano()
	last := s.lastOverload.Load()
	if now-last < int64(time.Second) || !s.lastOverload.CompareAndSwap(last, now) {
		return
	}
	s.Event(EventOverload, "admission queue timed out, shedding load", map[string]string{
		"maxInFlight": strconv.Itoa(cap(s.sem)),
		"rejected":    strconv.FormatInt(s.stats.rejected.Load(), 10),
	})
}
