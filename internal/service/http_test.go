package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/storage"
)

func newTestServer(t *testing.T) (*httptest.Server, *DB) {
	t.Helper()
	s := New(NewDemoDB(testRows), Config{Workers: 2})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		srv.Close()
		s.Close()
	})
	return srv, s
}

func post(t *testing.T, url string, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, out
}

func get(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, out
}

// demoQueryJSON is the human-written form of DemoQuery: typed constants
// instead of raw words.
func demoQueryJSON(threshold int) string {
	return fmt.Sprintf(`{"plan": {
		"op": "aggregate",
		"child": {
			"op": "scan", "table": "R",
			"filter": {"pred": "cmp", "attr": 0, "op": "<", "val": {"int": %d}},
			"cols": [1, 2, 3, 4]
		},
		"aggs": [
			{"agg": "sum", "arg": {"expr": "col", "attr": 0, "type": "int64"}, "name": "sum_b"},
			{"agg": "sum", "arg": {"expr": "col", "attr": 1, "type": "int64"}, "name": "sum_c"},
			{"agg": "sum", "arg": {"expr": "col", "attr": 2, "type": "int64"}, "name": "sum_d"},
			{"agg": "sum", "arg": {"expr": "col", "attr": 3, "type": "int64"}, "name": "sum_e"}
		]
	}}`, threshold)
}

func TestHTTPQuery(t *testing.T) {
	srv, s := newTestServer(t)

	resp, out := post(t, srv.URL+"/query", demoQueryJSON(10_000))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body = %v", resp.StatusCode, out)
	}
	if out["rowCount"].(float64) != 1 {
		t.Fatalf("rowCount = %v, want 1", out["rowCount"])
	}
	rows := out["rows"].([]any)
	row := rows[0].([]any)
	if len(row) != 4 {
		t.Fatalf("row arity = %d, want 4", len(row))
	}
	// Cross-check one value against the in-process path.
	want, err := s.Query(DemoQuery(0.01))
	if err != nil {
		t.Fatal(err)
	}
	direct := float64(storage.DecodeInt(want.Rows[0][0]))
	if row[0].(float64) != direct {
		t.Fatalf("sum_b over HTTP = %v, direct = %v", row[0], direct)
	}
}

func TestHTTPPrepareExec(t *testing.T) {
	srv, _ := newTestServer(t)

	resp, out := post(t, srv.URL+"/prepare", demoQueryJSON(50_000))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prepare status = %d, body = %v", resp.StatusCode, out)
	}
	id := out["id"].(string)
	if id == "" {
		t.Fatal("prepare returned no id")
	}
	if cols := out["cols"].([]any); len(cols) != 4 {
		t.Fatalf("prepare cols = %d, want 4", len(cols))
	}

	resp, out = post(t, srv.URL+"/exec", fmt.Sprintf(`{"id": %q}`, id))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exec status = %d, body = %v", resp.StatusCode, out)
	}
	if out["rowCount"].(float64) != 1 {
		t.Fatalf("exec rowCount = %v, want 1", out["rowCount"])
	}

	resp, out = post(t, srv.URL+"/exec", `{"id": "nope"}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown stmt status = %d, body = %v", resp.StatusCode, out)
	}
}

func TestHTTPValidationErrors(t *testing.T) {
	srv, _ := newTestServer(t)

	cases := []struct {
		body  string
		field string
	}{
		{`{"plan": {"op": "scan", "table": "nope", "cols": [0]}}`, "plan.table"},
		{`{"plan": {"op": "scan", "table": "R", "cols": [99]}}`, "plan.cols[0]"},
		{`{"plan": {"op": "teleport"}}`, "plan.op"},
		{`{"plan": {"op": "scan", "table": "R", "cols": [0], "filter": {"pred": "cmp", "attr": 0, "op": "!!", "val": {"int": 1}}}}`, "plan.filter.op"},
		{`{"plan": {"op": "aggregate", "child": {"op": "scan", "table": "R", "cols": [0, 1, 2, 3, 4]}, "groupBy": [0, 1, 2, 3, 4], "aggs": [{"agg": "count"}]}}`, "plan.groupBy"},
		{`{"plan": {"op": "scan", "table": "R", "cols": [0], "filter": {"pred": "inset", "attr": 0, "codes": [1], "space": 1000000000000}}}`, "plan.filter.space"},
	}
	for _, tc := range cases {
		resp, out := post(t, srv.URL+"/query", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d for %s, want 400", resp.StatusCode, tc.body)
		}
		if out["field"] != tc.field {
			t.Fatalf("error field = %v, want %s (body: %v)", out["field"], tc.field, out)
		}
	}

	// Non-JSON body.
	resp, _ := post(t, srv.URL+"/query", `not json`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("non-JSON body status = %d, want 400", resp.StatusCode)
	}
	// Wrong method.
	resp, err := http.Get(srv.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query status = %d, want 405", resp.StatusCode)
	}
}

func TestHTTPTablesAndStats(t *testing.T) {
	srv, _ := newTestServer(t)

	resp, out := get(t, srv.URL+"/tables")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tables status = %d", resp.StatusCode)
	}
	tables := out["tables"].([]any)
	if len(tables) != 1 || tables[0].(map[string]any)["name"] != "R" {
		t.Fatalf("tables = %v", out)
	}

	post(t, srv.URL+"/query", demoQueryJSON(1000))
	resp, out = get(t, srv.URL+"/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status = %d", resp.StatusCode)
	}
	if out["queries"].(float64) < 1 {
		t.Fatalf("stats queries = %v, want >= 1", out["queries"])
	}
}

func TestHTTPOptimize(t *testing.T) {
	srv, s := newTestServer(t)
	DemoWorkload(s.Unwrap())

	resp, out := post(t, srv.URL+"/optimize", `{}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize status = %d, body = %v", resp.StatusCode, out)
	}
	if _, ok := out["changes"]; !ok {
		t.Fatalf("optimize response missing changes: %v", out)
	}
	// Queries still work (and recompile) after the relayout.
	resp, out = post(t, srv.URL+"/query", demoQueryJSON(1000))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after optimize status = %d, body = %v", resp.StatusCode, out)
	}
}
