package service

import (
	"errors"
	"testing"
	"time"

	"repro/internal/exec/result"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/storage"
)

const testRows = 20_000

// reference runs p on a pristine serial copy of the demo database.
func reference(t testing.TB, rows int, ps ...plan.Node) []*result.Set {
	t.Helper()
	db := NewDemoDB(rows)
	out := make([]*result.Set, len(ps))
	for i, p := range ps {
		out[i] = db.Query(p)
	}
	return out
}

func TestServiceQueryMatchesDirect(t *testing.T) {
	queries := []plan.Node{
		DemoQuery(0.0001),
		DemoQuery(0.1),
		DemoQuery(1.0),
		plan.Scan{
			Table:  "R",
			Filter: expr.Cmp{Attr: 0, Op: expr.Lt, Val: storage.EncodeInt(500)},
			Cols:   []int{0, 5, 15},
		},
	}
	want := reference(t, testRows, queries...)

	s := New(NewDemoDB(testRows), Config{Workers: 4})
	defer s.Close()
	for i, q := range queries {
		res, err := s.Query(q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if !result.Equal(res, want[i]) {
			t.Fatalf("query %d: service result differs from direct serial execution", i)
		}
	}
}

// TestServicePlanCacheShapes: constant-varying repeats of one query create
// one cache entry each but collapse to a single normalized shape — the
// /stats signal for parameter-sweep cache blowup.
func TestServicePlanCacheShapes(t *testing.T) {
	s := New(NewDemoDB(testRows), Config{Workers: 1, PlanCacheSize: 8})
	defer s.Close()
	for i := 0; i < 5; i++ {
		if _, err := s.Query(DemoQuery(float64(i+1) * 0.01)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Query(plan.Scan{Table: "R", Cols: []int{0}}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.PlanCacheSize != 6 || st.PlanCacheShapes != 2 {
		t.Fatalf("cache size=%d shapes=%d, want 6 entries over 2 shapes", st.PlanCacheSize, st.PlanCacheShapes)
	}
	// Eviction must release shape counts: 8 more sweep variants overflow
	// the 8-entry LRU; every resident entry is a sweep variant afterwards.
	for i := 0; i < 8; i++ {
		if _, err := s.Query(DemoQuery(float64(i+1) * 0.001)); err != nil {
			t.Fatal(err)
		}
	}
	st = s.Stats()
	if st.PlanCacheSize != 8 || st.PlanCacheShapes != 1 {
		t.Fatalf("after eviction: size=%d shapes=%d, want 8 entries over 1 shape", st.PlanCacheSize, st.PlanCacheShapes)
	}
}

func TestServicePlanCache(t *testing.T) {
	s := New(NewDemoDB(testRows), Config{Workers: 2})
	defer s.Close()

	q := DemoQuery(0.01)
	for i := 0; i < 3; i++ {
		if _, err := s.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.PlanCacheMiss != 1 || st.PlanCacheHits != 2 {
		t.Fatalf("cache misses=%d hits=%d, want 1 and 2", st.PlanCacheMiss, st.PlanCacheHits)
	}

	// A catalog change must drop the compiled form.
	DemoWorkload(s.Unwrap())
	s.OptimizeLayouts()
	if _, err := s.Query(q); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.PlanCacheMiss != 2 {
		t.Fatalf("cache misses after relayout = %d, want 2", st.PlanCacheMiss)
	}

	// Equivalent plans arriving as JSON share the cache entry.
	data, err := plan.MarshalNode(q)
	if err != nil {
		t.Fatal(err)
	}
	before := s.Stats().PlanCacheHits
	if _, err := s.QueryJSON(data); err != nil {
		t.Fatal(err)
	}
	if after := s.Stats().PlanCacheHits; after != before+1 {
		t.Fatalf("JSON query did not hit the cache (hits %d -> %d)", before, after)
	}
}

func TestServicePrepareExec(t *testing.T) {
	want := reference(t, testRows, DemoQuery(0.05))[0]

	s := New(NewDemoDB(testRows), Config{Workers: 2})
	defer s.Close()

	st, err := s.Prepare(DemoQuery(0.05))
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Cols) != 4 {
		t.Fatalf("prepared cols = %d, want 4", len(st.Cols))
	}
	for i := 0; i < 2; i++ {
		res, err := s.Exec(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !result.Equal(res, want) {
			t.Fatal("prepared execution differs from direct serial execution")
		}
	}
	// Statements survive a relayout: the next Exec recompiles.
	DemoWorkload(s.Unwrap())
	s.OptimizeLayouts()
	res, err := s.Exec(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !result.Equal(res, want) {
		t.Fatal("prepared execution after relayout differs")
	}

	if _, err := s.Exec("nope"); err == nil {
		t.Fatal("unknown statement id did not error")
	}
	if !s.CloseStmt(st.ID) || s.CloseStmt(st.ID) {
		t.Fatal("CloseStmt bookkeeping wrong")
	}
	if _, err := s.Exec(st.ID); err == nil {
		t.Fatal("closed statement still executes")
	}
}

func TestServiceValidation(t *testing.T) {
	s := New(NewDemoDB(testRows), Config{Workers: 1})
	defer s.Close()

	_, err := s.Query(plan.Scan{Table: "missing", Cols: []int{0}})
	var fe *plan.FieldError
	if !errors.As(err, &fe) || fe.Field != "plan.table" {
		t.Fatalf("unknown table error = %v, want FieldError at plan.table", err)
	}
	if _, err := s.Prepare(plan.Scan{Table: "R", Cols: []int{99}}); err == nil {
		t.Fatal("Prepare accepted an out-of-range column")
	}
	if st := s.Stats(); st.Failed == 0 {
		t.Fatal("failed counter not incremented")
	}
}

func TestServiceInsert(t *testing.T) {
	s := New(NewDemoDB(testRows), Config{Workers: 2})
	defer s.Close()

	countPlan := plan.Aggregate{
		Child: plan.Scan{Table: "R", Cols: []int{0}},
		Aggs:  []expr.AggSpec{{Kind: expr.Count, Name: "n"}},
	}
	res, err := s.Query(countPlan)
	if err != nil {
		t.Fatal(err)
	}
	if got := storage.DecodeInt(res.Rows[0][0]); got != testRows {
		t.Fatalf("count = %d, want %d", got, testRows)
	}

	row := make([]storage.Word, 16)
	for i := range row {
		row[i] = storage.EncodeInt(int64(i))
	}
	if _, err := s.Query(plan.Insert{Table: "R", Rows: [][]storage.Word{row}}); err != nil {
		t.Fatal(err)
	}
	res, err = s.Query(countPlan)
	if err != nil {
		t.Fatal(err)
	}
	if got := storage.DecodeInt(res.Rows[0][0]); got != testRows+1 {
		t.Fatalf("count after insert = %d, want %d", got, testRows+1)
	}
	if _, err := s.Prepare(plan.Insert{Table: "R", Rows: [][]storage.Word{row}}); err == nil {
		t.Fatal("Prepare accepted an insert plan")
	}
}

func TestServiceAdmissionControl(t *testing.T) {
	s := New(NewDemoDB(1_000), Config{Workers: 1, MaxInFlight: 2, QueueTimeout: 30 * time.Millisecond})
	defer s.Close()

	// Fill both slots so the next query has to queue and time out.
	s.sem <- struct{}{}
	s.sem <- struct{}{}
	start := time.Now()
	_, err := s.Query(DemoQuery(0.01))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if waited := time.Since(start); waited < 30*time.Millisecond {
		t.Fatalf("rejected after %v, before the queue timeout", waited)
	}
	st := s.Stats()
	if st.Rejected != 1 || st.Queued != 1 {
		t.Fatalf("queued=%d rejected=%d, want 1 and 1", st.Queued, st.Rejected)
	}

	// Free a slot: the same query is admitted and runs.
	<-s.sem
	if _, err := s.Query(DemoQuery(0.01)); err != nil {
		t.Fatalf("query after slot freed: %v", err)
	}
}

func TestServiceInvalidPlansNotCached(t *testing.T) {
	s := New(NewDemoDB(1_000), Config{Workers: 1})
	defer s.Close()

	for i := 0; i < 5; i++ {
		if _, err := s.Query(plan.Scan{Table: "R", Cols: []int{0, 99}}); err == nil {
			t.Fatal("out-of-range column accepted")
		}
	}
	s.planMu.Lock()
	cached := s.plans.ll.Len()
	s.planMu.Unlock()
	if cached != 0 {
		t.Fatalf("%d failed-validation entries pinned in the plan cache", cached)
	}
}

func TestServicePlanCacheBounded(t *testing.T) {
	s := New(NewDemoDB(1_000), Config{Workers: 1})
	defer s.Close()

	// A constant sweep produces all-distinct cache keys — the pattern the
	// cap exists for.
	for i := 0; i < defaultPlanCacheSize+16; i++ {
		q := plan.Scan{
			Table:  "R",
			Filter: expr.Cmp{Attr: 0, Op: expr.Lt, Val: storage.EncodeInt(int64(i))},
			Cols:   []int{0},
		}
		if _, err := s.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	s.planMu.Lock()
	cached := s.plans.ll.Len()
	s.planMu.Unlock()
	if cached > defaultPlanCacheSize {
		t.Fatalf("plan cache grew to %d entries, cap is %d", cached, defaultPlanCacheSize)
	}
	if st := s.Stats(); st.PlanEvictions != 16 {
		t.Fatalf("PlanEvictions = %d, want 16", st.PlanEvictions)
	}
}

func TestServiceStmtRegistryBounded(t *testing.T) {
	s := New(NewDemoDB(1_000), Config{Workers: 1})
	defer s.Close()

	q := DemoQuery(0.01)
	var last *Stmt
	for i := 0; i < maxStmts; i++ {
		st, err := s.Prepare(q)
		if err != nil {
			t.Fatalf("prepare %d: %v", i, err)
		}
		last = st
	}
	if _, err := s.Prepare(q); err == nil {
		t.Fatalf("prepare %d succeeded past the registry cap", maxStmts)
	}
	// Closing a statement frees a slot.
	if !s.CloseStmt(last.ID) {
		t.Fatal("CloseStmt failed")
	}
	if _, err := s.Prepare(q); err != nil {
		t.Fatalf("prepare after close: %v", err)
	}
}

func TestLoadGenEmptyQueries(t *testing.T) {
	s := New(NewDemoDB(1_000), Config{Workers: 1})
	defer s.Close()
	rep := LoadGen{Clients: 2, Requests: 10}.Run(s)
	if rep.Requests != 0 || rep.Errors != 0 {
		t.Fatalf("empty mix report = %+v, want zero", rep)
	}
}

func TestServiceTables(t *testing.T) {
	s := New(NewDemoDB(testRows), Config{Workers: 1})
	defer s.Close()

	tables := s.Tables()
	if len(tables) != 1 || tables[0].Name != "R" {
		t.Fatalf("tables = %+v, want just R", tables)
	}
	if tables[0].Rows != testRows || len(tables[0].Attrs) != 16 {
		t.Fatalf("R reported as %d rows × %d attrs", tables[0].Rows, len(tables[0].Attrs))
	}
	if tables[0].Attrs[0].Name != "A" || tables[0].Attrs[0].Type != "int64" {
		t.Fatalf("attr 0 = %+v", tables[0].Attrs[0])
	}
}
