package service

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/storage"
)

// NewDemoDB builds a core.DB holding the paper's example relation
// R(A..P): 16 int64 attributes with A uniform over [0, 1e6) — the Figure 2
// fixture — so `A < s*1e6` has selectivity s. cmd/served, the examples and
// the throughput benchmark all serve this database.
func NewDemoDB(rows int) *core.DB {
	db := core.Open()
	LoadDemo(db, rows)
	return db
}

// LoadDemo creates the demo relation R on an existing (possibly
// persistence-backed) database.
func LoadDemo(db *core.DB, rows int) {
	attrs := make([]storage.Attribute, 16)
	for i := range attrs {
		attrs[i] = storage.Attribute{Name: string(rune('A' + i)), Type: storage.Int64}
	}
	b := storage.NewBuilder(storage.NewSchema("R", attrs...))
	rng := rand.New(rand.NewSource(1))
	for a := 0; a < 16; a++ {
		col := make([]int64, rows)
		for i := range col {
			if a == 0 {
				col[i] = rng.Int63n(1_000_000)
			} else {
				col[i] = rng.Int63n(1000)
			}
		}
		b.SetInts(a, col)
	}
	db.CreateTable(b)
}

// DemoQuery is the example query at a given selectivity:
// select sum(B),sum(C),sum(D),sum(E) from R where A < s*1e6.
func DemoQuery(selectivity float64) plan.Node {
	threshold := int64(selectivity * 1_000_000)
	return plan.Aggregate{
		Child: plan.Scan{
			Table:  "R",
			Filter: expr.Cmp{Attr: 0, Op: expr.Lt, Val: storage.EncodeInt(threshold)},
			Cols:   []int{1, 2, 3, 4},
		},
		Aggs: []expr.AggSpec{
			{Kind: expr.Sum, Arg: expr.IntCol(0), Name: "sum_b"},
			{Kind: expr.Sum, Arg: expr.IntCol(1), Name: "sum_c"},
			{Kind: expr.Sum, Arg: expr.IntCol(2), Name: "sum_d"},
			{Kind: expr.Sum, Arg: expr.IntCol(3), Name: "sum_e"},
		},
	}
}

// DemoWorkload declares the demo query mix on db (for OptimizeLayouts).
func DemoWorkload(db *core.DB) {
	db.AddWorkload("demo-low", DemoQuery(0.01), 0.7)
	db.AddWorkload("demo-high", DemoQuery(0.5), 0.3)
}
