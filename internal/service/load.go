package service

import (
	"errors"
	"fmt"
	"io"
	"log/slog"

	"repro/internal/persist"
	"repro/internal/storage"
)

// Bulk ingestion: the streaming counterpart of plan.Insert. Rows arrive
// as CSV or NDJSON, are parsed outside any lock, and enter the table
// batch-by-batch: each batch is one MVCC commit — dictionary encoding,
// WAL logging, copy-on-write insert and atomic publish under the commit
// mutex — so a gigabyte load publishes one version per batch, concurrent
// queries run lock-free on whichever version they pinned, and only other
// writers ever wait on a batch.

// loadBatchRows is the ingest batch size: large enough to amortize
// commit-mutex acquisition and WAL commit, small enough to bound how
// long other writers wait.
const loadBatchRows = 4096

// LoadSpec describes one bulk load.
type LoadSpec struct {
	// Table is the target table name.
	Table string
	// Format is "csv" or "ndjson".
	Format string
	// CreateSpec, when non-empty, creates the table first from a
	// "name:type,..." column list. Required if the table does not exist.
	CreateSpec string
	// Layout picks the created table's partitioning: "row" (default) or
	// "column".
	Layout string
	// QueryID, when non-empty, stamps the load's WAL commits (create and
	// every batch) with the request's correlation id for write tracing.
	QueryID string
}

// LoadResult reports a finished bulk load.
type LoadResult struct {
	Table   string `json:"table"`
	Rows    int    `json:"rows"`
	Created bool   `json:"created"`
}

// Load streams rows from r into a table. Creating the table (when
// CreateSpec is set) is DDL and is WAL-logged; every ingested batch is
// logged like an insert, so a crash mid-load recovers every committed
// batch. Queries run concurrently with the load and see the table grow
// batch-wise.
func (s *DB) Load(spec LoadSpec, r io.Reader) (LoadResult, error) {
	res := LoadResult{Table: spec.Table}
	if err := s.writeGuard(); err != nil {
		return res, err
	}
	if spec.Table == "" {
		return res, errors.New("service: load needs a table name")
	}
	if spec.Format != "csv" && spec.Format != "ndjson" {
		return res, fmt.Errorf("service: load format %q (want csv or ndjson)", spec.Format)
	}

	rel, created, err := s.loadTarget(spec)
	if err != nil {
		return res, err
	}
	res.Created = created

	var br persist.BatchReader
	if spec.Format == "csv" {
		br = persist.NewCSVReader(r, rel.Schema.Width())
	} else {
		br = persist.NewNDJSONReader(r, rel.Schema.Width())
	}

	width := rel.Schema.Width()
	for {
		raw, err := br.ReadBatch(loadBatchRows)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return res, err
		}
		if err := s.applyLoadBatch(spec.Table, width, raw, spec.QueryID); err != nil {
			return res, err
		}
		res.Rows += len(raw)
		// Check the WAL threshold per batch, not per load: a multi-GB
		// stream must checkpoint along the way (safe because each batch
		// releases the write lock).
		s.maybeCheckpointAsync()
	}
	s.stats.loads.Add(1)
	s.stats.loadedRows.Add(int64(res.Rows))
	return res, nil
}

// loadTarget resolves (or creates) the target relation. A create is a
// full MVCC commit: the table is WAL-logged from the transaction's
// private catalog first, then published — a logging failure leaves the
// catalog without the table, so the load is safe to retry.
func (s *DB) loadTarget(spec LoadSpec) (*storage.Relation, bool, error) {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	cat := s.core().Catalog()
	if cat.Has(spec.Table) {
		if spec.CreateSpec != "" {
			return nil, false, fmt.Errorf("service: table %q already exists, drop the create spec", spec.Table)
		}
		return cat.Table(spec.Table), false, nil
	}
	if spec.CreateSpec == "" {
		return nil, false, fmt.Errorf("service: unknown table %q (pass a create spec to create it)", spec.Table)
	}
	attrs, err := persist.ParseSchemaSpec(spec.CreateSpec)
	if err != nil {
		return nil, false, err
	}
	var layout storage.Layout
	switch spec.Layout {
	case "", "row":
		layout = storage.NSM(len(attrs))
	case "column":
		layout = storage.DSM(len(attrs))
	default:
		return nil, false, fmt.Errorf("service: load layout %q (want row or column)", spec.Layout)
	}
	rel := storage.NewRelation(storage.NewSchema(spec.Table, attrs...), layout)
	tx := s.core().BeginWrite()
	tx.AddTable(rel)
	if m := s.mgr(); m != nil {
		if spec.QueryID != "" {
			m.Tag(spec.QueryID)
		}
		if err := m.LogCreateTable(tx.Catalog(), spec.Table); err != nil {
			s.stats.persistErrs.Add(1)
			return nil, false, fmt.Errorf("%w: create not logged, table not created (safe to retry): %v", ErrDurability, err)
		}
	}
	tx.Commit()
	s.invalidate()
	return rel, true, nil
}

// applyLoadBatch encodes one parsed batch, WAL-logs it and commits it as
// one MVCC version under the commit mutex. The relation is re-resolved
// per batch in case a concurrent /optimize published a re-laid-out
// sibling (dictionaries are shared between versions, so codes stay
// consistent either way). Dictionary appends land in the shared,
// append-only dictionaries before the publish — harmless to concurrent
// readers, whose pinned rows only reference the pre-existing prefix.
func (s *DB) applyLoadBatch(table string, width int, raw [][]persist.Field, qid string) error {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	tx := s.core().BeginWrite()
	rel := tx.Catalog().Table(table)
	// Remember dictionary sizes: values appended by this batch's encoding
	// must be WAL-logged (insert records carry only codes).
	preDict := make([]int, width)
	for ai, d := range rel.Dicts {
		if d != nil {
			preDict[ai] = d.Len()
		}
	}
	rows, encErr := persist.EncodeRows(rel, raw)
	// Dictionary growth is logged even when encoding failed mid-batch:
	// the values appended before the failure are in the in-memory
	// dictionary, and the next batch's delta is computed against it — a
	// skipped delta would shift every later code on replay.
	if m := s.mgr(); m != nil {
		for ai, d := range rel.Dicts {
			if d == nil || d.Len() == preDict[ai] {
				continue
			}
			if err := m.LogDictAppend(table, ai, d.Values()[preDict[ai]:]); err != nil {
				s.stats.persistErrs.Add(1)
				return fmt.Errorf("%w: dictionary growth not logged: %v", ErrDurability, err)
			}
		}
	}
	if encErr != nil {
		return encErr
	}
	if m := s.mgr(); m != nil {
		if qid != "" {
			m.Tag(qid)
		}
		if err := m.LogInsert(table, width, rows); err != nil {
			s.stats.persistErrs.Add(1)
			return fmt.Errorf("%w: batch not logged, rows not applied (resume from rowsApplied): %v", ErrDurability, err)
		}
		// Coalescing can defer the commit past this batch, so only log a
		// stamped commit that actually carries this load's id.
		if seq, _, lqid := m.LastCommit(); qid != "" && lqid == qid {
			s.logger().Debug("wal commit",
				slog.String("id", qid),
				slog.Int64("commitSeq", seq),
				slog.String("table", table),
				slog.Int("rows", len(rows)))
		}
	}
	tx.Insert(table, rows)
	tx.Commit()
	s.invalidate()
	return nil
}
