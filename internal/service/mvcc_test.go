package service

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exec/result"
	"repro/internal/expr"
	"repro/internal/faultinject"
	"repro/internal/persist"
	"repro/internal/plan"
	"repro/internal/storage"
)

// countSum is the snapshot-consistency probe: count and sum of a table's
// single int64 column. Writers in these tests append consecutive values
// 0,1,2,... so every prefix-consistent state satisfies
// sum == cnt*(cnt-1)/2 — a torn read (rows from one version, more rows
// from a later one, or a half-applied batch) breaks the identity.
func countSum(t testing.TB, s *DB, table string) (cnt, sum int64) {
	t.Helper()
	res, err := s.Query(plan.Aggregate{
		Child: plan.Scan{Table: table, Cols: []int{0}},
		Aggs: []expr.AggSpec{
			{Kind: expr.Count, Name: "n"},
			{Kind: expr.Sum, Arg: expr.IntCol(0), Name: "s"},
		},
	})
	if err != nil {
		t.Fatalf("countSum(%s): %v", table, err)
	}
	return storage.DecodeInt(res.Rows[0][0]), storage.DecodeInt(res.Rows[0][1])
}

func checkPrefix(t testing.TB, cnt, sum int64, batch int64) {
	t.Helper()
	if want := cnt * (cnt - 1) / 2; sum != want {
		t.Errorf("torn read: %d rows sum %d, want %d", cnt, sum, want)
	}
	if batch > 0 && cnt%batch != 0 {
		t.Errorf("partial batch visible: %d rows is not a multiple of %d", cnt, batch)
	}
}

// TestServiceSnapshotConsistency is the MVCC race suite: concurrent
// inserts, bulk loads and re-layouts publish versions while readers
// hammer queries. Every read must observe a fully committed prefix
// (count a whole number of batches, sum matching the consecutive-values
// identity — i.e. row-identical to a serial run against its pinned
// epoch), results on the untouched demo table must stay bit-stable, and
// superseded versions must all be reclaimed once readers drain.
func TestServiceSnapshotConsistency(t *testing.T) {
	const demoRows = 20_000
	refQ := DemoQuery(0.1)
	want := reference(t, demoRows, refQ)[0]

	db := NewDemoDB(demoRows)
	DemoWorkload(db)
	s := New(db, Config{Workers: 4, MaxInFlight: 16})
	defer s.Close()
	if _, err := s.Load(LoadSpec{Table: "t", Format: "csv", CreateSpec: "v:int64"},
		strings.NewReader("")); err != nil {
		t.Fatal(err)
	}
	epoch0 := s.Stats().Epoch

	const (
		batch   = 50
		batches = 40
		readers = 6
	)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: alternate insert plans and bulk loads, values consecutive
		defer wg.Done()
		next := int64(0)
		for j := 0; j < batches; j++ {
			if j%2 == 0 {
				rows := make([][]storage.Word, batch)
				for i := range rows {
					rows[i] = []storage.Word{storage.EncodeInt(next)}
					next++
				}
				if _, err := s.Query(plan.Insert{Table: "t", Rows: rows}); err != nil {
					t.Errorf("insert batch %d: %v", j, err)
					return
				}
			} else {
				var b strings.Builder
				for i := 0; i < batch; i++ {
					fmt.Fprintf(&b, "%d\n", next)
					next++
				}
				if _, err := s.Load(LoadSpec{Table: "t", Format: "csv"},
					strings.NewReader(b.String())); err != nil {
					t.Errorf("load batch %d: %v", j, err)
					return
				}
			}
		}
	}()
	wg.Add(1)
	go func() { // relayouts on the demo table, concurrent with everything
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, err := s.OptimizeLayouts(); err != nil {
				t.Errorf("optimize %d: %v", i, err)
				return
			}
		}
	}()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			lastEpoch := uint64(0)
			for i := 0; i < 60; i++ {
				cnt, sum := countSum(t, s, "t")
				checkPrefix(t, cnt, sum, batch)
				// The untouched demo table stays bit-identical to serial.
				res, tr, err := s.QueryEx(refQ, QueryOpts{Explain: true})
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				if !result.Equal(res, want) {
					t.Errorf("reader %d: demo result drifted from serial reference", r)
					return
				}
				// Epochs observed by one goroutine never go backwards.
				if tr.Epoch < lastEpoch {
					t.Errorf("reader %d: epoch went backwards %d -> %d", r, lastEpoch, tr.Epoch)
					return
				}
				lastEpoch = tr.Epoch
			}
		}(r)
	}
	wg.Wait()

	cnt, sum := countSum(t, s, "t")
	checkPrefix(t, cnt, sum, batch)
	if cnt != batch*batches {
		t.Fatalf("final count %d, want %d", cnt, batch*batches)
	}
	st := s.Stats()
	if st.Epoch <= epoch0 {
		t.Fatalf("epoch did not advance: %d -> %d", epoch0, st.Epoch)
	}
	// Readers drained: every superseded version must have been reclaimed.
	if st.LiveVersions != 1 {
		t.Fatalf("reclaim backlog not drained: %d live versions", st.LiveVersions)
	}
	if st.VersionsReclaimed == 0 {
		t.Fatal("no versions reclaimed despite many commits")
	}
	if st.ActiveSnapshots != 0 {
		t.Fatalf("%d snapshots still pinned after drain", st.ActiveSnapshots)
	}
}

// TestQueriesDuringSlowWriterCommit holds a writer mid-commit on the WAL
// failpoint and asserts reads complete lock-free meanwhile: every query
// answers row-identical to the pinned (pre-write) epoch, and the write
// publishes only after the failpoint releases.
func TestQueriesDuringSlowWriterCommit(t *testing.T) {
	s, mgr := openPersistent(t, t.TempDir(), Config{Workers: 1})
	t.Cleanup(func() {
		s.Close()
		mgr.Close()
		faultinject.Reset()
	})
	if _, err := s.Load(LoadSpec{Table: "t", Format: "csv", CreateSpec: "v:int64"},
		strings.NewReader("0\n1\n2\n")); err != nil {
		t.Fatal(err)
	}
	preEpoch := s.Stats().Epoch

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	faultinject.Enable("persist/wal-commit", func() error {
		once.Do(func() {
			close(entered)
			<-release
		})
		return nil
	})

	writerDone := make(chan error, 1)
	go func() {
		_, err := s.Query(plan.Insert{Table: "t", Rows: [][]storage.Word{{storage.EncodeInt(3)}}})
		writerDone <- err
	}()
	<-entered // the writer is now stalled mid-commit, holding the commit mutex

	// Reads must neither block nor observe the in-flight write.
	for i := 0; i < 20; i++ {
		cnt, sum := countSum(t, s, "t")
		if cnt != 3 || sum != 3 {
			t.Fatalf("query %d saw the unpublished write: count %d sum %d", i, cnt, sum)
		}
		_, tr, err := s.QueryEx(plan.Scan{Table: "t", Cols: []int{0}}, QueryOpts{Explain: true})
		if err != nil {
			t.Fatal(err)
		}
		if tr.Epoch != preEpoch {
			t.Fatalf("query %d ran at epoch %d, want pinned pre-write epoch %d", i, tr.Epoch, preEpoch)
		}
	}
	select {
	case err := <-writerDone:
		t.Fatalf("writer finished while the failpoint held it: %v", err)
	default:
	}

	close(release)
	if err := <-writerDone; err != nil {
		t.Fatalf("stalled writer failed after release: %v", err)
	}
	if cnt, sum := countSum(t, s, "t"); cnt != 4 || sum != 6 {
		t.Fatalf("write lost after release: count %d sum %d", cnt, sum)
	}
	if got := s.Stats().Epoch; got != preEpoch+1 {
		t.Fatalf("epoch after commit %d, want %d", got, preEpoch+1)
	}
}

// TestWriteCommitsDuringSlowCheckpoint pins the checkpoint on its
// failpoint (which fires after the snapshot version and WAL position are
// taken, with no lock held) and asserts a write commits and serves while
// the snapshot file is "being written" — then reopens the directory to
// prove the write survived via the preserved WAL suffix, even though the
// snapshot file predates it.
func TestWriteCommitsDuringSlowCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, mgr := openPersistent(t, dir, Config{Workers: 1})
	closed := false
	t.Cleanup(func() {
		if !closed {
			s.Close()
			mgr.Close()
		}
		faultinject.Reset()
	})
	if _, err := s.Load(LoadSpec{Table: "t", Format: "csv", CreateSpec: "v:int64"},
		strings.NewReader("0\n1\n2\n")); err != nil {
		t.Fatal(err)
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	faultinject.Enable("persist/checkpoint", func() error {
		once.Do(func() {
			close(entered)
			<-release
		})
		return nil
	})

	ckptDone := make(chan error, 1)
	go func() {
		_, err := s.Checkpoint()
		ckptDone <- err
	}()
	<-entered // snapshot pinned, WAL position taken, checkpoint "writing"

	// A write commits mid-checkpoint: the commit mutex is free.
	if _, err := s.Query(plan.Insert{Table: "t", Rows: [][]storage.Word{{storage.EncodeInt(3)}}}); err != nil {
		t.Fatalf("insert during checkpoint: %v", err)
	}
	if cnt, sum := countSum(t, s, "t"); cnt != 4 || sum != 6 {
		t.Fatalf("write not visible during checkpoint: count %d sum %d", cnt, sum)
	}
	select {
	case err := <-ckptDone:
		t.Fatalf("checkpoint finished while failpoint held it: %v", err)
	default:
	}

	close(release)
	if err := <-ckptDone; err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	// The insert committed after the checkpoint position: its record must
	// have been carried into the successor WAL, not discarded.
	if mgr.WALSize() == 0 {
		t.Fatal("WAL empty after checkpoint — the mid-checkpoint write's record was dropped")
	}

	s.Close()
	mgr.Close()
	closed = true
	db2, mgr2, err := persist.Open(persist.Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer mgr2.Close()
	s2 := New(db2, Config{Workers: 1})
	defer s2.Close()
	if cnt, sum := countSum(t, s2, "t"); cnt != 4 || sum != 6 {
		t.Fatalf("recovery lost the mid-checkpoint write: count %d sum %d, want 4/6", cnt, sum)
	}
}

// TestReplicaQueryDuringLargeApply ships a large WAL chunk into a
// replica while queries run against it concurrently: ApplyReplicated
// builds the whole chunk into the next version and publishes atomically,
// so every concurrent read sees either none or all of the chunk — never
// a partially applied prefix.
func TestReplicaQueryDuringLargeApply(t *testing.T) {
	primary, pmgr := openPersistent(t, t.TempDir(), Config{Workers: 1})
	t.Cleanup(func() {
		primary.Close()
		pmgr.Close()
	})

	// Seed batch: values 0..99.
	var seed strings.Builder
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&seed, "%d\n", i)
	}
	if _, err := primary.Load(LoadSpec{Table: "t", Format: "csv", CreateSpec: "v:int64"},
		strings.NewReader(seed.String())); err != nil {
		t.Fatal(err)
	}
	tail1, err := pmgr.TailRead(pmgr.Epoch(), 0, 1<<30)
	if err != nil {
		t.Fatal(err)
	}

	// Large batch: values 100..20099 (several thousand WAL rows).
	const big = 20_000
	var bulk strings.Builder
	for i := 100; i < 100+big; i++ {
		fmt.Fprintf(&bulk, "%d\n", i)
	}
	if _, err := primary.Load(LoadSpec{Table: "t", Format: "csv"},
		strings.NewReader(bulk.String())); err != nil {
		t.Fatal(err)
	}
	tail2, err := pmgr.TailRead(pmgr.Epoch(), int64(len(tail1.Data)), 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail2.Data) == 0 {
		t.Fatal("no WAL bytes for the large batch")
	}

	replica := New(core.Open(), Config{Workers: 2, MaxInFlight: 8})
	defer replica.Close()
	replica.SetReadOnly("http://primary.invalid")
	if _, _, err := replica.ApplyReplicated(tail1.Data, pmgr.Epoch()); err != nil {
		t.Fatalf("applying seed chunk: %v", err)
	}
	if cnt, _ := countSum(t, replica, "t"); cnt != 100 {
		t.Fatalf("replica seed count %d, want 100", cnt)
	}

	var applying atomic.Bool
	applying.Store(true)
	applyDone := make(chan struct{})
	go func() {
		defer close(applyDone)
		defer applying.Store(false)
		consumed, applied, err := replica.ApplyReplicated(tail2.Data, pmgr.Epoch())
		if err != nil || consumed != len(tail2.Data) || applied == 0 {
			t.Errorf("large apply: consumed %d/%d applied %d err %v",
				consumed, len(tail2.Data), applied, err)
		}
	}()
	sawOld := 0
	for applying.Load() {
		cnt, sum := countSum(t, replica, "t")
		checkPrefix(t, cnt, sum, 0)
		if cnt != 100 && cnt != 100+big {
			t.Fatalf("replica read saw a half-applied chunk: %d rows", cnt)
		}
		if cnt == 100 {
			sawOld++
		}
	}
	<-applyDone
	if sawOld == 0 {
		t.Log("note: no read landed while the chunk applied (fast apply); atomicity still asserted")
	}
	if cnt, sum := countSum(t, replica, "t"); cnt != 100+big {
		t.Fatalf("replica final count %d sum %d, want %d", cnt, sum, 100+big)
	}
	// Local writes stay rejected throughout.
	if _, err := replica.Query(plan.Insert{Table: "t", Rows: [][]storage.Word{{storage.EncodeInt(1)}}}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("replica accepted a local write: %v", err)
	}
}

// TestMVCCSoak runs the full mix — bulk loads, inserts, queries,
// checkpoints and layout optimization — concurrently against one
// persistence-backed service. CI runs it under -race. Every read must
// satisfy the committed-prefix identity; every subsystem must finish
// error-free; the version backlog must drain.
func TestMVCCSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	db, mgr, err := persist.Open(persist.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	LoadDemo(db, 10_000)
	DemoWorkload(db)
	s := New(db, Config{Workers: 4, MaxInFlight: 16})
	s.AttachPersist(mgr, -1)
	t.Cleanup(func() {
		s.Close()
		mgr.Close()
	})
	if _, err := s.Load(LoadSpec{Table: "t", Format: "csv", CreateSpec: "v:int64"},
		strings.NewReader("")); err != nil {
		t.Fatal(err)
	}

	const (
		batch   = 100
		batches = 30
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // loader: consecutive values through the bulk path
		defer wg.Done()
		defer close(stop)
		next := int64(0)
		for j := 0; j < batches; j++ {
			var b strings.Builder
			for i := 0; i < batch; i++ {
				fmt.Fprintf(&b, "%d\n", next)
				next++
			}
			if _, err := s.Load(LoadSpec{Table: "t", Format: "csv"},
				strings.NewReader(b.String())); err != nil {
				t.Errorf("soak load %d: %v", j, err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // checkpoints racing the loads
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := s.Checkpoint(); err != nil {
				t.Errorf("soak checkpoint: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Add(1)
	go func() { // layout optimization racing both
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := s.OptimizeLayouts(); err != nil {
				t.Errorf("soak optimize: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				cnt, sum := countSum(t, s, "t")
				checkPrefix(t, cnt, sum, batch)
			}
		}()
	}
	wg.Wait()

	cnt, sum := countSum(t, s, "t")
	checkPrefix(t, cnt, sum, batch)
	if cnt != batch*batches {
		t.Fatalf("soak final count %d, want %d", cnt, batch*batches)
	}
	if st := s.Stats(); st.LiveVersions != 1 || st.ActiveSnapshots != 0 {
		t.Fatalf("soak left versions pinned: %d live, %d active snapshots",
			st.LiveVersions, st.ActiveSnapshots)
	}
}
