package service

import (
	"testing"
	"time"

	"repro/internal/exec/result"
)

// TestDisarmedTraceOverheadGuard bounds what observability costs a query
// that is not being observed: the full service path with tracing
// disarmed (nil-trace branches, latency histograms, slow-query check)
// must stay within 2% of the pre-observability request path — replicated
// below from the same primitives (key, admission, read lock, cache
// lookup, stats counters) minus every observability addition. The
// comparison interleaves min-of-N rounds so scheduling noise and thermal
// drift hit both sides alike, and retries before failing — a timing
// assertion, not a proof, but it catches a per-row cost sneaking into
// the disarmed path.
func TestDisarmedTraceOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing guard skipped under -race (instrumented timings are not representative)")
	}
	const rows = 100_000
	q := DemoQuery(0.1)
	s := New(NewDemoDB(rows), Config{Workers: 0, MaxInFlight: 8})
	defer s.Close()
	// The event journal is always on, and the history sampler runs hot
	// here: both must be invisible to the query path (the journal only
	// costs when an event fires; history is a pull from its own goroutine).
	s.StartHistory(time.Second)
	if _, err := s.Query(q); err != nil { // warm: compile + cache the plan
		t.Fatal(err)
	}

	const iters = 20
	timeOnce := func(f func()) time.Duration {
		start := time.Now()
		for i := 0; i < iters; i++ {
			f()
		}
		return time.Since(start)
	}
	// baseline is the seed request path verbatim: hash the plan, admit,
	// execute the cached compiled form under the read lock, bump the
	// stats counters. Everything the observability change added — e2e
	// timestamps, histogram observes, the armed check, trace threading —
	// is deliberately absent.
	baseline := func() {
		bkey, err := planKey(q)
		if err != nil {
			t.Fatal(err)
		}
		release, err := s.admit()
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		res := func() *result.Set {
			db := s.core()
			snap := db.Snapshot()
			defer snap.Release()
			return s.lookup(q, cacheKey(db, snap.Epoch(), bkey)).prep.Exec()
		}()
		s.stats.queries.Add(1)
		s.stats.rows.Add(int64(res.Len()))
		s.stats.execNanos.Add(time.Since(start).Nanoseconds())
		release()
	}
	viaService := func() {
		if _, err := s.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	const (
		rounds   = 7
		attempts = 5
		budget   = 1.02
	)
	for a := 1; ; a++ {
		best := [2]time.Duration{1 << 62, 1 << 62}
		for r := 0; r < rounds; r++ {
			if d := timeOnce(baseline); d < best[0] {
				best[0] = d
			}
			if d := timeOnce(viaService); d < best[1] {
				best[1] = d
			}
		}
		ratio := float64(best[1]) / float64(best[0])
		if ratio <= budget {
			t.Logf("attempt %d: service/baseline = %.4f (baseline %v, service %v per %d queries)",
				a, ratio, best[0], best[1], iters)
			return
		}
		if a == attempts {
			t.Fatalf("disarmed service path is %.2f%% over the pre-observability baseline (budget 2%%): baseline %v, service %v per %d queries",
				(ratio-1)*100, best[0], best[1], iters)
		}
	}
}

// BenchmarkTraceOverhead compares the same cached query disarmed, armed
// with a fresh trace per execution, and through the explain service
// path — ns/op differences are what EXPLAIN ANALYZE costs.
func BenchmarkTraceOverhead(b *testing.B) {
	const rows = 100_000
	q := DemoQuery(0.1)
	s := New(NewDemoDB(rows), Config{Workers: 0, MaxInFlight: 8})
	defer s.Close()
	if _, err := s.Query(q); err != nil {
		b.Fatal(err)
	}
	key, err := planKey(q)
	if err != nil {
		b.Fatal(err)
	}
	db := s.core()
	snap := db.Snapshot()
	entry := s.lookup(q, cacheKey(db, snap.Epoch(), key))
	snap.Release()
	prep := entry.prep

	b.Run("disarmed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			prep.Exec()
		}
	})
	b.Run("armed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := prep.NewTrace()
			prep.ExecTraced(tr)
		}
	})
	b.Run("service-explain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := s.QueryEx(q, QueryOpts{Explain: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
