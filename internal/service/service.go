// Package service turns the single-caller core.DB into a concurrent query
// service: many goroutines — typically HTTP handlers in cmd/served — issue
// queries simultaneously against one database, sharing one process-wide
// morsel-scheduler pool (par.Pool) so that concurrent scans interleave on
// the same workers instead of each spawning its own.
//
// The design follows the offline/online split of serving systems: validate
// and compile a plan once (the expensive, client-agnostic part), then
// answer many concurrent requests from the cached compiled form. Three
// mechanisms make that safe and bounded:
//
//   - MVCC snapshot isolation: every read pins the current catalog
//     version (core.DB.Snapshot) and runs lock-free against it for the
//     whole query, while writers — inserts, bulk loads, re-layouts,
//     replica WAL-apply — serialize on one commit mutex, build the next
//     version copy-on-write and publish it with a single atomic pointer
//     swap, so a re-layout never swaps a relation out from under a
//     running scan and readers never wait on writers;
//   - a prepared-plan cache keyed by (core id, epoch, canonical plan
//     JSON): compiled forms bake partition addresses in, so an entry is
//     only ever reused against the exact catalog version it was compiled
//     for; commits additionally drop the cache wholesale so stale-epoch
//     entries don't linger in the LRU;
//   - admission control: at most MaxInFlight queries execute at once,
//     excess requests queue up to QueueTimeout and are then rejected
//     with ErrOverloaded instead of piling onto the pool.
//
// Determinism is inherited from the engines: results are row-identical to
// a serial core.DB.Query of the same plan against the pinned version,
// which the race tests assert while inserts, loads and re-layouts publish
// new versions mid-flight.
package service

import (
	"container/list"
	"crypto/sha256"
	"errors"
	"fmt"
	"log/slog"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/exec/jit"
	"repro/internal/exec/par"
	"repro/internal/exec/result"
	"repro/internal/exec/vector"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/plan"
	"repro/internal/workload"
)

// ErrOverloaded reports that admission control rejected a request because
// MaxInFlight queries were already executing and none finished within
// QueueTimeout.
var ErrOverloaded = errors.New("service: overloaded (admission queue timed out)")

// ErrNoPersistence reports a durability operation (checkpoint) on a
// service with no data directory attached.
var ErrNoPersistence = errors.New("service: no persistence attached (start with a data directory)")

// ErrDurability marks a server-side persistence failure (WAL append or
// checkpoint I/O). Mutations log before they publish: a rejected insert
// or table create was NOT applied and is safe to retry. Bulk-load
// batches report how many rows committed so the stream can resume.
// HTTP maps these to 500, not 400 — the fault is the server's storage,
// not the request.
var ErrDurability = errors.New("service: durability failure")

// ErrReadOnly reports a local write (insert, bulk load, re-layout,
// checkpoint) on a read-only replica. The wrapped message names the
// primary the write belongs on; HTTP maps it to 409.
var ErrReadOnly = errors.New("service: read-only replica")

// ErrFenced reports a write on a fenced node: a primary that observed a
// higher replication term (a replica was promoted over it) and must not
// accept writes anymore, or split-brain would fork the history. The
// wrapped message names the superseding term (and primary, when known);
// HTTP maps it to 409.
var ErrFenced = errors.New("service: fenced stale primary")

// Config sizes the service.
type Config struct {
	// Workers is the shared pool's worker count: 0 means GOMAXPROCS,
	// 1 disables parallel scans (queries still run concurrently, each
	// serial). The pool is shared by every query the service executes.
	Workers int
	// MaxInFlight bounds concurrently executing queries; 0 means
	// 2 × pool workers (enough to keep the pool busy while some queries
	// sit in serial phases) — the queue holds the rest.
	MaxInFlight int
	// QueueTimeout is how long an admitted-over-capacity request waits
	// for a slot before ErrOverloaded; 0 means one second.
	QueueTimeout time.Duration
	// PlanCacheSize caps the compiled-plan LRU by entry count; 0 means
	// 1024. The whole cache is still dropped on DDL.
	PlanCacheSize int
}

// DB is a concurrency-safe serving wrapper around one core.DB. Create it
// with New, release pool workers with Close.
type DB struct {
	// dbPtr is the wrapped core; atomic because SwapCore (replica
	// bootstrap) replaces it wholesale at runtime. Readers pin an MVCC
	// snapshot off whatever core they load and stay consistent even if a
	// swap lands mid-query — the old core stays alive through their pins.
	dbPtr atomic.Pointer[core.DB]
	pool  *par.Pool
	opt   par.Options

	// commitMu serializes writers: inserts, bulk-load batches, layout
	// optimization, replica WAL-apply, core swaps, and the pin+position
	// step of a checkpoint. Each holds it while building the next catalog
	// version copy-on-write and publishing it (core.WriteTxn). Readers
	// never take it — they pin snapshots and run lock-free.
	commitMu sync.Mutex

	// plans caches compiled queries by canonical plan JSON in an LRU
	// capped by entry count. Entries are compiled at most once (the
	// entry's once), readers of the same plan share the compiled form,
	// and the whole cache is dropped when the catalog changes.
	planMu sync.Mutex
	plans  *planLRU

	stmtMu sync.Mutex
	stmts  map[string]*Stmt
	nextID atomic.Uint64

	sem          chan struct{}
	queueTimeout time.Duration

	// Durability (nil persist = in-memory only). Loggers run under
	// commitMu, before the version they describe publishes; Checkpoint
	// pins a snapshot under commitMu and then serializes it with no lock
	// held, so queries and writes both proceed while the snapshot file is
	// written. The pointer and the
	// threshold are atomic because failover changes them at runtime: a
	// promoted replica attaches fresh storage, a demoted primary detaches
	// its now-stale one.
	persistMgr    atomic.Pointer[persist.Manager]
	ckptThreshold atomic.Int64
	ckptMu        sync.Mutex  // serializes checkpoints
	ckptPending   atomic.Bool // one background checkpoint goroutine at a time

	// Replication role: primary or read-only replica, plus the fencing
	// term ordering primaries across failovers. Unlike the seed design
	// (set once before serving), the role changes at runtime — promotion
	// flips a replica writable, fencing freezes a superseded primary — so
	// every access goes through roleMu.
	roleMu sync.RWMutex
	role   roleState
	repl   replCounters

	stats statsCounters

	// Observability: the metric registry (built once in New), the
	// slow-query threshold in nanoseconds (0 = disarmed; non-zero also
	// arms tracing on every read so the logged operator numbers are
	// real), the structured logger, and the query-id sequence the HTTP
	// middleware draws X-Query-Id values from (client-supplied ids that
	// validate are kept instead).
	metrics   *svcMetrics
	slowNanos atomic.Int64
	logPtr    atomic.Pointer[slog.Logger]
	queryIDs  atomic.Uint64
	start     time.Time

	// Event journal (events.go): the bounded ring behind GET /events,
	// plus the once-per-second limiter on overload events. The metrics
	// history ring (history.go) lives behind GET /history; followers is
	// the primary's per-follower replication progress registry behind
	// GET /replication, fed by X-Repl-* ack headers on WAL tail polls.
	journal      *obs.Journal
	lastOverload atomic.Int64
	history      history
	followMu     sync.Mutex
	followMap    map[string]*followerInfo

	// Workload telemetry: always-on capture of per-column access
	// frequencies and plan-shape counts. Footprints are resolved once
	// per compilation (jit) or per request (vector, uncached by design);
	// the per-execution cost is Footprint.Record — atomic adds only.
	// The advisor (Advise, StartAdvisor) converts the captured mix into
	// the optimizer's declaration form and prices layout drift; it never
	// relays anything.
	capture       *workload.Capture
	heatTables    sync.Map // table name -> struct{}{}: heat metrics registered
	advisorWarn   atomic.Uint64
	advisorStop   chan struct{}
	advisorStopMu sync.Mutex
}

// roleState is the node's replication identity. term is the fencing
// token: it only ever rises, a promotion takes term+1, and a primary
// that observes a higher term than its own has been superseded and must
// fence itself (reject writes) instead of split-braining.
type roleState struct {
	readOnly   bool
	primaryURL string // replica: the primary it follows
	term       uint64
	fenced     bool
	fencedBy   string // superseding primary's URL, when known
}

// replCounters tracks replication state for /stats: the follower gauge
// on a primary, apply progress and lag on a replica.
type replCounters struct {
	followers  atomic.Int64 // primary: WAL tail streams currently connected
	epoch      atomic.Uint64
	offset     atomic.Int64
	records    atomic.Int64
	lagBytes   atomic.Int64
	lagRecords atomic.Int64
	syncs      atomic.Int64 // snapshot bootstraps (1 = initial, more = resyncs)
	retries    atomic.Int64 // replica: failed bootstrap/tail attempts that were retried
	state      atomic.Value // replica: tail-loop state machine (string)
	// visibleLagNanos is the replica's last measured commit-to-visible
	// lag: primary commit wall-clock time (shipped on the tail response)
	// to local apply-publish, 0 when unknown (no stamp covered the chunk).
	visibleLagNanos atomic.Int64
}

// planLRU is the compiled-plan cache: most recent at the list front,
// eviction from the back. Alongside the full-plan keys it tracks how many
// distinct normalized shapes (plan.Normalize — constants stripped) the
// entries collapse to: keys must embed constants because compiled forms
// bake them into their fused loops, so a parameter-sweeping workload costs
// one entry per distinct constant, and keys ≫ shapes is the signature of
// that blowup. All access is under planMu.
type planLRU struct {
	cap    int
	ll     *list.List
	m      map[string]*list.Element
	shapes map[string]int // normalized shape key → entries holding it
}

type planLRUEntry struct {
	key   string
	shape string
	entry *cachedPlan
}

func newPlanLRU(capacity int) *planLRU {
	if capacity <= 0 {
		capacity = defaultPlanCacheSize
	}
	return &planLRU{
		cap:    capacity,
		ll:     list.New(),
		m:      make(map[string]*list.Element, capacity),
		shapes: map[string]int{},
	}
}

// get returns the cached entry and marks it most recently used.
func (c *planLRU) get(key string) (*cachedPlan, bool) {
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*planLRUEntry).entry, true
}

// add inserts a new entry as most recently used and returns the number of
// entries evicted to stay within the cap.
func (c *planLRU) add(key, shape string, entry *cachedPlan) int {
	c.m[key] = c.ll.PushFront(&planLRUEntry{key: key, shape: shape, entry: entry})
	c.shapes[shape]++
	evicted := 0
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		kv := back.Value.(*planLRUEntry)
		c.ll.Remove(back)
		delete(c.m, kv.key)
		c.dropShape(kv.shape)
		evicted++
	}
	return evicted
}

// remove drops key if it still maps to entry.
func (c *planLRU) remove(key string, entry *cachedPlan) {
	if el, ok := c.m[key]; ok && el.Value.(*planLRUEntry).entry == entry {
		c.ll.Remove(el)
		delete(c.m, key)
		c.dropShape(el.Value.(*planLRUEntry).shape)
	}
}

func (c *planLRU) dropShape(shape string) {
	if n := c.shapes[shape] - 1; n > 0 {
		c.shapes[shape] = n
	} else {
		delete(c.shapes, shape)
	}
}

// clear drops everything (DDL invalidation).
func (c *planLRU) clear() {
	c.ll.Init()
	clear(c.m)
	clear(c.shapes)
}

type cachedPlan struct {
	once sync.Once
	prep *jit.Prepared
	err  error
	// shape/shapeJSON carry the normalized-plan identity from lookup to
	// the compile closure; fp is the workload-capture footprint resolved
	// alongside compilation, so every later execution records through
	// precomputed atomic-counter pointers.
	shape     string
	shapeJSON []byte
	fp        *workload.Footprint
}

// Stmt is a prepared statement handle: a validated plan bound to the
// service, executed through DB.Exec. The compiled form lives in the
// plan cache, so statements stay valid (and recompile transparently)
// across catalog changes.
type Stmt struct {
	ID   string
	Cols []plan.Column
	node plan.Node
	key  string
}

// New wraps db in a serving layer. The service owns a fresh shared pool
// sized by cfg.Workers and installs it on db (SetParOptions), so direct
// db.Query calls made while the service is idle use the same pool.
func New(db *core.DB, cfg Config) *DB {
	opt := par.Serial()
	var pool *par.Pool
	if cfg.Workers != 1 {
		pool = par.NewPool(cfg.Workers)
		opt = par.WithPool(pool)
	}
	db.SetParOptions(opt)
	inFlight := cfg.MaxInFlight
	if inFlight <= 0 {
		inFlight = 2 * opt.WorkerCount()
	}
	timeout := cfg.QueueTimeout
	if timeout <= 0 {
		timeout = time.Second
	}
	s := &DB{
		pool:         pool,
		opt:          opt,
		plans:        newPlanLRU(cfg.PlanCacheSize),
		stmts:        map[string]*Stmt{},
		sem:          make(chan struct{}, inFlight),
		queueTimeout: timeout,
		start:        time.Now(),
		capture:      workload.NewCapture(0),
		journal:      obs.NewJournal(obs.DefaultJournalSize),
		followMap:    map[string]*followerInfo{},
	}
	s.dbPtr.Store(db)
	// Every node starts at term 1; replicas adopt the primary's term on
	// bootstrap and a promotion takes term+1.
	s.role.term = 1
	s.initMetrics()
	return s
}

// AttachPersist wires a durability manager into the service: inserts,
// bulk loads and re-layout decisions are WAL-logged under the commit
// mutex, and a background checkpoint runs whenever the WAL exceeds
// walCheckpointBytes (0 means 64 MB; negative disables the automatic
// trigger — /checkpoint still works). Called before serving starts, and
// again by promotion when a replica becomes a durable primary.
func (s *DB) AttachPersist(m *persist.Manager, walCheckpointBytes int64) {
	if walCheckpointBytes == 0 {
		walCheckpointBytes = 64 << 20
	}
	s.ckptThreshold.Store(walCheckpointBytes)
	m.SetMetrics(s.metrics.fsyncSeconds, s.metrics.walAppended)
	s.persistMgr.Store(m)
}

// DetachPersist unhooks the durability manager — the demotion path: a
// primary that now follows someone else must stop logging, since its
// local snapshot+WAL no longer describe the authoritative history. It
// returns the detached manager for the caller to close.
func (s *DB) DetachPersist() *persist.Manager {
	return s.persistMgr.Swap(nil)
}

// mgr returns the attached durability manager (nil = in-memory only).
func (s *DB) mgr() *persist.Manager { return s.persistMgr.Load() }

// Close stops the advisor and history loops and the shared pool.
// In-flight queries finish (a closed pool degrades to inline serial
// execution); new queries keep working serially.
func (s *DB) Close() {
	s.StopAdvisor()
	s.StopHistory()
	if s.pool != nil {
		s.pool.Close()
	}
}

// Unwrap returns the wrapped core.DB for single-threaded setup (loading
// tables, declaring workloads) before serving starts.
func (s *DB) Unwrap() *core.DB { return s.core() }

// core returns the currently wrapped core.DB. Callers that need a
// consistent view load it once and pin a snapshot off that instance.
func (s *DB) core() *core.DB { return s.dbPtr.Load() }

// cacheKey scopes a plan digest to one catalog version: compiled plans
// bake partition addresses and dictionary bounds in, so an entry must
// never be reused across epochs — nor across cores (SwapCore restarts
// epochs at 1, which is why the process-unique core id is in the key).
func cacheKey(db *core.DB, epoch uint64, key string) string {
	return fmt.Sprintf("%d|%d|%s", db.ID(), epoch, key)
}

// admit reserves an execution slot, waiting up to the queue timeout.
func (s *DB) admit() (release func(), err error) {
	select {
	case s.sem <- struct{}{}:
	default:
		s.stats.queued.Add(1)
		wait := time.Now()
		t := time.NewTimer(s.queueTimeout)
		defer t.Stop()
		select {
		case s.sem <- struct{}{}:
			s.metrics.queueWait.ObserveSince(wait)
		case <-t.C:
			s.stats.rejected.Add(1)
			s.metrics.queueWait.ObserveSince(wait)
			s.noteOverload()
			return nil, ErrOverloaded
		}
	}
	s.stats.inFlight.Add(1)
	return func() {
		s.stats.inFlight.Add(-1)
		<-s.sem
	}, nil
}

// Query validates, compiles (or reuses) and executes a plan. Read plans
// run under the shared read lock; Insert plans take the write lock and
// invalidate the plan cache. Results are row-identical to core.DB.Query.
func (s *DB) Query(p plan.Node) (*result.Set, error) {
	key, err := planKey(p)
	if err != nil {
		return nil, err
	}
	return s.run(p, key)
}

// QueryJSON decodes a JSON-encoded plan and executes it; the decode error,
// if any, names the offending field.
func (s *DB) QueryJSON(data []byte) (*result.Set, error) {
	p, err := plan.UnmarshalNode(data)
	if err != nil {
		return nil, err
	}
	// The canonical re-encoding (not the client's bytes) keys the cache,
	// so formatting differences still hit the same entry.
	return s.Query(p)
}

// Prepare validates a plan and registers it as a statement. Compilation
// happens on first execution and is shared with identical ad-hoc queries.
func (s *DB) Prepare(p plan.Node) (*Stmt, error) {
	key, err := planKey(p)
	if err != nil {
		return nil, err
	}
	if _, ok := p.(plan.Insert); ok {
		return nil, fmt.Errorf("service: insert plans cannot be prepared")
	}
	snap := s.core().Snapshot()
	err = plan.Check(p, snap.Catalog())
	var cols []plan.Column
	if err == nil {
		cols = plan.Output(p, snap.Catalog())
	}
	snap.Release()
	if err != nil {
		return nil, err
	}
	st := &Stmt{
		ID:   fmt.Sprintf("s%d", s.nextID.Add(1)),
		Cols: cols,
		node: p,
		key:  key,
	}
	s.stmtMu.Lock()
	if len(s.stmts) >= maxStmts {
		s.stmtMu.Unlock()
		return nil, fmt.Errorf("service: %d prepared statements open, close some first", maxStmts)
	}
	s.stmts[st.ID] = st
	s.stmtMu.Unlock()
	s.stats.prepared.Add(1)
	return st, nil
}

// maxStmts bounds the statement registry. Unlike the plan cache, entries
// cannot be silently evicted — clients hold the ids — so Prepare rejects
// past the cap instead; each retained Stmt keeps its full decoded plan.
const maxStmts = 1024

// Stmt returns a registered statement by id.
func (s *DB) Stmt(id string) (*Stmt, bool) {
	s.stmtMu.Lock()
	defer s.stmtMu.Unlock()
	st, ok := s.stmts[id]
	return st, ok
}

// Exec executes a prepared statement by id.
func (s *DB) Exec(id string) (*result.Set, error) {
	st, ok := s.Stmt(id)
	if !ok {
		return nil, fmt.Errorf("service: unknown statement %q", id)
	}
	return s.run(st.node, st.key)
}

// CloseStmt drops a statement handle (the cached compiled form stays,
// shared with identical plans, until the next catalog change).
func (s *DB) CloseStmt(id string) bool {
	s.stmtMu.Lock()
	defer s.stmtMu.Unlock()
	if _, ok := s.stmts[id]; !ok {
		return false
	}
	delete(s.stmts, id)
	return true
}

// QueryOpts selects per-request execution options.
type QueryOpts struct {
	// Explain returns the per-operator execution trace alongside the
	// result (EXPLAIN ANALYZE: the plan runs for real, with counters).
	Explain bool
	// Engine picks the execution engine for read plans: "" or "jit"
	// (compiled, plan-cached — the default) or "vector" (batch-at-a-time
	// vectorized, uncached). Inserts ignore it.
	Engine string
	// QueryID is the request's correlation id (the X-Query-Id the HTTP
	// layer assigned or accepted). Inserts stamp it onto the WAL commit,
	// so the same id resurfaces in the primary's commit log line, the
	// shipped tail's headers and every replica's apply log line.
	QueryID string
}

// QueryEx is Query with options: it executes p and, when o.Explain is
// set, also returns the filled execution trace (nil for inserts run
// without tracing support, never nil for traced reads).
func (s *DB) QueryEx(p plan.Node, o QueryOpts) (*result.Set, *obs.QueryTrace, error) {
	key, err := planKey(p)
	if err != nil {
		return nil, nil, err
	}
	return s.runOpts(p, key, o)
}

// run is the shared execution path of Query and Exec.
func (s *DB) run(p plan.Node, key string) (*result.Set, error) {
	res, _, err := s.runOpts(p, key, QueryOpts{})
	return res, err
}

// runOpts admits, executes and accounts one request. The end-to-end
// latency histograms start before admission (queue wait is part of what
// the client sees); stats.execNanos keeps its historical meaning of
// time inside execution only.
func (s *DB) runOpts(p plan.Node, key string, o QueryOpts) (*result.Set, *obs.QueryTrace, error) {
	e2e := time.Now()
	release, err := s.admit()
	if err != nil {
		s.metrics.latRejected.ObserveSince(e2e)
		return nil, nil, err
	}
	defer release()
	start := time.Now()

	var res *result.Set
	var tr *obs.QueryTrace
	if _, ok := p.(plan.Insert); ok {
		res, err = s.runInsert(p, o.QueryID)
	} else {
		// A non-zero slow-query threshold arms tracing on every read, so
		// a query that turns out slow logs its real operator numbers.
		armed := o.Explain || s.slowNanos.Load() > 0
		res, tr, err = s.runRead(p, key, o.Engine, armed)
	}
	elapsed := time.Since(start)
	if err != nil {
		s.stats.failed.Add(1)
		s.metrics.latFailed.ObserveSince(e2e)
		return nil, nil, err
	}
	s.stats.queries.Add(1)
	s.stats.rows.Add(int64(res.Len()))
	s.stats.execNanos.Add(elapsed.Nanoseconds())
	s.metrics.latOK.ObserveSince(e2e)
	if slow := s.slowNanos.Load(); slow > 0 && elapsed.Nanoseconds() >= slow {
		s.logSlowQuery(p, elapsed, tr)
	}
	if !o.Explain {
		tr = nil
	}
	return res, tr, nil
}

// runRead executes a read plan on the selected engine, tracing when
// armed. The jit path is the cached default; "vector" compiles nothing
// and runs uncached, so it is the cross-check engine, not the fast one.
// Both pin an MVCC snapshot for the whole compile+execute and run
// lock-free against it: concurrent commits publish new versions without
// this query ever observing them.
func (s *DB) runRead(p plan.Node, key, engine string, armed bool) (*result.Set, *obs.QueryTrace, error) {
	switch engine {
	case "", "jit":
	case "vector":
		return s.runReadVector(p, key, armed)
	default:
		return nil, nil, fmt.Errorf("service: unknown engine %q (want \"jit\" or \"vector\")", engine)
	}
	db := s.core()
	snap := db.Snapshot()
	defer snap.Release()
	cat := snap.Catalog()
	ckey := cacheKey(db, snap.Epoch(), key)
	entry := s.lookup(p, ckey)
	entry.once.Do(func() {
		if err := plan.Check(p, cat); err != nil {
			entry.err = err
			return
		}
		entry.prep = jit.PrepareOpt(p, cat, s.opt)
		// Workload capture pays its resolution cost here, once per
		// compilation: every execution of this entry then records
		// through precomputed atomic-counter pointers.
		entry.fp = s.capture.Resolve(cat, entry.prep.Accesses(),
			entry.shape, entry.shapeJSON, p)
		s.registerHeat(entry.prep.Accesses())
	})
	if entry.err != nil {
		// Invalid plans are not worth a cache slot: a stream of distinct
		// bad requests must not pin memory.
		s.forget(ckey, entry)
		return nil, nil, entry.err
	}
	if !armed {
		res := entry.prep.Exec()
		entry.fp.Record()
		return res, nil, nil
	}
	tr := entry.prep.NewTrace()
	tr.Epoch = snap.Epoch()
	res := entry.prep.ExecTraced(tr)
	entry.fp.Record()
	return res, tr, nil
}

// runReadVector is the vectorized read path: pinned to one snapshot like
// the jit path, but never cached — each request builds its iterator tree
// from scratch, and likewise resolves its capture footprint per request
// (the price of the uncached engine, bounded by the same <2% guard as
// the jit path's per-exec Record).
func (s *DB) runReadVector(p plan.Node, key string, armed bool) (*result.Set, *obs.QueryTrace, error) {
	snap := s.core().Snapshot()
	defer snap.Release()
	cat := snap.Catalog()
	if err := plan.Check(p, cat); err != nil {
		return nil, nil, err
	}
	shape, shapeJSON := shapeOf(p, key)
	accs := vector.Accesses(p, cat)
	fp := s.capture.Resolve(cat, accs, shape, shapeJSON, p)
	s.registerHeat(accs)
	eng := vector.NewParallel(s.opt)
	if !armed {
		res := eng.Run(p, cat)
		fp.Record()
		return res, nil, nil
	}
	res, tr := eng.RunTraced(p, cat)
	tr.Epoch = snap.Epoch()
	fp.Record()
	return res, tr, nil
}

// runInsert applies a write plan under the commit mutex: it WAL-logs the
// rows first, then builds the next catalog version copy-on-write and
// publishes it atomically. A WAL failure therefore rejects the insert
// with nothing applied (safe to retry); concurrent readers on pinned
// snapshots never see the rows until the publish. The commit drops every
// cached plan — entries are epoch-keyed, so stale ones could never be
// reused, but without the flush they would linger in the LRU. A non-empty
// qid is stamped onto the WAL commit for end-to-end write tracing.
func (s *DB) runInsert(p plan.Node, qid string) (*result.Set, error) {
	if err := s.writeGuard(); err != nil {
		return nil, err
	}
	res, err := func() (*result.Set, error) {
		s.commitMu.Lock()
		defer s.commitMu.Unlock()
		tx := s.core().BeginWrite()
		if err := plan.Check(p, tx.Catalog()); err != nil {
			return nil, err
		}
		ins := p.(plan.Insert)
		if m := s.mgr(); m != nil {
			width := tx.Catalog().Table(ins.Table).Schema.Width()
			if qid != "" {
				m.Tag(qid)
			}
			if err := m.LogInsert(ins.Table, width, ins.Rows); err != nil {
				s.stats.persistErrs.Add(1)
				return nil, fmt.Errorf("%w: insert not logged, nothing applied (safe to retry): %v", ErrDurability, err)
			}
			// The coalescer may hold the rows back; only a commit that
			// actually carries this id gets the correlated log line.
			if seq, _, lqid := m.LastCommit(); qid != "" && lqid == qid {
				s.logger().Debug("wal commit",
					slog.String("id", qid),
					slog.Int64("commitSeq", seq),
					slog.String("table", ins.Table),
					slog.Int("rows", len(ins.Rows)))
			}
		}
		res := tx.Insert(ins.Table, ins.Rows)
		tx.Commit()
		s.invalidate()
		return res, nil
	}()
	if err == nil {
		s.maybeCheckpointAsync()
	}
	return res, err
}

// defaultPlanCacheSize bounds the plan cache between catalog changes, so
// a client streaming distinct plans (e.g. sweeping a filter constant)
// cannot grow service memory without bound. The cache is an optimization:
// an evicted plan just recompiles.
const defaultPlanCacheSize = 1024

// lookup returns the cache entry for key (already epoch-scoped by the
// caller via cacheKey), creating it if needed. Entries are created under
// planMu and compiled through their once. New entries are tagged
// with their normalized shape, computed outside the cache lock; misses pay
// one extra marshal, hits none.
func (s *DB) lookup(p plan.Node, key string) *cachedPlan {
	s.planMu.Lock()
	if entry, ok := s.plans.get(key); ok {
		s.planMu.Unlock()
		s.stats.planHits.Add(1)
		return entry
	}
	s.planMu.Unlock()
	shape, shapeJSON := shapeOf(p, key)

	s.planMu.Lock()
	defer s.planMu.Unlock()
	entry, ok := s.plans.get(key) // re-check: another miss may have raced us
	if ok {
		s.stats.planHits.Add(1)
		return entry
	}
	s.stats.planMisses.Add(1)
	entry = &cachedPlan{shape: shape, shapeJSON: shapeJSON}
	if evicted := s.plans.add(key, shape, entry); evicted > 0 {
		s.stats.planEvictions.Add(int64(evicted))
	}
	return entry
}

// shapeOf fingerprints the plan with constants normalized out and also
// returns the normalized encoding (the workload capture retains it for
// display). On a marshal failure the full key doubles as the shape —
// over-counting shapes is safer than conflating them.
func shapeOf(p plan.Node, fallback string) (string, []byte) {
	data, err := plan.MarshalNode(plan.Normalize(p))
	if err != nil {
		return fallback, nil
	}
	sum := sha256.Sum256(data)
	return string(sum[:]), data
}

// forget drops a cache entry that turned out not to be worth keeping
// (validation failures), if it is still the one the key maps to.
func (s *DB) forget(key string, entry *cachedPlan) {
	s.planMu.Lock()
	s.plans.remove(key, entry)
	s.planMu.Unlock()
}

// invalidate drops every cached plan. Called after a commit publishes a
// new catalog version (and on core swaps): epoch-scoped keys already
// prevent cross-version reuse, this just frees the dead entries.
func (s *DB) invalidate() {
	s.planMu.Lock()
	s.plans.clear()
	s.planMu.Unlock()
}

// OptimizeLayouts runs the layout optimizer under the commit mutex — the
// serving analogue of core.DB.OptimizeLayouts. Re-laid-out tables are
// materialized copy-on-write and publish in one atomic version swap, so
// queries running on pinned snapshots finish against the old partitions
// untouched. With persistence attached, each decision is WAL-logged
// before the publish so recovery re-applies the exact chosen layouts. A
// replica refuses: its layouts are the primary's, shipped via the WAL.
func (s *DB) OptimizeLayouts() ([]core.LayoutChange, error) {
	if err := s.writeGuard(); err != nil {
		return nil, err
	}
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	tx := s.core().BeginWrite()
	changes := tx.OptimizeLayouts()
	s.stats.relayouts.Add(1)
	if m := s.mgr(); m != nil {
		for _, ch := range changes {
			if err := m.LogRelayout(ch.Table, ch.New); err != nil {
				s.stats.persistErrs.Add(1)
			}
		}
	}
	if len(changes) > 0 {
		tx.Commit()
		s.invalidate()
		data := map[string]string{"tables": strconv.Itoa(len(changes))}
		for _, ch := range changes {
			data[ch.Table] = ch.Old.String() + "->" + ch.New.String()
		}
		s.Event(EventRelayout, "layout optimizer changed physical layouts", data)
	}
	return changes, nil
}

// Checkpoint snapshots the full catalog to the data directory and
// truncates the WAL to the records not yet in the snapshot. Only the
// setup holds the commit mutex — flushing the WAL, noting its committed
// position and pinning the current version; the snapshot file is then
// serialized from that pinned version with NO lock held, so both queries
// and writes proceed for the whole (possibly long) write. Writes that
// commit meanwhile land after the noted position and survive in the
// successor WAL. Concurrent checkpoints serialize.
func (s *DB) Checkpoint() (persist.CheckpointInfo, error) {
	if err := s.writeGuard(); err != nil {
		return persist.CheckpointInfo{}, err
	}
	m := s.mgr()
	if m == nil {
		return persist.CheckpointInfo{}, ErrNoPersistence
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	s.Event(EventCheckpointBegin, "checkpoint started", nil)
	s.commitMu.Lock()
	pos, err := m.BeginCheckpoint()
	if err != nil {
		s.commitMu.Unlock()
		s.stats.persistErrs.Add(1)
		return persist.CheckpointInfo{}, err
	}
	snap := s.core().Snapshot()
	s.commitMu.Unlock()
	defer snap.Release()
	start := time.Now()
	info, err := m.CheckpointFrom(snap.Catalog(), pos)
	if err != nil {
		s.stats.persistErrs.Add(1)
		return info, err
	}
	s.metrics.ckptSeconds.ObserveSince(start)
	s.stats.checkpoints.Add(1)
	s.Event(EventCheckpointEnd, "snapshot written, WAL rotated", map[string]string{
		"snapshotBytes":   strconv.FormatInt(info.SnapshotBytes, 10),
		"walBytesDropped": strconv.FormatInt(info.WALBytes, 10),
		"walEpoch":        strconv.FormatUint(m.Epoch(), 10),
	})
	return info, nil
}

// maybeCheckpointAsync starts a background checkpoint when the WAL has
// outgrown the configured threshold. At most one background checkpoint
// runs at a time; failures are counted, not fatal (the WAL still holds
// the data).
func (s *DB) maybeCheckpointAsync() {
	m := s.mgr()
	if m == nil || s.ckptThreshold.Load() <= 0 || m.WALSize() < s.ckptThreshold.Load() {
		return
	}
	if !s.ckptPending.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.ckptPending.Store(false)
		_, _ = s.Checkpoint()
	}()
}

// AddWorkload declares workload entries for the optimizer (commit mutex:
// it mutates the core's shared workload mix, which OptimizeLayouts reads
// under the same mutex).
func (s *DB) AddWorkload(name string, p plan.Node, frequency float64) {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	s.core().AddWorkload(name, p, frequency)
}

// TableInfo describes one served table.
type TableInfo struct {
	Name   string     `json:"name"`
	Rows   int        `json:"rows"`
	Layout string     `json:"layout"`
	Attrs  []AttrInfo `json:"attrs"`
}

// AttrInfo is one attribute of a served table.
type AttrInfo struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// Tables lists the catalog from a pinned snapshot.
func (s *DB) Tables() []TableInfo {
	snap := s.core().Snapshot()
	defer snap.Release()
	c := snap.Catalog()
	names := c.Names()
	out := make([]TableInfo, 0, len(names))
	for _, name := range names {
		rel := c.Table(name)
		attrs := make([]AttrInfo, rel.Schema.Width())
		for i, a := range rel.Schema.Attrs {
			attrs[i] = AttrInfo{Name: a.Name, Type: a.Type.String()}
		}
		out = append(out, TableInfo{
			Name:   name,
			Rows:   rel.Rows(),
			Layout: rel.Layout.Kind(),
			Attrs:  attrs,
		})
	}
	return out
}

// statsCounters are the service's atomic counters.
type statsCounters struct {
	queries       atomic.Int64
	failed        atomic.Int64
	queued        atomic.Int64
	rejected      atomic.Int64
	prepared      atomic.Int64
	planHits      atomic.Int64
	planMisses    atomic.Int64
	planEvictions atomic.Int64
	relayouts     atomic.Int64
	rows          atomic.Int64
	execNanos     atomic.Int64
	inFlight      atomic.Int64
	checkpoints   atomic.Int64
	persistErrs   atomic.Int64
	loads         atomic.Int64
	loadedRows    atomic.Int64
}

// Stats is a snapshot of the service counters.
type Stats struct {
	Queries       int64 `json:"queries"`            // successfully executed
	Failed        int64 `json:"failed"`             // validation/decode failures
	Queued        int64 `json:"queued"`             // waited for an admission slot
	Rejected      int64 `json:"rejected"`           // admission timeouts (ErrOverloaded)
	Prepared      int64 `json:"prepared"`           // Prepare calls
	PlanCacheHits int64 `json:"planCacheHits"`      // executions reusing a compiled plan
	PlanCacheMiss int64 `json:"planCacheMisses"`    // executions that compiled
	PlanEvictions int64 `json:"planCacheEvictions"` // LRU evictions (not DDL flushes)
	Relayouts     int64 `json:"relayouts"`          // OptimizeLayouts runs
	Rows          int64 `json:"rows"`               // total result rows served
	ExecNanos     int64 `json:"execNanos"`          // summed wall time inside execution
	InFlight      int64 `json:"inFlight"`           // currently executing

	// Derived latency summaries: interpolated quantiles over the
	// end-to-end histogram of successful queries since start (the same
	// estimate Prometheus histogram_quantile would give on
	// db_query_latency_seconds), plus the queue-wait p99. All zero until
	// the first query.
	LatencyP50Ms   float64 `json:"latencyP50Ms"`
	LatencyP95Ms   float64 `json:"latencyP95Ms"`
	LatencyP99Ms   float64 `json:"latencyP99Ms"`
	QueueWaitP99Ms float64 `json:"queueWaitP99Ms"`

	Workers        int   `json:"workers"`        // shared pool size (1 = serial)
	MaxInFlight    int   `json:"maxInFlight"`    // admission bound
	Persistent     bool  `json:"persistent"`     // durability attached
	WALBytes       int64 `json:"walBytes"`       // current WAL length (0 without persistence)
	Checkpoints    int64 `json:"checkpoints"`    // completed checkpoints
	PersistErrors  int64 `json:"persistErrors"`  // failed WAL/checkpoint operations
	Loads          int64 `json:"loads"`          // completed bulk loads
	LoadedRows     int64 `json:"loadedRows"`     // rows ingested by bulk loads
	PlanCacheSize  int   `json:"planCacheSize"`  // current entry count
	PlanCacheLimit int   `json:"planCacheLimit"` // LRU capacity
	// PlanCacheShapes counts the distinct constant-normalized plan shapes
	// behind the cached entries. Keys embed constants (compiled plans bake
	// them in), so size ≫ shapes means a parameter-sweeping workload is
	// churning the LRU with variants of few queries — the case parameter
	// binding would collapse.
	PlanCacheShapes int `json:"planCacheShapes"`

	// MVCC. Epoch is the currently published catalog version;
	// ActiveSnapshots counts pinned reader snapshots right now;
	// LiveVersions is the published version plus superseded versions
	// still awaiting reader drain (so LiveVersions-1 is the reclaim
	// backlog); VersionsReclaimed counts versions freed since start.
	Epoch             uint64 `json:"epoch"`
	ActiveSnapshots   int64  `json:"activeSnapshots"`
	LiveVersions      int    `json:"liveVersions"`
	VersionsReclaimed int64  `json:"versionsReclaimed"`

	// Replication. Role is "primary" or "replica"; a primary reports the
	// follower gauge, a replica its apply position and lag behind the
	// primary's committed WAL. Term is the fencing token ordering
	// primaries across failovers; a fenced node is a superseded primary
	// rejecting writes.
	Role                  string  `json:"role"`
	Term                  uint64  `json:"term"`                  // fencing term (promotion takes term+1)
	Fenced                bool    `json:"fenced"`                // superseded primary: writes rejected
	FencedBy              string  `json:"fencedBy,omitempty"`    // superseding primary, when known
	Followers             int64   `json:"followers"`             // primary: connected WAL tail streams
	ReplPrimary           string  `json:"replPrimary,omitempty"` // replica: the primary's URL
	ReplEpoch             uint64  `json:"replEpoch"`             // replica: epoch being applied
	ReplOffset            int64   `json:"replOffset"`            // replica: applied WAL offset (bytes)
	ReplRecords           int64   `json:"replRecords"`           // replica: applied mutation records
	ReplicationLagBytes   int64   `json:"replicationLagBytes"`   // replica: committed bytes not yet applied
	ReplicationLagRecords int64   `json:"replicationLagRecords"` // replica: records not yet applied
	ReplVisibleLagMs      float64 `json:"replVisibleLagMs"`      // replica: commit-to-visible lag, last measured (0 = unknown)
	ReplSyncs             int64   `json:"replSyncs"`             // replica: snapshot bootstraps (>1 = resyncs)
	ReplRetries           int64   `json:"replRetries"`           // replica: retried bootstrap/tail failures
	ReplState             string  `json:"replState,omitempty"`   // replica: tail-loop state machine
	PromoteEligible       bool    `json:"promoteEligible"`       // replica: primary unreachable past threshold
	Degraded              bool    `json:"degraded"`              // replica serving reads without a reachable primary
}

// Stats snapshots the counters.
func (s *DB) Stats() Stats {
	s.planMu.Lock()
	cacheLen, cacheCap, cacheShapes := s.plans.ll.Len(), s.plans.cap, len(s.plans.shapes)
	s.planMu.Unlock()
	st := Stats{
		Queries:         s.stats.queries.Load(),
		Failed:          s.stats.failed.Load(),
		Queued:          s.stats.queued.Load(),
		Rejected:        s.stats.rejected.Load(),
		Prepared:        s.stats.prepared.Load(),
		PlanCacheHits:   s.stats.planHits.Load(),
		PlanCacheMiss:   s.stats.planMisses.Load(),
		PlanEvictions:   s.stats.planEvictions.Load(),
		Relayouts:       s.stats.relayouts.Load(),
		Rows:            s.stats.rows.Load(),
		ExecNanos:       s.stats.execNanos.Load(),
		InFlight:        s.stats.inFlight.Load(),
		Workers:         s.opt.WorkerCount(),
		MaxInFlight:     cap(s.sem),
		Checkpoints:     s.stats.checkpoints.Load(),
		PersistErrors:   s.stats.persistErrs.Load(),
		Loads:           s.stats.loads.Load(),
		LoadedRows:      s.stats.loadedRows.Load(),
		PlanCacheSize:   cacheLen,
		PlanCacheLimit:  cacheCap,
		PlanCacheShapes: cacheShapes,
	}
	if snap := s.metrics.latOK.Snapshot(); snap.Count > 0 {
		st.LatencyP50Ms = snap.Quantile(0.5) * 1000
		st.LatencyP95Ms = snap.Quantile(0.95) * 1000
		st.LatencyP99Ms = snap.Quantile(0.99) * 1000
	}
	if snap := s.metrics.queueWait.Snapshot(); snap.Count > 0 {
		st.QueueWaitP99Ms = snap.Quantile(0.99) * 1000
	}
	db := s.core()
	st.Epoch = db.Epoch()
	st.ActiveSnapshots = db.ActiveSnapshots()
	st.LiveVersions = db.LiveVersions()
	st.VersionsReclaimed = db.VersionsReclaimed()
	if m := s.mgr(); m != nil {
		st.Persistent = true
		st.WALBytes = m.WALSize()
	}
	s.roleMu.RLock()
	role := s.role
	s.roleMu.RUnlock()
	st.Role = "primary"
	st.Term = role.term
	st.Fenced = role.fenced
	st.FencedBy = role.fencedBy
	st.Followers = s.repl.followers.Load()
	if role.readOnly {
		st.Role = "replica"
		st.ReplPrimary = role.primaryURL
		st.ReplEpoch = s.repl.epoch.Load()
		st.ReplOffset = s.repl.offset.Load()
		st.ReplRecords = s.repl.records.Load()
		st.ReplicationLagBytes = s.repl.lagBytes.Load()
		st.ReplicationLagRecords = s.repl.lagRecords.Load()
		st.ReplVisibleLagMs = float64(s.repl.visibleLagNanos.Load()) / 1e6
	}
	st.ReplSyncs = s.repl.syncs.Load()
	st.ReplRetries = s.repl.retries.Load()
	if state, ok := s.repl.state.Load().(string); ok {
		st.ReplState = state
		st.PromoteEligible = state == ReplStatePromoteEligible
		st.Degraded = state == ReplStateDegraded || state == ReplStatePromoteEligible
	}
	return st
}

// planKey computes the cache key: a digest of the plan's canonical JSON
// encoding. Hashing keeps per-entry key memory constant — remote plans
// can be megabytes — while equivalent plans still collide onto one entry.
func planKey(p plan.Node) (string, error) {
	data, err := plan.MarshalNode(p)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return string(sum[:]), nil
}
