// Package service turns the single-caller core.DB into a concurrent query
// service: many goroutines — typically HTTP handlers in cmd/served — issue
// queries simultaneously against one database, sharing one process-wide
// morsel-scheduler pool (par.Pool) so that concurrent scans interleave on
// the same workers instead of each spawning its own.
//
// The design follows the offline/online split of serving systems: validate
// and compile a plan once (the expensive, client-agnostic part), then
// answer many concurrent requests from the cached compiled form. Three
// mechanisms make that safe and bounded:
//
//   - a catalog RWMutex: queries share a read lock; layout optimization,
//     inserts and other DDL-like operations take the write lock, so a
//     re-layout never swaps a relation out from under a running scan;
//   - a prepared-plan cache keyed by the plan's canonical JSON encoding,
//     invalidated wholesale when the write lock changes the catalog;
//   - admission control: at most MaxInFlight queries execute at once,
//     excess requests queue up to QueueTimeout and are then rejected
//     with ErrOverloaded instead of piling onto the pool.
//
// Determinism is inherited from the engines: results are row-identical to
// a serial core.DB.Query of the same plan, which the race tests assert
// while layouts are being re-optimized mid-flight.
package service

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/exec/jit"
	"repro/internal/exec/par"
	"repro/internal/exec/result"
	"repro/internal/plan"
)

// ErrOverloaded reports that admission control rejected a request because
// MaxInFlight queries were already executing and none finished within
// QueueTimeout.
var ErrOverloaded = errors.New("service: overloaded (admission queue timed out)")

// Config sizes the service.
type Config struct {
	// Workers is the shared pool's worker count: 0 means GOMAXPROCS,
	// 1 disables parallel scans (queries still run concurrently, each
	// serial). The pool is shared by every query the service executes.
	Workers int
	// MaxInFlight bounds concurrently executing queries; 0 means
	// 2 × pool workers (enough to keep the pool busy while some queries
	// sit in serial phases) — the queue holds the rest.
	MaxInFlight int
	// QueueTimeout is how long an admitted-over-capacity request waits
	// for a slot before ErrOverloaded; 0 means one second.
	QueueTimeout time.Duration
}

// DB is a concurrency-safe serving wrapper around one core.DB. Create it
// with New, release pool workers with Close.
type DB struct {
	db   *core.DB
	pool *par.Pool
	opt  par.Options

	// catalogMu is the catalog guard: queries hold it for reading during
	// compile + execute; OptimizeLayouts and Insert hold it for writing.
	catalogMu sync.RWMutex

	// plans caches compiled queries by canonical plan JSON. Entries are
	// compiled at most once (the entry's once), readers of the same plan
	// share the compiled form, and the whole map is dropped when the
	// catalog changes.
	planMu sync.Mutex
	plans  map[string]*cachedPlan

	stmtMu sync.Mutex
	stmts  map[string]*Stmt
	nextID atomic.Uint64

	sem          chan struct{}
	queueTimeout time.Duration

	stats statsCounters
}

type cachedPlan struct {
	once sync.Once
	prep *jit.Prepared
	err  error
}

// Stmt is a prepared statement handle: a validated plan bound to the
// service, executed through DB.Exec. The compiled form lives in the
// plan cache, so statements stay valid (and recompile transparently)
// across catalog changes.
type Stmt struct {
	ID   string
	Cols []plan.Column
	node plan.Node
	key  string
}

// New wraps db in a serving layer. The service owns a fresh shared pool
// sized by cfg.Workers and installs it on db (SetParOptions), so direct
// db.Query calls made while the service is idle use the same pool.
func New(db *core.DB, cfg Config) *DB {
	opt := par.Serial()
	var pool *par.Pool
	if cfg.Workers != 1 {
		pool = par.NewPool(cfg.Workers)
		opt = par.WithPool(pool)
	}
	db.SetParOptions(opt)
	inFlight := cfg.MaxInFlight
	if inFlight <= 0 {
		inFlight = 2 * opt.WorkerCount()
	}
	timeout := cfg.QueueTimeout
	if timeout <= 0 {
		timeout = time.Second
	}
	return &DB{
		db:           db,
		pool:         pool,
		opt:          opt,
		plans:        map[string]*cachedPlan{},
		stmts:        map[string]*Stmt{},
		sem:          make(chan struct{}, inFlight),
		queueTimeout: timeout,
	}
}

// Close stops the shared pool. In-flight queries finish (a closed pool
// degrades to inline serial execution); new queries keep working serially.
func (s *DB) Close() {
	if s.pool != nil {
		s.pool.Close()
	}
}

// Unwrap returns the wrapped core.DB for single-threaded setup (loading
// tables, declaring workloads) before serving starts.
func (s *DB) Unwrap() *core.DB { return s.db }

// admit reserves an execution slot, waiting up to the queue timeout.
func (s *DB) admit() (release func(), err error) {
	select {
	case s.sem <- struct{}{}:
	default:
		s.stats.queued.Add(1)
		t := time.NewTimer(s.queueTimeout)
		defer t.Stop()
		select {
		case s.sem <- struct{}{}:
		case <-t.C:
			s.stats.rejected.Add(1)
			return nil, ErrOverloaded
		}
	}
	s.stats.inFlight.Add(1)
	return func() {
		s.stats.inFlight.Add(-1)
		<-s.sem
	}, nil
}

// Query validates, compiles (or reuses) and executes a plan. Read plans
// run under the shared read lock; Insert plans take the write lock and
// invalidate the plan cache. Results are row-identical to core.DB.Query.
func (s *DB) Query(p plan.Node) (*result.Set, error) {
	key, err := planKey(p)
	if err != nil {
		return nil, err
	}
	return s.run(p, key)
}

// QueryJSON decodes a JSON-encoded plan and executes it; the decode error,
// if any, names the offending field.
func (s *DB) QueryJSON(data []byte) (*result.Set, error) {
	p, err := plan.UnmarshalNode(data)
	if err != nil {
		return nil, err
	}
	// The canonical re-encoding (not the client's bytes) keys the cache,
	// so formatting differences still hit the same entry.
	return s.Query(p)
}

// Prepare validates a plan and registers it as a statement. Compilation
// happens on first execution and is shared with identical ad-hoc queries.
func (s *DB) Prepare(p plan.Node) (*Stmt, error) {
	key, err := planKey(p)
	if err != nil {
		return nil, err
	}
	if _, ok := p.(plan.Insert); ok {
		return nil, fmt.Errorf("service: insert plans cannot be prepared")
	}
	s.catalogMu.RLock()
	err = plan.Check(p, s.db.Catalog())
	var cols []plan.Column
	if err == nil {
		cols = plan.Output(p, s.db.Catalog())
	}
	s.catalogMu.RUnlock()
	if err != nil {
		return nil, err
	}
	st := &Stmt{
		ID:   fmt.Sprintf("s%d", s.nextID.Add(1)),
		Cols: cols,
		node: p,
		key:  key,
	}
	s.stmtMu.Lock()
	if len(s.stmts) >= maxStmts {
		s.stmtMu.Unlock()
		return nil, fmt.Errorf("service: %d prepared statements open, close some first", maxStmts)
	}
	s.stmts[st.ID] = st
	s.stmtMu.Unlock()
	s.stats.prepared.Add(1)
	return st, nil
}

// maxStmts bounds the statement registry. Unlike the plan cache, entries
// cannot be silently evicted — clients hold the ids — so Prepare rejects
// past the cap instead; each retained Stmt keeps its full decoded plan.
const maxStmts = 1024

// Stmt returns a registered statement by id.
func (s *DB) Stmt(id string) (*Stmt, bool) {
	s.stmtMu.Lock()
	defer s.stmtMu.Unlock()
	st, ok := s.stmts[id]
	return st, ok
}

// Exec executes a prepared statement by id.
func (s *DB) Exec(id string) (*result.Set, error) {
	st, ok := s.Stmt(id)
	if !ok {
		return nil, fmt.Errorf("service: unknown statement %q", id)
	}
	return s.run(st.node, st.key)
}

// CloseStmt drops a statement handle (the cached compiled form stays,
// shared with identical plans, until the next catalog change).
func (s *DB) CloseStmt(id string) bool {
	s.stmtMu.Lock()
	defer s.stmtMu.Unlock()
	if _, ok := s.stmts[id]; !ok {
		return false
	}
	delete(s.stmts, id)
	return true
}

// run is the shared execution path of Query and Exec.
func (s *DB) run(p plan.Node, key string) (*result.Set, error) {
	release, err := s.admit()
	if err != nil {
		return nil, err
	}
	defer release()
	start := time.Now()

	var res *result.Set
	if _, ok := p.(plan.Insert); ok {
		res, err = s.runInsert(p)
	} else {
		res, err = s.runRead(p, key)
	}
	if err != nil {
		s.stats.failed.Add(1)
		return nil, err
	}
	s.stats.queries.Add(1)
	s.stats.rows.Add(int64(res.Len()))
	s.stats.execNanos.Add(time.Since(start).Nanoseconds())
	return res, nil
}

func (s *DB) runRead(p plan.Node, key string) (*result.Set, error) {
	s.catalogMu.RLock()
	defer s.catalogMu.RUnlock()
	entry := s.lookup(key)
	entry.once.Do(func() {
		if err := plan.Check(p, s.db.Catalog()); err != nil {
			entry.err = err
			return
		}
		entry.prep = jit.PrepareOpt(p, s.db.Catalog(), s.opt)
	})
	if entry.err != nil {
		// Invalid plans are not worth a cache slot: a stream of distinct
		// bad requests must not pin memory.
		s.forget(key, entry)
		return nil, entry.err
	}
	return entry.prep.Exec(), nil
}

// runInsert applies a write plan under the exclusive lock. The mutation
// invalidates every cached plan (materialized build sides and compiled
// slice accessors may reference the grown table).
func (s *DB) runInsert(p plan.Node) (*result.Set, error) {
	s.catalogMu.Lock()
	defer s.catalogMu.Unlock()
	if err := plan.Check(p, s.db.Catalog()); err != nil {
		return nil, err
	}
	res := s.db.Query(p)
	s.invalidate()
	return res, nil
}

// maxCachedPlans bounds the plan cache between catalog changes, so a
// client streaming distinct plans (e.g. sweeping a filter constant)
// cannot grow service memory without bound. Eviction is arbitrary-entry:
// the cache is an optimization, and any evicted plan just recompiles.
const maxCachedPlans = 1024

// lookup returns the cache entry for key, creating it if needed. The
// caller must hold the catalog lock (read is enough: entries are created
// under planMu and compiled through their once).
func (s *DB) lookup(key string) *cachedPlan {
	s.planMu.Lock()
	defer s.planMu.Unlock()
	entry, ok := s.plans[key]
	if ok {
		s.stats.planHits.Add(1)
	} else {
		s.stats.planMisses.Add(1)
		if len(s.plans) >= maxCachedPlans {
			for k := range s.plans {
				delete(s.plans, k)
				break
			}
		}
		entry = &cachedPlan{}
		s.plans[key] = entry
	}
	return entry
}

// forget drops a cache entry that turned out not to be worth keeping
// (validation failures), if it is still the one the key maps to.
func (s *DB) forget(key string, entry *cachedPlan) {
	s.planMu.Lock()
	if s.plans[key] == entry {
		delete(s.plans, key)
	}
	s.planMu.Unlock()
}

// invalidate drops every cached plan. Callers hold the write lock.
func (s *DB) invalidate() {
	s.planMu.Lock()
	s.plans = map[string]*cachedPlan{}
	s.planMu.Unlock()
}

// OptimizeLayouts runs the layout optimizer under the exclusive lock —
// the serving analogue of core.DB.OptimizeLayouts — and invalidates the
// plan cache, since compiled plans address the old partitions directly.
func (s *DB) OptimizeLayouts() []core.LayoutChange {
	s.catalogMu.Lock()
	defer s.catalogMu.Unlock()
	changes := s.db.OptimizeLayouts()
	s.invalidate()
	s.stats.relayouts.Add(1)
	return changes
}

// AddWorkload declares workload entries for the optimizer (write lock:
// it mutates shared DB state).
func (s *DB) AddWorkload(name string, p plan.Node, frequency float64) {
	s.catalogMu.Lock()
	defer s.catalogMu.Unlock()
	s.db.AddWorkload(name, p, frequency)
}

// TableInfo describes one served table.
type TableInfo struct {
	Name   string     `json:"name"`
	Rows   int        `json:"rows"`
	Layout string     `json:"layout"`
	Attrs  []AttrInfo `json:"attrs"`
}

// AttrInfo is one attribute of a served table.
type AttrInfo struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// Tables lists the catalog under the read lock.
func (s *DB) Tables() []TableInfo {
	s.catalogMu.RLock()
	defer s.catalogMu.RUnlock()
	c := s.db.Catalog()
	names := c.Names()
	out := make([]TableInfo, 0, len(names))
	for _, name := range names {
		rel := c.Table(name)
		attrs := make([]AttrInfo, rel.Schema.Width())
		for i, a := range rel.Schema.Attrs {
			attrs[i] = AttrInfo{Name: a.Name, Type: a.Type.String()}
		}
		out = append(out, TableInfo{
			Name:   name,
			Rows:   rel.Rows(),
			Layout: rel.Layout.Kind(),
			Attrs:  attrs,
		})
	}
	return out
}

// statsCounters are the service's atomic counters.
type statsCounters struct {
	queries    atomic.Int64
	failed     atomic.Int64
	queued     atomic.Int64
	rejected   atomic.Int64
	prepared   atomic.Int64
	planHits   atomic.Int64
	planMisses atomic.Int64
	relayouts  atomic.Int64
	rows       atomic.Int64
	execNanos  atomic.Int64
	inFlight   atomic.Int64
}

// Stats is a snapshot of the service counters.
type Stats struct {
	Queries       int64 `json:"queries"`         // successfully executed
	Failed        int64 `json:"failed"`          // validation/decode failures
	Queued        int64 `json:"queued"`          // waited for an admission slot
	Rejected      int64 `json:"rejected"`        // admission timeouts (ErrOverloaded)
	Prepared      int64 `json:"prepared"`        // Prepare calls
	PlanCacheHits int64 `json:"planCacheHits"`   // executions reusing a compiled plan
	PlanCacheMiss int64 `json:"planCacheMisses"` // executions that compiled
	Relayouts     int64 `json:"relayouts"`       // OptimizeLayouts runs
	Rows          int64 `json:"rows"`            // total result rows served
	ExecNanos     int64 `json:"execNanos"`       // summed wall time inside execution
	InFlight      int64 `json:"inFlight"`        // currently executing
	Workers       int   `json:"workers"`         // shared pool size (1 = serial)
	MaxInFlight   int   `json:"maxInFlight"`     // admission bound
}

// Stats snapshots the counters.
func (s *DB) Stats() Stats {
	return Stats{
		Queries:       s.stats.queries.Load(),
		Failed:        s.stats.failed.Load(),
		Queued:        s.stats.queued.Load(),
		Rejected:      s.stats.rejected.Load(),
		Prepared:      s.stats.prepared.Load(),
		PlanCacheHits: s.stats.planHits.Load(),
		PlanCacheMiss: s.stats.planMisses.Load(),
		Relayouts:     s.stats.relayouts.Load(),
		Rows:          s.stats.rows.Load(),
		ExecNanos:     s.stats.execNanos.Load(),
		InFlight:      s.stats.inFlight.Load(),
		Workers:       s.opt.WorkerCount(),
		MaxInFlight:   cap(s.sem),
	}
}

// planKey computes the cache key: a digest of the plan's canonical JSON
// encoding. Hashing keeps per-entry key memory constant — remote plans
// can be megabytes — while equivalent plans still collide onto one entry.
func planKey(p plan.Node) (string, error) {
	data, err := plan.MarshalNode(p)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return string(sum[:]), nil
}
