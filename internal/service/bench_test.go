package service

import (
	"fmt"
	"testing"

	"repro/internal/exec/result"
	"repro/internal/plan"
)

// BenchmarkServiceThroughput measures multi-client throughput on one
// shared worker pool: N closed-loop clients issue Fig-3-style queries
// (the selectivity mix below) through the full service path — admission,
// read lock, plan cache, pooled execution. b.N counts requests, so ns/op
// is per-query latency under that concurrency; the qps metric is the
// headline number recorded in BENCH_service.json.
//
// Setup asserts service results are row-identical to direct core.DB.Query
// on a pristine serial database before any timing begins.
func BenchmarkServiceThroughput(b *testing.B) {
	const rows = 200_000
	queries := []plan.Node{
		DemoQuery(0.0001),
		DemoQuery(0.01),
		DemoQuery(0.1),
	}
	want := reference(b, rows, queries...)

	s := New(NewDemoDB(rows), Config{Workers: 0, MaxInFlight: 32})
	defer s.Close()
	for i, q := range queries {
		res, err := s.Query(q)
		if err != nil {
			b.Fatal(err)
		}
		if !result.Equal(res, want[i]) {
			b.Fatalf("query %d: service result differs from direct core.DB.Query", i)
		}
	}

	for _, clients := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			g := LoadGen{Clients: clients, Requests: b.N, Queries: queries}
			b.ResetTimer()
			rep := g.Run(s)
			b.StopTimer()
			if rep.Errors > 0 {
				b.Fatalf("%d/%d requests failed", rep.Errors, rep.Requests)
			}
			b.ReportMetric(rep.QPS, "qps")
			b.ReportMetric(float64(rep.Rows)/float64(rep.Requests), "rows/op")
		})
	}
}
