package service

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/exec/result"
	"repro/internal/plan"
	"repro/internal/storage"
)

// BenchmarkServiceThroughput measures multi-client throughput on one
// shared worker pool: N closed-loop clients issue Fig-3-style queries
// (the selectivity mix below) through the full service path — admission,
// read lock, plan cache, pooled execution. b.N counts requests, so ns/op
// is per-query latency under that concurrency; the qps metric is the
// headline number recorded in BENCH_service.json.
//
// Setup asserts service results are row-identical to direct core.DB.Query
// on a pristine serial database before any timing begins.
func BenchmarkServiceThroughput(b *testing.B) {
	const rows = 200_000
	queries := []plan.Node{
		DemoQuery(0.0001),
		DemoQuery(0.01),
		DemoQuery(0.1),
	}
	want := reference(b, rows, queries...)

	s := New(NewDemoDB(rows), Config{Workers: 0, MaxInFlight: 32})
	defer s.Close()
	for i, q := range queries {
		res, err := s.Query(q)
		if err != nil {
			b.Fatal(err)
		}
		if !result.Equal(res, want[i]) {
			b.Fatalf("query %d: service result differs from direct core.DB.Query", i)
		}
	}

	for _, clients := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			g := LoadGen{Clients: clients, Requests: b.N, Queries: queries}
			b.ResetTimer()
			rep := g.Run(s)
			b.StopTimer()
			if rep.Errors > 0 {
				b.Fatalf("%d/%d requests failed", rep.Errors, rep.Requests)
			}
			b.ReportMetric(rep.QPS, "qps")
			b.ReportMetric(float64(rep.Rows)/float64(rep.Requests), "rows/op")
		})
	}
}

// BenchmarkServiceThroughputWithWriter is BenchmarkServiceThroughput
// with a background writer publishing MVCC versions the whole time: a
// goroutine commits 64-row batches into a side table at a steady pace
// while the closed-loop clients read. With snapshot reads the writer
// costs readers only the version-pointer indirection — the acceptance
// bar is reader qps within 2x of the no-writer run at the same client
// count. The commits/s metric reports the concurrent write rate.
func BenchmarkServiceThroughputWithWriter(b *testing.B) {
	const rows = 200_000
	queries := []plan.Node{
		DemoQuery(0.0001),
		DemoQuery(0.01),
		DemoQuery(0.1),
	}
	s := New(NewDemoDB(rows), Config{Workers: 0, MaxInFlight: 32})
	defer s.Close()
	if _, err := s.Load(LoadSpec{Table: "w", Format: "csv", CreateSpec: "v:int64"},
		strings.NewReader("")); err != nil {
		b.Fatal(err)
	}
	batch := make([][]storage.Word, 64)
	for i := range batch {
		batch[i] = []storage.Word{storage.EncodeInt(int64(i))}
	}

	for _, clients := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			stop := make(chan struct{})
			var commits atomic.Int64
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := s.Query(plan.Insert{Table: "w", Rows: batch}); err != nil {
						b.Error(err)
						return
					}
					commits.Add(1)
					time.Sleep(100 * time.Microsecond)
				}
			}()
			g := LoadGen{Clients: clients, Requests: b.N, Queries: queries}
			b.ResetTimer()
			rep := g.Run(s)
			b.StopTimer()
			close(stop)
			wg.Wait()
			if rep.Errors > 0 {
				b.Fatalf("%d/%d requests failed", rep.Errors, rep.Requests)
			}
			b.ReportMetric(rep.QPS, "qps")
			b.ReportMetric(float64(commits.Load())/rep.Elapsed.Seconds(), "commits/s")
		})
	}
}
