package service

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/exec/result"
	"repro/internal/plan"
)

func TestExplainTraceJIT(t *testing.T) {
	want := reference(t, testRows, DemoQuery(0.01))
	s := New(NewDemoDB(testRows), Config{Workers: 2})
	defer s.Close()

	res, tr, err := s.QueryEx(DemoQuery(0.01), QueryOpts{Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	if !result.Equal(res, want[0]) {
		t.Fatal("traced result differs from serial reference")
	}
	if tr == nil {
		t.Fatal("Explain returned no trace")
	}
	rep := tr.Report()
	if len(rep) < 2 {
		t.Fatalf("trace has %d ops, want at least aggregate+scan", len(rep))
	}
	ops := map[string]bool{}
	var scanIn int64
	for _, op := range rep {
		ops[op.Op] = true
		if op.Op == "scan" {
			scanIn = op.RowsIn
			if op.Nanos <= 0 {
				t.Errorf("scan recorded %d nanos, want > 0", op.Nanos)
			}
			if len(op.Workers) == 0 {
				t.Error("parallel scan recorded no worker lanes")
			}
		}
	}
	if !ops["scan"] || !ops["group-by"] {
		t.Fatalf("trace ops = %v, want scan and group-by", rep)
	}
	if scanIn != testRows {
		t.Fatalf("scan rowsIn = %d, want %d", scanIn, testRows)
	}
}

func TestExplainTraceVector(t *testing.T) {
	want := reference(t, testRows, DemoQuery(0.01))
	s := New(NewDemoDB(testRows), Config{Workers: 2})
	defer s.Close()

	res, tr, err := s.QueryEx(DemoQuery(0.01), QueryOpts{Explain: true, Engine: "vector"})
	if err != nil {
		t.Fatal(err)
	}
	if !result.Equal(res, want[0]) {
		t.Fatal("vector traced result differs from serial reference")
	}
	if tr == nil {
		t.Fatal("Explain returned no trace")
	}
	ops := map[string]bool{}
	for _, op := range tr.Report() {
		ops[op.Op] = true
	}
	if !ops["scan"] || !ops["group-by"] {
		t.Fatalf("vector trace ops = %v, want scan and group-by", ops)
	}
}

func TestUnknownEngineRejected(t *testing.T) {
	s := New(NewDemoDB(testRows), Config{Workers: 1})
	defer s.Close()
	if _, _, err := s.QueryEx(DemoQuery(0.01), QueryOpts{Engine: "volcano"}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

// TestTracedResultsIdentical runs traced and untraced queries on both
// engines concurrently (the -race exercise for the trace hot path) and
// asserts every result is row-identical to the serial reference.
func TestTracedResultsIdentical(t *testing.T) {
	queries := []plan.Node{DemoQuery(0.0001), DemoQuery(0.01), DemoQuery(0.1)}
	want := reference(t, testRows, queries...)
	s := New(NewDemoDB(testRows), Config{Workers: 4})
	defer s.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				qi := (g + i) % len(queries)
				o := QueryOpts{Explain: (g+i)%2 == 0}
				if g%2 == 1 {
					o.Engine = "vector"
				}
				res, tr, err := s.QueryEx(queries[qi], o)
				if err != nil {
					errs <- err
					return
				}
				if !result.Equal(res, want[qi]) {
					errs <- fmt.Errorf("goroutine %d query %d (opts %+v): result differs from serial", g, qi, o)
					return
				}
				if o.Explain && tr == nil {
					errs <- fmt.Errorf("goroutine %d: explain returned no trace", g)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv, s := newTestServer(t)

	if _, err := s.Query(DemoQuery(0.01)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type = %q, want text/plain exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`db_query_latency_seconds_count{outcome="ok"} 1`,
		`db_queries_total{outcome="ok"} 1`,
		"# TYPE db_query_latency_seconds histogram",
		"db_replication_lag_bytes",
		"db_checkpoint_seconds",
		"db_pool_workers 2",
		"db_inflight_queries 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Every non-comment line must parse as "name{labels} value".
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("unparsable exposition line %q", line)
		}
	}
}

func TestHTTPExplainQuery(t *testing.T) {
	srv, _ := newTestServer(t)
	body := strings.Replace(demoQueryJSON(10_000), `{"plan":`, `{"explain": true, "plan":`, 1)
	resp, out := post(t, srv.URL+"/query", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body = %v", resp.StatusCode, out)
	}
	trace, ok := out["trace"].([]any)
	if !ok || len(trace) == 0 {
		t.Fatalf("explain response has no trace: %v", out)
	}
	op := trace[0].(map[string]any)
	for _, k := range []string{"op", "rowsIn", "rowsOut", "nanos"} {
		if _, ok := op[k]; !ok {
			t.Errorf("trace op missing %q: %v", k, op)
		}
	}

	// Without explain the trace key is absent.
	resp, out = post(t, srv.URL+"/query", demoQueryJSON(10_000))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if _, ok := out["trace"]; ok {
		t.Fatal("untraced query response carries a trace")
	}
}

func TestXQueryIDAndContentType(t *testing.T) {
	srv, _ := newTestServer(t)
	for _, path := range []string{"/stats", "/healthz", "/tables"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s Content-Type = %q, want application/json", path, ct)
		}
		if id := resp.Header.Get("X-Query-Id"); id == "" {
			t.Errorf("%s response has no X-Query-Id", path)
		}
	}
	// IDs are unique per request.
	r1, _ := http.Get(srv.URL + "/stats")
	r1.Body.Close()
	r2, _ := http.Get(srv.URL + "/stats")
	r2.Body.Close()
	if a, b := r1.Header.Get("X-Query-Id"), r2.Header.Get("X-Query-Id"); a == b {
		t.Fatalf("two requests shared X-Query-Id %q", a)
	}
}

func TestSlowQueryLogging(t *testing.T) {
	s := New(NewDemoDB(testRows), Config{Workers: 2})
	defer s.Close()

	var buf bytes.Buffer
	var mu sync.Mutex
	s.SetLogger(slog.New(slog.NewTextHandler(&lockedWriter{w: &buf, mu: &mu}, nil)))
	s.SetSlowQueryThreshold(time.Nanosecond) // everything is slow

	if _, err := s.Query(DemoQuery(0.01)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	logged := buf.String()
	mu.Unlock()
	if !strings.Contains(logged, "slow query") {
		t.Fatalf("no slow-query line logged, got %q", logged)
	}
	if !strings.Contains(logged, "shape=") || !strings.Contains(logged, "trace=") {
		t.Fatalf("slow-query line lacks shape/trace: %q", logged)
	}
	rec := httptest.NewRecorder()
	s.Metrics().Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "db_slow_queries_total 1") {
		t.Fatal("db_slow_queries_total did not increment")
	}
}

type lockedWriter struct {
	w  io.Writer
	mu *sync.Mutex
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// TestQueueWaitObserved drives more concurrent queries than MaxInFlight
// so some must queue, then checks the queue-wait histogram saw them.
func TestQueueWaitObserved(t *testing.T) {
	s := New(NewDemoDB(testRows), Config{Workers: 2, MaxInFlight: 1, QueueTimeout: 5 * time.Second})
	defer s.Close()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = s.Query(DemoQuery(0.1))
		}()
	}
	wg.Wait()
	if s.Stats().Queued == 0 {
		t.Skip("no query queued — timing did not produce contention")
	}
	rec := httptest.NewRecorder()
	s.Metrics().Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "db_query_queue_wait_seconds_count") {
		t.Fatal("queue-wait histogram missing from exposition")
	}
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if strings.HasPrefix(line, "db_query_queue_wait_seconds_count") {
			var n int64
			if _, err := fmt.Sscanf(line, "db_query_queue_wait_seconds_count %d", &n); err != nil || n == 0 {
				t.Fatalf("queue-wait count line %q, want > 0", line)
			}
		}
	}
}

// TestGracefulResultsDuringShutdown is a lightweight drain check at the
// service level: queries admitted before Close still complete.
func TestCloseDoesNotBreakInFlight(t *testing.T) {
	want := reference(t, testRows, DemoQuery(0.1))
	s := New(NewDemoDB(testRows), Config{Workers: 4})
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(started)
		res, err := s.Query(DemoQuery(0.1))
		if err == nil && !result.Equal(res, want[0]) {
			err = fmt.Errorf("result differs after pool close")
		}
		done <- err
	}()
	<-started
	s.Close() // closed pool degrades to inline serial execution
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("query did not finish after Close")
	}
}
