package service

import (
	"log/slog"
	"runtime"
	"runtime/debug"
	"strconv"
	"time"

	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/plan"
)

// Metric surface of the service. Two kinds of collectors coexist here:
// histograms and counters the request path feeds directly (latency,
// queue wait, fsync, slow queries), and CounterFunc/GaugeFunc bridges
// that read the pre-existing statsCounters at scrape time — those
// counters stay the single source of truth for /stats, so /metrics can
// never drift from it.
type svcMetrics struct {
	reg *obs.Registry

	latOK       *obs.Histogram // end-to-end, including queue wait
	latFailed   *obs.Histogram
	latRejected *obs.Histogram
	queueWait   *obs.Histogram

	ckptSeconds  *obs.Histogram
	fsyncSeconds *obs.Histogram
	walAppended  *obs.Counter

	replPoll   *obs.Histogram
	promotions *obs.Counter
	fences     *obs.Counter

	slowQueries *obs.Counter
	advisorRuns *obs.Counter
}

// initMetrics builds the registry over a fully-constructed DB. Called
// once from New, before the service is shared.
func (s *DB) initMetrics() {
	r := obs.NewRegistry()
	m := &svcMetrics{reg: r}

	lat := "db_query_latency_seconds"
	latHelp := "End-to-end query latency including admission queue wait, by outcome."
	m.latOK = r.Histogram(lat, latHelp, nil, obs.Labels{"outcome": "ok"})
	m.latFailed = r.Histogram(lat, latHelp, nil, obs.Labels{"outcome": "error"})
	m.latRejected = r.Histogram(lat, latHelp, nil, obs.Labels{"outcome": "rejected"})
	m.queueWait = r.Histogram("db_query_queue_wait_seconds",
		"Time spent waiting for an admission slot (queued requests only).", nil, nil)

	counter := func(name, help string, v func() int64) {
		r.CounterFunc(name, help, nil, func() float64 { return float64(v()) })
	}
	qt := "db_queries_total"
	qtHelp := "Queries finished, by outcome."
	r.CounterFunc(qt, qtHelp, obs.Labels{"outcome": "ok"},
		func() float64 { return float64(s.stats.queries.Load()) })
	r.CounterFunc(qt, qtHelp, obs.Labels{"outcome": "error"},
		func() float64 { return float64(s.stats.failed.Load()) })
	r.CounterFunc(qt, qtHelp, obs.Labels{"outcome": "rejected"},
		func() float64 { return float64(s.stats.rejected.Load()) })
	counter("db_queries_queued_total", "Requests that waited for an admission slot.", s.stats.queued.Load)
	counter("db_result_rows_total", "Result rows served by successful queries.", s.stats.rows.Load)
	r.GaugeFunc("db_inflight_queries", "Queries executing right now.", nil,
		func() float64 { return float64(s.stats.inFlight.Load()) })
	counter("db_plan_cache_hits_total", "Executions that reused a compiled plan.", s.stats.planHits.Load)
	counter("db_plan_cache_misses_total", "Executions that compiled their plan.", s.stats.planMisses.Load)
	counter("db_plan_cache_evictions_total", "Compiled plans evicted by the LRU.", s.stats.planEvictions.Load)
	counter("db_relayouts_total", "OptimizeLayouts runs.", s.stats.relayouts.Load)
	counter("db_loads_total", "Completed bulk loads.", s.stats.loads.Load)
	counter("db_loaded_rows_total", "Rows ingested by bulk loads.", s.stats.loadedRows.Load)

	r.GaugeFunc("db_pool_workers", "Shared morsel-scheduler pool size (1 = serial).", nil,
		func() float64 { return float64(s.opt.WorkerCount()) })
	if s.pool != nil {
		busyHelp := "Seconds each pool worker spent running morsels."
		for w := 0; w < s.opt.WorkerCount(); w++ {
			w := w
			r.CounterFunc("db_pool_busy_seconds_total", busyHelp,
				obs.Labels{"worker": strconv.Itoa(w)},
				func() float64 {
					if busy := s.pool.BusyNanos(); w < len(busy) {
						return float64(busy[w]) / 1e9
					}
					return 0
				})
		}
	}

	// MVCC surface: the published version, the pinned-reader gauge and
	// the reclaim backlog. A backlog stuck above zero while snapshots
	// are active is normal (readers pin superseded versions until they
	// finish); stuck above zero with zero active snapshots would mean a
	// reclamation leak.
	r.GaugeFunc("db_snapshot_epoch",
		"Currently published MVCC catalog version.", nil,
		func() float64 { return float64(s.core().Epoch()) })
	r.GaugeFunc("db_snapshots_active",
		"Reader snapshots currently pinned.", nil,
		func() float64 { return float64(s.core().ActiveSnapshots()) })
	r.GaugeFunc("db_version_reclaim_backlog",
		"Superseded catalog versions awaiting reader drain.", nil,
		func() float64 { return float64(s.core().LiveVersions() - 1) })
	counter("db_versions_reclaimed_total",
		"Superseded catalog versions reclaimed after their last unpin.",
		func() int64 { return s.core().VersionsReclaimed() })

	m.ckptSeconds = r.Histogram("db_checkpoint_seconds",
		"Checkpoint duration (snapshot write + WAL reset).", nil, nil)
	m.fsyncSeconds = r.Histogram("db_wal_fsync_seconds",
		"WAL group-commit flush+fsync latency (fsync mode only).", nil, nil)
	m.walAppended = r.Counter("db_wal_appended_bytes_total",
		"Bytes appended to the WAL, frames included.", nil)
	counter("db_checkpoints_total", "Completed checkpoints.", s.stats.checkpoints.Load)
	counter("db_persist_errors_total", "Failed WAL/checkpoint operations.", s.stats.persistErrs.Load)
	r.GaugeFunc("db_wal_bytes", "Current WAL length (0 without persistence).", nil, func() float64 {
		if mgr := s.mgr(); mgr != nil {
			return float64(mgr.WALSize())
		}
		return 0
	})

	r.GaugeFunc("db_replication_lag_bytes",
		"Replica: committed primary WAL bytes not yet applied.", nil,
		func() float64 { return float64(s.repl.lagBytes.Load()) })
	r.GaugeFunc("db_replication_lag_records",
		"Replica: committed primary records not yet applied.", nil,
		func() float64 { return float64(s.repl.lagRecords.Load()) })
	r.GaugeFunc("db_repl_followers", "Primary: connected WAL tail streams.", nil,
		func() float64 { return float64(s.repl.followers.Load()) })
	r.GaugeFunc("db_repl_term", "Replication fencing term (promotion takes term+1).", nil, func() float64 {
		s.roleMu.RLock()
		defer s.roleMu.RUnlock()
		return float64(s.role.term)
	})
	counter("db_repl_syncs_total", "Replica: snapshot bootstraps (>1 means resyncs).", s.repl.syncs.Load)
	counter("db_repl_retries_total", "Replica: retried bootstrap/tail failures.", s.repl.retries.Load)
	m.replPoll = r.Histogram("db_repl_poll_seconds",
		"Replica: latency of one poll/apply round against the primary.", nil, nil)
	m.promotions = r.Counter("db_promotions_total", "Replica promotions to primary.", nil)
	m.fences = r.Counter("db_fences_total", "Primaries fenced by a higher term.", nil)

	m.slowQueries = r.Counter("db_slow_queries_total",
		"Queries over the -slow-query-ms threshold.", nil)

	// Plan-cache shape gauges: /stats planCacheShapes made scrapeable.
	// Per-shape series would be unbounded cardinality (shapes are
	// content-addressed digests), so only the aggregate shape count and
	// the entry count behind the hottest shape are exported — together
	// they quantify the constant-embedding blowup (entries ≫ shapes, top
	// shape holding most entries) that parameter binding would collapse.
	r.GaugeFunc("db_plan_cache_shapes",
		"Distinct constant-normalized plan shapes behind the cached entries.", nil,
		func() float64 {
			s.planMu.Lock()
			defer s.planMu.Unlock()
			return float64(len(s.plans.shapes))
		})
	r.GaugeFunc("db_plan_cache_top_shape_entries",
		"Cache entries held by the most duplicated plan shape (constant variants of one query).", nil,
		func() float64 {
			s.planMu.Lock()
			defer s.planMu.Unlock()
			top := 0
			for _, n := range s.plans.shapes {
				if n > top {
					top = n
				}
			}
			return float64(top)
		})

	m.advisorRuns = r.Counter("db_layout_advisor_runs_total",
		"Layout-drift advisor analyses (periodic loop + GET /advisor).", nil)

	r.Info("served_build_info",
		"Build metadata of the serving binary; value is constant 1.",
		obs.Labels{"version": buildVersion(), "goversion": runtime.Version()})
	r.GaugeFunc("served_uptime_seconds",
		"Seconds since the service was constructed.", nil,
		func() float64 { return time.Since(s.start).Seconds() })

	s.metrics = m
}

// buildVersion reports the main module's version as stamped by the Go
// toolchain ("(devel)" for plain go build, a pseudo-version or tag for
// module-aware installs).
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
}

// driftGauge returns the per-table layout-drift gauge, registering it on
// first use (re-registration returns the existing instance, so Advise
// just calls this every run).
func (s *DB) driftGauge(table string) *obs.Gauge {
	return s.metrics.reg.Gauge("db_layout_drift_ratio",
		"Current-layout workload cost over BPi-optimal cost for the captured mix, per table (1 = no drift).",
		obs.Labels{"table": table})
}

// registerHeat exposes the capture counters of newly seen tables on the
// registry: per-column read counts plus per-table execution and
// rows-scanned tallies. Called from the compile path (once per table,
// guarded by heatTables), never from the per-execution path. Cardinality
// is bounded by the schema: one series per column, not per query.
func (s *DB) registerHeat(accs []exec.TableAccess) {
	for _, acc := range accs {
		if _, seen := s.heatTables.LoadOrStore(acc.Table, struct{}{}); seen {
			continue
		}
		tc := s.capture.Table(acc.Table)
		if tc == nil {
			s.heatTables.Delete(acc.Table) // not registered (unknown table); retry later
			continue
		}
		r := s.metrics.reg
		labels := obs.Labels{"table": acc.Table}
		r.CounterFunc("db_table_queries_total",
			"Executions that scanned the table (workload capture).", labels,
			func() float64 { return float64(tc.Execs()) })
		r.CounterFunc("db_table_rows_scanned_total",
			"Rows covered by the table's scans (workload capture; index lookups count 0).", labels,
			func() float64 { return float64(tc.RowsScanned()) })
		for attr := 0; attr < tc.Width(); attr++ {
			attr := attr
			r.CounterFunc("db_column_reads_total",
				"Executions that read the column (workload capture).",
				obs.Labels{"table": acc.Table, "column": tc.ColName(attr)},
				func() float64 { return float64(tc.ColReads(attr)) })
		}
	}
}

// Metrics returns the service's metric registry; its Handler serves
// GET /metrics in Prometheus text exposition format.
func (s *DB) Metrics() *obs.Registry { return s.metrics.reg }

// SetLogger replaces the service's structured logger (default
// slog.Default). Safe to call while serving.
func (s *DB) SetLogger(l *slog.Logger) { s.logPtr.Store(l) }

// Logger returns the current structured logger (never nil) — the repl
// tail loop logs correlated apply lines through it, so one X-Query-Id
// grep covers primary and replica output alike.
func (s *DB) Logger() *slog.Logger { return s.logger() }

// logger returns the current structured logger, never nil.
func (s *DB) logger() *slog.Logger {
	if l := s.logPtr.Load(); l != nil {
		return l
	}
	return slog.Default()
}

// SetSlowQueryThreshold arms slow-query logging: any read plan whose
// execution takes at least d is logged with its shape and operator
// trace. 0 disables. While armed, every read executes with tracing on
// — the per-operator numbers in the log are real, not resampled.
func (s *DB) SetSlowQueryThreshold(d time.Duration) {
	s.slowNanos.Store(d.Nanoseconds())
}

// ObserveReplPoll feeds the replica poll-latency histogram; the repl
// tail loop calls it once per poll round.
func (s *DB) ObserveReplPoll(seconds float64) { s.metrics.replPoll.Observe(seconds) }

// slowQueryShapeBytes caps the plan shape embedded in a slow-query log
// line; a megabyte-sized remote plan must not flood the log.
const slowQueryShapeBytes = 2048

// logSlowQuery emits one structured warning for a query that crossed
// the slow threshold: the constant-normalized plan shape (what you
// would cache on) and the per-operator trace report.
func (s *DB) logSlowQuery(p plan.Node, elapsed time.Duration, tr *obs.QueryTrace) {
	s.metrics.slowQueries.Inc()
	shape := "?"
	if data, err := plan.MarshalNode(plan.Normalize(p)); err == nil {
		if len(data) > slowQueryShapeBytes {
			data = data[:slowQueryShapeBytes]
		}
		shape = string(data)
	}
	args := []any{
		slog.Int64("micros", elapsed.Microseconds()),
		slog.String("shape", shape),
	}
	if tr != nil {
		args = append(args, slog.Any("trace", tr.Report()))
	}
	s.logger().Warn("slow query", args...)
}
